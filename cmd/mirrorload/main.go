// mirrorload drives YCSB workloads against a running mirrord server over
// the wire protocol and reports client-observed throughput and latency
// percentiles. Each connection is one client; by default it is synchronous
// (one outstanding operation), and -pipeline N keeps up to N frames in
// flight per client (HELLO handshake, clamped to the server's
// descriptor-ring depth). Every operation lands in an HDR-style histogram:
// the percentiles are over all operations, not a subsample.
//
// Example, against a local durable server:
//
//	mirrord -addr 127.0.0.1:7070 -engine mirror -media /tmp/mirror.img &
//	mirrorload -addr 127.0.0.1:7070 -workload A -conns 4 -duration 5s -prefill
//	mirrorload -addr 127.0.0.1:7070 -workload A -conns 1 -pipeline 8
//
// Client ids [base, base+conns) must be free (no other live client may
// share an id — descriptor rings are single-owner); -prefill uses id base-1.
// YCSB-E scans run as native SCAN frames (paged by wire.MaxScanKeys) and
// YCSB-F read-modify-writes as GET followed by a native RMW
// (compare-and-set) frame.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mirror/internal/harness"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "mirrord address")
		workl    = flag.String("workload", "A", "YCSB workload letter (A..F)")
		conns    = flag.Int("conns", 4, "concurrent client connections")
		base     = flag.Int("base", 1, "first client id (ids [base, base+conns) must be unused)")
		keyRange = flag.Uint64("range", harness.ServingKeyRange, "key range [1, range]")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		seed     = flag.Int64("seed", 1, "workload PRNG seed")
		prefill  = flag.Bool("prefill", false, "prefill half the key range first (client id base-1)")
		pipeline = flag.Int("pipeline", 1, "frames in flight per client (1: synchronous)")
	)
	flag.Parse()
	if len(*workl) != 1 {
		fmt.Fprintf(os.Stderr, "mirrorload: -workload wants a single letter A..F, got %q\n", *workl)
		os.Exit(2)
	}
	if *base < 1 && *prefill {
		fmt.Fprintln(os.Stderr, "mirrorload: -prefill needs -base >= 1 (it uses client id base-1)")
		os.Exit(2)
	}
	if *prefill {
		n, err := harness.ServingPrefill(*addr, uint32(*base-1), *keyRange, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mirrorload: prefill:", err)
			os.Exit(1)
		}
		fmt.Printf("mirrorload: prefilled %d keys\n", n)
	}
	load, err := harness.RunServingLoad(harness.ServingSpec{
		Addr:     *addr,
		Workload: (*workl)[0],
		Conns:    *conns,
		BaseID:   uint32(*base),
		KeyRange: *keyRange,
		Duration: *duration,
		Seed:     *seed,
		Pipeline: *pipeline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirrorload:", err)
		os.Exit(1)
	}
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	fmt.Printf("mirrorload: YCSB-%c conns=%d pipeline=%d range=%d: %d ops in %v (%.1f kops/s)\n",
		(*workl)[0]&^0x20, *conns, *pipeline, *keyRange, load.Ops, load.Elapsed.Round(time.Millisecond), load.Kops())
	fmt.Printf("mirrorload: latency µs: p50=%.1f p99=%.1f p999=%.1f max=%.1f\n",
		us(load.Hist.Percentile(50)), us(load.Hist.Percentile(99)),
		us(load.Hist.Percentile(99.9)), us(load.Hist.Max()))
}
