// Command mirrorcrash is a crash-recovery fuzzer: it runs concurrent
// workloads on a durable structure, injects simulated power failures at
// random moments under randomized eviction adversaries, recovers, and
// verifies durable linearizability against per-key single-writer histories.
//
// Usage:
//
//	mirrorcrash -structure hashtable -engine Mirror -rounds 100
//	mirrorcrash -structure all -engine all -rounds 10
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"mirror/internal/crashtest"
	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

var builders = map[string]crashtest.Builder{
	"list": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return list.New(e, 0)
	},
	"hashtable": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return hashtable.New(e, c, 64)
	},
	"bst": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return bst.New(e, c)
	},
	"skiplist": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return skiplist.New(e, c)
	},
}

var engines = map[string]engine.Kind{
	"Mirror":      engine.MirrorDRAM,
	"MirrorNVMM":  engine.MirrorNVMM,
	"Izraelevitz": engine.Izraelevitz,
	"NVTraverse":  engine.NVTraverse,
}

func main() {
	var (
		structure = flag.String("structure", "hashtable", "list|hashtable|bst|skiplist|all")
		engName   = flag.String("engine", "Mirror", "Mirror|MirrorNVMM|Izraelevitz|NVTraverse|all")
		rounds    = flag.Int("rounds", 20, "crash rounds per combination")
		seed      = flag.Int64("seed", time.Now().UnixNano(), "base seed")
	)
	flag.Parse()

	var structNames, engNames []string
	if *structure == "all" {
		for n := range builders {
			structNames = append(structNames, n)
		}
	} else if _, ok := builders[*structure]; ok {
		structNames = []string{*structure}
	} else {
		fmt.Fprintf(os.Stderr, "mirrorcrash: unknown structure %q\n", *structure)
		os.Exit(2)
	}
	if *engName == "all" {
		for n := range engines {
			engNames = append(engNames, n)
		}
	} else if _, ok := engines[*engName]; ok {
		engNames = []string{*engName}
	} else {
		fmt.Fprintf(os.Stderr, "mirrorcrash: unknown engine %q\n", *engName)
		os.Exit(2)
	}

	policies := []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom}
	totalViolations := 0
	rng := rand.New(rand.NewSource(*seed))
	for _, sn := range structNames {
		for _, en := range engNames {
			start := time.Now()
			violations := 0
			for r := 0; r < *rounds; r++ {
				vs := crashtest.Run(engines[en], builders[sn], crashtest.Config{
					Policy:    policies[r%len(policies)],
					FreezeLag: time.Duration(rng.Intn(4000)) * time.Microsecond,
					Seed:      rng.Int63(),
				})
				for _, v := range vs {
					fmt.Printf("VIOLATION %s/%s round %d: key=%d %s (got present=%v, want %s)\n",
						sn, en, r, v.Key, v.Context, v.Got, v.Want)
					violations++
				}
			}
			fmt.Printf("%-10s %-12s %3d rounds, %d violations, %v\n",
				sn, en, *rounds, violations, time.Since(start).Round(time.Millisecond))
			totalViolations += violations
		}
	}
	if totalViolations > 0 {
		fmt.Printf("FAILED: %d durable-linearizability violations\n", totalViolations)
		os.Exit(1)
	}
	fmt.Println("OK: durable linearizability held in every round")
}
