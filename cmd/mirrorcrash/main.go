// Command mirrorcrash is a crash-recovery fuzzer: it runs concurrent
// workloads on a durable structure, injects simulated power failures at
// random moments under randomized eviction adversaries, recovers, and
// verifies durable linearizability against per-key single-writer histories.
//
// With -fuzz it instead drives the adversarial persistence fault model
// (internal/faultfuzz): seeded crashes at arbitrary device operations,
// torn/evicted/dropped cache lines, full-history durable-linearizability
// checking, and automatic shrinking of failures to a re-runnable
// (-seed, -schedule) reproducer. -schedule replays one such reproducer.
//
// Usage:
//
//	mirrorcrash -structure hashtable -engine Mirror -rounds 100
//	mirrorcrash -structure all -engine all -rounds 10
//	mirrorcrash -fuzz 50 -structure all -engine all -faults torn,evict,drop
//	mirrorcrash -fuzz 50 -structure all -engine Mirror -detect
//	mirrorcrash -fuzz 50 -structure all -engine Mirror -combine
//	mirrorcrash -fuzz 50 -structure all -engine Mirror -shards 2
//	mirrorcrash -structure list -engine Mirror -faults torn,drop -seed 7 -schedule w1o5k1c13
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"mirror/internal/crashtest"
	"mirror/internal/engine"
	"mirror/internal/faultfuzz"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

var builders = map[string]crashtest.Builder{
	"list": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return list.New(e, 0)
	},
	"hashtable": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return hashtable.New(e, c, 64)
	},
	"bst": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return bst.New(e, c)
	},
	"skiplist": func(e engine.Engine, c *engine.Ctx) structures.Set {
		return skiplist.New(e, c)
	},
}

var engines = map[string]engine.Kind{
	"Mirror":      engine.MirrorDRAM,
	"MirrorNVMM":  engine.MirrorNVMM,
	"Izraelevitz": engine.Izraelevitz,
	"NVTraverse":  engine.NVTraverse,
}

func main() {
	var (
		structure = flag.String("structure", "hashtable", "list|hashtable|bst|skiplist|all")
		engName   = flag.String("engine", "Mirror", "Mirror|MirrorNVMM|Izraelevitz|NVTraverse|all")
		rounds    = flag.Int("rounds", 20, "crash rounds per combination")
		seed      = flag.Int64("seed", 1, "base seed (fixed default for reproducible runs)")
		fuzzN     = flag.Int("fuzz", 0, "fault-fuzz iterations per combination (0 = classic crash rounds)")
		faultsStr = flag.String("faults", "torn,evict,drop", "fault behaviors for -fuzz/-schedule: torn,evict,drop or none")
		schedule  = flag.String("schedule", "", "replay one reproducer schedule (e.g. w1o5k1c13) with -seed")
		reproOut  = flag.String("repro-out", "", "write the minimized reproducer to this file on fuzz failure")
		detect    = flag.Bool("detect", false, "run -fuzz/-schedule with detectable operations: cross-check Detect verdicts against the linearizability checker and replay cut ops through ExactlyOnce")
		combine   = flag.Bool("combine", false, "run -fuzz/-schedule with cross-operation fence combining: completed ops above the drained combine ticket may legally vanish at the crash")
		shards    = flag.Int("shards", 1, "device shards: >1 runs every round on a sharded engine with per-shard independent fault injection and shard-concurrent recovery")
	)
	flag.Parse()

	faults, err := pmem.ParseFaultSpec(*faultsStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirrorcrash: %v\n", err)
		os.Exit(2)
	}
	if *schedule != "" {
		os.Exit(replay(*structure, *engName, faults, *seed, *schedule, *detect, *combine, *shards))
	}

	var structNames, engNames []string
	if *structure == "all" {
		for n := range builders {
			structNames = append(structNames, n)
		}
	} else if _, ok := builders[*structure]; ok {
		structNames = []string{*structure}
	} else {
		fmt.Fprintf(os.Stderr, "mirrorcrash: unknown structure %q\n", *structure)
		os.Exit(2)
	}
	if *engName == "all" {
		for n := range engines {
			engNames = append(engNames, n)
		}
	} else if _, ok := engines[*engName]; ok {
		engNames = []string{*engName}
	} else {
		fmt.Fprintf(os.Stderr, "mirrorcrash: unknown engine %q\n", *engName)
		os.Exit(2)
	}

	if *fuzzN > 0 {
		os.Exit(fuzz(structNames, engNames, faults, *seed, *fuzzN, *reproOut, *detect, *combine, *shards))
	}
	if *detect || *combine {
		fmt.Fprintln(os.Stderr, "mirrorcrash: -detect/-combine require -fuzz or -schedule")
		os.Exit(2)
	}

	policies := []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom}
	totalViolations := 0
	rng := rand.New(rand.NewSource(*seed))
	for _, sn := range structNames {
		for _, en := range engNames {
			start := time.Now()
			violations := 0
			for r := 0; r < *rounds; r++ {
				vs := crashtest.Run(engines[en], builders[sn], crashtest.Config{
					Policy:    policies[r%len(policies)],
					FreezeLag: time.Duration(rng.Intn(4000)) * time.Microsecond,
					Seed:      rng.Int63(),
					Shards:    *shards,
				})
				for _, v := range vs {
					fmt.Printf("VIOLATION %s/%s round %d: key=%d %s (got present=%v, want %s)\n",
						sn, en, r, v.Key, v.Context, v.Got, v.Want)
					violations++
				}
			}
			fmt.Printf("%-10s %-12s %3d rounds, %d violations, %v\n",
				sn, en, *rounds, violations, time.Since(start).Round(time.Millisecond))
			totalViolations += violations
		}
	}
	if totalViolations > 0 {
		fmt.Printf("FAILED: %d durable-linearizability violations\n", totalViolations)
		os.Exit(1)
	}
	fmt.Println("OK: durable linearizability held in every round")
}

// crashAtFor derives a deterministic crash placement in [1, total] from a
// run seed.
func crashAtFor(seed, total int64) int64 {
	if total <= 0 {
		return 0
	}
	return int64(uint64(seed)*0x9E3779B97F4A7C15%uint64(total)) + 1
}

// fuzz drives the fault-model fuzzer: per combination, fuzzN seeded runs,
// each with a calibrated mid-flight crash placement. The first failure is
// shrunk, printed as a re-runnable reproducer, optionally written to
// reproOut, and fails the process.
func fuzz(structNames, engNames []string, faults pmem.FaultSpec, baseSeed int64, fuzzN int, reproOut string, detect, combine bool, shards int) int {
	mode := ""
	if detect {
		mode = ", detectable operations"
	}
	if combine {
		mode += ", fence combining"
	}
	if shards > 1 {
		mode += fmt.Sprintf(", %d shards", shards)
	}
	fmt.Printf("fault-fuzz: faults=%s base seed %d, %d runs per combination%s\n", faults, baseSeed, fuzzN, mode)
	for _, sn := range structNames {
		for _, en := range engNames {
			start := time.Now()
			crashed := 0
			for i := 0; i < fuzzN; i++ {
				spec := faultfuzz.Spec{
					Structure: sn,
					Kind:      engines[en],
					Faults:    faults,
					Seed:      baseSeed + int64(i),
					Schedule:  faultfuzz.Schedule{Workers: 2, OpsPer: 8, Keys: 6},
					Detect:    detect,
					Combine:   combine,
					Shards:    shards,
				}
				spec.Schedule.CrashAt = crashAtFor(spec.Seed, faultfuzz.Calibrate(spec))
				res := faultfuzz.Run(spec)
				if res.CrashedAt != 0 {
					crashed++
				}
				if !res.Failed() {
					continue
				}
				small, minRes := faultfuzz.Shrink(spec)
				repro := fmt.Sprintf("mirrorcrash %v", small)
				fmt.Printf("FAILED %s/%s run %d: %s\n", sn, en, i, minRes.Violations[0])
				fmt.Printf("reproduce with: %s\n", repro)
				if reproOut != "" {
					body := repro + "\n"
					for _, v := range minRes.Violations {
						body += "# " + v + "\n"
					}
					body += fmt.Sprintf("# media hash %#x, crashed at op %d\n", minRes.MediaHash, minRes.CrashedAt)
					if err := os.WriteFile(reproOut, []byte(body), 0o644); err != nil {
						fmt.Fprintf(os.Stderr, "mirrorcrash: writing %s: %v\n", reproOut, err)
					}
				}
				return 1
			}
			fmt.Printf("%-10s %-12s %3d fuzz runs (%d mid-flight crashes), clean, %v\n",
				sn, en, fuzzN, crashed, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Println("OK: fault fuzzing found no violations")
	return 0
}

// replay re-runs one (seed, schedule) reproducer and reports the media
// fingerprint, so a failure can be confirmed bit for bit.
func replay(structure, engName string, faults pmem.FaultSpec, seed int64, scheduleStr string, detect, combine bool, shards int) int {
	kind, ok := engines[engName]
	if !ok {
		fmt.Fprintf(os.Stderr, "mirrorcrash: -schedule needs a single engine, got %q\n", engName)
		return 2
	}
	sched, err := faultfuzz.ParseSchedule(scheduleStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirrorcrash: %v\n", err)
		return 2
	}
	spec := faultfuzz.Spec{Structure: structure, Kind: kind, Faults: faults, Seed: seed, Schedule: sched, Detect: detect, Combine: combine, Shards: shards}
	res := faultfuzz.Run(spec)
	fmt.Printf("replay %v\n  crashed at op %d of %d, media hash %#x\n",
		spec, res.CrashedAt, res.OpsTotal, res.MediaHash)
	if res.Failed() {
		for _, v := range res.Violations {
			fmt.Printf("VIOLATION: %s\n", v)
		}
		return 1
	}
	fmt.Println("OK: no violations")
	return 0
}
