// mirrord serves a durable key-value set and FIFO queue over TCP, backed by
// one of the repository's durable persistence engines. See internal/server
// for the protocol and the cross-client fence-batching write path.
//
// With -media the fenced image lives in a file-backed mapping: kill -9 the
// process, start it again with the same flags, and it attaches to the image,
// runs recovery, and serves the pre-crash state — unresolved clients ask
// DETECT for the fate of their cut operations.
//
// Example:
//
//	mirrord -addr 127.0.0.1:7070 -engine mirror -media /tmp/mirror.img
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mirror/internal/engine"
	"mirror/internal/server"
)

func engineKind(name string) (engine.Kind, bool) {
	switch name {
	case "izraelevitz":
		return engine.Izraelevitz, true
	case "nvtraverse":
		return engine.NVTraverse, true
	case "mirror":
		return engine.MirrorDRAM, true
	case "mirrornvmm":
		return engine.MirrorNVMM, true
	}
	return 0, false
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		kindName  = flag.String("engine", "mirror", "izraelevitz|nvtraverse|mirror|mirrornvmm")
		media     = flag.String("media", "", "media image file (empty: in-memory, dies with the process)")
		words     = flag.Int("words", 1<<20, "device capacity in 8-byte words")
		ring      = flag.Int("ring", 0, "per-client descriptor-ring depth (0: engine default)")
		clients   = flag.Int("clients", 64, "descriptor rings (max client id + 1)")
		workers   = flag.Int("workers", 2, "batcher goroutines")
		combine   = flag.Bool("combine", false, "enable cross-operation fence combining")
		nobatch   = flag.Bool("nobatch", false, "ablation: one fence per mutation (no cross-client batching)")
		maxBatch  = flag.Int("maxbatch", 128, "max operations per drain batch")
		batchWait = flag.Duration("batchwait", 25*time.Microsecond, "group-commit window")
	)
	flag.Parse()

	kind, ok := engineKind(*kindName)
	if !ok {
		fmt.Fprintf(os.Stderr, "mirrord: unknown engine %q\n", *kindName)
		os.Exit(2)
	}
	s, err := server.New(server.Config{
		Kind:      kind,
		Words:     *words,
		Ring:      *ring,
		Clients:   *clients,
		Workers:   *workers,
		MediaPath: *media,
		Combine:   *combine,
		NoBatch:   *nobatch,
		MaxBatch:  *maxBatch,
		BatchWait: *batchWait,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mirrord:", err)
		os.Exit(1)
	}
	if err := s.Listen(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "mirrord:", err)
		os.Exit(1)
	}
	mode := "fresh"
	if s.Attached() {
		mode = "attached"
	}
	// The "serving" line is the readiness signal test harnesses wait for.
	fmt.Printf("mirrord: serving %s on %s (engine %s, %s)\n", mode, s.Addr(), kind, *kindName)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	s.Close()
	st := s.Stats()
	fmt.Printf("mirrord: served %d ops (%d mutations, %d replays) in %d batches, %d flushes, %d fences\n",
		st.Ops, st.Mutations, st.Replays, st.Batches, st.Flushes, st.Fences)
}
