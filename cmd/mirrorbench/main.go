// Command mirrorbench regenerates the paper's evaluation figures. Each
// panel of Figure 6 (volatile replica on DRAM) and Figure 7 (both replicas
// on NVMM) is reproduced as a text table of throughput in Mops/s.
//
// Usage:
//
//	mirrorbench -list                 # enumerate the panels
//	mirrorbench -panel fig6a          # run one panel
//	mirrorbench -all                  # run everything (slow)
//	mirrorbench -panel fig6d -duration 2s -scale 32 -threads 1,2,4,8,16
//
// Absolute numbers depend on the host; the shape — who wins, by what
// factor, where the crossovers fall — is what reproduces the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mirror/internal/harness"
)

func main() {
	var (
		panelID  = flag.String("panel", "", "panel to run (e.g. fig6a); see -list")
		all      = flag.Bool("all", false, "run every panel")
		listOnly = flag.Bool("list", false, "list panels and exit")
		duration = flag.Duration("duration", 200*time.Millisecond, "measurement window per point")
		scale    = flag.Int("scale", 32, "divisor for the paper's 8M/32M structure sizes")
		threads  = flag.String("threads", "1,2,4,8,16", "comma-separated thread sweep")
		noLat    = flag.Bool("nolatency", false, "disable the DRAM/NVMM latency models")
		seed     = flag.Int64("seed", 1, "workload PRNG seed")
		space    = flag.String("space", "", "print the per-engine memory footprint for a structure (list|hashtable|bst|skiplist)")
		chart    = flag.Bool("chart", false, "render panels as ASCII charts as well")
		recovery = flag.Bool("recovery", false, "measure crash-recovery time by engine and size")
	)
	flag.Parse()

	if *space != "" {
		fmt.Print(harness.MeasureSpace(*space, 10000).Format())
		return
	}
	if *recovery {
		fmt.Print(harness.MeasureRecovery([]int{1000, 10000, 100000}).Format())
		return
	}

	if *listOnly {
		for _, p := range harness.Panels() {
			fmt.Printf("%-7s %s\n", p.ID, p.Title)
		}
		return
	}

	opts := harness.Options{
		Duration: *duration,
		Scale:    *scale,
		Latency:  !*noLat,
		Seed:     *seed,
	}
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "mirrorbench: bad thread count %q\n", part)
			os.Exit(2)
		}
		opts.Threads = append(opts.Threads, n)
	}

	fmt.Println(harness.EnvironmentNote())
	show := func(p harness.Panel) {
		tab := p.Run(opts)
		fmt.Print(tab.Format())
		if *chart {
			fmt.Println()
			fmt.Print(tab.Chart())
		}
	}
	switch {
	case *all:
		for _, p := range harness.Panels() {
			fmt.Println()
			show(p)
		}
	case *panelID != "":
		p, ok := harness.Find(*panelID)
		if !ok {
			fmt.Fprintf(os.Stderr, "mirrorbench: unknown panel %q (try -list)\n", *panelID)
			os.Exit(2)
		}
		show(p)
	default:
		fmt.Fprintln(os.Stderr, "mirrorbench: need -panel, -all, or -list")
		os.Exit(2)
	}
}
