// Command mirrorbench regenerates the paper's evaluation figures. Each
// panel of Figure 6 (volatile replica on DRAM) and Figure 7 (both replicas
// on NVMM) is reproduced as a text table of throughput in Mops/s.
//
// Usage:
//
//	mirrorbench -list                 # enumerate the panels
//	mirrorbench -panel fig6a          # run one panel
//	mirrorbench -all                  # run everything (slow)
//	mirrorbench -panel fig6d -duration 2s -scale 32 -threads 1,2,4,8,16
//	mirrorbench -recovery -sizes 1000,10000 -par 1,4   # recovery-pipeline sweep
//	mirrorbench -json BENCH_1.json    # machine-readable engine×structure matrix
//	mirrorbench -json BENCH_2.json -recovery   # matrix plus recovery section
//	mirrorbench -json BENCH_3.json -detect     # detectable-operation overhead ablation
//	mirrorbench -json BENCH_4.json -combine    # matrix plus fence-combining ablation panels
//	mirrorbench -json BENCH_5.json -shards 1,2,4 -numa 120  # plus sharded-substrate ablation
//	mirrorbench -json BENCH_6.json -serving 1,4,8 -workloads A  # plus serving-tier panels (wire YCSB, p50/p99/p999, batch ablation)
//	mirrorbench -panel fig6d -shards 2 -dist zipfian -skew 0.99  # sharded, skewed panel
//	mirrorbench -checkjson BENCH_1.json  # re-parse and validate a report
//
// Absolute numbers depend on the host; the shape — who wins, by what
// factor, where the crossovers fall — is what reproduces the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mirror/internal/engine"
	"mirror/internal/harness"
	"mirror/internal/workload"
)

// parseEngines maps comma-separated engine display names (as printed in the
// paper's legends: OrigDRAM, OrigNVMM, Izraelevitz, NVTraverse, Mirror,
// MirrorNVMM) to kinds; empty means all.
func parseEngines(s string) ([]engine.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var kinds []engine.Kind
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		found := false
		for _, k := range engine.Kinds() {
			if strings.EqualFold(k.String(), name) {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown engine %q", name)
		}
	}
	return kinds, nil
}

func main() {
	var (
		panelID  = flag.String("panel", "", "panel to run (e.g. fig6a); see -list")
		all      = flag.Bool("all", false, "run every panel")
		listOnly = flag.Bool("list", false, "list panels and exit")
		duration = flag.Duration("duration", 200*time.Millisecond, "measurement window per point")
		scale    = flag.Int("scale", 32, "divisor for the paper's 8M/32M structure sizes")
		threads  = flag.String("threads", "1,2,4,8,16", "comma-separated thread sweep")
		noLat    = flag.Bool("nolatency", false, "disable the DRAM/NVMM latency models")
		fast     = flag.Bool("fast", false, "alias for -nolatency: measure raw substrate speed")
		seed     = flag.Int64("seed", 1, "workload PRNG seed")
		space    = flag.String("space", "", "print the per-engine memory footprint for a structure (list|hashtable|bst|skiplist)")
		chart    = flag.Bool("chart", false, "render panels as ASCII charts as well")
		recovery = flag.Bool("recovery", false, "measure crash-recovery time by engine, size, and parallelism")
		sizesF   = flag.String("sizes", "1000,10000,100000", "comma-separated structure sizes for -recovery")
		parsF    = flag.String("par", "1", "comma-separated recovery-pipeline parallelism sweep for -recovery")
		jsonOut  = flag.String("json", "", "run the engine×structure benchmark matrix and write it to this file")
		checkIn  = flag.String("checkjson", "", "parse and validate a BENCH_<n>.json report, then exit")
		structsF = flag.String("structures", "", "comma-separated structure filter for -json (list,hashtable,bst,skiplist)")
		enginesF = flag.String("engines", "", "comma-separated engine filter for -json (e.g. Mirror,NVTraverse)")
		noElide  = flag.Bool("noelide", false, "disable flush elision / fence coalescing (ablation baseline)")
		detect   = flag.Bool("detect", false, "route every operation through a detectable bracket (descriptor-overhead ablation)")
		combine  = flag.Bool("combine", false, "with -json: append the fence-combining ablation panels (update-only list and queue, combine on/off in the same session); with -panel/-all: run the Mirror engines with per-thread write buffers")
		shardsF  = flag.String("shards", "", "with -json: comma-separated shard counts — append the sharded-substrate ablation panels (hash table under both Mirror engines per count; 1 = single-device baseline); with -panel/-all: run every engine sharded at the single given count")
		numaNS   = flag.Int("numa", 0, "remote-shard latency penalty in ns for sharded runs (the NUMA preset; 0 = symmetric)")
		distF    = flag.String("dist", "", "key distribution: uniform (default), zipfian, or hotspot")
		skew     = flag.Float64("skew", 0, "distribution parameter: zipfian theta (default 0.99) or hotspot access fraction (default 0.9)")
		servingF = flag.String("serving", "", "with -json: comma-separated connection counts — append the serving-tier panels (wire-protocol YCSB through an in-process mirrord with latency percentiles, batch on/off per cell)")
		workls   = flag.String("workloads", "A", "comma-separated YCSB letters (A..F) for -serving")
		pipesF   = flag.String("pipelines", "1", "comma-separated per-client pipeline depths for -serving (1 = synchronous)")
	)
	flag.Parse()

	if *checkIn != "" {
		data, err := os.ReadFile(*checkIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirrorbench: %v\n", err)
			os.Exit(1)
		}
		r, err := harness.ParseReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirrorbench: %s: %v\n", *checkIn, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%d points, %d serving points, schema %s)\n", *checkIn, len(r.Points), len(r.Serving), r.Schema)
		return
	}

	if *space != "" {
		fmt.Print(harness.MeasureSpace(*space, 10000).Format())
		return
	}
	parseInts := func(flagName, s string) []int {
		var out []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "mirrorbench: bad -%s entry %q\n", flagName, part)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	if *recovery && *jsonOut == "" {
		fmt.Print(harness.MeasureRecovery(parseInts("sizes", *sizesF), parseInts("par", *parsF)).Format())
		return
	}

	if *listOnly {
		for _, p := range harness.Panels() {
			fmt.Printf("%-7s %s\n", p.ID, p.Title)
		}
		return
	}

	if *distF != "" {
		known := false
		for _, d := range workload.Dists() {
			if d == *distF {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "mirrorbench: unknown -dist %q (want one of %s)\n",
				*distF, strings.Join(workload.Dists(), ", "))
			os.Exit(2)
		}
	}
	opts := harness.Options{
		Duration:     *duration,
		Scale:        *scale,
		Latency:      !*noLat && !*fast,
		Seed:         *seed,
		NoElide:      *noElide,
		Detect:       *detect,
		NUMARemoteNS: *numaNS,
		Dist:         *distF,
		Skew:         *skew,
	}
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "mirrorbench: bad thread count %q\n", part)
			os.Exit(2)
		}
		opts.Threads = append(opts.Threads, n)
	}
	var shardCounts []int
	if *shardsF != "" {
		shardCounts = parseInts("shards", *shardsF)
	}

	if *jsonOut != "" {
		var structs []string
		if *structsF != "" {
			for _, part := range strings.Split(*structsF, ",") {
				structs = append(structs, strings.TrimSpace(part))
			}
		}
		kinds, err := parseEngines(*enginesF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirrorbench: %v\n", err)
			os.Exit(2)
		}
		report := harness.RunBenchMatrix(opts, structs, kinds, opts.Threads)
		if *combine {
			harness.AppendCombineAblation(report, opts, opts.Threads)
		}
		if len(shardCounts) > 0 {
			harness.AppendShardAblation(report, opts, shardCounts, opts.Threads)
		}
		if *servingF != "" {
			var letters []byte
			for _, part := range strings.Split(*workls, ",") {
				part = strings.TrimSpace(part)
				if len(part) != 1 {
					fmt.Fprintf(os.Stderr, "mirrorbench: bad -workloads entry %q (want single letters A..F)\n", part)
					os.Exit(2)
				}
				letters = append(letters, part[0])
			}
			// Serving panels run the durable subset of the engine filter
			// (an acknowledgement from a volatile server would be a lie);
			// with no filter, all durable kinds.
			var durable []engine.Kind
			for _, k := range kinds {
				if k.Durable() {
					durable = append(durable, k)
				}
			}
			err := harness.AppendServingAblation(report, opts, harness.ServingConfig{
				Conns:     parseInts("serving", *servingF),
				Pipelines: parseInts("pipelines", *pipesF),
				Workloads: letters,
				Kinds:     durable,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mirrorbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *recovery {
			report.Recovery = harness.RecoveryPoints(
				harness.MeasureRecovery(parseInts("sizes", *sizesF), parseInts("par", *parsF)))
		}
		data, err := harness.MarshalReport(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirrorbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mirrorbench: %v\n", err)
			os.Exit(1)
		}
		if len(report.Serving) > 0 {
			fmt.Printf("wrote %s (%d points, %d serving points)\n", *jsonOut, len(report.Points), len(report.Serving))
		} else {
			fmt.Printf("wrote %s (%d points)\n", *jsonOut, len(report.Points))
		}
		return
	}

	// Panel mode: -combine switches the Mirror engines themselves over to
	// the combining write path, and -shards runs every engine-backed
	// competitor sharded at one count. (In -json mode the flags instead
	// append dedicated ablation panels, keeping the base matrix comparable.)
	opts.Combine = *combine
	if len(shardCounts) > 1 {
		fmt.Fprintln(os.Stderr, "mirrorbench: panel mode takes a single -shards count (sweeps need -json)")
		os.Exit(2)
	}
	if len(shardCounts) == 1 {
		opts.Shards = shardCounts[0]
	}

	fmt.Println(harness.EnvironmentNote())
	show := func(p harness.Panel) {
		tab := p.Run(opts)
		fmt.Print(tab.Format())
		if *chart {
			fmt.Println()
			fmt.Print(tab.Chart())
		}
	}
	switch {
	case *all:
		for _, p := range harness.Panels() {
			fmt.Println()
			show(p)
		}
	case *panelID != "":
		p, ok := harness.Find(*panelID)
		if !ok {
			fmt.Fprintf(os.Stderr, "mirrorbench: unknown panel %q (try -list)\n", *panelID)
			os.Exit(2)
		}
		show(p)
	default:
		fmt.Fprintln(os.Stderr, "mirrorbench: need -panel, -all, or -list")
		os.Exit(2)
	}
}
