package zuriel

import (
	"math/rand"
	"sync"
	"testing"

	"mirror/internal/pmem"
)

// factories enumerates the four variants under test.
func factories() map[string]func() Set {
	return map[string]func() Set{
		"LinkFree-list": func() Set { return NewLinkFree(Config{Words: 1 << 20, Track: true}) },
		"LinkFree-hash": func() Set { return NewLinkFree(Config{Words: 1 << 20, Buckets: 64, Track: true}) },
		"SOFT-list":     func() Set { return NewSoft(Config{Words: 1 << 20, Track: true}) },
		"SOFT-hash":     func() Set { return NewSoft(Config{Words: 1 << 20, Buckets: 64, Track: true}) },
	}
}

func forEach(t *testing.T, f func(t *testing.T, s Set)) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) { f(t, mk()) })
	}
}

func TestMetaChecksum(t *testing.T) {
	m := metaFor(stateInserted, 10, 20)
	if got := metaState(m, 10, 20); got != stateInserted {
		t.Errorf("metaState = %d, want inserted", got)
	}
	if got := metaState(m, 11, 20); got != stateInvalid {
		t.Errorf("torn key accepted: %d", got)
	}
	if got := metaState(m, 10, 21); got != stateInvalid {
		t.Errorf("torn value accepted: %d", got)
	}
	m2 := m&^stateMask | stateDeleted
	if got := metaState(m2, 10, 20); got != stateDeleted {
		t.Errorf("deleted state = %d", got)
	}
	if got := metaState(0, 0, 0); got != stateInvalid {
		// all-zero memory must read as invalid, not as key 0 inserted
		t.Errorf("zero word state = %d, want invalid", got)
	}
}

func TestBasicSemantics(t *testing.T) {
	forEach(t, func(t *testing.T, s Set) {
		c := s.NewCtx()
		if s.Contains(c, 5) || s.Delete(c, 5) {
			t.Error("empty set misbehaves")
		}
		if !s.Insert(c, 5, 50) {
			t.Fatal("insert failed")
		}
		if s.Insert(c, 5, 51) {
			t.Error("duplicate insert succeeded")
		}
		if v, ok := s.Get(c, 5); !ok || v != 50 {
			t.Errorf("Get = (%d,%v)", v, ok)
		}
		if !s.Delete(c, 5) || s.Contains(c, 5) || s.Delete(c, 5) {
			t.Error("delete semantics broken")
		}
		if !s.Insert(c, 5, 52) {
			t.Error("re-insert failed")
		}
	})
}

func TestBatchRandomAgainstModel(t *testing.T) {
	forEach(t, func(t *testing.T, s Set) {
		c := s.NewCtx()
		rng := rand.New(rand.NewSource(11))
		model := make(map[uint64]uint64)
		for i := 0; i < 3000; i++ {
			key := uint64(rng.Intn(300) + 1)
			switch rng.Intn(3) {
			case 0:
				val := rng.Uint64() >> 1
				_, present := model[key]
				if got := s.Insert(c, key, val); got == present {
					t.Fatalf("op %d: Insert(%d) = %v, present=%v", i, key, got, present)
				}
				if !present {
					model[key] = val
				}
			case 1:
				_, present := model[key]
				if got := s.Delete(c, key); got != present {
					t.Fatalf("op %d: Delete(%d) = %v, want %v", i, key, got, present)
				}
				delete(model, key)
			default:
				want, present := model[key]
				got, ok := s.Get(c, key)
				if ok != present || (ok && got != want) {
					t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, key, got, ok, want, present)
				}
			}
		}
	})
}

func TestConcurrentDistinctRanges(t *testing.T) {
	forEach(t, func(t *testing.T, s Set) {
		const workers = 8
		const per = 300
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := s.NewCtx()
				base := uint64(w*per + 1)
				for i := uint64(0); i < per; i++ {
					if !s.Insert(c, base+i, base+i) {
						t.Errorf("insert %d failed", base+i)
						return
					}
				}
				for i := uint64(0); i < per; i += 2 {
					if !s.Delete(c, base+i) {
						t.Errorf("delete %d failed", base+i)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		c := s.NewCtx()
		for key := uint64(1); key <= workers*per; key++ {
			want := (key-1)%2 == 1
			if got := s.Contains(c, key); got != want {
				t.Fatalf("key %d: %v, want %v", key, got, want)
			}
		}
	})
}

func TestUpdatesAreSingleFence(t *testing.T) {
	// The headline property of the hand-made sets: one flush+fence per
	// update, none per uncontended lookup.
	s := NewLinkFree(Config{Words: 1 << 20, Track: true})
	c := s.NewCtx()
	f0, n0 := s.Counters()
	for k := uint64(1); k <= 100; k++ {
		s.Insert(c, k, k)
	}
	f1, n1 := s.Counters()
	if f1-f0 != 100 || n1-n0 != 100 {
		t.Errorf("100 inserts: %d flushes, %d fences; want 100 each", f1-f0, n1-n0)
	}
	for k := uint64(1); k <= 100; k++ {
		s.Contains(c, k)
	}
	f2, n2 := s.Counters()
	if f2 != f1 || n2 != n1 {
		t.Errorf("lookups issued %d flushes, %d fences; want 0", f2-f1, n2-n1)
	}
	for k := uint64(1); k <= 100; k++ {
		s.Delete(c, k)
	}
	f3, n3 := s.Counters()
	if f3-f2 != 100 || n3-n2 != 100 {
		t.Errorf("100 deletes: %d flushes, %d fences; want 100 each", f3-f2, n3-n2)
	}
}

func TestQuiescedCrashRecovery(t *testing.T) {
	forEach(t, func(t *testing.T, s Set) {
		c := s.NewCtx()
		rng := rand.New(rand.NewSource(23))
		model := make(map[uint64]uint64)
		for i := 0; i < 2000; i++ {
			key := uint64(rng.Intn(250) + 1)
			if rng.Intn(3) > 0 {
				val := uint64(rng.Intn(1 << 30))
				if s.Insert(c, key, val) {
					model[key] = val
				}
			} else {
				s.Delete(c, key)
				delete(model, key)
			}
		}
		for _, policy := range []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom} {
			s.Crash(policy, rng)
			s.Recover()
			c = s.NewCtx()
			for key := uint64(1); key <= 250; key++ {
				want, present := model[key]
				got, ok := s.Get(c, key)
				if ok != present || (ok && got != want) {
					t.Fatalf("policy %v: key %d = (%d,%v), want (%d,%v)",
						policy, key, got, ok, want, present)
				}
			}
			if !s.Insert(c, 9999, 1) || !s.Delete(c, 9999) {
				t.Fatal("set not operational after recovery")
			}
		}
	})
}

func TestRecoveryNoPhantomAfterReuse(t *testing.T) {
	// Insert, delete, crash+recover twice: stale valid-looking nodes
	// from the first life must not resurrect deleted keys.
	forEach(t, func(t *testing.T, s Set) {
		rng := rand.New(rand.NewSource(31))
		c := s.NewCtx()
		for k := uint64(1); k <= 200; k++ {
			s.Insert(c, k, k)
		}
		s.Crash(pmem.CrashKeepAll, rng)
		s.Recover()
		c = s.NewCtx()
		for k := uint64(1); k <= 200; k += 2 {
			if !s.Delete(c, k) {
				t.Fatalf("post-recovery delete %d failed", k)
			}
		}
		s.Crash(pmem.CrashKeepAll, rng)
		s.Recover()
		c = s.NewCtx()
		for k := uint64(1); k <= 200; k++ {
			want := k%2 == 0
			if got := s.Contains(c, k); got != want {
				t.Fatalf("key %d after double recovery: %v, want %v", k, got, want)
			}
		}
	})
}

func TestCrashMidWorkloadSingleWriterPerKey(t *testing.T) {
	forEach(t, func(t *testing.T, s Set) {
		rng := rand.New(rand.NewSource(101))
		const workers = 4
		const keysPer = 32
		type rec struct {
			completed map[uint64]bool // key -> present after last completed op
			inflight  uint64          // key with an op possibly cut by the crash
		}
		recs := make([]rec, workers)
		var wg sync.WaitGroup
		// Freeze mid-run from a controller goroutine.
		go func() {
			for i := 0; i < 50000; i++ {
			}
			s.Freeze()
		}()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil && r != pmem.ErrFrozen {
						panic(r)
					}
				}()
				c := s.NewCtx()
				lrng := rand.New(rand.NewSource(int64(w)))
				recs[w].completed = make(map[uint64]bool)
				base := uint64(w*keysPer + 1)
				for i := 0; i < 100000; i++ {
					key := base + uint64(lrng.Intn(keysPer))
					recs[w].inflight = key
					if lrng.Intn(2) == 0 {
						if s.Insert(c, key, key) {
							recs[w].completed[key] = true
						}
					} else {
						if s.Delete(c, key) {
							recs[w].completed[key] = false
						}
					}
					recs[w].inflight = 0
				}
			}(w)
		}
		wg.Wait()
		s.Crash(pmem.CrashRandom, rng)
		s.Recover()
		c := s.NewCtx()
		for w := 0; w < workers; w++ {
			for key, present := range recs[w].completed {
				if key == recs[w].inflight {
					continue // the cut operation may go either way
				}
				if got := s.Contains(c, key); got != present {
					t.Fatalf("worker %d key %d: contains=%v, want %v (durable linearizability)",
						w, key, got, present)
				}
			}
		}
	})
}

func TestParallelRecoveryMatchesSequential(t *testing.T) {
	forEach(t, func(t *testing.T, s Set) {
		c := s.NewCtx()
		rng := rand.New(rand.NewSource(41))
		model := make(map[uint64]uint64)
		for i := 0; i < 2000; i++ {
			key := uint64(rng.Intn(250) + 1)
			if rng.Intn(3) > 0 {
				val := uint64(rng.Intn(1 << 30))
				if s.Insert(c, key, val) {
					model[key] = val
				}
			} else {
				s.Delete(c, key)
				delete(model, key)
			}
		}
		// Alternate sequential and parallel recoveries over repeated
		// crashes of the evolving image; each must reproduce the model.
		for round, workers := range []int{1, 4, 2, 8} {
			s.Crash(pmem.CrashKeepAll, rng)
			s.RecoverParallel(workers)
			c = s.NewCtx()
			for key := uint64(1); key <= 250; key++ {
				want, present := model[key]
				got, ok := s.Get(c, key)
				if ok != present || (ok && got != want) {
					t.Fatalf("round %d workers %d: key %d = (%d,%v), want (%d,%v)",
						round, workers, key, got, ok, want, present)
				}
			}
			if !s.Insert(c, 9999, 1) || !s.Delete(c, 9999) {
				t.Fatalf("round %d: set not operational after parallel recovery", round)
			}
		}
	})
}
