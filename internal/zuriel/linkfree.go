package zuriel

import (
	"math/rand"
	"sync"

	"mirror/internal/engine"
	"mirror/internal/palloc"
	"mirror/internal/pmem"
)

// Link-Free node layout (4 words on NVMM).
const (
	lfKey  = 0
	lfVal  = 1
	lfMeta = 2
	lfNext = 3
	lfSize = 4
)

// lfHeadSlot is the device offset of the list head (single-list mode).
const lfHeadSlot = 8

// LinkFree is Zuriel et al.'s Link-Free durable set: one node per element
// on NVMM, pointers never flushed, one flush+fence per update.
type LinkFree struct {
	dev      *pmem.Device
	buckets  int       // 0 = single list
	det      *detector // nil when Config.Clients == 0
	clients  int
	heapBase uint64 // node-heap base (above head slots and descriptors)

	mu    sync.Mutex
	alloc *palloc.Allocator
	recl  *palloc.Reclaimer
}

// NewLinkFree creates a Link-Free set (a list, or a hash table when
// cfg.Buckets is a power of two).
func NewLinkFree(cfg Config) *LinkFree {
	cfg.setDefaults()
	if cfg.Buckets < 0 || (cfg.Buckets > 0 && cfg.Buckets&(cfg.Buckets-1) != 0) {
		panic("zuriel: bucket count must be a power of two")
	}
	model := pmem.NoLatency()
	if cfg.Latency {
		model = pmem.NVMMModel()
	}
	s := &LinkFree{
		dev: pmem.New(pmem.Config{
			Name: "LinkFree", Words: cfg.Words,
			Persistent: true, Track: cfg.Track, Model: model,
		}),
		buckets: cfg.Buckets,
	}
	base := uint64(lfHeadSlot + 8)
	if cfg.Buckets > 0 {
		base = uint64(lfHeadSlot + cfg.Buckets)
		base = (base + palloc.AlignWords - 1) &^ (palloc.AlignWords - 1)
	}
	// Descriptor slots sit between the head slots and the node heap, so the
	// recovery sanitize wipe never reaches them.
	s.det, s.heapBase = newDetector(s.dev, base, cfg.Clients)
	s.clients = cfg.Clients
	s.initVolatile()
	return s
}

// initVolatile (re)creates the allocator, reclaimer, and bucket slots; the
// head slots themselves are volatile data (never flushed).
func (s *LinkFree) initVolatile() {
	s.alloc = palloc.New(palloc.Config{Base: s.heapBase, End: uint64(s.dev.Size())})
	s.recl = palloc.NewReclaimer()
	n := 1
	if s.buckets > 0 {
		n = s.buckets
	}
	for i := 0; i < n; i++ {
		s.dev.WriteRaw(uint64(lfHeadSlot+i), 0)
	}
}

// Name implements Set.
func (s *LinkFree) Name() string {
	if s.buckets > 0 {
		return "LinkFree-hash"
	}
	return "LinkFree"
}

// NewCtx implements Set.
func (s *LinkFree) NewCtx() *Ctx {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Ctx{p: palloc.NewCache(s.alloc, s.recl)}
}

func (s *LinkFree) headSlot(key uint64) uint64 {
	if s.buckets == 0 {
		return lfHeadSlot
	}
	idx := (key * 11400714819323198485) >> (64 - uint(bitsLen(s.buckets)))
	return uint64(lfHeadSlot) + idx
}

func bitsLen(pow2 int) int {
	n := 0
	for v := pow2; v > 1; v >>= 1 {
		n++
	}
	return n
}

// flushNode persists a node's content line(s) and fences.
func (s *LinkFree) flushNode(c *Ctx, node uint64) {
	s.dev.Flush(&c.fs, node)
	s.dev.Fence(&c.fs)
}

// persistDelete moves a marked node's state to deleted and persists it;
// idempotent, called by the deleter and by helpers that observe the mark.
func (s *LinkFree) persistDelete(c *Ctx, node uint64) {
	meta := s.dev.Load(node + lfMeta)
	if meta&stateMask != stateDeleted {
		s.dev.CAS(node+lfMeta, meta, meta&^stateMask|stateDeleted)
	}
	s.flushNode(c, node)
}

// find locates key in the bucket list: predSlot is the word holding the
// reference to curr; curr is the first node with key' >= key, or 0. Marked
// nodes are persisted (helping) and unlinked on the way.
func (s *LinkFree) find(c *Ctx, key uint64) (predSlot, curr uint64) {
retry:
	for {
		predSlot = s.headSlot(key)
		curr = unmark(s.dev.Load(predSlot))
		for curr != 0 {
			next := s.dev.Load(curr + lfNext)
			if marked(next) {
				s.persistDelete(c, curr)
				if !s.dev.CAS(predSlot, curr, unmark(next)) {
					continue retry
				}
				c.p.Retire(curr, lfSize)
				curr = unmark(next)
				continue
			}
			if s.dev.Load(curr+lfKey) >= key {
				return predSlot, curr
			}
			predSlot = curr + lfNext
			curr = unmark(next)
		}
		return predSlot, 0
	}
}

// rollback invalidates and frees a node whose insert lost its race, so a
// later heap scan cannot resurrect it.
func (s *LinkFree) rollback(c *Ctx, node uint64) {
	s.dev.Store(node+lfMeta, stateInvalid)
	s.flushNode(c, node)
	c.p.Free(node, lfSize)
}

// Insert implements Set. The node is fully persisted *before* it is
// linked, so a linked node never needs helping.
func (s *LinkFree) Insert(c *Ctx, key, val uint64) bool {
	c.p.Enter()
	defer c.p.Exit()
	var node uint64
	for {
		predSlot, curr := s.find(c, key)
		if curr != 0 && s.dev.Load(curr+lfKey) == key {
			if node != 0 {
				s.rollback(c, node)
			}
			return false
		}
		if node == 0 {
			node = c.p.Alloc(lfSize)
			s.dev.Store(node+lfKey, key)
			s.dev.Store(node+lfVal, val)
			s.dev.Store(node+lfMeta, metaFor(stateInserted, key, val))
			s.flushNode(c, node) // the one persistence barrier per insert
		}
		s.dev.Store(node+lfNext, curr) // pointer: never flushed
		if s.dev.CAS(predSlot, curr, node) {
			// The node was persisted before the link: the insert is durable,
			// so the detectable verdict may publish (no-op when unarmed).
			s.det.linearized(c, true)
			return true
		}
	}
}

// Delete implements Set. The mark CAS is the linearization point; the
// deleted state is persisted before the operation returns.
func (s *LinkFree) Delete(c *Ctx, key uint64) bool {
	c.p.Enter()
	defer c.p.Exit()
	for {
		predSlot, curr := s.find(c, key)
		if curr == 0 || s.dev.Load(curr+lfKey) != key {
			return false
		}
		next := s.dev.Load(curr + lfNext)
		if marked(next) {
			continue // a racing delete wins; find will help persist it
		}
		if !s.dev.CAS(curr+lfNext, next, next|markBit) {
			continue
		}
		s.persistDelete(c, curr)
		// Only now is the deleted state durable — the mark CAS alone lives
		// in a never-flushed word, and recovery would resurrect the key.
		s.det.linearized(c, true)
		if s.dev.CAS(predSlot, curr, next) {
			c.p.Retire(curr, lfSize)
		}
		return true
	}
}

// Contains implements Set.
func (s *LinkFree) Contains(c *Ctx, key uint64) bool {
	_, ok := s.Get(c, key)
	return ok
}

// Get implements Set: a no-flush traversal unless it must help persist an
// in-flight deletion its answer depends on.
func (s *LinkFree) Get(c *Ctx, key uint64) (uint64, bool) {
	c.p.Enter()
	defer c.p.Exit()
	curr := unmark(s.dev.Load(s.headSlot(key)))
	for curr != 0 {
		k := s.dev.Load(curr + lfKey)
		next := s.dev.Load(curr + lfNext)
		if k >= key {
			if k != key {
				return 0, false
			}
			if marked(next) {
				// Result depends on an unpersisted delete: help first.
				s.persistDelete(c, curr)
				return 0, false
			}
			return s.dev.Load(curr + lfVal), true
		}
		curr = unmark(next)
	}
	return 0, false
}

// Freeze implements Set.
// InjectFaults installs the fault model on the node-heap device.
func (s *LinkFree) InjectFaults(fm *pmem.FaultModel) { s.dev.InjectFaults(fm) }

func (s *LinkFree) Freeze() { s.dev.Freeze() }

// Crash implements Set.
func (s *LinkFree) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	s.dev.Freeze()
	s.dev.Crash(policy, rng)
}

// Recover implements Set: sweep the node heap for checksum-valid inserted
// nodes, then rebuild the structure from scratch with fresh allocator
// state — Zuriel's recovery, which is what makes not persisting pointers
// sound. Idempotent: a crash during recovery re-scans both old and
// re-inserted nodes and deduplicates by key.
func (s *LinkFree) Recover() { s.RecoverParallel(1) }

// RecoverParallel implements Set: the heap scan, the sanitize wipe, and the
// re-insert replay each partition across the workers; the scan's offset-
// order merge keeps the surviving set identical to sequential recovery.
func (s *LinkFree) RecoverParallel(workers int) {
	if workers < 1 {
		workers = 1
	}
	s.mu.Lock()
	frontier := s.alloc.Frontier()
	base := s.alloc.Base()
	s.mu.Unlock()
	live := scanLive(s.dev, base, frontier, lfSize, lfKey, lfVal, lfMeta, workers)
	sanitizeHeap(s.dev, base, frontier, workers)
	if s.det != nil {
		s.det.desc.Scrub()
	}
	s.mu.Lock()
	s.initVolatile()
	s.mu.Unlock()
	reinsert(live, workers, s.NewCtx, s.Insert)
}

// Counters implements Set.
func (s *LinkFree) Counters() (uint64, uint64) { return s.dev.Counters() }

// Clients implements Set.
func (s *LinkFree) Clients() int { return s.clients }

// DetectBegin implements Set.
func (s *LinkFree) DetectBegin(c *Ctx, client int, seq, kind, key, val uint64) {
	s.det.begin(c, client, seq, kind, key, val)
}

// DetectEnd implements Set.
func (s *LinkFree) DetectEnd(c *Ctx, result bool) { s.det.end(c, result) }

// Detect implements Set.
func (s *LinkFree) Detect(client int, seq uint64) engine.DetectResult {
	if s.det == nil {
		panic("zuriel: Detect with detectability disabled (Config.Clients == 0)")
	}
	return s.det.desc.Detect(client, seq)
}

var _ Set = (*LinkFree)(nil)
