// Package zuriel implements the hand-made durable sets of Zuriel et al.
// [OOPSLA 2019] that the paper benchmarks against: Link-Free and SOFT.
// Both avoid persisting pointers entirely — only node *contents* (key,
// value, alive-state) are ever flushed, one flush+fence per update and none
// per lookup — and recovery reconstructs the links by scanning the node
// heap for valid nodes.
//
//   - Link-Free keeps single nodes on NVMM; the next pointers live in the
//     same nodes but are simply never flushed.
//   - SOFT splits each element into a persistent node (PNode: contents
//     only) and a volatile list node (VNode) holding the links — the
//     "split nodes" whose extra space the paper remarks on (§6.2.3). Both
//     halves live at NVMM speed, as in the original artifact, but only
//     PNodes are ever flushed.
//
// The originals guard recycled nodes against torn initialization at crash
// time with a per-incarnation validity-bit scheme; this implementation
// simulates it with a content checksum folded into the state word, which
// detects any torn subset of a node's words at recovery with the same
// effect (see DESIGN.md). Deletions mark the volatile link first (the
// linearization point), persist the node's deleted state before the
// operation returns, and any operation that observes a marked node helps
// persist that deletion before relying on it — Zuriel's helping rule, which
// is what makes the sets durably linearizable.
package zuriel

import (
	"math/rand"

	"mirror/internal/palloc"
	"mirror/internal/pmem"
)

// Node states stored in the low bits of the meta word.
const (
	stateInvalid  = uint64(0)
	stateInserted = uint64(1)
	stateDeleted  = uint64(2)
	stateMask     = uint64(3)
)

// mix produces the 62-bit content checksum standing in for the validity
// bits: recovery accepts a node only if its state word checksums its key
// and value, so any torn persistence of a recycled node is rejected.
func mix(key, val uint64) uint64 {
	x := key*0x9e3779b97f4a7c15 ^ val
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x >> 2
}

func metaFor(state, key, val uint64) uint64 { return state | mix(key, val)<<2 }

// metaState validates meta against the node contents and returns the state,
// or stateInvalid if the checksum does not match.
func metaState(meta, key, val uint64) uint64 {
	if meta>>2 != mix(key, val) {
		return stateInvalid
	}
	return meta & stateMask
}

// markBit marks a (volatile) next reference as logically deleted.
const markBit = uint64(1)

func marked(ref uint64) bool   { return ref&markBit != 0 }
func unmark(ref uint64) uint64 { return ref &^ markBit }

// Ctx is the per-thread context for a zuriel set.
type Ctx struct {
	p  *palloc.Cache // persistent-node cache
	v  *palloc.Cache // volatile-node cache (SOFT only)
	fs pmem.FlushSet
}

// Set is the common interface of the two hand-made durable sets.
type Set interface {
	Name() string
	NewCtx() *Ctx
	Insert(c *Ctx, key, val uint64) bool
	Delete(c *Ctx, key uint64) bool
	Contains(c *Ctx, key uint64) bool
	Get(c *Ctx, key uint64) (uint64, bool)
	// Freeze unwinds in-flight operations; Crash takes the power failure;
	// Recover rebuilds the set from the persistent node heap.
	Freeze()
	Crash(policy pmem.CrashPolicy, rng *rand.Rand)
	Recover()
	// Counters reports cumulative flushes and fences.
	Counters() (flushes, fences uint64)
}

// Config describes a zuriel set instance.
type Config struct {
	Words   int  // device capacity in words
	Buckets int  // 0 = plain list; otherwise power-of-two hash table
	Latency bool // apply NVMM latency models
	Track   bool // maintain media (crash tests)
}

func (c *Config) setDefaults() {
	if c.Words == 0 {
		c.Words = 1 << 20
	}
}
