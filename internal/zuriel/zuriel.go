// Package zuriel implements the hand-made durable sets of Zuriel et al.
// [OOPSLA 2019] that the paper benchmarks against: Link-Free and SOFT.
// Both avoid persisting pointers entirely — only node *contents* (key,
// value, alive-state) are ever flushed, one flush+fence per update and none
// per lookup — and recovery reconstructs the links by scanning the node
// heap for valid nodes.
//
//   - Link-Free keeps single nodes on NVMM; the next pointers live in the
//     same nodes but are simply never flushed.
//   - SOFT splits each element into a persistent node (PNode: contents
//     only) and a volatile list node (VNode) holding the links — the
//     "split nodes" whose extra space the paper remarks on (§6.2.3). Both
//     halves live at NVMM speed, as in the original artifact, but only
//     PNodes are ever flushed.
//
// The originals guard recycled nodes against torn initialization at crash
// time with a per-incarnation validity-bit scheme; this implementation
// simulates it with a content checksum folded into the state word, which
// detects any torn subset of a node's words at recovery with the same
// effect (see DESIGN.md). Deletions mark the volatile link first (the
// linearization point), persist the node's deleted state before the
// operation returns, and any operation that observes a marked node helps
// persist that deletion before relying on it — Zuriel's helping rule, which
// is what makes the sets durably linearizable.
package zuriel

import (
	"fmt"
	"math/rand"

	"mirror/internal/engine"
	"mirror/internal/palloc"
	"mirror/internal/pmem"
	"mirror/internal/recovery"
)

// Node states stored in the low bits of the meta word.
const (
	stateInvalid  = uint64(0)
	stateInserted = uint64(1)
	stateDeleted  = uint64(2)
	stateMask     = uint64(3)
)

// mix produces the 62-bit content checksum standing in for the validity
// bits: recovery accepts a node only if its state word checksums its key
// and value, so any torn persistence of a recycled node is rejected.
func mix(key, val uint64) uint64 {
	x := key*0x9e3779b97f4a7c15 ^ val
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x >> 2
}

func metaFor(state, key, val uint64) uint64 { return state | mix(key, val)<<2 }

// metaState validates meta against the node contents and returns the state,
// or stateInvalid if the checksum does not match.
func metaState(meta, key, val uint64) uint64 {
	if meta>>2 != mix(key, val) {
		return stateInvalid
	}
	return meta & stateMask
}

// markBit marks a (volatile) next reference as logically deleted.
const markBit = uint64(1)

func marked(ref uint64) bool   { return ref&markBit != 0 }
func unmark(ref uint64) uint64 { return ref &^ markBit }

// Ctx is the per-thread context for a zuriel set.
type Ctx struct {
	p   *palloc.Cache // persistent-node cache
	v   *palloc.Cache // volatile-node cache (SOFT only)
	fs  pmem.FlushSet
	det detState // in-flight detectable-operation bracket
}

// detState tracks one context's armed detectable operation.
type detState struct {
	armed, delivered bool
	client           int
	seq              uint64
}

// detector wires an engine.DescRegion into a zuriel set. The descriptor
// slots live on the persistent device *below* the node-heap base, so the
// recovery sanitize wipe (which zeroes [alloc.Base, frontier)) can never
// touch them.
//
// Unlike the pointer-traced engine structures — where an unpublished node
// is unreachable and thus invisible to recovery — zuriel recovery
// resurrects any checksum-valid node the heap scan finds. An evicted cache
// line can therefore make an operation's effect durable before the
// operation fences anything, so the announce must be durable *before the
// first node store*: every mutating bracket announces eagerly (fence in
// Begin), and the verdict is published only after the effect's own
// persistence barrier (the pre-link flushNode for inserts, persistDelete
// for deletes).
type detector struct {
	desc *engine.DescRegion
}

// newDetector reserves the descriptor region at base (line-aligned up) and
// returns the detector plus the first free word after it — the node heap's
// new base. clients <= 0 reserves nothing.
func newDetector(dev *pmem.Device, base uint64, clients int) (*detector, uint64) {
	if clients <= 0 {
		return nil, base
	}
	base = (base + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	d := &detector{desc: engine.NewDescRegion(dev, base, clients, 1, true)}
	return d, base + d.desc.Words()
}

func (d *detector) begin(c *Ctx, client int, seq, kind, key, val uint64) {
	if d == nil {
		panic("zuriel: detectability is disabled (Config.Clients == 0)")
	}
	if c.det.armed {
		panic("zuriel: DetectBegin inside an armed detectable operation")
	}
	c.det = detState{armed: true, client: client, seq: seq}
	d.desc.Begin(&c.fs, client, seq, kind, key, val, false)
}

// linearized publishes the verdict once the operation's effect is durable;
// it is a no-op without an armed bracket, so the structure code can call it
// unconditionally.
func (d *detector) linearized(c *Ctx, result bool) {
	if d == nil || !c.det.armed || c.det.delivered {
		return
	}
	d.desc.Publish(&c.fs, c.det.client, c.det.seq, result, 0)
	c.det.delivered = true
}

// end publishes the verdict if the operation never hit linearized (failed
// and read-only paths) and issues the terminal verdict fence.
func (d *detector) end(c *Ctx, result bool) {
	if d == nil || !c.det.armed {
		return
	}
	if !c.det.delivered {
		d.desc.Publish(&c.fs, c.det.client, c.det.seq, result, 0)
	}
	d.desc.End(&c.fs)
	c.det = detState{}
}

// Set is the common interface of the two hand-made durable sets.
type Set interface {
	Name() string
	NewCtx() *Ctx
	Insert(c *Ctx, key, val uint64) bool
	Delete(c *Ctx, key uint64) bool
	Contains(c *Ctx, key uint64) bool
	Get(c *Ctx, key uint64) (uint64, bool)
	// InjectFaults installs an adversarial persistence fault model on the
	// set's persistent device (nil removes it); see pmem.FaultModel.
	InjectFaults(fm *pmem.FaultModel)
	// Freeze unwinds in-flight operations; Crash takes the power failure;
	// Recover rebuilds the set from the persistent node heap.
	Freeze()
	Crash(policy pmem.CrashPolicy, rng *rand.Rand)
	Recover()
	// RecoverParallel is Recover with the heap scan, sanitize, and
	// re-insert phases partitioned across the given number of workers;
	// RecoverParallel(1) is exactly Recover.
	RecoverParallel(workers int)
	// Counters reports cumulative flushes and fences.
	Counters() (flushes, fences uint64)
	// Detectability (the zuriel counterpart of engine.Engine's detectable
	// brackets; requires Config.Clients > 0). DetectBegin durably announces
	// (client, seq, payload) before the operation; DetectEnd publishes and
	// fences the verdict; Detect answers "did my last operation commit?"
	// on the quiesced, crashed, or recovered set.
	DetectBegin(c *Ctx, client int, seq, kind, key, val uint64)
	DetectEnd(c *Ctx, result bool)
	Detect(client int, seq uint64) engine.DetectResult
	// Clients reports the number of reserved descriptor slots (0 = off).
	Clients() int
}

// Config describes a zuriel set instance.
type Config struct {
	Words   int  // device capacity in words
	Buckets int  // 0 = plain list; otherwise power-of-two hash table
	Latency bool // apply NVMM latency models
	Track   bool // maintain media (crash tests)
	// Clients reserves per-client operation-descriptor slots below the node
	// heap for detectable operations; 0 leaves the layout unchanged.
	Clients int
}

func (c *Config) setDefaults() {
	if c.Words == 0 {
		c.Words = 1 << 20
	}
}

// kv is one surviving element found by the recovery heap scan.
type kv struct{ key, val uint64 }

// scanLive sweeps the node heap [base, frontier) for checksum-valid
// inserted nodes, with the slot range partitioned across workers. The
// per-segment results are merged in ascending offset order through one
// seen-set, so the surviving (key, value) list — first valid node per key
// wins — is identical to the sequential scan's regardless of worker count.
func scanLive(dev *pmem.Device, base, frontier uint64, size, keyF, valF, metaF, workers int) []kv {
	slots := 0
	if frontier > base {
		slots = int(frontier-base) / size
	}
	segs := recovery.Chunks(slots, workers)
	found := make([][]kv, len(segs))
	recovery.Run(workers, len(segs), func(i int) {
		for slot := segs[i][0]; slot < segs[i][1]; slot++ {
			off := base + uint64(slot*size)
			key := dev.ReadRaw(off + uint64(keyF))
			val := dev.ReadRaw(off + uint64(valF))
			meta := dev.ReadRaw(off + uint64(metaF))
			if metaState(meta, key, val) == stateInserted {
				found[i] = append(found[i], kv{key, val})
			}
		}
	})
	var live []kv
	seen := make(map[uint64]bool)
	for _, part := range found {
		for _, e := range part {
			if !seen[e.key] {
				seen[e.key] = true
				live = append(live, e)
			}
		}
	}
	return live
}

// sanitizeHeap zeroes the old node heap (workers splitting the range) and
// persists the wipe, so stale valid-looking nodes beyond the fresh
// allocator's frontier can never be resurrected by a later scan.
func sanitizeHeap(dev *pmem.Device, base, frontier uint64, workers int) {
	if frontier <= base {
		return
	}
	n := int(frontier - base)
	segs := recovery.Chunks(n, workers)
	recovery.Run(workers, len(segs), func(i int) {
		for off := base + uint64(segs[i][0]); off < base+uint64(segs[i][1]); off++ {
			dev.WriteRaw(off, 0)
		}
	})
	dev.PersistRange(base, n)
}

// reinsert replays the surviving elements through insert, partitioned
// across workers (each with its own context); the elements are already
// deduplicated, so a duplicate report means the scan is broken.
func reinsert(live []kv, workers int, newCtx func() *Ctx, insert func(*Ctx, uint64, uint64) bool) {
	chunks := recovery.Chunks(len(live), workers)
	recovery.Run(workers, len(chunks), func(i int) {
		c := newCtx()
		for _, e := range live[chunks[i][0]:chunks[i][1]] {
			if !insert(c, e.key, e.val) {
				panic(fmt.Sprintf("zuriel: duplicate key %d during recovery re-insert", e.key))
			}
		}
	})
}
