package zuriel

import (
	"fmt"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
)

// guardFrozen runs f, converting the simulated power cut into a false
// return; any other panic propagates.
func guardFrozen(f func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil && r != pmem.ErrFrozen {
			panic(r)
		}
	}()
	f()
	return true
}

func detectMakers() map[string]func(clients int) Set {
	return map[string]func(clients int) Set{
		"LinkFree": func(clients int) Set {
			return NewLinkFree(Config{Words: 1 << 16, Track: true, Clients: clients})
		},
		"SOFT": func(clients int) Set {
			return NewSoft(Config{Words: 1 << 16, Track: true, Clients: clients})
		},
	}
}

// TestZurielDetectQuiesced pins the verdict truth table on a quiesced
// crash: a completed bracket survives with its recorded result, earlier
// sequence numbers are proven Committed by the later slot contents, and a
// client that never announced reads NotCommitted.
func TestZurielDetectQuiesced(t *testing.T) {
	for name, mk := range detectMakers() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			s := mk(2)
			if s.Clients() != 2 {
				t.Fatalf("Clients() = %d, want 2", s.Clients())
			}
			c := s.NewCtx()
			s.DetectBegin(c, 1, 1, engine.DetectInsert, 7, 70)
			if !s.Insert(c, 7, 70) {
				t.Fatal("insert failed")
			}
			s.DetectEnd(c, true)
			s.DetectBegin(c, 1, 2, engine.DetectDelete, 7, 0)
			if !s.Delete(c, 7) {
				t.Fatal("delete failed")
			}
			s.DetectEnd(c, true)
			s.Crash(pmem.CrashDropAll, nil)
			s.Recover()
			if v := s.Detect(1, 2); v.Verdict != engine.Committed || !v.KnownResult || !v.Result {
				t.Errorf("seq 2: got %+v, want Committed with result true", v)
			}
			if v := s.Detect(1, 1); v.Verdict != engine.Committed {
				t.Errorf("seq 1 (superseded): got %+v, want Committed", v)
			}
			if v := s.Detect(0, 1); v.Verdict != engine.NotCommitted {
				t.Errorf("client 0 never announced: got %+v, want NotCommitted", v)
			}
			c2 := s.NewCtx()
			if s.Contains(c2, 7) {
				t.Error("deleted key resurrected by recovery")
			}
		})
	}
}

// TestZurielDetectCrashSweep cuts a detectable insert and then a
// detectable delete at every device-op index and cross-checks the verdict
// against the recovered state: Committed obliges the effect, NotCommitted
// forbids it, and only Unknown leaves both fates open. The sweep runs both
// under the plain drop-all crash and under the full seeded fault adversary
// (torn + evict + drop) — the eager announce must stay ahead of any line
// the adversary persists early.
func TestZurielDetectCrashSweep(t *testing.T) {
	for name, mk := range detectMakers() {
		for _, faults := range []bool{false, true} {
			name, mk, faults := name, mk, faults
			t.Run(fmt.Sprintf("%s/faults=%v", name, faults), func(t *testing.T) {
				t.Parallel()
				for cut := int64(1); cut <= 60; cut++ {
					// Insert sweep: key 9 into a set holding key 5.
					s := mk(1)
					c := s.NewCtx()
					if !s.Insert(c, 5, 50) {
						t.Fatal("prefill failed")
					}
					var fm *pmem.FaultModel
					if faults {
						fm = pmem.NewFaultModel(cut*7+1, pmem.FaultSpec{Torn: true, Evict: true, Drop: true})
						s.InjectFaults(fm)
						fm.CrashAfter(cut)
					} else {
						s.(interface{ devFreezeAfter(int64) }).devFreezeAfter(cut)
					}
					guardFrozen(func() {
						s.DetectBegin(c, 0, 1, engine.DetectInsert, 9, 90)
						s.Insert(c, 9, 90)
						s.DetectEnd(c, true)
					})
					s.Crash(pmem.CrashDropAll, nil)
					if fm != nil {
						fm.CrashAfter(0)
					}
					s.Recover()
					v := s.Detect(0, 1)
					present := s.Contains(s.NewCtx(), 9)
					switch v.Verdict {
					case engine.Committed:
						if !v.KnownResult || !v.Result || !present {
							t.Errorf("insert cut=%d: Committed (%+v) but present=%v", cut, v, present)
						}
					case engine.NotCommitted:
						if present {
							t.Errorf("insert cut=%d: NotCommitted but key present", cut)
						}
					}

					// Delete sweep: key 5 out of the same shape.
					s = mk(1)
					c = s.NewCtx()
					if !s.Insert(c, 5, 50) {
						t.Fatal("prefill failed")
					}
					if faults {
						fm = pmem.NewFaultModel(cut*7+2, pmem.FaultSpec{Torn: true, Evict: true, Drop: true})
						s.InjectFaults(fm)
						fm.CrashAfter(cut)
					} else {
						s.(interface{ devFreezeAfter(int64) }).devFreezeAfter(cut)
					}
					guardFrozen(func() {
						s.DetectBegin(c, 0, 1, engine.DetectDelete, 5, 0)
						s.Delete(c, 5)
						s.DetectEnd(c, true)
					})
					s.Crash(pmem.CrashDropAll, nil)
					if fm != nil {
						fm.CrashAfter(0)
					}
					s.Recover()
					v = s.Detect(0, 1)
					present = s.Contains(s.NewCtx(), 5)
					switch v.Verdict {
					case engine.Committed:
						if !v.KnownResult || !v.Result || present {
							t.Errorf("delete cut=%d: Committed (%+v) but present=%v", cut, v, present)
						}
					case engine.NotCommitted:
						if !present {
							t.Errorf("delete cut=%d: NotCommitted but key gone", cut)
						}
					}
				}
			})
		}
	}
}

// devFreezeAfter arms the persistent device's freeze trigger (test hook).
func (s *LinkFree) devFreezeAfter(n int64) { s.dev.FreezeAfter(n) }
func (s *Soft) devFreezeAfter(n int64)     { s.pdev.FreezeAfter(n) }

// TestZurielDetectDisabledPanics pins the loud-failure contract when
// detectability is off.
func TestZurielDetectDisabledPanics(t *testing.T) {
	s := NewLinkFree(Config{Words: 1 << 14})
	c := s.NewCtx()
	for name, f := range map[string]func(){
		"DetectBegin": func() { s.DetectBegin(c, 0, 1, engine.DetectInsert, 1, 1) },
		"Detect":      func() { s.Detect(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with Clients=0 did not panic", name)
				}
			}()
			f()
		}()
	}
}
