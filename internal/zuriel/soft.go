package zuriel

import (
	"math/rand"
	"sync"

	"mirror/internal/engine"
	"mirror/internal/palloc"
	"mirror/internal/pmem"
)

// SOFT persistent-node layout (4 words on the persistent device).
const (
	pnKey  = 0
	pnVal  = 1
	pnMeta = 2
	pnSize = 4
)

// SOFT volatile-node layout (4 words on the volatile device).
const (
	vnKey  = 0
	vnPtr  = 1 // reference to the PNode
	vnNext = 2
	vnSize = 4
)

// softHeadSlot is the volatile-device offset of the list head.
const softHeadSlot = 8

// Soft is Zuriel et al.'s SOFT durable set: elements split into a
// persistent content node (PNode, flushed once per update) and a volatile
// list node (VNode, never flushed) that carries the links.
type Soft struct {
	pdev      *pmem.Device
	vdev      *pmem.Device
	buckets   int
	det       *detector // nil when Config.Clients == 0
	clients   int
	pheapBase uint64 // PNode-heap base on pdev (above the descriptors)

	mu     sync.Mutex
	palloc *palloc.Allocator
	valloc *palloc.Allocator
	precl  *palloc.Reclaimer
	vrecl  *palloc.Reclaimer
}

// NewSoft creates a SOFT set (a list, or a hash table when cfg.Buckets is
// a power of two).
func NewSoft(cfg Config) *Soft {
	cfg.setDefaults()
	if cfg.Buckets < 0 || (cfg.Buckets > 0 && cfg.Buckets&(cfg.Buckets-1) != 0) {
		panic("zuriel: bucket count must be a power of two")
	}
	model := pmem.NoLatency()
	if cfg.Latency {
		model = pmem.NVMMModel()
	}
	s := &Soft{
		pdev: pmem.New(pmem.Config{
			Name: "SOFT-pnodes", Words: cfg.Words,
			Persistent: true, Track: cfg.Track, Model: model,
		}),
		// The volatile half also lives at NVMM speed, as in the original
		// artifact; its split nodes cost space, not flushes.
		vdev: pmem.New(pmem.Config{
			Name: "SOFT-vnodes", Words: cfg.Words, Model: model,
		}),
		buckets: cfg.Buckets,
	}
	// Descriptor slots sit at the bottom of the persistent half, below the
	// PNode heap, so the recovery sanitize wipe never reaches them.
	s.det, s.pheapBase = newDetector(s.pdev, 8, cfg.Clients)
	s.clients = cfg.Clients
	s.initVolatile()
	return s
}

func (s *Soft) initVolatile() {
	vbase := uint64(softHeadSlot + 8)
	if s.buckets > 0 {
		vbase = uint64(softHeadSlot + s.buckets)
		vbase = (vbase + palloc.AlignWords - 1) &^ (palloc.AlignWords - 1)
	}
	s.palloc = palloc.New(palloc.Config{Base: s.pheapBase, End: uint64(s.pdev.Size())})
	s.valloc = palloc.New(palloc.Config{Base: vbase, End: uint64(s.vdev.Size())})
	s.precl = palloc.NewReclaimer()
	s.vrecl = palloc.NewReclaimer()
	n := 1
	if s.buckets > 0 {
		n = s.buckets
	}
	for i := 0; i < n; i++ {
		s.vdev.WriteRaw(uint64(softHeadSlot+i), 0)
	}
}

// Name implements Set.
func (s *Soft) Name() string {
	if s.buckets > 0 {
		return "SOFT-hash"
	}
	return "SOFT"
}

// NewCtx implements Set.
func (s *Soft) NewCtx() *Ctx {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Ctx{
		p: palloc.NewCache(s.palloc, s.precl),
		v: palloc.NewCache(s.valloc, s.vrecl),
	}
}

func (s *Soft) headSlot(key uint64) uint64 {
	if s.buckets == 0 {
		return softHeadSlot
	}
	idx := (key * 11400714819323198485) >> (64 - uint(bitsLen(s.buckets)))
	return uint64(softHeadSlot) + idx
}

// persistDelete persists a PNode's deleted state (idempotent; deleter and
// helpers both call it).
func (s *Soft) persistDelete(c *Ctx, pnode uint64) {
	meta := s.pdev.Load(pnode + pnMeta)
	if meta&stateMask != stateDeleted {
		s.pdev.CAS(pnode+pnMeta, meta, meta&^stateMask|stateDeleted)
	}
	s.pdev.Flush(&c.fs, pnode)
	s.pdev.Fence(&c.fs)
}

// find locates key in the volatile list, helping persist and unlinking
// marked nodes on the way.
func (s *Soft) find(c *Ctx, key uint64) (predSlot, curr uint64) {
retry:
	for {
		predSlot = s.headSlot(key)
		curr = unmark(s.vdev.Load(predSlot))
		for curr != 0 {
			next := s.vdev.Load(curr + vnNext)
			if marked(next) {
				s.persistDelete(c, s.vdev.Load(curr+vnPtr))
				if !s.vdev.CAS(predSlot, curr, unmark(next)) {
					continue retry
				}
				c.p.Retire(s.vdev.Load(curr+vnPtr), pnSize)
				c.v.Retire(curr, vnSize)
				curr = unmark(next)
				continue
			}
			if s.vdev.Load(curr+vnKey) >= key {
				return predSlot, curr
			}
			predSlot = curr + vnNext
			curr = unmark(next)
		}
		return predSlot, 0
	}
}

// Insert implements Set. The PNode is fully persisted before the VNode is
// linked.
func (s *Soft) Insert(c *Ctx, key, val uint64) bool {
	c.p.Enter()
	c.v.Enter()
	defer c.p.Exit()
	defer c.v.Exit()
	var pnode, vnode uint64
	for {
		predSlot, curr := s.find(c, key)
		if curr != 0 && s.vdev.Load(curr+vnKey) == key {
			if pnode != 0 {
				s.pdev.Store(pnode+pnMeta, stateInvalid)
				s.pdev.Flush(&c.fs, pnode)
				s.pdev.Fence(&c.fs)
				c.p.Free(pnode, pnSize)
				c.v.Free(vnode, vnSize)
			}
			return false
		}
		if pnode == 0 {
			pnode = c.p.Alloc(pnSize)
			s.pdev.Store(pnode+pnKey, key)
			s.pdev.Store(pnode+pnVal, val)
			s.pdev.Store(pnode+pnMeta, metaFor(stateInserted, key, val))
			s.pdev.Flush(&c.fs, pnode) // the one persistence barrier
			s.pdev.Fence(&c.fs)
			vnode = c.v.Alloc(vnSize)
			s.vdev.Store(vnode+vnKey, key)
			s.vdev.Store(vnode+vnPtr, pnode)
		}
		s.vdev.Store(vnode+vnNext, curr)
		if s.vdev.CAS(predSlot, curr, vnode) {
			// The PNode was persisted before the link: the insert is
			// durable, so the detectable verdict may publish.
			s.det.linearized(c, true)
			return true
		}
	}
}

// Delete implements Set.
func (s *Soft) Delete(c *Ctx, key uint64) bool {
	c.p.Enter()
	c.v.Enter()
	defer c.p.Exit()
	defer c.v.Exit()
	for {
		predSlot, curr := s.find(c, key)
		if curr == 0 || s.vdev.Load(curr+vnKey) != key {
			return false
		}
		next := s.vdev.Load(curr + vnNext)
		if marked(next) {
			continue
		}
		if !s.vdev.CAS(curr+vnNext, next, next|markBit) {
			continue
		}
		s.persistDelete(c, s.vdev.Load(curr+vnPtr))
		// Only now is the deleted state durable — the mark CAS lives in the
		// volatile half, and recovery would resurrect the key.
		s.det.linearized(c, true)
		if s.vdev.CAS(predSlot, curr, next) {
			c.p.Retire(s.vdev.Load(curr+vnPtr), pnSize)
			c.v.Retire(curr, vnSize)
		}
		return true
	}
}

// Contains implements Set.
func (s *Soft) Contains(c *Ctx, key uint64) bool {
	_, ok := s.Get(c, key)
	return ok
}

// Get implements Set: flush-free unless the answer depends on an
// in-flight deletion.
func (s *Soft) Get(c *Ctx, key uint64) (uint64, bool) {
	c.p.Enter()
	c.v.Enter()
	defer c.p.Exit()
	defer c.v.Exit()
	curr := unmark(s.vdev.Load(s.headSlot(key)))
	for curr != 0 {
		k := s.vdev.Load(curr + vnKey)
		next := s.vdev.Load(curr + vnNext)
		if k >= key {
			if k != key {
				return 0, false
			}
			pnode := s.vdev.Load(curr + vnPtr)
			if marked(next) {
				s.persistDelete(c, pnode)
				return 0, false
			}
			return s.pdev.Load(pnode + pnVal), true
		}
		curr = unmark(next)
	}
	return 0, false
}

// InjectFaults installs the fault model on the persistent-node device
// (VNodes are volatile and need no adversary).
func (s *Soft) InjectFaults(fm *pmem.FaultModel) { s.pdev.InjectFaults(fm) }

// Freeze implements Set.
func (s *Soft) Freeze() {
	s.pdev.Freeze()
	s.vdev.Freeze()
}

// Crash implements Set.
func (s *Soft) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	s.Freeze()
	s.pdev.Crash(policy, rng)
	s.vdev.Crash(policy, rng) // volatile half: wiped
}

// Recover implements Set: sweep the PNode heap and rebuild both halves.
func (s *Soft) Recover() { s.RecoverParallel(1) }

// RecoverParallel implements Set: partitioned PNode-heap scan, sanitize,
// and re-insert, exactly as for Link-Free (only the persistent half is
// scanned — the volatile half is rebuilt by the replay).
func (s *Soft) RecoverParallel(workers int) {
	if workers < 1 {
		workers = 1
	}
	s.mu.Lock()
	frontier := s.palloc.Frontier()
	base := s.palloc.Base()
	s.mu.Unlock()
	live := scanLive(s.pdev, base, frontier, pnSize, pnKey, pnVal, pnMeta, workers)
	sanitizeHeap(s.pdev, base, frontier, workers)
	if s.det != nil {
		s.det.desc.Scrub()
	}
	s.mu.Lock()
	s.initVolatile()
	s.mu.Unlock()
	reinsert(live, workers, s.NewCtx, s.Insert)
}

// Counters implements Set.
func (s *Soft) Counters() (uint64, uint64) {
	f1, n1 := s.pdev.Counters()
	f2, n2 := s.vdev.Counters()
	return f1 + f2, n1 + n2
}

// Clients implements Set.
func (s *Soft) Clients() int { return s.clients }

// DetectBegin implements Set.
func (s *Soft) DetectBegin(c *Ctx, client int, seq, kind, key, val uint64) {
	s.det.begin(c, client, seq, kind, key, val)
}

// DetectEnd implements Set.
func (s *Soft) DetectEnd(c *Ctx, result bool) { s.det.end(c, result) }

// Detect implements Set.
func (s *Soft) Detect(client int, seq uint64) engine.DetectResult {
	if s.det == nil {
		panic("zuriel: Detect with detectability disabled (Config.Clients == 0)")
	}
	return s.det.desc.Detect(client, seq)
}

var _ Set = (*Soft)(nil)
