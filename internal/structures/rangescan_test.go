package structures_test

import (
	"fmt"
	"sync"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

// ranger is the common Range surface of the sorted structures.
type ranger interface {
	Insert(c *engine.Ctx, key, val uint64) bool
	Delete(c *engine.Ctx, key uint64) bool
	Range(c *engine.Ctx, from, to uint64, fn func(key, val uint64) bool)
}

func rangers(e engine.Engine, c *engine.Ctx) map[string]ranger {
	return map[string]ranger{
		"list":     list.New(e, 0),
		"skiplist": skiplist.NewAt(e, c, 1),
		"bst":      bst.NewAt(e, c, 2),
	}
}

func TestRangeScan(t *testing.T) {
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.OrigDRAM} {
		e := engine.New(engine.Config{Kind: kind, Words: 1 << 20})
		c := e.NewCtx()
		for name, r := range rangers(e, c) {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				for k := uint64(1); k <= 100; k++ {
					r.Insert(c, k*10, k)
				}
				r.Delete(c, 500) // hole in the middle

				var got []uint64
				r.Range(c, 250, 750, func(k, v uint64) bool {
					if v != k/10 {
						t.Errorf("key %d has value %d, want %d", k, v, k/10)
					}
					got = append(got, k)
					return true
				})
				var want []uint64
				for k := uint64(250); k <= 750; k++ {
					if k%10 == 0 && k != 500 {
						want = append(want, k)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("got %d keys %v, want %d", len(got), got, len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("position %d: got %d, want %d", i, got[i], want[i])
					}
				}

				// Early stop.
				count := 0
				r.Range(c, 0, structures_KeyMax(), func(k, v uint64) bool {
					count++
					return count < 5
				})
				if count != 5 {
					t.Errorf("early stop visited %d, want 5", count)
				}

				// Empty range.
				r.Range(c, 501, 509, func(k, v uint64) bool {
					t.Errorf("empty range visited key %d", k)
					return true
				})
			})
		}
	}
}

func structures_KeyMax() uint64 { return uint64(1)<<62 - 1 }

// TestRangeScanDuringConcurrentUpdates checks the weak-consistency
// contract: every visited key was inserted at some point, values match
// keys, and order is ascending.
func TestRangeScanDuringConcurrentUpdates(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 21})
	c0 := e.NewCtx()
	sl := skiplist.New(e, c0)
	for k := uint64(1); k <= 500; k++ {
		sl.Insert(c0, k, k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.NewCtx()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := i%500 + 1
				if i%2 == 0 {
					sl.Delete(c, key)
				} else {
					sl.Insert(c, key, key)
				}
				i++
			}
		}(w)
	}
	c := e.NewCtx()
	for round := 0; round < 200; round++ {
		prev := uint64(0)
		sl.Range(c, 1, 500, func(k, v uint64) bool {
			if k <= prev {
				t.Errorf("round %d: out-of-order key %d after %d", round, k, prev)
				return false
			}
			if v != k {
				t.Errorf("round %d: key %d with torn value %d", round, k, v)
				return false
			}
			prev = k
			return true
		})
	}
	close(stop)
	wg.Wait()
}
