// Custom-lifecycle conformance batteries: the hand-made queue and map
// adapters (internal/durablequeue, internal/cmapkv) manage their own
// devices instead of living on an engine, so they cannot go through Run's
// engine matrix. RunKV and RunQueue give them the same treatment —
// sequential semantics against a model, concurrent stress, and the
// quiesced crash+recover cycle over every crash policy — through small
// closure-based targets, mirroring crashtest.CustomTarget.
package settest

import (
	"math/rand"
	"sync"
	"testing"

	"mirror/internal/pmem"
)

// KVTarget adapts a persistent key-value map with upsert Put semantics.
// The target owns one long-lived instance: Crash and Recover operate on it
// in place, and NewWorker must hand out fresh per-thread closures that are
// valid for the instance's current incarnation (stale workers from before
// a crash must not be reused).
type KVTarget struct {
	// NewWorker returns per-thread operations. put upserts and reports
	// whether the key was newly inserted.
	NewWorker func() (put func(k, v uint64) bool, del func(k uint64) bool, get func(k uint64) (uint64, bool))
	Len       func() int
	Crash     func(policy pmem.CrashPolicy, rng *rand.Rand)
	Recover   func()
}

// RunKV executes the map conformance battery. mk builds a fresh target per
// subtest.
func RunKV(t *testing.T, mk func() KVTarget) {
	t.Run("Empty", func(t *testing.T) { testKVEmpty(t, mk()) })
	t.Run("UpsertSemantics", func(t *testing.T) { testKVUpsert(t, mk()) })
	t.Run("RandomBatch", func(t *testing.T) { testKVRandomBatch(t, mk()) })
	t.Run("ConcurrentDistinct", func(t *testing.T) { testKVConcurrentDistinct(t, mk()) })
	t.Run("QuiescedCrashRecovery", func(t *testing.T) { testKVQuiescedCrash(t, mk()) })
}

func testKVEmpty(t *testing.T, kv KVTarget) {
	put, del, get := kv.NewWorker()
	if _, ok := get(5); ok {
		t.Error("get on empty map succeeded")
	}
	if del(5) {
		t.Error("delete on empty map succeeded")
	}
	if kv.Len() != 0 {
		t.Errorf("empty map has Len %d", kv.Len())
	}
	if !put(5, 50) {
		t.Error("first put not reported as an insert")
	}
}

func testKVUpsert(t *testing.T, kv KVTarget) {
	put, del, get := kv.NewWorker()
	if !put(3, 1) {
		t.Fatal("first put not reported as an insert")
	}
	// Second put of the same key overwrites instead of failing — this is
	// the pmemkv semantics that distinguish Put from Set.Insert.
	if put(3, 2) {
		t.Error("overwriting put reported as an insert")
	}
	if v, ok := get(3); !ok || v != 2 {
		t.Errorf("get(3) = (%d,%v) after overwrite, want (2,true)", v, ok)
	}
	if !del(3) {
		t.Error("delete failed")
	}
	if del(3) {
		t.Error("double delete succeeded")
	}
	if !put(3, 7) {
		t.Error("re-put after delete not reported as an insert")
	}
	if v, ok := get(3); !ok || v != 7 {
		t.Errorf("get(3) = (%d,%v) after re-put, want (7,true)", v, ok)
	}
	if kv.Len() != 1 {
		t.Errorf("Len = %d, want 1", kv.Len())
	}
}

func testKVRandomBatch(t *testing.T, kv KVTarget) {
	put, del, get := kv.NewWorker()
	rng := rand.New(rand.NewSource(823))
	model := make(map[uint64]uint64)
	for i := 0; i < 2000; i++ {
		key := uint64(rng.Intn(400) + 1)
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64()
			_, present := model[key]
			if inserted := put(key, val); inserted == present {
				t.Fatalf("op %d: put(%d) inserted=%v with present=%v", i, key, inserted, present)
			}
			model[key] = val
		case 1:
			_, present := model[key]
			if got := del(key); got != present {
				t.Fatalf("op %d: delete(%d) = %v, want %v", i, key, got, present)
			}
			delete(model, key)
		default:
			want, present := model[key]
			got, ok := get(key)
			if ok != present || (ok && got != want) {
				t.Fatalf("op %d: get(%d) = (%d,%v), want (%d,%v)", i, key, got, ok, want, present)
			}
		}
	}
	if kv.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", kv.Len(), len(model))
	}
}

func testKVConcurrentDistinct(t *testing.T, kv KVTarget) {
	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			put, del, _ := kv.NewWorker()
			base := uint64(w*perWorker + 1)
			for i := uint64(0); i < perWorker; i++ {
				if !put(base+i, base+i) {
					t.Errorf("worker %d: put %d not an insert", w, base+i)
					return
				}
			}
			// Overwrite the whole range, then delete the even keys.
			for i := uint64(0); i < perWorker; i++ {
				if put(base+i, 2*(base+i)) {
					t.Errorf("worker %d: overwrite %d reported as insert", w, base+i)
					return
				}
			}
			for i := uint64(0); i < perWorker; i++ {
				if (base+i)%2 == 0 && !del(base+i) {
					t.Errorf("worker %d: delete %d failed", w, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_, _, get := kv.NewWorker()
	for key := uint64(1); key <= workers*perWorker; key++ {
		v, ok := get(key)
		if want := key%2 == 1; ok != want {
			t.Fatalf("key %d: present=%v, want %v", key, ok, want)
		}
		if ok && v != 2*key {
			t.Fatalf("key %d = %d, want overwritten value %d", key, v, 2*key)
		}
	}
}

func testKVQuiescedCrash(t *testing.T, kv KVTarget) {
	put, del, _ := kv.NewWorker()
	rng := rand.New(rand.NewSource(6))
	model := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		key := uint64(rng.Intn(300) + 1)
		if rng.Intn(3) > 0 {
			val := uint64(rng.Intn(1 << 30))
			put(key, val)
			model[key] = val
		} else {
			del(key)
			delete(model, key)
		}
	}
	for _, policy := range []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom} {
		kv.Crash(policy, rng)
		kv.Recover()
		// Fresh workers: pre-crash contexts are tied to the old incarnation.
		put, del, get := kv.NewWorker()
		for key := uint64(1); key <= 300; key++ {
			want, present := model[key]
			got, ok := get(key)
			if ok != present || (ok && got != want) {
				t.Fatalf("policy %v: key %d = (%d,%v), want (%d,%v)",
					policy, key, got, ok, want, present)
			}
		}
		if kv.Len() != len(model) {
			t.Fatalf("policy %v: Len = %d, model has %d", policy, kv.Len(), len(model))
		}
		// The map must remain fully operational after recovery.
		probe := uint64(1000 + rng.Intn(100))
		if !put(probe, 1) {
			t.Fatalf("policy %v: probe put failed after recovery", policy)
		}
		if v, ok := get(probe); !ok || v != 1 {
			t.Fatalf("policy %v: probe get = (%d,%v) after recovery", policy, v, ok)
		}
		if !del(probe) {
			t.Fatalf("policy %v: probe delete failed after recovery", policy)
		}
	}
}

// QueueTarget adapts a persistent FIFO queue. Like KVTarget, the target
// owns one long-lived instance and workers must be re-created after a
// crash.
type QueueTarget struct {
	NewWorker func() (enq func(v uint64), deq func() (uint64, bool))
	Len       func() int
	Crash     func(policy pmem.CrashPolicy, rng *rand.Rand)
	Recover   func()
}

// RunQueue executes the queue conformance battery. mk builds a fresh
// target per subtest.
func RunQueue(t *testing.T, mk func() QueueTarget) {
	t.Run("Empty", func(t *testing.T) { testQueueEmpty(t, mk()) })
	t.Run("FIFO", func(t *testing.T) { testQueueFIFO(t, mk()) })
	t.Run("InterleavedModel", func(t *testing.T) { testQueueInterleaved(t, mk()) })
	t.Run("ConcurrentProducerOrder", func(t *testing.T) { testQueueConcurrent(t, mk()) })
	t.Run("QuiescedCrashRecovery", func(t *testing.T) { testQueueQuiescedCrash(t, mk()) })
}

func testQueueEmpty(t *testing.T, q QueueTarget) {
	_, deq := q.NewWorker()
	if v, ok := deq(); ok {
		t.Errorf("dequeue on empty queue returned %d", v)
	}
	if q.Len() != 0 {
		t.Errorf("empty queue has Len %d", q.Len())
	}
}

func testQueueFIFO(t *testing.T, q QueueTarget) {
	enq, deq := q.NewWorker()
	for v := uint64(1); v <= 100; v++ {
		enq(v)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d after 100 enqueues", q.Len())
	}
	for want := uint64(1); want <= 100; want++ {
		v, ok := deq()
		if !ok || v != want {
			t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := deq(); ok {
		t.Error("dequeue succeeded on drained queue")
	}
}

func testQueueInterleaved(t *testing.T, q QueueTarget) {
	enq, deq := q.NewWorker()
	rng := rand.New(rand.NewSource(99))
	var model []uint64
	next := uint64(1)
	for i := 0; i < 3000; i++ {
		if rng.Intn(3) > 0 {
			enq(next)
			model = append(model, next)
			next++
		} else {
			v, ok := deq()
			if len(model) == 0 {
				if ok {
					t.Fatalf("op %d: dequeue on empty returned %d", i, v)
				}
				continue
			}
			if !ok || v != model[0] {
				t.Fatalf("op %d: dequeue = (%d,%v), want (%d,true)", i, v, ok, model[0])
			}
			model = model[1:]
		}
	}
	if q.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", q.Len(), len(model))
	}
}

// testQueueConcurrent drains a multi-producer multi-consumer run and
// checks (a) the multiset of values survives and (b) each producer's
// values come out in that producer's enqueue order — the per-producer
// subsequence property a linearizable FIFO must preserve.
func testQueueConcurrent(t *testing.T, q QueueTarget) {
	const producers = 4
	const consumers = 2
	const perProducer = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			enq, _ := q.NewWorker()
			for i := uint64(0); i < perProducer; i++ {
				enq(uint64(p)<<32 | i)
			}
		}(p)
	}
	var mu sync.Mutex
	drained := make([][]uint64, consumers)
	stop := make(chan struct{})
	var cg sync.WaitGroup
	for cn := 0; cn < consumers; cn++ {
		cg.Add(1)
		go func(cn int) {
			defer cg.Done()
			_, deq := q.NewWorker()
			var got []uint64
			for {
				if v, ok := deq(); ok {
					got = append(got, v)
					continue
				}
				select {
				case <-stop:
					mu.Lock()
					drained[cn] = got
					mu.Unlock()
					return
				default:
				}
			}
		}(cn)
	}
	wg.Wait()
	close(stop)
	cg.Wait()
	// Final sequential drain catches anything left behind.
	_, deq := q.NewWorker()
	var rest []uint64
	for {
		v, ok := deq()
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	seen := make(map[uint64]bool)
	// Per-consumer streams preserve per-producer order; the residue drain
	// is itself one more consumer stream.
	for _, stream := range append(drained, rest) {
		last := make([]int64, producers)
		for p := range last {
			last[p] = -1
		}
		for _, v := range stream {
			p, i := int(v>>32), int64(v&0xffffffff)
			if seen[v] {
				t.Fatalf("value %d/%d dequeued twice", p, i)
			}
			seen[v] = true
			if i <= last[p] {
				t.Fatalf("producer %d order violated: %d after %d", p, i, last[p])
			}
			last[p] = i
		}
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("drained %d values, want %d", len(seen), producers*perProducer)
	}
}

func testQueueQuiescedCrash(t *testing.T, q QueueTarget) {
	enq, deq := q.NewWorker()
	rng := rand.New(rand.NewSource(17))
	var model []uint64
	for v := uint64(1); v <= 200; v++ {
		enq(v)
		model = append(model, v)
	}
	// Partially drain so the crash image has a mid-chain head.
	for i := 0; i < 60; i++ {
		if v, ok := deq(); !ok || v != model[0] {
			t.Fatalf("pre-crash drain: got (%d,%v), want (%d,true)", v, ok, model[0])
		}
		model = model[1:]
	}
	for _, policy := range []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom} {
		q.Crash(policy, rng)
		q.Recover()
		enq, deq = q.NewWorker()
		if q.Len() != len(model) {
			t.Fatalf("policy %v: Len = %d after recovery, model has %d", policy, q.Len(), len(model))
		}
		// Drain a prefix in order, enqueue replacements at the back: the
		// recovered queue must behave as a live FIFO, not a read-only image.
		for i := 0; i < 20 && len(model) > 0; i++ {
			v, ok := deq()
			if !ok || v != model[0] {
				t.Fatalf("policy %v: dequeue = (%d,%v), want (%d,true)", policy, v, ok, model[0])
			}
			model = model[1:]
		}
		probe := uint64(100000) + uint64(rng.Intn(1000))
		enq(probe)
		model = append(model, probe)
	}
	// Final full drain must replay the model exactly.
	for len(model) > 0 {
		v, ok := deq()
		if !ok || v != model[0] {
			t.Fatalf("final drain: got (%d,%v), want (%d,true)", v, ok, model[0])
		}
		model = model[1:]
	}
	if v, ok := deq(); ok {
		t.Fatalf("drained queue still yielded %d", v)
	}
}
