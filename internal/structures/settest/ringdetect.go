package settest

// Ring-detect conformance battery: the per-client descriptor ring must stay
// authoritative for every in-flight seq across a quiesced crash at *every*
// deterministic crash point. The battery arms the deferred (batched-verdict)
// protocol, runs k detectable inserts WITHOUT ever draining — so the ring
// holds k announced-but-unverdicted entries, the exact image a killed
// pipelined server leaves behind — freezes the device at each successive
// operation count, crashes, recovers (which scrubs torn descriptor lines),
// and checks the Detect truth table before replaying the window through
// ExactlyOnce in issue order.
//
// Truth obligations checked at each crash point, for each seq in the window:
//
//   - Committed is impossible: no verdict was ever published and the window
//     never laps, so neither the entry, a lap, nor a sibling verdict can
//     vouch for the seq.
//   - NotCommitted implies the effect is absent: the announce is durable
//     before the operation can reach its linearization point.
//   - If the whole window quiesced before the freeze, every announce is
//     durable and every verdict reads Unknown — the honest answer for a cut
//     operation.
//   - Ascending ExactlyOnce replay (replayUnknown: idempotent inserts)
//     loses and duplicates nothing, and afterwards every seq reads
//     Committed with a recorded result.

import (
	"fmt"
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
)

// ringWords keeps the sweep cheap: each crash point builds a fresh engine,
// and the battery's working set is a few dozen keys.
const ringWords = 1 << 17

// runToFreeze runs f, reporting whether it completed (true) or was cut by
// the armed freeze (false).
func runToFreeze(f func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == pmem.ErrFrozen {
				return
			}
			panic(r)
		}
	}()
	f()
	return true
}

// RunRingDetect executes the ring-detect battery for every durable engine
// kind, unsharded and sharded, with the ring holding k ∈ {1, 4, 8}
// announced-but-unverdicted entries at the crash.
func RunRingDetect(t *testing.T, f Factory) {
	for _, k := range engine.Kinds() {
		if !k.Durable() {
			continue
		}
		t.Run(k.String(), func(t *testing.T) {
			for _, shards := range []int{0, 2} {
				name := "Unsharded"
				if shards > 0 {
					name = fmt.Sprintf("Sharded%d", shards)
				}
				t.Run(name, func(t *testing.T) {
					for _, window := range []int{1, 4, 8} {
						t.Run(fmt.Sprintf("K%d", window), func(t *testing.T) {
							ringDetectSweep(t, f, k, shards, window)
						})
					}
				})
			}
		})
	}
}

// ringTarget is one fresh instance under test: the set, its engine, and a
// recover function that re-attaches after the crash.
type ringTarget struct {
	e engine.Engine
	c *engine.Ctx
	s structures.Set
	// recover crashes nothing itself; it recovers the frozen image and
	// returns a fresh (ctx, set) attached to the recovered state.
	recover func() (*engine.Ctx, structures.Set)
}

func (f Factory) ringTarget(k engine.Kind, shards int) ringTarget {
	if shards == 0 {
		e := engine.New(engine.Config{
			Kind: k, Words: ringWords, Track: true, Clients: 2, DetectRing: 8,
		})
		c := e.NewCtx()
		s := f.New(e, c)
		tr := s.Tracer()
		return ringTarget{e: e, c: c, s: s, recover: func() (*engine.Ctx, structures.Set) {
			e.RecoverWith(tr, engine.RecoverOptions{Parallelism: 1})
			c := e.NewCtx()
			return c, f.New(e, c)
		}}
	}
	e := engine.NewSharded(engine.Config{
		Kind: k, Words: ringWords, Track: true, Clients: 2, DetectRing: 8, Shards: shards,
	})
	c := e.NewCtx()
	s := structures.NewSharded(e, c, f.New)
	return ringTarget{e: e, c: c, s: s, recover: func() (*engine.Ctx, structures.Set) {
		s.Recover(engine.RecoverOptions{})
		c := e.NewCtx()
		return c, structures.NewSharded(e, c, f.New)
	}}
}

// ringDetectSweep crashes a window of k announced-but-unverdicted inserts
// at every deterministic crash point.
func ringDetectSweep(t *testing.T, f Factory, kind engine.Kind, shards, k int) {
	const client = 1
	key := func(seq uint64) uint64 { return 200 + seq }
	val := func(seq uint64) uint64 { return seq * 10 }
	rng := rand.New(rand.NewSource(11))
	for fa := int64(1); ; fa++ {
		tg := f.ringTarget(kind, shards)
		if ring := engine.DetectRingOf(tg.e); ring != 8 {
			t.Fatalf("DetectRingOf = %d, want 8", ring)
		}
		// Durable prefill outside the detect window, then arm the freeze so
		// only the detectable window's operations count.
		for i := uint64(100); i < 108; i++ {
			if !tg.s.Insert(tg.c, i, i) {
				t.Fatalf("fa=%d: prefill insert %d failed", fa, i)
			}
		}
		tg.e.Drain(tg.c)
		tg.e.FreezeAfter(fa)
		completed := runToFreeze(func() {
			for seq := uint64(1); seq <= uint64(k); seq++ {
				engine.DetectBeginDeferred(tg.e, tg.c, client, seq,
					engine.DetectInsert, key(seq), val(seq), true)
				res := tg.s.Insert(tg.c, key(seq), val(seq))
				engine.DetectEndDeferred(tg.e, tg.c, res, 0)
			}
			// The ring now holds k announced entries with every verdict
			// still pending in volatile memory — no drain before the plug.
		})
		tg.e.FreezeAfter(0)
		tg.e.Crash(pmem.CrashDropAll, rng)
		c, s := tg.recover()

		// Truth table over the whole window.
		for seq := uint64(1); seq <= uint64(k); seq++ {
			d := tg.e.Detect(client, seq)
			present := s.Contains(c, key(seq))
			switch d.Verdict {
			case engine.Committed:
				t.Fatalf("fa=%d seq=%d: Committed without any published verdict", fa, seq)
			case engine.NotCommitted:
				if present {
					t.Fatalf("fa=%d seq=%d: NotCommitted but the effect survived", fa, seq)
				}
			}
			if completed && d.Verdict != engine.Unknown {
				t.Fatalf("fa=%d seq=%d: quiesced window reads %v, want Unknown (announce is durable)",
					fa, seq, d.Verdict)
			}
		}

		// Ascending ExactlyOnce replay: provably-uncommitted entries run for
		// the first time, Unknown entries re-run idempotently, and nothing
		// runs twice with an observable effect.
		for seq := uint64(1); seq <= uint64(k); seq++ {
			engine.ExactlyOnce(tg.e, c, engine.DetectOp{
				Client: client, Seq: seq, Kind: engine.DetectInsert,
				Key: key(seq), Val: val(seq),
				Run: func(cc *engine.Ctx) bool { return s.Insert(cc, key(seq), val(seq)) },
			}, true)
		}
		for seq := uint64(1); seq <= uint64(k); seq++ {
			if v, ok := s.Get(c, key(seq)); !ok || v != val(seq) {
				t.Fatalf("fa=%d seq=%d: key %d = (%d,%v) after replay, want (%d,true)",
					fa, seq, key(seq), v, ok, val(seq))
			}
			if d := tg.e.Detect(client, seq); d.Verdict != engine.Committed || !d.KnownResult {
				t.Fatalf("fa=%d seq=%d: post-replay verdict %+v, want Committed with a recorded result",
					fa, seq, d)
			}
		}
		// The prefill and general operation must have survived too.
		for i := uint64(100); i < 108; i++ {
			if !s.Contains(c, i) {
				t.Fatalf("fa=%d: durable prefill key %d lost", fa, i)
			}
		}
		if completed {
			break
		}
		if fa > 500000 {
			t.Fatal("crash-point sweep did not terminate")
		}
	}
}
