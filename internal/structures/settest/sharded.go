package settest

// Sharded-substrate battery: the same conformance and crash checks as the
// single-device suite, run through structures.Sharded over an
// engine.Sharded at several shard counts, plus two properties specific to
// the sharded composition — the 1-shard wrapper must leave persistent
// media byte-identical to the plain engine, and shard-concurrent recovery
// must be deterministic in both the shard count's worker parallelism and
// (logically) the shard count itself.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
)

// sharded builds an engine.Sharded at the given shard count and the routed
// set over it. NewSharded accepts one shard, so the 1-shard wrapper runs
// through the identical routing code path as the wider counts.
func (f Factory) sharded(k engine.Kind, shards int) (*engine.Sharded, *structures.Sharded, *engine.Ctx) {
	words := f.Words
	if words == 0 {
		words = 1 << 20
	}
	e := engine.NewSharded(engine.Config{Kind: k, Words: words, Track: true, Shards: shards})
	c := e.NewCtx()
	return e, structures.NewSharded(e, c, f.New), c
}

// RunSharded executes the sharded battery for every engine kind.
func RunSharded(t *testing.T, f Factory) {
	for _, k := range engine.Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("Shards%d", shards), func(t *testing.T) {
					t.Run("RandomBatch", func(t *testing.T) { testShardedBatch(t, f, k, shards) })
					t.Run("ConcurrentDistinct", func(t *testing.T) { testShardedConcurrent(t, f, k, shards) })
					if k.Durable() {
						t.Run("QuiescedCrashRecovery", func(t *testing.T) { testShardedQuiescedCrash(t, f, k, shards) })
					}
				})
			}
			if k.Durable() {
				t.Run("SingleShardMediaPin", func(t *testing.T) { testSingleShardMediaPin(t, f, k) })
				t.Run("RecoveryDeterminism", func(t *testing.T) { testShardedRecoveryDeterminism(t, f, k) })
			}
		})
	}
}

// testShardedBatch model-checks a random single-threaded op sequence
// through the shard routing.
func testShardedBatch(t *testing.T, f Factory, k engine.Kind, shards int) {
	_, s, c := f.sharded(k, shards)
	rng := rand.New(rand.NewSource(321))
	model := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		key := uint64(rng.Intn(500) + 1)
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64()
			_, present := model[key]
			if got := s.Insert(c, key, val); got == present {
				t.Fatalf("op %d: Insert(%d) = %v with present=%v", i, key, got, present)
			}
			if !present {
				model[key] = val
			}
		case 1:
			_, present := model[key]
			if got := s.Delete(c, key); got != present {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, key, got, present)
			}
			delete(model, key)
		default:
			want, present := model[key]
			got, ok := s.Get(c, key)
			if ok != present || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, key, got, ok, want, present)
			}
		}
	}
}

// testShardedConcurrent drives disjoint key ranges from concurrent workers;
// the ranges hash across every shard, so cross-shard routing runs under
// real contention on each sub-engine.
func testShardedConcurrent(t *testing.T, f Factory, k engine.Kind, shards int) {
	e, s, c0 := f.sharded(k, shards)
	const workers = 4
	const perWorker = 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.NewCtx()
			base := uint64(w*perWorker + 1)
			for i := uint64(0); i < perWorker; i++ {
				if !s.Insert(c, base+i, base+i) {
					t.Errorf("worker %d: insert %d failed", w, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for key := uint64(1); key <= workers*perWorker; key++ {
		if !s.Contains(c0, key) {
			t.Fatalf("key %d missing after concurrent inserts", key)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.NewCtx()
			base := uint64(w*perWorker + 1)
			for i := uint64(0); i < perWorker; i++ {
				if (base+i)%2 == 0 {
					if !s.Delete(c, base+i) {
						t.Errorf("worker %d: delete %d failed", w, base+i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for key := uint64(1); key <= workers*perWorker; key++ {
		want := key%2 == 1
		if got := s.Contains(c0, key); got != want {
			t.Fatalf("key %d: contains = %v, want %v", key, got, want)
		}
	}
}

// testShardedQuiescedCrash cycles crash policies against a quiesced sharded
// set: every completed operation must survive shard-concurrent recovery.
func testShardedQuiescedCrash(t *testing.T, f Factory, k engine.Kind, shards int) {
	e, s, c := f.sharded(k, shards)
	rng := rand.New(rand.NewSource(5))
	model := make(map[uint64]uint64)
	for i := 0; i < 1200; i++ {
		key := uint64(rng.Intn(400) + 1)
		if rng.Intn(3) > 0 {
			val := uint64(rng.Intn(1 << 30))
			if s.Insert(c, key, val) {
				model[key] = val
			}
		} else {
			s.Delete(c, key)
			delete(model, key)
		}
	}
	for _, policy := range []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom} {
		e.Crash(policy, rng)
		s.Recover(engine.RecoverOptions{})
		c = e.NewCtx()
		s = structures.NewSharded(e, c, f.New)
		for key := uint64(1); key <= 400; key++ {
			want, present := model[key]
			got, ok := s.Get(c, key)
			if ok != present || (ok && got != want) {
				t.Fatalf("policy %v: key %d = (%d,%v), want (%d,%v)",
					policy, key, got, ok, want, present)
			}
		}
		probe := uint64(1000 + rng.Intn(100))
		if !s.Insert(c, probe, 1) || !s.Contains(c, probe) || !s.Delete(c, probe) {
			t.Fatalf("policy %v: structure not operational after recovery", policy)
		}
	}
}

// shardedOps is the deterministic single-threaded sequence the media pin
// and determinism tests replay on every instance under comparison.
func shardedOps(s structures.Set, c *engine.Ctx) map[uint64]uint64 {
	rng := rand.New(rand.NewSource(41))
	model := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		key := uint64(rng.Intn(300) + 1)
		if rng.Intn(3) > 0 {
			val := uint64(rng.Intn(1 << 20))
			if s.Insert(c, key, val) {
				model[key] = val
			}
		} else {
			if s.Delete(c, key) {
				delete(model, key)
			}
		}
	}
	return model
}

// mediaHashes fingerprints every persistent device of an engine, in
// device order.
func mediaHashes(e engine.Engine) []uint64 {
	var out []uint64
	for _, d := range e.PersistentDevices() {
		out = append(out, d.MediaHash())
	}
	return out
}

// testSingleShardMediaPin pins the regression that a 1-shard engine is the
// plain engine: the identical op sequence leaves every persistent device
// byte-identical (by media fingerprint), before and after recovery.
func testSingleShardMediaPin(t *testing.T, f Factory, k engine.Kind) {
	e0 := f.engine(k)
	c0 := e0.NewCtx()
	s0 := f.New(e0, c0)
	model := shardedOps(s0, c0)

	e1, s1, c1 := f.sharded(k, 1)
	shardedOps(s1, c1)

	e0.Drain(c0)
	e1.Drain(c1)
	e0.Crash(pmem.CrashKeepAll, rand.New(rand.NewSource(3)))
	e1.Crash(pmem.CrashKeepAll, rand.New(rand.NewSource(3)))

	h0, h1 := mediaHashes(e0), mediaHashes(e1)
	if len(h0) != len(h1) {
		t.Fatalf("device counts differ: unsharded %d, 1-shard %d", len(h0), len(h1))
	}
	for i := range h0 {
		if h0[i] != h1[i] {
			t.Fatalf("device %d media diverged before recovery: unsharded %#x, 1-shard %#x", i, h0[i], h1[i])
		}
	}

	e0.Recover(s0.Tracer())
	s1.Recover(engine.RecoverOptions{})
	h0, h1 = mediaHashes(e0), mediaHashes(e1)
	for i := range h0 {
		if h0[i] != h1[i] {
			t.Fatalf("device %d media diverged after recovery: unsharded %#x, 1-shard %#x", i, h0[i], h1[i])
		}
	}

	// And the recovered contents match the model on both.
	c0, c1 = e0.NewCtx(), e1.NewCtx()
	s0 = f.New(e0, c0)
	s1r := structures.NewSharded(e1, c1, f.New)
	for key := uint64(1); key <= 300; key++ {
		want, present := model[key]
		if v, ok := s0.Get(c0, key); ok != present || (ok && v != want) {
			t.Fatalf("unsharded key %d = (%d,%v), want (%d,%v)", key, v, ok, want, present)
		}
		if v, ok := s1r.Get(c1, key); ok != present || (ok && v != want) {
			t.Fatalf("1-shard key %d = (%d,%v), want (%d,%v)", key, v, ok, want, present)
		}
	}
}

// testShardedRecoveryDeterminism checks that recovered media is
// byte-identical regardless of the per-shard recovery worker count, at
// every shard count, and that the recovered logical contents agree across
// shard counts (shards partition media differently, so only contents — not
// bytes — are comparable across counts).
func testShardedRecoveryDeterminism(t *testing.T, f Factory, k engine.Kind) {
	contents := make(map[int]map[uint64]uint64)
	var model map[uint64]uint64
	for _, shards := range []int{1, 2, 4} {
		var hashes [][]uint64
		for _, par := range []int{1, 4} {
			e, s, c := f.sharded(k, shards)
			model = shardedOps(s, c)
			e.Drain(c)
			e.Crash(pmem.CrashDropAll, rand.New(rand.NewSource(7)))
			s.Recover(engine.RecoverOptions{Parallelism: par})
			hashes = append(hashes, mediaHashes(e))

			c2 := e.NewCtx()
			s2 := structures.NewSharded(e, c2, f.New)
			got := make(map[uint64]uint64)
			for key := uint64(1); key <= 300; key++ {
				if v, ok := s2.Get(c2, key); ok {
					got[key] = v
				}
			}
			if len(got) != len(model) {
				t.Fatalf("shards=%d par=%d: recovered %d keys, want %d", shards, par, len(got), len(model))
			}
			for key, v := range model {
				if got[key] != v {
					t.Fatalf("shards=%d par=%d: key %d = %d, want %d", shards, par, key, got[key], v)
				}
			}
			if contents[shards] == nil {
				contents[shards] = got
			}
		}
		for i := range hashes[0] {
			if hashes[0][i] != hashes[1][i] {
				t.Fatalf("shards=%d: device %d media differs across recovery worker counts: %#x vs %#x",
					shards, i, hashes[0][i], hashes[1][i])
			}
		}
	}
	for _, shards := range []int{2, 4} {
		if len(contents[shards]) != len(contents[1]) {
			t.Fatalf("shards=%d recovered %d keys, 1 shard recovered %d", shards, len(contents[shards]), len(contents[1]))
		}
		for key, v := range contents[1] {
			if contents[shards][key] != v {
				t.Fatalf("shards=%d: key %d = %d, 1 shard recovered %d", shards, key, contents[shards][key], v)
			}
		}
	}
}
