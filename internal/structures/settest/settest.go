// Package settest is a reusable conformance suite for structures.Set
// implementations. Each structure's test package runs the same battery —
// sequential semantics, concurrent stress, and quiesced crash-recovery —
// under every persistence engine, which is what makes the "one
// implementation, six engines" claim testable.
package settest

import (
	"math/rand"
	"sync"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
)

// Factory builds (or re-attaches, after recovery) the structure under test.
type Factory struct {
	// New constructs the set on e. Called again after Recover to
	// re-attach; it must then adopt the recovered state.
	New func(e engine.Engine, c *engine.Ctx) structures.Set
	// Words overrides the device capacity (0 = default).
	Words int
}

func (f Factory) engine(k engine.Kind) engine.Engine {
	words := f.Words
	if words == 0 {
		words = 1 << 20
	}
	return engine.New(engine.Config{Kind: k, Words: words, Track: true})
}

// Run executes the full suite for every engine kind.
func Run(t *testing.T, f Factory) {
	for _, k := range engine.Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			t.Run("Empty", func(t *testing.T) { testEmpty(t, f, k) })
			t.Run("Basic", func(t *testing.T) { testBasic(t, f, k) })
			t.Run("Duplicates", func(t *testing.T) { testDuplicates(t, f, k) })
			t.Run("Values", func(t *testing.T) { testValues(t, f, k) })
			t.Run("RandomBatch", func(t *testing.T) { testRandomBatch(t, f, k) })
			t.Run("ConcurrentDistinct", func(t *testing.T) { testConcurrentDistinct(t, f, k) })
			t.Run("ConcurrentMixed", func(t *testing.T) { testConcurrentMixed(t, f, k) })
			if k.Durable() {
				t.Run("QuiescedCrashRecovery", func(t *testing.T) { testQuiescedCrash(t, f, k) })
				t.Run("ParallelRecoveryEquivalence", func(t *testing.T) { testParallelRecovery(t, f, k) })
			}
		})
	}
}

func testEmpty(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c := e.NewCtx()
	s := f.New(e, c)
	if s.Contains(c, 5) {
		t.Error("empty set contains 5")
	}
	if s.Delete(c, 5) {
		t.Error("delete on empty set succeeded")
	}
	if _, ok := s.Get(c, 5); ok {
		t.Error("get on empty set succeeded")
	}
}

func testBasic(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c := e.NewCtx()
	s := f.New(e, c)
	if !s.Insert(c, 10, 100) {
		t.Fatal("insert 10 failed")
	}
	if !s.Insert(c, 5, 50) || !s.Insert(c, 15, 150) {
		t.Fatal("inserts failed")
	}
	for _, key := range []uint64{5, 10, 15} {
		if !s.Contains(c, key) {
			t.Errorf("missing key %d", key)
		}
	}
	if s.Contains(c, 7) {
		t.Error("phantom key 7")
	}
	if !s.Delete(c, 10) {
		t.Error("delete 10 failed")
	}
	if s.Contains(c, 10) {
		t.Error("key 10 survived delete")
	}
	if s.Delete(c, 10) {
		t.Error("double delete succeeded")
	}
	if !s.Contains(c, 5) || !s.Contains(c, 15) {
		t.Error("neighbors disturbed by delete")
	}
	if !s.Insert(c, 10, 101) {
		t.Error("re-insert after delete failed")
	}
	if v, ok := s.Get(c, 10); !ok || v != 101 {
		t.Errorf("Get(10) = (%d,%v), want (101,true)", v, ok)
	}
}

func testDuplicates(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c := e.NewCtx()
	s := f.New(e, c)
	if !s.Insert(c, 3, 1) {
		t.Fatal("first insert failed")
	}
	if s.Insert(c, 3, 2) {
		t.Error("duplicate insert succeeded")
	}
	if v, _ := s.Get(c, 3); v != 1 {
		t.Errorf("duplicate insert changed value to %d", v)
	}
}

func testValues(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c := e.NewCtx()
	s := f.New(e, c)
	for i := uint64(1); i <= 64; i++ {
		s.Insert(c, i, i*i)
	}
	for i := uint64(1); i <= 64; i++ {
		if v, ok := s.Get(c, i); !ok || v != i*i {
			t.Errorf("Get(%d) = (%d,%v), want (%d,true)", i, v, ok, i*i)
		}
	}
}

func testRandomBatch(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c := e.NewCtx()
	s := f.New(e, c)
	rng := rand.New(rand.NewSource(321))
	model := make(map[uint64]uint64)
	for i := 0; i < 2000; i++ {
		key := uint64(rng.Intn(500) + 1)
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64()
			_, present := model[key]
			if got := s.Insert(c, key, val); got == present {
				t.Fatalf("op %d: Insert(%d) = %v with present=%v", i, key, got, present)
			}
			if !present {
				model[key] = val
			}
		case 1:
			_, present := model[key]
			if got := s.Delete(c, key); got != present {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, key, got, present)
			}
			delete(model, key)
		default:
			want, present := model[key]
			got, ok := s.Get(c, key)
			if ok != present || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, key, got, ok, want, present)
			}
		}
	}
}

func testConcurrentDistinct(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c0 := e.NewCtx()
	s := f.New(e, c0)
	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.NewCtx()
			base := uint64(w*perWorker + 1)
			for i := uint64(0); i < perWorker; i++ {
				if !s.Insert(c, base+i, base+i) {
					t.Errorf("worker %d: insert %d failed", w, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for key := uint64(1); key <= workers*perWorker; key++ {
		if !s.Contains(c0, key) {
			t.Fatalf("key %d missing after concurrent inserts", key)
		}
	}
	// Concurrently delete the even keys.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.NewCtx()
			base := uint64(w*perWorker + 1)
			for i := uint64(0); i < perWorker; i++ {
				if (base+i)%2 == 0 {
					if !s.Delete(c, base+i) {
						t.Errorf("worker %d: delete %d failed", w, base+i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for key := uint64(1); key <= workers*perWorker; key++ {
		want := key%2 == 1
		if got := s.Contains(c0, key); got != want {
			t.Fatalf("key %d: contains = %v, want %v", key, got, want)
		}
	}
}

// testConcurrentMixed uses one writer per key range plus roaming readers;
// because each key has a single writer, the final state is exactly
// determined by each writer's completed operations.
func testConcurrentMixed(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c0 := e.NewCtx()
	s := f.New(e, c0)
	const writers = 4
	const keysPer = 64
	const opsPer = 1500
	finals := make([]map[uint64]bool, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := e.NewCtx()
			rng := rand.New(rand.NewSource(int64(w + 77)))
			final := make(map[uint64]bool)
			base := uint64(w*keysPer + 1)
			for i := 0; i < opsPer; i++ {
				key := base + uint64(rng.Intn(keysPer))
				if rng.Intn(2) == 0 {
					if s.Insert(c, key, key) {
						final[key] = true
					}
				} else {
					if s.Delete(c, key) {
						final[key] = false
					}
				}
			}
			finals[w] = final
		}(w)
	}
	// Roaming readers validate nothing panics and results are booleans in
	// range (no torn values): Get must return the key as value when ok.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func(seed int64) {
			defer rg.Done()
			c := e.NewCtx()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(rng.Intn(writers*keysPer) + 1)
				if v, ok := s.Get(c, key); ok && v != key {
					t.Errorf("Get(%d) returned torn value %d", key, v)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	for w := 0; w < writers; w++ {
		for key, present := range finals[w] {
			if got := s.Contains(c0, key); got != present {
				t.Fatalf("key %d: contains = %v, want %v (single-writer model)", key, got, present)
			}
		}
	}
}

// collectVisits runs a tracer against the post-crash image and returns its
// visit set, failing the test if any object is visited more than once.
func collectVisits(t *testing.T, e engine.Engine, tr engine.Tracer, label string) map[engine.Ref]int {
	t.Helper()
	visits := make(map[engine.Ref]int)
	tr(e.RecoveryLoad, func(ref engine.Ref, fields int) {
		if _, dup := visits[ref]; dup {
			t.Fatalf("%s: object %d visited twice", label, ref)
		}
		visits[ref] = fields
	})
	return visits
}

// testParallelRecovery checks the sharded tracer against the sequential one
// on the same crash image — first by visit-set equality (each reachable
// object visited exactly once by exactly one shard), then end to end: the
// contents recovered at Parallelism 1 and Parallelism N must be identical.
func testParallelRecovery(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c := e.NewCtx()
	s := f.New(e, c)
	ss, ok := s.(structures.ShardableSet)
	if !ok {
		t.Skipf("%s has no sharded tracer", s.Name())
	}
	rng := rand.New(rand.NewSource(9))
	model := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		key := uint64(rng.Intn(400) + 1)
		if rng.Intn(3) > 0 {
			val := uint64(rng.Intn(1 << 30))
			if s.Insert(c, key, val) {
				model[key] = val
			}
		} else {
			s.Delete(c, key)
			delete(model, key)
		}
	}
	tracer, sharded := s.Tracer(), ss.ShardedTracer()
	e.Crash(pmem.CrashDropAll, rng)

	// Visit-set equivalence on the frozen image, for several shard counts.
	want := collectVisits(t, e, tracer, "sequential")
	for _, shards := range []int{2, 3, 8} {
		got := make(map[engine.Ref]int)
		for sh := 0; sh < shards; sh++ {
			for ref, fields := range collectVisits(t, e, sharded(sh, shards), "shard") {
				if _, dup := got[ref]; dup {
					t.Fatalf("shards=%d: object %d visited by two shards", shards, ref)
				}
				got[ref] = fields
			}
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d objects visited, sequential visited %d", shards, len(got), len(want))
		}
		for ref, fields := range want {
			if got[ref] != fields {
				t.Fatalf("shards=%d: object %d fields = %d, want %d", shards, ref, got[ref], fields)
			}
		}
	}

	// End to end: sequential recovery, then re-crash and parallel
	// recovery of the same image must yield identical contents.
	readAll := func() map[uint64]uint64 {
		c := e.NewCtx()
		s := f.New(e, c)
		out := make(map[uint64]uint64)
		for key := uint64(1); key <= 400; key++ {
			if v, ok := s.Get(c, key); ok {
				out[key] = v
			}
		}
		return out
	}
	e.RecoverWith(tracer, engine.RecoverOptions{Parallelism: 1})
	seq := readAll()
	for _, par := range []int{2, 4} {
		e.Crash(pmem.CrashDropAll, rng)
		e.RecoverWith(tracer, engine.RecoverOptions{Parallelism: par, Sharded: sharded})
		got := readAll()
		if len(got) != len(seq) {
			t.Fatalf("par=%d: recovered %d keys, sequential recovered %d", par, len(got), len(seq))
		}
		for key, v := range seq {
			if got[key] != v {
				t.Fatalf("par=%d: key %d = %d, want %d", par, key, got[key], v)
			}
		}
	}
	// Both recoveries must also match the pre-crash model.
	for key, v := range model {
		if seq[key] != v {
			t.Fatalf("recovered key %d = %d, want %d", key, seq[key], v)
		}
	}
	if len(seq) != len(model) {
		t.Fatalf("recovered %d keys, want %d", len(seq), len(model))
	}
}

func testQuiescedCrash(t *testing.T, f Factory, k engine.Kind) {
	e := f.engine(k)
	c := e.NewCtx()
	s := f.New(e, c)
	rng := rand.New(rand.NewSource(5))
	model := make(map[uint64]uint64)
	for i := 0; i < 1500; i++ {
		key := uint64(rng.Intn(400) + 1)
		if rng.Intn(3) > 0 {
			val := uint64(rng.Intn(1 << 30))
			if s.Insert(c, key, val) {
				model[key] = val
			}
		} else {
			s.Delete(c, key)
			delete(model, key)
		}
	}
	tracer := s.Tracer()
	for _, policy := range []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom} {
		e.Crash(policy, rng)
		e.Recover(tracer)
		c = e.NewCtx()
		s = f.New(e, c)
		tracer = s.Tracer()
		for key := uint64(1); key <= 400; key++ {
			want, present := model[key]
			got, ok := s.Get(c, key)
			if ok != present || (ok && got != want) {
				t.Fatalf("policy %v: key %d = (%d,%v), want (%d,%v)",
					policy, key, got, ok, want, present)
			}
		}
		// The structure must remain fully operational after recovery.
		probe := uint64(1000 + rng.Intn(100))
		if !s.Insert(c, probe, 1) || !s.Contains(c, probe) || !s.Delete(c, probe) {
			t.Fatalf("policy %v: structure not operational after recovery", policy)
		}
	}
}
