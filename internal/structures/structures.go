// Package structures defines the common interface of the lock-free sets
// evaluated in the paper (§6.1): a Harris linked list, a hash table with a
// Harris list per bucket, a Natarajan–Mittal external binary search tree,
// and a Fraser-style skip list.
//
// Every structure is implemented once against the engine.Engine interface
// and is written in *traversal form*: searches use TraversalLoad and the
// destination nodes are passed to MakePersistent before the critical
// section. Under the Mirror and Izraelevitz engines those hints are no-ops
// or redundant, so the same code realizes each transformation exactly as
// the corresponding paper prescribes.
package structures

import "mirror/internal/engine"

// KeyMax is the largest usable key. Larger values are reserved for
// sentinels inside the structures. Keys must also be nonzero.
const KeyMax = uint64(1)<<62 - 1

// Set is a durable (engine permitting) concurrent set with associated
// values. All methods are linearizable and safe for concurrent use; the
// Ctx identifies the calling thread and must not be shared.
type Set interface {
	// Insert adds key with the given value; it returns false if the key
	// was already present (the value is not updated).
	Insert(c *engine.Ctx, key, val uint64) bool
	// Delete removes key, reporting whether it was present.
	Delete(c *engine.Ctx, key uint64) bool
	// Contains reports whether key is present.
	Contains(c *engine.Ctx, key uint64) bool
	// Get returns the value stored for key.
	Get(c *engine.Ctx, key uint64) (uint64, bool)
	// Tracer returns the recovery tracing operation for this structure
	// (the user-supplied routine required by §3.2).
	Tracer() engine.Tracer
	// Name identifies the structure in benchmark output.
	Name() string
}

// ShardableSet is a Set whose recovery trace can be partitioned for the
// parallel recovery pipeline. ShardedTracer's shards must together visit
// exactly the objects the sequential Tracer visits, each exactly once.
type ShardableSet interface {
	Set
	ShardedTracer() engine.ShardedTracer
}

// mark helpers shared by the list-based structures: bit 0 of a stored Ref
// marks the *containing* node as logically deleted (Harris).
const markBit = uint64(1)

// Marked reports whether a stored reference carries the delete mark.
func Marked(ref uint64) bool { return ref&markBit != 0 }

// Unmark strips the delete mark.
func Unmark(ref uint64) uint64 { return ref &^ markBit }

// Mark sets the delete mark.
func Mark(ref uint64) uint64 { return ref | markBit }
