package list_test

import (
	"testing"

	"mirror/internal/dwcas"
	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/list"
	"mirror/internal/structures/settest"
)

// TestListConformanceFallbackDWCAS runs the full conformance suite with
// the portable seqlock DWCAS emulation forced on, covering the non-amd64
// code path end to end (concurrency, crashes, recovery).
func TestListConformanceFallbackDWCAS(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dwcas.SetFallback(true)
	t.Cleanup(func() { dwcas.SetFallback(false) })
	settest.Run(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return list.New(e, 0)
		},
	})
}
