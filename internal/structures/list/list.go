// Package list implements Harris's lock-free linked list [Harris 2001] on
// top of a persistence engine — the first structure evaluated in the paper
// (§6.2.1–6.2.3, Figure 1 shows exactly this node layout under patomic).
//
// Nodes have three logical fields: an immutable key, a value, and a next
// reference whose low bit marks the node as logically deleted. The list is
// sorted and ends at nil; the head reference lives in a field of the
// engine's persistent root object, so the whole structure is reachable from
// the persistent roots as recovery requires.
package list

import (
	"mirror/internal/engine"
	"mirror/internal/structures"
)

// Node field indexes.
const (
	fKey  = 0
	fVal  = 1
	fNext = 2
	// NodeFields is the number of logical fields per node.
	NodeFields = 3
)

// List is a lock-free sorted linked list. The zero value is not usable;
// call New.
type List struct {
	e         engine.Engine
	rootRef   engine.Ref
	rootField int
}

// New creates a list whose head pointer lives in the given field of the
// engine's root object. If the field is already non-nil (recovery), the
// existing list is adopted unchanged.
func New(e engine.Engine, rootField int) *List {
	return &List{e: e, rootRef: e.RootRef(), rootField: rootField}
}

// NewAt creates a list whose head pointer lives in an arbitrary
// (object, field) slot; the hash table uses one slot per bucket.
func NewAt(e engine.Engine, ref engine.Ref, field int) *List {
	return &List{e: e, rootRef: ref, rootField: field}
}

// Name implements structures.Set.
func (l *List) Name() string { return "list" }

// find locates the insertion point for key: it returns the slot holding
// the reference to curr (predRef, predField), the raw value predVal that
// slot held when loaded, and curr itself — the first unmarked node with
// curr.key >= key, or 0 if none. Marked nodes found on the way are
// physically unlinked (Michael's helping variant of Harris's list), but
// only when the mark being hidden is not in this thread's own combine
// buffer: a snip is a shortcut that hides the snipped node's line from
// later readers, so a deleter whose own buffered mark is still undrained
// must not publish it — a fenced reader could conclude the key absent
// without ever loading the mark line, and the conflict probe would not
// fire (the CASRelaxed exposure rule). A foreign mark needs no such
// care: this thread's own traversal load of it went through the
// combined read path, whose probe committed the mark durable before
// returning it, so the snip exposes only durable state and may proceed
// even with a non-empty own buffer (CASRelaxedExposeSafe). When snips
// are deferred, find walks past the marked run instead and predVal !=
// curr: the run's head is still linked, and the caller's install
// excises it (see Insert). find runs inside the caller's operation
// bracket.
//
// find serves only update operations, so its loads use the adopting
// traversal variant: a crossed foreign buffered install joins this
// thread's own combine buffer instead of costing a fence on the spot.
// The callers uphold the adoption contract — a linearizing install
// rides the same buffer as its adopted dependencies, and a no-effect
// verdict calls CommitWitness before returning. Read operations (Get,
// Range, ...) walk with plain probing TraversalLoads.
func (l *List) find(c *engine.Ctx, key uint64) (predRef engine.Ref, predField int, predVal uint64, curr engine.Ref) {
	e := l.e
retry:
	for {
		predRef, predField = l.rootRef, l.rootField
		predVal = engine.TraversalLoadAdopt(e, c, predRef, predField)
		curr = structures.Unmark(predVal)
		for curr != 0 {
			succ := engine.TraversalLoadAdopt(e, c, curr, fNext)
			if structures.Marked(succ) {
				if predVal == curr && !engine.CombineOwnsField(e, c, curr, fNext) {
					// curr is logically deleted and directly linked from
					// pred: unlink it. This is a critical step — persist
					// the nodes around the destination first (NVTraverse
					// barrier; no-op for Mirror, redundant for
					// Izraelevitz).
					e.MakePersistent(c, predRef, NodeFields)
					e.MakePersistent(c, curr, NodeFields)
					// The unlink is auxiliary cleanup: the node is already
					// logically deleted (marked), so the snip may persist
					// lazily — it is committed before curr's memory can be
					// reused, via the retire-gated relaxed-line registry.
					// The mark is not in our buffer (checked above), so it
					// was probed durable by our own load: skip the
					// exposure drain.
					if !engine.CASRelaxedExposeSafe(e, c, predRef, predField, curr, structures.Unmark(succ)) {
						continue retry
					}
					e.Retire(c, curr, NodeFields)
					predVal = structures.Unmark(succ)
					curr = predVal
					continue
				}
				// Deferred snip: leave the marked run linked and walk past
				// it. pred stays frozen before the run; the caller sees
				// predVal != curr and installs through it.
				curr = structures.Unmark(succ)
				continue
			}
			if engine.TraversalLoadAdopt(e, c, curr, fKey) >= key {
				return predRef, predField, predVal, curr
			}
			predRef, predField = curr, fNext
			predVal = succ
			curr = structures.Unmark(succ)
		}
		return predRef, predField, predVal, 0
	}
}

// Insert implements structures.Set.
func (l *List) Insert(c *engine.Ctx, key, val uint64) bool {
	if key == 0 || key > structures.KeyMax {
		panic("list: key outside usable range")
	}
	e := l.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	var node engine.Ref
	for {
		predRef, predField, predVal, curr := l.find(c, key)
		if curr != 0 && engine.TraversalLoadAdopt(e, c, curr, fKey) == key {
			if node != 0 {
				e.FreeUnpublished(c, node, NodeFields)
			}
			// The failed insert's linearization point is the read
			// establishing the key's presence; persist the witness. If the
			// walk adopted undrained foreign installs and this thread holds
			// no ticket to vanish with, the witness must reach a fence
			// before the verdict escapes.
			e.MakePersistent(c, curr, NodeFields)
			engine.CommitWitness(e, c)
			return false
		}
		// Batch the node's initialization: relaxed flushes per dirty line,
		// one trailing fence at Commit (engine.Batch; equivalent to
		// StoreInit+Publish on non-eliding engines).
		b := engine.Batch(e, c)
		if node == 0 {
			node = e.Alloc(c, NodeFields)
			b.StoreInit(node, fKey, key)
			b.StoreInit(node, fVal, val)
		}
		b.StoreInit(node, fNext, curr)
		b.Commit()
		e.MakePersistent(c, predRef, NodeFields)
		// Install through any deferred marked run: the CAS expects the raw
		// slot value (predVal — the run's head when find deferred its
		// snips) and links node directly to the first unmarked successor,
		// excising the run as part of the linearizing install itself. The
		// excision rides the install's combine-buffer entry, so no extra
		// fence is ever paid for it.
		if e.CAS(c, predRef, predField, predVal, node) {
			// The linearizing link is durable (or buffered with the
			// thread's undrained ticket): publish the detectable verdict
			// (no-op without an armed descriptor).
			e.Linearized(c, true)
			for m := predVal; m != curr; {
				succ := engine.TraversalLoadAdopt(e, c, m, fNext)
				e.Retire(c, m, NodeFields)
				m = structures.Unmark(succ)
			}
			return true
		}
	}
}

// Delete implements structures.Set.
func (l *List) Delete(c *engine.Ctx, key uint64) bool {
	e := l.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	for {
		predRef, predField, predVal, curr := l.find(c, key)
		if curr == 0 || engine.TraversalLoadAdopt(e, c, curr, fKey) != key {
			// Absent-key verdict: commit any adopted witness first (no-op
			// when this thread holds an undrained ticket to vanish with).
			engine.CommitWitness(e, c)
			return false
		}
		succ := engine.TraversalLoadAdopt(e, c, curr, fNext)
		if structures.Marked(succ) {
			// Someone else is deleting it; help via find and retry.
			continue
		}
		e.MakePersistent(c, predRef, NodeFields)
		e.MakePersistent(c, curr, NodeFields)
		if !e.CAS(c, curr, fNext, succ, structures.Mark(succ)) {
			continue
		}
		e.Linearized(c, true)
		// Attempt the physical unlink; on failure (or deferral) find()
		// or a later install excises the node. The delete's linearization
		// point was the mark CAS above; with combining on, that mark is
		// usually still in this thread's buffer here, and unlinking now
		// would expose it to readers that never load the mark line — so
		// the unlink waits until the mark's line has left our buffer (the
		// exposure rule). The relaxed-line registry still commits the
		// snip before the node is freed.
		if predVal == curr && !engine.CombineOwnsField(e, c, curr, fNext) &&
			engine.CASRelaxedExposeSafe(e, c, predRef, predField, curr, succ) {
			e.Retire(c, curr, NodeFields)
		}
		return true
	}
}

// Contains implements structures.Set with a wait-free traversal.
func (l *List) Contains(c *engine.Ctx, key uint64) bool {
	_, ok := l.Get(c, key)
	return ok
}

// Get implements structures.Set.
func (l *List) Get(c *engine.Ctx, key uint64) (uint64, bool) {
	e := l.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	curr := structures.Unmark(e.TraversalLoad(c, l.rootRef, l.rootField))
	for curr != 0 {
		k := e.TraversalLoad(c, curr, fKey)
		if k >= key {
			if k != key {
				return 0, false
			}
			if structures.Marked(e.TraversalLoad(c, curr, fNext)) {
				return 0, false
			}
			v := e.TraversalLoad(c, curr, fVal)
			// The read that justifies the result is persisted before
			// the operation returns (NVTraverse; no-op elsewhere).
			e.MakePersistent(c, curr, NodeFields)
			return v, true
		}
		curr = structures.Unmark(e.TraversalLoad(c, curr, fNext))
	}
	return 0, false
}

// Len counts the unmarked nodes; it is not linearizable and intended for
// tests and diagnostics on a quiesced list.
func (l *List) Len(c *engine.Ctx) int {
	e := l.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	n := 0
	curr := structures.Unmark(e.TraversalLoad(c, l.rootRef, l.rootField))
	for curr != 0 {
		next := e.TraversalLoad(c, curr, fNext)
		if !structures.Marked(next) {
			n++
		}
		curr = structures.Unmark(next)
	}
	return n
}

// Keys returns the unmarked keys in order (quiesced use only).
func (l *List) Keys(c *engine.Ctx) []uint64 {
	e := l.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	var keys []uint64
	curr := structures.Unmark(e.TraversalLoad(c, l.rootRef, l.rootField))
	for curr != 0 {
		next := e.TraversalLoad(c, curr, fNext)
		if !structures.Marked(next) {
			keys = append(keys, e.TraversalLoad(c, curr, fKey))
		}
		curr = structures.Unmark(next)
	}
	return keys
}

// Tracer implements structures.Set: it visits every node reachable from
// the head slot, marked or not, following unmarked references.
func (l *List) Tracer() engine.Tracer {
	return TracerAt(l.e, l.rootField)
}

// TracerAt returns the list's recovery tracer without attaching to the
// (possibly not yet recovered) structure.
func TracerAt(e engine.Engine, rootField int) engine.Tracer {
	return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
		TraceFrom(e.RootRef(), rootField, read, visit)
	}
}

// TraceFrom walks one list from an arbitrary head slot; the hash table
// reuses it per bucket.
func TraceFrom(rootRef engine.Ref, rootField int, read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
	curr := structures.Unmark(read(rootRef, rootField))
	for curr != 0 {
		visit(curr, NodeFields)
		curr = structures.Unmark(read(curr, fNext))
	}
}

var _ structures.Set = (*List)(nil)

// Range calls fn for each present key in [from, to] in ascending order,
// stopping early if fn returns false. The scan is weakly consistent: each
// visited pair was present at some moment during the scan, but the scan is
// not a snapshot.
func (l *List) Range(c *engine.Ctx, from, to uint64, fn func(key, val uint64) bool) {
	e := l.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	curr := structures.Unmark(e.TraversalLoad(c, l.rootRef, l.rootField))
	for curr != 0 {
		next := e.TraversalLoad(c, curr, fNext)
		k := e.TraversalLoad(c, curr, fKey)
		if k > to {
			return
		}
		if k >= from && !structures.Marked(next) {
			if !fn(k, e.TraversalLoad(c, curr, fVal)) {
				return
			}
		}
		curr = structures.Unmark(next)
	}
}
