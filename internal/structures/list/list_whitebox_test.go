package list

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
)

// White-box tests staging the Harris list's marked-node intermediate
// states (a delete that marked its node and stalled before unlinking).

func newWB(t *testing.T) (engine.Engine, *engine.Ctx, *List) {
	t.Helper()
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18, Track: true})
	c := e.NewCtx()
	return e, c, New(e, 0)
}

// plantMark marks key's node without unlinking it.
func plantMark(e engine.Engine, c *engine.Ctx, l *List, key uint64) {
	_, _, _, curr := l.find(c, key)
	if curr == 0 || e.Load(c, curr, fKey) != key {
		panic("plantMark: key not found")
	}
	next := e.Load(c, curr, fNext)
	if !e.CAS(c, curr, fNext, next, structures.Mark(next)) {
		panic("plantMark: CAS failed")
	}
}

func TestMarkedNodeIsAbsent(t *testing.T) {
	e, c, l := newWB(t)
	for k := uint64(1); k <= 10; k++ {
		l.Insert(c, k, k)
	}
	plantMark(e, c, l, 5)
	if l.Contains(c, 5) {
		t.Fatal("marked node reported present")
	}
	if l.Len(c) != 9 {
		t.Fatalf("Len = %d, want 9", l.Len(c))
	}
}

func TestFindUnlinksMarkedNode(t *testing.T) {
	e, c, l := newWB(t)
	for k := uint64(1); k <= 10; k++ {
		l.Insert(c, k, k)
	}
	plantMark(e, c, l, 5)
	// Any find through the region physically unlinks the marked node.
	_, _, _, curr := l.find(c, 5)
	if curr != 0 && e.Load(c, curr, fKey) == 5 {
		t.Fatal("find did not unlink the marked node")
	}
	if !l.Insert(c, 5, 99) {
		t.Fatal("re-insert after unlink failed")
	}
	if v, _ := l.Get(c, 5); v != 99 {
		t.Fatalf("value = %d, want 99", v)
	}
}

func TestDeleteOfMarkedNodeReportsAbsent(t *testing.T) {
	e, c, l := newWB(t)
	l.Insert(c, 7, 7)
	plantMark(e, c, l, 7)
	if l.Delete(c, 7) {
		t.Fatal("delete of already-marked node should report absent")
	}
	if l.Len(c) != 0 {
		t.Fatalf("Len = %d, want 0", l.Len(c))
	}
}

func TestInsertAfterMarkedPredecessor(t *testing.T) {
	// Insert whose predecessor gets marked: the insert's CAS on the
	// marked slot must fail and retry through a fresh find.
	e, c, l := newWB(t)
	l.Insert(c, 10, 10)
	l.Insert(c, 30, 30)
	plantMark(e, c, l, 10)
	if !l.Insert(c, 20, 20) {
		t.Fatal("insert after marked predecessor failed")
	}
	keys := l.Keys(c)
	want := []uint64{20, 30}
	if len(keys) != len(want) || keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
}
