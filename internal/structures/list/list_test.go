package list_test

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/list"
	"mirror/internal/structures/settest"
)

func TestListConformance(t *testing.T) {
	settest.Run(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return list.New(e, 0)
		},
	})
}

func TestListSortedKeys(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18, Track: true})
	c := e.NewCtx()
	l := list.New(e, 0)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		l.Insert(c, k, k)
	}
	keys := l.Keys(c)
	want := []uint64{1, 3, 5, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	if l.Len(c) != 5 {
		t.Errorf("Len = %d, want 5", l.Len(c))
	}
}

func TestListKeyRangePanics(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.OrigDRAM, Words: 1 << 16})
	c := e.NewCtx()
	l := list.New(e, 0)
	defer func() {
		if recover() == nil {
			t.Error("key 0 insert should panic")
		}
	}()
	l.Insert(c, 0, 1)
}

func TestTwoListsIndependentRootFields(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18})
	c := e.NewCtx()
	a := list.New(e, 0)
	b := list.New(e, 1)
	a.Insert(c, 1, 10)
	b.Insert(c, 2, 20)
	if a.Contains(c, 2) || b.Contains(c, 1) {
		t.Error("lists with different root fields share state")
	}
}

func TestListShardedConformance(t *testing.T) {
	settest.RunSharded(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return list.New(e, 0)
		},
	})
}
