// Package queue implements the Michael–Scott lock-free FIFO queue on top
// of a persistence engine. The queue is not part of the paper's evaluation
// — it is the generality claim made executable: §1 promises that Mirror
// converts *any* linearizable lock-free structure with no algorithmic
// change, and the canonical lock-free queue (the basis of the hand-made
// durable queue of Friedman et al., PPoPP 2018, cited as [18]) exercises
// exactly the operations sets do not: blind pointer swings with helping on
// two shared locations.
package queue

import (
	"mirror/internal/engine"
)

// Node field indexes.
const (
	fVal  = 0
	fNext = 1
	// NodeFields is the number of logical fields per node.
	NodeFields = 2
)

// Queue is a durable (engine permitting) lock-free FIFO queue.
type Queue struct {
	e     engine.Engine
	rootF int // rootF holds head, rootF+1 holds tail
}

// New creates a queue whose head/tail references live in root fields 4 and
// 5 (or adopts an existing one after recovery).
func New(e engine.Engine, c *engine.Ctx) *Queue {
	return NewAt(e, c, 4)
}

// NewAt is New with an explicit pair of root fields.
func NewAt(e engine.Engine, c *engine.Ctx, rootField int) *Queue {
	q := &Queue{e: e, rootF: rootField}
	e.OpBegin(c)
	defer e.OpEnd(c)
	if e.Load(c, e.RootRef(), rootField) != 0 {
		return q
	}
	dummy := e.Alloc(c, NodeFields)
	e.StoreInit(c, dummy, fVal, 0)
	e.StoreInit(c, dummy, fNext, 0)
	e.Publish(c, dummy)
	e.Store(c, e.RootRef(), rootField+1, dummy) // tail first: head != 0 signals "ready"
	e.Store(c, e.RootRef(), rootField, dummy)
	return q
}

// Name identifies the structure in output.
func (q *Queue) Name() string { return "queue" }

// Enqueue appends v to the queue.
func (q *Queue) Enqueue(c *engine.Ctx, v uint64) {
	e := q.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	node := e.Alloc(c, NodeFields)
	e.StoreInit(c, node, fVal, v)
	e.StoreInit(c, node, fNext, 0)
	e.Publish(c, node)
	root := e.RootRef()
	for {
		tail := e.Load(c, root, q.rootF+1)
		next := e.Load(c, tail, fNext)
		if next != 0 {
			// Tail lags; help swing it.
			e.CAS(c, root, q.rootF+1, tail, next)
			continue
		}
		e.MakePersistent(c, tail, NodeFields)
		if e.CAS(c, tail, fNext, 0, node) {
			// Linearized (and durable). Swinging the tail is best
			// effort; anyone can finish it.
			e.CAS(c, root, q.rootF+1, tail, node)
			return
		}
	}
}

// Dequeue removes and returns the oldest element.
func (q *Queue) Dequeue(c *engine.Ctx) (uint64, bool) {
	e := q.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	root := e.RootRef()
	for {
		head := e.Load(c, root, q.rootF)
		tail := e.Load(c, root, q.rootF+1)
		next := e.Load(c, head, fNext)
		if head == tail {
			if next == 0 {
				return 0, false // empty
			}
			// Tail lags behind a completed enqueue; help.
			e.CAS(c, root, q.rootF+1, tail, next)
			continue
		}
		v := e.Load(c, next, fVal)
		e.MakePersistent(c, head, NodeFields)
		e.MakePersistent(c, next, NodeFields)
		if e.CAS(c, root, q.rootF, head, next) {
			e.Retire(c, head, NodeFields)
			return v, true
		}
	}
}

// Peek returns the oldest element without removing it.
func (q *Queue) Peek(c *engine.Ctx) (uint64, bool) {
	e := q.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	root := e.RootRef()
	for {
		head := e.Load(c, root, q.rootF)
		next := e.Load(c, head, fNext)
		if next == 0 {
			return 0, false
		}
		v := e.Load(c, next, fVal)
		if e.Load(c, root, q.rootF) == head {
			return v, true
		}
	}
}

// Len counts queued elements (quiesced use only).
func (q *Queue) Len(c *engine.Ctx) int {
	e := q.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	n := 0
	node := e.Load(c, e.RootRef(), q.rootF) // dummy
	for {
		node = e.Load(c, node, fNext)
		if node == 0 {
			return n
		}
		n++
	}
}

// Drain empties the queue into a slice (quiesced use only).
func (q *Queue) Drain(c *engine.Ctx) []uint64 {
	var out []uint64
	for {
		v, ok := q.Dequeue(c)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Tracer walks every node reachable from the head (the tail is always on
// that chain).
func (q *Queue) Tracer() engine.Tracer {
	return TracerAt(q.e, q.rootF)
}

// TracerAt returns the queue's recovery tracer without attaching to the
// (possibly not yet recovered) structure.
func TracerAt(e engine.Engine, rootField int) engine.Tracer {
	return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
		node := read(e.RootRef(), rootField)
		for node != 0 {
			visit(node, NodeFields)
			node = read(node, fNext)
		}
	}
}
