package queue_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/queue"
)

func newEngine(k engine.Kind) engine.Engine {
	return engine.New(engine.Config{Kind: k, Words: 1 << 20, Track: true})
}

func forEachKind(t *testing.T, f func(t *testing.T, e engine.Engine)) {
	for _, k := range engine.Kinds() {
		t.Run(k.String(), func(t *testing.T) { f(t, newEngine(k)) })
	}
}

func TestFIFOOrder(t *testing.T) {
	forEachKind(t, func(t *testing.T, e engine.Engine) {
		c := e.NewCtx()
		q := queue.New(e, c)
		if _, ok := q.Dequeue(c); ok {
			t.Fatal("dequeue on empty queue succeeded")
		}
		for v := uint64(1); v <= 100; v++ {
			q.Enqueue(c, v)
		}
		if got := q.Len(c); got != 100 {
			t.Fatalf("Len = %d, want 100", got)
		}
		if v, ok := q.Peek(c); !ok || v != 1 {
			t.Fatalf("Peek = (%d,%v), want (1,true)", v, ok)
		}
		for v := uint64(1); v <= 100; v++ {
			got, ok := q.Dequeue(c)
			if !ok || got != v {
				t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
			}
		}
		if _, ok := q.Dequeue(c); ok {
			t.Fatal("queue should be empty")
		}
	})
}

func TestInterleavedEnqueueDequeue(t *testing.T) {
	forEachKind(t, func(t *testing.T, e engine.Engine) {
		c := e.NewCtx()
		q := queue.New(e, c)
		next, expect := uint64(1), uint64(1)
		rng := rand.New(rand.NewSource(4))
		pending := 0
		for i := 0; i < 5000; i++ {
			if pending == 0 || rng.Intn(2) == 0 {
				q.Enqueue(c, next)
				next++
				pending++
			} else {
				v, ok := q.Dequeue(c)
				if !ok || v != expect {
					t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, expect)
				}
				expect++
				pending--
			}
		}
	})
}

// TestConcurrentMPMC checks per-producer FIFO: each producer enqueues an
// ascending sequence tagged with its id; consumers must observe each
// producer's values in order, each exactly once.
func TestConcurrentMPMC(t *testing.T) {
	forEachKind(t, func(t *testing.T, e engine.Engine) {
		c0 := e.NewCtx()
		q := queue.New(e, c0)
		const producers = 4
		const consumers = 4
		const perProducer = 2000
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				c := e.NewCtx()
				for i := uint64(1); i <= perProducer; i++ {
					q.Enqueue(c, uint64(p)<<32|i)
				}
			}(p)
		}
		var mu sync.Mutex
		consumed := make(map[uint64][]uint64) // producer -> sequence
		var cwg sync.WaitGroup
		var total sync.WaitGroup
		total.Add(producers * perProducer)
		done := make(chan struct{})
		for cI := 0; cI < consumers; cI++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				c := e.NewCtx()
				for {
					select {
					case <-done:
						return
					default:
					}
					v, ok := q.Dequeue(c)
					if !ok {
						continue
					}
					mu.Lock()
					p := v >> 32
					consumed[p] = append(consumed[p], v&0xffffffff)
					mu.Unlock()
					total.Done()
				}
			}()
		}
		wg.Wait()
		total.Wait()
		close(done)
		cwg.Wait()
		for p := uint64(0); p < producers; p++ {
			seq := consumed[p]
			if len(seq) != perProducer {
				t.Fatalf("producer %d: consumed %d, want %d", p, len(seq), perProducer)
			}
			// Values from one producer need not be globally sorted across
			// consumers, but each was enqueued in order; with multiple
			// consumers the multiset is the checkable property.
			seen := make(map[uint64]bool)
			for _, v := range seq {
				if seen[v] {
					t.Fatalf("producer %d: value %d consumed twice", p, v)
				}
				seen[v] = true
			}
		}
	})
}

// TestSingleConsumerOrder verifies global FIFO per producer with one
// consumer: each producer's subsequence must be strictly ascending.
func TestSingleConsumerOrder(t *testing.T) {
	e := newEngine(engine.MirrorDRAM)
	c0 := e.NewCtx()
	q := queue.New(e, c0)
	const producers = 4
	const perProducer = 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := e.NewCtx()
			for i := uint64(1); i <= perProducer; i++ {
				q.Enqueue(c, uint64(p)<<32|i)
			}
		}(p)
	}
	lastSeen := make([]uint64, producers)
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	c := e.NewCtx()
	got := 0
	for got < producers*perProducer {
		v, ok := q.Dequeue(c)
		if !ok {
			select {
			case <-doneCh:
				if _, ok := q.Peek(c); !ok && got < producers*perProducer {
					// producers done and queue drained but count short
					t.Fatalf("lost elements: got %d", got)
				}
			default:
			}
			continue
		}
		p, i := v>>32, v&0xffffffff
		if i <= lastSeen[p] {
			t.Fatalf("producer %d: saw %d after %d (FIFO violated)", p, i, lastSeen[p])
		}
		lastSeen[p] = i
		got++
	}
}

func TestQuiescedCrashRecovery(t *testing.T) {
	for _, k := range engine.Kinds() {
		if !k.Durable() {
			continue
		}
		t.Run(k.String(), func(t *testing.T) {
			e := newEngine(k)
			c := e.NewCtx()
			q := queue.New(e, c)
			for v := uint64(1); v <= 200; v++ {
				q.Enqueue(c, v)
			}
			for v := uint64(1); v <= 50; v++ {
				q.Dequeue(c)
			}
			rng := rand.New(rand.NewSource(9))
			e.Crash(pmem.CrashRandom, rng)
			e.Recover(q.Tracer())
			c = e.NewCtx()
			q = queue.New(e, c) // re-attach
			for v := uint64(51); v <= 200; v++ {
				got, ok := q.Dequeue(c)
				if !ok || got != v {
					t.Fatalf("after recovery: Dequeue = (%d,%v), want (%d,true)", got, ok, v)
				}
			}
			if _, ok := q.Dequeue(c); ok {
				t.Fatal("queue should be empty after draining")
			}
			q.Enqueue(c, 999)
			if v, _ := q.Dequeue(c); v != 999 {
				t.Fatal("queue not operational after recovery")
			}
		})
	}
}

// TestCrashMidStream injects a power failure while a producer and consumer
// run; after recovery the remaining elements must be a contiguous
// ascending window (no loss, no duplication, no reordering).
func TestCrashMidStream(t *testing.T) {
	for round := 0; round < 10; round++ {
		e := newEngine(engine.MirrorDRAM)
		c := e.NewCtx()
		q := queue.New(e, c)
		rng := rand.New(rand.NewSource(int64(round)))

		var lastEnq, lastDeq uint64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			pc := e.NewCtx()
			for v := uint64(1); v <= 100000; v++ {
				q.Enqueue(pc, v)
				lastEnq = v
			}
		}()
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			cc := e.NewCtx()
			for {
				if v, ok := q.Dequeue(cc); ok {
					lastDeq = v
				}
			}
		}()
		time.Sleep(time.Duration(rng.Intn(2000)+100) * time.Microsecond)
		e.Freeze()
		wg.Wait()

		e.Crash(pmem.CrashRandom, rng)
		e.Recover(q.Tracer())
		c = e.NewCtx()
		q = queue.New(e, c)
		rest := q.Drain(c)
		// Remaining values must be strictly ascending by one.
		for i := 1; i < len(rest); i++ {
			if rest[i] != rest[i-1]+1 {
				t.Fatalf("round %d: gap in recovered queue: %d -> %d", round, rest[i-1], rest[i])
			}
		}
		if len(rest) > 0 {
			// The window must cover everything between the consumer's
			// last completed dequeue and the producer's last completed
			// enqueue (the in-flight ops at the edges may go either way).
			if rest[0] > lastDeq+2 {
				t.Fatalf("round %d: completed-but-lost elements before %d (lastDeq %d)",
					round, rest[0], lastDeq)
			}
			if lastEnq > 0 && rest[len(rest)-1] < lastEnq-1 {
				t.Fatalf("round %d: completed enqueue %d missing (tail of window %d)",
					round, lastEnq, rest[len(rest)-1])
			}
		}
	}
}

func BenchmarkQueueEnqueueDequeue(b *testing.B) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 22})
	c := e.NewCtx()
	q := queue.New(e, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(c, uint64(i))
		q.Dequeue(c)
	}
}
