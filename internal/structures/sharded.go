package structures

import "mirror/internal/engine"

// Sharded routes one logical set across the shards of an engine.Sharded:
// one complete sub-structure per shard, each living entirely on its
// shard's sub-engine, with keys partitioned by the engine's stable hash
// (pmem.ShardOf). Because a key's home shard is a pure function of the
// key, every operation on a key — including recovery tracing and fault
// injection — lands on the same sub-structure, and the composition is
// linearizable iff the sub-structures are: operations on different shards
// touch disjoint state, and operations on the same shard serialize
// through that shard's own lock-free protocol.
type Sharded struct {
	e    *engine.Sharded
	subs []Set
}

// NewSharded builds one sub-structure per shard. build constructs the
// structure for one shard from its sub-engine and a setup context on that
// shard; c is a router context from e.NewCtx() used only during setup.
func NewSharded(e *engine.Sharded, c *engine.Ctx, build func(sub engine.Engine, sc *engine.Ctx) Set) *Sharded {
	s := &Sharded{e: e, subs: make([]Set, e.Shards())}
	for i := range s.subs {
		s.subs[i] = build(e.Sub(i), c.Sub(i))
	}
	return s
}

// Sub returns shard i's sub-structure (tests and per-shard probes).
func (s *Sharded) Sub(i int) Set { return s.subs[i] }

// Insert implements Set, routed to the key's home shard.
func (s *Sharded) Insert(c *engine.Ctx, key, val uint64) bool {
	sh, sc := s.e.Route(c, key)
	return s.subs[sh].Insert(sc, key, val)
}

// Delete implements Set, routed to the key's home shard.
func (s *Sharded) Delete(c *engine.Ctx, key uint64) bool {
	sh, sc := s.e.Route(c, key)
	return s.subs[sh].Delete(sc, key)
}

// Contains implements Set, routed to the key's home shard.
func (s *Sharded) Contains(c *engine.Ctx, key uint64) bool {
	sh, sc := s.e.Route(c, key)
	return s.subs[sh].Contains(sc, key)
}

// Get implements Set, routed to the key's home shard.
func (s *Sharded) Get(c *engine.Ctx, key uint64) (uint64, bool) {
	sh, sc := s.e.Route(c, key)
	return s.subs[sh].Get(sc, key)
}

// Tracer panics: one sequential tracer cannot trace N disjoint shard
// structures. Recovery goes through ShardTracers + RecoverShards (or the
// Recover convenience below).
func (s *Sharded) Tracer() engine.Tracer {
	panic("structures: Tracer on a sharded set — use ShardTracers with engine.Sharded.RecoverShards")
}

// ShardTracers returns one tracer per shard, in shard order; trs[i] traces
// shard i's sub-structure on shard i's sub-engine.
func (s *Sharded) ShardTracers() []engine.Tracer {
	trs := make([]engine.Tracer, len(s.subs))
	for i, sub := range s.subs {
		trs[i] = sub.Tracer()
	}
	return trs
}

// Recover rebuilds every shard after a crash (shard-concurrent, with
// opts.Parallelism workers inside each shard's pipeline).
func (s *Sharded) Recover(opts engine.RecoverOptions) {
	s.e.RecoverShards(s.ShardTracers(), opts)
}

// Name implements Set: the sub-structures' name, so benchmark series keep
// their structure label across shard counts.
func (s *Sharded) Name() string { return s.subs[0].Name() }
