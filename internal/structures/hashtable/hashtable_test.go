package hashtable_test

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/settest"
)

func TestHashTableConformance(t *testing.T) {
	settest.Run(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return hashtable.New(e, c, 256)
		},
		Words: 1 << 21,
	})
}

func TestHashTableSingleBucket(t *testing.T) {
	// One bucket degenerates to a list; everything must still work.
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18})
	c := e.NewCtx()
	h := hashtable.New(e, c, 1)
	for k := uint64(1); k <= 100; k++ {
		if !h.Insert(c, k, k*3) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if h.Len(c) != 100 {
		t.Errorf("Len = %d, want 100", h.Len(c))
	}
	for k := uint64(1); k <= 100; k++ {
		if v, ok := h.Get(c, k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
}

func TestHashTableLargeBucketArray(t *testing.T) {
	// A bucket array larger than one allocator chunk exercises the
	// large-allocation path under the mirror layout (2 words per field).
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 22})
	c := e.NewCtx()
	h := hashtable.New(e, c, 1<<14)
	for k := uint64(1); k <= 3000; k++ {
		h.Insert(c, k, k)
	}
	if h.Len(c) != 3000 {
		t.Errorf("Len = %d, want 3000", h.Len(c))
	}
}

func TestHashTableBadBucketCount(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.OrigDRAM, Words: 1 << 16})
	c := e.NewCtx()
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two bucket count should panic")
		}
	}()
	hashtable.New(e, c, 3)
}

func TestHashTableShardedConformance(t *testing.T) {
	settest.RunSharded(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return hashtable.New(e, c, 256)
		},
		Words: 1 << 21,
	})
}
