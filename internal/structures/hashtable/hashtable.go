// Package hashtable implements the paper's lock-free hash table: a fixed
// array of buckets, each holding a Harris linked list (§6.1, "based on
// Harris et al.'s with a linked-list in every bucket").
//
// The bucket array is a single engine object whose fields are the bucket
// head references; the array reference and the bucket count live in the
// engine's persistent root object, so recovery can re-trace everything.
package hashtable

import (
	"math/bits"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/list"
)

// Default root fields used by the table (NewAt overrides).
const (
	rootArr     = 0
	rootBuckets = 1
)

// fibMul is the 64-bit Fibonacci hashing multiplier.
const fibMul = 11400714819323198485

// Table is a lock-free hash table with separate chaining.
type Table struct {
	e       engine.Engine
	arr     engine.Ref
	buckets int
	shift   uint
	rootF   int
}

// New creates a table with the given power-of-two bucket count, or adopts
// the existing table if the root already references one (recovery). The
// table uses root fields 0 and 1.
func New(e engine.Engine, c *engine.Ctx, buckets int) *Table {
	return NewAt(e, c, buckets, rootArr)
}

// NewAt is New with an explicit pair of root fields (rootField holds the
// bucket-array reference, rootField+1 the bucket count).
func NewAt(e engine.Engine, c *engine.Ctx, buckets int, rootField int) *Table {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("hashtable: bucket count must be a positive power of two")
	}
	t := &Table{e: e, rootF: rootField}
	e.OpBegin(c)
	defer e.OpEnd(c)
	if arr := e.Load(c, e.RootRef(), rootField); arr != 0 {
		t.arr = arr
		t.buckets = int(e.Load(c, e.RootRef(), rootField+1))
	} else {
		t.arr = e.Alloc(c, buckets)
		for i := 0; i < buckets; i++ {
			e.StoreInit(c, t.arr, i, 0)
			if i%1024 == 1023 {
				// Bound the pending flush set during large inits.
				e.Publish(c, t.arr)
			}
		}
		e.Publish(c, t.arr)
		e.Store(c, e.RootRef(), rootField+1, uint64(buckets))
		e.Store(c, e.RootRef(), rootField, t.arr)
		t.buckets = buckets
	}
	t.shift = uint(64 - bits.TrailingZeros(uint(t.buckets)))
	return t
}

// Name implements structures.Set.
func (t *Table) Name() string { return "hashtable" }

func (t *Table) bucket(key uint64) *list.List {
	idx := int((key * fibMul) >> t.shift)
	return list.NewAt(t.e, t.arr, idx)
}

// Insert implements structures.Set.
func (t *Table) Insert(c *engine.Ctx, key, val uint64) bool {
	return t.bucket(key).Insert(c, key, val)
}

// Delete implements structures.Set.
func (t *Table) Delete(c *engine.Ctx, key uint64) bool {
	return t.bucket(key).Delete(c, key)
}

// Contains implements structures.Set.
func (t *Table) Contains(c *engine.Ctx, key uint64) bool {
	return t.bucket(key).Contains(c, key)
}

// Get implements structures.Set.
func (t *Table) Get(c *engine.Ctx, key uint64) (uint64, bool) {
	return t.bucket(key).Get(c, key)
}

// Len counts unmarked nodes across all buckets (quiesced use only).
func (t *Table) Len(c *engine.Ctx) int {
	n := 0
	for i := 0; i < t.buckets; i++ {
		n += list.NewAt(t.e, t.arr, i).Len(c)
	}
	return n
}

// Tracer implements structures.Set: visit the bucket array, then every
// chain.
func (t *Table) Tracer() engine.Tracer {
	return TracerAt(t.e, t.rootF)
}

// TracerAt returns the table's recovery tracer without attaching to the
// (possibly not yet recovered) structure; it needs only the root slot.
func TracerAt(e engine.Engine, rootField int) engine.Tracer {
	return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
		arr := read(e.RootRef(), rootField)
		if arr == 0 {
			return
		}
		buckets := int(read(e.RootRef(), rootField+1))
		visit(arr, buckets)
		for i := 0; i < buckets; i++ {
			list.TraceFrom(arr, i, read, visit)
		}
	}
}

// ShardedTracer implements structures.ShardableSet.
func (t *Table) ShardedTracer() engine.ShardedTracer {
	return ShardedTracerAt(t.e, t.rootF)
}

// ShardedTracerAt partitions TracerAt by bucket range: shard s of n owns
// the contiguous bucket range [buckets*s/n, buckets*(s+1)/n) and traces
// those chains; shard 0 additionally visits the bucket array object. Every
// node hangs off exactly one bucket, so the shards' visit sets partition
// the sequential tracer's visit set.
func ShardedTracerAt(e engine.Engine, rootField int) engine.ShardedTracer {
	return func(shard, shards int) engine.Tracer {
		return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
			arr := read(e.RootRef(), rootField)
			if arr == 0 {
				return
			}
			buckets := int(read(e.RootRef(), rootField+1))
			if shard == 0 {
				visit(arr, buckets)
			}
			lo, hi := buckets*shard/shards, buckets*(shard+1)/shards
			for i := lo; i < hi; i++ {
				list.TraceFrom(arr, i, read, visit)
			}
		}
	}
}

var _ structures.Set = (*Table)(nil)
var _ structures.ShardableSet = (*Table)(nil)
