// Package bst implements the lock-free external binary search tree of
// Natarajan and Mittal [PPoPP 2014], the third structure evaluated in the
// paper (§6.1, "a lock-free BST by Aravind et al.").
//
// The tree is external: internal nodes only route, leaves carry keys and
// values. Deletion proceeds edge-wise: the edge to the doomed leaf is
// *flagged* (low bit 0), the edge to its sibling is *tagged* (low bit 1) to
// freeze it, and the sibling is then promoted over the parent with a single
// CAS at the ancestor. Both bits live in the child-reference words, which
// is possible because the allocator aligns objects to 32 bytes.
package bst

import (
	"mirror/internal/engine"
	"mirror/internal/structures"
)

// Node field indexes.
const (
	fKey   = 0
	fVal   = 1
	fLeft  = 2
	fRight = 3
	// NodeFields is the number of logical fields per node.
	NodeFields = 4
)

// Sentinel keys, all above the usable key range (paper's ∞₀ < ∞₁ < ∞₂).
const (
	inf0 = structures.KeyMax + 1
	inf1 = structures.KeyMax + 2
	inf2 = structures.KeyMax + 3
)

// Edge bits.
const (
	flagBit  = uint64(1)
	tagBit   = uint64(2)
	addrMask = ^uint64(3)
)

func addr(edge uint64) engine.Ref { return edge & addrMask }
func flagged(edge uint64) bool    { return edge&flagBit != 0 }
func tagged(edge uint64) bool     { return edge&tagBit != 0 }

// rootR is the default root field holding the R sentinel's reference.
const rootR = 2

// BST is the lock-free external binary search tree.
type BST struct {
	e     engine.Engine
	r     engine.Ref // sentinel R (key ∞₂)
	s     engine.Ref // sentinel S (key ∞₁), R's left child
	rootF int
}

// New creates the tree (or adopts an existing one after recovery). The
// tree stores its R sentinel in root field 2, so it can share the root
// object with a list in field 0.
func New(e engine.Engine, c *engine.Ctx) *BST {
	return NewAt(e, c, rootR)
}

// NewAt is New with an explicit root field.
func NewAt(e engine.Engine, c *engine.Ctx, rootField int) *BST {
	b := &BST{e: e, rootF: rootField}
	e.OpBegin(c)
	defer e.OpEnd(c)
	if r := e.Load(c, e.RootRef(), rootField); r != 0 {
		b.r = r
		b.s = addr(e.Load(c, r, fLeft))
		b.repairExcisions(c)
		b.repairDeleteFlags(c)
		return b
	}
	newLeaf := func(key uint64) engine.Ref {
		n := e.Alloc(c, NodeFields)
		e.StoreInit(c, n, fKey, key)
		e.StoreInit(c, n, fVal, 0)
		e.StoreInit(c, n, fLeft, 0)
		e.StoreInit(c, n, fRight, 0)
		return n
	}
	l0, l1, l2 := newLeaf(inf0), newLeaf(inf1), newLeaf(inf2)
	b.s = e.Alloc(c, NodeFields)
	e.StoreInit(c, b.s, fKey, inf1)
	e.StoreInit(c, b.s, fVal, 0)
	e.StoreInit(c, b.s, fLeft, l0)
	e.StoreInit(c, b.s, fRight, l1)
	b.r = e.Alloc(c, NodeFields)
	e.StoreInit(c, b.r, fKey, inf2)
	e.StoreInit(c, b.r, fVal, 0)
	e.StoreInit(c, b.r, fLeft, b.s)
	e.StoreInit(c, b.r, fRight, l2)
	e.Publish(c, b.r)
	e.Store(c, e.RootRef(), rootField, b.r)
	return b
}

// Name implements structures.Set.
func (b *BST) Name() string { return "bst" }

// repairExcisions completes every pending deletion on a recovered image.
// A delete linearizes at the fully persisted flag CAS, but the promotion
// that physically excises the doomed leaf persists lazily (relaxed), so a
// crash can surface a flagged edge whose excision was lost — and a key
// re-inserted after the (volatile) excision would then sit behind the
// still-linked doomed leaf, unreachable by seek. Completing each flagged
// edge's excision at attach time — exactly what a helper would have done,
// with fully persisted CASes since this is recovery — restores the
// invariant that flagged parents are transient. Runs to fixpoint because a
// promoted sibling edge keeps its own flag; idempotent and crash-safe
// (a crash mid-repair leaves fewer flagged edges for the next repair).
func (b *BST) repairExcisions(c *engine.Ctx) {
	e := b.e
	for {
		excised := false
		// walk visits internal node n, reached from gp via gpField, and
		// excises the first flagged parent it finds (then restarts, since
		// the excision changes the tree above the walk frontier).
		var walk func(gp engine.Ref, gpField int, n engine.Ref)
		walk = func(gp engine.Ref, gpField int, n engine.Ref) {
			if excised || n == 0 {
				return
			}
			le := e.TraversalLoad(c, n, fLeft)
			re := e.TraversalLoad(c, n, fRight)
			if addr(le) == 0 && addr(re) == 0 {
				return // leaf
			}
			for _, side := range [2]struct {
				edge uint64
				cf   int
			}{{le, fLeft}, {re, fRight}} {
				if flagged(side.edge) {
					sib := re
					if side.cf == fRight {
						sib = le
					}
					gpEdge := e.TraversalLoad(c, gp, gpField)
					if e.CAS(c, gp, gpField, gpEdge, sib&^tagBit) {
						e.Retire(c, n, NodeFields)
						if d := addr(side.edge); d != 0 {
							e.Retire(c, d, NodeFields)
						}
					}
					excised = true
					return
				}
			}
			walk(n, fLeft, addr(le))
			if !excised {
				walk(n, fRight, addr(re))
			}
		}
		walk(b.r, fLeft, b.s)
		if !excised {
			return
		}
	}
}

// repairDeleteFlags scrubs stray deletion bookkeeping bits from a
// recovered image; it runs after repairExcisions' fixpoint, so every
// reachable flagged edge has already been excised and every surviving tag
// is by definition orphaned. An orphaned tag is not benign: a tagged edge
// with an un-flagged sibling permanently freezes that edge (inserts and
// deletes spin in cleanup looking for a flag that does not exist), and a
// cleanup that guesses wrong would promote over a live leaf — data loss.
//
// Under the simulator's line-snapshot fault model this state is actually
// unreachable — the flag is written before the tag on the same node's
// cache line, and a line's crash fate is always some point-in-time
// snapshot, so any surviving tag implies its justifying flag (see
// DESIGN.md, "Relaxed BST delete flags"). The pass exists because the
// combining mode's correctness argument should not lean on line-snapshot
// atomicity: on word-granular hardware the relaxed tag CAS can reach
// media while the buffered flag CAS vanishes, and this scrub is what
// keeps the relaxation sound there. Defensively it also re-runs the
// excision fixpoint if a flagged edge does survive alongside a tag.
// Recovery is single-threaded, so plain full CASes suffice; idempotent
// and crash-safe (a crash mid-scrub leaves fewer tags for the next one).
func (b *BST) repairDeleteFlags(c *engine.Ctx) {
	e := b.e
	var cleared bool
	var walk func(n engine.Ref)
	walk = func(n engine.Ref) {
		if n == 0 {
			return
		}
		le := e.TraversalLoad(c, n, fLeft)
		re := e.TraversalLoad(c, n, fRight)
		if addr(le) == 0 && addr(re) == 0 {
			return // leaf
		}
		if flagged(le) || flagged(re) {
			// A flagged edge survived repairExcisions — only possible if
			// the scrub itself re-exposed one; finish its excision first.
			b.repairExcisions(c)
			cleared = true
			return
		}
		if tagged(le) {
			e.CAS(c, n, fLeft, le, le&^tagBit)
			cleared = true
		}
		if tagged(re) {
			e.CAS(c, n, fRight, re, re&^tagBit)
			cleared = true
		}
		walk(addr(le))
		walk(addr(re))
	}
	for {
		cleared = false
		walk(b.r)
		if !cleared {
			return
		}
	}
}

// seekRecord is the result of a traversal (the paper's seek record):
// ancestor —(untagged edge)→ successor —...—→ parent —→ leaf.
type seekRecord struct {
	ancestor, successor, parent, leaf engine.Ref
}

// seek descends to the leaf responsible for key, tracking the deepest
// node whose incoming edge is untagged (the successor) and its parent
// (the ancestor).
func (b *BST) seek(c *engine.Ctx, key uint64) seekRecord {
	e := b.e
	rec := seekRecord{ancestor: b.r, successor: b.s, parent: b.s}
	parentEdge := e.TraversalLoad(c, b.s, fLeft)
	rec.leaf = addr(parentEdge)
	for {
		var edge uint64
		if key < e.TraversalLoad(c, rec.leaf, fKey) {
			edge = e.TraversalLoad(c, rec.leaf, fLeft)
		} else {
			edge = e.TraversalLoad(c, rec.leaf, fRight)
		}
		next := addr(edge)
		if next == 0 {
			return rec // rec.leaf is a leaf
		}
		if !tagged(parentEdge) {
			rec.ancestor = rec.parent
			rec.successor = rec.leaf
		}
		rec.parent = rec.leaf
		rec.leaf = next
		parentEdge = edge
	}
}

// childField returns the field of parent on the side of key.
func (b *BST) childField(c *engine.Ctx, parent engine.Ref, key uint64) int {
	if key < b.e.TraversalLoad(c, parent, fKey) {
		return fLeft
	}
	return fRight
}

// Insert implements structures.Set.
func (b *BST) Insert(c *engine.Ctx, key, val uint64) bool {
	if key == 0 || key > structures.KeyMax {
		panic("bst: key outside usable range")
	}
	e := b.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	var newLeaf, newInternal engine.Ref
	freeNew := func() {
		if newLeaf != 0 {
			e.FreeUnpublished(c, newLeaf, NodeFields)
			e.FreeUnpublished(c, newInternal, NodeFields)
		}
	}
	for {
		rec := b.seek(c, key)
		leafKey := e.TraversalLoad(c, rec.leaf, fKey)
		cf := b.childField(c, rec.parent, key)
		if leafKey == key {
			edge := e.TraversalLoad(c, rec.parent, cf)
			if addr(edge) == rec.leaf && flagged(edge) {
				// A linearized delete is still being cleaned up:
				// help it, then retry so this insert succeeds.
				b.cleanup(c, key, rec)
				continue
			}
			freeNew()
			e.MakePersistent(c, rec.parent, NodeFields)
			e.MakePersistent(c, rec.leaf, NodeFields)
			return false
		}
		// Batch both nodes' initialization under one trailing fence: the
		// leaf and its internal parent become durable together at Commit.
		ba := engine.Batch(e, c)
		if newLeaf == 0 {
			newLeaf = e.Alloc(c, NodeFields)
			ba.StoreInit(newLeaf, fKey, key)
			ba.StoreInit(newLeaf, fVal, val)
			ba.StoreInit(newLeaf, fLeft, 0)
			ba.StoreInit(newLeaf, fRight, 0)
			newInternal = e.Alloc(c, NodeFields)
			ba.StoreInit(newInternal, fVal, 0)
		}
		if key < leafKey {
			ba.StoreInit(newInternal, fKey, leafKey)
			ba.StoreInit(newInternal, fLeft, newLeaf)
			ba.StoreInit(newInternal, fRight, rec.leaf)
		} else {
			ba.StoreInit(newInternal, fKey, key)
			ba.StoreInit(newInternal, fLeft, rec.leaf)
			ba.StoreInit(newInternal, fRight, newLeaf)
		}
		ba.Commit()
		e.MakePersistent(c, rec.parent, NodeFields)
		if e.CAS(c, rec.parent, cf, rec.leaf, newInternal) {
			// The linearizing edge swap is durable: publish the detectable
			// verdict (no-op without an armed descriptor).
			e.Linearized(c, true)
			return true
		}
		// Help an in-progress delete blocking this edge, then retry.
		edge := e.TraversalLoad(c, rec.parent, cf)
		if addr(edge) == rec.leaf && (flagged(edge) || tagged(edge)) {
			b.cleanup(c, key, rec)
		}
	}
}

// Delete implements structures.Set. Deletion linearizes at the successful
// flagging (injection) CAS; cleanup physically excises the leaf and its
// parent, possibly completed by helpers.
func (b *BST) Delete(c *engine.Ctx, key uint64) bool {
	e := b.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	injecting := true
	var doomed engine.Ref
	for {
		rec := b.seek(c, key)
		if injecting {
			if e.TraversalLoad(c, rec.leaf, fKey) != key {
				return false
			}
			cf := b.childField(c, rec.parent, key)
			edge := e.TraversalLoad(c, rec.parent, cf)
			if addr(edge) != rec.leaf {
				continue // tree moved under us; retry
			}
			if flagged(edge) {
				// A concurrent delete linearized first; help it and
				// report the key absent.
				b.cleanup(c, key, rec)
				return false
			}
			if tagged(edge) {
				// The edge is frozen by a neighbor's cleanup; help,
				// then retry.
				b.cleanup(c, key, rec)
				continue
			}
			e.MakePersistent(c, rec.parent, NodeFields)
			e.MakePersistent(c, rec.leaf, NodeFields)
			// The injection flag is the linearization point. Under a
			// combining engine this CAS is the relaxed delete-flag path:
			// its fence is deferred into the thread's combine buffer, so
			// the completed delete may vanish wholesale at a crash until
			// the buffer drains; repairDeleteFlags scrubs any deletion
			// bookkeeping a crash strands without its flag.
			if e.CAS(c, rec.parent, cf, rec.leaf, rec.leaf|flagBit) {
				// Cleanup below is physical excision only.
				e.Linearized(c, true)
				doomed = rec.leaf
				injecting = false
				if b.cleanup(c, key, rec) {
					return true
				}
			} else {
				edge = e.TraversalLoad(c, rec.parent, cf)
				if addr(edge) == rec.leaf && (flagged(edge) || tagged(edge)) {
					b.cleanup(c, key, rec)
				}
			}
		} else {
			if rec.leaf != doomed {
				return true // a helper finished the excision
			}
			if b.cleanup(c, key, rec) {
				return true
			}
		}
	}
}

// cleanup excises the flagged leaf under rec.parent by promoting its
// sibling subtree to rec.ancestor's child. Returns whether this call
// performed the promotion.
func (b *BST) cleanup(c *engine.Ctx, key uint64, rec seekRecord) bool {
	e := b.e
	succField := b.childField(c, rec.ancestor, key)
	cf := b.childField(c, rec.parent, key)
	sf := fLeft + fRight - cf

	// Locate the flagged edge; normally it is the child edge toward key,
	// but when helping a neighbor's delete it is the other one, and the
	// edge toward key is the one being promoted.
	promoted := sf
	flaggedEdge := e.TraversalLoad(c, rec.parent, cf)
	if !flagged(flaggedEdge) {
		flaggedEdge = e.TraversalLoad(c, rec.parent, sf)
		promoted = cf
	}
	doomedLeaf := addr(flaggedEdge)

	// Freeze the promoted edge with the tag bit (fetch-and-or by CAS).
	// The tag is cleanup bookkeeping, not a linearization point — losing
	// it in a crash merely re-exposes the flagged-but-unpromoted state a
	// crash before cleanup leaves anyway — so it may persist lazily.
	for {
		v := e.TraversalLoad(c, rec.parent, promoted)
		if tagged(v) {
			break
		}
		if e.CASRelaxed(c, rec.parent, promoted, v, v|tagBit) {
			break
		}
	}
	sibling := e.TraversalLoad(c, rec.parent, promoted)

	e.MakePersistent(c, rec.ancestor, NodeFields)
	e.MakePersistent(c, rec.parent, NodeFields)
	// Promote: keep the sibling's flag (its own delete may be in flight),
	// drop the tag. The delete linearized at the (fully persisted) flag
	// CAS, and a crash that loses the promotion re-exposes the flagged
	// edge — readers already treat that as absent — so the excision may
	// persist lazily; the registry commits it before parent/leaf are
	// freed, keeping the media free of dangling references.
	if e.CASRelaxed(c, rec.ancestor, succField, rec.successor, sibling&^tagBit) {
		e.Retire(c, rec.parent, NodeFields)
		if doomedLeaf != 0 {
			e.Retire(c, doomedLeaf, NodeFields)
		}
		return true
	}
	return false
}

// Contains implements structures.Set.
func (b *BST) Contains(c *engine.Ctx, key uint64) bool {
	_, ok := b.Get(c, key)
	return ok
}

// Get implements structures.Set.
func (b *BST) Get(c *engine.Ctx, key uint64) (uint64, bool) {
	e := b.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	for {
		rec := b.seek(c, key)
		if e.TraversalLoad(c, rec.leaf, fKey) != key {
			return 0, false
		}
		cf := b.childField(c, rec.parent, key)
		edge := e.TraversalLoad(c, rec.parent, cf)
		if addr(edge) != rec.leaf {
			continue // edge moved; retry to get a consistent witness
		}
		if flagged(edge) {
			return 0, false // linearized delete in progress
		}
		v := e.TraversalLoad(c, rec.leaf, fVal)
		e.MakePersistent(c, rec.leaf, NodeFields)
		return v, true
	}
}

// Len counts present keys (quiesced use only).
func (b *BST) Len(c *engine.Ctx) int {
	return len(b.Keys(c))
}

// Keys returns the present user keys in sorted order (quiesced use only).
func (b *BST) Keys(c *engine.Ctx) []uint64 {
	e := b.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	var keys []uint64
	var walk func(ref engine.Ref)
	walk = func(ref engine.Ref) {
		if ref == 0 {
			return
		}
		l := addr(e.TraversalLoad(c, ref, fLeft))
		r := addr(e.TraversalLoad(c, ref, fRight))
		if l == 0 && r == 0 {
			if k := e.TraversalLoad(c, ref, fKey); k <= structures.KeyMax {
				keys = append(keys, k)
			}
			return
		}
		walk(l)
		walk(r)
	}
	walk(b.r)
	return keys
}

// Tracer implements structures.Set: iterative DFS over every node
// reachable from the R sentinel, flags and tags stripped.
func (b *BST) Tracer() engine.Tracer {
	return TracerAt(b.e, b.rootF)
}

// TracerAt returns the tree's recovery tracer without attaching to the
// (possibly not yet recovered) structure.
func TracerAt(e engine.Engine, rootField int) engine.Tracer {
	return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
		r := read(e.RootRef(), rootField)
		if r == 0 {
			return
		}
		stack := []engine.Ref{r}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit(n, NodeFields)
			if l := addr(read(n, fLeft)); l != 0 {
				stack = append(stack, l)
			}
			if rr := addr(read(n, fRight)); rr != 0 {
				stack = append(stack, rr)
			}
		}
	}
}

var _ structures.Set = (*BST)(nil)

// Range calls fn for each present key in [from, to] in ascending order,
// stopping early if fn returns false. Weakly consistent (not a snapshot).
func (b *BST) Range(c *engine.Ctx, from, to uint64, fn func(key, val uint64) bool) {
	e := b.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	// Iterative in-order traversal, pruning subtrees outside [from, to]
	// using the external tree's routing keys (left < key <= right).
	stack := []engine.Ref{b.r}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l := addr(e.TraversalLoad(c, n, fLeft))
		r := addr(e.TraversalLoad(c, n, fRight))
		k := e.TraversalLoad(c, n, fKey)
		if l == 0 && r == 0 {
			if k >= from && k <= to && k <= structures.KeyMax {
				if !fn(k, e.TraversalLoad(c, n, fVal)) {
					return
				}
			}
			continue
		}
		// Right pushed first so the left subtree is visited first.
		if r != 0 && k <= to {
			stack = append(stack, r)
		}
		if l != 0 && k > from {
			stack = append(stack, l)
		}
	}
}
