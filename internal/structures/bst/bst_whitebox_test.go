package bst

import (
	"testing"

	"mirror/internal/engine"
)

// These white-box tests stage the tricky intermediate states of the
// Natarajan–Mittal protocol by planting flag/tag bits directly, then
// verify that the public operations help as the algorithm requires.

func newWB(t *testing.T) (engine.Engine, *engine.Ctx, *BST) {
	t.Helper()
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18, Track: true})
	c := e.NewCtx()
	return e, c, New(e, c)
}

// plantFlag flags the edge from key's parent to its leaf, simulating a
// delete that performed its injection CAS and stalled before cleanup.
func plantFlag(e engine.Engine, c *engine.Ctx, b *BST, key uint64) {
	rec := b.seek(c, key)
	cf := b.childField(c, rec.parent, key)
	edge := e.Load(c, rec.parent, cf)
	if addr(edge) != rec.leaf || flagged(edge) {
		panic("plantFlag: unexpected edge state")
	}
	if !e.CAS(c, rec.parent, cf, edge, edge|flagBit) {
		panic("plantFlag: CAS failed")
	}
}

func TestInsertHelpsStalledDelete(t *testing.T) {
	e, c, b := newWB(t)
	for _, k := range []uint64{50, 30, 70} {
		b.Insert(c, k, k)
	}
	plantFlag(e, c, b, 30)
	// The injection CAS linearized the delete: 30 is logically gone.
	if b.Contains(c, 30) {
		t.Fatal("flagged key still reported present")
	}
	// A re-insert must help excise the stalled delete and then succeed.
	if !b.Insert(c, 30, 99) {
		t.Fatal("insert did not help the stalled delete")
	}
	if v, ok := b.Get(c, 30); !ok || v != 99 {
		t.Fatalf("Get(30) = (%d,%v), want (99,true)", v, ok)
	}
	if !b.Contains(c, 50) || !b.Contains(c, 70) {
		t.Error("helping disturbed unrelated keys")
	}
}

func TestDeleteOfSiblingHelpsStalledDelete(t *testing.T) {
	e, c, b := newWB(t)
	for _, k := range []uint64{50, 30, 70} {
		b.Insert(c, k, k)
	}
	plantFlag(e, c, b, 30)
	// Deleting the logically-deleted key reports absent (the other
	// delete linearized first) and helps clean up.
	if b.Delete(c, 30) {
		t.Fatal("delete of flagged key should report absent")
	}
	// The tree must be fully functional afterwards.
	if !b.Delete(c, 70) || !b.Delete(c, 50) {
		t.Fatal("subsequent deletes failed")
	}
	if b.Len(c) != 0 {
		t.Fatalf("Len = %d, want 0", b.Len(c))
	}
}

func TestGetTreatsFlaggedAsAbsent(t *testing.T) {
	e, c, b := newWB(t)
	b.Insert(c, 10, 1)
	b.Insert(c, 20, 2)
	plantFlag(e, c, b, 20)
	if _, ok := b.Get(c, 20); ok {
		t.Error("Get returned a logically deleted key")
	}
	if _, ok := b.Get(c, 10); !ok {
		t.Error("Get lost an unrelated key")
	}
}

func TestCleanupPreservesFlaggedSibling(t *testing.T) {
	// Two deletes under one parent: excising one must re-parent the
	// other's flagged edge with the flag preserved.
	e, c, b := newWB(t)
	for _, k := range []uint64{50, 30, 70} {
		b.Insert(c, k, k)
	}
	plantFlag(e, c, b, 30)
	plantFlag(e, c, b, 70)
	// Complete 30's deletion via helping; 70 stays logically deleted.
	rec := b.seek(c, 30)
	b.cleanup(c, 30, rec)
	if b.Contains(c, 30) {
		t.Error("excised key still present")
	}
	if b.Contains(c, 70) {
		t.Error("sibling's flag lost during promotion: 70 resurrected")
	}
	if !b.Contains(c, 50) {
		t.Error("unrelated key lost")
	}
	// Both keys re-insertable after their cleanups.
	if !b.Insert(c, 30, 1) {
		t.Error("30 not re-insertable")
	}
	if !b.Insert(c, 70, 1) {
		t.Error("70 not re-insertable")
	}
}
