package bst_test

import (
	"sort"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/settest"
)

func TestBSTConformance(t *testing.T) {
	settest.Run(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return bst.New(e, c)
		},
		Words: 1 << 21,
	})
}

func TestBSTKeysSorted(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 19})
	c := e.NewCtx()
	b := bst.New(e, c)
	ins := []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35}
	for _, k := range ins {
		if !b.Insert(c, k, k*2) {
			t.Fatalf("insert %d failed", k)
		}
	}
	keys := b.Keys(c)
	want := append([]uint64(nil), ins...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	// Delete interior keys and re-verify.
	for _, k := range []uint64{50, 10, 90} {
		if !b.Delete(c, k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if b.Len(c) != len(ins)-3 {
		t.Errorf("Len = %d, want %d", b.Len(c), len(ins)-3)
	}
}

func TestBSTDeleteToEmptyAndReuse(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.NVTraverse, Words: 1 << 19, Track: true})
	c := e.NewCtx()
	b := bst.New(e, c)
	for round := 0; round < 5; round++ {
		for k := uint64(1); k <= 50; k++ {
			if !b.Insert(c, k, k) {
				t.Fatalf("round %d: insert %d failed", round, k)
			}
		}
		for k := uint64(1); k <= 50; k++ {
			if !b.Delete(c, k) {
				t.Fatalf("round %d: delete %d failed", round, k)
			}
		}
		if got := b.Len(c); got != 0 {
			t.Fatalf("round %d: Len = %d after emptying", round, got)
		}
	}
}

func TestBSTShardedConformance(t *testing.T) {
	settest.RunSharded(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return bst.New(e, c)
		},
		Words: 1 << 21,
	})
}

func TestBSTRingDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep")
	}
	settest.RunRingDetect(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return bst.New(e, c)
		},
	})
}
