package structures_test

import (
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
)

const combineEquivKeys = 48

func driveOps(set structures.Set, c *engine.Ctx, seed int64, ops, keys int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		key := uint64(1 + rng.Intn(keys))
		switch rng.Intn(4) {
		case 0, 1:
			set.Insert(c, key, key)
		case 2:
			set.Delete(c, key)
		default:
			set.Contains(c, key)
		}
	}
}

// TestCombineMediaEquivalence pins that fence combining changes *when*
// installs become durable, never *what* the recovered structure holds.
//
// For the skiplist and bst the pin is exact: every combining deferral
// there is a drain inserted *before* an unchanged write sequence (the
// CASRelaxed exposure drain adds fences, not writes), so a quiesced
// combining run leaves a bit-identical persistent image to the eager run.
//
// The list (and the hashtable built from it) is looser by design: its
// exposure rule defers physical snips and unlinks to quiet moments and
// folds marked-run excision into later inserts, so the combining image
// legitimately carries marked-but-still-linked nodes the eager image has
// already unlinked. There the pinned property is logical: after a full
// drain, crash, and recovery, both images rebuild the exact same key and
// value set. A divergence would mean a buffered install was lost or
// reordered into a different committed value — the class of bug the
// combining layer must not introduce.
func TestCombineMediaEquivalence(t *testing.T) {
	bitIdentical := map[string]bool{"skiplist": true, "bst": true}
	for name, build := range builders() {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			type image struct {
				hash  uint64
				state map[uint64]uint64
			}
			run := func(combine bool) image {
				e := engine.New(engine.Config{
					Kind: engine.MirrorDRAM, Words: 1 << 18, Track: true, Combine: combine,
				})
				c := e.NewCtx()
				set := build(e, c)
				driveOps(set, c, 42, 300, combineEquivKeys)
				e.Drain(c)
				hash := e.PersistentDevices()[0].MediaHash()
				e.Freeze()
				e.Crash(pmem.CrashDropAll, nil)
				e.Recover(set.Tracer())
				c2 := e.NewCtx()
				set = build(e, c2)
				state := make(map[uint64]uint64)
				for k := uint64(1); k <= combineEquivKeys; k++ {
					if v, ok := set.Get(c2, k); ok {
						state[k] = v
					}
				}
				return image{hash, state}
			}
			with, without := run(true), run(false)
			if bitIdentical[name] && with.hash != without.hash {
				t.Fatalf("media images diverge: combine=%#x nocombine=%#x", with.hash, without.hash)
			}
			if len(with.state) != len(without.state) {
				t.Fatalf("recovered sizes diverge: combine=%d nocombine=%d",
					len(with.state), len(without.state))
			}
			for k, v := range without.state {
				if got, ok := with.state[k]; !ok || got != v {
					t.Fatalf("recovered state diverges at key %d: combine=(%d,%v) nocombine=%d",
						k, got, ok, v)
				}
			}
		})
	}
}

// TestCombineMediaEquivalenceNVMM repeats the recovered-state equivalence
// on the NVMM-backed Mirror engine for the list, covering the second
// persistent device configuration.
func TestCombineMediaEquivalenceNVMM(t *testing.T) {
	build := builders()["list"]
	run := func(combine bool) map[uint64]uint64 {
		e := engine.New(engine.Config{
			Kind: engine.MirrorNVMM, Words: 1 << 18, Track: true, Combine: combine,
		})
		c := e.NewCtx()
		set := build(e, c)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			key := uint64(1 + rng.Intn(24))
			if rng.Intn(3) == 0 {
				set.Delete(c, key)
			} else {
				set.Insert(c, key, key)
			}
		}
		e.Drain(c)
		e.Freeze()
		e.Crash(pmem.CrashDropAll, nil)
		e.Recover(set.Tracer())
		c2 := e.NewCtx()
		set = build(e, c2)
		state := make(map[uint64]uint64)
		for k := uint64(1); k <= 24; k++ {
			if v, ok := set.Get(c2, k); ok {
				state[k] = v
			}
		}
		return state
	}
	with, without := run(true), run(false)
	if len(with) != len(without) {
		t.Fatalf("recovered sizes diverge: combine=%d nocombine=%d", len(with), len(without))
	}
	for k, v := range without {
		if got, ok := with[k]; !ok || got != v {
			t.Fatalf("recovered state diverges at key %d: combine=(%d,%v) nocombine=%d", k, got, ok, v)
		}
	}
}
