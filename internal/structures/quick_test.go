package structures_test

import (
	"testing"
	"testing/quick"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

// opScript is a quick-generated operation sequence: each element encodes
// (kind, key) in one value.
type opScript []uint16

func builders() map[string]func(e engine.Engine, c *engine.Ctx) structures.Set {
	return map[string]func(e engine.Engine, c *engine.Ctx) structures.Set{
		"list":      func(e engine.Engine, c *engine.Ctx) structures.Set { return list.New(e, 0) },
		"hashtable": func(e engine.Engine, c *engine.Ctx) structures.Set { return hashtable.New(e, c, 32) },
		"bst":       func(e engine.Engine, c *engine.Ctx) structures.Set { return bst.New(e, c) },
		"skiplist":  func(e engine.Engine, c *engine.Ctx) structures.Set { return skiplist.New(e, c) },
	}
}

// TestQuickSequencesMatchModel drives quick-generated operation sequences
// through every structure under the Mirror engine and checks each return
// value against a map model — a property test of sequential set semantics.
func TestQuickSequencesMatchModel(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			f := func(script opScript) bool {
				e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18})
				c := e.NewCtx()
				set := build(e, c)
				model := make(map[uint64]uint64)
				for _, enc := range script {
					key := uint64(enc&0x3F) + 1 // 64-key space: collisions likely
					val := uint64(enc) + 1
					switch (enc >> 6) % 3 {
					case 0:
						_, present := model[key]
						if set.Insert(c, key, val) == present {
							return false
						}
						if !present {
							model[key] = val
						}
					case 1:
						_, present := model[key]
						if set.Delete(c, key) != present {
							return false
						}
						delete(model, key)
					default:
						want, present := model[key]
						got, ok := set.Get(c, key)
						if ok != present || (ok && got != want) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestQuickCrashRecoveryPreservesModel extends the property across a
// crash: after any quick-generated quiesced op sequence, crash + recovery
// must reproduce the model state exactly.
func TestQuickCrashRecoveryPreservesModel(t *testing.T) {
	tracers := map[string]func(e engine.Engine) engine.Tracer{
		"list":      func(e engine.Engine) engine.Tracer { return list.TracerAt(e, 0) },
		"hashtable": func(e engine.Engine) engine.Tracer { return hashtable.TracerAt(e, 0) },
		"bst":       func(e engine.Engine) engine.Tracer { return bst.TracerAt(e, 2) },
		"skiplist":  func(e engine.Engine) engine.Tracer { return skiplist.TracerAt(e, 3) },
	}
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			seed := int64(0)
			f := func(script opScript) bool {
				seed++
				e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18, Track: true})
				c := e.NewCtx()
				set := build(e, c)
				model := make(map[uint64]uint64)
				for _, enc := range script {
					key := uint64(enc&0x3F) + 1
					val := uint64(enc) + 1
					if (enc>>6)%2 == 0 {
						if set.Insert(c, key, val) {
							model[key] = val
						}
					} else {
						set.Delete(c, key)
						delete(model, key)
					}
				}
				e.Crash(pmemPolicy(seed), nil)
				e.Recover(tracers[name](e))
				c = e.NewCtx()
				set = build(e, c)
				for key := uint64(1); key <= 64; key++ {
					want, present := model[key]
					got, ok := set.Get(c, key)
					if ok != present || (ok && got != want) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// pmemPolicy alternates the deterministic adversaries (the random policy
// needs an rng; quiesced crashes make DropAll/KeepAll the extremes).
func pmemPolicy(seed int64) pmem.CrashPolicy {
	if seed%2 == 0 {
		return pmem.CrashDropAll
	}
	return pmem.CrashKeepAll
}
