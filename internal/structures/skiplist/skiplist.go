// Package skiplist implements a Fraser-style lock-free skip list [Fraser
// 2003], the fourth structure evaluated in the paper (§6.1).
//
// Presence of a key is decided solely at level 0; the higher levels are
// search accelerators. Deletion marks a node's next pointers from the top
// level down — the level-0 mark is the linearization point — after which
// searches compact marked runs out of each level with a single CAS.
//
// Reclamation note: as in the reference implementations (Fraser's and
// ASCYLIB's, which the paper's artifact builds on), an insert that stalls
// between validating and linking an upper level while the node is
// concurrently deleted can momentarily relink a retired node; the insert
// unlinks it again before returning. The inherited theoretical window is
// documented in DESIGN.md.
package skiplist

import (
	"sync/atomic"

	"mirror/internal/engine"
	"mirror/internal/structures"
)

// MaxLevel is the tower height cap; 2^16 expected elements per level-1
// node keeps this ample for the simulated sizes.
const MaxLevel = 16

// Node field indexes. A node of height h has 3+h fields.
const (
	fKey  = 0
	fVal  = 1
	fTop  = 2
	fNext = 3 // fNext+i is the level-i next reference
)

// rootHead is the default root field holding the head sentinel's reference.
const rootHead = 3

// SkipList is the lock-free skip list.
type SkipList struct {
	e     engine.Engine
	head  engine.Ref
	seed  atomic.Uint64
	rootF int
}

// New creates the skip list (or adopts an existing one after recovery).
// Its head reference lives in root field 3.
func New(e engine.Engine, c *engine.Ctx) *SkipList {
	return NewAt(e, c, rootHead)
}

// NewAt is New with an explicit root field.
func NewAt(e engine.Engine, c *engine.Ctx, rootField int) *SkipList {
	s := &SkipList{e: e, rootF: rootField}
	s.seed.Store(0x9e3779b97f4a7c15)
	e.OpBegin(c)
	defer e.OpEnd(c)
	if h := e.Load(c, e.RootRef(), rootField); h != 0 {
		s.head = h
		s.repairLevels(c)
		return s
	}
	s.head = e.Alloc(c, fNext+MaxLevel)
	e.StoreInit(c, s.head, fKey, 0)
	e.StoreInit(c, s.head, fVal, 0)
	e.StoreInit(c, s.head, fTop, MaxLevel)
	for i := 0; i < MaxLevel; i++ {
		e.StoreInit(c, s.head, fNext+i, 0)
	}
	e.Publish(c, s.head)
	e.Store(c, e.RootRef(), rootField, s.head)
	return s
}

// Name implements structures.Set.
func (s *SkipList) Name() string { return "skiplist" }

// repairLevels restores the accelerator-level invariants on a recovered
// image. Two relaxations admit post-crash states crash-free execution
// never produces:
//
//   - Delete marks the accelerator levels with relaxed persistence (only
//     the level-0 mark — the linearization point — is fenced), so a crash
//     can surface a node durably marked at level 0 but unmarked above; a
//     searcher descending through it would retry forever waiting for a
//     dead deleter to finish.
//   - Under fence combining the level-0 *link* of an insert is buffered
//     too, while the accelerator links persist lazily through the
//     relaxed-line registry: a crash can persist an upper-level link to a
//     node whose linearizing level-0 install vanished. The orphan is
//     absent from level 0 (the insert legally vanished) yet reachable
//     above it, and its own next pointers may reference memory the
//     recovery allocator already reclaimed — a search descending through
//     it walks into space a later Alloc can hand back, after which links
//     can turn self-referential and the marked-run snip loop never exits.
//
// Presence is decided solely at level 0, so the pass rebuilds every
// accelerator level from the level-0 chain: level i links exactly the
// unmarked level-0 nodes of height > i, in level-0 order, and nothing
// else. Orphans and level-0-marked zombies drop out of the accelerator
// levels entirely (searches snip zombies out of level 0 as usual), and a
// stray upper-level mark on a present node — the footprint of a delete
// whose linearization vanished — is overwritten with the rebuilt link.
// Idempotent and crash-safe: level 0 is never written, so a crash
// mid-repair leaves an image the next repair rebuilds from the same
// truth. Full CASes — this is recovery, not the hot path.
func (s *SkipList) repairLevels(c *engine.Ctx) {
	e := s.e
	type entry struct {
		ref engine.Ref
		top int
	}
	var chain []entry
	seen := map[engine.Ref]bool{s.head: true}
	for curr := structures.Unmark(e.TraversalLoad(c, s.head, fNext)); curr != 0 && !seen[curr]; {
		seen[curr] = true
		next := e.TraversalLoad(c, curr, fNext)
		if !structures.Marked(next) {
			chain = append(chain, entry{curr, int(e.TraversalLoad(c, curr, fTop))})
		}
		curr = structures.Unmark(next)
	}
	for i := 1; i < MaxLevel; i++ {
		pred := s.head
		for _, en := range chain {
			if en.top <= i {
				continue
			}
			if cur := e.TraversalLoad(c, pred, fNext+i); cur != en.ref {
				e.CAS(c, pred, fNext+i, cur, en.ref)
			}
			pred = en.ref
		}
		if cur := e.TraversalLoad(c, pred, fNext+i); cur != 0 {
			e.CAS(c, pred, fNext+i, cur, 0)
		}
	}
}

// randomLevel draws a height with geometric distribution p=1/2.
func (s *SkipList) randomLevel() int {
	x := s.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	level := 1
	for x&1 == 1 && level < MaxLevel {
		level++
		x >>= 1
	}
	return level
}

// search locates key on every level, compacting marked runs out of the
// lists as it goes (Fraser's search). On return preds[i] is the last node
// with key' < key at level i and succs[i] the first with key' >= key (or 0).
func (s *SkipList) search(c *engine.Ctx, key uint64, preds, succs *[MaxLevel]engine.Ref) {
	e := s.e
retry:
	for {
		left := s.head
		for i := MaxLevel - 1; i >= 0; i-- {
			leftNext := e.TraversalLoad(c, left, fNext+i)
			if structures.Marked(leftNext) {
				continue retry // left got deleted under us
			}
			right := leftNext
			var rightNext uint64
			for {
				// Skip a marked run.
				for right != 0 {
					rightNext = e.TraversalLoad(c, right, fNext+i)
					if !structures.Marked(rightNext) {
						break
					}
					right = structures.Unmark(rightNext)
				}
				if right == 0 || e.TraversalLoad(c, right, fKey) >= key {
					break
				}
				left = right
				leftNext = rightNext
				right = structures.Unmark(rightNext)
			}
			if leftNext != right {
				// Snip the whole marked run with one CAS. The snipped
				// nodes are already logically deleted, so the snip may
				// persist lazily: the relaxed-line registry commits it
				// before any of those nodes' memory is reused.
				e.MakePersistent(c, left, fNext+i+1)
				if !e.CASRelaxed(c, left, fNext+i, leftNext, right) {
					continue retry
				}
			}
			if preds != nil {
				preds[i], succs[i] = left, right
			}
		}
		return
	}
}

// Insert implements structures.Set.
func (s *SkipList) Insert(c *engine.Ctx, key, val uint64) bool {
	if key == 0 || key > structures.KeyMax {
		panic("skiplist: key outside usable range")
	}
	e := s.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	var preds, succs [MaxLevel]engine.Ref
	level := s.randomLevel()
	var node engine.Ref
	for {
		s.search(c, key, &preds, &succs)
		if succs[0] != 0 && e.TraversalLoad(c, succs[0], fKey) == key {
			if node != 0 {
				e.FreeUnpublished(c, node, fNext+level)
			}
			e.MakePersistent(c, succs[0], fNext)
			return false
		}
		// Batch the tower's initialization: relaxed flushes per dirty
		// line, one trailing fence at Commit.
		b := engine.Batch(e, c)
		if node == 0 {
			node = e.Alloc(c, fNext+level)
			b.StoreInit(node, fKey, key)
			b.StoreInit(node, fVal, val)
			b.StoreInit(node, fTop, uint64(level))
		}
		for i := 0; i < level; i++ {
			b.StoreInit(node, fNext+i, succs[i])
		}
		b.Commit()
		e.MakePersistent(c, preds[0], fNext+1)
		if !e.CAS(c, preds[0], fNext, succs[0], node) {
			continue // level-0 link lost the race; redo the search
		}
		// The level-0 link is the linearization point and it is durable:
		// publish the detectable verdict before the accelerator linking.
		e.Linearized(c, true)
		// The node is logically inserted (the level-0 link above carried
		// the full durability discipline). Link the accelerator levels;
		// abandon as soon as a concurrent delete marks the node. These
		// links only restore search acceleration — a crash that loses one
		// leaves the node reachable and present via level 0 — so they may
		// persist lazily through the relaxed-line registry.
		for i := 1; i < level; i++ {
			for {
				cur := e.TraversalLoad(c, node, fNext+i)
				if structures.Marked(cur) {
					return true // concurrently deleted; searches clean up
				}
				if cur != succs[i] {
					if !e.CASRelaxed(c, node, fNext+i, cur, succs[i]) {
						// Lost to a mark; stop linking.
						return true
					}
				}
				if succs[i] == node {
					break // already linked at this level by a re-search
				}
				e.MakePersistent(c, preds[i], fNext+i+1)
				if e.CASRelaxed(c, preds[i], fNext+i, succs[i], node) {
					break
				}
				s.search(c, key, &preds, &succs)
				if succs[0] != node {
					return true // deleted and excised meanwhile
				}
			}
			// Validation: if the node was marked while we linked this
			// level, make sure it is physically unlinked before
			// returning (closes the reference-algorithm's window).
			if structures.Marked(e.TraversalLoad(c, node, fNext+i)) {
				s.search(c, key, nil, nil)
				return true
			}
		}
		return true
	}
}

// Delete implements structures.Set. Its linearization point is the
// successful mark of the level-0 next pointer.
func (s *SkipList) Delete(c *engine.Ctx, key uint64) bool {
	e := s.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	var preds, succs [MaxLevel]engine.Ref
	s.search(c, key, &preds, &succs)
	node := succs[0]
	if node == 0 || e.TraversalLoad(c, node, fKey) != key {
		return false
	}
	top := int(e.TraversalLoad(c, node, fTop))
	e.MakePersistent(c, node, fNext+top)
	// Mark the accelerator levels top-down. Only the level-0 mark below
	// decides presence, so these marks may persist lazily (relaxed): a
	// crash that loses one leaves a not-yet-deleted node, which is the
	// same state as crashing before the delete began.
	for i := top - 1; i >= 1; i-- {
		for {
			next := e.TraversalLoad(c, node, fNext+i)
			if structures.Marked(next) {
				break
			}
			if e.CASRelaxed(c, node, fNext+i, next, structures.Mark(next)) {
				break
			}
		}
	}
	// Level 0 decides ownership.
	for {
		next := e.TraversalLoad(c, node, fNext)
		if structures.Marked(next) {
			// A concurrent delete won; help excise and report absent.
			s.search(c, key, nil, nil)
			return false
		}
		if e.CAS(c, node, fNext, next, structures.Mark(next)) {
			e.Linearized(c, true)
			// Physically unlink everywhere, then reclaim.
			s.search(c, key, nil, nil)
			e.Retire(c, node, fNext+top)
			return true
		}
	}
}

// Contains implements structures.Set.
func (s *SkipList) Contains(c *engine.Ctx, key uint64) bool {
	_, ok := s.Get(c, key)
	return ok
}

// Get implements structures.Set with a read-only traversal (no snipping).
func (s *SkipList) Get(c *engine.Ctx, key uint64) (uint64, bool) {
	e := s.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	pred := s.head
	var candidate engine.Ref
	for i := MaxLevel - 1; i >= 0; i-- {
		curr := structures.Unmark(e.TraversalLoad(c, pred, fNext+i))
		for curr != 0 {
			next := e.TraversalLoad(c, curr, fNext+i)
			if structures.Marked(next) {
				curr = structures.Unmark(next)
				continue
			}
			k := e.TraversalLoad(c, curr, fKey)
			if k < key {
				pred = curr
				curr = structures.Unmark(next)
				continue
			}
			if i == 0 && k == key {
				candidate = curr
			}
			break
		}
	}
	if candidate == 0 {
		return 0, false
	}
	v := e.TraversalLoad(c, candidate, fVal)
	e.MakePersistent(c, candidate, fNext)
	return v, true
}

// CasVal atomically replaces key's value with repl iff the key is present
// and currently holds expect (read-modify-write; the serving tier's RMW
// op). The linearization point is the successful CAS on the value field;
// like Insert's level-0 link it runs under the full durability discipline,
// so the caller's verdict may publish after it. Returns false if the key
// is absent, deleted, or holds a different value.
func (s *SkipList) CasVal(c *engine.Ctx, key, expect, repl uint64) bool {
	if key == 0 || key > structures.KeyMax {
		panic("skiplist: key outside usable range")
	}
	e := s.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	var preds, succs [MaxLevel]engine.Ref
	for {
		s.search(c, key, &preds, &succs)
		node := succs[0]
		if node == 0 || e.TraversalLoad(c, node, fKey) != key {
			return false
		}
		if structures.Marked(e.TraversalLoad(c, node, fNext)) {
			return false // concurrently deleted
		}
		e.MakePersistent(c, node, fNext)
		cur := e.TraversalLoad(c, node, fVal)
		if cur != expect {
			return false
		}
		if e.CAS(c, node, fVal, cur, repl) {
			e.Linearized(c, true)
			return true
		}
		// The value moved between the read and the CAS: re-search and
		// re-test against expect (a changed value is simply a miss).
	}
}

// Len counts present keys (quiesced use only).
func (s *SkipList) Len(c *engine.Ctx) int {
	e := s.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	n := 0
	curr := structures.Unmark(e.TraversalLoad(c, s.head, fNext))
	for curr != 0 {
		next := e.TraversalLoad(c, curr, fNext)
		if !structures.Marked(next) {
			n++
		}
		curr = structures.Unmark(next)
	}
	return n
}

// Tracer implements structures.Set. Marked and upper-level-only nodes are
// still reachable, so every level is walked with deduplication.
func (s *SkipList) Tracer() engine.Tracer {
	return TracerAt(s.e, s.rootF)
}

// TracerAt returns the skip list's recovery tracer without attaching to
// the (possibly not yet recovered) structure.
func TracerAt(e engine.Engine, rootField int) engine.Tracer {
	return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
		head := read(e.RootRef(), rootField)
		if head == 0 {
			return
		}
		seen := map[engine.Ref]bool{head: true}
		visit(head, fNext+MaxLevel)
		for i := 0; i < MaxLevel; i++ {
			curr := structures.Unmark(read(head, fNext+i))
			for curr != 0 {
				if !seen[curr] {
					seen[curr] = true
					visit(curr, fNext+int(read(curr, fTop)))
				}
				curr = structures.Unmark(read(curr, fNext+i))
			}
		}
	}
}

// ShardedTracer implements structures.ShardableSet.
func (s *SkipList) ShardedTracer() engine.ShardedTracer {
	return ShardedTracerAt(s.e, s.rootF)
}

// shardBounds derives the key boundaries that partition the post-crash
// image into shards: bounds[s] .. bounds[s+1] delimit shard s's half-open
// key range. The quantiles are taken over an accelerator level with enough
// nodes (falling back toward level 0), so every shard walks the same
// immutable image and computes identical boundaries without coordination.
func shardBounds(read func(engine.Ref, int) uint64, head engine.Ref, shards int) []uint64 {
	level := 0
	for i := MaxLevel - 1; i >= 1; i-- {
		n := 0
		for curr := structures.Unmark(read(head, fNext+i)); curr != 0 && n < 4*shards; curr = structures.Unmark(read(curr, fNext+i)) {
			n++
		}
		if n >= 4*shards {
			level = i
			break
		}
	}
	var keys []uint64
	for curr := structures.Unmark(read(head, fNext+level)); curr != 0; curr = structures.Unmark(read(curr, fNext+level)) {
		keys = append(keys, read(curr, fKey))
	}
	bounds := make([]uint64, shards+1)
	bounds[shards] = ^uint64(0)
	for j := 1; j < shards; j++ {
		if len(keys) == 0 {
			bounds[j] = ^uint64(0)
		} else {
			bounds[j] = keys[len(keys)*j/shards]
		}
	}
	return bounds
}

// ShardedTracerAt partitions TracerAt by key range. Each shard owns the
// nodes whose keys fall in its boundary range (shard 0 additionally owns
// the head sentinel); because every level's chain is key-sorted, a shard
// descends to its range start and walks each level only within its range,
// deduplicating across levels with a shard-local seen set. Levels are
// key-sorted even around marked nodes, so each node — including marked and
// upper-level-only stragglers the sequential tracer visits — is keyed into
// exactly one shard.
func ShardedTracerAt(e engine.Engine, rootField int) engine.ShardedTracer {
	return func(shard, shards int) engine.Tracer {
		return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
			head := read(e.RootRef(), rootField)
			if head == 0 {
				return
			}
			if shard == 0 {
				visit(head, fNext+MaxLevel)
			}
			bounds := shardBounds(read, head, shards)
			lo, hi := bounds[shard], bounds[shard+1]
			if lo >= hi {
				return
			}
			// Descend to the last node with key < lo on every level.
			var preds [MaxLevel]engine.Ref
			node := head
			for i := MaxLevel - 1; i >= 0; i-- {
				for {
					next := structures.Unmark(read(node, fNext+i))
					if next == 0 || read(next, fKey) >= lo {
						break
					}
					node = next
				}
				preds[i] = node
			}
			seen := make(map[engine.Ref]bool)
			for i := 0; i < MaxLevel; i++ {
				curr := structures.Unmark(read(preds[i], fNext+i))
				for curr != 0 {
					k := read(curr, fKey)
					if k >= hi {
						break
					}
					if k >= lo && !seen[curr] {
						seen[curr] = true
						visit(curr, fNext+int(read(curr, fTop)))
					}
					curr = structures.Unmark(read(curr, fNext+i))
				}
			}
		}
	}
}

var _ structures.Set = (*SkipList)(nil)
var _ structures.ShardableSet = (*SkipList)(nil)

// Range calls fn for each present key in [from, to] in ascending order,
// stopping early if fn returns false. Weakly consistent (not a snapshot).
func (s *SkipList) Range(c *engine.Ctx, from, to uint64, fn func(key, val uint64) bool) {
	e := s.e
	e.OpBegin(c)
	defer e.OpEnd(c)
	// Descend to the last node with key < from.
	pred := s.head
	for i := MaxLevel - 1; i >= 0; i-- {
		curr := structures.Unmark(e.TraversalLoad(c, pred, fNext+i))
		for curr != 0 {
			next := e.TraversalLoad(c, curr, fNext+i)
			if structures.Marked(next) {
				curr = structures.Unmark(next)
				continue
			}
			if e.TraversalLoad(c, curr, fKey) >= from {
				break
			}
			pred = curr
			curr = structures.Unmark(next)
		}
	}
	// Walk level 0.
	curr := structures.Unmark(e.TraversalLoad(c, pred, fNext))
	for curr != 0 {
		next := e.TraversalLoad(c, curr, fNext)
		k := e.TraversalLoad(c, curr, fKey)
		if k > to {
			return
		}
		if k >= from && !structures.Marked(next) {
			if !fn(k, e.TraversalLoad(c, curr, fVal)) {
				return
			}
		}
		curr = structures.Unmark(next)
	}
}
