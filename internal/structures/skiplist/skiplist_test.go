package skiplist_test

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/settest"
	"mirror/internal/structures/skiplist"
)

func TestSkipListConformance(t *testing.T) {
	settest.Run(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return skiplist.New(e, c)
		},
		Words: 1 << 21,
	})
}

func TestSkipListTowersAndOrder(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 20})
	c := e.NewCtx()
	s := skiplist.New(e, c)
	// Enough inserts that multiple tower heights occur.
	for k := uint64(1); k <= 2000; k++ {
		if !s.Insert(c, k, k+7) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if got := s.Len(c); got != 2000 {
		t.Fatalf("Len = %d, want 2000", got)
	}
	for k := uint64(1); k <= 2000; k++ {
		if v, ok := s.Get(c, k); !ok || v != k+7 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	// Delete every third key.
	for k := uint64(3); k <= 2000; k += 3 {
		if !s.Delete(c, k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(1); k <= 2000; k++ {
		want := k%3 != 0
		if got := s.Contains(c, k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestSkipListEmptyAfterDeletes(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.Izraelevitz, Words: 1 << 19, Track: true})
	c := e.NewCtx()
	s := skiplist.New(e, c)
	for round := 0; round < 3; round++ {
		for k := uint64(1); k <= 100; k++ {
			s.Insert(c, k, k)
		}
		for k := uint64(1); k <= 100; k++ {
			if !s.Delete(c, k) {
				t.Fatalf("round %d: delete %d failed", round, k)
			}
		}
		if got := s.Len(c); got != 0 {
			t.Fatalf("round %d: Len = %d", round, got)
		}
	}
}

func TestSkipListShardedConformance(t *testing.T) {
	settest.RunSharded(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return skiplist.New(e, c)
		},
		Words: 1 << 21,
	})
}
