package skiplist_test

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/settest"
	"mirror/internal/structures/skiplist"
)

func TestSkipListConformance(t *testing.T) {
	settest.Run(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return skiplist.New(e, c)
		},
		Words: 1 << 21,
	})
}

func TestSkipListTowersAndOrder(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 20})
	c := e.NewCtx()
	s := skiplist.New(e, c)
	// Enough inserts that multiple tower heights occur.
	for k := uint64(1); k <= 2000; k++ {
		if !s.Insert(c, k, k+7) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if got := s.Len(c); got != 2000 {
		t.Fatalf("Len = %d, want 2000", got)
	}
	for k := uint64(1); k <= 2000; k++ {
		if v, ok := s.Get(c, k); !ok || v != k+7 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	// Delete every third key.
	for k := uint64(3); k <= 2000; k += 3 {
		if !s.Delete(c, k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(1); k <= 2000; k++ {
		want := k%3 != 0
		if got := s.Contains(c, k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestSkipListEmptyAfterDeletes(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.Izraelevitz, Words: 1 << 19, Track: true})
	c := e.NewCtx()
	s := skiplist.New(e, c)
	for round := 0; round < 3; round++ {
		for k := uint64(1); k <= 100; k++ {
			s.Insert(c, k, k)
		}
		for k := uint64(1); k <= 100; k++ {
			if !s.Delete(c, k) {
				t.Fatalf("round %d: delete %d failed", round, k)
			}
		}
		if got := s.Len(c); got != 0 {
			t.Fatalf("round %d: Len = %d", round, got)
		}
	}
}

func TestSkipListShardedConformance(t *testing.T) {
	settest.RunSharded(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return skiplist.New(e, c)
		},
		Words: 1 << 21,
	})
}

func TestSkipListRingDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep")
	}
	settest.RunRingDetect(t, settest.Factory{
		New: func(e engine.Engine, c *engine.Ctx) structures.Set {
			return skiplist.New(e, c)
		},
	})
}

// TestSkipListCasVal pins the RMW primitive: compare-and-set of a present
// key's value, misses on absent keys and stale expectations, and crash
// durability of a successful swap.
func TestSkipListCasVal(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorNVMM, Words: 1 << 18, Track: true})
	c := e.NewCtx()
	s := skiplist.New(e, c)
	for k := uint64(1); k <= 50; k++ {
		s.Insert(c, k, k*10)
	}
	if s.CasVal(c, 99, 0, 1) {
		t.Fatal("CasVal on absent key succeeded")
	}
	if s.CasVal(c, 7, 69, 71) {
		t.Fatal("CasVal with stale expect succeeded")
	}
	if v, _ := s.Get(c, 7); v != 70 {
		t.Fatalf("failed CasVal changed value: %d", v)
	}
	if !s.CasVal(c, 7, 70, 71) {
		t.Fatal("CasVal with correct expect failed")
	}
	if v, _ := s.Get(c, 7); v != 71 {
		t.Fatalf("value after CasVal = %d, want 71", v)
	}
	// Crash durability: the swap happened under the full discipline.
	e.Freeze()
	e.Crash(0, nil)
	e.Recover(skiplist.TracerAt(e, 3))
	c2 := e.NewCtx()
	s2 := skiplist.New(e, c2)
	if v, ok := s2.Get(c2, 7); !ok || v != 71 {
		t.Fatalf("value after crash = (%d,%v), want (71,true)", v, ok)
	}
}
