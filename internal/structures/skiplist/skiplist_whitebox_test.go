package skiplist

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
)

// These white-box tests stage a stalled delete (marked next pointers with
// the node still physically linked) and verify the compaction and helping
// behavior of the public operations.

func newWB(t *testing.T) (engine.Engine, *engine.Ctx, *SkipList) {
	t.Helper()
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 18, Track: true})
	c := e.NewCtx()
	return e, c, New(e, c)
}

// plantMarks marks every level of key's node top-down, as a delete does,
// but performs no unlinking — the state after a deleter stalls between its
// linearization and its cleanup search.
func plantMarks(e engine.Engine, c *engine.Ctx, s *SkipList, key uint64) {
	var preds, succs [MaxLevel]engine.Ref
	s.search(c, key, &preds, &succs)
	node := succs[0]
	if node == 0 || e.Load(c, node, fKey) != key {
		panic("plantMarks: key not found")
	}
	top := int(e.Load(c, node, fTop))
	for i := top - 1; i >= 0; i-- {
		for {
			next := e.Load(c, node, fNext+i)
			if structures.Marked(next) {
				break
			}
			if e.CAS(c, node, fNext+i, next, structures.Mark(next)) {
				break
			}
		}
	}
}

func TestMarkedNodeIsAbsent(t *testing.T) {
	e, c, s := newWB(t)
	for k := uint64(1); k <= 20; k++ {
		s.Insert(c, k, k)
	}
	plantMarks(e, c, s, 10)
	if s.Contains(c, 10) {
		t.Fatal("marked node reported present")
	}
	for k := uint64(1); k <= 20; k++ {
		if k != 10 && !s.Contains(c, k) {
			t.Fatalf("unrelated key %d lost", k)
		}
	}
}

func TestSearchCompactsMarkedNode(t *testing.T) {
	e, c, s := newWB(t)
	for k := uint64(1); k <= 20; k++ {
		s.Insert(c, k, k)
	}
	plantMarks(e, c, s, 10)
	// A search through the region must physically excise the marked node.
	var preds, succs [MaxLevel]engine.Ref
	s.search(c, 10, &preds, &succs)
	if succs[0] != 0 && e.Load(c, succs[0], fKey) == 10 {
		t.Fatal("search did not compact the marked node at level 0")
	}
	// Re-insert must now succeed.
	if !s.Insert(c, 10, 99) {
		t.Fatal("re-insert after compaction failed")
	}
	if v, ok := s.Get(c, 10); !ok || v != 99 {
		t.Fatalf("Get = (%d,%v), want (99,true)", v, ok)
	}
}

func TestDeleteOfMarkedNodeReportsAbsent(t *testing.T) {
	e, c, s := newWB(t)
	s.Insert(c, 5, 5)
	plantMarks(e, c, s, 5)
	if s.Delete(c, 5) {
		t.Fatal("delete of already-marked node should report absent")
	}
	if s.Len(c) != 0 {
		t.Fatalf("Len = %d, want 0", s.Len(c))
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	s := &SkipList{}
	s.seed.Store(12345)
	counts := make([]int, MaxLevel+1)
	const n = 100000
	for i := 0; i < n; i++ {
		l := s.randomLevel()
		if l < 1 || l > MaxLevel {
			t.Fatalf("level %d out of range", l)
		}
		counts[l]++
	}
	// Geometric p=1/2: level 1 about half, each next roughly halving.
	if counts[1] < n/3 || counts[1] > 2*n/3 {
		t.Errorf("level-1 fraction %d/%d far from 1/2", counts[1], n)
	}
	if counts[2] > counts[1] || counts[3] > counts[2] {
		t.Error("level frequencies not decreasing")
	}
}
