package wire

import (
	"bytes"
	"testing"
)

// FuzzFrame drives arbitrary bytes through the frame reader and both
// decoders. The invariants: no panic ever; a successful request decode
// round-trips byte-identically through AppendRequest (the encoding is
// canonical, so no two wire forms decode to the same request); a
// successful response decode round-trips through AppendResponse.
func FuzzFrame(f *testing.F) {
	f.Add(AppendRequest(nil, Request{Op: OpInsert, Client: 1, Seq: 1, Key: 7, Val: 70}))
	f.Add(AppendRequest(nil, Request{Op: OpGet, Key: 7}))
	f.Add(AppendRequest(nil, Request{Op: OpScan, Client: 2, Key: 10, Val: 16}))
	f.Add(AppendRequest(nil, Request{Op: OpRMW, Client: 3, Seq: 4, Key: 5, Val: 6, Arg: 7}))
	f.Add(AppendRequest(nil, Request{Op: OpHello, Client: 1, Val: 8}))
	f.Add(AppendResponse(nil, Response{Status: StatusOK, Result: true, Rval: 9}))
	f.Add(AppendResponse(nil, Response{Status: StatusError, Err: "nope"}))
	f.Add(AppendResponse(nil, Response{Status: StatusOK, Rval: 1, Pairs: []KV{{Key: 3, Val: 30}}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{4, 0, 0, 0, 1, 2})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The stream reader: must terminate (bounded by input length),
		// never panic, and stop at the first error.
		rd := bytes.NewReader(data)
		var buf []byte
		for {
			p, err := ReadFrame(rd, buf)
			if err != nil {
				break
			}
			if len(p) == 0 || len(p) > MaxFrame {
				t.Fatalf("ReadFrame returned %d bytes outside (0, %d]", len(p), MaxFrame)
			}
			buf = p
		}

		// The decoders on the raw payload.
		if req, err := DecodeRequest(data); err == nil {
			enc := AppendRequest(nil, req)
			if !bytes.Equal(enc[4:], data) {
				t.Fatalf("request decode not canonical: %x -> %+v -> %x", data, req, enc[4:])
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			enc := AppendResponse(nil, resp)
			if !bytes.Equal(enc[4:], data) {
				t.Fatalf("response decode not canonical: %x -> %+v -> %x", data, resp, enc[4:])
			}
		}
	})
}
