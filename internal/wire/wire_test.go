package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Client: 0, Seq: 0, Key: 42},
		{Op: OpInsert, Client: 3, Seq: 1, Key: 7, Val: 70},
		{Op: OpDelete, Client: 9, Seq: 1 << 40, Key: ^uint64(0)},
		{Op: OpEnqueue, Client: MaxClients - 1, Seq: 2, Val: 5},
		{Op: OpDequeue, Client: 1, Seq: 3},
		{Op: OpDetect, Client: 1, Seq: 3},
		{Op: OpScan, Client: 2, Key: 100, Val: MaxScanKeys},
		{Op: OpScan, Client: 2, Key: 1, Val: 1},
		{Op: OpRMW, Client: 4, Seq: 9, Key: 8, Val: 80, Arg: 81},
		{Op: OpHello, Client: 5, Val: 8},
	}
	var stream []byte
	for _, r := range reqs {
		stream = AppendRequest(stream, r)
	}
	rd := bytes.NewReader(stream)
	var buf []byte
	for i, want := range reqs {
		got, err := ReadRequest(rd, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(rd, buf); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Result: true, Known: true, Rval: 99},
		{Status: StatusOK},
		{Status: StatusOK, Verdict: 1, Known: true, Result: true, Rval: 7},
		{Status: StatusError, Err: "bad op"},
		{Status: StatusOK, Rval: 2, Pairs: []KV{{Key: 1, Val: 10}, {Key: 2, Val: 20}}},
		{Status: StatusOK, Pairs: []KV{}}, // empty scan is still a scan
	}
	var stream []byte
	for _, r := range resps {
		stream = AppendResponse(stream, r)
	}
	rd := bytes.NewReader(stream)
	for i, want := range resps {
		got, err := ReadResponse(rd, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	valid := AppendRequest(nil, Request{Op: OpInsert, Client: 1, Seq: 1, Key: 2, Val: 3})
	payload := valid[4:]

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"short payload", func(p []byte) []byte { return p[:len(p)-1] }},
		{"long payload", func(p []byte) []byte { return append(p, 0) }},
		{"zero op", func(p []byte) []byte { p[0] = 0; return p }},
		{"unknown op", func(p []byte) []byte { p[0] = byte(opMax); return p }},
		{"mutating seq 0", func(p []byte) []byte {
			for i := 5; i < 13; i++ {
				p[i] = 0
			}
			return p
		}},
		{"client out of range", func(p []byte) []byte {
			binary.LittleEndian.PutUint32(p[1:], MaxClients)
			return p
		}},
		// RMW is the only 37-byte frame; a 29-byte RMW and a 37-byte
		// INSERT are both malformed.
		{"short RMW", func(p []byte) []byte { p[0] = byte(OpRMW); return p }},
		{"long INSERT", func(p []byte) []byte { return append(p, make([]byte, 8)...) }},
	}
	for _, tc := range cases {
		p := tc.mutate(append([]byte(nil), payload...))
		if _, err := DecodeRequest(p); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		} else {
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Errorf("%s: error %T, want *ProtocolError", tc.name, err)
			}
		}
	}
}

// TestDecodeRequestSeqConsistency pins the seq rules per op class:
// non-mutating frames (GET, SCAN, HELLO) must not carry a seq — they never
// consume sequence numbers, so a nonzero seq is a confused client; DETECT
// and every mutating op must carry one.
func TestDecodeRequestSeqConsistency(t *testing.T) {
	bad := []Request{
		{Op: OpGet, Client: 1, Seq: 5, Key: 2},
		{Op: OpScan, Client: 1, Seq: 5, Key: 2, Val: 4},
		{Op: OpHello, Client: 1, Seq: 5, Val: 8},
		{Op: OpDetect, Client: 1, Seq: 0},
		{Op: OpRMW, Client: 1, Seq: 0, Key: 2, Val: 3, Arg: 4},
	}
	for _, r := range bad {
		p := AppendRequest(nil, r)[4:]
		if _, err := DecodeRequest(p); err == nil {
			t.Errorf("%s seq %d: decoded without error", r.Op, r.Seq)
		}
	}
}

// TestDecodeRequestScanHelloRejects pins the op-specific field rules: a
// zero-limit or over-limit SCAN and a malformed HELLO are protocol errors.
func TestDecodeRequestScanHelloRejects(t *testing.T) {
	bad := []Request{
		{Op: OpScan, Client: 1, Key: 2, Val: 0},
		{Op: OpScan, Client: 1, Key: 2, Val: MaxScanKeys + 1},
		{Op: OpHello, Client: 1, Key: 7, Val: 8},
		{Op: OpHello, Client: 1, Val: 0},
	}
	for _, r := range bad {
		p := AppendRequest(nil, r)[4:]
		if _, err := DecodeRequest(p); err == nil {
			t.Errorf("%s key %d val %d: decoded without error", r.Op, r.Key, r.Val)
		}
	}
}

func TestDecodeResponseRejects(t *testing.T) {
	cases := map[string][]byte{
		"short":             make([]byte, responseMin-1),
		"zero status":       append([]byte{0, 0, 0}, make([]byte, 8)...),
		"unknown status":    append([]byte{9, 0, 0}, make([]byte, 8)...),
		"reserved flags":    append([]byte{StatusOK, 8, 0}, make([]byte, 8)...),
		"unknown verdict":   append([]byte{StatusOK, 0, 3}, make([]byte, 8)...),
		"trailing after OK": append([]byte{StatusOK, 0, 0}, make([]byte, 9)...),
		"pairs on error":    append([]byte{StatusError, 4, 0}, make([]byte, 8+pairLen)...),
		"ragged pair tail":  append([]byte{StatusOK, 4, 0}, make([]byte, 8+pairLen-1)...),
		"too many pairs":    append([]byte{StatusOK, 4, 0}, make([]byte, 8+(MaxScanKeys+1)*pairLen)...),
	}
	for name, p := range cases {
		if _, err := DecodeResponse(p); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Oversized length prefix: must error before allocating the payload.
	big := binary.LittleEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(big), nil); err == nil {
		t.Error("oversized prefix accepted")
	}
	// Zero-length frame.
	zero := binary.LittleEndian.AppendUint32(nil, 0)
	if _, err := ReadFrame(bytes.NewReader(zero), nil); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Truncated mid-prefix and mid-payload.
	if _, err := ReadFrame(strings.NewReader("\x05"), nil); err == nil {
		t.Error("truncated prefix accepted")
	}
	trunc := binary.LittleEndian.AppendUint32(nil, 10)
	trunc = append(trunc, 1, 2, 3)
	if _, err := ReadFrame(bytes.NewReader(trunc), nil); err == nil {
		t.Error("truncated payload accepted")
	}
	// Clean EOF only at a frame boundary.
	if _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	// The biggest legal scan response fits under MaxFrame.
	pairs := make([]KV, MaxScanKeys)
	frame := AppendResponse(nil, Response{Status: StatusOK, Rval: MaxScanKeys, Pairs: pairs})
	if len(frame)-4 > MaxFrame {
		t.Errorf("max scan response %d bytes exceeds MaxFrame %d", len(frame)-4, MaxFrame)
	}
	if _, err := ReadResponse(bytes.NewReader(frame), nil); err != nil {
		t.Errorf("max scan response rejected: %v", err)
	}
}
