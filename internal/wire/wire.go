// Package wire defines mirrord's length-prefixed binary protocol. A
// connection carries a stream of frames in each direction; every frame is a
// uint32 little-endian length followed by that many payload bytes.
//
// Request payload (fixed 29 bytes):
//
//	op     uint8    operation code (Op*)
//	client uint32   client id — the engine descriptor slot
//	seq    uint64   per-client sequence number, strictly increasing from 1
//	key    uint64
//	val    uint64
//
// Response payload (11 bytes + optional error text):
//
//	status  uint8   StatusOK | StatusError
//	flags   uint8   bit 0 result, bit 1 known-result
//	verdict uint8   Detect answer: 0 unknown, 1 committed, 2 not committed
//	rval    uint64  value returned by GET/DEQ (and Detect's recorded rval)
//	err     []byte  UTF-8 message; present iff status == StatusError
//
// Every mutating frame carries (client, seq), which is exactly the
// detectability identity of the engine's descriptor protocol: a client that
// loses its connection mid-operation reconnects and sends DETECT (or replays
// the frame with the same seq) to resolve the cut operation exactly once.
//
// Decoding is strict: an unknown op, a bad payload length, a zero seq on a
// mutating op, an out-of-range length prefix, or trailing error text on a
// non-error response each produce a *ProtocolError. Garbage must never
// panic or decode into a plausible request.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is a request operation code.
type Op uint8

// Operation codes. GET and DETECT are non-mutating (seq 0 allowed); the
// rest must carry a nonzero per-client sequence number.
const (
	OpGet Op = iota + 1
	OpInsert
	OpDelete
	OpEnqueue
	OpDequeue
	OpDetect
	opMax
)

// String names the op as it appears in the protocol table.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpEnqueue:
		return "ENQ"
	case OpDequeue:
		return "DEQ"
	case OpDetect:
		return "DETECT"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Mutating reports whether the op changes durable state (and therefore
// must carry a nonzero seq and run under a descriptor).
func (o Op) Mutating() bool {
	switch o {
	case OpInsert, OpDelete, OpEnqueue, OpDequeue:
		return true
	}
	return false
}

// Response status codes.
const (
	StatusOK    uint8 = 1
	StatusError uint8 = 2
)

// Frame size limits. MaxFrame bounds any length prefix the reader will
// honor, so a garbage prefix cannot trigger a huge allocation.
const (
	requestLen  = 29
	responseMin = 11
	MaxFrame    = 512
)

// MaxClients bounds the client id space a server will accept; it matches a
// practical engine descriptor-region size and keeps a garbage frame from
// addressing an absurd slot.
const MaxClients = 1 << 16

// ProtocolError describes a malformed frame. It is a terminal connection
// error: framing cannot resynchronize after a bad length prefix.
type ProtocolError struct{ Reason string }

func (e *ProtocolError) Error() string { return "wire: " + e.Reason }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// Request is one decoded client frame.
type Request struct {
	Op     Op
	Client uint32
	Seq    uint64
	Key    uint64
	Val    uint64
}

// Response is one decoded server frame.
type Response struct {
	Status  uint8
	Result  bool
	Known   bool
	Verdict uint8
	Rval    uint64
	Err     string
}

// AppendRequest appends r's frame (length prefix included) to dst.
func AppendRequest(dst []byte, r Request) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, requestLen)
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint32(dst, r.Client)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, r.Key)
	dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	return dst
}

// AppendResponse appends r's frame (length prefix included) to dst.
func AppendResponse(dst []byte, r Response) []byte {
	if r.Status != StatusError && r.Err != "" {
		panic("wire: error text on a non-error response")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(responseMin+len(r.Err)))
	dst = append(dst, r.Status)
	var flags byte
	if r.Result {
		flags |= 1
	}
	if r.Known {
		flags |= 2
	}
	dst = append(dst, flags, r.Verdict)
	dst = binary.LittleEndian.AppendUint64(dst, r.Rval)
	return append(dst, r.Err...)
}

// DecodeRequest decodes one request payload (the bytes after the length
// prefix).
func DecodeRequest(p []byte) (Request, error) {
	if len(p) != requestLen {
		return Request{}, protoErrf("request payload %d bytes, want %d", len(p), requestLen)
	}
	r := Request{
		Op:     Op(p[0]),
		Client: binary.LittleEndian.Uint32(p[1:]),
		Seq:    binary.LittleEndian.Uint64(p[5:]),
		Key:    binary.LittleEndian.Uint64(p[13:]),
		Val:    binary.LittleEndian.Uint64(p[21:]),
	}
	if r.Op == 0 || r.Op >= opMax {
		return Request{}, protoErrf("unknown op %d", uint8(r.Op))
	}
	if r.Client >= MaxClients {
		return Request{}, protoErrf("client id %d out of range", r.Client)
	}
	if r.Mutating() && r.Seq == 0 {
		return Request{}, protoErrf("%s frame with seq 0", r.Op)
	}
	return r, nil
}

// Mutating reports whether the request mutates durable state.
func (r Request) Mutating() bool { return r.Op.Mutating() }

// DecodeResponse decodes one response payload (the bytes after the length
// prefix).
func DecodeResponse(p []byte) (Response, error) {
	if len(p) < responseMin {
		return Response{}, protoErrf("response payload %d bytes, want >= %d", len(p), responseMin)
	}
	r := Response{
		Status:  p[0],
		Result:  p[1]&1 != 0,
		Known:   p[1]&2 != 0,
		Verdict: p[2],
		Rval:    binary.LittleEndian.Uint64(p[3:]),
	}
	if r.Status != StatusOK && r.Status != StatusError {
		return Response{}, protoErrf("unknown status %d", r.Status)
	}
	if p[1]&^byte(3) != 0 {
		return Response{}, protoErrf("reserved flag bits set: %#x", p[1])
	}
	if r.Verdict > 2 {
		return Response{}, protoErrf("unknown verdict %d", r.Verdict)
	}
	if len(p) > responseMin {
		if r.Status != StatusError {
			return Response{}, protoErrf("trailing bytes on OK response")
		}
		r.Err = string(p[responseMin:])
	}
	return r, nil
}

// ReadFrame reads one length-prefixed frame payload from rd into buf
// (grown as needed) and returns the payload slice. io.EOF is returned
// cleanly only at a frame boundary; a prefix beyond MaxFrame or a
// truncated payload is a *ProtocolError (wrapping io.ErrUnexpectedEOF for
// mid-payload truncation).
func ReadFrame(rd io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, protoErrf("truncated length prefix")
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, protoErrf("frame length %d outside (0, %d]", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, protoErrf("truncated frame payload: %d of %d bytes", 0, n)
	}
	return buf, nil
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(rd io.Reader, buf []byte) (Request, error) {
	p, err := ReadFrame(rd, buf)
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(p)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(rd io.Reader, buf []byte) (Response, error) {
	p, err := ReadFrame(rd, buf)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(p)
}
