// Package wire defines mirrord's length-prefixed binary protocol. A
// connection carries a stream of frames in each direction; every frame is a
// uint32 little-endian length followed by that many payload bytes.
//
// Request payload (fixed 29 bytes; RMW carries one extra word, 37 bytes):
//
//	op     uint8    operation code (Op*)
//	client uint32   client id — the engine descriptor ring
//	seq    uint64   per-client sequence number, strictly increasing from 1
//	key    uint64   key (SCAN: start key; HELLO: must be 0)
//	val    uint64   value (SCAN: limit; RMW: expected value; HELLO: window)
//	arg    uint64   RMW only: the new value
//
// Response payload (11 bytes + optional trailing section):
//
//	status  uint8   StatusOK | StatusError
//	flags   uint8   bit 0 result, bit 1 known-result, bit 2 scan pairs
//	verdict uint8   Detect answer: 0 unknown, 1 committed, 2 not committed
//	rval    uint64  value returned by GET/DEQ/RMW (HELLO: granted window;
//	                SCAN: pair count; and Detect's recorded rval)
//	tail    []byte  UTF-8 message iff status == StatusError; iff flags bit 2,
//	                the scan's (key, val) pairs, 16 bytes each little-endian
//
// Every mutating frame carries (client, seq), which is exactly the
// detectability identity of the engine's descriptor protocol: a client that
// loses its connection mid-operation reconnects and sends DETECT (or replays
// the frame with the same seq) to resolve each cut operation exactly once.
// Pipelining rides the same identity: after a HELLO handshake grants a
// window w (clamped to the server's descriptor-ring size), a client may
// have up to w mutating frames in flight before reading responses; the
// server preserves per-client FIFO order, so responses arrive in issue
// order and every unacknowledged seq stays resolvable via DETECT.
//
// Decoding is strict: an unknown op, a bad payload length for the op, a
// zero seq on a mutating op or DETECT, a nonzero seq on a non-mutating op,
// a zero-limit or over-limit SCAN, a malformed HELLO, an out-of-range
// length prefix, or inconsistent trailing bytes each produce a
// *ProtocolError. Garbage must never panic or decode into a plausible
// request.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is a request operation code.
type Op uint8

// Operation codes. GET, SCAN, and HELLO are non-mutating and must carry
// seq 0; DETECT asks about one mutating seq and must carry it; the rest
// must carry a nonzero per-client sequence number.
const (
	OpGet Op = iota + 1
	OpInsert
	OpDelete
	OpEnqueue
	OpDequeue
	OpDetect
	OpScan
	OpRMW
	OpHello
	opMax
)

// String names the op as it appears in the protocol table.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpEnqueue:
		return "ENQ"
	case OpDequeue:
		return "DEQ"
	case OpDetect:
		return "DETECT"
	case OpScan:
		return "SCAN"
	case OpRMW:
		return "RMW"
	case OpHello:
		return "HELLO"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Mutating reports whether the op changes durable state (and therefore
// must carry a nonzero seq and run under a descriptor).
func (o Op) Mutating() bool {
	switch o {
	case OpInsert, OpDelete, OpEnqueue, OpDequeue, OpRMW:
		return true
	}
	return false
}

// Response status codes.
const (
	StatusOK    uint8 = 1
	StatusError uint8 = 2
)

// Frame size limits. MaxFrame bounds any length prefix the reader will
// honor, so a garbage prefix cannot trigger a huge allocation; it admits
// the largest scan response (responseMin + MaxScanKeys pairs).
const (
	requestLen    = 29
	rmwRequestLen = requestLen + 8
	responseMin   = 11
	pairLen       = 16
	MaxFrame      = 2048
)

// MaxScanKeys bounds one SCAN's result pairs, keeping every response
// inside MaxFrame.
const MaxScanKeys = 64

// MaxClients bounds the client id space a server will accept; it matches a
// practical engine descriptor-region size and keeps a garbage frame from
// addressing an absurd slot.
const MaxClients = 1 << 16

// ProtocolError describes a malformed frame. It is a terminal connection
// error: framing cannot resynchronize after a bad length prefix.
type ProtocolError struct{ Reason string }

func (e *ProtocolError) Error() string { return "wire: " + e.Reason }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// Request is one decoded client frame.
type Request struct {
	Op     Op
	Client uint32
	Seq    uint64
	Key    uint64
	Val    uint64
	// Arg is RMW's new value (the word beyond the fixed 29 bytes); always
	// zero for every other op.
	Arg uint64
}

// KV is one scan result pair.
type KV struct {
	Key uint64
	Val uint64
}

// Response is one decoded server frame.
type Response struct {
	Status  uint8
	Result  bool
	Known   bool
	Verdict uint8
	Rval    uint64
	Err     string
	// Pairs carries a SCAN's results (flags bit 2). Non-nil — possibly
	// empty — exactly on scan responses.
	Pairs []KV
}

// reqLen returns the exact payload length of op's frames.
func reqLen(op Op) uint32 {
	if op == OpRMW {
		return rmwRequestLen
	}
	return requestLen
}

// AppendRequest appends r's frame (length prefix included) to dst.
func AppendRequest(dst []byte, r Request) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, reqLen(r.Op))
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint32(dst, r.Client)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, r.Key)
	dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	if r.Op == OpRMW {
		dst = binary.LittleEndian.AppendUint64(dst, r.Arg)
	}
	return dst
}

// AppendResponse appends r's frame (length prefix included) to dst.
func AppendResponse(dst []byte, r Response) []byte {
	if r.Status != StatusError && r.Err != "" {
		panic("wire: error text on a non-error response")
	}
	if r.Pairs != nil && (r.Status != StatusOK || r.Err != "") {
		panic("wire: scan pairs on a non-OK response")
	}
	if len(r.Pairs) > MaxScanKeys {
		panic(fmt.Sprintf("wire: %d scan pairs exceed MaxScanKeys", len(r.Pairs)))
	}
	dst = binary.LittleEndian.AppendUint32(dst,
		uint32(responseMin+len(r.Err)+len(r.Pairs)*pairLen))
	dst = append(dst, r.Status)
	var flags byte
	if r.Result {
		flags |= 1
	}
	if r.Known {
		flags |= 2
	}
	if r.Pairs != nil {
		flags |= 4
	}
	dst = append(dst, flags, r.Verdict)
	dst = binary.LittleEndian.AppendUint64(dst, r.Rval)
	for _, kv := range r.Pairs {
		dst = binary.LittleEndian.AppendUint64(dst, kv.Key)
		dst = binary.LittleEndian.AppendUint64(dst, kv.Val)
	}
	return append(dst, r.Err...)
}

// DecodeRequest decodes one request payload (the bytes after the length
// prefix).
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < 1 {
		return Request{}, protoErrf("empty request payload")
	}
	op := Op(p[0])
	if op == 0 || op >= opMax {
		return Request{}, protoErrf("unknown op %d", uint8(op))
	}
	if uint32(len(p)) != reqLen(op) {
		return Request{}, protoErrf("%s payload %d bytes, want %d", op, len(p), reqLen(op))
	}
	r := Request{
		Op:     op,
		Client: binary.LittleEndian.Uint32(p[1:]),
		Seq:    binary.LittleEndian.Uint64(p[5:]),
		Key:    binary.LittleEndian.Uint64(p[13:]),
		Val:    binary.LittleEndian.Uint64(p[21:]),
	}
	if op == OpRMW {
		r.Arg = binary.LittleEndian.Uint64(p[29:])
	}
	if r.Client >= MaxClients {
		return Request{}, protoErrf("client id %d out of range", r.Client)
	}
	switch {
	case r.Mutating() || op == OpDetect:
		// DETECT asks about one mutating seq, so it carries one too.
		if r.Seq == 0 {
			return Request{}, protoErrf("%s frame with seq 0", op)
		}
	default:
		// Non-mutating frames never consume sequence numbers; a nonzero
		// seq here is a confused client, not a replayable identity.
		if r.Seq != 0 {
			return Request{}, protoErrf("%s frame with nonzero seq %d", op, r.Seq)
		}
	}
	switch op {
	case OpScan:
		if r.Val == 0 {
			return Request{}, protoErrf("SCAN with limit 0")
		}
		if r.Val > MaxScanKeys {
			return Request{}, protoErrf("SCAN limit %d exceeds %d", r.Val, MaxScanKeys)
		}
	case OpHello:
		if r.Key != 0 {
			return Request{}, protoErrf("HELLO with nonzero key")
		}
		if r.Val == 0 {
			return Request{}, protoErrf("HELLO with window 0")
		}
	}
	return r, nil
}

// Mutating reports whether the request mutates durable state.
func (r Request) Mutating() bool { return r.Op.Mutating() }

// DecodeResponse decodes one response payload (the bytes after the length
// prefix).
func DecodeResponse(p []byte) (Response, error) {
	if len(p) < responseMin {
		return Response{}, protoErrf("response payload %d bytes, want >= %d", len(p), responseMin)
	}
	r := Response{
		Status:  p[0],
		Result:  p[1]&1 != 0,
		Known:   p[1]&2 != 0,
		Verdict: p[2],
		Rval:    binary.LittleEndian.Uint64(p[3:]),
	}
	if r.Status != StatusOK && r.Status != StatusError {
		return Response{}, protoErrf("unknown status %d", r.Status)
	}
	if p[1]&^byte(7) != 0 {
		return Response{}, protoErrf("reserved flag bits set: %#x", p[1])
	}
	if r.Verdict > 2 {
		return Response{}, protoErrf("unknown verdict %d", r.Verdict)
	}
	tail := p[responseMin:]
	switch {
	case p[1]&4 != 0:
		// Scan pairs ride OK responses only, in whole 16-byte units.
		if r.Status != StatusOK {
			return Response{}, protoErrf("scan pairs on a non-OK response")
		}
		if len(tail)%pairLen != 0 {
			return Response{}, protoErrf("scan tail %d bytes not a pair multiple", len(tail))
		}
		n := len(tail) / pairLen
		if n > MaxScanKeys {
			return Response{}, protoErrf("%d scan pairs exceed %d", n, MaxScanKeys)
		}
		r.Pairs = make([]KV, n)
		for i := range r.Pairs {
			r.Pairs[i] = KV{
				Key: binary.LittleEndian.Uint64(tail[i*pairLen:]),
				Val: binary.LittleEndian.Uint64(tail[i*pairLen+8:]),
			}
		}
	case len(tail) > 0:
		if r.Status != StatusError {
			return Response{}, protoErrf("trailing bytes on OK response")
		}
		r.Err = string(tail)
	}
	return r, nil
}

// ReadFrame reads one length-prefixed frame payload from rd into buf
// (grown as needed) and returns the payload slice. io.EOF is returned
// cleanly only at a frame boundary; a prefix beyond MaxFrame or a
// truncated payload is a *ProtocolError (wrapping io.ErrUnexpectedEOF for
// mid-payload truncation).
func ReadFrame(rd io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, protoErrf("truncated length prefix")
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, protoErrf("frame length %d outside (0, %d]", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, protoErrf("truncated frame payload: %d of %d bytes", 0, n)
	}
	return buf, nil
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(rd io.Reader, buf []byte) (Request, error) {
	p, err := ReadFrame(rd, buf)
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(p)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(rd io.Reader, buf []byte) (Response, error) {
	p, err := ReadFrame(rd, buf)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(p)
}
