//go:build amd64

#include "textflag.h"

// func cas16(addr *[2]uint64, old0, old1, new0, new1 uint64) (swapped bool, cur0, cur1 uint64)
TEXT ·cas16(SB), NOSPLIT, $0-64
	MOVQ	addr+0(FP), DI
	MOVQ	old0+8(FP), AX
	MOVQ	old1+16(FP), DX
	MOVQ	new0+24(FP), BX
	MOVQ	new1+32(FP), CX
	LOCK
	CMPXCHG16B	(DI)
	SETEQ	swapped+40(FP)
	// On failure RDX:RAX holds the current memory value; on success it
	// still holds the old (== expected) value, which is what we report.
	MOVQ	AX, cur0+48(FP)
	MOVQ	DX, cur1+56(FP)
	RET

// func load16(addr *[2]uint64) (v0, v1 uint64)
TEXT ·load16(SB), NOSPLIT, $0-24
	MOVQ	addr+0(FP), DI
	XORQ	AX, AX
	XORQ	DX, DX
	XORQ	BX, BX
	XORQ	CX, CX
	LOCK
	CMPXCHG16B	(DI)
	// If memory was zero the instruction stored zero back (a no-op);
	// otherwise RDX:RAX now holds the current value. Either way
	// RDX:RAX == memory contents at the linearization point.
	MOVQ	AX, v0+8(FP)
	MOVQ	DX, v1+16(FP)
	RET
