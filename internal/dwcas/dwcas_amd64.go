//go:build amd64

package dwcas

// haveNative is true on amd64: CMPXCHG16B has been present on every 64-bit
// x86 CPU capable of running a modern Go runtime (it is part of the
// GOAMD64=v2 baseline and universal in practice since 2006).
const haveNative = true

// cas16 executes LOCK CMPXCHG16B at addr. Implemented in dwcas_amd64.s.
//
//go:noescape
func cas16(addr *[2]uint64, old0, old1, new0, new1 uint64) (swapped bool, cur0, cur1 uint64)

// load16 atomically reads 16 bytes at addr using CMPXCHG16B with a desired
// value equal to the expected value, the standard store-free-on-mismatch
// technique. Implemented in dwcas_amd64.s.
//
//go:noescape
func load16(addr *[2]uint64) (v0, v1 uint64)
