package dwcas

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"unsafe"
)

// alignedPair returns a 16-byte aligned [2]uint64.
func alignedPair(t testing.TB) *[2]uint64 {
	t.Helper()
	// A [4]uint64 always contains a 16-byte aligned window of 2 words.
	buf := new([4]uint64)
	p := (*[2]uint64)(unsafe.Pointer(buf))
	if !Aligned(p) {
		p = (*[2]uint64)(unsafe.Pointer(&buf[1]))
	}
	if !Aligned(p) {
		t.Fatal("could not produce a 16-byte aligned pair")
	}
	return p
}

// eachPath runs f under both the native and fallback implementations.
func eachPath(t *testing.T, f func(t *testing.T)) {
	t.Run("native", func(t *testing.T) {
		if !Native() {
			t.Skip("no native DWCAS on this platform")
		}
		f(t)
	})
	t.Run("fallback", func(t *testing.T) {
		SetFallback(true)
		defer SetFallback(false)
		f(t)
	})
}

func TestAligned(t *testing.T) {
	p := alignedPair(t)
	if !Aligned(p) {
		t.Error("alignedPair returned an unaligned pair")
	}
}

func TestCASSuccess(t *testing.T) {
	eachPath(t, func(t *testing.T) {
		p := alignedPair(t)
		p[0], p[1] = 5, 2
		ok, c0, c1 := CompareAndSwap(p, 5, 2, 10, 3)
		if !ok {
			t.Fatal("CAS should succeed")
		}
		if c0 != 5 || c1 != 2 {
			t.Errorf("observed (%d,%d), want old value (5,2)", c0, c1)
		}
		if p[0] != 10 || p[1] != 3 {
			t.Errorf("memory (%d,%d), want (10,3)", p[0], p[1])
		}
	})
}

func TestCASFailure(t *testing.T) {
	eachPath(t, func(t *testing.T) {
		p := alignedPair(t)
		p[0], p[1] = 7, 9
		ok, c0, c1 := CompareAndSwap(p, 7, 8, 1, 2)
		if ok {
			t.Fatal("CAS should fail on mismatched second word")
		}
		if c0 != 7 || c1 != 9 {
			t.Errorf("observed (%d,%d), want current (7,9)", c0, c1)
		}
		if p[0] != 7 || p[1] != 9 {
			t.Errorf("memory modified on failed CAS: (%d,%d)", p[0], p[1])
		}
		ok, _, _ = CompareAndSwap(p, 6, 9, 1, 2)
		if ok {
			t.Fatal("CAS should fail on mismatched first word")
		}
	})
}

func TestLoad(t *testing.T) {
	eachPath(t, func(t *testing.T) {
		p := alignedPair(t)
		p[0], p[1] = 0xdeadbeef, 42
		v0, v1 := Load(p)
		if v0 != 0xdeadbeef || v1 != 42 {
			t.Errorf("Load = (%#x,%d), want (0xdeadbeef,42)", v0, v1)
		}
		// Zero value is a special case for the load16 trick.
		p[0], p[1] = 0, 0
		v0, v1 = Load(p)
		if v0 != 0 || v1 != 0 {
			t.Errorf("Load of zero = (%d,%d)", v0, v1)
		}
	})
}

func TestStore(t *testing.T) {
	eachPath(t, func(t *testing.T) {
		p := alignedPair(t)
		Store(p, 11, 22)
		if p[0] != 11 || p[1] != 22 {
			t.Errorf("Store left (%d,%d)", p[0], p[1])
		}
	})
}

func TestCASQuickRoundTrip(t *testing.T) {
	eachPath(t, func(t *testing.T) {
		p := alignedPair(t)
		f := func(a, b, c, d uint64) bool {
			Store(p, a, b)
			ok, c0, c1 := CompareAndSwap(p, a, b, c, d)
			if !ok || c0 != a || c1 != b {
				return false
			}
			v0, v1 := Load(p)
			return v0 == c && v1 == d
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

// TestCASAtomicityStress has writers incrementing the pair in lock step
// (both words always move together) while readers verify they never observe
// a torn pair. This is the property Mirror's seq/value pairing depends on.
func TestCASAtomicityStress(t *testing.T) {
	eachPath(t, func(t *testing.T) {
		p := alignedPair(t)
		const iters = 20000
		writers := runtime.GOMAXPROCS(0)
		if writers > 8 {
			writers = 8
		}
		var stop atomic.Bool
		var torn atomic.Int64
		var readers, writersWG sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for !stop.Load() {
					v0, v1 := Load(p)
					if v0 != v1 {
						torn.Add(1)
						return
					}
				}
			}()
		}
		var total atomic.Int64
		for w := 0; w < writers; w++ {
			writersWG.Add(1)
			go func() {
				defer writersWG.Done()
				for total.Add(1) <= iters {
					for {
						c0, c1 := Load(p)
						if ok, _, _ := CompareAndSwap(p, c0, c1, c0+1, c1+1); ok {
							break
						}
					}
				}
			}()
		}
		writersWG.Wait()
		stop.Store(true)
		readers.Wait()
		if torn.Load() != 0 {
			t.Fatalf("observed %d torn pair reads", torn.Load())
		}
		if p[0] != p[1] {
			t.Fatalf("final pair torn: (%d,%d)", p[0], p[1])
		}
		if p[0] < iters {
			t.Fatalf("final count %d, want >= %d", p[0], iters)
		}
	})
}

// TestCASContention verifies that exactly one of N racing CASes from the
// same expected value wins.
func TestCASContention(t *testing.T) {
	eachPath(t, func(t *testing.T) {
		for round := 0; round < 200; round++ {
			p := alignedPair(t)
			p[0], p[1] = 1, 1
			const racers = 8
			var wins atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < racers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if ok, _, _ := CompareAndSwap(p, 1, 1, uint64(100+i), 2); ok {
						wins.Add(1)
					}
				}(i)
			}
			wg.Wait()
			if wins.Load() != 1 {
				t.Fatalf("round %d: %d winners, want 1", round, wins.Load())
			}
			if p[1] != 2 || p[0] < 100 || p[0] >= 100+racers {
				t.Fatalf("round %d: unexpected final value (%d,%d)", round, p[0], p[1])
			}
		}
	})
}

func BenchmarkCASNative(b *testing.B) {
	if !Native() {
		b.Skip("no native DWCAS")
	}
	p := alignedPair(b)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c0, c1 := Load(p)
			CompareAndSwap(p, c0, c1, c0+1, c1+1)
		}
	})
}

func BenchmarkCASFallback(b *testing.B) {
	SetFallback(true)
	defer SetFallback(false)
	p := alignedPair(b)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c0, c1 := Load(p)
			CompareAndSwap(p, c0, c1, c0+1, c1+1)
		}
	})
}
