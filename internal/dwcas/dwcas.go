// Package dwcas provides a double-word (128-bit) compare-and-swap and an
// atomic 128-bit load over a pair of adjacent uint64 words.
//
// Mirror (PLDI 2021, §4.1.2) relies on a hardware DWCAS instruction to
// update a value and its sequence number atomically. On amd64 this package
// uses the real CMPXCHG16B instruction via a small assembly routine, so the
// lock-freedom of the transformation is preserved end to end. On other
// platforms (or when forced with SetFallback) a striped seqlock emulation is
// used; the emulation is linearizable, so the algorithms layered above it
// behave identically, at the cost of lock-freedom inside the primitive
// itself — exactly the trade made when simulating a missing instruction.
//
// All addresses passed to this package must be 16-byte aligned. The
// allocator in internal/palloc guarantees this for every cell it hands out.
package dwcas

import (
	"sync/atomic"
	"unsafe"
)

// stripeCount is the number of seqlock stripes used by the fallback
// implementation. It must be a power of two. 4096 stripes keeps the
// probability of false contention low for realistic cell counts while the
// table stays small (32 KiB).
const stripeCount = 4096

// stripes holds one seqlock generation counter per stripe. A generation is
// odd while a writer is mid-update. Padding avoids false sharing between
// adjacent stripes.
var stripes [stripeCount]struct {
	gen atomic.Uint64
	_   [56]byte
}

// forceFallback routes all operations through the seqlock emulation even on
// platforms with a native DWCAS. Tests use it to cover both paths.
var forceFallback atomic.Bool

// SetFallback forces (or stops forcing) the portable seqlock emulation.
// It exists so the emulation can be exercised on amd64; flipping it while
// cells are being accessed concurrently is not supported.
func SetFallback(on bool) { forceFallback.Store(on) }

// Native reports whether the running platform executes DWCAS with a real
// hardware instruction (and the fallback is not being forced).
func Native() bool { return haveNative && !forceFallback.Load() }

func stripeFor(addr *[2]uint64) *atomic.Uint64 {
	// Mix the address bits so that adjacent cells land on different
	// stripes; cells are 16-byte aligned, so the low 4 bits carry no
	// information.
	h := uintptr(unsafe.Pointer(addr)) >> 4
	h ^= h >> 13
	return &stripes[h&(stripeCount-1)].gen
}

// Aligned reports whether addr satisfies the 16-byte alignment requirement.
func Aligned(addr *[2]uint64) bool {
	return uintptr(unsafe.Pointer(addr))&15 == 0
}

// CompareAndSwap atomically compares the 128-bit value at addr with
// (old0, old1) and, if equal, replaces it with (new0, new1). It returns
// whether the swap happened together with the value observed at addr — the
// previous value on failure, (old0, old1) on success. The observed value is
// what Figure 4 of the paper calls "before" after a failed DWCAS.
func CompareAndSwap(addr *[2]uint64, old0, old1, new0, new1 uint64) (swapped bool, cur0, cur1 uint64) {
	if Native() {
		return cas16(addr, old0, old1, new0, new1)
	}
	return casFallback(addr, old0, old1, new0, new1)
}

// Load atomically reads the 128-bit value at addr.
func Load(addr *[2]uint64) (v0, v1 uint64) {
	if Native() {
		return load16(addr)
	}
	return loadFallback(addr)
}

// Store atomically writes the 128-bit value at addr unconditionally. It is
// implemented as a CAS loop; Mirror itself never needs a blind pair store,
// but recovery and tests do.
func Store(addr *[2]uint64, v0, v1 uint64) {
	for {
		c0, c1 := Load(addr)
		if ok, _, _ := CompareAndSwap(addr, c0, c1, v0, v1); ok {
			return
		}
	}
}

func casFallback(addr *[2]uint64, old0, old1, new0, new1 uint64) (bool, uint64, uint64) {
	gen := stripeFor(addr)
	for {
		g := gen.Load()
		if g&1 == 1 {
			continue // a writer holds the stripe
		}
		if !gen.CompareAndSwap(g, g+1) {
			continue
		}
		// Stripe acquired; generation is now odd.
		c0 := atomic.LoadUint64(&addr[0])
		c1 := atomic.LoadUint64(&addr[1])
		swapped := c0 == old0 && c1 == old1
		if swapped {
			atomic.StoreUint64(&addr[0], new0)
			atomic.StoreUint64(&addr[1], new1)
		}
		gen.Store(g + 2)
		return swapped, c0, c1
	}
}

func loadFallback(addr *[2]uint64) (uint64, uint64) {
	gen := stripeFor(addr)
	for {
		g := gen.Load()
		if g&1 == 1 {
			continue
		}
		v0 := atomic.LoadUint64(&addr[0])
		v1 := atomic.LoadUint64(&addr[1])
		if gen.Load() == g {
			return v0, v1
		}
	}
}
