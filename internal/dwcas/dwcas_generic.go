//go:build !amd64

package dwcas

// haveNative is false on platforms without a wired-up DWCAS instruction;
// the striped seqlock emulation is used instead.
const haveNative = false

func cas16(addr *[2]uint64, old0, old1, new0, new1 uint64) (bool, uint64, uint64) {
	return casFallback(addr, old0, old1, new0, new1)
}

func load16(addr *[2]uint64) (uint64, uint64) {
	return loadFallback(addr)
}
