package cmapkv_test

import (
	"testing"

	"mirror/internal/cmapkv"
	"mirror/internal/structures/settest"
)

// TestConformance runs the shared settest KV battery — the same
// sequential/concurrent/crash+recover cycle the engine-backed sets get —
// against the lock-based Cmap adapter.
func TestConformance(t *testing.T) {
	settest.RunKV(t, func() settest.KVTarget {
		m := cmapkv.New(cmapkv.Config{Words: 1 << 21, Buckets: 64, Track: true})
		return settest.KVTarget{
			NewWorker: func() (func(k, v uint64) bool, func(k uint64) bool, func(k uint64) (uint64, bool)) {
				c := m.NewCtx()
				return func(k, v uint64) bool { return m.Put(c, k, v) },
					func(k uint64) bool { return m.Delete(c, k) },
					func(k uint64) (uint64, bool) { return m.Get(c, k) }
			},
			Len:     m.Len,
			Crash:   m.Crash,
			Recover: m.Recover,
		}
	})
}

// TestConformanceSingleBucket forces every key into one chain, which
// maximizes link traffic through the persist-before-link ordering.
func TestConformanceSingleBucket(t *testing.T) {
	settest.RunKV(t, func() settest.KVTarget {
		m := cmapkv.New(cmapkv.Config{Words: 1 << 21, Buckets: 1, Track: true})
		return settest.KVTarget{
			NewWorker: func() (func(k, v uint64) bool, func(k uint64) bool, func(k uint64) (uint64, bool)) {
				c := m.NewCtx()
				return func(k, v uint64) bool { return m.Put(c, k, v) },
					func(k uint64) bool { return m.Delete(c, k) },
					func(k uint64) (uint64, bool) { return m.Get(c, k) }
			},
			Len:     m.Len,
			Crash:   m.Crash,
			Recover: m.Recover,
		}
	})
}
