package cmapkv

import (
	"math/rand"
	"sync"
	"testing"

	"mirror/internal/pmem"
)

func newTestMap() *Map {
	return New(Config{Words: 1 << 20, Buckets: 64, Track: true})
}

func TestPutGetDelete(t *testing.T) {
	m := newTestMap()
	c := m.NewCtx()
	if !m.Put(c, 1, 10) {
		t.Error("first Put should report new")
	}
	if m.Put(c, 1, 11) {
		t.Error("second Put should report overwrite")
	}
	if v, ok := m.Get(c, 1); !ok || v != 11 {
		t.Errorf("Get = (%d,%v), want (11,true)", v, ok)
	}
	if !m.Delete(c, 1) || m.Contains(c, 1) || m.Delete(c, 1) {
		t.Error("delete semantics broken")
	}
}

func TestModelEquivalence(t *testing.T) {
	m := newTestMap()
	c := m.NewCtx()
	rng := rand.New(rand.NewSource(3))
	model := make(map[uint64]uint64)
	for i := 0; i < 5000; i++ {
		key := uint64(rng.Intn(400) + 1)
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64()
			m.Put(c, key, val)
			model[key] = val
		case 1:
			_, present := model[key]
			if got := m.Delete(c, key); got != present {
				t.Fatalf("Delete(%d) = %v, want %v", key, got, present)
			}
			delete(model, key)
		default:
			want, present := model[key]
			got, ok := m.Get(c, key)
			if ok != present || (ok && got != want) {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,%v)", key, got, ok, want, present)
			}
		}
	}
	if m.Len() != len(model) {
		t.Errorf("Len = %d, want %d", m.Len(), len(model))
	}
}

func TestConcurrentPutGet(t *testing.T) {
	m := New(Config{Words: 1 << 21, Buckets: 256, Track: true})
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.NewCtx()
			base := uint64(w*per + 1)
			for i := uint64(0); i < per; i++ {
				m.Put(c, base+i, base+i)
			}
			for i := uint64(0); i < per; i++ {
				if v, ok := m.Get(c, base+i); !ok || v != base+i {
					t.Errorf("Get(%d) = (%d,%v)", base+i, v, ok)
					return
				}
			}
			for i := uint64(0); i < per; i += 2 {
				m.Delete(c, base+i)
			}
		}(w)
	}
	wg.Wait()
	c := m.NewCtx()
	for key := uint64(1); key <= workers*per; key++ {
		want := (key-1)%2 == 1
		if got := m.Contains(c, key); got != want {
			t.Fatalf("key %d: %v, want %v", key, got, want)
		}
	}
}

func TestQuiescedCrashRecovery(t *testing.T) {
	m := newTestMap()
	c := m.NewCtx()
	rng := rand.New(rand.NewSource(7))
	model := make(map[uint64]uint64)
	for i := 0; i < 3000; i++ {
		key := uint64(rng.Intn(300) + 1)
		if rng.Intn(3) > 0 {
			val := rng.Uint64() >> 1
			m.Put(c, key, val)
			model[key] = val
		} else {
			m.Delete(c, key)
			delete(model, key)
		}
	}
	for _, policy := range []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom} {
		m.Crash(policy, rng)
		m.Recover()
		c = m.NewCtx()
		for key := uint64(1); key <= 300; key++ {
			want, present := model[key]
			got, ok := m.Get(c, key)
			if ok != present || (ok && got != want) {
				t.Fatalf("policy %v: key %d = (%d,%v), want (%d,%v)", policy, key, got, ok, want, present)
			}
		}
		if !m.Put(c, 5000, 1) || !m.Delete(c, 5000) {
			t.Fatal("map not operational after recovery")
		}
		// Keep the model in sync (Put/Delete of 5000 cancel out).
	}
}

func TestCrashMidWorkload(t *testing.T) {
	m := New(Config{Words: 1 << 21, Buckets: 256, Track: true})
	rng := rand.New(rand.NewSource(13))
	const workers = 4
	completed := make([]map[uint64]uint64, workers) // key -> value, deleted = absent
	inflight := make([]uint64, workers)
	var wg sync.WaitGroup
	go func() {
		for i := 0; i < 100000; i++ {
		}
		m.Freeze()
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			c := m.NewCtx()
			lrng := rand.New(rand.NewSource(int64(w)))
			completed[w] = make(map[uint64]uint64)
			base := uint64(w*64 + 1)
			for i := 0; i < 200000; i++ {
				key := base + uint64(lrng.Intn(64))
				inflight[w] = key
				if lrng.Intn(2) == 0 {
					val := lrng.Uint64() >> 1
					m.Put(c, key, val)
					completed[w][key] = val
				} else {
					m.Delete(c, key)
					delete(completed[w], key)
				}
				inflight[w] = 0
			}
		}(w)
	}
	wg.Wait()
	m.Crash(pmem.CrashRandom, rng)
	m.Recover()
	c := m.NewCtx()
	for w := 0; w < workers; w++ {
		base := uint64(w*64 + 1)
		for key := base; key < base+64; key++ {
			if key == inflight[w] {
				continue
			}
			want, present := completed[w][key]
			got, ok := m.Get(c, key)
			if ok != present || (ok && got != want) {
				t.Fatalf("worker %d key %d: (%d,%v), want (%d,%v)", w, key, got, ok, want, present)
			}
		}
	}
}
