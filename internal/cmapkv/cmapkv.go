// Package cmapkv implements a lock-based persistent concurrent hash map in
// the style of Intel pmemkv's Cmap engine, the lock-based competitor of
// §6.2.7 (Figures 6(m) and 6(n)).
//
// The map lives entirely on NVMM: the bucket array and the chain links are
// persistent, so recovery is a simple trace over the buckets with no
// rebuild of contents. Each bucket is guarded by a reader-writer lock;
// updates persist their writes in unlink-safe order (content before link,
// link before free) with a flush+fence at each step, and hold the lock
// until the final fence so completed operations are durable. The locks
// themselves are volatile — after a crash they simply reinitialize — but
// lock-based updates serialize per bucket, which is exactly the scalability
// handicap the paper measures against Mirror.
package cmapkv

import (
	"math/rand"
	"sync"

	"mirror/internal/palloc"
	"mirror/internal/pmem"
)

// Node layout (4 words).
const (
	fKey  = 0
	fVal  = 1
	fNext = 2
	fSize = 4
)

// bucketBase is the device offset of the persistent bucket array.
const bucketBase = 8

// Config describes a Map.
type Config struct {
	Words   int  // device capacity in words
	Buckets int  // power of two
	Latency bool // apply the NVMM latency model
	Track   bool // maintain media (crash tests)
}

// Map is the lock-based persistent hash map.
type Map struct {
	dev     *pmem.Device
	buckets int
	shift   uint
	locks   []sync.RWMutex

	mu    sync.Mutex
	alloc *palloc.Allocator
}

// Ctx is a per-thread context.
type Ctx struct {
	cache *palloc.Cache
	fs    pmem.FlushSet
}

// New creates a map, or adopts the persistent image if the device already
// holds one (recovery constructs a fresh Map over a crashed device).
func New(cfg Config) *Map {
	if cfg.Words == 0 {
		cfg.Words = 1 << 20
	}
	if cfg.Buckets <= 0 || cfg.Buckets&(cfg.Buckets-1) != 0 {
		panic("cmapkv: bucket count must be a positive power of two")
	}
	model := pmem.NoLatency()
	if cfg.Latency {
		model = pmem.NVMMModel()
	}
	m := &Map{
		dev: pmem.New(pmem.Config{
			Name: "Cmap", Words: cfg.Words,
			Persistent: true, Track: cfg.Track, Model: model,
		}),
		buckets: cfg.Buckets,
		locks:   make([]sync.RWMutex, cfg.Buckets),
	}
	for m.shift = 64; 1<<(64-m.shift) != uint64(cfg.Buckets); m.shift-- {
	}
	base := (uint64(bucketBase+cfg.Buckets) + palloc.AlignWords - 1) &^ (palloc.AlignWords - 1)
	m.alloc = palloc.New(palloc.Config{Base: base, End: uint64(m.dev.Size())})
	// Persist the empty bucket array.
	m.dev.PersistRange(bucketBase, cfg.Buckets)
	return m
}

// NewCtx creates a per-thread context.
func (m *Map) NewCtx() *Ctx {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Lock-based structure: objects are freed immediately under the
	// bucket lock, so the reclaimer exists only to satisfy the cache.
	return &Ctx{cache: palloc.NewCache(m.alloc, palloc.NewReclaimer())}
}

func (m *Map) bucketOf(key uint64) int {
	return int((key * 11400714819323198485) >> m.shift)
}

func (m *Map) slot(b int) uint64 { return uint64(bucketBase + b) }

// persist flushes one location and fences.
func (m *Map) persist(c *Ctx, off uint64) {
	m.dev.Flush(&c.fs, off)
	m.dev.Fence(&c.fs)
}

// findLocked walks a chain under its lock, returning the slot referencing
// the node with the key and the node itself (0 if absent).
func (m *Map) findLocked(slot uint64, key uint64) (predSlot, node uint64) {
	predSlot = slot
	node = m.dev.Load(predSlot)
	for node != 0 {
		if m.dev.Load(node+fKey) == key {
			return predSlot, node
		}
		predSlot = node + fNext
		node = m.dev.Load(predSlot)
	}
	return predSlot, 0
}

// Put inserts or overwrites key's value (pmemkv semantics). It reports
// whether the key was newly inserted.
func (m *Map) Put(c *Ctx, key, val uint64) bool {
	b := m.bucketOf(key)
	m.locks[b].Lock()
	defer m.locks[b].Unlock()
	slot := m.slot(b)
	_, node := m.findLocked(slot, key)
	if node != 0 {
		m.dev.Store(node+fVal, val)
		m.persist(c, node+fVal)
		return false
	}
	node = c.cache.Alloc(fSize)
	head := m.dev.Load(slot)
	m.dev.Store(node+fKey, key)
	m.dev.Store(node+fVal, val)
	m.dev.Store(node+fNext, head)
	m.persist(c, node) // content durable before the link
	m.dev.Store(slot, node)
	m.persist(c, slot) // link durable before the operation returns
	return true
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(c *Ctx, key uint64) bool {
	b := m.bucketOf(key)
	m.locks[b].Lock()
	defer m.locks[b].Unlock()
	predSlot, node := m.findLocked(m.slot(b), key)
	if node == 0 {
		return false
	}
	m.dev.Store(predSlot, m.dev.Load(node+fNext))
	m.persist(c, predSlot) // unlink durable before the node is reused
	c.cache.Free(node, fSize)
	return true
}

// Get returns the value stored for key.
func (m *Map) Get(c *Ctx, key uint64) (uint64, bool) {
	b := m.bucketOf(key)
	m.locks[b].RLock()
	defer m.locks[b].RUnlock()
	_, node := m.findLocked(m.slot(b), key)
	if node == 0 {
		return 0, false
	}
	return m.dev.Load(node + fVal), true
}

// Contains reports whether key is present.
func (m *Map) Contains(c *Ctx, key uint64) bool {
	_, ok := m.Get(c, key)
	return ok
}

// Len counts entries (quiesced use only).
func (m *Map) Len() int {
	n := 0
	for b := 0; b < m.buckets; b++ {
		node := m.dev.ReadRaw(m.slot(b))
		for node != 0 {
			n++
			node = m.dev.ReadRaw(node + fNext)
		}
	}
	return n
}

// Freeze unwinds in-flight operations for a crash.
func (m *Map) Freeze() { m.dev.Freeze() }

// Crash simulates a power failure.
func (m *Map) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	m.dev.Freeze()
	m.dev.Crash(policy, rng)
}

// Recover rebuilds the volatile allocator metadata by tracing the
// persistent buckets; the map contents need no reconstruction because all
// links are persistent.
func (m *Map) Recover() {
	var extents []palloc.Extent
	for b := 0; b < m.buckets; b++ {
		node := m.dev.ReadRaw(m.slot(b))
		for node != 0 {
			extents = append(extents, palloc.Extent{Off: node, Words: fSize})
			node = m.dev.ReadRaw(node + fNext)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alloc.Rebuild(extents)
	m.locks = make([]sync.RWMutex, m.buckets)
}

// Counters reports cumulative flushes and fences.
func (m *Map) Counters() (uint64, uint64) { return m.dev.Counters() }
