package server

import (
	"bufio"
	"errors"
	"io"
	"net"

	"mirror/internal/wire"
)

// Client is a synchronous wire-protocol client: one connection, one client
// id, one outstanding operation (the descriptor-slot contract). It tracks
// the per-client sequence number; after a reconnect, restore it with
// SetSeq before resolving or replaying the cut operation.
//
// Not safe for concurrent use — the serving tier's concurrency unit is many
// clients, not many goroutines on one client.
type Client struct {
	nc   net.Conn
	rd   *bufio.Reader
	id   uint32
	seq  uint64
	wbuf []byte
	rbuf []byte
}

// Dial connects to a mirrord server as the given client id.
func Dial(addr string, id uint32) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, rd: bufio.NewReader(nc), id: id, rbuf: make([]byte, 64)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// ID returns the client id.
func (c *Client) ID() uint32 { return c.id }

// Seq returns the sequence number of the most recently issued mutating
// operation (0 before the first).
func (c *Client) Seq() uint64 { return c.seq }

// SetSeq restores the sequence counter after a reconnect, so the next
// mutation continues the per-client strictly-increasing series.
func (c *Client) SetSeq(seq uint64) { c.seq = seq }

// Do sends one request frame and reads its response. A StatusError response
// is returned as a *wire.ProtocolError (the server closes the connection
// after sending one).
func (c *Client) Do(req wire.Request) (wire.Response, error) {
	c.wbuf = wire.AppendRequest(c.wbuf[:0], req)
	if _, err := c.nc.Write(c.wbuf); err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.ReadResponse(c.rd, c.rbuf)
	if err != nil {
		return wire.Response{}, err
	}
	if resp.Status == wire.StatusError {
		return resp, &wire.ProtocolError{Reason: resp.Err}
	}
	return resp, nil
}

// mutate issues op with the next sequence number.
func (c *Client) mutate(op wire.Op, key, val uint64) (wire.Response, error) {
	c.seq++
	return c.Do(wire.Request{Op: op, Client: c.id, Seq: c.seq, Key: key, Val: val})
}

// Insert adds key→val to the served set.
func (c *Client) Insert(key, val uint64) (bool, error) {
	r, err := c.mutate(wire.OpInsert, key, val)
	return r.Result, err
}

// Delete removes key from the served set.
func (c *Client) Delete(key uint64) (bool, error) {
	r, err := c.mutate(wire.OpDelete, key, 0)
	return r.Result, err
}

// Get looks key up in the served set.
func (c *Client) Get(key uint64) (val uint64, ok bool, err error) {
	r, err := c.Do(wire.Request{Op: wire.OpGet, Client: c.id, Key: key})
	return r.Rval, r.Result, err
}

// Enqueue appends v to the served queue.
func (c *Client) Enqueue(v uint64) error {
	_, err := c.mutate(wire.OpEnqueue, 0, v)
	return err
}

// Dequeue removes the oldest element of the served queue.
func (c *Client) Dequeue() (v uint64, ok bool, err error) {
	r, err := c.mutate(wire.OpDequeue, 0, 0)
	return r.Rval, r.Result, err
}

// Detect asks the server for the durable fate of this client's seq.
func (c *Client) Detect(seq uint64) (wire.Response, error) {
	return c.Do(wire.Request{Op: wire.OpDetect, Client: c.id, Seq: seq})
}

// Replay re-sends a mutating frame with an explicit (already consumed)
// sequence number — the reconnect path resolving a cut operation. The
// client's own counter is advanced past seq if behind.
func (c *Client) Replay(op wire.Op, seq, key, val uint64) (wire.Response, error) {
	if c.seq < seq {
		c.seq = seq
	}
	return c.Do(wire.Request{Op: op, Client: c.id, Seq: seq, Key: key, Val: val})
}

// ErrClosed reports whether err looks like the peer vanishing mid-exchange —
// the expected outcome of a server kill: a clean EOF, a reset, or a framing
// error from a half-written frame.
func ErrClosed(err error) bool {
	if err == nil {
		return false
	}
	var pe *wire.ProtocolError
	var oe *net.OpError
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.As(err, &oe) || errors.As(err, &pe)
}
