package server

import (
	"bufio"
	"errors"
	"io"
	"net"

	"mirror/internal/wire"
)

// Client is a wire-protocol client: one connection, one client id. It
// tracks the per-client sequence number; after a reconnect, restore it
// with SetSeq before resolving or replaying cut operations.
//
// By default it is synchronous — one outstanding operation. SetPipeline
// negotiates a deeper window with the server (bounded by the server's
// descriptor-ring depth), after which Submit keeps up to that many
// mutating frames in flight; responses arrive in issue order (the server
// preserves per-client FIFO) and every unacknowledged frame stays
// resolvable via DETECT after a crash.
//
// Not safe for concurrent use — the serving tier's concurrency unit is many
// clients, not many goroutines on one client.
type Client struct {
	nc     net.Conn
	rd     *bufio.Reader
	wr     *bufio.Writer
	id     uint32
	seq    uint64
	window int
	// inflight is the FIFO of submitted-but-unacknowledged frames,
	// oldest first.
	inflight []wire.Request
	wbuf     []byte
	rbuf     []byte
}

// Dial connects to a mirrord server as the given client id.
func Dial(addr string, id uint32) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		nc: nc, rd: bufio.NewReader(nc), wr: bufio.NewWriter(nc),
		id: id, window: 1, rbuf: make([]byte, 64),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// ID returns the client id.
func (c *Client) ID() uint32 { return c.id }

// Seq returns the sequence number of the most recently issued mutating
// operation (0 before the first).
func (c *Client) Seq() uint64 { return c.seq }

// SetSeq restores the sequence counter after a reconnect, so the next
// mutation continues the per-client strictly-increasing series.
func (c *Client) SetSeq(seq uint64) { c.seq = seq }

// Do sends one request frame and reads its response, synchronously. Any
// in-flight pipelined frames are drained first, so the exchange observes
// program order. A StatusError response is returned as a
// *wire.ProtocolError (the server closes the connection after sending one).
func (c *Client) Do(req wire.Request) (wire.Response, error) {
	if len(c.inflight) > 0 {
		if _, err := c.Drain(); err != nil {
			return wire.Response{}, err
		}
	}
	c.wbuf = wire.AppendRequest(c.wbuf[:0], req)
	if _, err := c.wr.Write(c.wbuf); err != nil {
		return wire.Response{}, err
	}
	if err := c.wr.Flush(); err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.ReadResponse(c.rd, c.rbuf)
	if err != nil {
		return wire.Response{}, err
	}
	if resp.Status == wire.StatusError {
		return resp, &wire.ProtocolError{Reason: resp.Err}
	}
	return resp, nil
}

// SetPipeline negotiates a pipeline window of up to w mutating frames via
// HELLO and returns the granted depth (min of w and the server's
// descriptor-ring size). Depth 1 restores synchronous operation.
func (c *Client) SetPipeline(w int) (int, error) {
	if w < 1 {
		return 0, &wire.ProtocolError{Reason: "pipeline window must be >= 1"}
	}
	resp, err := c.Do(wire.Request{Op: wire.OpHello, Client: c.id, Val: uint64(w)})
	if err != nil {
		return 0, err
	}
	if resp.Rval < 1 {
		return 0, &wire.ProtocolError{Reason: "server granted a zero window"}
	}
	c.window = int(resp.Rval)
	return c.window, nil
}

// Window returns the granted pipeline depth (1 before SetPipeline).
func (c *Client) Window() int { return c.window }

// Submit issues one frame asynchronously — a mutating op (with the next
// sequence number) or a GET/SCAN (seq 0; the server still answers in FIFO
// order). If the window is full it first completes the oldest in-flight
// frame; any responses so completed are returned, oldest first (they
// correspond FIFO to earlier Submit calls). The submitted frame itself
// completes on a later Submit or Drain. All in-flight frames count
// against the window, so mutating frames can never outnumber the ring.
func (c *Client) Submit(op wire.Op, key, val, arg uint64) ([]wire.Response, error) {
	if op == wire.OpHello || op == wire.OpDetect {
		return nil, &wire.ProtocolError{Reason: "Submit cannot pipeline " + op.String()}
	}
	var done []wire.Response
	for len(c.inflight) >= c.window {
		r, err := c.complete()
		if err != nil {
			return done, err
		}
		done = append(done, r)
	}
	var seq uint64
	if op.Mutating() {
		c.seq++
		seq = c.seq
	}
	req := wire.Request{Op: op, Client: c.id, Seq: seq, Key: key, Val: val, Arg: arg}
	c.wbuf = wire.AppendRequest(c.wbuf[:0], req)
	if _, err := c.wr.Write(c.wbuf); err != nil {
		return done, err
	}
	c.inflight = append(c.inflight, req)
	return done, nil
}

// Drain completes every in-flight frame and returns their responses in
// issue order.
func (c *Client) Drain() ([]wire.Response, error) {
	done := make([]wire.Response, 0, len(c.inflight))
	for len(c.inflight) > 0 {
		r, err := c.complete()
		if err != nil {
			return done, err
		}
		done = append(done, r)
	}
	return done, nil
}

// InFlight snapshots the submitted-but-unacknowledged frames, oldest
// first — after a lost connection these are exactly the operations to
// resolve via DETECT or replay.
func (c *Client) InFlight() []wire.Request {
	return append([]wire.Request(nil), c.inflight...)
}

// complete flushes buffered writes and reads the oldest in-flight
// frame's response.
func (c *Client) complete() (wire.Response, error) {
	if err := c.wr.Flush(); err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.ReadResponse(c.rd, c.rbuf)
	if err != nil {
		return wire.Response{}, err
	}
	c.inflight = c.inflight[1:]
	if resp.Status == wire.StatusError {
		return resp, &wire.ProtocolError{Reason: resp.Err}
	}
	return resp, nil
}

// mutate issues op with the next sequence number.
func (c *Client) mutate(op wire.Op, key, val uint64) (wire.Response, error) {
	c.seq++
	return c.Do(wire.Request{Op: op, Client: c.id, Seq: c.seq, Key: key, Val: val})
}

// Insert adds key→val to the served set.
func (c *Client) Insert(key, val uint64) (bool, error) {
	r, err := c.mutate(wire.OpInsert, key, val)
	return r.Result, err
}

// Delete removes key from the served set.
func (c *Client) Delete(key uint64) (bool, error) {
	r, err := c.mutate(wire.OpDelete, key, 0)
	return r.Result, err
}

// Get looks key up in the served set.
func (c *Client) Get(key uint64) (val uint64, ok bool, err error) {
	r, err := c.Do(wire.Request{Op: wire.OpGet, Client: c.id, Key: key})
	return r.Rval, r.Result, err
}

// Enqueue appends v to the served queue.
func (c *Client) Enqueue(v uint64) error {
	_, err := c.mutate(wire.OpEnqueue, 0, v)
	return err
}

// Dequeue removes the oldest element of the served queue.
func (c *Client) Dequeue() (v uint64, ok bool, err error) {
	r, err := c.mutate(wire.OpDequeue, 0, 0)
	return r.Rval, r.Result, err
}

// Scan returns up to limit present pairs with key >= start, in ascending
// key order (weakly consistent, like every lock-free range scan here).
func (c *Client) Scan(start uint64, limit int) ([]wire.KV, error) {
	r, err := c.Do(wire.Request{Op: wire.OpScan, Client: c.id, Key: start, Val: uint64(limit)})
	return r.Pairs, err
}

// RMW atomically replaces key's value with repl iff it currently holds
// expect (compare-and-set over the wire).
func (c *Client) RMW(key, expect, repl uint64) (bool, error) {
	c.seq++
	r, err := c.Do(wire.Request{Op: wire.OpRMW, Client: c.id, Seq: c.seq, Key: key, Val: expect, Arg: repl})
	return r.Result, err
}

// Detect asks the server for the durable fate of this client's seq.
func (c *Client) Detect(seq uint64) (wire.Response, error) {
	return c.Do(wire.Request{Op: wire.OpDetect, Client: c.id, Seq: seq})
}

// Replay re-sends a mutating frame with an explicit (already consumed)
// sequence number — the reconnect path resolving a cut operation. The
// client's own counter is advanced past seq if behind.
func (c *Client) Replay(op wire.Op, seq, key, val uint64) (wire.Response, error) {
	if c.seq < seq {
		c.seq = seq
	}
	return c.Do(wire.Request{Op: op, Client: c.id, Seq: seq, Key: key, Val: val})
}

// ErrClosed reports whether err looks like the peer vanishing mid-exchange —
// the expected outcome of a server kill: a clean EOF, a reset, or a framing
// error from a half-written frame.
func ErrClosed(err error) bool {
	if err == nil {
		return false
	}
	var pe *wire.ProtocolError
	var oe *net.OpError
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.As(err, &oe) || errors.As(err, &pe)
}
