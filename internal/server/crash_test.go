package server

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mirror/internal/engine"
	"mirror/internal/wire"
)

// The crash battery re-executes this test binary as the server process:
// TestMain sees the env var and runs a mirrord-equivalent server instead of
// the tests, so the parent can SIGKILL a real OS process mid-load and
// attach a second incarnation over the same media file.
func TestMain(m *testing.M) {
	if os.Getenv("MIRRORD_TEST_SERVER") != "" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

func helperMain() {
	kind, _ := strconv.Atoi(os.Getenv("MIRRORD_KIND"))
	s, err := New(Config{
		Kind:      engine.Kind(kind),
		Words:     1 << 21,
		Clients:   32,
		Workers:   2,
		MediaPath: os.Getenv("MIRRORD_MEDIA"),
		Combine:   os.Getenv("MIRRORD_COMBINE") != "",
	})
	if err != nil {
		fmt.Println("helper error:", err)
		os.Exit(1)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		fmt.Println("helper error:", err)
		os.Exit(1)
	}
	mode := "fresh"
	if s.Attached() {
		mode = "attached"
	}
	fmt.Printf("serving %s on %s\n", mode, s.Addr())
	select {} // run until killed
}

// helperProc is one server subprocess.
type helperProc struct {
	cmd  *exec.Cmd
	addr string
	mode string
}

func startHelper(t *testing.T, kind engine.Kind, media string, combine bool) *helperProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"MIRRORD_TEST_SERVER=1",
		"MIRRORD_KIND="+strconv.Itoa(int(kind)),
		"MIRRORD_MEDIA="+media,
	)
	if combine {
		cmd.Env = append(cmd.Env, "MIRRORD_COMBINE=1")
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatal("helper exited before announcing readiness")
		}
		fields := strings.Fields(line) // "serving <mode> on <addr>"
		if len(fields) != 4 || fields[0] != "serving" {
			t.Fatalf("unexpected helper line %q", line)
		}
		return &helperProc{cmd: cmd, addr: fields[3], mode: fields[1]}
	case <-time.After(20 * time.Second):
		t.Fatal("helper did not come up")
	}
	panic("unreachable")
}

func (h *helperProc) kill(t *testing.T) {
	t.Helper()
	if err := h.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	h.cmd.Wait()
}

// opRec journals one mutating operation a load client issued.
type opRec struct {
	op       wire.Op
	seq      uint64
	key, val uint64
	result   bool
	rval     uint64
	// resolved marks an operation whose ack was lost to the kill and whose
	// outcome came from DETECT or a replay; its result is exempt from the
	// model's prediction check (a replayed took-effect insert answers
	// false), but its state effect is exact.
	resolved bool
	// blind marks a resolved dequeue whose removed value is unknowable
	// (verdict Unknown, or Committed with the recorded rval overwritten);
	// it charges the conservation check's allowance instead.
	blind bool
}

// loadClient is one client id's journal across the kill.
type loadClient struct {
	id       uint32
	ops      []opRec // acknowledged (or resolved) in seq order
	inflight *opRec  // sent without an ack when the server died
	lastSeq  uint64
}

func (lc *loadClient) keyAt(i uint64) uint64 { return uint64(lc.id+1)<<32 | (i%64 + 1) }

// run drives random mutations until the connection dies (the kill) and
// journals every acknowledged operation.
func (lc *loadClient) run(addr string) error {
	c, err := Dial(addr, lc.id)
	if err != nil {
		return err
	}
	defer c.Close()
	state := uint64(lc.id)*0x9e3779b97f4a7c15 + 1
	var enqCounter uint64
	for i := uint64(0); ; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		rec := opRec{key: lc.keyAt(state)}
		switch {
		case state%100 < 35:
			rec.op, rec.val = wire.OpInsert, state|1
		case state%100 < 55:
			rec.op = wire.OpDelete
		case state%100 < 80:
			enqCounter++
			rec.op, rec.key, rec.val = wire.OpEnqueue, 0, uint64(lc.id+1)<<32|enqCounter
		default:
			rec.op, rec.key = wire.OpDequeue, 0
		}
		rec.seq = c.Seq() + 1
		lc.inflight = &rec
		lc.lastSeq = rec.seq
		resp, err := c.mutate(rec.op, rec.key, rec.val)
		if err != nil {
			return nil // the kill; rec stays in-flight
		}
		rec.result, rec.rval = resp.Result, resp.Rval
		lc.inflight = nil
		lc.ops = append(lc.ops, rec)
	}
}

// resolve reconnects after the restart and settles the in-flight operation
// through DETECT, replaying exactly the cases where replay is sound.
func (lc *loadClient) resolve(c *Client) error {
	c.SetSeq(lc.lastSeq)
	rec := lc.inflight
	if rec == nil {
		return nil
	}
	lc.inflight = nil
	d, err := c.Detect(rec.seq)
	if err != nil {
		return err
	}
	rec.resolved = true
	switch engine.Verdict(d.Verdict) {
	case engine.Committed:
		if d.Known {
			rec.result, rec.rval = d.Result, d.Rval
		} else if rec.op == wire.OpDequeue {
			rec.result, rec.blind = true, true
		} else {
			rec.result = true
		}
	case engine.NotCommitted:
		// Never took effect: the replay is the first execution.
		resp, err := c.Replay(rec.op, rec.seq, rec.key, rec.val)
		if err != nil {
			return err
		}
		rec.result, rec.rval = resp.Result, resp.Rval
	case engine.Unknown:
		switch rec.op {
		case wire.OpInsert, wire.OpDelete:
			// Idempotent in a per-client keyspace: re-execution converges
			// on the same state whichever fate the cut execution had.
			resp, err := c.Replay(rec.op, rec.seq, rec.key, rec.val)
			if err != nil {
				return err
			}
			rec.result, rec.rval = resp.Result, resp.Rval
		case wire.OpEnqueue:
			// May or may not be in the queue; the conservation check
			// carries it in the maybe set.
			rec.result = true
			rec.blind = true
		case wire.OpDequeue:
			// May have removed an unknowable value.
			rec.result, rec.blind = true, true
		}
	}
	lc.ops = append(lc.ops, *rec)
	return nil
}

// TestCrashKillBattery is the end-to-end kill -9 test: a server subprocess
// under mixed load is killed mid-flight, restarted over the same media
// file, and every client resolves its cut operation while the recovered
// state passes the set-model and queue-conservation invariants — on all
// four durable engines, plus fence combining on the Mirror engine.
func TestCrashKillBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess battery")
	}
	cases := []struct {
		name     string
		kind     engine.Kind
		combine  bool
		pipeline bool
	}{
		{"Izraelevitz", engine.Izraelevitz, false, false},
		{"NVTraverse", engine.NVTraverse, false, false},
		{"Mirror", engine.MirrorDRAM, false, false},
		{"MirrorNVMM", engine.MirrorNVMM, false, false},
		{"Mirror/combine", engine.MirrorDRAM, true, false},
		{"Mirror/pipelined/combine", engine.MirrorDRAM, true, true},
		{"MirrorNVMM/pipelined", engine.MirrorNVMM, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.pipeline {
				runCrashKillPipelined(t, tc.kind, tc.combine)
			} else {
				runCrashKill(t, tc.kind, tc.combine)
			}
		})
	}
}

func runCrashKill(t *testing.T, kind engine.Kind, combine bool) {
	media := filepath.Join(t.TempDir(), "media")
	h1 := startHelper(t, kind, media, combine)
	if h1.mode != "fresh" {
		t.Fatalf("first incarnation mode %q", h1.mode)
	}

	const nClients = 8
	clients := make([]*loadClient, nClients)
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := range clients {
		clients[i] = &loadClient{id: uint32(i)}
		wg.Add(1)
		go func(lc *loadClient) {
			defer wg.Done()
			errs <- lc.run(h1.addr)
		}(clients[i])
	}
	time.Sleep(150 * time.Millisecond) // let load build up, then pull the plug
	h1.kill(t)
	wg.Wait()
	for range clients {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	var total, inflight int
	for _, lc := range clients {
		total += len(lc.ops)
		if lc.inflight != nil {
			inflight++
		}
	}
	if total < nClients*10 {
		t.Fatalf("only %d acknowledged ops before the kill; load never ramped", total)
	}
	t.Logf("killed with %d acknowledged ops, %d clients in flight", total, inflight)

	// Second incarnation over the same image.
	h2 := startHelper(t, kind, media, combine)
	if h2.mode != "attached" {
		t.Fatalf("second incarnation mode %q, want attached", h2.mode)
	}

	// Resolve every cut operation.
	conns := make([]*Client, nClients)
	for i, lc := range clients {
		c, err := Dial(h2.addr, lc.id)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
		if err := lc.resolve(c); err != nil {
			t.Fatalf("client %d resolve: %v", lc.id, err)
		}
	}

	// Set invariant: replay each client's journal against an exact model
	// (client keyspaces are disjoint), checking every acknowledged result
	// was truthful, then compare the model against the served state.
	for i, lc := range clients {
		checkSetModel(t, lc.id, lc.ops, conns[i])
	}

	// Queue conservation: every certainly-enqueued value is dequeued,
	// still queued, or covered by a blind-dequeue allowance; nothing is
	// served twice and nothing appears from thin air.
	certain := map[uint64]bool{}
	maybe := map[uint64]bool{}
	taken := map[uint64]bool{}
	blindDeqs := 0
	for _, lc := range clients {
		for _, rec := range lc.ops {
			switch rec.op {
			case wire.OpEnqueue:
				if rec.blind {
					maybe[rec.val] = true
				} else {
					certain[rec.val] = true
				}
			case wire.OpDequeue:
				if rec.blind {
					blindDeqs++
				} else if rec.result {
					if taken[rec.rval] {
						t.Fatalf("value %d dequeued twice", rec.rval)
					}
					taken[rec.rval] = true
				}
			}
		}
	}
	drainer, err := Dial(h2.addr, nClients)
	if err != nil {
		t.Fatal(err)
	}
	defer drainer.Close()
	for {
		v, ok, err := drainer.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if taken[v] {
			t.Fatalf("value %d both dequeued and still queued", v)
		}
		taken[v] = true
	}
	missing := 0
	for v := range certain {
		if !taken[v] {
			missing++
		}
	}
	if missing > blindDeqs {
		t.Fatalf("%d acknowledged enqueues vanished, only %d blind dequeues to account for them",
			missing, blindDeqs)
	}
	for v := range taken {
		if !certain[v] && !maybe[v] {
			t.Fatalf("value %d came out of the queue but was never enqueued", v)
		}
	}
}

// checkSetModel replays one client's journal against an exact model of its
// private keyspace, checking every acknowledged result was truthful, then
// compares the model against the served state.
func checkSetModel(t *testing.T, id uint32, ops []opRec, c *Client) {
	t.Helper()
	model := map[uint64]uint64{}
	for _, rec := range ops {
		switch rec.op {
		case wire.OpInsert:
			_, present := model[rec.key]
			if !rec.resolved && rec.result == present {
				t.Fatalf("client %d seq %d: insert(%d) acked %v, model says %v",
					id, rec.seq, rec.key, rec.result, !present)
			}
			if !present {
				// A failed insert does not overwrite the held value.
				model[rec.key] = rec.val
			}
		case wire.OpDelete:
			_, present := model[rec.key]
			if !rec.resolved && rec.result != present {
				t.Fatalf("client %d seq %d: delete(%d) acked %v, model says %v",
					id, rec.seq, rec.key, rec.result, present)
			}
			delete(model, rec.key)
		}
	}
	for k := uint64(1); k <= 64; k++ {
		key := uint64(id+1)<<32 | k
		v, ok, err := c.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		wantV, want := model[key]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("client %d key %d: served %d,%v; model %d,%v",
				id, key, v, ok, wantV, want)
		}
	}
}

// pipeClient is one pipelined client id's journal across the kill: up to a
// full window of eight mutating frames may be unacknowledged when the
// server dies, and every one of them must resolve through the descriptor
// ring.
type pipeClient struct {
	id      uint32
	burst   int // if nonzero, submit exactly this many frames and stop
	ops     []opRec
	pending []opRec // submitted, unacknowledged, ascending seq
}

func (pc *pipeClient) keyAt(state uint64) uint64 { return uint64(pc.id+1)<<32 | (state%64 + 1) }

// run drives pipelined inserts and deletes until the connection dies,
// journaling acknowledged frames as their responses come back in FIFO
// order. A burst client instead flushes a partial window and then sits on
// it, dying with a partially-filled descriptor ring it never read a single
// response from.
func (pc *pipeClient) run(addr string) error {
	c, err := Dial(addr, pc.id)
	if err != nil {
		return err
	}
	defer c.Close()
	w, err := c.SetPipeline(8)
	if err != nil {
		return err
	}
	if w != 8 {
		return fmt.Errorf("client %d: granted window %d, want 8", pc.id, w)
	}
	pop := func(done []wire.Response) {
		for _, r := range done {
			rec := pc.pending[0]
			pc.pending = pc.pending[1:]
			rec.result, rec.rval = r.Result, r.Rval
			pc.ops = append(pc.ops, rec)
		}
	}
	// reconcile makes the client's own in-flight FIFO authoritative for
	// what is unacknowledged (a frame cut by the kill may never have been
	// written, in which case Submit did not register it).
	reconcile := func() {
		pc.pending = pc.pending[:0]
		for _, req := range c.InFlight() {
			pc.pending = append(pc.pending, opRec{op: req.Op, seq: req.Seq, key: req.Key, val: req.Val})
		}
	}
	state := uint64(pc.id)*0x9e3779b97f4a7c15 + 1
	for i := 0; ; i++ {
		if pc.burst > 0 && i == pc.burst {
			c.wr.Flush()
			time.Sleep(600 * time.Millisecond) // outlives the kill
			reconcile()
			return nil
		}
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		rec := opRec{key: pc.keyAt(state), seq: c.Seq() + 1}
		if state%100 < 60 {
			rec.op, rec.val = wire.OpInsert, state|1
		} else {
			rec.op = wire.OpDelete
		}
		done, err := c.Submit(rec.op, rec.key, rec.val, 0)
		pop(done)
		if err != nil {
			reconcile()
			return nil // the kill
		}
		pc.pending = append(pc.pending, rec)
	}
}

// resolve reconnects after the restart and settles every in-flight frame
// through DETECT, in issue order. Ring detect must answer Committed for a
// prefix of the window: frames execute in per-client FIFO order, and any
// durable later verdict proves every earlier seq committed (the ring's
// sibling-verdict inference), so a committed seq can never follow an
// uncommitted one. The suffix after the prefix is provably uncommitted or
// unknown and is replayed in the original order, which converges for
// inserts and deletes in a private keyspace.
func (pc *pipeClient) resolve(c *Client) error {
	if n := len(pc.pending); n > 0 {
		c.SetSeq(pc.pending[n-1].seq)
	} else if n := len(pc.ops); n > 0 {
		c.SetSeq(pc.ops[n-1].seq)
	}
	prefix := true
	for _, rec := range pc.pending {
		d, err := c.Detect(rec.seq)
		if err != nil {
			return err
		}
		rec.resolved = true
		switch engine.Verdict(d.Verdict) {
		case engine.Committed:
			if !prefix {
				return fmt.Errorf("client %d: seq %d committed after an earlier uncommitted seq", pc.id, rec.seq)
			}
			if d.Known {
				rec.result, rec.rval = d.Result, d.Rval
			} else {
				rec.result = true
			}
		default: // NotCommitted or Unknown: replay, in order
			prefix = false
			resp, err := c.Replay(rec.op, rec.seq, rec.key, rec.val)
			if err != nil {
				return err
			}
			rec.result, rec.rval = resp.Result, resp.Rval
		}
		pc.ops = append(pc.ops, rec)
	}
	pc.pending = nil
	return nil
}

// runCrashKillPipelined is the pipelined half of the battery: clients
// negotiate a window-8 pipeline, the server is killed with whole windows
// in flight, and after the restart every in-flight seq resolves through
// the descriptor ring — including client 0's, which dies holding a
// partially-filled ring.
func runCrashKillPipelined(t *testing.T, kind engine.Kind, combine bool) {
	media := filepath.Join(t.TempDir(), "media")
	h1 := startHelper(t, kind, media, combine)
	if h1.mode != "fresh" {
		t.Fatalf("first incarnation mode %q", h1.mode)
	}

	const nClients = 6
	clients := make([]*pipeClient, nClients)
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := range clients {
		clients[i] = &pipeClient{id: uint32(i)}
		if i == 0 {
			clients[i].burst = 3 // dies with a partially-filled ring
		}
		wg.Add(1)
		go func(pc *pipeClient) {
			defer wg.Done()
			errs <- pc.run(h1.addr)
		}(clients[i])
	}
	time.Sleep(150 * time.Millisecond) // let windows fill, then pull the plug
	h1.kill(t)
	wg.Wait()
	for range clients {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	var total, inflight, deepest int
	for _, pc := range clients {
		total += len(pc.ops)
		inflight += len(pc.pending)
		if len(pc.pending) > deepest {
			deepest = len(pc.pending)
		}
	}
	if total < 50 {
		t.Fatalf("only %d acknowledged ops before the kill; load never ramped", total)
	}
	if got := len(clients[0].pending); got != 3 {
		t.Fatalf("burst client died with %d frames in flight, want 3", got)
	}
	if deepest < 2 {
		t.Fatalf("no client died with a multi-entry ring (deepest window %d)", deepest)
	}
	t.Logf("killed with %d acknowledged ops, %d frames in flight (deepest window %d)",
		total, inflight, deepest)

	h2 := startHelper(t, kind, media, combine)
	if h2.mode != "attached" {
		t.Fatalf("second incarnation mode %q, want attached", h2.mode)
	}

	for _, pc := range clients {
		c, err := Dial(h2.addr, pc.id)
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.resolve(c); err != nil {
			c.Close()
			t.Fatalf("client %d resolve: %v", pc.id, err)
		}
		checkSetModel(t, pc.id, pc.ops, c)
		c.Close()
	}
}
