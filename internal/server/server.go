// Package server implements mirrord's serving tier: a TCP front end over
// one durable persistence engine, exposing a keyed ordered set (the
// lock-free skip list — ordered so SCAN is native) and a FIFO queue
// through the wire protocol of internal/wire.
//
// The interesting part is the write path. Every mutating frame carries the
// engine's detectability identity (client, seq), and the server runs it
// under the batched-verdict descriptor protocol: per-connection readers
// parse frames and route them to a worker goroutine chosen by client id, the
// worker executes a batch of operations from many clients with their
// verdicts deferred (engine.DetectBeginDeferred / DetectEndDeferred), and a
// single engine.DetectDrain then makes the whole batch durable — one
// trailing fence commits every client's operation — before any response is
// released. Cross-client fence batching turns k concurrent commits into one
// fence without weakening the contract: a client holds no acknowledgement
// until its operation is persistent, and after a crash the descriptor
// region resolves every unacknowledged frame via DETECT.
//
// Routing by client id (client mod workers) keeps each descriptor ring
// single-writer and keeps one client's frames in order, which the Detect
// truth table requires ("the entry moved a whole lap past seq" implies
// seq's response was released).
//
// Pipelining: each client owns a descriptor ring of Config.Ring entries,
// so it may keep up to Ring mutating frames in flight before reading
// responses (negotiated by HELLO, which returns the granted window). The
// worker's group-commit batcher then sees a full window from a single
// connection and drains it under one fence — depth replaces connection
// count as the source of batchable concurrency.
//
// With Config.MediaPath the engine's fenced image lives in a file-backed
// mapping, so the whole thing survives kill -9: a restarted server attaches
// to the image (engine.Config.Attach), replays recovery, and serves the
// pre-crash state. A sidecar meta file records the engine geometry; it is
// written only after a fresh initialization completes, so a crash during
// init leaves no meta and the next start wipes the partial image instead of
// attaching to it.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/skiplist"
	"mirror/internal/structures/queue"
	"mirror/internal/wire"
)

// Root fields used by the served structures. The skip list owns root
// field 0 (its head sentinel); the queue owns 4 and 5 (its head/tail pair).
const (
	tableRoot = 0
	queueRoot = 4
)

// Config describes a server instance.
type Config struct {
	// Kind selects the durable engine; New rejects non-durable kinds
	// (an acknowledgement from a volatile server would be a lie).
	Kind engine.Kind
	// Words sizes each engine device (default 1<<20).
	Words int
	// Ring is the per-client descriptor-ring depth — the maximum number of
	// mutating frames one client may have in flight (default
	// engine.DefaultDetectRing). HELLO grants min(requested, Ring).
	Ring int
	// Clients is the descriptor-ring count — the exclusive upper bound on
	// client ids the server accepts (default 64, max wire.MaxClients).
	Clients int
	// Workers is the number of batcher goroutines (default 2). Frames are
	// routed by client id modulo Workers.
	Workers int
	// MediaPath backs the engine's fenced image with a file so it survives
	// process death. Empty keeps the image in process memory (tests,
	// benchmarks). A sidecar file MediaPath+".meta" records the geometry.
	MediaPath string
	// Combine enables the engine's cross-operation fence combining.
	Combine bool
	// NoBatch is the ablation switch: drain and respond after every
	// operation instead of per batch, so each mutation pays its own fence.
	NoBatch bool
	// MaxBatch bounds operations drained under one fence (default 128).
	MaxBatch int
	// BatchWait is the group-commit window: after the first frame of a
	// batch arrives, the worker keeps collecting until the window closes
	// (or MaxBatch fills) before draining, so concurrently in-flight
	// clients land under one fence. It trades that much first-frame
	// latency for fences; zero means drain as soon as the channel is
	// momentarily empty. Default 25µs — under a loopback round trip.
	BatchWait time.Duration
}

func (c *Config) setDefaults() error {
	if !c.Kind.Durable() {
		return fmt.Errorf("server: engine kind %v is not durable", c.Kind)
	}
	if c.Words == 0 {
		c.Words = 1 << 20
	}
	if c.Ring == 0 {
		c.Ring = engine.DefaultDetectRing
	}
	if c.Ring < 1 {
		return fmt.Errorf("server: ring %d not positive", c.Ring)
	}
	if c.Clients == 0 {
		c.Clients = 64
	}
	if c.Clients < 1 || c.Clients > wire.MaxClients {
		return fmt.Errorf("server: clients %d outside [1, %d]", c.Clients, wire.MaxClients)
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.BatchWait == 0 {
		c.BatchWait = 25 * time.Microsecond
	}
	if c.NoBatch {
		c.BatchWait = 0
	}
	return nil
}

// meta is the sidecar record distinguishing a reattachable image from
// garbage. Every field participates in the engine's word layout, so a
// mismatch means the image cannot be interpreted.
type meta struct {
	Kind    int  `json:"kind"`
	Words   int  `json:"words"`
	Ring    int  `json:"ring"`
	Clients int  `json:"clients"`
	Combine bool `json:"combine"`
}

func metaPath(mediaPath string) string { return mediaPath + ".meta" }

// Stats is a snapshot of the server's serving counters plus the engine's
// persistence counters, for the fences-per-operation ablation.
type Stats struct {
	Ops       uint64 // frames executed (including GET and DETECT)
	Mutations uint64 // frames that ran a mutating operation body
	Replays   uint64 // mutating frames short-circuited by a committed descriptor
	Scans     uint64 // SCAN frames served
	Batches   uint64 // drain batches released
	Flushes   uint64 // engine cumulative flushes
	Fences    uint64 // engine cumulative fences
}

// Server is one mirrord instance.
type Server struct {
	cfg      Config
	e        engine.Engine
	table    *skiplist.SkipList
	q        *queue.Queue
	attached bool

	ln      net.Listener
	workers []*worker
	wg      sync.WaitGroup // accept loop + connection readers
	wwg     sync.WaitGroup // workers

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	ops       atomic.Uint64
	mutations atomic.Uint64
	replays   atomic.Uint64
	scans     atomic.Uint64
	batches   atomic.Uint64
}

// New builds the engine and its structures — attaching to an existing media
// image when the sidecar meta proves one is present and compatible — but
// does not listen yet.
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	want := meta{
		Kind: int(cfg.Kind), Words: cfg.Words, Ring: cfg.Ring,
		Clients: cfg.Clients, Combine: cfg.Combine,
	}
	attach := false
	if cfg.MediaPath != "" {
		raw, err := os.ReadFile(metaPath(cfg.MediaPath))
		switch {
		case err == nil:
			var have meta
			if json.Unmarshal(raw, &have) != nil || have != want {
				return nil, fmt.Errorf("server: media %s was written with a different configuration", cfg.MediaPath)
			}
			attach = true
		case errors.Is(err, os.ErrNotExist):
			// No meta: either a first start or a crash during init. Either
			// way the image (if any) is uninitialized garbage — wipe it.
			if err := os.Remove(cfg.MediaPath); err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, err
			}
		default:
			return nil, err
		}
	}
	e := engine.New(engine.Config{
		Kind:       cfg.Kind,
		Words:      cfg.Words,
		Track:      cfg.MediaPath != "",
		Clients:    cfg.Clients,
		DetectRing: cfg.Ring,
		Combine:    cfg.Combine,
		MediaPath:  cfg.MediaPath,
		Attach:     attach,
	})
	s := &Server{cfg: cfg, e: e, attached: attach, conns: make(map[*conn]struct{})}
	c := e.NewCtx()
	if attach {
		e.Recover(s.tracer())
	}
	// NewAt both adopts (attach: the roots are non-zero after recovery) and
	// initializes (fresh: it writes the root cells).
	s.table = skiplist.NewAt(e, c, tableRoot)
	s.q = queue.NewAt(e, c, queueRoot)
	e.Drain(c)
	if attach {
		if err := s.verify(c); err != nil {
			return nil, err
		}
	} else if cfg.MediaPath != "" {
		// Initialization is durable (Drain above); only now may a future
		// incarnation trust the image.
		raw, err := json.Marshal(want)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(metaPath(cfg.MediaPath), raw, 0o644); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, &worker{
			s: s, c: e.NewCtx(), ch: make(chan reqItem, 1024),
		})
	}
	return s, nil
}

// tracer walks both served structures; their reachable sets are disjoint
// (every object hangs off exactly one root), so each object is visited once.
func (s *Server) tracer() engine.Tracer {
	ht := skiplist.TracerAt(s.e, tableRoot)
	qt := queue.TracerAt(s.e, queueRoot)
	return func(read func(engine.Ref, int) uint64, visit func(engine.Ref, int)) {
		ht(read, visit)
		qt(read, visit)
	}
}

// verify is the post-attach fsck: full read-only walks of both structures.
// A corrupt image (dangling reference, cycle, unreadable node) panics or
// hangs inside the engine; reaching the counts proves every reachable node
// was traced, rebuilt, and is consistent enough to traverse.
func (s *Server) verify(c *engine.Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: post-attach verification failed: %v", r)
		}
	}()
	if n := s.table.Len(c); n < 0 {
		return fmt.Errorf("server: table walk returned %d", n)
	}
	if n := s.q.Len(c); n < 0 {
		return fmt.Errorf("server: queue walk returned %d", n)
	}
	return nil
}

// Attached reports whether New adopted an existing media image.
func (s *Server) Attached() bool { return s.attached }

// Engine exposes the underlying engine for in-process benchmarks and tests.
func (s *Server) Engine() engine.Engine { return s.e }

// Stats snapshots the serving and persistence counters.
func (s *Server) Stats() Stats {
	fl, fe := s.e.Counters()
	return Stats{
		Ops:       s.ops.Load(),
		Mutations: s.mutations.Load(),
		Replays:   s.replays.Load(),
		Scans:     s.scans.Load(),
		Batches:   s.batches.Load(),
		Flushes:   fl,
		Fences:    fe,
	}
}

// Listen binds addr and starts the accept loop and workers.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	for _, w := range s.workers {
		s.wwg.Add(1)
		go w.run()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listener address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every connection, drains the workers (any
// staged batch is committed before they exit), and returns when all
// goroutines are done. The media image stays valid for a later attach.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for cn := range s.conns {
		cn.nc.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait() // accept loop + readers: no further sends to workers
	for _, w := range s.workers {
		close(w.ch)
	}
	s.wwg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		cn := &conn{nc: nc}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[cn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(cn)
	}
}

// conn is one client connection. Workers write responses under wmu — a
// single connection's frames can land in different workers' batches when it
// multiplexes several client ids.
type conn struct {
	nc  net.Conn
	wmu sync.Mutex
}

func (cn *conn) write(b []byte) {
	cn.wmu.Lock()
	cn.nc.Write(b) // a dead connection just drops the response
	cn.wmu.Unlock()
}

// readLoop parses frames off one connection and routes them to workers. A
// malformed frame is answered with a terminal error response: framing
// cannot resynchronize, so the connection closes.
func (s *Server) readLoop(cn *conn) {
	defer s.wg.Done()
	defer func() {
		cn.nc.Close()
		s.mu.Lock()
		delete(s.conns, cn)
		s.mu.Unlock()
	}()
	rd := bufio.NewReader(cn.nc)
	buf := make([]byte, 64)
	for {
		req, err := wire.ReadRequest(rd, buf)
		if err != nil {
			var pe *wire.ProtocolError
			if errors.As(err, &pe) {
				cn.write(wire.AppendResponse(nil, wire.Response{
					Status: wire.StatusError, Err: pe.Reason,
				}))
			}
			return
		}
		if int(req.Client) >= s.cfg.Clients {
			cn.write(wire.AppendResponse(nil, wire.Response{
				Status: wire.StatusError,
				Err:    fmt.Sprintf("client id %d outside [0, %d)", req.Client, s.cfg.Clients),
			}))
			return
		}
		s.workers[int(req.Client)%len(s.workers)].ch <- reqItem{cn: cn, req: req}
	}
}

// reqItem is one routed frame.
type reqItem struct {
	cn  *conn
	req wire.Request
}

// respItem is one staged response awaiting its batch's drain.
type respItem struct {
	cn   *conn
	resp wire.Response
}

// worker executes one partition of the client-id space. It owns one engine
// context, so every descriptor slot it serves is single-writer and one
// client's operations execute in arrival order.
type worker struct {
	s      *Server
	c      *engine.Ctx
	ch     chan reqItem
	staged []respItem
}

func (w *worker) run() {
	defer w.finish()
	batch := make([]reqItem, 0, w.s.cfg.MaxBatch)
	for {
		it, ok := <-w.ch
		if !ok {
			return
		}
		batch = append(batch[:0], it)
		// Coalesce frames from any client this worker serves, up to
		// MaxBatch: first whatever already arrived, then — group commit —
		// whatever lands within the BatchWait window.
	fill:
		for len(batch) < w.s.cfg.MaxBatch {
			select {
			case it, ok := <-w.ch:
				if !ok {
					break fill
				}
				batch = append(batch, it)
			default:
				break fill
			}
		}
		if n := w.s.cfg.BatchWait; n > 0 && len(batch) < w.s.cfg.MaxBatch {
			// Group-commit window. A timer wait here would round the
			// window up to the runtime timer's granularity (a millisecond
			// or more on some hosts) — a 25µs window must not cost 1ms of
			// tail latency. A yield-spin against the deadline keeps the
			// window honest; each Gosched hands the processor to the
			// connection readers whose frames the window exists to catch.
			deadline := time.Now().Add(n)
		window:
			for len(batch) < w.s.cfg.MaxBatch {
				select {
				case it, ok := <-w.ch:
					if !ok {
						break window
					}
					batch = append(batch, it)
				default:
					if !time.Now().Before(deadline) {
						break window
					}
					runtime.Gosched()
				}
			}
		}
		for _, it := range batch {
			w.exec(it)
			if w.s.cfg.NoBatch {
				w.release()
			}
		}
		w.release()
	}
}

func (w *worker) finish() {
	// Commit any verdicts staged after the channel closed mid-batch.
	w.release()
	w.s.wwg.Done()
}

// release drains the batch's deferred verdicts under one fence, then writes
// the staged responses — grouped per connection into single writes, in
// execution order. No response escapes before its operation is durable.
func (w *worker) release() {
	if len(w.staged) == 0 {
		return
	}
	engine.DetectDrain(w.s.e, w.c)
	w.s.batches.Add(1)
	// Group consecutive frames per connection, preserving order.
	var bufs []*connBuf
	byConn := make(map[*conn]*connBuf, 4)
	for _, st := range w.staged {
		cb := byConn[st.cn]
		if cb == nil {
			cb = &connBuf{cn: st.cn}
			byConn[st.cn] = cb
			bufs = append(bufs, cb)
		}
		cb.b = wire.AppendResponse(cb.b, st.resp)
	}
	for _, cb := range bufs {
		cb.cn.write(cb.b)
	}
	w.staged = w.staged[:0]
}

type connBuf struct {
	cn *conn
	b  []byte
}

// exec runs one frame and stages its response. Mutating frames consult the
// descriptor first: a committed (client, seq) is answered from its recorded
// verdict instead of re-running — the server half of exactly-once replay.
func (w *worker) exec(it reqItem) {
	s, c, r := w.s, w.c, it.req
	s.ops.Add(1)
	var resp wire.Response
	if (r.Op == wire.OpGet || r.Op == wire.OpInsert || r.Op == wire.OpDelete || r.Op == wire.OpRMW) &&
		(r.Key == 0 || r.Key > structures.KeyMax) {
		// Keyed frames address the set, whose usable keys are
		// [1, structures.KeyMax]. A bad key is the client's error, not a
		// connection fault: answer it and keep serving.
		w.staged = append(w.staged, respItem{cn: it.cn, resp: wire.Response{
			Status: wire.StatusError,
			Err:    fmt.Sprintf("key %d outside usable range", r.Key),
		}})
		return
	}
	switch r.Op {
	case wire.OpGet:
		v, ok := s.table.Get(c, r.Key)
		resp = wire.Response{Status: wire.StatusOK, Result: ok, Known: true, Rval: v}
	case wire.OpScan:
		// Range over the ordered set from the start key, up to the
		// decoded limit (already bounded by wire.MaxScanKeys). Weakly
		// consistent like every lock-free range scan here: concurrent
		// mutations may or may not appear, but every pair returned was
		// present at some point during the walk.
		from := r.Key
		if from == 0 {
			from = 1
		}
		pairs := make([]wire.KV, 0, r.Val)
		s.table.Range(c, from, structures.KeyMax, func(k, v uint64) bool {
			pairs = append(pairs, wire.KV{Key: k, Val: v})
			return uint64(len(pairs)) < r.Val
		})
		s.scans.Add(1)
		resp = wire.Response{
			Status: wire.StatusOK, Result: true, Known: true,
			Rval: uint64(len(pairs)), Pairs: pairs,
		}
	case wire.OpHello:
		// Pipeline handshake: grant the smaller of the client's requested
		// window and the descriptor-ring depth. The ring is the hard
		// bound — a client with more than Ring unacknowledged seqs could
		// lap its own unresolved entries.
		granted := r.Val
		if ring := uint64(s.cfg.Ring); granted > ring {
			granted = ring
		}
		resp = wire.Response{Status: wire.StatusOK, Result: true, Known: true, Rval: granted}
	case wire.OpDetect:
		// Commit this worker's pending verdicts first: the asked-about slot
		// belongs to this worker's partition, so after the drain the answer
		// is durable truth.
		engine.DetectDrain(s.e, c)
		d := s.e.Detect(int(r.Client), r.Seq)
		resp = wire.Response{
			Status: wire.StatusOK, Result: d.Result, Known: d.KnownResult,
			Verdict: uint8(d.Verdict), Rval: d.Rval,
		}
	default: // mutating
		if d := s.e.Detect(int(r.Client), r.Seq); d.Verdict == engine.Committed {
			s.replays.Add(1)
			resp = wire.Response{
				Status: wire.StatusOK, Result: d.Result, Known: d.KnownResult,
				Verdict: uint8(engine.Committed), Rval: d.Rval,
			}
			break
		}
		s.mutations.Add(1)
		client := int(r.Client)
		var result bool
		var rval uint64
		switch r.Op {
		case wire.OpInsert:
			// The insert's publish barrier fences before the linearizing
			// install, so the announce rides it (deferAnnounce).
			engine.DetectBeginDeferred(s.e, c, client, r.Seq, engine.DetectInsert, r.Key, r.Val, true)
			result = s.table.Insert(c, r.Key, r.Val)
		case wire.OpDelete:
			engine.DetectBeginDeferred(s.e, c, client, r.Seq, engine.DetectDelete, r.Key, 0, false)
			result = s.table.Delete(c, r.Key)
		case wire.OpEnqueue:
			engine.DetectBeginDeferred(s.e, c, client, r.Seq, engine.DetectEnqueue, 0, r.Val, true)
			s.q.Enqueue(c, r.Val)
			result = true
		case wire.OpDequeue:
			engine.DetectBeginDeferred(s.e, c, client, r.Seq, engine.DetectDequeue, 0, 0, false)
			rval, result = s.q.Dequeue(c)
		case wire.OpRMW:
			// Compare-and-set the key's value: expect in Val, new in Arg.
			engine.DetectBeginDeferred(s.e, c, client, r.Seq, engine.DetectRMW, r.Key, r.Val, false)
			result = s.table.CasVal(c, r.Key, r.Val, r.Arg)
		}
		engine.DetectEndDeferred(s.e, c, result, rval)
		resp = wire.Response{
			Status: wire.StatusOK, Result: result, Known: true,
			Verdict: uint8(engine.Committed), Rval: rval,
		}
	}
	w.staged = append(w.staged, respItem{cn: it.cn, resp: resp})
}
