package server

import (
	"encoding/binary"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mirror/internal/engine"
	"mirror/internal/wire"
)

func durableKinds() []engine.Kind {
	return []engine.Kind{engine.Izraelevitz, engine.NVTraverse, engine.MirrorDRAM, engine.MirrorNVMM}
}

// startServer builds and listens a server on a loopback port.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *Server, id uint32) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String(), id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServeBasicOps drives the full op set through one client on every
// durable engine.
func TestServeBasicOps(t *testing.T) {
	for _, kind := range durableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			s := startServer(t, Config{Kind: kind, Workers: 2})
			c := dial(t, s, 3)

			if ok, err := c.Insert(10, 100); err != nil || !ok {
				t.Fatalf("insert: %v %v", ok, err)
			}
			if ok, _ := c.Insert(10, 100); ok {
				t.Fatal("duplicate insert succeeded")
			}
			if v, ok, _ := c.Get(10); !ok || v != 100 {
				t.Fatalf("get = %d,%v want 100,true", v, ok)
			}
			if ok, _ := c.Delete(10); !ok {
				t.Fatal("delete failed")
			}
			if _, ok, _ := c.Get(10); ok {
				t.Fatal("get after delete")
			}
			if err := c.Enqueue(7); err != nil {
				t.Fatal(err)
			}
			if err := c.Enqueue(8); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := c.Dequeue(); !ok || v != 7 {
				t.Fatalf("dequeue = %d,%v want 7,true", v, ok)
			}
			if v, ok, _ := c.Dequeue(); !ok || v != 8 {
				t.Fatalf("dequeue = %d,%v want 8,true", v, ok)
			}
			if _, ok, _ := c.Dequeue(); ok {
				t.Fatal("dequeue on empty queue succeeded")
			}
		})
	}
}

// TestServeConcurrentClients hammers the batcher from many clients at once
// and checks global accounting: every acknowledged enqueue is eventually
// dequeued or still queued, and per-client inserts are all visible.
func TestServeConcurrentClients(t *testing.T) {
	s := startServer(t, Config{Kind: engine.MirrorDRAM, Workers: 3, Clients: 16})
	const clients, opsEach = 8, 200
	var wg sync.WaitGroup
	var enqAcks, deqAcks [clients]uint64
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String(), uint32(id))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < opsEach; i++ {
				key := uint64(id+1)<<32 | uint64(i+1)
				if ok, err := c.Insert(key, key+1); err != nil || !ok {
					errs <- fmt.Errorf("client %d insert %d: %v %v", id, i, ok, err)
					return
				}
				if err := c.Enqueue(key); err != nil {
					errs <- err
					return
				}
				enqAcks[id]++
				if v, ok, err := c.Dequeue(); err != nil {
					errs <- err
					return
				} else if ok && v == 0 {
					errs <- fmt.Errorf("dequeued zero value")
					return
				} else if ok {
					deqAcks[id]++
				}
			}
			errs <- nil
		}(id)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// All inserts visible.
	c := dial(t, s, clients)
	for id := 0; id < clients; id++ {
		for i := 0; i < opsEach; i++ {
			key := uint64(id+1)<<32 | uint64(i+1)
			if v, ok, err := c.Get(key); err != nil || !ok || v != key+1 {
				t.Fatalf("get %d = %d,%v,%v", key, v, ok, err)
			}
		}
	}
	// Queue conservation: acknowledged enqueues minus acknowledged dequeues
	// equals what remains.
	var enq, deq uint64
	for id := 0; id < clients; id++ {
		enq += enqAcks[id]
		deq += deqAcks[id]
	}
	remaining := uint64(0)
	for {
		_, ok, err := c.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		remaining++
	}
	if enq != deq+remaining {
		t.Fatalf("queue leak: %d enqueued, %d dequeued + %d remaining", enq, deq, remaining)
	}
	if st := s.Stats(); st.Batches == 0 || st.Mutations == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
}

// TestServeReplayIsExactlyOnce re-sends an acknowledged frame and checks the
// server answers from the descriptor instead of re-running the operation.
func TestServeReplayIsExactlyOnce(t *testing.T) {
	s := startServer(t, Config{Kind: engine.MirrorDRAM})
	c := dial(t, s, 1)
	if ok, err := c.Insert(5, 50); err != nil || !ok {
		t.Fatal(ok, err)
	}
	seq := c.Seq()
	before := s.Stats()
	r, err := c.Replay(wire.OpInsert, seq, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Result || !r.Known || r.Verdict != uint8(engine.Committed) {
		t.Fatalf("replay response %+v, want known committed true", r)
	}
	after := s.Stats()
	if after.Mutations != before.Mutations {
		t.Fatal("replay re-ran the operation body")
	}
	if after.Replays != before.Replays+1 {
		t.Fatalf("replay not accounted: %+v -> %+v", before, after)
	}
	// A replayed enqueue must not duplicate the element.
	if err := c.Enqueue(77); err != nil {
		t.Fatal(err)
	}
	eseq := c.Seq()
	if _, err := c.Replay(wire.OpEnqueue, eseq, 0, 77); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Dequeue(); !ok || v != 77 {
		t.Fatalf("dequeue = %d,%v", v, ok)
	}
	if _, ok, _ := c.Dequeue(); ok {
		t.Fatal("replayed enqueue duplicated the element")
	}
}

// TestServeDetect checks the DETECT answer for committed, unknown-seq, and
// never-issued operations.
func TestServeDetect(t *testing.T) {
	s := startServer(t, Config{Kind: engine.MirrorNVMM})
	c := dial(t, s, 2)
	if ok, err := c.Insert(9, 90); err != nil || !ok {
		t.Fatal(ok, err)
	}
	r, err := c.Detect(c.Seq())
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != uint8(engine.Committed) || !r.Known || !r.Result {
		t.Fatalf("detect committed op: %+v", r)
	}
	if r, _ = c.Detect(c.Seq() + 5); r.Verdict != uint8(engine.NotCommitted) {
		t.Fatalf("detect future seq: %+v", r)
	}
}

// TestServeErrorFrames checks malformed frames produce an error response
// and a closed connection, and that a fresh connection still works.
func TestServeErrorFrames(t *testing.T) {
	s := startServer(t, Config{Kind: engine.MirrorDRAM, Clients: 4})
	for name, frame := range map[string][]byte{
		"bad op":        wire.AppendRequest(nil, wire.Request{Op: 99, Client: 1, Seq: 1}),
		"client range":  wire.AppendRequest(nil, wire.Request{Op: wire.OpGet, Client: 7}),
		"huge length":   binary.LittleEndian.AppendUint32(nil, 1<<20),
		"short payload": append(binary.LittleEndian.AppendUint32(nil, 5), 1, 2, 3, 4, 5),
	} {
		nc, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadResponse(nc, nil)
		if err == nil && resp.Status != wire.StatusError {
			t.Fatalf("%s: response %+v, want an error", name, resp)
		}
		// The connection is terminal after a framing error.
		if _, err := wire.ReadResponse(nc, nil); err == nil {
			t.Fatalf("%s: connection still open after error response", name)
		}
		nc.Close()
	}
	// The server survives all of that.
	c := dial(t, s, 1)
	if ok, err := c.Insert(1, 2); err != nil || !ok {
		t.Fatal(ok, err)
	}
}

// TestServeAttachRestart writes through one server incarnation, closes it,
// and attaches a second over the same media file: data, queue contents, and
// descriptor state must all survive, on every durable engine.
func TestServeAttachRestart(t *testing.T) {
	for _, kind := range durableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			media := filepath.Join(t.TempDir(), "media")
			cfg := Config{Kind: kind, MediaPath: media, Words: 1 << 18, Ring: 4}
			s1 := startServer(t, cfg)
			if s1.Attached() {
				t.Fatal("fresh server claims attach")
			}
			c := dial(t, s1, 4)
			for i := uint64(1); i <= 50; i++ {
				if ok, err := c.Insert(i, i*10); err != nil || !ok {
					t.Fatal(i, ok, err)
				}
			}
			if err := c.Enqueue(123); err != nil {
				t.Fatal(err)
			}
			lastSeq := c.Seq()
			c.Close()
			s1.Close()

			s2 := startServer(t, cfg)
			if !s2.Attached() {
				t.Fatal("second incarnation did not attach")
			}
			c2 := dial(t, s2, 4)
			c2.SetSeq(lastSeq)
			for i := uint64(1); i <= 50; i++ {
				if v, ok, err := c2.Get(i); err != nil || !ok || v != i*10 {
					t.Fatalf("get %d after attach = %d,%v,%v", i, v, ok, err)
				}
			}
			// The descriptor region survived: the last pre-restart op reads
			// Committed across incarnations.
			r, err := c2.Detect(lastSeq)
			if err != nil {
				t.Fatal(err)
			}
			if r.Verdict != uint8(engine.Committed) {
				t.Fatalf("detect across restart: %+v", r)
			}
			if v, ok, _ := c2.Dequeue(); !ok || v != 123 {
				t.Fatalf("queue after attach = %d,%v want 123", v, ok)
			}
			// And the engine keeps serving new mutations.
			if ok, err := c2.Insert(1000, 1); err != nil || !ok {
				t.Fatal(ok, err)
			}
		})
	}
}

// TestServeMetaMismatch refuses to attach an image written under different
// geometry.
func TestServeMetaMismatch(t *testing.T) {
	media := filepath.Join(t.TempDir(), "media")
	s1, err := New(Config{Kind: engine.MirrorDRAM, MediaPath: media, Words: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	_ = s1
	if _, err := New(Config{Kind: engine.MirrorDRAM, MediaPath: media, Words: 1 << 19}); err == nil {
		t.Fatal("attach with different Words succeeded")
	}
	if _, err := New(Config{Kind: engine.Izraelevitz, MediaPath: media, Words: 1 << 18}); err == nil {
		t.Fatal("attach with different Kind succeeded")
	}
}

// TestServeBatchingSavesFences runs the same load with and without
// cross-client batching and checks batching spends measurably fewer fences
// per mutation — the ablation the serving tier exists for.
func TestServeBatchingSavesFences(t *testing.T) {
	run := func(noBatch bool) (fences uint64, muts uint64) {
		// A wide group-commit window makes coalescing deterministic under
		// CI scheduling noise: all four in-flight clients land per batch.
		s, err := New(Config{Kind: engine.MirrorDRAM, Workers: 1, NoBatch: noBatch,
			BatchWait: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		const clients = 4
		var wg sync.WaitGroup
		for id := 0; id < clients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c, err := Dial(s.Addr().String(), uint32(id))
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				for i := 0; i < 100; i++ {
					c.Insert(uint64(id+1)<<32|uint64(i+1), 1)
				}
			}(id)
		}
		wg.Wait()
		st := s.Stats()
		return st.Fences, st.Mutations
	}
	bf, bm := run(false)
	nf, nm := run(true)
	if bm != nm {
		t.Fatalf("runs did different work: %d vs %d mutations", bm, nm)
	}
	batched, unbatched := float64(bf)/float64(bm), float64(nf)/float64(nm)
	t.Logf("fences/mutation: batched %.2f, unbatched %.2f", batched, unbatched)
	if batched >= unbatched {
		t.Fatalf("batching saved nothing: %.2f >= %.2f fences/mutation", batched, unbatched)
	}
}

// TestServeScanRMW drives the new ordered-set ops end to end: SCAN returns
// ascending present pairs from the start key up to the limit, and RMW
// compare-and-sets a value exactly once.
func TestServeScanRMW(t *testing.T) {
	s := startServer(t, Config{Kind: engine.MirrorDRAM, Workers: 2})
	c := dial(t, s, 1)
	for k := uint64(1); k <= 40; k++ {
		if ok, err := c.Insert(k, k*10); err != nil || !ok {
			t.Fatalf("insert %d: %v %v", k, ok, err)
		}
	}
	pairs, err := c.Scan(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("scan returned %d pairs, want 10", len(pairs))
	}
	for i, kv := range pairs {
		want := uint64(5 + i)
		if kv.Key != want || kv.Val != want*10 {
			t.Fatalf("pair %d = %+v, want key %d val %d", i, kv, want, want*10)
		}
	}
	// A scan past the top is legal and empty.
	if pairs, err = c.Scan(1000, 4); err != nil || len(pairs) != 0 {
		t.Fatalf("empty scan = %v pairs, err %v", len(pairs), err)
	}
	// RMW: stale expect misses, correct expect swaps, replay is exact-once.
	if ok, err := c.RMW(7, 999, 1); err != nil || ok {
		t.Fatalf("stale RMW = %v %v, want false", ok, err)
	}
	if ok, err := c.RMW(7, 70, 71); err != nil || !ok {
		t.Fatalf("RMW = %v %v, want true", ok, err)
	}
	if v, ok, _ := c.Get(7); !ok || v != 71 {
		t.Fatalf("value after RMW = %d,%v want 71,true", v, ok)
	}
	seq := c.Seq()
	resp, err := c.Do(wire.Request{Op: wire.OpRMW, Client: c.ID(), Seq: seq, Key: 7, Val: 70, Arg: 71})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Result || resp.Verdict != uint8(engine.Committed) {
		t.Fatalf("RMW replay = %+v, want committed true", resp)
	}
	if v, _, _ := c.Get(7); v != 71 {
		t.Fatalf("value after RMW replay = %d, want 71 (double apply!)", v)
	}
	if s.Stats().Scans != 2 {
		t.Fatalf("scan counter = %d, want 2", s.Stats().Scans)
	}
}

// TestServePipelined exercises the HELLO handshake and a full pipelined
// window on every durable engine: depth-8 submits with FIFO responses,
// interleaved sync ops (which drain first), and a depth grant clamped to
// the server ring.
func TestServePipelined(t *testing.T) {
	for _, kind := range durableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			s := startServer(t, Config{Kind: kind, Workers: 2, Ring: 8})
			c := dial(t, s, 2)
			if w, err := c.SetPipeline(64); err != nil || w != 8 {
				t.Fatalf("SetPipeline(64) = %d, %v, want 8 (ring clamp)", w, err)
			}
			var got []wire.Response
			for k := uint64(1); k <= 30; k++ {
				done, err := c.Submit(wire.OpInsert, k, k*7, 0)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, done...)
			}
			done, err := c.Drain()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, done...)
			if len(got) != 30 {
				t.Fatalf("%d responses, want 30", len(got))
			}
			for i, r := range got {
				if !r.Result || !r.Known {
					t.Fatalf("insert %d response %+v, want known true", i+1, r)
				}
			}
			// Sync ops drain implicitly and observe everything submitted.
			for k := uint64(1); k <= 30; k++ {
				if _, err := c.Submit(wire.OpDelete, k, 0, 0); err != nil {
					t.Fatal(err)
				}
			}
			if v, ok, err := c.Get(5); err != nil || ok || v != 0 {
				t.Fatalf("get after pipelined deletes = %d,%v,%v want absent", v, ok, err)
			}
			if n := len(c.InFlight()); n != 0 {
				t.Fatalf("%d frames in flight after sync Get, want 0", n)
			}
		})
	}
}
