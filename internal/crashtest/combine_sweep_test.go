package crashtest

import (
	"fmt"
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
)

// combineReplay runs the sweep script on a fresh combining engine,
// recording for every completed operation its result and the thread's
// combine-buffer commit ticket at response time. It returns those
// records, the index of the operation in flight when the freeze hit (-1
// if the script completed), the drained watermark as of the freeze, and
// whether a freeze occurred.
type combineRec struct {
	result bool
	ticket uint64
}

func combineReplay(e engine.Engine, build Builder, script []sweepOp) (recs []combineRec, inflight int, drained uint64, froze bool) {
	inflight = -1
	var c *engine.Ctx
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrFrozen {
					panic(r)
				}
				froze = true
			}
		}()
		c = e.NewCtx()
		set := build(e, c)
		for i, op := range script {
			inflight = i
			var res bool
			if op.insert {
				res = set.Insert(c, op.key, op.key)
			} else {
				res = set.Delete(c, op.key)
			}
			last, _ := engine.CombineTickets(c)
			recs = append(recs, combineRec{result: res, ticket: last})
			inflight = -1
		}
	}()
	if c != nil {
		_, drained = engine.CombineTickets(c)
	}
	return recs, inflight, drained, froze
}

// keyFate is one key's operation trace for the per-key fate search.
type keyFate struct {
	insert    bool
	result    bool
	mayVanish bool
	inflight  bool
}

// allowedPresence explores every legal assignment of fates to a key's
// operations — must-apply ops apply with their recorded result, unfenced
// (may-vanish) ops apply or vanish, the in-flight op applies as a
// successful write or vanishes — and returns the set of final presence
// values reachable through a consistent trace. A branch in which an
// applied op's recorded result contradicts the simulated state is
// abandoned: vanishing is per-operation, but the surviving subsequence
// must still be sequentially legal.
func allowedPresence(ops []keyFate) map[bool]bool {
	res := make(map[bool]bool)
	var dfs func(i int, present bool)
	dfs = func(i int, present bool) {
		if i == len(ops) {
			res[present] = true
			return
		}
		op := ops[i]
		if op.mayVanish || op.inflight {
			dfs(i+1, present) // vanish
		}
		if op.inflight {
			// Take effect as a successful write.
			dfs(i+1, op.insert)
			return
		}
		// Apply with the recorded result, if legal here.
		legal := op.result == (op.insert != present)
		if legal {
			next := present
			if op.result {
				next = op.insert
			}
			dfs(i+1, next)
		}
	}
	dfs(0, false)
	return res
}

// TestExhaustiveCrashPointsCombine re-runs the exhaustive single-threaded
// crash-point sweep with fence combining enabled. Completed operations
// whose commit tickets sit above the drained watermark at the freeze were
// linearized but possibly never fenced, so each may independently vanish
// or take effect — the per-key oracle is therefore a set of allowed final
// presences computed by searching consistent fate assignments, rather
// than the single recorded model. Fenced operations (ticket at or below
// the watermark) must survive every crash policy. The direct engines
// ignore Config.Combine; for them every ticket is 0 = drained and the
// check degenerates to the strict sweep, pinning that the flag is inert.
func TestExhaustiveCrashPointsCombine(t *testing.T) {
	script := sweepScript()
	keys := map[uint64]bool{}
	for _, op := range script {
		keys[op.key] = true
	}
	policies := []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom}
	for name, build := range builders() {
		for _, kind := range durableKinds() {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				for _, policy := range policies {
					rng := rand.New(rand.NewSource(23))
					points := 0
					for n := int64(1); ; n++ {
						e := engine.New(engine.Config{Kind: kind, Words: 1 << 17, Track: true, Combine: true})
						e.FreezeAfter(n)
						recs, inflight, drained, froze := combineReplay(e, build, script)
						e.Crash(policy, rng)
						e.Recover(tracerFactories()[name](e))
						c := e.NewCtx()
						set := build(e, c)

						for key := range keys {
							var trace []keyFate
							for i, op := range script {
								if op.key != key {
									continue
								}
								if i < len(recs) {
									trace = append(trace, keyFate{
										insert:    op.insert,
										result:    recs[i].result,
										mayVanish: recs[i].ticket > drained,
									})
								} else if i == inflight {
									trace = append(trace, keyFate{insert: op.insert, inflight: true})
								}
							}
							allowed := allowedPresence(trace)
							if got := set.Contains(c, key); !allowed[got] {
								t.Fatalf("policy=%v point=%d: key %d: got present=%v, allowed %v (drained=%d trace=%+v)",
									policy, n, key, got, allowed, drained, trace)
							}
						}
						points++
						if !froze {
							break // the script completed: every point covered
						}
					}
					if points < 10 {
						t.Fatalf("policy=%v: only %d crash points exercised; countdown not working?", policy, points)
					}
				}
			})
		}
	}
}
