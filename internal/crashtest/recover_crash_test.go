package crashtest

import (
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/hashtable"
)

// attemptRecover runs one recovery attempt, reporting whether the armed
// freeze cut it short (the ErrFrozen panic unwinds out of the pipeline's
// workers and re-raises here).
func attemptRecover(e engine.Engine, tr engine.Tracer, opts engine.RecoverOptions) (frozen bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == pmem.ErrFrozen {
				frozen = true
				return
			}
			panic(r)
		}
	}()
	e.RecoverWith(tr, opts)
	return false
}

// TestCrashDuringRecovery sweeps every deterministic crash point inside
// recovery itself: FreezeAfter(n) arms the persistent device so its n-th
// countable operation — for Mirror engines, the bulk range copies of the
// rebuild phase — panics mid-pipeline. The interrupted recovery is crashed
// again and recovery re-runs from the unchanged persistent image; it must
// be idempotent. After the first complete recovery the test verifies the
// full contents, the per-cell replica invariants (Lemmas 5.3–5.5), and
// that the structure is operational. The direct engines' recovery performs
// no countable device operations (trace reads bypass the gates), so their
// sweep degenerates to one armed-but-uninterrupted pass — still verified.
func TestCrashDuringRecovery(t *testing.T) {
	// The sweep re-runs recovery once per crash point, so its cost is
	// quadratic in the table size; keep the table small enough that the
	// full sweep stays fast under -race.
	const keys = 120
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse} {
		for _, par := range []int{1, 4} {
			t.Run(kind.String()+sizeSuffix(par), func(t *testing.T) {
				rng := rand.New(rand.NewSource(17))
				e := engine.New(engine.Config{Kind: kind, Words: 1 << 20, Track: true})
				c := e.NewCtx()
				h := hashtable.New(e, c, 64)
				for k := 1; k <= keys; k++ {
					if !h.Insert(c, uint64(k), uint64(k*3)) {
						t.Fatalf("setup insert %d failed", k)
					}
				}
				tr := hashtable.TracerAt(e, 0)
				opts := engine.RecoverOptions{Parallelism: par, Sharded: hashtable.ShardedTracerAt(e, 0)}

				e.Crash(pmem.CrashDropAll, rng)
				crashPoints := 0
				for fa := int64(1); ; fa++ {
					e.FreezeAfter(fa)
					if !attemptRecover(e, tr, opts) {
						e.FreezeAfter(0)
						break
					}
					crashPoints++
					if crashPoints > 100000 {
						t.Fatal("crash-point sweep did not terminate")
					}
					// Re-crash the half-recovered engine; the persistent
					// image is untouched by recovery, so the next attempt
					// sees exactly the same crash state plus one more
					// op of budget.
					e.Crash(pmem.CrashDropAll, rng)
				}
				if kind == engine.MirrorDRAM || kind == engine.MirrorNVMM {
					if crashPoints == 0 {
						t.Fatal("Mirror recovery exposed no crash points; FreezeAfter gate lost")
					}
				}

				// Contents survived every interrupted attempt.
				c = e.NewCtx()
				h = hashtable.New(e, c, 64)
				for k := 1; k <= keys; k++ {
					if v, ok := h.Get(c, uint64(k)); !ok || v != uint64(k*3) {
						t.Fatalf("key %d = (%d,%v) after %d interrupted recoveries", k, v, ok, crashPoints)
					}
				}
				if h.Contains(c, keys+7) {
					t.Fatal("phantom key after recovery")
				}

				// Replica invariants hold for every reachable object.
				tr(e.RecoveryLoad, func(ref engine.Ref, fields int) {
					if msg := engine.CheckMirrorInvariants(e, ref, fields); msg != "" {
						t.Fatalf("after %d interrupted recoveries: %s", crashPoints, msg)
					}
				})

				// And the structure is operational.
				if !h.Insert(c, keys+100, 1) || !h.Delete(c, keys+100) {
					t.Fatal("structure not operational after recovery")
				}
			})
		}
	}
}

func sizeSuffix(par int) string {
	if par == 1 {
		return "/seq"
	}
	return "/par"
}

// TestCrashDuringRecoveryRepeated re-crashes an engine in the middle of the
// rebuild phase many times at the same crash point, interleaving different
// parallelism levels, to check that no attempt sequence can corrupt the
// persistent image (recovery writes only volatile state).
func TestCrashDuringRecoveryRepeated(t *testing.T) {
	const keys = 200
	rng := rand.New(rand.NewSource(23))
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 20, Track: true})
	c := e.NewCtx()
	h := hashtable.New(e, c, 64)
	for k := 1; k <= keys; k++ {
		h.Insert(c, uint64(k), uint64(k))
	}
	tr := hashtable.TracerAt(e, 0)
	sharded := hashtable.ShardedTracerAt(e, 0)
	e.Crash(pmem.CrashDropAll, rng)
	for i := 0; i < 30; i++ {
		par := []int{1, 2, 4, 8}[i%4]
		e.FreezeAfter(int64(10 + i*7))
		if !attemptRecover(e, tr, engine.RecoverOptions{Parallelism: par, Sharded: sharded}) {
			e.FreezeAfter(0)
			break
		}
		e.Crash(pmem.CrashDropAll, rng)
	}
	e.FreezeAfter(0)
	e.Recover(tr)
	c = e.NewCtx()
	h = hashtable.New(e, c, 64)
	for k := 1; k <= keys; k++ {
		if !h.Contains(c, uint64(k)) {
			t.Fatalf("key %d lost after repeated interrupted recoveries", k)
		}
	}
}
