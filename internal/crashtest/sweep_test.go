package crashtest

import (
	"fmt"
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

// tracerFactories builds recovery tracers without attaching to the
// structure, which is required when recovering a crash that may have cut
// the structure's own construction.
func tracerFactories() map[string]func(e engine.Engine) engine.Tracer {
	return map[string]func(e engine.Engine) engine.Tracer{
		"list":      func(e engine.Engine) engine.Tracer { return list.TracerAt(e, 0) },
		"hashtable": func(e engine.Engine) engine.Tracer { return hashtable.TracerAt(e, 0) },
		"bst":       func(e engine.Engine) engine.Tracer { return bst.TracerAt(e, 2) },
		"skiplist":  func(e engine.Engine) engine.Tracer { return skiplist.TracerAt(e, 3) },
	}
}

// sweepOp is one scripted operation.
type sweepOp struct {
	insert bool
	key    uint64
}

// sweepScript is a fixed single-threaded operation sequence exercising
// inserts, duplicate inserts, deletes, re-inserts, and misses.
func sweepScript() []sweepOp {
	var ops []sweepOp
	for k := uint64(1); k <= 8; k++ {
		ops = append(ops, sweepOp{true, k})
	}
	for k := uint64(2); k <= 8; k += 2 {
		ops = append(ops, sweepOp{false, k})
	}
	ops = append(ops,
		sweepOp{true, 2},   // re-insert
		sweepOp{true, 3},   // duplicate (fails)
		sweepOp{false, 99}, // miss (fails)
		sweepOp{true, 10},
		sweepOp{false, 1},
		sweepOp{true, 12},
	)
	return ops
}

// replayScript runs the script on a fresh structure, recording the model
// state after each completed operation. It returns the completed-op model,
// the index of the operation in flight when the freeze hit (-1 if the
// script completed), and whether a freeze occurred.
func replayScript(e engine.Engine, build Builder, script []sweepOp) (model map[uint64]bool, inflight int, froze bool) {
	model = make(map[uint64]bool)
	inflight = -1
	froze = false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrFrozen {
					panic(r)
				}
				froze = true
				return
			}
		}()
		c := e.NewCtx()
		set := build(e, c)
		for i, op := range script {
			inflight = i
			if op.insert {
				if set.Insert(c, op.key, op.key) {
					model[op.key] = true
				}
			} else {
				if set.Delete(c, op.key) {
					model[op.key] = false
				}
			}
			inflight = -1
		}
	}()
	return model, inflight, froze
}

// TestExhaustiveCrashPoints places a crash after *every* persistent-device
// operation of a deterministic script, for every durable engine, structure,
// and eviction policy — a small-scale model check of recovery. After each
// crash+recovery, every key must reflect its last completed operation, and
// the single in-flight operation may have gone either way.
func TestExhaustiveCrashPoints(t *testing.T) {
	script := sweepScript()
	keys := map[uint64]bool{}
	for _, op := range script {
		keys[op.key] = true
	}
	policies := []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom}
	for name, build := range builders() {
		for _, kind := range durableKinds() {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				for _, policy := range policies {
					rng := rand.New(rand.NewSource(17))
					points := 0
					for n := int64(1); ; n++ {
						e := engine.New(engine.Config{Kind: kind, Words: 1 << 17, Track: true})
						e.FreezeAfter(n)
						model, inflight, froze := replayScript(e, build, script)
						e.Crash(policy, rng)
						e.Recover(tracerFactories()[name](e))
						c := e.NewCtx()
						set := build(e, c)

						var inflightKey uint64
						var inflightVal bool
						if inflight >= 0 {
							inflightKey = script[inflight].key
							inflightVal = script[inflight].insert
						}
						for key := range keys {
							want, recorded := model[key]
							got := set.Contains(c, key)
							if inflight >= 0 && key == inflightKey {
								if got != want && got != inflightVal {
									t.Fatalf("policy=%v point=%d: in-flight key %d: got %v, allowed %v or %v",
										policy, n, key, got, want, inflightVal)
								}
								continue
							}
							if recorded && got != want {
								t.Fatalf("policy=%v point=%d: key %d: got %v, want %v (completed op lost)",
									policy, n, key, got, want)
							}
							if !recorded && got {
								t.Fatalf("policy=%v point=%d: phantom key %d", policy, n, key)
							}
						}
						points++
						if !froze {
							break // the script completed: every point covered
						}
					}
					if points < 10 {
						t.Fatalf("policy=%v: only %d crash points exercised; countdown not working?", policy, points)
					}
				}
			})
		}
	}
}
