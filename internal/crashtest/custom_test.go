package crashtest

import (
	"fmt"
	"testing"
	"time"

	"mirror/internal/cmapkv"
	"mirror/internal/pmem"
	"mirror/internal/zuriel"
)

// zurielTarget adapts a zuriel.Set to the custom crash harness.
func zurielTarget(mk func() zuriel.Set) (CustomTarget, func()) {
	s := mk()
	t := CustomTarget{
		NewWorker: func() (func(k, v uint64) bool, func(k uint64) bool, func(k uint64) bool) {
			c := s.NewCtx()
			return func(k, v uint64) bool { return s.Insert(c, k, v) },
				func(k uint64) bool { return s.Delete(c, k) },
				func(k uint64) bool { return s.Contains(c, k) }
		},
		Freeze:  s.Freeze,
		Crash:   s.Crash,
		Recover: s.Recover,
	}
	return t, func() {}
}

// TestZurielDurableLinearizability puts the hand-made sets through the
// same mid-operation crash rounds as the engine structures.
func TestZurielDurableLinearizability(t *testing.T) {
	mks := map[string]func() zuriel.Set{
		"LinkFree-list": func() zuriel.Set { return zuriel.NewLinkFree(zuriel.Config{Words: 1 << 21, Track: true}) },
		"LinkFree-hash": func() zuriel.Set {
			return zuriel.NewLinkFree(zuriel.Config{Words: 1 << 21, Buckets: 64, Track: true})
		},
		"SOFT-list": func() zuriel.Set { return zuriel.NewSoft(zuriel.Config{Words: 1 << 21, Track: true}) },
		"SOFT-hash": func() zuriel.Set {
			return zuriel.NewSoft(zuriel.Config{Words: 1 << 21, Buckets: 64, Track: true})
		},
	}
	policies := []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			round := 0
			for _, policy := range policies {
				for _, lag := range []time.Duration{300 * time.Microsecond, 2 * time.Millisecond} {
					round++
					target, cleanup := zurielTarget(mk)
					vs := RunCustom(target, Config{
						Policy: policy, FreezeLag: lag, Seed: int64(round) * 17,
					})
					cleanup()
					for _, v := range vs {
						t.Errorf("policy=%v lag=%v key=%d: %s (got present=%v, want %s)",
							policy, lag, v.Key, v.Context, v.Got, v.Want)
					}
					if t.Failed() {
						return
					}
				}
			}
		})
	}
}

// TestCmapDurableLinearizability does the same for the lock-based map.
func TestCmapDurableLinearizability(t *testing.T) {
	policies := []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom}
	for i, policy := range policies {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			m := cmapkv.New(cmapkv.Config{Words: 1 << 21, Buckets: 256, Track: true})
			target := CustomTarget{
				NewWorker: func() (func(k, v uint64) bool, func(k uint64) bool, func(k uint64) bool) {
					c := m.NewCtx()
					return func(k, v uint64) bool { m.Put(c, k, v); return true },
						func(k uint64) bool { return m.Delete(c, k) },
						func(k uint64) bool { return m.Contains(c, k) }
				},
				Freeze:  m.Freeze,
				Crash:   m.Crash,
				Recover: m.Recover,
			}
			vs := RunCustom(target, Config{
				Policy: policy, FreezeLag: time.Millisecond, Seed: int64(i+1) * 23,
			})
			for _, v := range vs {
				t.Errorf("key=%d: %s (got present=%v, want %s)", v.Key, v.Context, v.Got, v.Want)
			}
		})
	}
}
