package crashtest

import (
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/list"
)

// TestDetectQuiescedList covers the quiesced crash+recover cycle on the
// *empty* and *single-element* list shapes for every durable engine,
// checking the Detect verdict for the last operation at each step and that
// ExactlyOnce refuses to duplicate a committed effect.
func TestDetectQuiescedList(t *testing.T) {
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			e := engine.New(engine.Config{Kind: kind, Words: 1 << 20, Track: true, Clients: 2})
			c := e.NewCtx()
			l := list.New(e, 0)
			tr := list.TracerAt(e, 0)
			cycle := func() {
				e.Crash(pmem.CrashDropAll, rng)
				e.RecoverWith(tr, engine.RecoverOptions{Parallelism: 1})
				c = e.NewCtx()
				l = list.New(e, 0)
			}

			// Empty shape, no operations at all: recovery must scrub the
			// descriptors to a state where nothing reads Committed.
			cycle()
			if n := l.Len(c); n != 0 {
				t.Fatalf("empty list Len after recovery = %d", n)
			}
			if v := e.Detect(1, 1); v.Verdict != engine.NotCommitted {
				t.Fatalf("unissued op verdict = %+v, want NotCommitted", v)
			}

			// Empty shape with a detectable (failed) membership query.
			e.DetectBegin(c, 1, 1, engine.DetectContains, 5, 0, true)
			res := l.Contains(c, 5)
			e.DetectEnd(c, res)
			if res {
				t.Fatal("contains on empty list returned true")
			}
			cycle()
			if v := e.Detect(1, 1); v.Verdict != engine.Committed || !v.KnownResult || v.Result {
				t.Errorf("empty contains verdict = %+v, want Committed with result false", v)
			}

			// Single-element shape: detectable insert, crash, verify.
			e.DetectBegin(c, 1, 2, engine.DetectInsert, 5, 50, true)
			res = l.Insert(c, 5, 50)
			e.DetectEnd(c, res)
			if !res {
				t.Fatal("insert failed")
			}
			cycle()
			if v := e.Detect(1, 2); v.Verdict != engine.Committed || !v.KnownResult || !v.Result {
				t.Errorf("insert verdict = %+v, want Committed with result true", v)
			}
			if !l.Contains(c, 5) || l.Len(c) != 1 {
				t.Fatalf("single-element list lost its element: len=%d", l.Len(c))
			}

			// ExactlyOnce must see the committed insert and not re-run it.
			out := engine.ExactlyOnce(e, c, engine.DetectOp{
				Client: 1, Seq: 2, Kind: engine.DetectInsert, Key: 5, Val: 50,
				DeferAnnounce: true,
				Run:           func(cc *engine.Ctx) bool { return l.Insert(cc, 5, 50) },
			}, true)
			if out.Ran || out.Verdict != engine.Committed || !out.Result {
				t.Errorf("ExactlyOnce on committed insert = %+v, want no replay", out)
			}
			if l.Len(c) != 1 {
				t.Fatalf("ExactlyOnce duplicated the element: len=%d", l.Len(c))
			}

			// Detectable delete back down to the empty shape.
			e.DetectBegin(c, 1, 3, engine.DetectDelete, 5, 0, false)
			res = l.Delete(c, 5)
			e.DetectEnd(c, res)
			if !res {
				t.Fatal("delete failed")
			}
			cycle()
			if v := e.Detect(1, 3); v.Verdict != engine.Committed || !v.KnownResult || !v.Result {
				t.Errorf("delete verdict = %+v, want Committed with result true", v)
			}
			if n := l.Len(c); n != 0 {
				t.Fatalf("list not empty after deleted-element recovery: len=%d", n)
			}
		})
	}
}

// runToFreeze runs f, reporting whether it completed (true) or was cut by
// the armed freeze (false).
func runToFreeze(f func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == pmem.ErrFrozen {
				return
			}
			panic(r)
		}
	}()
	f()
	return true
}

// TestDetectExactlyOnceListSweep cuts a detectable insert at every
// deterministic crash point and replays it through ExactlyOnce after
// recovery: whatever the verdict, the recovered-plus-replayed list must
// hold the key exactly once — no lost and no duplicated effect.
func TestDetectExactlyOnceListSweep(t *testing.T) {
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for fa := int64(1); ; fa++ {
				e := engine.New(engine.Config{Kind: kind, Words: 1 << 20, Track: true, Clients: 1})
				c := e.NewCtx()
				l := list.New(e, 0)
				if !l.Insert(c, 3, 30) {
					t.Fatal("prefill failed")
				}
				e.FreezeAfter(fa)
				completed := runToFreeze(func() {
					e.DetectBegin(c, 0, 1, engine.DetectInsert, 9, 90, true)
					res := l.Insert(c, 9, 90)
					e.DetectEnd(c, res)
				})
				e.FreezeAfter(0)
				e.Crash(pmem.CrashDropAll, rng)
				e.RecoverWith(list.TracerAt(e, 0), engine.RecoverOptions{Parallelism: 1})
				c = e.NewCtx()
				l = list.New(e, 0)
				out := engine.ExactlyOnce(e, c, engine.DetectOp{
					Client: 0, Seq: 1, Kind: engine.DetectInsert, Key: 9, Val: 90,
					DeferAnnounce: true,
					Run:           func(cc *engine.Ctx) bool { return l.Insert(cc, 9, 90) },
				}, true)
				if completed && out.Ran {
					t.Errorf("fa=%d: completed insert was replayed (%+v)", fa, out)
				}
				if !l.Contains(c, 9) || !l.Contains(c, 3) || l.Len(c) != 2 {
					t.Errorf("fa=%d: replayed list = %v (completed=%v, outcome=%+v)",
						fa, l.Keys(c), completed, out)
				}
				if completed {
					break
				}
				if fa > 100000 {
					t.Fatal("crash-point sweep did not terminate")
				}
			}
		})
	}
}
