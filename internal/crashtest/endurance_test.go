package crashtest

import (
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
)

// TestMultiCrashEndurance runs many crash/recover/mutate cycles on one
// persistent heap and checks that (a) contents stay exactly right and
// (b) recovery's offline GC keeps memory bounded — a recovery that leaked
// or double-allocated would drift across cycles.
func TestMultiCrashEndurance(t *testing.T) {
	for _, kind := range durableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := engine.New(engine.Config{Kind: kind, Words: 1 << 19, Track: true})
			c := e.NewCtx()
			l := list.New(e, 0)
			rng := rand.New(rand.NewSource(77))
			model := make(map[uint64]bool)

			const cycles = 25
			var firstLive uint64
			for cycle := 0; cycle < cycles; cycle++ {
				// Mutate: churn 200 ops over a small key space.
				for i := 0; i < 200; i++ {
					key := uint64(rng.Intn(64) + 1)
					if rng.Intn(2) == 0 {
						if l.Insert(c, key, key) {
							model[key] = true
						}
					} else {
						if l.Delete(c, key) {
							delete(model, key)
						}
					}
				}
				e.Crash(pmem.CrashPolicy(cycle%3), rng)
				e.Recover(list.TracerAt(e, 0))
				c = e.NewCtx()
				for key := uint64(1); key <= 64; key++ {
					if got := l.Contains(c, key); got != model[key] {
						t.Fatalf("cycle %d: key %d = %v, want %v", cycle, key, got, model[key])
					}
				}
				words, _ := e.Footprint()
				if cycle == 0 {
					firstLive = words
				} else if words > firstLive*4+4096 {
					t.Fatalf("cycle %d: live words grew from %d to %d — recovery leak",
						cycle, firstLive, words)
				}
			}
		})
	}
}

// TestMultiCrashEnduranceHash is the same endurance check over the hash
// table, whose recovery must also re-account the large bucket array.
func TestMultiCrashEnduranceHash(t *testing.T) {
	e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 20, Track: true})
	c := e.NewCtx()
	h := hashtable.New(e, c, 128)
	rng := rand.New(rand.NewSource(13))
	model := make(map[uint64]bool)
	var baseline uint64
	for cycle := 0; cycle < 15; cycle++ {
		for i := 0; i < 300; i++ {
			key := uint64(rng.Intn(500) + 1)
			if rng.Intn(2) == 0 {
				if h.Insert(c, key, key) {
					model[key] = true
				}
			} else {
				if h.Delete(c, key) {
					delete(model, key)
				}
			}
		}
		e.Crash(pmem.CrashRandom, rng)
		e.Recover(hashtable.TracerAt(e, 0))
		c = e.NewCtx()
		h = hashtable.New(e, c, 128) // re-attach
		live := 0
		for key := uint64(1); key <= 500; key++ {
			if got := h.Contains(c, key); got != model[key] {
				t.Fatalf("cycle %d: key %d = %v, want %v", cycle, key, got, model[key])
			}
			if model[key] {
				live++
			}
		}
		if got := h.Len(c); got != live {
			t.Fatalf("cycle %d: Len = %d, want %d", cycle, got, live)
		}
		words, _ := e.Footprint()
		if cycle == 0 {
			baseline = words
		} else if words > baseline*3 {
			t.Fatalf("cycle %d: footprint %d vs baseline %d — leak", cycle, words, baseline)
		}
	}
}
