package crashtest

import "mirror/internal/pmem"

// The crash harness is the densest source of FlushSet recycling across
// crash generations, so its tests run with the pmem misuse assertions on:
// any context reused across a crash iteration without Reset, or shared
// between goroutines, panics instead of silently corrupting a run.
func init() { pmem.EnableDebugChecks() }
