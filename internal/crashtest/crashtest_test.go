package crashtest

import (
	"fmt"
	"testing"
	"time"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

func builders() map[string]Builder {
	return map[string]Builder{
		"list": func(e engine.Engine, c *engine.Ctx) structures.Set {
			return list.New(e, 0)
		},
		"hashtable": func(e engine.Engine, c *engine.Ctx) structures.Set {
			return hashtable.New(e, c, 64)
		},
		"bst": func(e engine.Engine, c *engine.Ctx) structures.Set {
			return bst.New(e, c)
		},
		"skiplist": func(e engine.Engine, c *engine.Ctx) structures.Set {
			return skiplist.New(e, c)
		},
	}
}

func durableKinds() []engine.Kind {
	return []engine.Kind{engine.Izraelevitz, engine.NVTraverse, engine.MirrorDRAM, engine.MirrorNVMM}
}

// TestDurableLinearizability is the central crash suite: every durable
// engine × every structure × every eviction policy, crashes injected at
// varying moments.
func TestDurableLinearizability(t *testing.T) {
	policies := []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom}
	for name, build := range builders() {
		for _, kind := range durableKinds() {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				round := 0
				for _, policy := range policies {
					for _, lag := range []time.Duration{
						200 * time.Microsecond, 1 * time.Millisecond, 4 * time.Millisecond,
					} {
						round++
						vs := Run(kind, build, Config{
							Policy:    policy,
							FreezeLag: lag,
							Seed:      int64(round) * 31,
						})
						for _, v := range vs {
							t.Errorf("policy=%v lag=%v key=%d: %s (got present=%v, want %s)",
								policy, lag, v.Key, v.Context, v.Got, v.Want)
						}
						if t.Failed() {
							return
						}
					}
				}
			})
		}
	}
}

// TestCrashVeryEarly freezes almost immediately, exercising crashes during
// structure construction and the first operations.
func TestCrashVeryEarly(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				vs := Run(engine.MirrorDRAM, build, Config{
					Policy:    pmem.CrashRandom,
					FreezeLag: 0,
					Seed:      seed,
				})
				for _, v := range vs {
					t.Errorf("seed=%d key=%d: %s", seed, v.Key, v.Context)
				}
			}
		})
	}
}

// TestCrashAfterQuiesce lets all workers finish before the crash: every
// operation completed, so every recorded state must survive exactly.
func TestCrashAfterQuiesce(t *testing.T) {
	for _, kind := range durableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			vs := Run(kind, builders()["hashtable"], Config{
				MaxOps:    2000,
				FreezeLag: 2 * time.Second, // workers hit MaxOps first
				Policy:    pmem.CrashDropAll,
				Seed:      99,
			})
			for _, v := range vs {
				t.Errorf("key=%d: %s", v.Key, v.Context)
			}
		})
	}
}
