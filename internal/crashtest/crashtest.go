// Package crashtest verifies durable linearizability (§2.3) end to end:
// worker threads run operations on a structure while a controller freezes
// the devices at an arbitrary moment; the simulated power failure is taken
// under a chosen eviction adversary; recovery runs; and the recovered
// structure is checked against each worker's record of *completed*
// operations.
//
// The check uses one writer per key (readers roam freely), so the expected
// post-crash state of every key is exact: the state left by the last
// completed operation on it. The single operation a worker had in flight
// when the crash hit is allowed to have either taken effect or not — and
// nothing else. Phantom keys that no worker ever successfully inserted
// must not appear.
package crashtest

import (
	"math/rand"
	"sync"
	"time"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
)

// Builder constructs (or, after recovery, re-attaches) the structure under
// test on the given engine.
type Builder func(e engine.Engine, c *engine.Ctx) structures.Set

// Config tunes one crash round.
type Config struct {
	Workers   int           // concurrent writers (default 4)
	KeysPer   int           // keys owned by each writer (default 32)
	MaxOps    int           // op cap per worker if the freeze comes late
	FreezeLag time.Duration // controller delay before freezing
	Policy    pmem.CrashPolicy
	Seed      int64
	Words     int // engine device capacity
	// Shards > 1 runs the round on a sharded engine, the structure routed
	// through structures.Sharded and recovery shard-concurrent.
	Shards int
}

func (c *Config) setDefaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.KeysPer == 0 {
		c.KeysPer = 32
	}
	if c.MaxOps == 0 {
		c.MaxOps = 30000
	}
	if c.Words == 0 {
		c.Words = 1 << 21
	}
}

// Violation describes a durable-linearizability failure.
type Violation struct {
	Key     uint64
	Got     bool
	Want    string
	Context string
}

type workerLog struct {
	completed   map[uint64]bool // key -> present after last completed op
	inflight    uint64          // key of the op possibly cut by the crash (0 = none)
	inflightIns bool
}

// Run executes one crash round against a durable engine kind and returns
// any violations found.
func Run(kind engine.Kind, build Builder, cfg Config) []Violation {
	cfg.setDefaults()
	if !kind.Durable() {
		panic("crashtest: engine kind is not durable")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := engine.New(engine.Config{Kind: kind, Words: cfg.Words, Track: true, Shards: cfg.Shards})
	se, sharded := e.(*engine.Sharded)
	attach := func(c *engine.Ctx) structures.Set {
		if sharded {
			return structures.NewSharded(se, c, build)
		}
		return build(e, c)
	}
	set := attach(e.NewCtx())

	logs := make([]workerLog, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			c := e.NewCtx()
			lrng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			logs[w].completed = make(map[uint64]bool)
			base := uint64(w*cfg.KeysPer + 1)
			for i := 0; i < cfg.MaxOps; i++ {
				key := base + uint64(lrng.Intn(cfg.KeysPer))
				ins := lrng.Intn(2) == 0
				logs[w].inflight, logs[w].inflightIns = key, ins
				if ins {
					if set.Insert(c, key, key) {
						logs[w].completed[key] = true
					}
				} else {
					if set.Delete(c, key) {
						logs[w].completed[key] = false
					}
				}
				logs[w].inflight = 0
			}
		}(w)
	}
	// Roaming readers stress the read path during the crash window.
	stopReaders := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			c := e.NewCtx()
			lrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopReaders:
					return
				default:
					key := uint64(lrng.Intn(cfg.Workers*cfg.KeysPer) + 1)
					set.Contains(c, key)
				}
			}
		}(cfg.Seed*77 + int64(r))
	}

	time.Sleep(cfg.FreezeLag)
	e.Freeze()
	wg.Wait()
	close(stopReaders)
	rwg.Wait()

	e.Crash(cfg.Policy, rng)
	if sharded {
		set.(*structures.Sharded).Recover(engine.RecoverOptions{})
	} else {
		e.Recover(set.Tracer())
	}

	// Re-attach and verify.
	c := e.NewCtx()
	set = attach(c)
	var violations []Violation
	for w := 0; w < cfg.Workers; w++ {
		lg := &logs[w]
		base := uint64(w*cfg.KeysPer + 1)
		for key := base; key < base+uint64(cfg.KeysPer); key++ {
			want, recorded := lg.completed[key]
			got := set.Contains(c, key)
			if key == lg.inflight {
				// The cut operation may or may not have taken effect:
				// allowed outcomes are the recorded state or the state
				// its completion would have produced.
				if got != want && got != lg.inflightIns {
					violations = append(violations, Violation{
						Key: key, Got: got,
						Want:    "recorded or in-flight outcome",
						Context: "in-flight operation",
					})
				}
				continue
			}
			if recorded && got != want {
				violations = append(violations, Violation{
					Key: key, Got: got,
					Want:    boolName(want),
					Context: "completed operation lost",
				})
			}
			if !recorded && got {
				// Never successfully inserted by its single writer.
				violations = append(violations, Violation{
					Key: key, Got: got,
					Want:    "absent",
					Context: "phantom key",
				})
			}
			if got {
				if v, ok := set.Get(c, key); !ok || v != key {
					violations = append(violations, Violation{
						Key: key, Got: got,
						Want:    "value == key",
						Context: "torn value after recovery",
					})
				}
			}
		}
	}
	// The structure must remain operational after recovery.
	probe := uint64(cfg.Workers*cfg.KeysPer + 100)
	if !set.Insert(c, probe, 1) || !set.Contains(c, probe) || !set.Delete(c, probe) {
		violations = append(violations, Violation{
			Key: probe, Want: "operational structure", Context: "post-recovery ops failed",
		})
	}
	return violations
}

func boolName(b bool) string {
	if b {
		return "present"
	}
	return "absent"
}
