package crashtest

import (
	"math/rand"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/list"
)

// shardedKeys returns one key per shard of a 2-shard partition, plus the
// cross-shard operation key: client 0's descriptor slot lives on shard 0
// (client mod shards), so an operation on a key homed on shard 1 splits the
// protocol across devices — announce and verdict on shard 0, effect on
// shard 1.
func shardedKeys(t *testing.T) (pre0, pre1, opKey uint64) {
	t.Helper()
	found := [2]uint64{}
	for k := uint64(1); found[0] == 0 || found[1] == 0; k++ {
		sh := pmem.ShardOf(k, 2)
		if found[sh] == 0 {
			found[sh] = k
		}
	}
	for k := found[1] + 1; ; k++ {
		if pmem.ShardOf(k, 2) == 1 {
			return found[0], found[1], k
		}
	}
}

// TestDetectCrossShardSweep cuts a detectable insert whose descriptor slot
// and effect live on *different* shards at every deterministic crash point,
// recovers shard-concurrently, and checks the verdict is sound against the
// recovered state: Committed implies the effect is present, NotCommitted
// implies it is absent (the announce fence is eager on sharded engines, so
// no effect can precede a persisted announce), Unknown allows either — and
// an ExactlyOnce replay always lands the key exactly once.
func TestDetectCrossShardSweep(t *testing.T) {
	pre0, pre1, opKey := shardedKeys(t)
	build := func(sub engine.Engine, sc *engine.Ctx) structures.Set {
		return list.New(sub, 0)
	}
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for fa := int64(1); ; fa++ {
				e := engine.NewSharded(engine.Config{
					Kind: kind, Words: 1 << 20, Track: true, Clients: 2, Shards: 2,
				})
				c := e.NewCtx()
				s := structures.NewSharded(e, c, build)
				if !s.Insert(c, pre0, pre0) || !s.Insert(c, pre1, pre1) {
					t.Fatal("prefill failed")
				}
				e.FreezeAfter(fa)
				completed := runToFreeze(func() {
					e.DetectBegin(c, 0, 1, engine.DetectInsert, opKey, opKey*10, true)
					res := s.Insert(c, opKey, opKey*10)
					e.DetectEnd(c, res)
				})
				e.FreezeAfter(0)
				e.Crash(pmem.CrashDropAll, rng)
				s.Recover(engine.RecoverOptions{})
				c = e.NewCtx()
				s = structures.NewSharded(e, c, build)

				// Verdict soundness against the recovered cross-shard state.
				v := e.Detect(0, 1)
				present := s.Contains(c, opKey)
				switch v.Verdict {
				case engine.Committed:
					if !present {
						t.Errorf("fa=%d: verdict Committed but key %d absent after recovery", fa, opKey)
					}
				case engine.NotCommitted:
					if present {
						t.Errorf("fa=%d: verdict NotCommitted but key %d present after recovery", fa, opKey)
					}
				}
				if completed && v.Verdict != engine.Committed {
					t.Errorf("fa=%d: completed op reads %v, want Committed", fa, v.Verdict)
				}

				// Replay through the parent router: exactly-once semantics
				// must hold even though slot and effect shards differ.
				out := engine.ExactlyOnce(e, c, engine.DetectOp{
					Client: 0, Seq: 1, Kind: engine.DetectInsert, Key: opKey, Val: opKey * 10,
					Run: func(cc *engine.Ctx) bool { return s.Insert(cc, opKey, opKey*10) },
				}, true)
				if completed && out.Ran {
					t.Errorf("fa=%d: completed insert was replayed (%+v)", fa, out)
				}
				if !s.Contains(c, opKey) {
					t.Errorf("fa=%d: key %d missing after replay (completed=%v, outcome=%+v)",
						fa, opKey, completed, out)
				}
				if got, ok := s.Get(c, opKey); !ok || got != opKey*10 {
					t.Errorf("fa=%d: key %d value = (%d,%v), want (%d,true)", fa, opKey, got, ok, opKey*10)
				}
				if !s.Contains(c, pre0) || !s.Contains(c, pre1) {
					t.Errorf("fa=%d: prefill keys disturbed", fa)
				}
				if vv := e.Detect(0, 1); vv.Verdict != engine.Committed {
					t.Errorf("fa=%d: post-replay verdict = %v, want Committed", fa, vv.Verdict)
				}
				if completed {
					break
				}
				if fa > 100000 {
					t.Fatal("crash-point sweep did not terminate")
				}
			}
		})
	}
}
