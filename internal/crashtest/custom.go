package crashtest

import (
	"math/rand"
	"sync"
	"time"

	"mirror/internal/pmem"
)

// CustomTarget adapts a non-engine durable structure (the hand-made
// baselines: Link-Free, SOFT, Cmap, the durable queue) to the same
// mid-operation crash harness the engine structures get. NewWorker
// returns per-thread insert/delete/contains closures; the lifecycle
// functions map onto the structure's own crash support.
type CustomTarget struct {
	NewWorker func() (insert func(k, v uint64) bool, del func(k uint64) bool, contains func(k uint64) bool)
	Freeze    func()
	Crash     func(policy pmem.CrashPolicy, rng *rand.Rand)
	Recover   func()
}

// RunCustom executes one crash round against a custom durable set and
// returns any durable-linearizability violations, using the same per-key
// single-writer discipline as Run.
func RunCustom(target CustomTarget, cfg Config) []Violation {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	logs := make([]workerLog, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			insert, del, _ := target.NewWorker()
			lrng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			logs[w].completed = make(map[uint64]bool)
			base := uint64(w*cfg.KeysPer + 1)
			for i := 0; i < cfg.MaxOps; i++ {
				key := base + uint64(lrng.Intn(cfg.KeysPer))
				ins := lrng.Intn(2) == 0
				logs[w].inflight, logs[w].inflightIns = key, ins
				if ins {
					if insert(key, key) {
						logs[w].completed[key] = true
					}
				} else {
					if del(key) {
						logs[w].completed[key] = false
					}
				}
				logs[w].inflight = 0
			}
		}(w)
	}
	stopReaders := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			_, _, contains := target.NewWorker()
			lrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopReaders:
					return
				default:
					contains(uint64(lrng.Intn(cfg.Workers*cfg.KeysPer) + 1))
				}
			}
		}(cfg.Seed*77 + int64(r))
	}

	time.Sleep(cfg.FreezeLag)
	target.Freeze()
	wg.Wait()
	close(stopReaders)
	rwg.Wait()

	target.Crash(cfg.Policy, rng)
	target.Recover()

	insert, del, contains := target.NewWorker()
	var violations []Violation
	for w := 0; w < cfg.Workers; w++ {
		lg := &logs[w]
		base := uint64(w*cfg.KeysPer + 1)
		for key := base; key < base+uint64(cfg.KeysPer); key++ {
			want, recorded := lg.completed[key]
			got := contains(key)
			if key == lg.inflight {
				if got != want && got != lg.inflightIns {
					violations = append(violations, Violation{
						Key: key, Got: got,
						Want:    "recorded or in-flight outcome",
						Context: "in-flight operation",
					})
				}
				continue
			}
			if recorded && got != want {
				violations = append(violations, Violation{
					Key: key, Got: got,
					Want:    boolName(want),
					Context: "completed operation lost",
				})
			}
			if !recorded && got {
				violations = append(violations, Violation{
					Key: key, Got: got,
					Want:    "absent",
					Context: "phantom key",
				})
			}
		}
	}
	probe := uint64(cfg.Workers*cfg.KeysPer + 100)
	if !insert(probe, 1) || !contains(probe) || !del(probe) {
		violations = append(violations, Violation{
			Key: probe, Want: "operational structure", Context: "post-recovery ops failed",
		})
	}
	return violations
}
