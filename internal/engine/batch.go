package engine

import "mirror/internal/pmem"

// BatchCtx batches the initialization of one or more new objects so their
// fields persist with relaxed (deferred) flushes and a single trailing
// fence — the single-fence-per-operation argument of Mirror §5 packaged as
// an API. Under an eliding engine each StoreInit only records its dirty
// line; Commit issues one flush per distinct line and one fence (and skips
// the fence entirely when nothing is pending). Under a non-eliding engine
// it degrades to the engine's ordinary StoreInit/Publish discipline.
//
// The batch must be committed before any of its objects is made reachable:
// Commit is the Publish barrier for every object initialized through it.
// A BatchCtx is a value; it holds no resources. A batch commits exactly
// once: a StoreInit after Commit would land in the *next* operation's
// deferred-flush drain (its durability silently reassigned to a fence that
// may never come), and a second Commit would publish that corrupted batch —
// with pmem debug checks enabled, both misuses panic instead.
type BatchCtx struct {
	e    Engine
	c    *Ctx
	last Ref
	done bool
}

// Batch starts an initialization batch on c.
func Batch(e Engine, c *Ctx) BatchCtx { return BatchCtx{e: e, c: c} }

// StoreInit writes a field of an unpublished object within the batch.
func (b *BatchCtx) StoreInit(ref Ref, field int, v uint64) {
	if b.done && pmem.DebugChecksEnabled() {
		panic("engine: BatchCtx.StoreInit after Commit (start a new batch)")
	}
	b.e.StoreInit(b.c, ref, field, v)
	b.last = ref
}

// Commit issues the batch's single durability barrier. Every object
// initialized through the batch is durable when it returns.
func (b *BatchCtx) Commit() {
	if b.done && pmem.DebugChecksEnabled() {
		panic("engine: BatchCtx.Commit called twice")
	}
	b.done = true
	b.e.Publish(b.c, b.last)
}
