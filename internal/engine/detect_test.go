package engine

import (
	"testing"

	"mirror/internal/pmem"
)

func newDescDevice(t *testing.T) *pmem.Device {
	t.Helper()
	return pmem.New(pmem.Config{
		Name: "desc-test", Words: 1 << 12, Persistent: true, Track: true,
	})
}

// TestDescRegionTruthTable walks one client slot through the announce →
// verdict → supersede lifecycle and pins the Detect answer at each step.
func TestDescRegionTruthTable(t *testing.T) {
	dev := newDescDevice(t)
	r := NewDescRegion(dev, pmem.WordsPerLine, 2, 1, true)
	var fs pmem.FlushSet

	if v := r.Detect(0, 1); v.Verdict != NotCommitted {
		t.Fatalf("fresh slot: %+v, want NotCommitted", v)
	}
	r.Begin(&fs, 0, 1, DetectInsert, 5, 50, false)
	if v := r.Detect(0, 1); v.Verdict != Unknown {
		t.Fatalf("announced, no verdict: %+v, want Unknown", v)
	}
	r.Publish(&fs, 0, 1, true, 0)
	r.End(&fs)
	if v := r.Detect(0, 1); v.Verdict != Committed || !v.KnownResult || !v.Result {
		t.Fatalf("published true: %+v, want Committed/known/true", v)
	}
	if v := r.Detect(0, 2); v.Verdict != NotCommitted {
		t.Fatalf("future seq: %+v, want NotCommitted", v)
	}
	if v := r.Detect(1, 1); v.Verdict != NotCommitted {
		t.Fatalf("other client: %+v, want NotCommitted", v)
	}

	// A later announce supersedes the slot; seq 1's verdict line is still
	// intact at this point, so its result remains readable.
	r.Begin(&fs, 0, 2, DetectDelete, 5, 0, false)
	if v := r.Detect(0, 1); v.Verdict != Committed {
		t.Fatalf("superseded seq mid-op: %+v, want Committed", v)
	}
	if v := r.Detect(0, 2); v.Verdict != Unknown {
		t.Fatalf("in-flight seq 2: %+v, want Unknown", v)
	}
	r.Publish(&fs, 0, 2, false, 0)
	r.End(&fs)
	if v := r.Detect(0, 2); v.Verdict != Committed || !v.KnownResult || v.Result {
		t.Fatalf("published false: %+v, want Committed/known/false", v)
	}
	// Now seq 1's verdict is overwritten: still provably committed (a later
	// op from the same client announced), but its result is gone.
	if v := r.Detect(0, 1); v.Verdict != Committed || v.KnownResult {
		t.Fatalf("superseded seq: %+v, want Committed without known result", v)
	}

	ann, ver := r.Counters()
	if ann != 2 || ver != 2 {
		t.Errorf("counters = (%d, %d), want (2, 2)", ann, ver)
	}
}

// TestDescRingTruthTable walks a 4-entry ring through a pipelined window
// and pins every ring-specific Detect inference: per-entry verdicts, the
// entry-lap proof, the sibling-verdict proof, and the refusal to trust a
// sibling announce alone.
func TestDescRingTruthTable(t *testing.T) {
	const ring = 4
	dev := newDescDevice(t)
	r := NewDescRegion(dev, pmem.WordsPerLine, 1, ring, true)
	var fs pmem.FlushSet

	// A pipelined window: three announces in flight, no verdicts yet.
	for seq := uint64(1); seq <= 3; seq++ {
		r.Begin(&fs, 0, seq, DetectInsert, seq, seq*10, false)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if v := r.Detect(0, seq); v.Verdict != Unknown {
			t.Fatalf("in-flight seq %d: %+v, want Unknown", seq, v)
		}
	}
	if v := r.Detect(0, 4); v.Verdict != NotCommitted {
		t.Fatalf("never-announced seq 4: %+v, want NotCommitted", v)
	}
	if v := r.Detect(0, 0); v.Verdict != NotCommitted {
		t.Fatalf("seq 0: %+v, want NotCommitted", v)
	}

	// Drain: all three verdicts publish, each into its own entry.
	for seq := uint64(1); seq <= 3; seq++ {
		r.Publish(&fs, 0, seq, true, seq*100)
	}
	r.End(&fs)
	for seq := uint64(1); seq <= 3; seq++ {
		v := r.Detect(0, seq)
		if v.Verdict != Committed || !v.KnownResult || v.Rval != seq*100 {
			t.Fatalf("drained seq %d: %+v, want Committed/known/rval %d", seq, v, seq*100)
		}
	}

	// Seq 5 laps entry 0 (= seq 1's). With the announce overwritten and the
	// old verdict line dropped by a crash, seq 1 is still provably
	// committed: the entry moved a whole lap, so its response was released.
	r.Begin(&fs, 0, 5, DetectDelete, 1, 0, false)
	e0 := r.entry(0, 1)
	for w := uint64(dVerdict); w <= dVerChk; w++ {
		dev.WriteRaw(e0+w, 0)
	}
	if v := r.Detect(0, 1); v.Verdict != Committed || v.KnownResult {
		t.Fatalf("lapped seq 1: %+v, want Committed without known result", v)
	}

	// Sibling-verdict proof: seq 2's verdict line dropped, but entry 2
	// still holds seq 3's durable verdict (> 2) — committed, result gone.
	e1 := r.entry(0, 2)
	for w := uint64(dVerdict); w <= dVerChk; w++ {
		dev.WriteRaw(e1+w, 0)
	}
	if v := r.Detect(0, 2); v.Verdict != Committed || v.KnownResult {
		t.Fatalf("sibling-verdict seq 2: %+v, want Committed without known result", v)
	}

	// A sibling announce alone proves nothing: with every verdict line in
	// the ring gone, an announced seq is honestly Unknown even though later
	// announces (seq 3, seq 5) sit beside it.
	for i := uint64(0); i < ring; i++ {
		base := r.Base + i*DescSlotWords
		for w := uint64(dVerdict); w <= dVerChk; w++ {
			dev.WriteRaw(base+w, 0)
		}
	}
	if v := r.Detect(0, 2); v.Verdict != Unknown {
		t.Fatalf("announce-only seq 2 with sibling announces: %+v, want Unknown", v)
	}
}

// TestDescRegionDequeueRval pins the returned-value channel: a Committed
// dequeue's verdict carries the dequeued value.
func TestDescRegionDequeueRval(t *testing.T) {
	dev := newDescDevice(t)
	r := NewDescRegion(dev, pmem.WordsPerLine, 1, 1, true)
	var fs pmem.FlushSet
	r.Begin(&fs, 0, 1, DetectDequeue, 0, 0, false)
	r.Publish(&fs, 0, 1, true, 77)
	r.End(&fs)
	if v := r.Detect(0, 1); v.Verdict != Committed || !v.KnownResult || v.Rval != 77 {
		t.Fatalf("dequeue verdict = %+v, want Committed with Rval 77", v)
	}
}

// TestDescRegionCrashSurvival checks durability edges across a drop-all
// crash: a fenced announce+verdict survives; an announce whose fence was
// deferred and never issued is dropped entirely (NotCommitted — sound,
// since the operation body never ran a fence either).
func TestDescRegionCrashSurvival(t *testing.T) {
	dev := newDescDevice(t)
	r := NewDescRegion(dev, pmem.WordsPerLine, 2, 1, true)
	var fs pmem.FlushSet
	r.Begin(&fs, 0, 1, DetectInsert, 5, 50, false)
	r.Publish(&fs, 0, 1, true, 0)
	r.End(&fs)
	r.Begin(&fs, 1, 1, DetectInsert, 6, 60, true) // deferred: never fenced
	dev.Freeze()
	dev.Crash(pmem.CrashDropAll, nil)
	r.Scrub()
	if v := r.Detect(0, 1); v.Verdict != Committed || !v.KnownResult || !v.Result {
		t.Errorf("fenced op after crash: %+v, want Committed/known/true", v)
	}
	if v := r.Detect(1, 1); v.Verdict != NotCommitted {
		t.Errorf("unfenced announce after crash: %+v, want NotCommitted", v)
	}
}

// TestDescRegionScrubTornLines corrupts the announce and verdict lines and
// checks that Scrub rejects them (checksums), zeroes them durably, and is
// idempotent.
func TestDescRegionScrubTornLines(t *testing.T) {
	dev := newDescDevice(t)
	r := NewDescRegion(dev, pmem.WordsPerLine, 1, 1, true)
	var fs pmem.FlushSet
	r.Begin(&fs, 0, 3, DetectInsert, 5, 50, false)
	r.Publish(&fs, 0, 3, true, 0)
	r.End(&fs)
	// Tear both lines: flip a payload word without updating the checksums.
	slot := uint64(pmem.WordsPerLine)
	dev.WriteRaw(slot+2, 999)  // announce key word
	dev.WriteRaw(slot+9, 1234) // verdict rval word
	r.Scrub()
	for w := uint64(0); w < DescSlotWords; w++ {
		if got := dev.ReadRaw(slot + w); got != 0 {
			t.Fatalf("slot word %d = %d after scrub, want 0", w, got)
		}
	}
	if v := r.Detect(0, 3); v.Verdict != NotCommitted {
		t.Errorf("scrubbed slot: %+v, want NotCommitted", v)
	}
	before := dev.MediaHash()
	r.Scrub()
	if dev.MediaHash() != before {
		t.Error("second Scrub changed the media image")
	}
}

// TestNewDescRegionMisuse pins the constructor's contract checks.
func TestNewDescRegionMisuse(t *testing.T) {
	dev := newDescDevice(t)
	for name, f := range map[string]func(){
		"unaligned base": func() { NewDescRegion(dev, pmem.WordsPerLine+1, 1, 1, true) },
		"zero clients":   func() { NewDescRegion(dev, pmem.WordsPerLine, 0, 1, true) },
		"zero ring":      func() { NewDescRegion(dev, pmem.WordsPerLine, 1, 0, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestBatchCtxMisusePanics pins the satellite bugfix: with debug checks
// enabled, a StoreInit after Commit and a double Commit both fail loudly
// instead of silently reassigning durability to a fence that may never
// come.
func TestBatchCtxMisusePanics(t *testing.T) {
	pmem.EnableDebugChecks()
	defer pmem.DisableDebugChecks()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}

	e := New(Config{Kind: MirrorDRAM, Words: 1 << 16})
	c := e.NewCtx()
	e.OpBegin(c)
	ref := e.Alloc(c, 4)
	b := Batch(e, c)
	b.StoreInit(ref, 0, 1)
	b.Commit()
	mustPanic("StoreInit after Commit", func() { b.StoreInit(ref, 1, 2) })
	mustPanic("double Commit", func() { b.Commit() })
	e.OpEnd(c)

	// Without debug checks the misuse stays permissive (legacy behavior).
	pmem.DisableDebugChecks()
	e2 := New(Config{Kind: MirrorDRAM, Words: 1 << 16})
	c2 := e2.NewCtx()
	e2.OpBegin(c2)
	ref2 := e2.Alloc(c2, 4)
	b2 := Batch(e2, c2)
	b2.StoreInit(ref2, 0, 1)
	b2.Commit()
	b2.Commit()
	e2.OpEnd(c2)
}
