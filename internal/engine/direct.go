package engine

import (
	"math/rand"
	"sync"

	"mirror/internal/palloc"
	"mirror/internal/pmem"
)

// directEngine implements the four single-replica engines: the two
// non-durable originals and the Izraelevitz and NVTraverse transformations.
// One word per field, directly on one device.
type directEngine struct {
	kind       Kind
	dev        *pmem.Device
	rootFields int
	desc       *DescRegion // per-client op descriptors; nil when off

	mu    sync.Mutex
	alloc *palloc.Allocator
	recl  *palloc.Reclaimer
}

func newDirect(cfg Config) *directEngine {
	model := pmem.NoLatency()
	persistent := false
	switch cfg.Kind {
	case OrigDRAM:
		if cfg.Latency {
			model = pmem.DRAMModel()
		}
	case OrigNVMM:
		if cfg.Latency {
			model = pmem.NVMMModel()
		}
	case Izraelevitz, NVTraverse:
		persistent = true
		if cfg.Latency {
			model = pmem.NVMMModel()
		}
	}
	if cfg.MediaPath != "" && !persistent {
		panic("engine: Config.MediaPath on a non-durable engine")
	}
	dev := pmem.New(pmem.Config{
		Name:       cfg.Kind.String(),
		Words:      cfg.Words,
		Persistent: persistent,
		Track:      cfg.Track,
		Elide:      !cfg.NoElide,
		Model:      model,
		MediaPath:  cfg.MediaPath,
	})
	if cfg.Attach {
		// Adopt the media image of a previous incarnation: reset the cache
		// view from it and let the caller's Recover rebuild the allocator.
		// (The direct engines write nothing at construction, so there is no
		// init to skip.)
		if !persistent || !cfg.Track {
			panic("engine: Attach requires a durable engine with Config.Track")
		}
		dev.ResetFromMedia()
	}
	e := &directEngine{
		kind:       cfg.Kind,
		dev:        dev,
		rootFields: cfg.RootFields,
		recl:       palloc.NewReclaimer(),
	}
	// Descriptor region between the roots and the allocator base. On the
	// non-durable originals the region exists but never flushes: it is
	// wiped at a crash, and every verdict honestly reads NotCommitted —
	// exactly what a volatile structure's client should be told.
	allocBase := rootsRegionWords(cfg.RootFields, 1)
	if cfg.Clients > 0 {
		descBase := descRegionBase(cfg.RootFields, 1)
		e.desc = NewDescRegion(dev, descBase, cfg.Clients, cfg.DetectRing, e.durable())
		allocBase = descBase + e.desc.Words()
	}
	e.alloc = palloc.New(palloc.Config{
		Base: allocBase,
		End:  uint64(dev.Size()),
	})
	return e
}

func (e *directEngine) Kind() Kind { return e.kind }

func (e *directEngine) NewCtx() *Ctx {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &Ctx{Cache: palloc.NewCache(e.alloc, e.recl)}
	if e.elides() {
		c.Cache.PreFree = func() { e.dev.CommitRelaxed(&c.fs) }
	}
	return c
}

func (e *directEngine) addr(ref Ref, field int) uint64 { return ref + uint64(field) }

// persistsReads reports whether every shared read must be flushed+fenced
// (the Izraelevitz discipline).
func (e *directEngine) persistsReads() bool { return e.kind == Izraelevitz }

// durable reports whether writes must reach the media.
func (e *directEngine) durable() bool { return e.kind == Izraelevitz || e.kind == NVTraverse }

// elides reports whether the flush-elision layer applies. Only the
// traversal transformation opts in: Izraelevitz *is* the blanket
// flush-everything discipline, and eliding it would misrepresent the
// paper's baseline.
func (e *directEngine) elides() bool { return e.kind == NVTraverse && e.dev.Elides() }

func (e *directEngine) OpBegin(c *Ctx) { c.Cache.Enter() }

func (e *directEngine) OpEnd(c *Ctx) {
	if e.durable() {
		if e.elides() && len(c.initLines) > 0 {
			// Deferred inits of an object that was never published
			// (FreeUnpublished): it never became reachable, nothing to
			// persist.
			c.initLines = c.initLines[:0]
			c.initCells = 0
		}
		// Both transformations issue a final fence before an operation
		// returns, so completed operations are durable — unless nothing
		// was flushed since the last fence, in which case the sfence
		// orders no clwb and commits nothing.
		if e.elides() && c.fs.Pending() == 0 {
			e.dev.NoteElided(&c.fs, 0, 1)
		} else {
			e.dev.Fence(&c.fs)
		}
	}
	c.Cache.Exit()
}

func (e *directEngine) Alloc(c *Ctx, fields int) Ref {
	return c.Cache.Alloc(fields)
}

func (e *directEngine) StoreInit(c *Ctx, ref Ref, field int, v uint64) {
	a := e.addr(ref, field)
	e.dev.Store(a, v)
	if e.durable() {
		if e.elides() {
			c.deferInitLine(a / pmem.WordsPerLine)
		} else {
			e.dev.Flush(&c.fs, a)
		}
	}
}

func (e *directEngine) Publish(c *Ctx, ref Ref) {
	if !e.durable() {
		return
	}
	if e.elides() {
		for _, line := range c.initLines {
			e.dev.Flush(&c.fs, line*pmem.WordsPerLine)
		}
		if elided := c.initCells - len(c.initLines); elided > 0 {
			e.dev.NoteElided(&c.fs, uint64(elided), 0)
		}
		c.initLines = c.initLines[:0]
		c.initCells = 0
		if c.fs.Pending() == 0 {
			e.dev.NoteElided(&c.fs, 0, 1)
			return
		}
	}
	e.dev.Fence(&c.fs)
}

func (e *directEngine) FreeUnpublished(c *Ctx, ref Ref, fields int) {
	c.Cache.Free(ref, fields)
}

func (e *directEngine) Retire(c *Ctx, ref Ref, fields int) {
	c.Cache.Retire(ref, fields)
}

func (e *directEngine) Load(c *Ctx, ref Ref, field int) uint64 {
	a := e.addr(ref, field)
	v := e.dev.Load(a)
	if e.durable() {
		// Critical reads are persisted: under Izraelevitz every read,
		// under NVTraverse the reads around the destination (callers
		// use TraversalLoad during search).
		e.dev.Flush(&c.fs, a)
		e.dev.Fence(&c.fs)
	}
	return v
}

func (e *directEngine) TraversalLoad(c *Ctx, ref Ref, field int) uint64 {
	if e.persistsReads() {
		return e.Load(c, ref, field)
	}
	return e.dev.Load(e.addr(ref, field))
}

func (e *directEngine) Store(c *Ctx, ref Ref, field int, v uint64) {
	a := e.addr(ref, field)
	switch {
	case e.kind == Izraelevitz:
		// Fence before every write (orders prior flushed reads/writes),
		// flush after (Izraelevitz et al.'s construction).
		e.dev.Fence(&c.fs)
		e.dev.Store(a, v)
		e.dev.Flush(&c.fs, a)
	case e.kind == NVTraverse:
		// Critical-section writes persist in order.
		e.dev.Store(a, v)
		e.dev.Flush(&c.fs, a)
		e.dev.Fence(&c.fs)
	default:
		e.dev.Store(a, v)
	}
}

func (e *directEngine) CAS(c *Ctx, ref Ref, field int, old, new uint64) bool {
	a := e.addr(ref, field)
	switch {
	case e.kind == Izraelevitz:
		e.dev.Fence(&c.fs)
		ok := e.dev.CAS(a, old, new)
		e.dev.Flush(&c.fs, a)
		return ok
	case e.kind == NVTraverse:
		ok := e.dev.CAS(a, old, new)
		e.dev.Flush(&c.fs, a)
		e.dev.Fence(&c.fs)
		return ok
	default:
		return e.dev.CAS(a, old, new)
	}
}

// CASRelaxed defers the install's durability to the relaxed-line registry
// on the eliding traversal engine; the pre-free drain commits it. Every
// other direct engine keeps its full CAS discipline.
func (e *directEngine) CASRelaxed(c *Ctx, ref Ref, field int, old, new uint64) bool {
	if !e.elides() {
		return e.CAS(c, ref, field, old, new)
	}
	a := e.addr(ref, field)
	ok := e.dev.CAS(a, old, new)
	if ok {
		e.dev.NoteRelaxed(&c.fs, a)
	} else {
		e.dev.Flush(&c.fs, a)
		e.dev.Fence(&c.fs)
	}
	return ok
}

func (e *directEngine) FetchAdd(c *Ctx, ref Ref, field int, delta uint64) uint64 {
	a := e.addr(ref, field)
	switch {
	case e.kind == Izraelevitz:
		e.dev.Fence(&c.fs)
		nv := e.dev.Add(a, delta)
		e.dev.Flush(&c.fs, a)
		return nv - delta
	case e.kind == NVTraverse:
		nv := e.dev.Add(a, delta)
		e.dev.Flush(&c.fs, a)
		e.dev.Fence(&c.fs)
		return nv - delta
	default:
		return e.dev.Add(a, delta) - delta
	}
}

func (e *directEngine) MakePersistent(c *Ctx, ref Ref, fields int) {
	if e.kind != NVTraverse {
		return
	}
	if e.elides() {
		// One clwb per cache line instead of one per field: the fields
		// are contiguous words, so the line range covers them all.
		first := e.addr(ref, 0) / pmem.WordsPerLine
		last := e.addr(ref, fields-1) / pmem.WordsPerLine
		for line := first; line <= last; line++ {
			e.dev.Flush(&c.fs, line*pmem.WordsPerLine)
		}
		if elided := uint64(fields) - (last - first + 1); elided > 0 {
			e.dev.NoteElided(&c.fs, elided, 0)
		}
		e.dev.Fence(&c.fs)
		return
	}
	for f := 0; f < fields; f++ {
		e.dev.Flush(&c.fs, e.addr(ref, f))
	}
	e.dev.Fence(&c.fs)
}

// Drain commits the relaxed-line registry on the eliding traversal
// engine; the other direct engines defer nothing. Config.Combine is
// accepted but inert on every direct engine: the Izraelevitz discipline
// fences around each access and NVTraverse fences its critical section,
// so neither has a post-linearization fence a combine buffer could
// absorb.
func (e *directEngine) Drain(c *Ctx) {
	if e.elides() {
		e.dev.CommitRelaxed(&c.fs)
	}
}

func (e *directEngine) RootRef() Ref { return rootBase }

func (e *directEngine) Freeze() { e.dev.Freeze() }

func (e *directEngine) FreezeAfter(n int64) { e.dev.FreezeAfter(n) }

func (e *directEngine) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	e.dev.Freeze()
	e.dev.Crash(policy, rng)
}

func (e *directEngine) Recover(tr Tracer) { e.RecoverWith(tr, RecoverOptions{}) }

// RecoverWith runs the recovery pipeline on a single-replica engine. The
// durable engines have no replica to copy, so the pipeline degenerates to
// the trace phase plus the allocator rebuild — both still partitioned
// across the configured workers.
func (e *directEngine) RecoverWith(tr Tracer, opts RecoverOptions) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recl = palloc.NewReclaimer()
	if !e.durable() {
		// Nothing survived; reinitialize empty.
		e.alloc.Rebuild(nil)
		return
	}
	if e.desc != nil {
		e.desc.Scrub()
	}
	shards := traceSpans(e.RecoveryLoad, tr, opts)
	e.alloc.RebuildSharded(spanExtents(shards, 1), opts.workers())
}

func (e *directEngine) RecoveryLoad(ref Ref, field int) uint64 {
	return e.dev.ReadRaw(e.addr(ref, field))
}

func (e *directEngine) Clients() int {
	if e.desc == nil {
		return 0
	}
	return e.desc.Clients
}

// DetectRing returns the per-client descriptor ring size (0 with
// detectability off).
func (e *directEngine) DetectRing() int {
	if e.desc == nil {
		return 0
	}
	return e.desc.Ring
}

func (e *directEngine) DetectBegin(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	detectBegin(e.desc, c, &c.fs, client, seq, kind, key, val, deferAnnounce)
}

func (e *directEngine) Linearized(c *Ctx, result bool) {
	if e.desc == nil || !c.det.armed || c.det.delivered {
		return
	}
	if e.kind == Izraelevitz {
		// The Izraelevitz discipline flushes a CAS but fences only before
		// the *next* access, so the linearizing install is not yet durable
		// here. The verdict must never be durable before the install is:
		// commit the install first.
		e.dev.Fence(&c.fs)
	}
	detectLinearized(e.desc, c, &c.fs, result)
}

func (e *directEngine) DetectEnd(c *Ctx, result bool) {
	detectEnd(e.desc, c, &c.fs, result)
}

func (e *directEngine) detectBeginDeferred(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	detectBeginDeferred(e.desc, c, &c.fs, func() { e.detectDrain(c) },
		client, seq, kind, key, val, deferAnnounce)
}

func (e *directEngine) detectEndDeferred(c *Ctx, result bool, rval uint64) {
	detectEndDeferred(e.desc, c, result, rval)
}

// detectDrain publishes c's deferred verdicts. The direct durable engines
// fence at every OpEnd, so the batch's effects are already durable here —
// except flushed-but-unfenced lines (the Izraelevitz install window) and
// the eliding engine's relaxed-line registry, which must commit under
// their own fence before any verdict line can persist.
func (e *directEngine) detectDrain(c *Ctx) {
	if len(c.detPending) == 0 {
		return
	}
	if e.durable() {
		if e.elides() {
			e.dev.CommitRelaxed(&c.fs)
		}
		if c.fs.Pending() > 0 {
			e.dev.Fence(&c.fs)
		}
	}
	publishPending(e.desc, c, &c.fs)
}

func (e *directEngine) Detect(client int, seq uint64) DetectResult {
	if e.desc == nil {
		panic("engine: Detect with detectability disabled (Config.Clients == 0)")
	}
	return e.desc.Detect(client, seq)
}

// PersistentDevices returns the single device for the durable direct
// engines; the non-durable originals have no crash-surviving device.
func (e *directEngine) PersistentDevices() []*pmem.Device {
	if !e.durable() {
		return nil
	}
	return []*pmem.Device{e.dev}
}

func (e *directEngine) Counters() (uint64, uint64) {
	return e.dev.Counters()
}

// Stats has no help protocol to report for the direct engines; the durable
// ones carry the elision counters.
func (e *directEngine) Stats() Stats {
	var s Stats
	if e.durable() {
		ef, en, pb, rx := e.dev.ElisionCounters()
		s = Stats{
			ElidedFlushes: ef, ElidedFences: en,
			PiggybackedFences: pb, RelaxedCAS: rx,
		}
	}
	if e.desc != nil {
		s.DetectAnnounces, s.DetectVerdicts = e.desc.Counters()
	}
	return s
}

func (e *directEngine) Footprint() (uint64, int) {
	return e.alloc.LiveWords(), 1
}
