package engine

import (
	"fmt"
	"sync/atomic"

	"mirror/internal/pmem"
)

// Detectability: per-client recoverable operation-descriptor rings.
//
// A durably linearizable structure guarantees that completed operations
// survive a crash — but after the crash a client still cannot ask "did my
// operation commit?". The descriptor region closes that gap. Each client
// owns a small ring of 16-word entries (two cache lines each) below the
// allocator base of the persistent device; operation seq occupies entry
// (seq-1) mod Ring of its client's ring:
//
//	announce line   w0 seq   w1 kind   w2 key   w3 val   w4 checksum
//	verdict line    w8 seq<<2|result<<1|1   w9 rval   w10 checksum
//
// The protocol is: durably announce (client, seq, payload) before the
// operation runs, publish the verdict after the linearizing install is
// durable, and fence the verdict before the operation's response is
// released to the client. Both lines are checksummed, so a torn line (a
// crash mid-write) is detected rather than misread; client sequence
// numbers are strictly increasing.
//
// The ring generalizes the original one-slot design to pipelined clients:
// a client may hold up to Ring operations in flight (announced, responses
// not yet read) and Detect remains authoritative for every seq in that
// window — the seqs a crash can cut. The contract requires exactly two
// things of the caller:
//
//   - In-flight window ≤ Ring: a client issues seq only after it has read
//     the response for seq-Ring. An entry holding evidence of a *later*
//     lap (announce or verdict for seq+kRing) therefore proves seq's
//     response was released, hence seq committed.
//   - Per-client FIFO execution with verdicts published in seq order
//     after a drain fence (the engines' detectDrain). A durable verdict
//     for a later seq of the same client then proves every earlier seq's
//     effect was durable first — even when the earlier verdict line itself
//     was dropped by the crash — because verdict words are only written
//     after the fence that committed the whole prefix.
//
// Operations older than the ring window delivered their responses long
// ago; a torn overwrite may erase their superseded evidence (the scrubbed
// entry then reads NotCommitted for them). Within the contract this is
// harmless: clients only ask about unacknowledged seqs, which all lie in
// the window.
//
// Ordering is what makes the verdicts sound:
//
//   - The announce is durable before the operation can take effect: a
//     deferred announce rides the operation's own publish fence, which
//     every insert issues strictly before its linearizing CAS; an eager
//     announce (deletes, and any op without a pre-linearization fence)
//     fences immediately. Hence "no valid announce for seq" implies the
//     operation never reached its linearization point — NotCommitted.
//   - The verdict is written only after the linearizing install is
//     durable: Mirror makes every install durable before it is visible,
//     NVTraverse fences inside its CAS, and Izraelevitz — whose CAS is
//     flushed but fenced only before the next access — issues an explicit
//     commit fence in Linearized first. Hence a durable verdict implies a
//     durable effect — Committed.
//   - A valid announce with no verdict proves nothing either way: Unknown.
//
// Descriptors deliberately do not reintroduce a fence per operation: the
// announce of an insert is elided into the operation's existing publish
// fence, the verdict flush piggybacks on the operation's flush set, and
// the one trailing verdict fence is skipped via the elision layer whenever
// an intervening fence already committed it.

// Verdict is a detectability answer for one (client, seq) operation.
type Verdict int

// Verdict values. Unknown is the honest answer for an operation that was
// announced but whose verdict never persisted: it may or may not have taken
// effect (exactly the two fates durable linearizability allows a cut
// operation).
const (
	Unknown Verdict = iota
	Committed
	NotCommitted
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Committed:
		return "Committed"
	case NotCommitted:
		return "NotCommitted"
	default:
		return "Unknown"
	}
}

// Operation kinds recorded in descriptors (word w1 of the announce line).
const (
	DetectInsert uint64 = iota + 1
	DetectDelete
	DetectContains
	DetectEnqueue
	DetectDequeue
	DetectRMW
)

// DetectResult is the full answer of Detect.
type DetectResult struct {
	Verdict Verdict
	// KnownResult reports whether Result and Rval were recorded for this
	// exact seq. It is false when the ring proves the operation committed
	// only indirectly — a later operation of the same client has already
	// overwritten the recorded result, or a later verdict vouches for it.
	KnownResult bool
	// Result is the operation's boolean return value (valid when
	// KnownResult).
	Result bool
	// Rval is an auxiliary return word (dequeued value; zero for sets).
	Rval uint64
}

// Descriptor entry layout, in words relative to the entry base. One entry
// is DescSlotWords words = two cache lines; the announce words share the
// first line and the verdict words the second, so each half persists (or
// tears) as one line. Entries never share a line, so sibling entries of one
// client's ring tear independently.
const (
	DescSlotWords = 2 * pmem.WordsPerLine

	dSeq    = 0
	dKind   = 1
	dKey    = 2
	dVal    = 3
	dAnnChk = 4

	dVerdict = pmem.WordsPerLine
	dRval    = pmem.WordsPerLine + 1
	dVerChk  = pmem.WordsPerLine + 2
)

// DefaultDetectRing is the per-client ring size engines reserve when
// Config.DetectRing is zero and detectability is on: the serving tier's
// default pipeline window.
const DefaultDetectRing = 8

// DescWords returns the size of the descriptor region for the given client
// count and per-client ring size.
func DescWords(clients, ring int) uint64 {
	return uint64(clients) * uint64(ring) * DescSlotWords
}

// mix64 is a splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// annChk checksums an announce line. The folded constant keeps the
// checksum of an all-zero slot from validating.
func annChk(seq, kind, key, val uint64) uint64 {
	return mix64(seq*0x9e3779b97f4a7c15 ^ kind*0xff51afd7ed558ccd ^
		key*0xc2b2ae3d27d4eb4f ^ val ^ 0xd6e8feb86659fd93)
}

// verChk checksums a verdict line.
func verChk(vw, rval uint64) uint64 {
	return mix64(vw*0x9e3779b97f4a7c15 ^ rval ^ 0xa0761d6478bd642f)
}

// DescRegion is a per-client operation-descriptor region on one persistent
// device: Clients rings of Ring entries each. The engines embed one below
// their allocator base; structure packages with their own device layouts
// (durablequeue, zuriel) reuse it at an offset of their choosing, with Ring
// 1 reproducing the original single-slot layout. Each ring is
// single-writer: one client id maps to one ring, written by one worker in
// per-client seq order, with at most Ring operations in flight.
type DescRegion struct {
	Dev     *pmem.Device
	Base    uint64 // first word of client 0's entry 0; must be cache-line aligned
	Clients int
	Ring    int // entries per client; operation seq uses entry (seq-1) mod Ring
	// Durable applies the flush+fence protocol. Leave it false on volatile
	// devices (the non-durable engines): the region is wiped at a crash and
	// every verdict honestly reads NotCommitted.
	Durable bool

	announces atomic.Uint64
	verdicts  atomic.Uint64
}

// NewDescRegion validates and returns a region descriptor. The region's
// words must be reserved by the caller (they are raw words, not allocator
// memory).
func NewDescRegion(dev *pmem.Device, base uint64, clients, ring int, durable bool) *DescRegion {
	if base%pmem.WordsPerLine != 0 {
		panic(fmt.Sprintf("engine: descriptor region base %d is not cache-line aligned", base))
	}
	if clients <= 0 {
		panic("engine: descriptor region needs at least one client")
	}
	if ring <= 0 {
		panic("engine: descriptor ring needs at least one entry")
	}
	return &DescRegion{Dev: dev, Base: base, Clients: clients, Ring: ring, Durable: durable}
}

// ringBase returns the first word of client's ring.
func (r *DescRegion) ringBase(client int) uint64 {
	if client < 0 || client >= r.Clients {
		panic(fmt.Sprintf("engine: descriptor client %d outside [0, %d)", client, r.Clients))
	}
	return r.Base + uint64(client)*uint64(r.Ring)*DescSlotWords
}

// entry returns the first word of the ring entry operation (client, seq)
// occupies.
func (r *DescRegion) entry(client int, seq uint64) uint64 {
	return r.ringBase(client) + (seq-1)%uint64(r.Ring)*DescSlotWords
}

// Words returns the region's size in words.
func (r *DescRegion) Words() uint64 { return DescWords(r.Clients, r.Ring) }

// Begin writes and flushes the announce line for (client, seq). With
// deferAnnounce the announce fence is left to the operation's own publish
// barrier — sound only for operations that fence before their linearizing
// install (inserts); otherwise Begin fences immediately.
func (r *DescRegion) Begin(fs *pmem.FlushSet, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	if seq == 0 {
		panic("engine: detectable sequence numbers start at 1")
	}
	s := r.entry(client, seq)
	r.Dev.Store(s+dSeq, seq)
	r.Dev.Store(s+dKind, kind)
	r.Dev.Store(s+dKey, key)
	r.Dev.Store(s+dVal, val)
	r.Dev.Store(s+dAnnChk, annChk(seq, kind, key, val))
	if r.Durable {
		r.Dev.Flush(fs, s)
		if !deferAnnounce {
			r.Dev.Fence(fs)
		}
	}
	r.announces.Add(1)
}

// Publish writes and flushes the verdict line for (client, seq). It must
// only be called once the operation's effect (if any) is durable — i.e.
// after the linearizing install has returned. It does not fence; End does.
func (r *DescRegion) Publish(fs *pmem.FlushSet, client int, seq uint64, result bool, rval uint64) {
	s := r.entry(client, seq)
	vw := seq<<2 | 1
	if result {
		vw |= 2
	}
	r.Dev.Store(s+dVerdict, vw)
	r.Dev.Store(s+dRval, rval)
	r.Dev.Store(s+dVerChk, verChk(vw, rval))
	if r.Durable {
		r.Dev.Flush(fs, s+dVerdict)
	}
	r.verdicts.Add(1)
}

// End commits the published verdict before the operation returns to the
// client. The fence is elided when an intervening fence of this thread
// already committed the verdict line (the flush set is empty).
func (r *DescRegion) End(fs *pmem.FlushSet) {
	if !r.Durable {
		return
	}
	if r.Dev.Elides() && fs.Pending() == 0 {
		r.Dev.NoteElided(fs, 0, 1)
		return
	}
	r.Dev.Fence(fs)
}

// Detect answers whether (client, seq) committed, from the raw descriptor
// words. It reads the media view (ReadRaw), so it is valid on a quiesced,
// crashed, or recovered device — the recovery-time query the client asks
// before retrying. The answer is authoritative for every seq still inside
// the client's in-flight ring window (the seqs a crash can cut); for seqs
// the ring has lapped, a torn overwrite may erase the superseded evidence,
// which then reads NotCommitted — harmless, since their responses were
// released before the lap could begin.
func (r *DescRegion) Detect(client int, seq uint64) DetectResult {
	if seq == 0 {
		// Sequence numbers start at 1; nothing was ever issued as seq 0.
		return DetectResult{Verdict: NotCommitted}
	}
	s := r.entry(client, seq)
	a0 := r.Dev.ReadRaw(s + dSeq)
	a1 := r.Dev.ReadRaw(s + dKind)
	a2 := r.Dev.ReadRaw(s + dKey)
	a3 := r.Dev.ReadRaw(s + dVal)
	a4 := r.Dev.ReadRaw(s + dAnnChk)
	announced := a0 != 0 && a4 == annChk(a0, a1, a2, a3)
	vw := r.Dev.ReadRaw(s + dVerdict)
	rv := r.Dev.ReadRaw(s + dRval)
	vc := r.Dev.ReadRaw(s + dVerChk)
	verdictOK := vw&1 == 1 && vc == verChk(vw, rv)
	switch {
	case verdictOK && vw>>2 == seq:
		return DetectResult{
			Verdict: Committed, KnownResult: true,
			Result: vw&2 != 0, Rval: rv,
		}
	case verdictOK && vw>>2 > seq, announced && a0 > seq:
		// The entry has lapped past seq (it holds seq+kRing evidence, k≥1).
		// A client issues seq+Ring only after reading seq's response, which
		// is released only after seq's effect and verdict fenced — so seq
		// committed (its recorded result is gone).
		return DetectResult{Verdict: Committed}
	case announced && a0 == seq:
		// Announced, verdict line gone (never published, or dropped by the
		// crash). A durable verdict for a *later* seq in a sibling entry
		// still proves seq committed: verdict words are written only after
		// the drain fence that committed every earlier effect of the client
		// (per-client FIFO), so however that later line persisted — its End
		// fence or a cache eviction — seq's effect was durable first. A
		// sibling *announce* proves nothing: a pipelined client announces
		// a whole window before anything drains.
		base := r.ringBase(client)
		for i := 0; i < r.Ring; i++ {
			sib := base + uint64(i)*DescSlotWords
			if sib == s {
				continue
			}
			svw := r.Dev.ReadRaw(sib + dVerdict)
			srv := r.Dev.ReadRaw(sib + dRval)
			svc := r.Dev.ReadRaw(sib + dVerChk)
			if svw&1 == 1 && svc == verChk(svw, srv) && svw>>2 > seq {
				return DetectResult{Verdict: Committed}
			}
		}
		return DetectResult{Verdict: Unknown}
	default:
		// No announce reached the media for seq (stale, zeroed, or torn):
		// the operation never passed its pre-linearization barrier.
		return DetectResult{Verdict: NotCommitted}
	}
}

// Scrub zeroes torn descriptor lines after a crash: a line whose checksum
// does not validate can never again yield a verdict, so recovery replaces
// it with the canonical empty encoding and persists the wipe. Idempotent —
// a crash during recovery re-scrubs the same lines.
func (r *DescRegion) Scrub() {
	for i := 0; i < r.Clients*r.Ring; i++ {
		s := r.Base + uint64(i)*DescSlotWords
		a0 := r.Dev.ReadRaw(s + dSeq)
		a4 := r.Dev.ReadRaw(s + dAnnChk)
		if a0 != 0 || a4 != 0 {
			a1 := r.Dev.ReadRaw(s + dKind)
			a2 := r.Dev.ReadRaw(s + dKey)
			a3 := r.Dev.ReadRaw(s + dVal)
			if a0 == 0 || a4 != annChk(a0, a1, a2, a3) {
				for w := uint64(dSeq); w <= dAnnChk; w++ {
					r.Dev.WriteRaw(s+w, 0)
				}
			}
		}
		vw := r.Dev.ReadRaw(s + dVerdict)
		rv := r.Dev.ReadRaw(s + dRval)
		vc := r.Dev.ReadRaw(s + dVerChk)
		if (vw != 0 || rv != 0 || vc != 0) && (vw&1 != 1 || vc != verChk(vw, rv)) {
			for w := uint64(dVerdict); w <= dVerChk; w++ {
				r.Dev.WriteRaw(s+w, 0)
			}
		}
	}
	if r.Durable {
		r.Dev.PersistRange(r.Base, int(r.Words()))
	}
}

// Counters reports cumulative announces and verdict publishes.
func (r *DescRegion) Counters() (announces, verdicts uint64) {
	return r.announces.Load(), r.verdicts.Load()
}

// descState is the per-Ctx armed-operation state of the engine-integrated
// descriptor protocol.
type descState struct {
	armed     bool
	delivered bool
	deferred  bool // batched-verdict mode: publication waits for DetectDrain
	client    int
	seq       uint64
}

// pendingVerdict is one deferred verdict awaiting its context's next
// DetectDrain.
type pendingVerdict struct {
	client int
	seq    uint64
	result bool
	rval   uint64
}

// detectBegin arms the descriptor protocol for one operation on c.
func detectBegin(r *DescRegion, c *Ctx, fs *pmem.FlushSet, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	if r == nil {
		panic("engine: detectability is disabled (Config.Clients == 0)")
	}
	if c.det.armed {
		panic("engine: DetectBegin while a detectable operation is already armed")
	}
	r.Begin(fs, client, seq, kind, key, val, deferAnnounce)
	c.det = descState{armed: true, client: client, seq: seq}
}

// detectLinearized publishes the armed operation's verdict; called by the
// structures immediately after their linearizing install returns (so the
// effect is already durable). A no-op when nothing is armed, so structures
// call it unconditionally.
func detectLinearized(r *DescRegion, c *Ctx, fs *pmem.FlushSet, result bool) {
	if r == nil || !c.det.armed || c.det.delivered || c.det.deferred {
		// In batched-verdict mode nothing publishes mid-operation: the
		// verdict is recorded by detectEndDeferred and persists at the
		// next drain, after the batch's effects.
		return
	}
	r.Publish(fs, c.det.client, c.det.seq, result, 0)
	c.det.delivered = true
}

// detectEnd publishes the verdict if no linearization hook did (operations
// that completed without a linearizing install, e.g. a failed insert or a
// Contains) and commits it before the operation returns to the client.
func detectEnd(r *DescRegion, c *Ctx, fs *pmem.FlushSet, result bool) {
	if r == nil || !c.det.armed {
		return
	}
	if !c.det.delivered {
		r.Publish(fs, c.det.client, c.det.seq, result, 0)
	}
	r.End(fs)
	c.det = descState{}
}

// detectBeginDeferred arms the descriptor protocol in batched-verdict mode.
// A pending verdict about to be *lapped* — one for the same client whose
// entry seq would overwrite (seq - pending ≥ Ring) — forces a drain first:
// the Detect inference "entry lapped past seq implies seq committed" is
// sound only if the lapped operation's effect and verdict are durable
// before the overwriting announce can be. Within the ring window no drain
// is forced — that is the pipelining win: a client keeps up to Ring
// operations pending under one eventual drain fence.
func detectBeginDeferred(r *DescRegion, c *Ctx, fs *pmem.FlushSet, drain func(),
	client int, seq, kind, key, val uint64, deferAnnounce bool) {
	if ringCollision(c.detPending, client, seq, r.Ring) {
		drain()
	}
	detectBegin(r, c, fs, client, seq, kind, key, val, deferAnnounce)
	c.det.deferred = true
}

// ringCollision reports whether arming (client, seq) would overwrite the
// ring entry of a verdict still pending on c — pendings are FIFO, so the
// client's oldest pending seq decides.
func ringCollision(pending []pendingVerdict, client int, seq uint64, ring int) bool {
	for _, pv := range pending {
		if pv.client == client {
			return seq-pv.seq >= uint64(ring)
		}
	}
	return false
}

// detectEndDeferred records the armed operation's verdict (with its
// auxiliary return word) for the next drain and disarms the context.
func detectEndDeferred(r *DescRegion, c *Ctx, result bool, rval uint64) {
	if r == nil || !c.det.armed {
		return
	}
	if !c.det.deferred {
		panic("engine: DetectEndDeferred on an operation armed with DetectBegin")
	}
	c.detPending = append(c.detPending, pendingVerdict{
		client: c.det.client, seq: c.det.seq, result: result, rval: rval,
	})
	c.det = descState{}
}

// publishPending flushes every pending verdict and commits them under one
// End fence. The caller must already have made the batch's effects durable
// (the drain fence); see the engines' detectDrain methods.
func publishPending(r *DescRegion, c *Ctx, fs *pmem.FlushSet) {
	if c.det.armed {
		panic("engine: DetectDrain while a detectable operation is armed")
	}
	for _, pv := range c.detPending {
		r.Publish(fs, pv.client, pv.seq, pv.result, pv.rval)
	}
	c.detPending = c.detPending[:0]
	r.End(fs)
}

// DetectOp describes one detectable operation for ExactlyOnce.
type DetectOp struct {
	Client int
	Seq    uint64
	Kind   uint64 // DetectInsert | DetectDelete | DetectContains
	Key    uint64
	Val    uint64
	// DeferAnnounce lets the announce fence ride the operation's own
	// publish barrier. Only sound for operations that issue a fence before
	// their linearizing install — inserts do (the new node's publish
	// barrier); deletes and queries must leave it false.
	DeferAnnounce bool
	// Run executes the operation body under the armed descriptor.
	Run func(c *Ctx) bool
}

// Outcome is the result of an ExactlyOnce call.
type Outcome struct {
	// Ran reports whether the operation body executed in this call (false
	// when the descriptor already proved it committed, or the verdict was
	// Unknown and replay was not requested).
	Ran bool
	// Verdict is the Detect answer that routed the call.
	Verdict Verdict
	// Result is the operation's return value; valid when Known.
	Result bool
	Known  bool
	Rval   uint64
}

// ExactlyOnce runs op at most once across crashes: it consults Detect for
// (op.Client, op.Seq) and replays the operation iff the descriptor proves
// it did not commit. With replayUnknown, an Unknown verdict is also
// replayed — sound for idempotent set operations, whose re-execution after
// a took-effect cut changes no state (only the returned boolean may differ
// from what the cut execution would have returned); leave it false for
// non-idempotent operations such as queue updates.
func ExactlyOnce(e Engine, c *Ctx, op DetectOp, replayUnknown bool) Outcome {
	d := e.Detect(op.Client, op.Seq)
	switch {
	case d.Verdict == Committed:
		return Outcome{Verdict: Committed, Result: d.Result, Known: d.KnownResult, Rval: d.Rval}
	case d.Verdict == Unknown && !replayUnknown:
		return Outcome{Verdict: Unknown}
	}
	e.DetectBegin(c, op.Client, op.Seq, op.Kind, op.Key, op.Val, op.DeferAnnounce)
	res := op.Run(c)
	e.DetectEnd(c, res)
	return Outcome{Ran: true, Verdict: d.Verdict, Result: res, Known: true}
}
