package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"mirror/internal/pmem"
	"mirror/internal/recovery"
)

// Sharded spans N independent device shards, each a complete sub-engine of
// the configured kind: its own devices, allocator, reclaimer, descriptor
// slots, elision watermarks, and combine buffers. The keyspace is
// hash-partitioned across the shards (pmem.ShardOf), and every property the
// single-device engines establish — durable-before-visible installs, the
// pre-free drain gate, descriptor soundness — holds per shard because each
// shard *is* a single-device engine. The parent is a router: it owns no
// device and no refs, so the ref-based Engine methods panic here and
// callers route by key to a shard sub-engine instead (Route/Sub). The
// structures.Sharded wrapper does exactly that.
//
// Per-shard allocators fall out of the composition: each sub-engine owns
// its allocator, so PreFree drain gating is shard-local — a drain batch on
// shard i commits only shard i's relaxed lines and combine buffer, never
// stalling on another shard's device.
type Sharded struct {
	kind    Kind
	shards  int
	clients int // total logical clients across all shards
	ring    int // per-client descriptor ring size (the sub-engines')
	subs    []Engine
	numa    *pmem.NUMA // nil without the NUMA latency preset

	// nextHome deals NewCtx home shards round-robin, so a balanced thread
	// set spreads its homes across the shard set (the NUMA preset's
	// per-socket thread pinning).
	nextHome atomic.Int64
}

// NewSharded builds a sharded engine with cfg.Shards sub-engines (at least
// one). Config.Words sizes each shard's devices; Config.Clients descriptor
// slots are dealt across the shards — client c's slot lives on shard
// c mod Shards, at per-shard slot c div Shards.
func NewSharded(cfg Config) *Sharded {
	cfg.setDefaults()
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	e := &Sharded{kind: cfg.Kind, shards: n, clients: cfg.Clients, ring: cfg.DetectRing}
	if cfg.NUMARemoteNS > 0 {
		e.numa = pmem.NUMAModel(cfg.NUMARemoteNS)
	}
	sub := cfg
	sub.Shards = 0
	sub.NUMARemoteNS = 0
	if cfg.Clients > 0 {
		// Every shard reserves the worst-case slot count, so the layout is
		// identical across shards and independent of which clients run.
		sub.Clients = (cfg.Clients + n - 1) / n
	}
	e.subs = make([]Engine, n)
	for i := range e.subs {
		e.subs[i] = New(sub)
	}
	return e
}

// Shards returns the shard count.
func (e *Sharded) Shards() int { return e.shards }

// Sub returns shard i's sub-engine.
func (e *Sharded) Sub(i int) Engine { return e.subs[i] }

// Map returns the engine's keyspace partition.
func (e *Sharded) Map() pmem.ShardMap { return pmem.ShardMap{Shards: e.shards} }

// Route returns the home shard of key and the per-shard context to operate
// with, charging the NUMA preset's remote-socket penalty when the key
// routes off the calling thread's home shard.
func (e *Sharded) Route(c *Ctx, key uint64) (int, *Ctx) {
	s := pmem.ShardOf(key, e.shards)
	if s != c.home && e.numa != nil {
		e.numa.Penalize()
	}
	return s, c.sub[s]
}

// Kind identifies the implementation (the sub-engines' kind).
func (e *Sharded) Kind() Kind { return e.kind }

// NewCtx creates a router context holding one real per-shard context per
// sub-engine (a FlushSet binds to exactly one device, so each shard needs
// its own). Home shards are dealt round-robin.
func (e *Sharded) NewCtx() *Ctx {
	c := &Ctx{
		sub:  make([]*Ctx, e.shards),
		home: int(e.nextHome.Add(1)-1) % e.shards,
	}
	for i, s := range e.subs {
		c.sub[i] = s.NewCtx()
	}
	return c
}

// refPanic reports a ref-based call on the router. Refs are word offsets on
// one shard's devices; the parent cannot interpret them.
func refPanic(op string) {
	panic(fmt.Sprintf("engine: %s on a sharded engine — route by key to a shard sub-engine (Route/Sub)", op))
}

// OpBegin is a no-op on the router: operations bracket on the shard they
// route to (the sub-structures call the sub-engine's OpBegin/OpEnd with the
// routed context).
func (e *Sharded) OpBegin(c *Ctx) {}

// OpEnd is a no-op on the router; see OpBegin.
func (e *Sharded) OpEnd(c *Ctx) {}

func (e *Sharded) Alloc(c *Ctx, fields int) Ref {
	refPanic("Alloc")
	return 0
}

func (e *Sharded) StoreInit(c *Ctx, ref Ref, field int, v uint64) { refPanic("StoreInit") }

func (e *Sharded) Publish(c *Ctx, ref Ref) { refPanic("Publish") }

func (e *Sharded) FreeUnpublished(c *Ctx, ref Ref, fields int) { refPanic("FreeUnpublished") }

func (e *Sharded) Retire(c *Ctx, ref Ref, fields int) { refPanic("Retire") }

func (e *Sharded) Load(c *Ctx, ref Ref, field int) uint64 {
	refPanic("Load")
	return 0
}

func (e *Sharded) TraversalLoad(c *Ctx, ref Ref, field int) uint64 {
	refPanic("TraversalLoad")
	return 0
}

func (e *Sharded) Store(c *Ctx, ref Ref, field int, v uint64) { refPanic("Store") }

func (e *Sharded) CAS(c *Ctx, ref Ref, field int, old, new uint64) bool {
	refPanic("CAS")
	return false
}

func (e *Sharded) CASRelaxed(c *Ctx, ref Ref, field int, old, new uint64) bool {
	refPanic("CASRelaxed")
	return false
}

func (e *Sharded) FetchAdd(c *Ctx, ref Ref, field int, delta uint64) uint64 {
	refPanic("FetchAdd")
	return 0
}

func (e *Sharded) MakePersistent(c *Ctx, ref Ref, fields int) { refPanic("MakePersistent") }

// Drain commits every shard's deferred obligations for this context.
func (e *Sharded) Drain(c *Ctx) {
	for i, s := range e.subs {
		s.Drain(c.sub[i])
	}
}

func (e *Sharded) RootRef() Ref {
	refPanic("RootRef")
	return 0
}

// Freeze freezes every shard's devices.
func (e *Sharded) Freeze() {
	for _, s := range e.subs {
		s.Freeze()
	}
}

// FreezeAfter arms the countdown on every shard's persistent device:
// whichever shard reaches its n-th subsequent operation first takes the
// freeze, so a crash can land mid-operation on any shard.
func (e *Sharded) FreezeAfter(n int64) {
	for _, s := range e.subs {
		s.FreezeAfter(n)
	}
}

// Crash freezes every shard first — no shard keeps running while another
// has lost power — then crashes each in shard order. Per-shard fault
// models (pmem.ShardFaultModels) keep the media damage independent.
func (e *Sharded) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	e.Freeze()
	for _, s := range e.subs {
		s.Crash(policy, rng)
	}
}

// Recover panics: one sequential tracer cannot trace N disjoint shard
// structures. Use RecoverShards with the wrapper's per-shard tracers.
func (e *Sharded) Recover(tr Tracer) {
	panic("engine: Recover on a sharded engine — use RecoverShards with per-shard tracers (structures.Sharded.ShardTracers)")
}

// RecoverWith panics; see Recover.
func (e *Sharded) RecoverWith(tr Tracer, opts RecoverOptions) {
	panic("engine: RecoverWith on a sharded engine — use RecoverShards with per-shard tracers (structures.Sharded.ShardTracers)")
}

// RecoverShards rebuilds every shard after a crash, shard-concurrent:
// shards recover in parallel (one recovery.Run task each) while each
// shard's own trace/rebuild pipeline runs with opts.Parallelism workers,
// exactly as an unsharded RecoverWith would. trs[i] is shard i's tracer —
// it must trace only shard i's sub-structure. Recovery writes only
// volatile replicas and allocator state, so the persistent media is
// untouched and the result is independent of both the shard interleaving
// and the per-shard worker count.
func (e *Sharded) RecoverShards(trs []Tracer, opts RecoverOptions) {
	if len(trs) != e.shards {
		panic(fmt.Sprintf("engine: RecoverShards needs one tracer per shard (%d != %d)", len(trs), e.shards))
	}
	recovery.Run(e.shards, e.shards, func(i int) {
		e.subs[i].RecoverWith(trs[i], RecoverOptions{Parallelism: opts.Parallelism})
	})
}

func (e *Sharded) RecoveryLoad(ref Ref, field int) uint64 {
	refPanic("RecoveryLoad")
	return 0
}

// PersistentDevices returns every shard's persistent devices, concatenated
// in shard order (the order pmem.ShardedDevice composes fingerprints in).
func (e *Sharded) PersistentDevices() []*pmem.Device {
	var devs []*pmem.Device
	for _, s := range e.subs {
		devs = append(devs, s.PersistentDevices()...)
	}
	return devs
}

// Clients returns the total logical client count across all shards.
func (e *Sharded) Clients() int { return e.clients }

// DetectRing returns the per-client descriptor ring size (0 with
// detectability off). Every client's ring lives wholly on its slot shard.
func (e *Sharded) DetectRing() int {
	if e.clients == 0 {
		return 0
	}
	return e.ring
}

// clientSlot maps a logical client id to its slot shard and per-shard slot.
func (e *Sharded) clientSlot(client int) (shard, slot int) {
	return client % e.shards, client / e.shards
}

// DetectBegin announces (client, seq) on the client's slot shard. The
// announce fence is always eager here: a deferred announce rides the
// operation's own publish fence, but that fence lands on the *effect*
// shard's device, which never orders the announce line on the slot shard —
// across shards the elision would be unsound, so it is not offered.
func (e *Sharded) DetectBegin(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	sh, slot := e.clientSlot(client)
	e.subs[sh].DetectBegin(c.sub[sh], slot, seq, kind, key, val, false)
	// The router remembers which client is armed so DetectEnd can find the
	// slot shard again; the protocol state proper lives on the slot shard's
	// sub-context.
	c.det = descState{armed: true, client: client, seq: seq}
}

// Linearized is a no-op on the router: the operation's effect lands on a
// shard the router cannot identify from here, so publishing the verdict now
// could make it durable before the effect. The verdict publishes in
// DetectEnd instead, after every shard's deferred durability has drained.
// (A sub-structure's own Linearized call still fires on its shard; when the
// effect shard happens to be the slot shard, that publishes the verdict
// mid-operation exactly as an unsharded engine would.)
func (e *Sharded) Linearized(c *Ctx, result bool) {}

// DetectEnd completes the armed operation's descriptor protocol. Before the
// verdict may persist, the operation's effect must be durable wherever it
// landed: the direct durable engines fenced it at the sub-operation's
// OpEnd, and Mirror installs are durable before visible — except for
// deferred durability (relaxed lines, combine buffers), which Drain commits
// on every shard first. Then the slot shard publishes and fences the
// verdict.
func (e *Sharded) DetectEnd(c *Ctx, result bool) {
	if !c.det.armed {
		return
	}
	e.Drain(c)
	sh, _ := e.clientSlot(c.det.client)
	e.subs[sh].DetectEnd(c.sub[sh], result)
	c.det = descState{}
}

// detectBeginDeferred arms (client, seq) in batched-verdict mode on the
// client's slot shard. The announce is always eager (see DetectBegin — the
// cross-shard elision is unsound), and the lap guard runs here rather than
// in the sub-engine because a lapped pending verdict may testify to an
// effect on a *different* shard: the forced drain must commit every shard,
// not just the slot shard.
func (e *Sharded) detectBeginDeferred(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	sh, slot := e.clientSlot(client)
	if ringCollision(c.sub[sh].detPending, slot, seq, e.ring) {
		e.detectDrain(c)
	}
	e.subs[sh].(deferredDetector).detectBeginDeferred(c.sub[sh], slot, seq, kind, key, val, false)
	c.det = descState{armed: true, deferred: true, client: client, seq: seq}
}

// detectEndDeferred records the armed operation's verdict on its slot
// shard for the next drain.
func (e *Sharded) detectEndDeferred(c *Ctx, result bool, rval uint64) {
	if !c.det.armed {
		return
	}
	sh, _ := e.clientSlot(c.det.client)
	e.subs[sh].(deferredDetector).detectEndDeferred(c.sub[sh], result, rval)
	c.det = descState{}
}

// detectDrain publishes every verdict deferred on c, across all slot
// shards. Verdicts publish only after every touched shard drains: the
// batch's effects land wherever their keys hash, so one all-shard Drain
// commits them all before any verdict line is written — the same
// effect-before-verdict order DetectEnd enforces per operation.
func (e *Sharded) detectDrain(c *Ctx) {
	pending := false
	for _, sc := range c.sub {
		if len(sc.detPending) > 0 {
			pending = true
			break
		}
	}
	if !pending {
		return
	}
	e.Drain(c)
	for i, s := range e.subs {
		if d, ok := s.(deferredDetector); ok {
			d.detectDrain(c.sub[i])
		}
	}
}

// Detect answers for (client, seq) from the client's slot shard.
func (e *Sharded) Detect(client int, seq uint64) DetectResult {
	sh, slot := e.clientSlot(client)
	return e.subs[sh].Detect(slot, seq)
}

// Counters sums flush and fence counts across all shards.
func (e *Sharded) Counters() (flushes, fences uint64) {
	for _, s := range e.subs {
		f, n := s.Counters()
		flushes += f
		fences += n
	}
	return flushes, fences
}

// ShardCounters reports each shard's cumulative (flushes, fences) — the
// per-shard benchmark panels.
func (e *Sharded) ShardCounters() (flushes, fences []uint64) {
	flushes = make([]uint64, e.shards)
	fences = make([]uint64, e.shards)
	for i, s := range e.subs {
		flushes[i], fences[i] = s.Counters()
	}
	return flushes, fences
}

// addStats accumulates b into a field-wise.
func addStats(a *Stats, b Stats) {
	a.Helps += b.Helps
	a.Retries += b.Retries
	a.ElidedFlushes += b.ElidedFlushes
	a.ElidedFences += b.ElidedFences
	a.PiggybackedFences += b.PiggybackedFences
	a.RelaxedCAS += b.RelaxedCAS
	a.DetectAnnounces += b.DetectAnnounces
	a.DetectVerdicts += b.DetectVerdicts
	a.CombinedFences += b.CombinedFences
	a.DrainCauses.Capacity += b.DrainCauses.Capacity
	a.DrainCauses.Epoch += b.DrainCauses.Epoch
	a.DrainCauses.Conflict += b.DrainCauses.Conflict
	a.DrainCauses.Detect += b.DrainCauses.Detect
	a.DrainCauses.PreFree += b.DrainCauses.PreFree
	a.DrainCauses.Expose += b.DrainCauses.Expose
	a.DrainCauses.Explicit += b.DrainCauses.Explicit
}

// Stats rolls the shards' statistics up field-wise.
func (e *Sharded) Stats() Stats {
	var total Stats
	for _, s := range e.subs {
		addStats(&total, s.Stats())
	}
	return total
}

// ShardStats reports each shard's statistics separately.
func (e *Sharded) ShardStats() []Stats {
	out := make([]Stats, e.shards)
	for i, s := range e.subs {
		out[i] = s.Stats()
	}
	return out
}

// Footprint sums live words across shards; the replica count is the
// sub-engines' (identical on every shard).
func (e *Sharded) Footprint() (words uint64, replicas int) {
	for _, s := range e.subs {
		w, r := s.Footprint()
		words += w
		replicas = r
	}
	return words, replicas
}
