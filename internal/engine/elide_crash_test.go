package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"mirror/internal/pmem"
)

// rootTracer is the recovery tracer for workloads that live entirely in
// the persistent root object: nothing on the heap to visit.
func rootTracer(read func(Ref, int) uint64, visit func(Ref, int)) {}

// TestFetchAddStoreCrashSweepUnderFaults crashes FetchAdd/Store workloads
// at seeded points under the eviction+drop adversary, on every durable
// engine with the elision layer in its default (on) state. The two
// counters live in root fields 0 and 1 — cells at offsets 8 and 10, the
// same cache line — so one field's flush+fence commits the other field's
// line too, which is exactly the situation the watermark and commit-ticket
// probes feed on. After recovery the Lemma 5.3–5.5 replica invariants
// must hold and each counter must be the last completed value or the
// single in-flight one: elision may skip redundant instructions, but a
// completed operation's durability must never depend on an eviction.
func TestFetchAddStoreCrashSweepUnderFaults(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Durable() {
			continue
		}
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(k) + 1))
			for round := 0; round < 25; round++ {
				e := New(Config{Kind: k, Words: 1 << 18, RootFields: 4, Track: true})
				for _, d := range e.PersistentDevices() {
					d.InjectFaults(pmem.NewFaultModel(int64(round+1), pmem.FaultSpec{Evict: true, Drop: true}))
				}
				c := e.NewCtx()
				var completedAdd, completedStore uint64
				e.FreezeAfter(int64(rng.Intn(400) + 1))
				func() {
					defer func() {
						if r := recover(); r != nil && r != pmem.ErrFrozen {
							panic(r)
						}
					}()
					for i := uint64(1); i <= 1000; i++ {
						e.OpBegin(c)
						e.FetchAdd(c, e.RootRef(), 0, 1)
						e.OpEnd(c)
						completedAdd = i
						e.OpBegin(c)
						e.Store(c, e.RootRef(), 1, i)
						e.OpEnd(c)
						completedStore = i
					}
				}()
				e.Freeze()
				e.Crash(pmem.CrashDropAll, rng)
				e.Recover(rootTracer)

				if msg := CheckMirrorInvariants(e, e.RootRef(), 2); msg != "" {
					t.Fatalf("round %d: %s", round, msg)
				}
				c2 := e.NewCtx()
				e.OpBegin(c2)
				v0 := e.Load(c2, e.RootRef(), 0)
				v1 := e.Load(c2, e.RootRef(), 1)
				e.OpEnd(c2)
				if v0 != completedAdd && v0 != completedAdd+1 {
					t.Fatalf("round %d: FetchAdd counter = %d, want %d or %d",
						round, v0, completedAdd, completedAdd+1)
				}
				if v1 != completedStore && v1 != completedStore+1 {
					t.Fatalf("round %d: Store counter = %d, want %d or %d",
						round, v1, completedStore, completedStore+1)
				}
			}
		})
	}
}

// TestElisionAblationEquivalence pins that -noelide is purely a
// performance switch: the same quiesced workload leaves bit-identical
// persistent media with the layer on and off.
func TestElisionAblationEquivalence(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Durable() {
			continue
		}
		t.Run(k.String(), func(t *testing.T) {
			images := make([]string, 2)
			for i, noElide := range []bool{false, true} {
				e := New(Config{Kind: k, Words: 1 << 18, RootFields: 4, Track: true, NoElide: noElide})
				c := e.NewCtx()
				for i := uint64(1); i <= 50; i++ {
					e.OpBegin(c)
					ref := e.Alloc(c, 2)
					e.StoreInit(c, ref, 0, 100+i)
					e.StoreInit(c, ref, 1, e.Load(c, e.RootRef(), 0))
					e.Publish(c, ref)
					e.CAS(c, e.RootRef(), 0, e.Load(c, e.RootRef(), 0), ref)
					e.FetchAdd(c, e.RootRef(), 1, i)
					e.OpEnd(c)
				}
				var hashes []uint64
				for _, d := range e.PersistentDevices() {
					d.Freeze()
					hashes = append(hashes, d.MediaHash())
				}
				images[i] = fmt.Sprint(hashes)
			}
			if images[0] != images[1] {
				t.Fatalf("elision changed the persistent image: %s vs %s", images[0], images[1])
			}
		})
	}
}
