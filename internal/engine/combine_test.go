package engine

import (
	"testing"

	"mirror/internal/pmem"
)

func newCombineEngine(t *testing.T, clients int) Engine {
	t.Helper()
	return New(Config{Kind: MirrorDRAM, Words: 1 << 16, Track: true, Clients: clients, Combine: true})
}

// allocLine allocates an 8-field object (16 words in the two-word cell
// layout), so consecutive allocations never share a cache line and each
// CAS below buffers a distinct line.
func allocLine(e Engine, c *Ctx) Ref {
	ref := e.Alloc(c, 8)
	for f := 0; f < 8; f++ {
		e.StoreInit(c, ref, f, 1)
	}
	e.Publish(c, ref)
	return ref
}

// TestCombineDrainCapacityPinned pins the capacity drain to the exact
// instruction count: eight combined CASes on eight distinct lines cost
// zero fences until the eighth CombineAdd trips the line-capacity
// trigger, whose drain issues exactly one flush per buffered line and a
// single fence — (8 flushes, 1 fence) for 8 linearizing installs, where
// the eager path pays (8, 8).
func TestCombineDrainCapacityPinned(t *testing.T) {
	e := newCombineEngine(t, 0)
	c := e.NewCtx()
	e.OpBegin(c)
	refs := make([]Ref, 8)
	for i := range refs {
		refs[i] = allocLine(e, c)
	}
	f0, n0 := e.Counters()
	for i, ref := range refs {
		if !e.CAS(c, ref, 0, 1, 2) {
			t.Fatalf("CAS %d failed", i)
		}
		if i < 7 {
			if f, n := e.Counters(); f != f0 || n != n0 {
				t.Fatalf("CAS %d issued persistence ops early: flushes %d->%d fences %d->%d", i, f0, f, n0, n)
			}
		}
	}
	f1, n1 := e.Counters()
	if f1-f0 != 8 || n1-n0 != 1 {
		t.Fatalf("capacity drain: got (%d flushes, %d fences), want (8, 1)", f1-f0, n1-n0)
	}
	s := e.Stats()
	if s.CombinedFences != 8 {
		t.Fatalf("CombinedFences = %d, want 8", s.CombinedFences)
	}
	if s.DrainCauses.Capacity != 1 || s.DrainCauses != (pmem.DrainCauses{Capacity: 1}) {
		t.Fatalf("drain causes = %+v, want exactly one capacity drain", s.DrainCauses)
	}
	e.OpEnd(c)
}

// TestCombineDrainEpochPinned pins the epoch drain: one buffered CAS
// rides through seven operation boundaries fence-free; the eighth OpEnd
// pulse drains it with exactly one flush and one fence.
func TestCombineDrainEpochPinned(t *testing.T) {
	e := newCombineEngine(t, 0)
	c := e.NewCtx()
	e.OpBegin(c)
	ref := allocLine(e, c)
	f0, n0 := e.Counters()
	if !e.CAS(c, ref, 0, 1, 2) {
		t.Fatal("CAS failed")
	}
	e.OpEnd(c)               // pulse 1
	for i := 0; i < 6; i++ { // pulses 2..7
		e.OpBegin(c)
		e.OpEnd(c)
	}
	if f, n := e.Counters(); f != f0 || n != n0 {
		t.Fatalf("drained before the epoch elapsed: flushes %d->%d fences %d->%d", f0, f, n0, n)
	}
	e.OpBegin(c)
	e.OpEnd(c) // pulse 8: epoch drain
	f1, n1 := e.Counters()
	if f1-f0 != 1 || n1-n0 != 1 {
		t.Fatalf("epoch drain: got (%d flushes, %d fences), want (1, 1)", f1-f0, n1-n0)
	}
	if s := e.Stats(); s.DrainCauses != (pmem.DrainCauses{Epoch: 1}) {
		t.Fatalf("drain causes = %+v, want exactly one epoch drain", s.DrainCauses)
	}
}

// TestCombineDrainConflictPinned pins the conflict probe: a reader that
// observes another thread's buffered line commits it with exactly one
// flush and one fence, and the owner's later explicit drain then elides
// everything — the committed line costs nothing twice.
func TestCombineDrainConflictPinned(t *testing.T) {
	e := newCombineEngine(t, 0)
	c1 := e.NewCtx()
	e.OpBegin(c1)
	ref := allocLine(e, c1)
	if !e.CAS(c1, ref, 0, 1, 2) {
		t.Fatal("CAS failed")
	}
	e.OpEnd(c1)

	c2 := e.NewCtx()
	f0, n0 := e.Counters()
	e.OpBegin(c2)
	if v := e.Load(c2, ref, 0); v != 2 {
		t.Fatalf("Load = %d, want 2", v)
	}
	e.OpEnd(c2)
	f1, n1 := e.Counters()
	if f1-f0 != 1 || n1-n0 != 1 {
		t.Fatalf("conflict probe: got (%d flushes, %d fences), want (1, 1)", f1-f0, n1-n0)
	}
	if s := e.Stats(); s.DrainCauses != (pmem.DrainCauses{Conflict: 1}) {
		t.Fatalf("drain causes = %+v, want exactly one conflict drain", s.DrainCauses)
	}

	// The owner's combine drain finds its only line already committed by
	// the prober: the flush is elided against the watermark and the fence
	// is skipped outright — the committed line costs nothing twice. (The
	// full engine Drain additionally runs CommitRelaxed, whose registry
	// conservatively re-commits the line; this pins the combine layer.)
	me := e.(*mirrorEngine)
	me.mem.P.CombineDrain(&c1.pa.FS, pmem.DrainExplicit)
	f2, n2 := e.Counters()
	if f2 != f1 || n2 != n1 {
		t.Fatalf("owner drain after probe still issued (%d flushes, %d fences)", f2-f1, n2-n1)
	}
	if s := e.Stats(); s.DrainCauses.Explicit != 1 {
		t.Fatalf("drain causes = %+v, want the explicit drain recorded", s.DrainCauses)
	}
	if last, drained := CombineTickets(c1); last != 1 || drained != 1 {
		t.Fatalf("owner tickets = (%d, %d), want (1, 1) after the elided drain", last, drained)
	}
}

// TestCombineDrainDetectPinned pins the pre-verdict drain: a detectable
// operation's linearizing CAS buffers its fence, and the verdict publish
// in Linearized must drain the buffer (cause: detect) before the verdict
// can reach media — the verdict is never durable before the install.
func TestCombineDrainDetectPinned(t *testing.T) {
	e := newCombineEngine(t, 1)
	c := e.NewCtx()
	e.OpBegin(c)
	ref := allocLine(e, c)
	e.DetectBegin(c, 0, 1, DetectInsert, 7, 7, true)
	f0, n0 := e.Counters()
	if !e.CAS(c, ref, 0, 1, 2) {
		t.Fatal("CAS failed")
	}
	if f, n := e.Counters(); f != f0 || n != n0 {
		t.Fatalf("combined CAS issued persistence ops: flushes %d->%d fences %d->%d", f0, f, n0, n)
	}
	e.Linearized(c, true)
	if s := e.Stats(); s.DrainCauses.Detect != 1 {
		t.Fatalf("drain causes = %+v, want a detect drain before the verdict", s.DrainCauses)
	}
	e.DetectEnd(c, true)
	e.OpEnd(c)
	if v := e.Detect(0, 1); v.Verdict != Committed || !v.Result {
		t.Fatalf("Detect = %+v, want Committed/true", v)
	}
}

// TestCombineAdoptWitnessPinned pins write-path adoption to the exact
// instruction counts. An update traversal crossing a foreign buffered
// install adopts the line into its own buffer at zero immediate cost
// (where the probing load pays a (1, 1) conflict drain on the spot);
// the adopted line counts as owned, so the exposure gate sees it; a
// no-effect verdict with no undrained ticket of its own then commits
// the witness with exactly one flush and one fence (cause: expose), and
// a second witness after the drain is free. A walker that *does* hold
// an undrained ticket pays nothing — its verdict vanishes with the
// ticket.
func TestCombineAdoptWitnessPinned(t *testing.T) {
	e := newCombineEngine(t, 0)
	owner := e.NewCtx()
	e.OpBegin(owner)
	ref := allocLine(e, owner)
	if !e.CAS(owner, ref, 0, 1, 2) {
		t.Fatal("owner CAS failed")
	}
	e.OpEnd(owner)

	// Ticketless walker: adopt is free, the witness drain is not.
	walker := e.NewCtx()
	e.OpBegin(walker)
	f0, n0 := e.Counters()
	if v := TraversalLoadAdopt(e, walker, ref, 0); v != 2 {
		t.Fatalf("TraversalLoadAdopt = %d, want 2", v)
	}
	if f, n := e.Counters(); f != f0 || n != n0 {
		t.Fatalf("adopt issued persistence ops: flushes %d->%d fences %d->%d", f0, f, n0, n)
	}
	if !CombineOwnsField(e, walker, ref, 0) {
		t.Fatal("adopted line not owned by the walker's buffer")
	}
	CommitWitness(e, walker)
	f1, n1 := e.Counters()
	if f1-f0 != 1 || n1-n0 != 1 {
		t.Fatalf("witness drain: got (%d flushes, %d fences), want (1, 1)", f1-f0, n1-n0)
	}
	if s := e.Stats(); s.DrainCauses.Expose != 1 {
		t.Fatalf("drain causes = %+v, want an expose drain for the witness", s.DrainCauses)
	}
	CommitWitness(e, walker) // drained: nothing left to witness
	if f, n := e.Counters(); f != f1 || n != n1 {
		t.Fatalf("second witness issued (%d flushes, %d fences)", f-f1, n-n1)
	}
	e.OpEnd(walker)

	// The owner's own drain finds its line already committed by the
	// walker's witness: flush elided, fence skipped.
	me := e.(*mirrorEngine)
	me.mem.P.CombineDrain(&owner.pa.FS, pmem.DrainExplicit)
	if f, n := e.Counters(); f != f1 || n != n1 {
		t.Fatalf("owner drain after witness still issued (%d flushes, %d fences)", f-f1, n-n1)
	}

	// Ticketed walker: a fresh foreign pending line is adopted, but the
	// walker's own buffered install means its verdicts may vanish with
	// the ticket — the witness is free.
	e.OpBegin(owner)
	ref2 := allocLine(e, owner)
	if !e.CAS(owner, ref2, 0, 1, 2) {
		t.Fatal("owner CAS failed")
	}
	e.OpEnd(owner)
	ticketed := e.NewCtx()
	e.OpBegin(ticketed)
	own := allocLine(e, ticketed)
	if !e.CAS(ticketed, own, 0, 1, 2) {
		t.Fatal("walker CAS failed")
	}
	f2, n2 := e.Counters()
	if v := TraversalLoadAdopt(e, ticketed, ref2, 0); v != 2 {
		t.Fatalf("TraversalLoadAdopt = %d, want 2", v)
	}
	CommitWitness(e, ticketed)
	if f, n := e.Counters(); f != f2 || n != n2 {
		t.Fatalf("ticketed witness issued (%d flushes, %d fences), want (0, 0)", f-f2, n-n2)
	}
	e.OpEnd(ticketed)
}
