// Package engine defines the persistence-engine abstraction that every
// lock-free data structure in this repository is written against, together
// with the six implementations the paper evaluates:
//
//   - OrigDRAM, OrigNVMM — the original, non-durable structures running on
//     DRAM or NVMM (the "ListOriginalDRAM/NVMM" baselines of §6.2.1);
//   - Izraelevitz — the general transformation of Izraelevitz et al.:
//     flush+fence around every shared access;
//   - NVTraverse — the traversal-form transformation (Friedman et al.,
//     PLDI'20): nothing is persisted during traversal, the destination
//     nodes are persisted just before the critical section;
//   - MirrorDRAM — the paper's contribution with the volatile replica on
//     DRAM (§6.2);
//   - MirrorNVMM — Mirror with both replicas on NVMM (§6.3).
//
// A data structure manipulates objects made of uint64 fields through Refs
// (logical object handles). The engine owns the field-to-word layout: a
// Mirror field is a two-word (value, sequence) cell mirrored on two
// devices; every other engine stores one word per field on one device.
// Because layout is hidden behind this interface, a single implementation
// of each data structure runs unmodified under every engine — which is the
// "automatic transformation" claim of the paper made concrete.
package engine

import (
	"fmt"
	"math/rand"

	"mirror/internal/palloc"
	"mirror/internal/patomic"
	"mirror/internal/pmem"
	"mirror/internal/recovery"
)

// Ref is a logical object handle: the word offset of the object on the
// engine's reference device. 0 is nil. Objects are at least 32-byte
// aligned, so data structures may use the two low bits of stored Refs for
// marks, flags, and tags.
type Ref = uint64

// Kind selects an engine implementation.
type Kind int

// MirrorDRAM is the zero value, so it is the default everywhere.
const (
	MirrorDRAM Kind = iota
	MirrorNVMM
	OrigDRAM
	OrigNVMM
	Izraelevitz
	NVTraverse
)

// String returns the engine's short display name as used in the paper's
// figure legends.
func (k Kind) String() string {
	switch k {
	case OrigDRAM:
		return "OrigDRAM"
	case OrigNVMM:
		return "OrigNVMM"
	case Izraelevitz:
		return "Izraelevitz"
	case NVTraverse:
		return "NVTraverse"
	case MirrorDRAM:
		return "Mirror"
	case MirrorNVMM:
		return "MirrorNVMM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Durable reports whether structures under this engine survive a crash.
func (k Kind) Durable() bool {
	switch k {
	case Izraelevitz, NVTraverse, MirrorDRAM, MirrorNVMM:
		return true
	}
	return false
}

// Kinds lists every engine kind.
func Kinds() []Kind {
	return []Kind{OrigDRAM, OrigNVMM, Izraelevitz, NVTraverse, MirrorDRAM, MirrorNVMM}
}

// Ctx is the per-thread context: allocation cache, epoch announcement, and
// flush sets. A Ctx must be used by one goroutine at a time.
type Ctx struct {
	Cache *palloc.Cache
	fs    pmem.FlushSet // direct engines: flush set of the single device
	pa    patomic.Ctx   // mirror engines: persistent-replica flush set

	// Deferred StoreInit flushes for the eliding direct engines (the
	// mirror engines keep theirs in pa): distinct dirty lines in
	// first-touch order, and the cell count they replace.
	initLines []uint64
	initCells int

	// det is the armed detectable-operation state (see detect.go);
	// detPending holds verdicts deferred to the next DetectDrain (the
	// batched-verdict protocol of the serving tier).
	det        descState
	detPending []pendingVerdict

	// sub holds the per-shard contexts of a sharded engine's context (one
	// per shard, in shard order); nil on unsharded engines. A FlushSet
	// binds to exactly one device, so a thread on an N-shard engine needs
	// N real contexts — the parent is a router over them. home is the
	// thread's home shard for the NUMA latency preset.
	sub  []*Ctx
	home int
}

// Sub returns the per-shard context for shard i. Valid only on contexts
// created by a sharded engine's NewCtx.
func (c *Ctx) Sub(i int) *Ctx {
	if c.sub == nil {
		panic("engine: Sub on an unsharded context")
	}
	return c.sub[i]
}

// deferInitLine records a line dirtied by StoreInit for the next Publish;
// the last-entry fast path covers consecutive fields of one object.
func (c *Ctx) deferInitLine(line uint64) {
	c.initCells++
	if n := len(c.initLines); n > 0 && c.initLines[n-1] == line {
		return
	}
	for _, l := range c.initLines {
		if l == line {
			return
		}
	}
	c.initLines = append(c.initLines, line)
}

// Tracer walks a data structure's reachable objects during recovery. It is
// the "tracing operation" the paper requires the user to provide (§3.2):
// read reads a field of an object from the persistent post-crash image, and
// visit must be called exactly once per reachable object with its field
// count.
type Tracer func(read func(ref Ref, field int) uint64, visit func(ref Ref, fields int))

// ShardedTracer is the parallel form of Tracer: a factory returning the
// tracer for one shard of a partitioned trace. The shards' visit sets must
// together equal the sequential tracer's visit set, with each reachable
// object visited by exactly one shard. Shard tracers run concurrently, so
// they must not share mutable state across shards.
type ShardedTracer func(shard, shards int) Tracer

// RecoverOptions tunes the recovery pipeline of §4.3.3. The zero value is
// the degenerate sequential recovery — identical in behavior to Recover.
type RecoverOptions struct {
	// Parallelism is the number of recovery workers for the trace and
	// rebuild phases. Values below 2 mean sequential recovery.
	Parallelism int
	// Sharded, when non-nil and Parallelism > 1, partitions the trace
	// phase; without it only the rebuild phase parallelizes (the trace
	// runs once, sequentially, through the plain tracer).
	Sharded ShardedTracer
}

// workers returns the number of pipeline workers implied by the options.
func (o RecoverOptions) workers() int {
	if o.Parallelism < 2 {
		return 1
	}
	return o.Parallelism
}

// Engine is the persistence interface data structures are written against.
type Engine interface {
	// Kind identifies the implementation.
	Kind() Kind
	// NewCtx creates a per-thread context.
	NewCtx() *Ctx

	// OpBegin/OpEnd bracket every data-structure operation; they manage
	// the reclamation epoch and any end-of-operation durability barrier.
	OpBegin(c *Ctx)
	OpEnd(c *Ctx)

	// Alloc creates an uninitialized object of the given number of
	// logical fields. Initialize every field with StoreInit and call
	// Publish before making the object reachable.
	Alloc(c *Ctx, fields int) Ref
	// StoreInit writes a field of an unpublished object (no concurrency,
	// no sequence bump beyond the initial one).
	StoreInit(c *Ctx, ref Ref, field int, v uint64)
	// Publish is the durability barrier between initializing an object
	// and linking it into the structure.
	Publish(c *Ctx, ref Ref)
	// FreeUnpublished returns an object that was never made reachable.
	FreeUnpublished(c *Ctx, ref Ref, fields int)
	// Retire schedules an unlinked object for epoch-based reclamation.
	Retire(c *Ctx, ref Ref, fields int)

	// Load reads a field with the engine's full persistence discipline
	// (a "critical" read in NVTraverse terms).
	Load(c *Ctx, ref Ref, field int) uint64
	// TraversalLoad reads a field during a search phase; engines that
	// distinguish traversal from critical reads skip persistence here.
	TraversalLoad(c *Ctx, ref Ref, field int) uint64
	// Store durably writes a field.
	Store(c *Ctx, ref Ref, field int, v uint64)
	// CAS durably compares-and-swaps a field.
	CAS(c *Ctx, ref Ref, field int, old, new uint64) bool
	// CASRelaxed compares-and-swaps a field whose update is only
	// retire-gated: an auxiliary physical update (snip of a marked node,
	// upper-level skiplist link, bst excision) whose loss at a crash
	// leaves a state some earlier crash could also have left. An eliding
	// engine may make the install visible before it is durable, deferring
	// the commit to the relaxed-line registry, which is drained before
	// any retired object is freed. Linearization points (marks, level-0
	// links, flags) must use CAS. Engines without elision treat it as
	// CAS exactly.
	CASRelaxed(c *Ctx, ref Ref, field int, old, new uint64) bool
	// FetchAdd durably adds to a field, returning the previous value.
	FetchAdd(c *Ctx, ref Ref, field int, delta uint64) uint64
	// MakePersistent ensures an object's fields are durable; traversal
	// data structures call it on the destination nodes before their
	// critical section (the NVTraverse barrier). No-op elsewhere.
	MakePersistent(c *Ctx, ref Ref, fields int)

	// Drain commits every durability obligation this context has
	// deferred: its combine buffer (Config.Combine) and the device's
	// relaxed-line registry. Quiesce points and media-equivalence tests
	// call it; a no-op when nothing is deferred.
	Drain(c *Ctx)

	// RootRef returns the persistent root object (RootFields fields).
	RootRef() Ref

	// Freeze makes all device operations panic, unwinding in-flight
	// operations so a crash can be taken.
	Freeze()
	// FreezeAfter arms a countdown on the persistent device: its n-th
	// subsequent operation freezes it. Deterministic crash placement for
	// the exhaustive crash-point tests.
	FreezeAfter(n int64)
	// Crash simulates a power failure (devices must be quiesced).
	Crash(policy pmem.CrashPolicy, rng *rand.Rand)
	// Recover rebuilds volatile state after Crash using the structure's
	// tracer; for non-durable engines it reinitializes empty state. It is
	// RecoverWith with zero options (sequential).
	Recover(tr Tracer)
	// RecoverWith is Recover with an explicit pipeline configuration:
	// the trace and rebuild phases run with opts.Parallelism workers,
	// using opts.Sharded (when provided) to partition the trace. tr is
	// the sequential fallback tracer, used when opts does not ask for a
	// parallel trace.
	RecoverWith(tr Tracer, opts RecoverOptions)
	// RecoveryLoad reads a field from the persistent post-crash image;
	// only valid between Crash and the end of Recover.
	RecoveryLoad(ref Ref, field int) uint64

	// PersistentDevices returns the devices whose contents survive a
	// crash (one for the direct durable engines, rep_p for Mirror, none
	// for the non-durable originals). Fault injectors install adversaries
	// and fingerprint post-crash media images through it.
	PersistentDevices() []*pmem.Device

	// Clients returns the configured detectable-client count; zero means
	// detectability is off and the descriptor methods below must not be
	// used (Detect and DetectBegin panic).
	Clients() int
	// DetectBegin durably announces operation (client, seq) with its
	// payload before the operation body runs. deferAnnounce lets the
	// announce fence ride the operation's own publish barrier (sound for
	// inserts only; see DescRegion.Begin). Client sequence numbers must be
	// strictly increasing per client, starting at 1.
	DetectBegin(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool)
	// Linearized publishes the armed operation's commit verdict; data
	// structures call it immediately after their linearizing install
	// returns (at which point the install is durable under every durable
	// engine). A no-op when no detectable operation is armed.
	Linearized(c *Ctx, result bool)
	// DetectEnd completes the armed operation's descriptor protocol: it
	// publishes the verdict if no Linearized hook fired and commits it
	// before the operation returns to the client.
	DetectEnd(c *Ctx, result bool)
	// Detect answers whether (client, seq) committed, from the descriptor
	// region's post-crash words; valid on a quiesced, crashed, or
	// recovered engine.
	Detect(client int, seq uint64) DetectResult

	// Counters reports cumulative flush and fence counts across all
	// devices (for the ablation benchmarks).
	Counters() (flushes, fences uint64)
	// Stats reports the engine's cumulative protocol and elision
	// statistics.
	Stats() Stats
	// Footprint reports the live allocated words (in the engine's cell
	// layout) and how many device replicas hold them, so total memory is
	// words × replicas × 8 bytes — the space-overhead account of §6.2.5.
	Footprint() (words uint64, replicas int)
}

// Stats aggregates an engine's protocol and elision statistics.
type Stats struct {
	// Helps and Retries are the Mirror protocol's help completions and
	// restarts (patomic.Mem.Stats); zero for engines without a help
	// protocol.
	Helps, Retries uint64
	// ElidedFlushes and ElidedFences count persistence instructions the
	// flush-elision layer skipped because the persisted-epoch watermark,
	// a batched-init line dedup, an empty pending set, or the
	// relaxed-line registry proved them redundant.
	ElidedFlushes, ElidedFences uint64
	// PiggybackedFences counts fences avoided by riding a concurrent
	// fence's commit ticket instead of issuing one.
	PiggybackedFences uint64
	// RelaxedCAS counts retire-gated installs whose durability was
	// deferred to the relaxed-line registry (committed at drain time).
	RelaxedCAS uint64
	// DetectAnnounces and DetectVerdicts count descriptor-region announce
	// and verdict publishes (zero with detectability off).
	DetectAnnounces, DetectVerdicts uint64
	// CombinedFences counts linearizing installs whose fence was deferred
	// into a per-thread combined drain (Config.Combine); DrainCauses
	// breaks down why those drains ran. Zero with combining off.
	CombinedFences uint64
	DrainCauses    pmem.DrainCauses
}

// Config describes an engine instance.
type Config struct {
	Kind Kind
	// Words is the capacity of each device in 8-byte words.
	Words int
	// RootFields is the number of fields of the persistent root object.
	RootFields int
	// Latency applies the DRAM/NVMM latency models (benchmarks). When
	// false all devices run at native speed (tests).
	Latency bool
	// Track maintains the persistent media image so Crash/Recover work.
	// Benchmarks that never crash can disable it.
	Track bool
	// NoElide disables the flush-elision and fence-coalescing layer (the
	// ablation baseline): every durability point issues its engine's full
	// flush+fence discipline.
	NoElide bool
	// Clients reserves a per-client operation-descriptor region (Clients
	// rings of DetectRing entries) between the roots and the allocator
	// base, enabling the detectability protocol
	// (DetectBegin/Linearized/DetectEnd/Detect). Zero leaves the layout
	// unchanged and detectability off.
	Clients int
	// DetectRing is the per-client descriptor ring size: how many
	// operations one client may have in flight with Detect still
	// authoritative for each (the serving tier's pipeline window bound).
	// Zero defaults to DefaultDetectRing when Clients > 0; 1 reproduces
	// the original single-slot layout.
	DetectRing int
	// Combine enables cross-operation fence combining on the Mirror
	// engines: each thread buffers its linearizing installs' durability
	// and drains them with one flush per line plus a single fence
	// (capacity, epoch, conflict-probe, pre-verdict, and pre-free
	// triggers; see pmem/combine.go). Completed operations may then
	// vanish at a crash until their buffer drains — the buffered
	// durable-linearizability contract. Requires elision (ignored under
	// NoElide); the direct engines accept it and ignore it, since their
	// disciplines fence reads or order writes and have no combinable
	// post-linearization fence.
	Combine bool
	// Shards splits the engine across that many independent device
	// shards, each a full sub-engine (own devices, allocator, descriptor
	// region, recovery) with the keyspace hash-partitioned across them
	// (pmem.ShardOf). Values below 2 leave the engine unsharded; New
	// returns a *Sharded otherwise. Words then sizes each shard's
	// devices, and Clients descriptor slots are reserved per shard (a
	// client's slot lives on its home shard, client mod Shards).
	Shards int
	// NUMARemoteNS, on a sharded engine, charges the NUMA latency
	// preset's remote-socket penalty (pmem.NUMAModel) for every
	// operation routed off the calling thread's home shard. Zero
	// disables the penalty.
	NUMARemoteNS int
	// MediaPath backs the persistent device's media image with a
	// MAP_SHARED mmap of this file (pmem.Config.MediaPath), so the fenced
	// image survives abrupt process death — the serving tier's substrate.
	// Durable engines only; requires Track; unsharded only.
	MediaPath string
	// Attach adopts an existing media image instead of initializing a
	// fresh engine: construction skips the root-cell initialization
	// writes and resets the device's cache view from the media, leaving
	// the engine in the same state as immediately after Crash. The
	// caller must run Recover (or RecoverWith) before using it. Requires
	// Track; normally paired with MediaPath pointing at the previous
	// incarnation's file.
	Attach bool
}

func (c *Config) setDefaults() {
	if c.Words == 0 {
		c.Words = 1 << 20
	}
	if c.RootFields == 0 {
		c.RootFields = 8
	}
	if c.Clients > 0 && c.DetectRing == 0 {
		c.DetectRing = DefaultDetectRing
	}
}

// CombineTickets returns a context's (last, drained) combining ticket
// pair: the ticket of its most recent buffered linearization and the
// watermark of its last completed drain. At a crash, a completed
// operation whose ticket exceeds its thread's watermark may vanish or
// take effect; at or below it, the operation reached a drain fence and
// must survive. Both read zero with combining off, collapsing the
// buffered crash contract back to plain durable linearizability. The
// pair is plain Go state and stays readable after a crash.
func CombineTickets(c *Ctx) (last, drained uint64) {
	return c.pa.FS.CombineTickets()
}

// CombineQuiet reports whether c's combine buffer is empty — every
// linearization this thread issued has reached a drain fence. Constant
// true with combining off. Data structures gate *exposing* shortcut
// writes on it: a relaxed snip, unlink, or cleanup issued while the
// writer's own buffer is non-empty can make a buffered linearization's
// effect observable along a path that never loads the buffered line, so
// the read-side conflict probe cannot defend it (the CASRelaxed exposure
// rule). Gated sites defer the shortcut to a quiet moment instead of
// paying CASRelaxed's own-buffer drain.
func CombineQuiet(c *Ctx) bool {
	return c.pa.FS.CombineQuiet()
}

// combineOwner is implemented by engines that can map a (ref, field)
// cell to its persistent line and ask whether that line sits in a
// context's own combine buffer.
type combineOwner interface {
	combineOwns(c *Ctx, ref Ref, field int) bool
}

// CombineOwnsField reports whether the cell (ref, field) lies on a line
// this context's own combine buffer still holds — a linearization this
// thread published but has not drained. The exposure rule only forbids
// shortcut writes that hide a thread's *own* buffered linearization: a
// foreign one was committed by the conflict probe when this thread
// loaded it, so structures use this finer predicate (rather than
// CombineQuiet) to keep snipping foreign marked nodes eagerly. Constant
// false with combining off or on engines without cell mapping.
func CombineOwnsField(e Engine, c *Ctx, ref Ref, field int) bool {
	if o, ok := e.(combineOwner); ok {
		return o.combineOwns(c, ref, field)
	}
	return false
}

// exposeSafeCASer is implemented by engines offering a relaxed CAS that
// skips the exposure drain when the caller has discharged the exposure
// rule itself.
type exposeSafeCASer interface {
	casRelaxedExposeSafe(c *Ctx, ref Ref, field int, old, new uint64) bool
}

// CASRelaxedExposeSafe is CASRelaxed minus the own-buffer exposure
// drain. Use it only when the shortcut bypasses lines this thread does
// NOT own in its combine buffer (checked via CombineOwnsField) — every
// linearization it exposes was then probed durable by this thread's own
// combined loads. Falls back to CASRelaxed on engines without the fast
// path.
func CASRelaxedExposeSafe(e Engine, c *Ctx, ref Ref, field int, old, new uint64) bool {
	if x, ok := e.(exposeSafeCASer); ok {
		return x.casRelaxedExposeSafe(c, ref, field, old, new)
	}
	return e.CASRelaxed(c, ref, field, old, new)
}

// adoptLoader is implemented by engines whose combining mode offers the
// adopting traversal load and the matching no-effect witness barrier.
type adoptLoader interface {
	traversalLoadAdopt(c *Ctx, ref Ref, field int) uint64
	commitWitness(c *Ctx)
}

// TraversalLoadAdopt is TraversalLoad for loads inside *update*
// operations' traversals. Under combining, a crossed foreign buffered
// install is adopted into this thread's own buffer (no fence now; the
// thread's next drain commits the whole witnessed path under one fence)
// instead of being probed durable on the spot. The trade is sound only
// for operations that either linearize with a ticketed install of their
// own or call CommitWitness before returning a no-effect verdict —
// traversals of plain read operations must keep TraversalLoad, whose
// probe is their only durability barrier. Falls back to TraversalLoad
// on engines without combining.
func TraversalLoadAdopt(e Engine, c *Ctx, ref Ref, field int) uint64 {
	if a, ok := e.(adoptLoader); ok {
		return a.traversalLoadAdopt(c, ref, field)
	}
	return e.TraversalLoad(c, ref, field)
}

// CommitWitness closes the adoption window before an update operation
// returns a no-effect verdict (failed insert, absent-key delete): if
// this thread adopted foreign lines during the traversal and holds no
// undrained ticket of its own, the verdict is in the must-survive class
// and its witnessed path must reach a fence first, so the buffer
// drains. With an undrained ticket the verdict vanishes with the ticket
// and no fence is due. No-op without combining.
func CommitWitness(e Engine, c *Ctx) {
	if a, ok := e.(adoptLoader); ok {
		a.commitWitness(c)
	}
}

// ringSized is implemented by engines whose descriptor region is a
// per-client ring.
type ringSized interface {
	DetectRing() int
}

// DetectRingOf returns e's per-client descriptor ring size — the maximum
// number of operations one client may have in flight with Detect still
// authoritative for each. It is 1 on engines without rings and 0 with
// detectability off.
func DetectRingOf(e Engine) int {
	if e.Clients() == 0 {
		return 0
	}
	if r, ok := e.(ringSized); ok {
		return r.DetectRing()
	}
	return 1
}

// deferredDetector is implemented by engines supporting the batched-verdict
// detectability protocol of the serving tier: verdicts of a run of
// operations (across clients) are recorded in the context and published
// under two trailing fences — one drain fence committing every deferred
// effect, then the verdict flushes and one End fence — instead of one End
// fence per operation.
type deferredDetector interface {
	detectBeginDeferred(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool)
	detectEndDeferred(c *Ctx, result bool, rval uint64)
	detectDrain(c *Ctx)
}

// DetectBeginDeferred is DetectBegin in batched-verdict mode: the
// operation's verdict will be recorded by DetectEndDeferred and published
// at the next DetectDrain on the same context. A client may hold up to the
// engine's descriptor-ring size of pending verdicts; only arming a seq
// that would lap a still-pending entry forces a drain first — the
// entry-lapped inference of Detect requires the lapped operation's effect
// and verdict to be durable before the overwriting announce can be. Falls
// back to plain DetectBegin on engines without the deferred protocol.
func DetectBeginDeferred(e Engine, c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	if d, ok := e.(deferredDetector); ok {
		d.detectBeginDeferred(c, client, seq, kind, key, val, deferAnnounce)
		return
	}
	e.DetectBegin(c, client, seq, kind, key, val, deferAnnounce)
}

// DetectEndDeferred records the armed operation's verdict — including the
// auxiliary return word rval (a dequeued value), which the per-operation
// DetectEnd cannot carry — for publication at the next DetectDrain. The
// operation's response must not be released to the client before that
// drain. Falls back to DetectEnd (dropping rval) on engines without the
// deferred protocol.
func DetectEndDeferred(e Engine, c *Ctx, result bool, rval uint64) {
	if d, ok := e.(deferredDetector); ok {
		d.detectEndDeferred(c, result, rval)
		return
	}
	e.DetectEnd(c, result)
}

// DetectDrain publishes every verdict deferred on c: one drain fence
// commits the batched effects (combine buffers, relaxed lines, pending
// flushes), then all verdict lines flush under a single End fence. After
// it returns, every response recorded by DetectEndDeferred on c may be
// released. No-op when nothing is pending or the engine lacks the
// deferred protocol.
func DetectDrain(e Engine, c *Ctx) {
	if d, ok := e.(deferredDetector); ok {
		d.detectDrain(c)
	}
}

// New creates an engine. With Config.Shards > 1 the engine is a
// *Sharded spanning that many device shards; see sharded.go.
func New(cfg Config) Engine {
	cfg.setDefaults()
	if cfg.Shards > 1 {
		if cfg.MediaPath != "" || cfg.Attach {
			panic("engine: file-backed media attach is unsharded-only")
		}
		return NewSharded(cfg)
	}
	switch cfg.Kind {
	case OrigDRAM, OrigNVMM, Izraelevitz, NVTraverse:
		return newDirect(cfg)
	case MirrorDRAM, MirrorNVMM:
		return newMirror(cfg)
	default:
		panic(fmt.Sprintf("engine: unknown kind %v", cfg.Kind))
	}
}

// traceSpans runs the trace phase of the recovery pipeline: it applies the
// tracer(s) to the persistent post-crash image via read and returns the
// reachable-object spans, one slice per shard. With sequential options (or
// no sharded tracer) there is exactly one shard, produced by the plain
// tracer — byte-for-byte the old trace. Shard tracers run concurrently but
// each appends only to its own slice, so no locking is needed.
func traceSpans(read func(ref Ref, field int) uint64, tr Tracer, opts RecoverOptions) [][]recovery.Span {
	workers := opts.workers()
	if workers == 1 || opts.Sharded == nil {
		var spans []recovery.Span
		if tr != nil {
			tr(read, func(ref Ref, fields int) {
				spans = append(spans, recovery.Span{Ref: ref, Fields: fields})
			})
		}
		return [][]recovery.Span{spans}
	}
	shards := make([][]recovery.Span, workers)
	recovery.Run(workers, workers, func(i int) {
		opts.Sharded(i, workers)(read, func(ref Ref, fields int) {
			shards[i] = append(shards[i], recovery.Span{Ref: ref, Fields: fields})
		})
	})
	return shards
}

// spanExtents converts traced spans to allocator extents, scaling field
// counts to words by the engine's cell width.
func spanExtents(shards [][]recovery.Span, cellW int) [][]palloc.Extent {
	out := make([][]palloc.Extent, len(shards))
	for i, spans := range shards {
		ext := make([]palloc.Extent, len(spans))
		for j, sp := range spans {
			ext[j] = palloc.Extent{Off: sp.Ref, Words: sp.Fields * cellW}
		}
		out[i] = ext
	}
	return out
}

// rootBase is the device offset of the persistent root object. It leaves
// word 0 unused (nil) and keeps the root 32-byte aligned.
const rootBase = 8

// rootsRegionWords returns the words reserved for the root object given the
// cell width, rounded so the allocator base stays aligned.
func rootsRegionWords(rootFields, cellW int) uint64 {
	n := uint64(rootFields*cellW + rootBase)
	return (n + palloc.AlignWords - 1) &^ (palloc.AlignWords - 1)
}

// descRegionBase returns the cache-line-aligned device offset of the
// descriptor region, directly above the roots region. The allocator base
// moves up by DescWords(clients, ring) from here, so with Clients == 0 the
// layout is exactly the pre-detectability one.
func descRegionBase(rootFields, cellW int) uint64 {
	b := rootsRegionWords(rootFields, cellW)
	return (b + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
}
