package engine

import "mirror/internal/patomic"

// brokenMirror is a Mirror engine whose write operations run through
// patomic.BrokenMem — the copy of the write path with the own-install
// flush+fence removed. It exists so the fault fuzzer can prove it detects
// a real durability bug; see NewBrokenMirror.
type brokenMirror struct {
	*mirrorEngine
	bm patomic.BrokenMem
}

// NewBrokenMirror returns a Mirror engine with a deliberately seeded
// durability bug: Store/CAS/FetchAdd install values that are visible (and
// so can complete operations) before they are durable. Reads, allocation,
// initialization, crash, and recovery are the unmodified Mirror paths.
// Test-only: the fault fuzzer's self-test must catch this engine, and the
// acceptance bar for any fuzzer change is that it still does.
func NewBrokenMirror(cfg Config) Engine {
	cfg.Kind = MirrorDRAM
	cfg.setDefaults()
	me := newMirror(cfg)
	return &brokenMirror{mirrorEngine: me, bm: patomic.BrokenMem{Mem: &me.mem}}
}

func (e *brokenMirror) Store(c *Ctx, ref Ref, field int, v uint64) {
	e.bm.Store(&c.pa, e.cellAddr(ref, field), v)
}

func (e *brokenMirror) CAS(c *Ctx, ref Ref, field int, old, new uint64) bool {
	ok, _ := e.bm.CompareAndSwap(&c.pa, e.cellAddr(ref, field), old, new)
	return ok
}

func (e *brokenMirror) FetchAdd(c *Ctx, ref Ref, field int, delta uint64) uint64 {
	return e.bm.FetchAdd(&c.pa, e.cellAddr(ref, field), delta)
}
