package engine

import "mirror/internal/patomic"

// brokenMirror is a Mirror engine whose write operations run through
// patomic.BrokenMem — the copy of the write path with the own-install
// flush+fence removed. It exists so the fault fuzzer can prove it detects
// a real durability bug; see NewBrokenMirror.
type brokenMirror struct {
	*mirrorEngine
	bm patomic.BrokenMem
}

// NewBrokenMirror returns a Mirror engine with a deliberately seeded
// durability bug: Store/CAS/FetchAdd install values that are visible (and
// so can complete operations) before they are durable. Reads, allocation,
// initialization, crash, and recovery are the unmodified Mirror paths.
// Test-only: the fault fuzzer's self-test must catch this engine, and the
// acceptance bar for any fuzzer change is that it still does.
func NewBrokenMirror(cfg Config) Engine {
	cfg.Kind = MirrorDRAM
	cfg.setDefaults()
	me := newMirror(cfg)
	return &brokenMirror{mirrorEngine: me, bm: patomic.BrokenMem{Mem: &me.mem}}
}

func (e *brokenMirror) Store(c *Ctx, ref Ref, field int, v uint64) {
	e.bm.Store(&c.pa, e.cellAddr(ref, field), v)
}

func (e *brokenMirror) CAS(c *Ctx, ref Ref, field int, old, new uint64) bool {
	ok, _ := e.bm.CompareAndSwap(&c.pa, e.cellAddr(ref, field), old, new)
	return ok
}

func (e *brokenMirror) FetchAdd(c *Ctx, ref Ref, field int, delta uint64) uint64 {
	return e.bm.FetchAdd(&c.pa, e.cellAddr(ref, field), delta)
}

// NewBrokenWatermarkMirror returns a Mirror engine with a deliberately
// broken flush-elision layer: the fault model's early eviction advances the
// persisted-epoch watermark as if it were a fenced commit. A writer whose
// line was evicted then elides its flush+fence on the strength of the fake
// watermark, so its completed operation is visible but unfenced — and a
// crash whose line fate is "drop" loses it, a durable-linearizability
// violation. This is precisely the soundness condition ISSUE 5 names
// ("early fault-model eviction must NOT advance it"); the fault fuzzer's
// acceptance self-test must catch this engine under evict+drop faults.
// Test-only.
func NewBrokenWatermarkMirror(cfg Config) Engine {
	cfg.Kind = MirrorDRAM
	cfg.NoElide = false
	cfg.setDefaults()
	me := newMirror(cfg)
	me.mem.P.BreakWatermarkForTest()
	return me
}

// NewBrokenCombineMirror returns a combining Mirror engine whose drain
// drops a buffered commit ticket: the first buffered line of every
// combined drain is silently skipped while the drained watermark still
// advances past its ticket. The affected operation is then recorded as
// durably committed (ticket <= drained) though its install never reached
// a fence, so a crash whose line fate is "drop" loses a completed
// operation the buffered checker is NOT allowed to excuse — exactly the
// violation the fault fuzzer's combining acceptance test must catch,
// shrink, and replay. Test-only.
func NewBrokenCombineMirror(cfg Config) Engine {
	cfg.Kind = MirrorDRAM
	cfg.NoElide = false
	cfg.Combine = true
	cfg.setDefaults()
	me := newMirror(cfg)
	me.mem.P.BreakCombineForTest()
	return me
}
