package engine

import (
	"path/filepath"
	"testing"
)

func durableKinds() []Kind {
	return []Kind{Izraelevitz, NVTraverse, MirrorDRAM, MirrorNVMM}
}

// runDetectable runs one trivial detectable root-store op on e, using the
// deferred or per-op verdict protocol.
func runDetectable(e Engine, c *Ctx, client int, seq uint64, deferred bool, rval uint64) {
	e.OpBegin(c)
	if deferred {
		DetectBeginDeferred(e, c, client, seq, DetectInsert, uint64(client), seq, false)
	} else {
		e.DetectBegin(c, client, seq, DetectInsert, uint64(client), seq, false)
	}
	e.Store(c, e.RootRef(), 0, seq<<8|uint64(client))
	if deferred {
		DetectEndDeferred(e, c, true, rval)
	} else {
		e.DetectEnd(c, true)
	}
	e.OpEnd(c)
}

// TestDeferredDetectVerdicts pins the batched-verdict protocol: verdicts
// stay unpublished until DetectDrain, then survive a crash with their
// results and auxiliary return words intact.
func TestDeferredDetectVerdicts(t *testing.T) {
	for _, k := range durableKinds() {
		t.Run(k.String(), func(t *testing.T) {
			const clients = 6
			e := New(Config{Kind: k, Words: 1 << 14, Track: true, Clients: clients})
			c := e.NewCtx()
			for cl := 0; cl < clients; cl++ {
				runDetectable(e, c, cl, 1, true, uint64(100+cl))
			}
			for cl := 0; cl < clients; cl++ {
				if v := e.Detect(cl, 1); v.Verdict != Unknown {
					t.Fatalf("client %d before drain: %v, want Unknown", cl, v.Verdict)
				}
			}
			DetectDrain(e, c)
			e.Freeze()
			e.Crash(0 /* CrashDropAll */, nil)
			for cl := 0; cl < clients; cl++ {
				v := e.Detect(cl, 1)
				if v.Verdict != Committed || !v.KnownResult || !v.Result || v.Rval != uint64(100+cl) {
					t.Fatalf("client %d after drain+crash: %+v, want Committed/true/rval %d",
						cl, v, 100+cl)
				}
			}
		})
	}
}

// TestDeferredDetectUndrainedIsUnknown pins the other side of the crash
// contract: a SIGKILL before the batch drain leaves every deferred verdict
// unpublished, so the clients read the honest Unknown.
func TestDeferredDetectUndrainedIsUnknown(t *testing.T) {
	for _, k := range durableKinds() {
		t.Run(k.String(), func(t *testing.T) {
			e := New(Config{Kind: k, Words: 1 << 14, Track: true, Clients: 2})
			c := e.NewCtx()
			runDetectable(e, c, 0, 1, true, 7)
			e.Freeze()
			e.Crash(0, nil)
			if v := e.Detect(0, 1); v.Verdict != Unknown {
				t.Fatalf("undrained verdict after crash: %v, want Unknown", v.Verdict)
			}
		})
	}
}

// TestDeferredDetectLapForcesDrain pins the ordering guard: arming a seq
// that would lap a still-pending entry (seq - pending >= ring) must drain
// the batch first, so the entry-lapped inference stays sound. With ring 1
// this is the original single-slot rule — every same-client successor
// drains.
func TestDeferredDetectLapForcesDrain(t *testing.T) {
	for _, k := range durableKinds() {
		t.Run(k.String(), func(t *testing.T) {
			e := New(Config{Kind: k, Words: 1 << 14, Track: true, Clients: 2, DetectRing: 1})
			c := e.NewCtx()
			runDetectable(e, c, 0, 1, true, 0)
			runDetectable(e, c, 0, 2, true, 0)
			// No explicit drain: seq 1's verdict must have been forced
			// durable by seq 2's begin, while seq 2's is still pending.
			e.Freeze()
			e.Crash(0, nil)
			if v := e.Detect(0, 1); v.Verdict != Committed {
				t.Fatalf("seq 1 after forced drain: %v, want Committed", v.Verdict)
			}
			if v := e.Detect(0, 2); v.Verdict != Unknown {
				t.Fatalf("seq 2 undrained: %v, want Unknown", v.Verdict)
			}
		})
	}
}

// TestRingDeferredWindowStaysPending pins the pipelining win the ring buys:
// a client may keep a whole ring window of operations pending under one
// eventual drain — no forced drain inside the window, so a crash before
// the drain leaves every one of them honestly Unknown.
func TestRingDeferredWindowStaysPending(t *testing.T) {
	const ring = 4
	for _, k := range durableKinds() {
		t.Run(k.String(), func(t *testing.T) {
			e := New(Config{Kind: k, Words: 1 << 14, Track: true, Clients: 2, DetectRing: ring})
			c := e.NewCtx()
			if got := DetectRingOf(e); got != ring {
				t.Fatalf("DetectRingOf = %d, want %d", got, ring)
			}
			for seq := uint64(1); seq <= ring; seq++ {
				runDetectable(e, c, 0, seq, true, 0)
			}
			e.Freeze()
			e.Crash(0, nil)
			for seq := uint64(1); seq <= ring; seq++ {
				if v := e.Detect(0, seq); v.Verdict != Unknown {
					t.Fatalf("seq %d with whole window pending: %v, want Unknown", seq, v.Verdict)
				}
			}
		})
	}
}

// TestRingDeferredLapDrains pins the guard at the window edge: the
// ring+1-th pending operation laps seq 1's entry, forcing the batch
// durable before the overwrite.
func TestRingDeferredLapDrains(t *testing.T) {
	const ring = 2
	for _, k := range durableKinds() {
		t.Run(k.String(), func(t *testing.T) {
			e := New(Config{Kind: k, Words: 1 << 14, Track: true, Clients: 2, DetectRing: ring})
			c := e.NewCtx()
			runDetectable(e, c, 0, 1, true, 11)
			runDetectable(e, c, 0, 2, true, 12)
			runDetectable(e, c, 0, 3, true, 13) // laps seq 1: forces the drain
			e.Freeze()
			e.Crash(0, nil)
			if v := e.Detect(0, 1); v.Verdict != Committed {
				t.Fatalf("seq 1 after lap-forced drain: %+v, want Committed", v)
			}
			if v := e.Detect(0, 2); v.Verdict != Committed || !v.KnownResult || v.Rval != 12 {
				t.Fatalf("seq 2 after lap-forced drain: %+v, want Committed/known/rval 12", v)
			}
			if v := e.Detect(0, 3); v.Verdict != Unknown {
				t.Fatalf("seq 3 undrained: %v, want Unknown", v.Verdict)
			}
		})
	}
}

// TestDeferredDetectSavesFences pins the amortization the serving tier is
// built on: a batch of K detectable ops under the deferred protocol issues
// strictly fewer fences than the same K ops with per-operation verdicts.
func TestDeferredDetectSavesFences(t *testing.T) {
	const ops = 8
	for _, k := range durableKinds() {
		t.Run(k.String(), func(t *testing.T) {
			count := func(deferred bool) uint64 {
				e := New(Config{Kind: k, Words: 1 << 14, Track: true, Clients: ops})
				c := e.NewCtx()
				_, before := e.Counters()
				for cl := 0; cl < ops; cl++ {
					runDetectable(e, c, cl, 1, deferred, 0)
				}
				if deferred {
					DetectDrain(e, c)
				}
				_, after := e.Counters()
				return after - before
			}
			perOp, batched := count(false), count(true)
			if batched >= perOp {
				t.Fatalf("deferred verdicts did not save fences: batched %d >= per-op %d",
					batched, perOp)
			}
		})
	}
}

// TestAttachAdoptsMediaFile pins the serving tier's restart path: an engine
// over a file-backed media is abandoned without any crash call (the process
// "died"), and a second engine with Config.Attach adopts the file, recovers,
// and serves the fenced state.
func TestAttachAdoptsMediaFile(t *testing.T) {
	for _, k := range durableKinds() {
		t.Run(k.String(), func(t *testing.T) {
			cfg := Config{
				Kind: k, Words: 1 << 14, Track: true,
				MediaPath: filepath.Join(t.TempDir(), "media.img"),
			}
			e := New(cfg)
			c := e.NewCtx()
			e.OpBegin(c)
			e.Store(c, e.RootRef(), 0, 42)
			e.Store(c, e.RootRef(), 1, 43)
			e.OpEnd(c)
			e.Drain(c)
			// e is abandoned here: no Freeze, no Crash.

			cfg.Attach = true
			e2 := New(cfg)
			e2.Recover(nil)
			c2 := e2.NewCtx()
			e2.OpBegin(c2)
			if got := e2.Load(c2, e2.RootRef(), 0); got != 42 {
				t.Fatalf("root field 0 after attach: %d, want 42", got)
			}
			if got := e2.Load(c2, e2.RootRef(), 1); got != 43 {
				t.Fatalf("root field 1 after attach: %d, want 43", got)
			}
			// The adopted engine must be fully operable, including another
			// durable store over the same file.
			e2.Store(c2, e2.RootRef(), 0, 44)
			e2.OpEnd(c2)
			if got := e2.Load(c2, e2.RootRef(), 0); got != 44 {
				t.Fatalf("store after attach: %d, want 44", got)
			}
		})
	}
}
