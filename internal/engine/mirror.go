package engine

import (
	"fmt"
	"math/rand"
	"sync"

	"mirror/internal/palloc"
	"mirror/internal/patomic"
	"mirror/internal/pmem"
	"mirror/internal/recovery"
)

// mirrorEngine implements the paper's transformation. Every logical field
// is a patomic cell — two words (value, sequence number) present at the
// same offset on a persistent device (rep_p) and a volatile device (rep_v).
// MirrorDRAM places rep_v on DRAM (§6.2); MirrorNVMM places both replicas
// on NVMM-speed memory (§6.3) while still treating the second as volatile.
type mirrorEngine struct {
	kind       Kind
	mem        patomic.Mem
	rootFields int
	combine    bool        // cross-operation fence combining active on rep_p
	desc       *DescRegion // per-client op descriptors on rep_p; nil when off

	mu    sync.Mutex
	alloc *palloc.Allocator
	recl  *palloc.Reclaimer
}

func newMirror(cfg Config) *mirrorEngine {
	pModel, vModel := pmem.NoLatency(), pmem.NoLatency()
	if cfg.Latency {
		pModel = pmem.NVMMModel()
		if cfg.Kind == MirrorDRAM {
			vModel = pmem.DRAMModel()
		} else {
			vModel = pmem.NVMMModel()
		}
	}
	p := pmem.New(pmem.Config{
		Name:       cfg.Kind.String() + "-rep_p",
		Words:      cfg.Words,
		Persistent: true,
		Track:      cfg.Track,
		Elide:      !cfg.NoElide,
		Combine:    cfg.Combine,
		Model:      pModel,
		MediaPath:  cfg.MediaPath,
	})
	v := pmem.New(pmem.Config{
		Name:  cfg.Kind.String() + "-rep_v",
		Words: cfg.Words,
		Model: vModel,
	})
	e := &mirrorEngine{
		kind:       cfg.Kind,
		mem:        patomic.Mem{P: p, V: v},
		rootFields: cfg.RootFields,
		combine:    p.Combines(),
		recl:       palloc.NewReclaimer(),
	}
	// The descriptor region (when configured) sits between the roots and
	// the allocator base, on rep_p only: descriptors are raw words of the
	// persistent replica, never mirrored and never traced.
	allocBase := rootsRegionWords(cfg.RootFields, patomic.CellWords)
	if cfg.Clients > 0 {
		descBase := descRegionBase(cfg.RootFields, patomic.CellWords)
		e.desc = NewDescRegion(p, descBase, cfg.Clients, cfg.DetectRing, true)
		allocBase = descBase + e.desc.Words()
	}
	e.alloc = palloc.New(palloc.Config{
		Base: allocBase,
		End:  uint64(p.Size()),
	})
	if cfg.Attach {
		// Adopting a previous incarnation's media: its root cells are
		// already initialized there, and any construction-time write would
		// clobber surviving state. Reset the cache view from the media and
		// leave the engine crashed-but-unfrozen; the caller's Recover
		// rebuilds rep_v and the allocator.
		if !cfg.Track {
			panic("engine: Attach requires Config.Track")
		}
		p.ResetFromMedia()
		return e
	}
	// Root cells start initialized so the sequence-number invariants hold
	// from the first operation.
	var ctx patomic.Ctx
	for f := 0; f < cfg.RootFields; f++ {
		e.mem.InitCell(&ctx, e.cellAddr(rootBase, f), 0)
	}
	e.mem.PublishFence(&ctx)
	return e
}

func (e *mirrorEngine) Kind() Kind { return e.kind }

func (e *mirrorEngine) NewCtx() *Ctx {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &Ctx{Cache: palloc.NewCache(e.alloc, e.recl)}
	if e.mem.P.Elides() {
		// Before a drain batch frees anything, commit every relaxed line:
		// the media must never hold a pointer into reused memory. Under
		// combining the registry already holds every buffered line, so the
		// commit covers both; the combine drain after it then finds its
		// lines durable and merely advances the drained-ticket watermark.
		c.Cache.PreFree = func() {
			e.mem.P.CommitRelaxed(&c.pa.FS)
			if e.combine {
				e.mem.P.CombineDrain(&c.pa.FS, pmem.DrainPreFree)
			}
		}
	}
	return c
}

func (e *mirrorEngine) cellAddr(ref Ref, field int) uint64 {
	return ref + uint64(field)*patomic.CellWords
}

func (e *mirrorEngine) OpBegin(c *Ctx) { c.Cache.Enter() }

// OpEnd needs no durability barrier without combining: every Mirror write
// is durable before it is visible, so a completed operation is durable by
// construction. With combining, OpEnd pulses the per-thread epoch trigger,
// which bounds how many of the owner's operations a buffered linearization
// can outlive before a drain fences it.
func (e *mirrorEngine) OpEnd(c *Ctx) {
	if e.combine {
		e.mem.P.CombineTick(&c.pa.FS)
	}
	c.Cache.Exit()
}

func (e *mirrorEngine) Alloc(c *Ctx, fields int) Ref {
	return c.Cache.Alloc(fields * patomic.CellWords)
}

func (e *mirrorEngine) StoreInit(c *Ctx, ref Ref, field int, v uint64) {
	e.mem.InitCell(&c.pa, e.cellAddr(ref, field), v)
}

func (e *mirrorEngine) Publish(c *Ctx, ref Ref) {
	e.mem.PublishFence(&c.pa)
}

func (e *mirrorEngine) FreeUnpublished(c *Ctx, ref Ref, fields int) {
	c.Cache.Free(ref, fields*patomic.CellWords)
}

func (e *mirrorEngine) Retire(c *Ctx, ref Ref, fields int) {
	c.Cache.Retire(ref, fields*patomic.CellWords)
}

func (e *mirrorEngine) Load(c *Ctx, ref Ref, field int) uint64 {
	if e.combine {
		return e.mem.LoadCombined(&c.pa, e.cellAddr(ref, field))
	}
	return e.mem.Load(e.cellAddr(ref, field))
}

// TraversalLoad is identical to Load: Mirror never persists reads, which is
// precisely why it needs no traversal/critical distinction. Combining
// qualifies that claim: a read that observes another thread's buffered
// install commits it first (the conflict probe), trading FliT-style
// read-side flushes in the conflicting case for fewer write-side fences
// everywhere else.
func (e *mirrorEngine) TraversalLoad(c *Ctx, ref Ref, field int) uint64 {
	if e.combine {
		return e.mem.LoadCombined(&c.pa, e.cellAddr(ref, field))
	}
	return e.mem.Load(e.cellAddr(ref, field))
}

func (e *mirrorEngine) Store(c *Ctx, ref Ref, field int, v uint64) {
	e.mem.Store(&c.pa, e.cellAddr(ref, field), v)
}

func (e *mirrorEngine) CAS(c *Ctx, ref Ref, field int, old, new uint64) bool {
	if e.combine {
		ok, _ := e.mem.CompareAndSwapCombined(&c.pa, e.cellAddr(ref, field), old, new)
		return ok
	}
	ok, _ := e.mem.CompareAndSwap(&c.pa, e.cellAddr(ref, field), old, new)
	return ok
}

func (e *mirrorEngine) CASRelaxed(c *Ctx, ref Ref, field int, old, new uint64) bool {
	ok, _ := e.mem.CompareAndSwapRelaxed(&c.pa, e.cellAddr(ref, field), old, new)
	return ok
}

func (e *mirrorEngine) combineOwns(c *Ctx, ref Ref, field int) bool {
	if !e.combine {
		return false
	}
	return c.pa.FS.CombineOwns(e.cellAddr(ref, field))
}

func (e *mirrorEngine) casRelaxedExposeSafe(c *Ctx, ref Ref, field int, old, new uint64) bool {
	ok, _ := e.mem.CompareAndSwapRelaxedExposeSafe(&c.pa, e.cellAddr(ref, field), old, new)
	return ok
}

func (e *mirrorEngine) traversalLoadAdopt(c *Ctx, ref Ref, field int) uint64 {
	if e.combine {
		return e.mem.LoadAdopted(&c.pa, e.cellAddr(ref, field))
	}
	return e.mem.Load(e.cellAddr(ref, field))
}

func (e *mirrorEngine) commitWitness(c *Ctx) {
	if e.combine {
		e.mem.P.CombineWitness(&c.pa.FS)
	}
}

func (e *mirrorEngine) FetchAdd(c *Ctx, ref Ref, field int, delta uint64) uint64 {
	return e.mem.FetchAdd(&c.pa, e.cellAddr(ref, field), delta)
}

func (e *mirrorEngine) MakePersistent(c *Ctx, ref Ref, fields int) {}

// Drain commits everything this context has deferred: the relaxed-line
// registry first (which under combining already holds every buffered
// line), then the combine buffer, whose drain then mostly elides and
// advances the drained-ticket watermark.
func (e *mirrorEngine) Drain(c *Ctx) {
	e.mem.P.CommitRelaxed(&c.pa.FS)
	if e.combine {
		e.mem.P.CombineDrain(&c.pa.FS, pmem.DrainExplicit)
	}
}

func (e *mirrorEngine) RootRef() Ref { return rootBase }

func (e *mirrorEngine) Freeze() {
	e.mem.P.Freeze()
	e.mem.V.Freeze()
}

func (e *mirrorEngine) FreezeAfter(n int64) { e.mem.P.FreezeAfter(n) }

func (e *mirrorEngine) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	e.mem.P.Freeze()
	e.mem.V.Freeze()
	e.mem.P.Crash(policy, rng)
	e.mem.V.Crash(policy, rng) // volatile: wiped
}

// Recover implements §4.3.3 sequentially; it is RecoverWith with zero
// options.
func (e *mirrorEngine) Recover(tr Tracer) { e.RecoverWith(tr, RecoverOptions{}) }

// RecoverWith implements §4.3.3 as an explicit two-phase pipeline:
//
//   - Trace: resurrect the roots, then walk the persistent post-crash
//     image collecting the spans of all reachable objects (partitioned
//     across workers when the options carry a sharded tracer).
//   - Rebuild: copy every reachable span from rep_p to rep_v at the same
//     offsets (bulk range copies, batched for the workers), and rebuild
//     the allocator from the same spans — everything unreachable is
//     reclaimed, the offline GC.
//
// Both phases are idempotent: they only write the volatile replica and
// volatile allocator metadata, so a crash during recovery simply means
// recovery runs again from the unchanged persistent image.
func (e *mirrorEngine) RecoverWith(tr Tracer, opts RecoverOptions) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recl = palloc.NewReclaimer()
	workers := opts.workers()

	e.mem.RecoverRange(rootBase, e.rootFields*patomic.CellWords)
	if e.desc != nil {
		// Torn descriptor lines can never yield a verdict again; replace
		// them with the canonical empty encoding before clients ask.
		e.desc.Scrub()
	}
	shards := traceSpans(e.RecoveryLoad, tr, opts)

	batches := recovery.Batches(shards)
	recovery.Run(workers, len(batches), func(i int) {
		for _, sp := range batches[i] {
			e.mem.RecoverRange(sp.Ref, sp.Fields*patomic.CellWords)
		}
	})
	e.alloc.RebuildSharded(spanExtents(shards, patomic.CellWords), workers)
}

func (e *mirrorEngine) RecoveryLoad(ref Ref, field int) uint64 {
	return e.mem.P.ReadRaw(e.cellAddr(ref, field))
}

func (e *mirrorEngine) Clients() int {
	if e.desc == nil {
		return 0
	}
	return e.desc.Clients
}

// DetectRing returns the per-client descriptor ring size (0 with
// detectability off).
func (e *mirrorEngine) DetectRing() int {
	if e.desc == nil {
		return 0
	}
	return e.desc.Ring
}

func (e *mirrorEngine) DetectBegin(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	detectBegin(e.desc, c, &c.pa.FS, client, seq, kind, key, val, deferAnnounce)
}

func (e *mirrorEngine) Linearized(c *Ctx, result bool) {
	if e.combine && e.desc != nil && c.det.armed && !c.det.delivered && !c.det.deferred {
		// The verdict must never be durable before the install it
		// testifies to — including the buffered installs of this
		// thread's *earlier* operations, whose committed verdict chain
		// (slot moved past seq implies committed) the Detect protocol
		// leans on. Drain before publishing.
		e.mem.P.CombineDrain(&c.pa.FS, pmem.DrainDetect)
	}
	detectLinearized(e.desc, c, &c.pa.FS, result)
}

func (e *mirrorEngine) DetectEnd(c *Ctx, result bool) {
	if e.combine && e.desc != nil && c.det.armed && !c.det.delivered {
		// Same pre-verdict obligation for operations whose verdict
		// publishes here (no Linearized hook fired).
		e.mem.P.CombineDrain(&c.pa.FS, pmem.DrainDetect)
	}
	detectEnd(e.desc, c, &c.pa.FS, result)
}

func (e *mirrorEngine) detectBeginDeferred(c *Ctx, client int, seq, kind, key, val uint64, deferAnnounce bool) {
	detectBeginDeferred(e.desc, c, &c.pa.FS, func() { e.detectDrain(c) },
		client, seq, kind, key, val, deferAnnounce)
}

func (e *mirrorEngine) detectEndDeferred(c *Ctx, result bool, rval uint64) {
	detectEndDeferred(e.desc, c, result, rval)
}

// detectDrain publishes c's deferred verdicts: first a drain commits every
// effect whose durability was deferred — the relaxed-line registry and
// (under combining) the combine buffer — then all verdict lines flush and
// one End fence commits them. Effects never ride the verdicts' End fence:
// they are either durable before visibility (plain Mirror installs) or
// committed by the drain fence that precedes the publishes, so a crash
// can never persist a verdict whose effect vanished.
func (e *mirrorEngine) detectDrain(c *Ctx) {
	if len(c.detPending) == 0 {
		return
	}
	e.mem.P.CommitRelaxed(&c.pa.FS)
	if e.combine {
		e.mem.P.CombineDrain(&c.pa.FS, pmem.DrainDetect)
	}
	publishPending(e.desc, c, &c.pa.FS)
}

func (e *mirrorEngine) Detect(client int, seq uint64) DetectResult {
	if e.desc == nil {
		panic("engine: Detect with detectability disabled (Config.Clients == 0)")
	}
	return e.desc.Detect(client, seq)
}

// CheckMirrorInvariants verifies the per-cell replica invariants (Lemmas
// 5.3–5.5) for every field of an object, on a quiesced Mirror engine. It
// returns a description of the first violation, or "". Non-Mirror engines
// have no replica pair to check, so it vacuously returns "".
func CheckMirrorInvariants(e Engine, ref Ref, fields int) string {
	me, ok := e.(*mirrorEngine)
	if !ok {
		return ""
	}
	for f := 0; f < fields; f++ {
		if msg := me.mem.CheckInvariants(me.cellAddr(ref, f)); msg != "" {
			return fmt.Sprintf("ref %d field %d: %s", ref, f, msg)
		}
	}
	return ""
}

// PersistentDevices returns rep_p: only the persistent replica survives a
// crash, so it is the only device faults are injected into.
func (e *mirrorEngine) PersistentDevices() []*pmem.Device {
	return []*pmem.Device{e.mem.P}
}

func (e *mirrorEngine) Stats() Stats {
	h, r := e.mem.Stats()
	ef, en, pb, rx := e.mem.P.ElisionCounters()
	s := Stats{
		Helps: h, Retries: r,
		ElidedFlushes: ef, ElidedFences: en,
		PiggybackedFences: pb, RelaxedCAS: rx,
	}
	if e.combine {
		s.CombinedFences, s.DrainCauses = e.mem.P.CombineCounters()
	}
	if e.desc != nil {
		s.DetectAnnounces, s.DetectVerdicts = e.desc.Counters()
	}
	return s
}

func (e *mirrorEngine) Counters() (uint64, uint64) {
	f1, n1 := e.mem.P.Counters()
	f2, n2 := e.mem.V.Counters()
	return f1 + f2, n1 + n2
}

func (e *mirrorEngine) Footprint() (uint64, int) {
	return e.alloc.LiveWords(), 2
}
