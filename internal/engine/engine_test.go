package engine

import (
	"math/rand"
	"testing"

	"mirror/internal/pmem"
)

func newTestEngine(k Kind) Engine {
	return New(Config{Kind: k, Words: 1 << 18, RootFields: 4, Track: true})
}

func forEachKind(t *testing.T, f func(t *testing.T, e Engine)) {
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			f(t, newTestEngine(k))
		})
	}
}

func forEachDurable(t *testing.T, f func(t *testing.T, e Engine)) {
	for _, k := range Kinds() {
		if !k.Durable() {
			continue
		}
		t.Run(k.String(), func(t *testing.T) {
			f(t, newTestEngine(k))
		})
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		OrigDRAM: "OrigDRAM", OrigNVMM: "OrigNVMM", Izraelevitz: "Izraelevitz",
		NVTraverse: "NVTraverse", MirrorDRAM: "Mirror", MirrorNVMM: "MirrorNVMM",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestDurableFlag(t *testing.T) {
	if OrigDRAM.Durable() || OrigNVMM.Durable() {
		t.Error("originals must not be durable")
	}
	for _, k := range []Kind{Izraelevitz, NVTraverse, MirrorDRAM, MirrorNVMM} {
		if !k.Durable() {
			t.Errorf("%v must be durable", k)
		}
	}
}

func TestObjectLifecycle(t *testing.T) {
	forEachKind(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		e.OpBegin(c)
		ref := e.Alloc(c, 3)
		if ref == 0 {
			t.Fatal("Alloc returned nil ref")
		}
		if ref&3 != 0 {
			t.Fatalf("ref %d not 32-byte aligned", ref)
		}
		e.StoreInit(c, ref, 0, 10)
		e.StoreInit(c, ref, 1, 20)
		e.StoreInit(c, ref, 2, 30)
		e.Publish(c, ref)
		for f, want := range []uint64{10, 20, 30} {
			if got := e.Load(c, ref, f); got != want {
				t.Errorf("field %d = %d, want %d", f, got, want)
			}
			if got := e.TraversalLoad(c, ref, f); got != want {
				t.Errorf("traversal field %d = %d, want %d", f, got, want)
			}
		}
		e.OpEnd(c)
	})
}

func TestStoreCASFetchAdd(t *testing.T) {
	forEachKind(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		e.OpBegin(c)
		ref := e.Alloc(c, 2)
		e.StoreInit(c, ref, 0, 0)
		e.StoreInit(c, ref, 1, 5)
		e.Publish(c, ref)

		e.Store(c, ref, 0, 7)
		if got := e.Load(c, ref, 0); got != 7 {
			t.Errorf("after Store: %d, want 7", got)
		}
		if !e.CAS(c, ref, 0, 7, 8) {
			t.Error("CAS 7->8 should succeed")
		}
		if e.CAS(c, ref, 0, 7, 9) {
			t.Error("CAS 7->9 should fail")
		}
		if old := e.FetchAdd(c, ref, 1, 3); old != 5 {
			t.Errorf("FetchAdd returned %d, want 5", old)
		}
		if got := e.Load(c, ref, 1); got != 8 {
			t.Errorf("after FetchAdd: %d, want 8", got)
		}
		e.OpEnd(c)
	})
}

func TestRootFields(t *testing.T) {
	forEachKind(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		e.OpBegin(c)
		root := e.RootRef()
		for f := 0; f < 4; f++ {
			if got := e.Load(c, root, f); got != 0 {
				t.Errorf("fresh root field %d = %d, want 0", f, got)
			}
		}
		if !e.CAS(c, root, 2, 0, 77) {
			t.Error("root CAS should succeed")
		}
		if got := e.Load(c, root, 2); got != 77 {
			t.Errorf("root field = %d, want 77", got)
		}
		e.OpEnd(c)
	})
}

func TestCompletedWriteIsDurable(t *testing.T) {
	forEachDurable(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		e.OpBegin(c)
		root := e.RootRef()
		e.Store(c, root, 0, 1234)
		e.OpEnd(c)
		// A completed operation's writes must survive even the most
		// adversarial crash (drop everything unfenced).
		e.Crash(pmem.CrashDropAll, nil)
		if got := e.RecoveryLoad(root, 0); got != 1234 {
			t.Errorf("RecoveryLoad after crash = %d, want 1234", got)
		}
	})
}

func TestPublishedObjectIsDurable(t *testing.T) {
	forEachDurable(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		e.OpBegin(c)
		ref := e.Alloc(c, 2)
		e.StoreInit(c, ref, 0, 42)
		e.StoreInit(c, ref, 1, 43)
		e.Publish(c, ref)
		e.Store(c, e.RootRef(), 0, ref) // link it
		e.OpEnd(c)
		e.Crash(pmem.CrashDropAll, nil)
		if got := e.RecoveryLoad(e.RootRef(), 0); got != ref {
			t.Fatalf("root link lost: %d, want %d", got, ref)
		}
		if got := e.RecoveryLoad(ref, 0); got != 42 {
			t.Errorf("published field lost: %d, want 42", got)
		}
	})
}

func TestVolatileEnginesLoseEverything(t *testing.T) {
	for _, k := range []Kind{OrigDRAM, OrigNVMM} {
		t.Run(k.String(), func(t *testing.T) {
			e := newTestEngine(k)
			c := e.NewCtx()
			e.OpBegin(c)
			e.Store(c, e.RootRef(), 0, 9)
			e.OpEnd(c)
			e.Crash(pmem.CrashKeepAll, nil)
			e.Recover(nil)
			c2 := e.NewCtx()
			e.OpBegin(c2)
			if got := e.Load(c2, e.RootRef(), 0); got != 0 {
				t.Errorf("volatile engine kept %d across crash", got)
			}
			e.OpEnd(c2)
		})
	}
}

// buildChain links n 2-field nodes (value, next) from root field 0 and
// returns the refs.
func buildChain(e Engine, c *Ctx, n int) []Ref {
	refs := make([]Ref, n)
	var prev Ref
	for i := n - 1; i >= 0; i-- {
		e.OpBegin(c)
		ref := e.Alloc(c, 2)
		e.StoreInit(c, ref, 0, uint64(100+i))
		e.StoreInit(c, ref, 1, prev)
		e.Publish(c, ref)
		prev = ref
		refs[i] = ref
		e.OpEnd(c)
	}
	e.OpBegin(c)
	e.Store(c, e.RootRef(), 0, prev)
	e.OpEnd(c)
	return refs
}

// chainTracer walks the chain built by buildChain.
func chainTracer(e Engine) Tracer {
	return func(read func(Ref, int) uint64, visit func(Ref, int)) {
		ref := read(e.RootRef(), 0)
		for ref != 0 {
			visit(ref, 2)
			ref = read(ref, 1)
		}
	}
}

func TestCrashRecoverChain(t *testing.T) {
	forEachDurable(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		const n = 50
		buildChain(e, c, n)
		e.Crash(pmem.CrashDropAll, nil)
		e.Recover(chainTracer(e))

		c2 := e.NewCtx()
		e.OpBegin(c2)
		ref := e.Load(c2, e.RootRef(), 0)
		for i := 0; i < n; i++ {
			if ref == 0 {
				t.Fatalf("chain broken at node %d", i)
			}
			if got := e.Load(c2, ref, 0); got != uint64(100+i) {
				t.Errorf("node %d value = %d, want %d", i, got, 100+i)
			}
			ref = e.Load(c2, ref, 1)
		}
		if ref != 0 {
			t.Error("chain longer than expected")
		}
		e.OpEnd(c2)
	})
}

func TestRecoveryReclaimsUnreachable(t *testing.T) {
	forEachDurable(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		buildChain(e, c, 10)
		// Allocate garbage that is never linked (published but
		// unreachable: leaked at crash, must be reclaimed by recovery's
		// offline GC).
		e.OpBegin(c)
		for i := 0; i < 100; i++ {
			g := e.Alloc(c, 2)
			e.StoreInit(c, g, 0, 1)
			e.StoreInit(c, g, 1, 0)
			e.Publish(c, g)
		}
		e.OpEnd(c)
		e.Crash(pmem.CrashKeepAll, nil)
		e.Recover(chainTracer(e))

		// After recovery the allocator must be able to hand out the
		// reclaimed space again without overlapping live nodes.
		c2 := e.NewCtx()
		e.OpBegin(c2)
		live := make(map[Ref]bool)
		ref := e.Load(c2, e.RootRef(), 0)
		for ref != 0 {
			live[ref] = true
			ref = e.Load(c2, ref, 1)
		}
		for i := 0; i < 200; i++ {
			g := e.Alloc(c2, 2)
			if live[g] {
				t.Fatalf("allocator handed out live node %d after recovery", g)
			}
		}
		e.OpEnd(c2)
	})
}

func TestCrashMidOperationChainIntact(t *testing.T) {
	// Crash at random points while a writer extends the chain; after
	// recovery the chain must be a consistent prefix-extension: every
	// node reachable from the root is fully initialized.
	forEachDurable(t, func(t *testing.T, e Engine) {
		rng := rand.New(rand.NewSource(99))
		c := e.NewCtx()
		buildChain(e, c, 5)

		func() {
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			w := e.NewCtx()
			for i := 0; ; i++ {
				if i == 3 {
					e.Freeze() // freeze at an arbitrary point mid-stream
				}
				e.OpBegin(w)
				ref := e.Alloc(w, 2)
				e.StoreInit(w, ref, 0, uint64(1000+i))
				head := e.Load(w, e.RootRef(), 0)
				e.StoreInit(w, ref, 1, head)
				e.Publish(w, ref)
				e.CAS(w, e.RootRef(), 0, head, ref)
				e.OpEnd(w)
			}
		}()
		e.Crash(pmem.CrashRandom, rng)
		e.Recover(chainTracer(e))

		c2 := e.NewCtx()
		e.OpBegin(c2)
		ref := e.Load(c2, e.RootRef(), 0)
		count := 0
		for ref != 0 {
			v := e.Load(c2, ref, 0)
			if v == 0 {
				t.Fatal("reachable node with uninitialized value after crash")
			}
			ref = e.Load(c2, ref, 1)
			count++
			if count > 100 {
				t.Fatal("chain cycle after recovery")
			}
		}
		if count < 5 {
			t.Errorf("pre-crash chain lost: %d nodes", count)
		}
		e.OpEnd(c2)
	})
}

func TestCountersGrowOnlyForDurable(t *testing.T) {
	forEachKind(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		e.OpBegin(c)
		e.Store(c, e.RootRef(), 0, 1)
		e.OpEnd(c)
		fl, fe := e.Counters()
		if e.Kind().Durable() {
			if fl == 0 || fe == 0 {
				t.Errorf("durable engine issued no flushes/fences: (%d,%d)", fl, fe)
			}
		} else {
			if fl != 0 || fe != 0 {
				t.Errorf("volatile engine issued flushes/fences: (%d,%d)", fl, fe)
			}
		}
	})
}

func TestIzraelevitzPersistsReads(t *testing.T) {
	eIz := newTestEngine(Izraelevitz)
	eNVT := newTestEngine(NVTraverse)
	for _, e := range []Engine{eIz, eNVT} {
		c := e.NewCtx()
		e.OpBegin(c)
		e.Store(c, e.RootRef(), 0, 1)
		e.OpEnd(c)
	}
	cIz, cNVT := eIz.NewCtx(), eNVT.NewCtx()
	fl0, _ := eIz.Counters()
	eIz.OpBegin(cIz)
	for i := 0; i < 100; i++ {
		eIz.TraversalLoad(cIz, eIz.RootRef(), 0)
	}
	eIz.OpEnd(cIz)
	fl1, _ := eIz.Counters()

	nfl0, _ := eNVT.Counters()
	eNVT.OpBegin(cNVT)
	for i := 0; i < 100; i++ {
		eNVT.TraversalLoad(cNVT, eNVT.RootRef(), 0)
	}
	eNVT.OpEnd(cNVT)
	nfl1, _ := eNVT.Counters()

	if fl1-fl0 < 100 {
		t.Errorf("Izraelevitz traversal loads issued %d flushes, want >= 100", fl1-fl0)
	}
	if nfl1-nfl0 != 0 {
		t.Errorf("NVTraverse traversal loads issued %d flushes, want 0", nfl1-nfl0)
	}
}

func TestMirrorNeverFlushesOnLoad(t *testing.T) {
	e := newTestEngine(MirrorDRAM)
	c := e.NewCtx()
	e.OpBegin(c)
	e.Store(c, e.RootRef(), 0, 1)
	fl0, fe0 := e.Counters()
	for i := 0; i < 1000; i++ {
		e.Load(c, e.RootRef(), 0)
	}
	fl1, fe1 := e.Counters()
	e.OpEnd(c)
	if fl1 != fl0 || fe1 != fe0 {
		t.Errorf("Mirror loads issued persistence instructions: flush %d fence %d",
			fl1-fl0, fe1-fe0)
	}
}

func TestFreeUnpublishedReuse(t *testing.T) {
	forEachKind(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		e.OpBegin(c)
		ref := e.Alloc(c, 2)
		e.FreeUnpublished(c, ref, 2)
		got := e.Alloc(c, 2)
		if got != ref {
			t.Errorf("Alloc after FreeUnpublished = %d, want recycled %d", got, ref)
		}
		e.OpEnd(c)
	})
}

// chainShardedTracer partitions the chain by node index: shard s visits
// nodes whose position modulo shards is s. Every shard walks the whole
// chain (cheap reads) but visits a disjoint subset, which together cover
// exactly the sequential tracer's visit set.
func chainShardedTracer(e Engine) ShardedTracer {
	return func(shard, shards int) Tracer {
		return func(read func(Ref, int) uint64, visit func(Ref, int)) {
			ref := read(e.RootRef(), 0)
			for i := 0; ref != 0; i++ {
				if i%shards == shard {
					visit(ref, 2)
				}
				ref = read(ref, 1)
			}
		}
	}
}

// readChain returns the (value, ref) sequence of the recovered chain.
func readChain(t *testing.T, e Engine) [][2]uint64 {
	t.Helper()
	c := e.NewCtx()
	e.OpBegin(c)
	defer e.OpEnd(c)
	var out [][2]uint64
	ref := e.Load(c, e.RootRef(), 0)
	for ref != 0 {
		out = append(out, [2]uint64{e.Load(c, ref, 0), ref})
		ref = e.Load(c, ref, 1)
	}
	return out
}

func TestRecoverWithParallelMatchesSequential(t *testing.T) {
	forEachDurable(t, func(t *testing.T, e Engine) {
		c := e.NewCtx()
		const n = 200
		buildChain(e, c, n)
		e.Crash(pmem.CrashDropAll, nil)

		e.Recover(chainTracer(e))
		want := readChain(t, e)
		if len(want) != n {
			t.Fatalf("sequential recovery found %d nodes, want %d", len(want), n)
		}

		for _, par := range []int{2, 4, 7} {
			// Recovery is idempotent, so re-crashing the already-recovered
			// image and recovering in parallel must reproduce it exactly.
			e.Crash(pmem.CrashDropAll, nil)
			e.RecoverWith(chainTracer(e), RecoverOptions{
				Parallelism: par,
				Sharded:     chainShardedTracer(e),
			})
			got := readChain(t, e)
			if len(got) != len(want) {
				t.Fatalf("par=%d: recovered %d nodes, want %d", par, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("par=%d: node %d = %v, want %v", par, i, got[i], want[i])
				}
			}
			for _, node := range got {
				if msg := CheckMirrorInvariants(e, node[1], 2); msg != "" {
					t.Fatalf("par=%d: %s", par, msg)
				}
			}
		}

		// The structure must remain operational after a parallel recovery:
		// extend the chain and walk it back.
		c2 := e.NewCtx()
		e.OpBegin(c2)
		head := e.Load(c2, e.RootRef(), 0)
		nref := e.Alloc(c2, 2)
		e.StoreInit(c2, nref, 0, 99)
		e.StoreInit(c2, nref, 1, head)
		e.Publish(c2, nref)
		if !e.CAS(c2, e.RootRef(), 0, head, nref) {
			t.Fatal("post-recovery CAS failed on quiesced engine")
		}
		e.OpEnd(c2)
		if got := readChain(t, e); len(got) != n+1 || got[0][0] != 99 {
			t.Fatalf("post-recovery insert not visible: len=%d", len(got))
		}
	})
}

func TestRecoverWithoutShardedTracerStillParallel(t *testing.T) {
	// Parallelism without a sharded tracer parallelizes only the rebuild
	// phase; contents must still match the sequential result.
	e := newTestEngine(MirrorDRAM)
	c := e.NewCtx()
	const n = 100
	buildChain(e, c, n)
	e.Crash(pmem.CrashDropAll, nil)
	e.RecoverWith(chainTracer(e), RecoverOptions{Parallelism: 4})
	if got := readChain(t, e); len(got) != n {
		t.Fatalf("recovered %d nodes, want %d", len(got), n)
	}
}
