// Package faultfuzz is the seeded crash fuzzer over the adversarial
// persistence fault model of internal/pmem: it runs randomized concurrent
// workloads against the durable engines, fires a seeded crash trigger at an
// arbitrary device operation mid-flight, lets the fault adversary decide the
// fate of every dirty cache line (persist / drop / tear), recovers, and
// cross-checks the survivor:
//
//   - structural fsck (internal/verify) plus the Lemma 5.3–5.5 replica
//     invariants on every reachable object (Mirror engines);
//   - durable linearizability of the recorded operation history against the
//     recovered state (internal/linearize.CheckDurable);
//   - torn-value detection (every stored value must equal its key);
//   - an operational probe (the structure still works).
//
// Every run is parameterized by (seed, schedule); a single-threaded
// schedule replays to the bit-identical post-crash media image, which is
// what Result.MediaHash fingerprints. Shrink reduces a failing spec to a
// minimal reproducer.
package faultfuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mirror/internal/engine"
	"mirror/internal/linearize"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
	"mirror/internal/verify"
)

// Schedule is the shape of one fuzz workload. It is one half of the
// reproducer pair: (seed, schedule) fully determines a Workers=1 run.
type Schedule struct {
	Workers int   // concurrent worker goroutines
	OpsPer  int   // recorded operations per worker
	Keys    int   // keyspace [1, Keys]
	CrashAt int64 // device-op index where the crash fires; 0 = at workload end
}

// String renders the canonical re-runnable form, e.g. "w2o8k6c137".
func (s Schedule) String() string {
	return fmt.Sprintf("w%do%dk%dc%d", s.Workers, s.OpsPer, s.Keys, s.CrashAt)
}

// ParseSchedule parses the String form.
func ParseSchedule(str string) (Schedule, error) {
	var s Schedule
	if _, err := fmt.Sscanf(str, "w%do%dk%dc%d", &s.Workers, &s.OpsPer, &s.Keys, &s.CrashAt); err != nil {
		return s, fmt.Errorf("faultfuzz: bad schedule %q (want wWoOkKcC): %v", str, err)
	}
	return s, nil
}

func (s *Schedule) setDefaults() {
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.OpsPer <= 0 {
		s.OpsPer = 8
	}
	if s.Keys <= 0 {
		s.Keys = 6
	}
	// The durable-linearizability search is bounded to 64 ops total.
	for s.Workers*s.OpsPer > 48 {
		s.OpsPer--
	}
}

// Spec is one complete fuzz-run configuration.
type Spec struct {
	Structure string      // list | hashtable | bst | skiplist
	Kind      engine.Kind // a durable engine kind
	Faults    pmem.FaultSpec
	Seed      int64
	Schedule  Schedule
	Words     int
	// NewEngine overrides engine construction (test hook for deliberately
	// broken engines). nil means engine.New.
	NewEngine func(engine.Config) engine.Engine
}

// String renders the reproducer line a failing run prints.
func (s Spec) String() string {
	return fmt.Sprintf("-structure=%s -engine=%s -faults=%s -seed=%d -schedule=%s",
		s.Structure, s.Kind, s.Faults, s.Seed, s.Schedule)
}

// Result is the outcome of one run.
type Result struct {
	Violations []string
	// MediaHash fingerprints the persistent media image between crash and
	// recovery; Workers=1 replays of the same spec must reproduce it.
	MediaHash uint64
	// OpsTotal is the model's device-op clock after the run; fuzzers
	// calibrate CrashAt by sampling [1, OpsTotal] of a c0 dry run.
	OpsTotal int64
	// CrashedAt is the op index where the trigger fired (0 = it did not;
	// the crash was taken at workload end instead).
	CrashedAt int64
}

// Failed reports whether the run found any violation.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

func (r *Result) addf(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// target bundles the per-structure hooks.
type target struct {
	rootField int
	build     func(e engine.Engine, c *engine.Ctx) structures.Set
	tracer    func(e engine.Engine) engine.Tracer
	fsck      func(e engine.Engine, c *engine.Ctx) *verify.Report
}

func targets() map[string]target {
	return map[string]target{
		"list": {
			rootField: 0,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return list.New(e, 0) },
			tracer:    func(e engine.Engine) engine.Tracer { return list.TracerAt(e, 0) },
			fsck:      func(e engine.Engine, c *engine.Ctx) *verify.Report { return verify.List(e, c, 0) },
		},
		"hashtable": {
			rootField: 0,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return hashtable.New(e, c, 16) },
			tracer:    func(e engine.Engine) engine.Tracer { return hashtable.TracerAt(e, 0) },
			fsck:      func(e engine.Engine, c *engine.Ctx) *verify.Report { return verify.HashTable(e, c, 0) },
		},
		"bst": {
			rootField: 2,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return bst.New(e, c) },
			tracer:    func(e engine.Engine) engine.Tracer { return bst.TracerAt(e, 2) },
			fsck:      func(e engine.Engine, c *engine.Ctx) *verify.Report { return verify.BST(e, c, 2) },
		},
		"skiplist": {
			rootField: 3,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return skiplist.New(e, c) },
			tracer:    func(e engine.Engine) engine.Tracer { return skiplist.TracerAt(e, 3) },
			fsck: func(e engine.Engine, c *engine.Ctx) *verify.Report {
				return verify.SkipList(e, c, 3, skiplist.MaxLevel)
			},
		},
	}
}

// Structures lists the fuzzable structure names, sorted.
func Structures() []string {
	var names []string
	for name := range targets() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// guard runs f, converting an ErrFrozen panic (the simulated power cut)
// into a false return. Any other panic propagates.
func guard(f func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if r != pmem.ErrFrozen {
				panic(r)
			}
		}
	}()
	f()
	return true
}

// Run executes one fuzz run and returns its result.
func Run(spec Spec) *Result {
	spec.Schedule.setDefaults()
	if !spec.Kind.Durable() {
		panic("faultfuzz: engine kind is not durable")
	}
	tgt, ok := targets()[spec.Structure]
	if !ok {
		panic(fmt.Sprintf("faultfuzz: unknown structure %q", spec.Structure))
	}
	newEngine := spec.NewEngine
	if newEngine == nil {
		newEngine = engine.New
	}
	words := spec.Words
	if words == 0 {
		words = 1 << 17
	}
	res := &Result{}

	e := newEngine(engine.Config{Kind: spec.Kind, Words: words, Track: true})
	fm := pmem.NewFaultModel(spec.Seed, spec.Faults)
	devs := e.PersistentDevices()
	for _, d := range devs {
		d.InjectFaults(fm)
	}
	if spec.Schedule.CrashAt > 0 {
		fm.CrashAfter(spec.Schedule.CrashAt)
	}

	// Construction is inside the crash window: the trigger may cut it.
	var set structures.Set
	built := guard(func() {
		set = tgt.build(e, e.NewCtx())
	})

	hist := linearize.NewHistory()
	if built {
		var wg sync.WaitGroup
		for w := 0; w < spec.Schedule.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				guard(func() {
					c := e.NewCtx()
					rec := hist.Record(set, w)
					rng := rand.New(rand.NewSource(spec.Seed*1000 + int64(w)))
					for i := 0; i < spec.Schedule.OpsPer; i++ {
						key := uint64(1 + rng.Intn(spec.Schedule.Keys))
						switch rng.Intn(4) {
						case 0, 1: // insert-heavy so state accumulates
							rec.Insert(c, key, key)
						case 2:
							rec.Delete(c, key)
						default:
							rec.Contains(c, key)
						}
					}
				})
			}(w)
		}
		wg.Wait()
	}

	// Take the crash: quiesce, then let the fault adversary decide every
	// dirty line's fate (the policy argument is superseded by the model).
	e.Freeze()
	e.Crash(pmem.CrashDropAll, nil)
	res.CrashedAt = fm.CrashedAt()
	res.OpsTotal = fm.Ops()
	// The crash has been taken (or its moment passed un-hit): disarm the
	// trigger so recovery and verification run under eviction stress only.
	fm.CrashAfter(0)
	for _, d := range devs {
		res.MediaHash = res.MediaHash*fnvPrime ^ d.MediaHash()
	}

	// Recovery must neither panic nor leave a broken structure behind.
	if !guard(func() { e.Recover(tgt.tracer(e)) }) {
		res.addf("recovery crashed (froze) — recovery must not touch the crash trigger")
		return res
	}
	c := e.NewCtx()
	if !guard(func() { set = tgt.build(e, c) }) {
		res.addf("re-attach after recovery froze the device")
		return res
	}

	// Structural fsck.
	if rep := tgt.fsck(e, c); !rep.Ok() {
		for _, p := range rep.Problems {
			res.addf("fsck: %s", p)
		}
	}
	// Lemma 5.3–5.5 replica invariants on every reachable object.
	tgt.tracer(e)(
		func(ref engine.Ref, field int) uint64 { return e.TraversalLoad(c, ref, field) },
		func(ref engine.Ref, fields int) {
			if msg := engine.CheckMirrorInvariants(e, ref, fields); msg != "" {
				res.addf("replica invariant: %s", msg)
			}
		})

	// Observed final state + torn-value check (every value equals its key).
	final := make(map[uint64]bool)
	for key := uint64(1); key <= uint64(spec.Schedule.Keys); key++ {
		if set.Contains(c, key) {
			final[key] = true
			if v, ok := set.Get(c, key); !ok || v != key {
				res.addf("torn value: key %d has value %d after recovery", key, v)
			}
		}
	}
	// Durable linearizability of the recorded history against that state.
	if err := linearize.CheckDurable(hist, nil, final); err != nil {
		res.addf("%v (completed=%d pending=%d state=%v)", err, len(hist.Ops), len(hist.Pending), final)
	}
	// Operational probe.
	probe := uint64(spec.Schedule.Keys + 100)
	if !set.Insert(c, probe, 1) || !set.Contains(c, probe) || !set.Delete(c, probe) {
		res.addf("post-recovery operations failed on probe key %d", probe)
	}
	return res
}

const fnvPrime = 1099511628211

// Calibrate measures the device-op clock of a full (crash-free) run of the
// spec so a fuzzer can sample CrashAt uniformly from [1, OpsTotal].
func Calibrate(spec Spec) int64 {
	spec.Schedule.CrashAt = 0
	return Run(spec).OpsTotal
}

// Shrink greedily reduces a failing spec while it keeps failing: fewer
// workers first (a Workers=1 reproducer is exactly replayable), then fewer
// ops, fewer keys, and earlier crash points. It returns the minimal spec
// and its failing result; if the input spec does not fail, it is returned
// unchanged with its (passing) result.
func Shrink(spec Spec) (Spec, *Result) {
	spec.Schedule.setDefaults()
	best := Run(spec)
	if !best.Failed() {
		return spec, best
	}
	for changed := true; changed; {
		changed = false
		for _, cand := range reductions(spec) {
			if r := Run(cand); r.Failed() {
				spec, best = cand, r
				changed = true
				break
			}
		}
	}
	return spec, best
}

// reductions proposes strictly smaller candidate specs.
func reductions(s Spec) []Spec {
	var out []Spec
	add := func(mutate func(*Schedule)) {
		c := s
		mutate(&c.Schedule)
		out = append(out, c)
	}
	if s.Schedule.Workers > 1 {
		add(func(sc *Schedule) { sc.Workers = 1 })
	}
	if s.Schedule.OpsPer > 1 {
		add(func(sc *Schedule) { sc.OpsPer /= 2 })
		add(func(sc *Schedule) { sc.OpsPer-- })
	}
	if s.Schedule.Keys > 1 {
		add(func(sc *Schedule) { sc.Keys /= 2 })
		add(func(sc *Schedule) { sc.Keys-- })
	}
	if s.Schedule.CrashAt > 1 {
		add(func(sc *Schedule) { sc.CrashAt /= 2 })
		add(func(sc *Schedule) { sc.CrashAt-- })
	}
	return out
}
