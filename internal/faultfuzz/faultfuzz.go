// Package faultfuzz is the seeded crash fuzzer over the adversarial
// persistence fault model of internal/pmem: it runs randomized concurrent
// workloads against the durable engines, fires a seeded crash trigger at an
// arbitrary device operation mid-flight, lets the fault adversary decide the
// fate of every dirty cache line (persist / drop / tear), recovers, and
// cross-checks the survivor:
//
//   - structural fsck (internal/verify) plus the Lemma 5.3–5.5 replica
//     invariants on every reachable object (Mirror engines);
//   - durable linearizability of the recorded operation history against the
//     recovered state (internal/linearize.CheckDurable);
//   - torn-value detection (every stored value must equal its key);
//   - an operational probe (the structure still works).
//
// Every run is parameterized by (seed, schedule); a single-threaded
// schedule replays to the bit-identical post-crash media image, which is
// what Result.MediaHash fingerprints. Shrink reduces a failing spec to a
// minimal reproducer.
package faultfuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mirror/internal/engine"
	"mirror/internal/linearize"
	"mirror/internal/pmem"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
	"mirror/internal/verify"
)

// Schedule is the shape of one fuzz workload. It is one half of the
// reproducer pair: (seed, schedule) fully determines a Workers=1 run.
type Schedule struct {
	Workers int   // concurrent worker goroutines
	OpsPer  int   // recorded operations per worker
	Keys    int   // keyspace [1, Keys]
	CrashAt int64 // device-op index where the crash fires; 0 = at workload end
}

// String renders the canonical re-runnable form, e.g. "w2o8k6c137".
func (s Schedule) String() string {
	return fmt.Sprintf("w%do%dk%dc%d", s.Workers, s.OpsPer, s.Keys, s.CrashAt)
}

// ParseSchedule parses the String form.
func ParseSchedule(str string) (Schedule, error) {
	var s Schedule
	if _, err := fmt.Sscanf(str, "w%do%dk%dc%d", &s.Workers, &s.OpsPer, &s.Keys, &s.CrashAt); err != nil {
		return s, fmt.Errorf("faultfuzz: bad schedule %q (want wWoOkKcC): %v", str, err)
	}
	return s, nil
}

func (s *Schedule) setDefaults() {
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.OpsPer <= 0 {
		s.OpsPer = 8
	}
	if s.Keys <= 0 {
		s.Keys = 6
	}
	// The durable-linearizability search is bounded to 64 ops total.
	for s.Workers*s.OpsPer > 48 {
		s.OpsPer--
	}
}

// Spec is one complete fuzz-run configuration.
type Spec struct {
	Structure string      // list | hashtable | bst | skiplist
	Kind      engine.Kind // a durable engine kind
	Faults    pmem.FaultSpec
	Seed      int64
	Schedule  Schedule
	Words     int
	// Detect enables detectable operations: the engine reserves one
	// descriptor ring per worker (Config.Clients = Schedule.Workers, ring
	// size the engine default), every workload operation runs inside a
	// detectability bracket, and after recovery the Detect verdicts are
	// cross-checked against durable linearizability — every acknowledged
	// seq still inside the ring window must read Committed with its
	// recorded result, and the crash-cut operation is resolved by its
	// verdict and replayed exactly-once. A Detect verdict that disagrees
	// with linearize.CheckDurable is a violation like any other:
	// shrinkable and replayable.
	Detect bool
	// Combine enables cross-operation fence combining (engine
	// Config.Combine). The run then checks *buffered* durable
	// linearizability: each worker records its combine-buffer commit
	// ticket per operation, and a completed op whose ticket is above the
	// worker's drained watermark at the crash may legally vanish
	// (linearize.CheckDurableBuffered). Ops at or below the watermark were
	// fenced and must survive — a drain that loses one is a violation.
	Combine bool
	// Shards > 1 runs the workload on a sharded engine (engine.Sharded)
	// with that many device shards, routed through structures.Sharded.
	// Faults are injected independently per shard (pmem.ShardFaultModels)
	// and the crash trigger is armed on the shard CrashAt selects, so a
	// crash lands mid-operation on any one shard while the others keep
	// their own damage streams. Recovery runs shard-concurrent.
	Shards int
	// NewEngine overrides engine construction (test hook for deliberately
	// broken engines). nil means engine.New.
	NewEngine func(engine.Config) engine.Engine
}

// String renders the reproducer line a failing run prints.
func (s Spec) String() string {
	str := fmt.Sprintf("-structure=%s -engine=%s -faults=%s -seed=%d -schedule=%s",
		s.Structure, s.Kind, s.Faults, s.Seed, s.Schedule)
	if s.Shards > 1 {
		str += fmt.Sprintf(" -shards=%d", s.Shards)
	}
	if s.Detect {
		str += " -detect"
	}
	if s.Combine {
		str += " -combine"
	}
	return str
}

// Result is the outcome of one run.
type Result struct {
	Violations []string
	// MediaHash fingerprints the persistent media image between crash and
	// recovery; Workers=1 replays of the same spec must reproduce it.
	MediaHash uint64
	// OpsTotal is the model's device-op clock after the run; fuzzers
	// calibrate CrashAt by sampling [1, OpsTotal] of a c0 dry run.
	OpsTotal int64
	// CrashedAt is the op index where the trigger fired (0 = it did not;
	// the crash was taken at workload end instead).
	CrashedAt int64
}

// Failed reports whether the run found any violation.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

func (r *Result) addf(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// target bundles the per-structure hooks.
type target struct {
	rootField int
	build     func(e engine.Engine, c *engine.Ctx) structures.Set
	tracer    func(e engine.Engine) engine.Tracer
	fsck      func(e engine.Engine, c *engine.Ctx) *verify.Report
}

func targets() map[string]target {
	return map[string]target{
		"list": {
			rootField: 0,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return list.New(e, 0) },
			tracer:    func(e engine.Engine) engine.Tracer { return list.TracerAt(e, 0) },
			fsck:      func(e engine.Engine, c *engine.Ctx) *verify.Report { return verify.List(e, c, 0) },
		},
		"hashtable": {
			rootField: 0,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return hashtable.New(e, c, 16) },
			tracer:    func(e engine.Engine) engine.Tracer { return hashtable.TracerAt(e, 0) },
			fsck:      func(e engine.Engine, c *engine.Ctx) *verify.Report { return verify.HashTable(e, c, 0) },
		},
		"bst": {
			rootField: 2,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return bst.New(e, c) },
			tracer:    func(e engine.Engine) engine.Tracer { return bst.TracerAt(e, 2) },
			fsck:      func(e engine.Engine, c *engine.Ctx) *verify.Report { return verify.BST(e, c, 2) },
		},
		"skiplist": {
			rootField: 3,
			build:     func(e engine.Engine, c *engine.Ctx) structures.Set { return skiplist.New(e, c) },
			tracer:    func(e engine.Engine) engine.Tracer { return skiplist.TracerAt(e, 3) },
			fsck: func(e engine.Engine, c *engine.Ctx) *verify.Report {
				return verify.SkipList(e, c, 3, skiplist.MaxLevel)
			},
		},
	}
}

// Structures lists the fuzzable structure names, sorted.
func Structures() []string {
	var names []string
	for name := range targets() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// guard runs f, converting an ErrFrozen panic (the simulated power cut)
// into a false return. Any other panic propagates.
func guard(f func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if r != pmem.ErrFrozen {
				panic(r)
			}
		}
	}()
	f()
	return true
}

// detectableSet wraps a structures.Set so every operation runs inside a
// detectable-operation bracket on one client descriptor slot. The adapter
// sits *inside* the history Recorder, so the invoke-record precedes
// DetectBegin and the response-record follows DetectEnd: an operation that
// completed in the history has a durably published verdict. The fields are
// single-writer (one worker per adapter) and are read only after the
// post-crash quiesce.
type detectableSet struct {
	structures.Set
	e      engine.Engine
	client int
	// seq is the last announced sequence number; completed is the last one
	// whose DetectEnd returned. seq == completed+1 exactly when the crash
	// cut an operation mid-flight (the announce happens before anything
	// that can freeze).
	seq, completed uint64
	lastKind       uint64 // kind/key/val of the last *started* op
	lastKey        uint64
	lastVal        uint64
	// results journals every completed op's boolean result by seq, the
	// ground truth the ring-window cross-check compares verdicts against.
	results map[uint64]bool
}

func (d *detectableSet) run(c *engine.Ctx, kind, key, val uint64, f func() bool) bool {
	d.seq++
	d.lastKind, d.lastKey, d.lastVal = kind, key, val
	// Inserts and queries defer the announce onto the operation's own
	// publish/terminal fence; deletes announce eagerly, before the mark CAS
	// can make the effect durable.
	deferAnnounce := kind != engine.DetectDelete
	d.e.DetectBegin(c, d.client, d.seq, kind, key, val, deferAnnounce)
	res := f()
	d.e.DetectEnd(c, res)
	d.completed = d.seq
	d.results[d.seq] = res
	return res
}

func (d *detectableSet) Insert(c *engine.Ctx, key, val uint64) bool {
	return d.run(c, engine.DetectInsert, key, val, func() bool { return d.Set.Insert(c, key, val) })
}

func (d *detectableSet) Delete(c *engine.Ctx, key uint64) bool {
	return d.run(c, engine.DetectDelete, key, 0, func() bool { return d.Set.Delete(c, key) })
}

func (d *detectableSet) Contains(c *engine.Ctx, key uint64) bool {
	return d.run(c, engine.DetectContains, key, 0, func() bool { return d.Set.Contains(c, key) })
}

// cut reports whether the crash cut an operation on this client mid-flight.
func (d *detectableSet) cut() bool { return d.seq > d.completed }

// opKind maps a descriptor kind back to the history's operation kind.
func opKind(kind uint64) linearize.OpKind {
	switch kind {
	case engine.DetectInsert:
		return linearize.OpInsert
	case engine.DetectDelete:
		return linearize.OpDelete
	default:
		return linearize.OpContains
	}
}

// Run executes one fuzz run and returns its result.
func Run(spec Spec) *Result {
	spec.Schedule.setDefaults()
	if !spec.Kind.Durable() {
		panic("faultfuzz: engine kind is not durable")
	}
	tgt, ok := targets()[spec.Structure]
	if !ok {
		panic(fmt.Sprintf("faultfuzz: unknown structure %q", spec.Structure))
	}
	newEngine := spec.NewEngine
	if newEngine == nil {
		newEngine = engine.New
	}
	words := spec.Words
	if words == 0 {
		words = 1 << 17
	}
	res := &Result{}

	clients := 0
	if spec.Detect {
		clients = spec.Schedule.Workers
	}
	nsh := spec.Shards
	if nsh < 1 {
		nsh = 1
	}
	e := newEngine(engine.Config{Kind: spec.Kind, Words: words, Track: true, Clients: clients, Combine: spec.Combine, Shards: spec.Shards})
	var se *engine.Sharded
	if nsh > 1 {
		se = e.(*engine.Sharded)
	}
	devs := e.PersistentDevices()
	var fms []*pmem.FaultModel
	var trig *pmem.FaultModel // the model carrying the crash trigger
	if se != nil {
		// One independent adversary per shard; the crash trigger is armed
		// on the shard CrashAt selects, at a per-shard op count scaled by
		// the shard count (every shard's clock advances at ~1/nsh the
		// aggregate rate).
		fms = pmem.ShardFaultModels(spec.Seed, spec.Faults, nsh)
		(&pmem.ShardedDevice{Devs: devs}).InjectFaults(fms)
		if spec.Schedule.CrashAt > 0 {
			per := spec.Schedule.CrashAt / int64(nsh)
			if per < 1 {
				per = 1
			}
			trig = fms[spec.Schedule.CrashAt%int64(nsh)]
			trig.CrashAfter(per)
		}
	} else {
		fm := pmem.NewFaultModel(spec.Seed, spec.Faults)
		for _, d := range devs {
			d.InjectFaults(fm)
		}
		fms = []*pmem.FaultModel{fm}
		trig = fm
		if spec.Schedule.CrashAt > 0 {
			fm.CrashAfter(spec.Schedule.CrashAt)
		}
	}

	// Construction is inside the crash window: the trigger may cut it.
	var set structures.Set
	built := guard(func() {
		if se != nil {
			set = structures.NewSharded(se, e.NewCtx(), tgt.build)
		} else {
			set = tgt.build(e, e.NewCtx())
		}
	})

	hist := linearize.NewHistory()
	dets := make([]*detectableSet, spec.Schedule.Workers)
	wctxs := make([]*engine.Ctx, spec.Schedule.Workers)
	if built {
		var wg sync.WaitGroup
		for w := 0; w < spec.Schedule.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				guard(func() {
					c := e.NewCtx()
					wctxs[w] = c
					rset := set
					if spec.Detect {
						dets[w] = &detectableSet{Set: set, e: e, client: w, results: map[uint64]bool{}}
						rset = dets[w]
					}
					rec := hist.Record(rset, w)
					if spec.Combine && se == nil {
						// Stamp each op with the worker's combine-buffer
						// commit ticket so the post-crash check knows which
						// completed ops were still unfenced.
						rec.TicketFn = func() uint64 {
							last, _ := engine.CombineTickets(c)
							return last
						}
					}
					rng := rand.New(rand.NewSource(spec.Seed*1000 + int64(w)))
					for i := 0; i < spec.Schedule.OpsPer; i++ {
						key := uint64(1 + rng.Intn(spec.Schedule.Keys))
						if spec.Combine && se != nil {
							// Per-shard ticket spaces are incomparable, so
							// stamp each op with its routed shard's ticket.
							// TicketFn is called synchronously after each op
							// by this worker's recorder, so reassigning it
							// per op is race-free.
							sc := c.Sub(pmem.ShardOf(key, nsh))
							rec.TicketFn = func() uint64 {
								last, _ := engine.CombineTickets(sc)
								return last
							}
						}
						switch rng.Intn(4) {
						case 0, 1: // insert-heavy so state accumulates
							rec.Insert(c, key, key)
						case 2:
							rec.Delete(c, key)
						default:
							rec.Contains(c, key)
						}
					}
				})
			}(w)
		}
		wg.Wait()
	}

	// Take the crash: quiesce, then let the fault adversary decide every
	// dirty line's fate (the policy argument is superseded by the model).
	e.Freeze()
	e.Crash(pmem.CrashDropAll, nil)
	if trig != nil {
		res.CrashedAt = trig.CrashedAt()
	}
	// The crash has been taken (or its moment passed un-hit): disarm the
	// trigger so recovery and verification run under eviction stress only.
	// OpsTotal aggregates every shard's device-op clock so fuzzers can
	// still sample CrashAt from [1, OpsTotal].
	for _, m := range fms {
		res.OpsTotal += m.Ops()
		m.CrashAfter(0)
	}
	for _, d := range devs {
		res.MediaHash = res.MediaHash*fnvPrime ^ d.MediaHash()
	}

	// Snapshot each worker's drained watermark as of the crash: completed
	// ops ticketed above it were linearized but possibly never fenced, so
	// the buffered checker lets them vanish. The per-context tickets are
	// plain Go state and survive the simulated power cut — which is the
	// point: they are the *recording's* knowledge, not the media's.
	var mayVanish func(linearize.Op) bool
	if spec.Combine && se != nil {
		// One watermark per (worker, shard): ops were ticketed in their
		// routed shard's ticket space, so each compares against that
		// shard's drained watermark (recomputed from the op's key).
		drained := make([][]uint64, spec.Schedule.Workers)
		for w, wc := range wctxs {
			drained[w] = make([]uint64, nsh)
			if wc == nil {
				continue
			}
			for s := 0; s < nsh; s++ {
				_, drained[w][s] = engine.CombineTickets(wc.Sub(s))
			}
		}
		mayVanish = func(op linearize.Op) bool {
			return op.Thread < len(drained) &&
				op.Ticket > drained[op.Thread][pmem.ShardOf(op.Key, nsh)]
		}
	} else if spec.Combine {
		drained := make([]uint64, spec.Schedule.Workers)
		for w, wc := range wctxs {
			if wc != nil {
				_, drained[w] = engine.CombineTickets(wc)
			}
		}
		mayVanish = func(op linearize.Op) bool {
			return op.Thread < len(drained) && op.Ticket > drained[op.Thread]
		}
	}

	// Recovery must neither panic nor leave a broken structure behind.
	// Sharded engines recover shard-concurrent, one tracer per shard.
	if !guard(func() {
		if se != nil {
			trs := make([]engine.Tracer, nsh)
			for i := range trs {
				trs[i] = tgt.tracer(se.Sub(i))
			}
			se.RecoverShards(trs, engine.RecoverOptions{})
		} else {
			e.Recover(tgt.tracer(e))
		}
	}) {
		res.addf("recovery crashed (froze) — recovery must not touch the crash trigger")
		return res
	}
	c := e.NewCtx()
	if !guard(func() {
		if se != nil {
			set = structures.NewSharded(se, c, tgt.build)
		} else {
			set = tgt.build(e, c)
		}
	}) {
		res.addf("re-attach after recovery froze the device")
		return res
	}

	// Per-shard check surfaces: on an unsharded run these collapse to the
	// single engine and context, keeping violation strings unchanged.
	shardEngines := []engine.Engine{e}
	shardCtx := func(int) *engine.Ctx { return c }
	shardTag := func(int) string { return "" }
	if se != nil {
		shardEngines = shardEngines[:0]
		for i := 0; i < nsh; i++ {
			shardEngines = append(shardEngines, se.Sub(i))
		}
		shardCtx = func(i int) *engine.Ctx { return c.Sub(i) }
		shardTag = func(i int) string { return fmt.Sprintf(" shard %d", i) }
	}
	fsckAll := func(prefix string) {
		for i, sub := range shardEngines {
			if rep := tgt.fsck(sub, shardCtx(i)); !rep.Ok() {
				for _, p := range rep.Problems {
					res.addf("%sfsck%s: %s", prefix, shardTag(i), p)
				}
			}
		}
	}
	invariantsAll := func(prefix string) {
		for i, sub := range shardEngines {
			sub, sc := sub, shardCtx(i)
			tgt.tracer(sub)(
				func(ref engine.Ref, field int) uint64 { return sub.TraversalLoad(sc, ref, field) },
				func(ref engine.Ref, fields int) {
					if msg := engine.CheckMirrorInvariants(sub, ref, fields); msg != "" {
						res.addf("%sreplica invariant: %s", prefix, msg)
					}
				})
		}
	}

	// Structural fsck, then the Lemma 5.3–5.5 replica invariants on every
	// reachable object.
	fsckAll("")
	invariantsAll("")

	// Detectability: every verdict must agree with the recorded history,
	// and the crash-cut operation is resolved by its verdict *before* the
	// durable-linearizability check — a Committed verdict obliges the cut
	// op to take effect with the recorded result, a NotCommitted verdict
	// obliges it to vanish, and only Unknown leaves both fates open.
	if spec.Detect {
		ring := uint64(engine.DetectRingOf(e))
		for w, d := range dets {
			if d == nil {
				continue
			}
			// Detect is authoritative for every seq still inside the
			// client's ring window. Each completed op's verdict line was
			// fenced before its response was released, and the only entry a
			// crash-cut operation can be tearing mid-overwrite is a whole
			// lap below the window — so every acknowledged seq within the
			// last ring window must read Committed with its recorded result
			// verbatim. Seqs the ring has lapped delivered their responses
			// long ago and their superseded evidence may be gone; they are
			// not probed.
			lo := uint64(1)
			if d.seq > ring {
				lo = d.seq - ring + 1
			}
			for s := lo; s <= d.completed; s++ {
				v := e.Detect(w, s)
				if v.Verdict != engine.Committed {
					res.addf("detect: client %d acknowledged seq %d inside the ring window reads %v, want Committed", w, s, v.Verdict)
				} else if !v.KnownResult {
					res.addf("detect: client %d acknowledged seq %d lost its recorded result", w, s)
				} else if v.Result != d.results[s] {
					res.addf("detect: client %d seq %d result %v disagrees with the recorded %v", w, s, v.Result, d.results[s])
				}
			}
			if d.cut() {
				v := e.Detect(w, d.seq)
				switch v.Verdict {
				case engine.Committed:
					if !v.KnownResult {
						res.addf("detect: client %d cut seq %d reads Committed without a result (nothing supersedes it)", w, d.seq)
					} else if !hist.CompletePending(w, v.Result) {
						res.addf("detect: client %d cut seq %d is Committed but the history has no pending op", w, d.seq)
					}
				case engine.NotCommitted:
					if !hist.DropPending(w) {
						res.addf("detect: client %d cut seq %d is NotCommitted but the history has no pending op", w, d.seq)
					}
				default:
					// Unknown: keep the pending op; CheckDurable lets it
					// take effect or vanish, both of which remain possible.
				}
			}
		}
	}

	// Observed final state + torn-value check (every value equals its key).
	scan := func() map[uint64]bool {
		final := make(map[uint64]bool)
		for key := uint64(1); key <= uint64(spec.Schedule.Keys); key++ {
			if set.Contains(c, key) {
				final[key] = true
				if v, ok := set.Get(c, key); !ok || v != key {
					res.addf("torn value: key %d has value %d after recovery", key, v)
				}
			}
		}
		return final
	}
	final := scan()
	// Durable linearizability of the recorded history against that state
	// (buffered variant when combining: unfenced completed ops may vanish).
	if err := linearize.CheckDurableBuffered(hist, nil, final, mayVanish); err != nil {
		res.addf("%v (completed=%d pending=%d state=%v)", err, len(hist.Ops), len(hist.Pending), final)
	}

	// Exactly-once replay of each cut operation: ExactlyOnce re-executes it
	// iff its verdict says it did not commit (Unknown replays too — the set
	// operations are idempotent, so an at-least-once Unknown replay stays
	// linearizable). Each replayed call joins the history as a fresh
	// completed op and the whole cross-check repeats on the new state: a
	// duplicated or lost effect shows up as a non-linearizable history or a
	// broken structure.
	if spec.Detect {
		replayed := false
		for w, d := range dets {
			if d == nil || !d.cut() {
				continue
			}
			d := d
			op := engine.DetectOp{
				Client: w, Seq: d.seq,
				Kind: d.lastKind, Key: d.lastKey, Val: d.lastVal,
				DeferAnnounce: d.lastKind != engine.DetectDelete,
				Run: func(c *engine.Ctx) bool {
					switch d.lastKind {
					case engine.DetectInsert:
						return set.Insert(c, d.lastKey, d.lastVal)
					case engine.DetectDelete:
						return set.Delete(c, d.lastKey)
					default:
						return set.Contains(c, d.lastKey)
					}
				},
			}
			out := engine.ExactlyOnce(e, c, op, true)
			if out.Ran {
				replayed = true
				hist.AppendCompleted(opKind(d.lastKind), d.lastKey, out.Result, w)
			} else if out.Verdict != engine.Committed {
				res.addf("detect: exactly-once replay of client %d seq %d neither ran nor found it Committed (%v)", w, d.seq, out.Verdict)
			}
		}
		if replayed {
			fsckAll("post-replay ")
			invariantsAll("post-replay ")
			final = scan()
			if err := linearize.CheckDurableBuffered(hist, nil, final, mayVanish); err != nil {
				res.addf("post-replay %v (completed=%d pending=%d state=%v)", err, len(hist.Ops), len(hist.Pending), final)
			}
		}
	}
	// Operational probe.
	probe := uint64(spec.Schedule.Keys + 100)
	if !set.Insert(c, probe, 1) || !set.Contains(c, probe) || !set.Delete(c, probe) {
		res.addf("post-recovery operations failed on probe key %d", probe)
	}
	return res
}

const fnvPrime = 1099511628211

// Calibrate measures the device-op clock of a full (crash-free) run of the
// spec so a fuzzer can sample CrashAt uniformly from [1, OpsTotal].
func Calibrate(spec Spec) int64 {
	spec.Schedule.CrashAt = 0
	return Run(spec).OpsTotal
}

// Shrink greedily reduces a failing spec while it keeps failing: fewer
// workers first (a Workers=1 reproducer is exactly replayable), then fewer
// ops, fewer keys, and earlier crash points. It returns the minimal spec
// and its failing result; if the input spec does not fail, it is returned
// unchanged with its (passing) result.
func Shrink(spec Spec) (Spec, *Result) {
	spec.Schedule.setDefaults()
	best := Run(spec)
	if !best.Failed() {
		return spec, best
	}
	for changed := true; changed; {
		changed = false
		for _, cand := range reductions(spec) {
			if r := Run(cand); r.Failed() {
				spec, best = cand, r
				changed = true
				break
			}
		}
	}
	return spec, best
}

// reductions proposes strictly smaller candidate specs.
func reductions(s Spec) []Spec {
	var out []Spec
	add := func(mutate func(*Schedule)) {
		c := s
		mutate(&c.Schedule)
		out = append(out, c)
	}
	if s.Schedule.Workers > 1 {
		add(func(sc *Schedule) { sc.Workers = 1 })
	}
	if s.Schedule.OpsPer > 1 {
		add(func(sc *Schedule) { sc.OpsPer /= 2 })
		add(func(sc *Schedule) { sc.OpsPer-- })
	}
	if s.Schedule.Keys > 1 {
		add(func(sc *Schedule) { sc.Keys /= 2 })
		add(func(sc *Schedule) { sc.Keys-- })
	}
	if s.Schedule.CrashAt > 1 {
		add(func(sc *Schedule) { sc.CrashAt /= 2 })
		add(func(sc *Schedule) { sc.CrashAt-- })
	}
	return out
}
