package faultfuzz

import (
	"fmt"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
)

// TestShardedAllEnginesAllFaults runs the full fault mix against every
// durable engine and every structure on a 2-shard engine: per-shard
// independent fault models, a crash trigger armed on one shard while the
// others keep their own adversaries, and shard-concurrent recovery. The
// seeds are fixed so CI failures reproduce bit for bit.
func TestShardedAllEnginesAllFaults(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, structure := range Structures() {
		for _, kind := range durableKinds() {
			t.Run(fmt.Sprintf("%s/%s", structure, kind), func(t *testing.T) {
				t.Parallel()
				fuzzRounds(t, Spec{
					Structure: structure,
					Kind:      kind,
					Faults:    all,
					Shards:    2,
					Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
				}, []int64{11, 12, 13})
			})
		}
	}
}

// TestShardedWiderCounts spot-checks wider shard counts (3 and 4) on the
// Mirror engines: the hash partition is not a power-of-two-only design, and
// the trigger shard (CrashAt mod shards) must cycle through every shard.
func TestShardedWiderCounts(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, shards := range []int{3, 4} {
		for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM} {
			t.Run(fmt.Sprintf("hashtable/%s/shards%d", kind, shards), func(t *testing.T) {
				t.Parallel()
				fuzzRounds(t, Spec{
					Structure: "hashtable",
					Kind:      kind,
					Faults:    all,
					Shards:    shards,
					Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
				}, []int64{21, 22})
			})
		}
	}
}

// TestShardedDetectable runs the detectability cross-check on 2-shard
// Mirror engines: descriptor slots and operation effects split across
// shards (client c's slot on shard c mod 2, effects wherever the key
// hashes), and every post-crash verdict must still agree with the durable
// linearizability checker.
func TestShardedDetectable(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, kind := range durableKinds() {
		t.Run(fmt.Sprintf("hashtable/%s", kind), func(t *testing.T) {
			t.Parallel()
			fuzzRounds(t, Spec{
				Structure: "hashtable",
				Kind:      kind,
				Faults:    all,
				Detect:    true,
				Shards:    2,
				Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
			}, []int64{31, 32})
		})
	}
}

// TestShardedCombine runs fence combining on 2-shard Mirror engines: each
// shard owns its own per-thread combine buffers, so the drained-ticket
// watermark the checker consults is per (worker, shard).
func TestShardedCombine(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM} {
		t.Run(fmt.Sprintf("skiplist/%s", kind), func(t *testing.T) {
			t.Parallel()
			fuzzRounds(t, Spec{
				Structure: "skiplist",
				Kind:      kind,
				Faults:    all,
				Combine:   true,
				Shards:    2,
				Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
			}, []int64{41, 42})
		})
	}
}
