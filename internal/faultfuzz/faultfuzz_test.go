package faultfuzz

import (
	"fmt"
	"testing"

	"mirror/internal/crashtest"
	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/zuriel"
)

func durableKinds() []engine.Kind {
	return []engine.Kind{engine.Izraelevitz, engine.NVTraverse, engine.MirrorDRAM, engine.MirrorNVMM}
}

// fuzzRounds runs the spec at several seeded crash placements (calibrated
// against a dry run) and reports every failure to t.
func fuzzRounds(t *testing.T, spec Spec, seeds []int64) {
	t.Helper()
	fired := 0
	for _, seed := range seeds {
		spec.Seed = seed
		total := Calibrate(spec)
		if total <= 0 {
			t.Fatalf("%v: calibration returned %d device ops", spec, total)
		}
		for _, frac := range []int64{4, 2, 3} {
			spec.Schedule.CrashAt = 1 + (seed*2654435761+total/frac)%total
			if spec.Schedule.CrashAt < 1 {
				spec.Schedule.CrashAt = 1
			}
			res := Run(spec)
			for _, v := range res.Violations {
				t.Errorf("%v: %s", spec, v)
			}
			if t.Failed() {
				return
			}
			if res.CrashedAt != 0 {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Fatalf("%v: the crash trigger never fired mid-flight in %d rounds", spec, 3*len(seeds))
	}
}

// TestAllEnginesAllFaults exercises torn+evict+drop against every durable
// engine and every structure: the unmodified engines must survive any
// crash placement with verify + linearize clean.
func TestAllEnginesAllFaults(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, structure := range Structures() {
		for _, kind := range durableKinds() {
			structure, kind := structure, kind
			t.Run(fmt.Sprintf("%s/%s", structure, kind), func(t *testing.T) {
				t.Parallel()
				fuzzRounds(t, Spec{
					Structure: structure,
					Kind:      kind,
					Faults:    all,
					Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
				}, []int64{1, 2, 3})
			})
		}
	}
}

// TestDetectableAllEngines runs the detectability cross-check against every
// durable engine and every structure under the full fault mix: each
// post-crash Detect verdict must agree with durable linearizability, the
// crash-cut operation must be resolvable by its verdict, and the
// exactly-once replay must leave a linearizable history with no duplicated
// or lost effect.
func TestDetectableAllEngines(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, structure := range Structures() {
		for _, kind := range durableKinds() {
			structure, kind := structure, kind
			t.Run(fmt.Sprintf("%s/%s", structure, kind), func(t *testing.T) {
				t.Parallel()
				fuzzRounds(t, Spec{
					Structure: structure,
					Kind:      kind,
					Faults:    all,
					Detect:    true,
					Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
				}, []int64{5, 6, 7})
			})
		}
	}
}

// TestDetectDoesNotMaskBrokenMirror re-runs the broken-engine hunt with
// detectability enabled: a verdict that (truthfully) reads Committed for an
// operation whose install was dropped must make the cross-check fail, not
// absolve it — the history transformation obliges the op to take effect.
func TestDetectDoesNotMaskBrokenMirror(t *testing.T) {
	base := Spec{
		Structure: "list",
		Kind:      engine.MirrorDRAM,
		Faults:    pmem.FaultSpec{Torn: true, Drop: true},
		NewEngine: engine.NewBrokenMirror,
		Detect:    true,
		Schedule:  Schedule{Workers: 1, OpsPer: 10, Keys: 4},
	}
	attempts := 0
	for seed := int64(1); seed <= 30; seed++ {
		spec := base
		spec.Seed = seed
		total := Calibrate(spec)
		for _, frac := range []int64{2, 3, 4, 5} {
			spec.Schedule.CrashAt = 1 + total*(frac-1)/frac%total
			attempts++
			if res := Run(spec); res.Failed() {
				t.Logf("caught after %d attempts: %v\n  %s", attempts, spec, res.Violations[0])
				small, sres := Shrink(spec)
				if !sres.Failed() {
					t.Fatalf("shrink lost the failure: %v", small)
				}
				if !small.Detect {
					t.Fatalf("shrink dropped the detect flag: %v", small)
				}
				return
			}
		}
	}
	t.Fatalf("seeded durability bug not caught with detectability enabled in %d attempts", attempts)
}

// TestIndividualFaults exercises each fault behavior in isolation (plus
// concurrent workers) on one structure per behavior.
func TestIndividualFaults(t *testing.T) {
	cases := []struct {
		structure string
		faults    pmem.FaultSpec
	}{
		{"list", pmem.FaultSpec{Torn: true}},
		{"hashtable", pmem.FaultSpec{Evict: true}},
		{"skiplist", pmem.FaultSpec{Drop: true}},
		{"bst", pmem.FaultSpec{Torn: true, Drop: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/%s", tc.structure, tc.faults), func(t *testing.T) {
			t.Parallel()
			fuzzRounds(t, Spec{
				Structure: tc.structure,
				Kind:      engine.MirrorDRAM,
				Faults:    tc.faults,
				Schedule:  Schedule{Workers: 3, OpsPer: 8, Keys: 8},
			}, []int64{11, 12})
		})
	}
}

// TestBrokenMirrorCaught is the fuzzer's acceptance self-test: a Mirror
// engine whose write path skips the own-install flush+fence (test-only
// copy, engine.NewBrokenMirror) must be caught within a bounded budget,
// the failing spec must shrink, and replaying the printed (seed, schedule)
// reproducer must deterministically reproduce the same failing media image.
func TestBrokenMirrorCaught(t *testing.T) {
	base := Spec{
		Structure: "list",
		Kind:      engine.MirrorDRAM,
		Faults:    pmem.FaultSpec{Torn: true, Drop: true},
		NewEngine: engine.NewBrokenMirror,
		// Workers=1 keeps every attempt exactly replayable.
		Schedule: Schedule{Workers: 1, OpsPer: 10, Keys: 4},
	}
	var caught *Spec
	var firstFail *Result
	attempts := 0
hunt:
	for seed := int64(1); seed <= 30; seed++ {
		spec := base
		spec.Seed = seed
		total := Calibrate(spec)
		for _, frac := range []int64{2, 3, 4, 5} {
			spec.Schedule.CrashAt = 1 + total*(frac-1)/frac%total
			attempts++
			if res := Run(spec); res.Failed() {
				caught, firstFail = &spec, res
				break hunt
			}
		}
	}
	if caught == nil {
		t.Fatalf("seeded durability bug not caught in %d attempts", attempts)
	}
	t.Logf("caught after %d attempts: %v\n  %s", attempts, *caught, firstFail.Violations[0])

	// Shrink to a minimal reproducer; it must still fail.
	small, res := Shrink(*caught)
	if !res.Failed() {
		t.Fatalf("shrink lost the failure: %v", small)
	}
	t.Logf("shrunk reproducer: %v (%d violations)", small, len(res.Violations))

	// Replay determinism: same (seed, schedule) — same media image, still
	// failing. Two fresh replays must agree with each other bit for bit.
	r1 := Run(small)
	r2 := Run(small)
	if !r1.Failed() || !r2.Failed() {
		t.Fatalf("replay of shrunk reproducer did not fail (r1=%v r2=%v)", r1.Violations, r2.Violations)
	}
	if r1.MediaHash != r2.MediaHash {
		t.Fatalf("replays produced different media images: %#x vs %#x", r1.MediaHash, r2.MediaHash)
	}
	if r1.CrashedAt != r2.CrashedAt {
		t.Fatalf("replays crashed at different ops: %d vs %d", r1.CrashedAt, r2.CrashedAt)
	}
}

// TestBrokenWatermarkCaught is the acceptance self-test for the flush-
// elision layer: a Mirror engine whose persisted-epoch watermark is
// advanced by the fault model's early eviction (test-only,
// engine.NewBrokenWatermarkMirror) elides flush+fence pairs it has no
// right to elide — the install is visible and the operation completes,
// but the line is unfenced, so a crash whose fate is "drop" loses a
// completed operation. The fuzzer must catch this under evict+drop
// faults, the spec must shrink, and the reproducer must replay
// deterministically.
func TestBrokenWatermarkCaught(t *testing.T) {
	base := Spec{
		Structure: "list",
		Kind:      engine.MirrorDRAM,
		Faults:    pmem.FaultSpec{Evict: true, Drop: true},
		NewEngine: engine.NewBrokenWatermarkMirror,
		// Workers=1 keeps every attempt exactly replayable.
		Schedule: Schedule{Workers: 1, OpsPer: 10, Keys: 4},
	}
	var caught *Spec
	var firstFail *Result
	attempts := 0
hunt:
	for seed := int64(1); seed <= 30; seed++ {
		spec := base
		spec.Seed = seed
		total := Calibrate(spec)
		for _, frac := range []int64{2, 3, 4, 5} {
			spec.Schedule.CrashAt = 1 + total*(frac-1)/frac%total
			attempts++
			if res := Run(spec); res.Failed() {
				caught, firstFail = &spec, res
				break hunt
			}
		}
	}
	if caught == nil {
		t.Fatalf("seeded watermark bug not caught in %d attempts", attempts)
	}
	t.Logf("caught after %d attempts: %v\n  %s", attempts, *caught, firstFail.Violations[0])

	small, res := Shrink(*caught)
	if !res.Failed() {
		t.Fatalf("shrink lost the failure: %v", small)
	}
	t.Logf("shrunk reproducer: %v (%d violations)", small, len(res.Violations))

	r1 := Run(small)
	r2 := Run(small)
	if !r1.Failed() || !r2.Failed() {
		t.Fatalf("replay of shrunk reproducer did not fail (r1=%v r2=%v)", r1.Violations, r2.Violations)
	}
	if r1.MediaHash != r2.MediaHash {
		t.Fatalf("replays produced different media images: %#x vs %#x", r1.MediaHash, r2.MediaHash)
	}
	if r1.CrashedAt != r2.CrashedAt {
		t.Fatalf("replays crashed at different ops: %d vs %d", r1.CrashedAt, r2.CrashedAt)
	}
}

// TestUnbrokenMirrorNotCaught is the control for the self-test: the same
// hunt against the correct engine must come up empty.
func TestUnbrokenMirrorNotCaught(t *testing.T) {
	spec := Spec{
		Structure: "list",
		Kind:      engine.MirrorDRAM,
		Faults:    pmem.FaultSpec{Torn: true, Drop: true},
		Schedule:  Schedule{Workers: 1, OpsPer: 10, Keys: 4},
	}
	for seed := int64(1); seed <= 10; seed++ {
		spec.Seed = seed
		total := Calibrate(spec)
		for _, frac := range []int64{2, 3, 4} {
			spec.Schedule.CrashAt = 1 + total*(frac-1)/frac%total
			if res := Run(spec); res.Failed() {
				t.Fatalf("correct engine flagged: %v: %v", spec, res.Violations)
			}
		}
	}
}

// TestCombineAllEnginesAllFaults is the combining sweep: every durable
// engine and structure under the full fault mix with Config.Combine set.
// Mirror engines defer linearizing fences into per-thread combine
// buffers, so the run checks *buffered* durable linearizability (unfenced
// completed ops may vanish, fenced ones must not); the direct engines
// accept and ignore the flag, pinning that it cannot hurt them.
func TestCombineAllEnginesAllFaults(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, structure := range Structures() {
		for _, kind := range durableKinds() {
			structure, kind := structure, kind
			t.Run(fmt.Sprintf("%s/%s", structure, kind), func(t *testing.T) {
				t.Parallel()
				fuzzRounds(t, Spec{
					Structure: structure,
					Kind:      kind,
					Faults:    all,
					Combine:   true,
					Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
				}, []int64{21, 22, 23})
			})
		}
	}
}

// TestCombineDetectMirror crosses combining with detectability on the
// Mirror engines: every operation's verdict publish forces a pre-verdict
// combine drain, so verdicts must keep agreeing with (buffered) durable
// linearizability and the exactly-once replay must stay clean.
func TestCombineDetectMirror(t *testing.T) {
	all := pmem.FaultSpec{Torn: true, Evict: true, Drop: true}
	for _, structure := range []string{"list", "bst"} {
		for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM} {
			structure, kind := structure, kind
			t.Run(fmt.Sprintf("%s/%s", structure, kind), func(t *testing.T) {
				t.Parallel()
				fuzzRounds(t, Spec{
					Structure: structure,
					Kind:      kind,
					Faults:    all,
					Combine:   true,
					Detect:    true,
					Schedule:  Schedule{Workers: 2, OpsPer: 8, Keys: 6},
				}, []int64{31, 32})
			})
		}
	}
}

// TestBrokenCombineCaught is the combining acceptance self-test: a Mirror
// engine whose combine drain silently skips the first buffered line while
// still advancing the drained watermark (engine.NewBrokenCombineMirror)
// records operations as durably committed (ticket <= drained) whose
// installs never reached a fence. The buffered checker must NOT excuse
// them — a drop-fate crash that loses such a line loses a completed,
// supposedly-fenced operation — and the fuzzer must catch it within a
// bounded budget, shrink the spec without losing the Combine flag, and
// replay the reproducer deterministically.
func TestBrokenCombineCaught(t *testing.T) {
	base := Spec{
		Structure: "list",
		Kind:      engine.MirrorDRAM,
		Faults:    pmem.FaultSpec{Torn: true, Drop: true},
		NewEngine: engine.NewBrokenCombineMirror,
		Combine:   true,
		// Workers=1 keeps every attempt exactly replayable.
		Schedule: Schedule{Workers: 1, OpsPer: 10, Keys: 4},
	}
	var caught *Spec
	var firstFail *Result
	attempts := 0
hunt:
	for seed := int64(1); seed <= 30; seed++ {
		spec := base
		spec.Seed = seed
		total := Calibrate(spec)
		for _, frac := range []int64{2, 3, 4, 5} {
			spec.Schedule.CrashAt = 1 + total*(frac-1)/frac%total
			attempts++
			if res := Run(spec); res.Failed() {
				caught, firstFail = &spec, res
				break hunt
			}
		}
	}
	if caught == nil {
		t.Fatalf("seeded combine-drain bug not caught in %d attempts", attempts)
	}
	t.Logf("caught after %d attempts: %v\n  %s", attempts, *caught, firstFail.Violations[0])

	small, res := Shrink(*caught)
	if !res.Failed() {
		t.Fatalf("shrink lost the failure: %v", small)
	}
	if !small.Combine {
		t.Fatalf("shrink dropped the combine flag: %v", small)
	}
	t.Logf("shrunk reproducer: %v (%d violations)", small, len(res.Violations))

	r1 := Run(small)
	r2 := Run(small)
	if !r1.Failed() || !r2.Failed() {
		t.Fatalf("replay of shrunk reproducer did not fail (r1=%v r2=%v)", r1.Violations, r2.Violations)
	}
	if r1.MediaHash != r2.MediaHash {
		t.Fatalf("replays produced different media images: %#x vs %#x", r1.MediaHash, r2.MediaHash)
	}
	if r1.CrashedAt != r2.CrashedAt {
		t.Fatalf("replays crashed at different ops: %d vs %d", r1.CrashedAt, r2.CrashedAt)
	}
}

// TestUnbrokenCombineNotCaught is the control: the same hunt against the
// correct combining engine must come up empty — buffered ops that vanish
// are excused by their tickets, fenced ops survive their drains.
func TestUnbrokenCombineNotCaught(t *testing.T) {
	spec := Spec{
		Structure: "list",
		Kind:      engine.MirrorDRAM,
		Faults:    pmem.FaultSpec{Torn: true, Drop: true},
		Combine:   true,
		Schedule:  Schedule{Workers: 1, OpsPer: 10, Keys: 4},
	}
	for seed := int64(1); seed <= 10; seed++ {
		spec.Seed = seed
		total := Calibrate(spec)
		for _, frac := range []int64{2, 3, 4} {
			spec.Schedule.CrashAt = 1 + total*(frac-1)/frac%total
			if res := Run(spec); res.Failed() {
				t.Fatalf("correct combining engine flagged: %v: %v", spec, res.Violations)
			}
		}
	}
}

// TestScheduleRoundTrip pins the reproducer codec.
func TestScheduleRoundTrip(t *testing.T) {
	s := Schedule{Workers: 3, OpsPer: 12, Keys: 7, CrashAt: 4211}
	got, err := ParseSchedule(s.String())
	if err != nil || got != s {
		t.Fatalf("round trip %v -> %v, %v", s, got, err)
	}
	if _, err := ParseSchedule("bogus"); err == nil {
		t.Fatal("bogus schedule accepted")
	}
}

// TestZurielUnderFaults puts the hand-made durable sets under the fault
// adversary via the custom crash harness: torn and dropped lines must be
// absorbed by the checksum validity scheme.
func TestZurielUnderFaults(t *testing.T) {
	mks := map[string]func() zuriel.Set{
		"LinkFree": func() zuriel.Set { return zuriel.NewLinkFree(zuriel.Config{Words: 1 << 21, Buckets: 16, Track: true}) },
		"SOFT":     func() zuriel.Set { return zuriel.NewSoft(zuriel.Config{Words: 1 << 21, Buckets: 16, Track: true}) },
	}
	for name, mk := range mks {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				s := mk()
				fm := pmem.NewFaultModel(seed, pmem.FaultSpec{Torn: true, Evict: true, Drop: true})
				s.InjectFaults(fm)
				// A modest trigger lands the crash mid-workload; the
				// FreezeLag path would race it, so trigger directly.
				fm.CrashAfter(2000 + seed*517)
				target := crashtest.CustomTarget{
					NewWorker: func() (func(k, v uint64) bool, func(k uint64) bool, func(k uint64) bool) {
						c := s.NewCtx()
						return func(k, v uint64) bool { return s.Insert(c, k, v) },
							func(k uint64) bool { return s.Delete(c, k) },
							func(k uint64) bool { return s.Contains(c, k) }
					},
					Freeze:  s.Freeze,
					Crash:   s.Crash,
					Recover: s.Recover,
				}
				for _, v := range crashtest.RunCustom(target, crashtest.Config{
					Policy: pmem.CrashDropAll, Seed: seed * 13, Workers: 3, KeysPer: 16,
				}) {
					t.Errorf("seed %d key=%d: %s (got present=%v, want %s)", seed, v.Key, v.Context, v.Got, v.Want)
				}
			}
		})
	}
}
