package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/hashtable"
	"mirror/internal/zuriel"
)

// RecoveryRow is one engine's recovery measurement.
type RecoveryRow struct {
	Engine  string
	Keys    int
	Elapsed time.Duration
}

// RecoveryReport quantifies the §4.3 trade-off: Mirror and the direct
// transformations recover by tracing the reachable objects (and, for
// Mirror, copying them to the volatile replica), while the hand-made sets
// pay a full heap scan plus a rebuild. Run-time overhead buys recovery
// speed and vice versa.
type RecoveryReport struct {
	Rows []RecoveryRow
}

// Format renders the report.
func (r *RecoveryReport) Format() string {
	var b strings.Builder
	b.WriteString("recovery time by engine and structure size (hash table)\n")
	fmt.Fprintf(&b, "%-14s%10s%14s%16s\n", "engine", "keys", "recovery", "keys/ms")
	for _, row := range r.Rows {
		rate := float64(row.Keys) / (float64(row.Elapsed.Microseconds()) / 1000)
		fmt.Fprintf(&b, "%-14s%10d%14s%16.0f\n",
			row.Engine, row.Keys, row.Elapsed.Round(10*time.Microsecond), rate)
	}
	return b.String()
}

// MeasureRecovery crashes and recovers a hash table of each size under
// each durable engine plus the Link-Free baseline, timing recovery.
func MeasureRecovery(sizes []int) *RecoveryReport {
	rep := &RecoveryReport{}
	rng := rand.New(rand.NewSource(42))
	for _, keys := range sizes {
		for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse} {
			e := engine.New(engine.Config{
				Kind:  kind,
				Words: deviceWords(StHash, kind, keys*2),
				Track: true,
			})
			c := e.NewCtx()
			h := hashtable.New(e, c, bucketsFor(keys))
			for k := 1; k <= keys; k++ {
				h.Insert(c, uint64(k), uint64(k))
			}
			e.Crash(pmem.CrashDropAll, rng)
			start := time.Now()
			e.Recover(hashtable.TracerAt(e, 0))
			rep.Rows = append(rep.Rows, RecoveryRow{
				Engine: kind.String(), Keys: keys, Elapsed: time.Since(start),
			})
		}
		// Link-Free: scan-based recovery.
		lf := zuriel.NewLinkFree(zuriel.Config{
			Words: keys*4*4 + bucketsFor(keys) + 1<<20, Buckets: bucketsFor(keys), Track: true,
		})
		lc := lf.NewCtx()
		for k := 1; k <= keys; k++ {
			lf.Insert(lc, uint64(k), uint64(k))
		}
		lf.Crash(pmem.CrashDropAll, rng)
		start := time.Now()
		lf.Recover()
		rep.Rows = append(rep.Rows, RecoveryRow{
			Engine: "LinkFree", Keys: keys, Elapsed: time.Since(start),
		})
	}
	return rep
}
