package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/hashtable"
	"mirror/internal/zuriel"
)

// RecoveryRow is one recovery measurement: one engine recovering one
// structure size at one pipeline parallelism.
type RecoveryRow struct {
	Engine      string
	Keys        int
	Parallelism int
	Elapsed     time.Duration
}

// KeysPerMS is the row's recovery throughput.
func (r RecoveryRow) KeysPerMS() float64 {
	us := float64(r.Elapsed.Microseconds())
	if us <= 0 {
		us = 1
	}
	return float64(r.Keys) / (us / 1000)
}

// RecoveryReport quantifies the §4.3 trade-off: Mirror and the direct
// transformations recover by tracing the reachable objects (and, for
// Mirror, copying them to the volatile replica), while the hand-made sets
// pay a full heap scan plus a rebuild. Run-time overhead buys recovery
// speed and vice versa. The parallelism axis sweeps the recovery pipeline's
// worker count (wall-clock gains need free cores; on a single-CPU host the
// sweep measures the pipeline's overhead instead).
type RecoveryReport struct {
	Rows []RecoveryRow
}

// Format renders the report.
func (r *RecoveryReport) Format() string {
	var b strings.Builder
	b.WriteString("recovery time by engine, structure size, and parallelism (hash table)\n")
	fmt.Fprintf(&b, "%-14s%10s%6s%14s%16s\n", "engine", "keys", "par", "recovery", "keys/ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s%10d%6d%14s%16.0f\n",
			row.Engine, row.Keys, row.Parallelism,
			row.Elapsed.Round(10*time.Microsecond), row.KeysPerMS())
	}
	return b.String()
}

// recoveryEngines is the engine axis of the recovery benchmark: the four
// durable engines, then the Link-Free scan-based baseline as a named row.
var recoveryKinds = []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM, engine.Izraelevitz, engine.NVTraverse}

// MeasureRecovery builds a hash table of each size under each durable
// engine plus the Link-Free baseline, then crashes it and times recovery at
// each pipeline parallelism. Recovery writes only volatile state, so the
// persistent image is identical across the parallelism sweep: each level
// re-crashes and recovers the very same image, making the timings directly
// comparable.
func MeasureRecovery(sizes, pars []int) *RecoveryReport {
	if len(pars) == 0 {
		pars = []int{1}
	}
	rep := &RecoveryReport{}
	rng := rand.New(rand.NewSource(42))
	for _, keys := range sizes {
		for _, kind := range recoveryKinds {
			e := engine.New(engine.Config{
				Kind:  kind,
				Words: deviceWords(StHash, kind, keys*2),
				Track: true,
			})
			c := e.NewCtx()
			h := hashtable.New(e, c, bucketsFor(keys))
			for k := 1; k <= keys; k++ {
				h.Insert(c, uint64(k), uint64(k))
			}
			for _, par := range pars {
				e.Crash(pmem.CrashDropAll, rng)
				start := time.Now()
				e.RecoverWith(hashtable.TracerAt(e, 0), engine.RecoverOptions{
					Parallelism: par,
					Sharded:     hashtable.ShardedTracerAt(e, 0),
				})
				rep.Rows = append(rep.Rows, RecoveryRow{
					Engine: kind.String(), Keys: keys, Parallelism: par,
					Elapsed: time.Since(start),
				})
			}
		}
		// Link-Free: scan-based recovery. Its recovery replays inserts into
		// a fresh heap, so each parallelism level gets a freshly built set.
		for _, par := range pars {
			lf := zuriel.NewLinkFree(zuriel.Config{
				Words: keys*4*4 + bucketsFor(keys) + 1<<20, Buckets: bucketsFor(keys), Track: true,
			})
			lc := lf.NewCtx()
			for k := 1; k <= keys; k++ {
				lf.Insert(lc, uint64(k), uint64(k))
			}
			lf.Crash(pmem.CrashDropAll, rng)
			start := time.Now()
			lf.RecoverParallel(par)
			rep.Rows = append(rep.Rows, RecoveryRow{
				Engine: "LinkFree", Keys: keys, Parallelism: par,
				Elapsed: time.Since(start),
			})
		}
	}
	return rep
}
