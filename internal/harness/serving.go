package harness

// This file measures the serving tier end to end: YCSB mixes driven through
// mirrord's wire protocol by concurrent synchronous clients, with every
// round trip recorded in an HDR-style histogram so the report carries real
// tail percentiles (p50/p99/p999) instead of throughput alone. The same
// driver backs cmd/mirrorload (against an external mirrord address) and the
// BENCH_6-style serving panels (against an in-process server, where the
// engine's fence counters are in reach for the batching ablation).
//
// Serving sessions run the engines at native substrate speed (no DRAM/NVMM
// latency model): a wire round trip costs tens of microseconds, two orders
// above the modeled media latencies, so the model would vanish in the noise
// while making every session slower. What the serving panels isolate is the
// protocol cost — fences per mutation with and without cross-client
// batching — and the client-visible latency distribution.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mirror/internal/engine"
	"mirror/internal/server"
	"mirror/internal/wire"
	"mirror/internal/workload"
)

// Serving-panel defaults. The key range is deliberately small (the serving
// bottleneck is the wire and the fence discipline, not structure depth),
// and the group-commit window is set above a loopback round trip so
// concurrently in-flight clients actually land in one batch.
const (
	ServingKeyRange  = 4096
	ServingBatchWait = 100 * time.Microsecond
)

// ServingSpec describes one client-side load session against a serving
// address (in-process or remote).
type ServingSpec struct {
	Addr     string
	Workload byte   // YCSB letter 'A'..'F'
	Conns    int    // concurrent clients, one connection each
	BaseID   uint32 // first client id; the session uses [BaseID, BaseID+Conns)
	KeyRange uint64
	Duration time.Duration
	Seed     int64
	// Pipeline requests that many frames in flight per client (HELLO
	// handshake; the server clamps to its descriptor-ring depth). 0 and 1
	// mean synchronous round trips.
	Pipeline int
}

// ServingLoad is the client-side outcome of a load session.
type ServingLoad struct {
	Ops     uint64
	Elapsed time.Duration
	// Hist holds every operation's wire round-trip time in nanoseconds.
	Hist Hist
}

// Kops returns throughput in thousand operations per second — the honest
// unit for a wire-protocol tier, where each operation pays a round trip.
func (l ServingLoad) Kops() float64 {
	if l.Elapsed <= 0 {
		return 0
	}
	return float64(l.Ops) / l.Elapsed.Seconds() / 1e3
}

// wireWorker adapts one wire client to the workload driver, timing every
// operation. Scans and read-modify-writes ride their native opcodes:
// Scan(from, to) pages SCAN frames across the span (each frame bounded by
// wire.MaxScanKeys), RMW reads the current value and compare-and-sets it
// with one RMW frame.
//
// With pipe set (ServingSpec.Pipeline > 1), point reads and mutations are
// submitted asynchronously up to the granted window; each frame's latency
// is recorded when its response completes, submit-to-response. Scans and
// RMWs stay synchronous (they need their answers), draining the pipe
// first so the recorded latencies stay frame-accurate.
type wireWorker struct {
	cl   *server.Client
	h    *Hist
	pipe bool
	// t0s holds the submit times of the client's in-flight frames,
	// oldest first — index-aligned with cl.InFlight().
	t0s []time.Time
}

func (w *wireWorker) Insert(key, val uint64) bool {
	if w.pipe {
		w.submit(wire.OpInsert, key, val, 0)
		return true
	}
	t0 := time.Now()
	ok, err := w.cl.Insert(key, val)
	w.record(t0, err)
	return ok
}

func (w *wireWorker) Delete(key uint64) bool {
	if w.pipe {
		w.submit(wire.OpDelete, key, 0, 0)
		return true
	}
	t0 := time.Now()
	ok, err := w.cl.Delete(key)
	w.record(t0, err)
	return ok
}

func (w *wireWorker) Contains(key uint64) bool {
	if w.pipe {
		w.submit(wire.OpGet, key, 0, 0)
		return true
	}
	t0 := time.Now()
	_, ok, err := w.cl.Get(key)
	w.record(t0, err)
	return ok
}

// Scan implements workload.Scanner over native SCAN frames, paging
// through [from, to] wire.MaxScanKeys keys at a time.
func (w *wireWorker) Scan(from, to uint64) int {
	w.drainPipe()
	t0 := time.Now()
	n := 0
	for start := from; start <= to; {
		limit := to - start + 1
		if limit > wire.MaxScanKeys {
			limit = wire.MaxScanKeys
		}
		pairs, err := w.cl.Scan(start, int(limit))
		if err != nil {
			w.record(t0, err)
		}
		for _, kv := range pairs {
			if kv.Key <= to {
				n++
			}
		}
		if uint64(len(pairs)) < limit {
			break
		}
		last := pairs[len(pairs)-1].Key
		if last >= to || last < start {
			break
		}
		start = last + 1
	}
	w.record(t0, nil)
	return n
}

// RMW implements workload.RMWer: read the current value, then a native
// compare-and-set RMW frame. A miss (absent key or a concurrent change
// between the read and the CAS) is a failed RMW, as YCSB counts it.
func (w *wireWorker) RMW(key, val uint64) bool {
	w.drainPipe()
	t0 := time.Now()
	cur, ok, err := w.cl.Get(key)
	if err != nil {
		w.record(t0, err)
	}
	if !ok {
		w.record(t0, nil)
		return false
	}
	done, err := w.cl.RMW(key, cur, val)
	w.record(t0, err)
	return done
}

// submit pipelines one frame and records the latency of every frame whose
// response completed while making room in the window.
func (w *wireWorker) submit(op wire.Op, key, val, arg uint64) {
	t0 := time.Now()
	done, err := w.cl.Submit(op, key, val, arg)
	if err != nil {
		panic(fmt.Sprintf("serving load: client %d: %v", w.cl.ID(), err))
	}
	now := time.Now()
	for range done {
		w.h.Record(uint64(now.Sub(w.t0s[0])))
		w.t0s = w.t0s[1:]
	}
	w.t0s = append(w.t0s, t0)
}

// drainPipe completes every in-flight frame before a synchronous
// exchange, keeping the latency bookkeeping aligned with the client FIFO.
func (w *wireWorker) drainPipe() {
	if !w.pipe || len(w.t0s) == 0 {
		return
	}
	done, err := w.cl.Drain()
	if err != nil {
		panic(fmt.Sprintf("serving load: client %d: %v", w.cl.ID(), err))
	}
	now := time.Now()
	for range done {
		w.h.Record(uint64(now.Sub(w.t0s[0])))
		w.t0s = w.t0s[1:]
	}
}

func (w *wireWorker) record(t0 time.Time, err error) {
	if err != nil {
		panic(fmt.Sprintf("serving load: client %d: %v", w.cl.ID(), err))
	}
	w.h.Record(uint64(time.Since(t0)))
}

// ServingPrefill loads the deterministic half-range prefill through the
// wire as the given client id, so a measured session starts from the same
// steady state as the in-memory benchmarks.
func ServingPrefill(addr string, id uint32, keyRange uint64, seed int64) (int, error) {
	cl, err := server.Dial(addr, id)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	n := workload.PrefillHalf(workload.Target{
		Name:      "wire-prefill",
		NewWorker: func() workload.Worker { return &wireWorker{cl: cl, h: &Hist{}} },
	}, keyRange, seed)
	return n, nil
}

// RunServingLoad drives one YCSB workload through the wire protocol with
// Conns concurrent synchronous clients and returns the merged latency
// histogram. Each client gets its own connection and client id; a client
// that loses the server mid-run panics (the load driver has no story for a
// vanishing peer — crash resolution is the server test battery's job).
func RunServingLoad(spec ServingSpec) (ServingLoad, error) {
	mix, dist, ok := workload.YCSBMix(spec.Workload)
	if !ok {
		return ServingLoad{}, fmt.Errorf("serving: unknown YCSB workload %q (want A..F)", spec.Workload)
	}
	if spec.Conns <= 0 {
		return ServingLoad{}, fmt.Errorf("serving: need at least one connection")
	}
	var (
		mu      sync.Mutex
		hists   []*Hist
		clients []*server.Client
		nextID  atomic.Uint32
	)
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	target := workload.Target{
		Name: fmt.Sprintf("wire-ycsb-%c", spec.Workload),
		NewWorker: func() workload.Worker {
			id := spec.BaseID + nextID.Add(1) - 1
			cl, err := server.Dial(spec.Addr, id)
			if err != nil {
				panic(fmt.Sprintf("serving load: dial as client %d: %v", id, err))
			}
			pipe := false
			if spec.Pipeline > 1 {
				granted, err := cl.SetPipeline(spec.Pipeline)
				if err != nil {
					panic(fmt.Sprintf("serving load: client %d handshake: %v", id, err))
				}
				pipe = granted > 1
			}
			h := &Hist{}
			mu.Lock()
			hists = append(hists, h)
			clients = append(clients, cl)
			mu.Unlock()
			return &wireWorker{cl: cl, h: h, pipe: pipe}
		},
	}
	res := workload.Run(target, workload.Spec{
		KeyRange: spec.KeyRange,
		Mix:      mix,
		Threads:  spec.Conns,
		Duration: spec.Duration,
		Seed:     spec.Seed,
		Dist:     dist,
	})
	load := ServingLoad{Ops: res.Ops, Elapsed: res.Elapsed}
	for _, h := range hists {
		load.Hist.Merge(h)
	}
	return load, nil
}

// ServingConfig parameterizes the serving ablation panels.
type ServingConfig struct {
	// Conns is the connection sweep; each count is measured separately.
	Conns []int
	// Pipelines is the per-client pipeline-depth sweep (default {1}).
	Pipelines []int
	// Workloads are YCSB letters ('A'..'F'); default {'A'}.
	Workloads []byte
	// Kinds are the engines to serve; default all durable kinds.
	Kinds []engine.Kind
	// KeyRange overrides ServingKeyRange.
	KeyRange uint64
	// Workers overrides the server's batcher count (default 2).
	Workers int
	// BatchWait overrides ServingBatchWait for the batched sessions.
	BatchWait time.Duration
}

func (sc *ServingConfig) setDefaults() {
	if len(sc.Conns) == 0 {
		sc.Conns = []int{1, 4}
	}
	if len(sc.Pipelines) == 0 {
		sc.Pipelines = []int{1}
	}
	if len(sc.Workloads) == 0 {
		sc.Workloads = []byte{'A'}
	}
	if len(sc.Kinds) == 0 {
		for _, k := range engine.Kinds() {
			if k.Durable() {
				sc.Kinds = append(sc.Kinds, k)
			}
		}
	}
	if sc.KeyRange == 0 {
		sc.KeyRange = ServingKeyRange
	}
	if sc.Workers <= 0 {
		sc.Workers = 2
	}
	if sc.BatchWait == 0 {
		sc.BatchWait = ServingBatchWait
	}
}

// RunServingSession builds an in-process server, prefills it through the
// wire, drives one YCSB load session, and returns the measured point with
// the server's counter deltas attached. batch toggles cross-client fence
// batching (false runs the per-mutation-fence ablation baseline).
func RunServingSession(o Options, sc ServingConfig, kind engine.Kind, letter byte, conns, pipeline int, batch bool) (ServingPoint, error) {
	sc.setDefaults()
	o.setDefaults()
	if pipeline < 1 {
		pipeline = 1
	}
	s, err := server.New(server.Config{
		Kind:      kind,
		Clients:   conns + 2,
		Workers:   sc.Workers,
		NoBatch:   !batch,
		BatchWait: sc.BatchWait,
	})
	if err != nil {
		return ServingPoint{}, err
	}
	defer s.Close()
	if err := s.Listen("127.0.0.1:0"); err != nil {
		return ServingPoint{}, err
	}
	if _, err := ServingPrefill(s.Addr().String(), 0, sc.KeyRange, o.Seed); err != nil {
		return ServingPoint{}, err
	}
	st0 := s.Stats()
	load, err := RunServingLoad(ServingSpec{
		Addr:     s.Addr().String(),
		Workload: letter,
		Conns:    conns,
		BaseID:   1,
		KeyRange: sc.KeyRange,
		Duration: o.Duration,
		Seed:     o.Seed,
		Pipeline: pipeline,
	})
	if err != nil {
		return ServingPoint{}, err
	}
	st1 := s.Stats()
	p := ServingPoint{
		Engine:    kind.String(),
		Workload:  fmt.Sprintf("YCSB-%c", letter&^0x20),
		Conns:     conns,
		Pipeline:  pipeline,
		Batch:     batch,
		KeyRange:  int(sc.KeyRange),
		Ops:       load.Ops,
		Kops:      load.Kops(),
		P50NS:     load.Hist.Percentile(50),
		P99NS:     load.Hist.Percentile(99),
		P999NS:    load.Hist.Percentile(99.9),
		MaxNS:     load.Hist.Max(),
		Mutations: st1.Mutations - st0.Mutations,
		Scans:     st1.Scans - st0.Scans,
		Batches:   st1.Batches - st0.Batches,
		Flushes:   st1.Flushes - st0.Flushes,
		Fences:    st1.Fences - st0.Fences,
	}
	if batch {
		p.BatchWaitNS = sc.BatchWait.Nanoseconds()
	}
	if p.Mutations > 0 {
		p.FencesPerMutation = float64(p.Fences) / float64(p.Mutations)
	}
	return p, nil
}

// AppendServingAblation appends the serving-tier panels to a report: each
// requested engine × YCSB workload × connection count, measured twice in
// the same process — cross-client batching on, then off (one fence per
// mutation) — so the committed fences-per-mutation pair is the direct
// group-commit ablation. Latency percentiles come from per-operation
// histograms over every wire round trip, not a subsample.
func AppendServingAblation(r *BenchReport, o Options, sc ServingConfig) error {
	sc.setDefaults()
	o.setDefaults()
	r.Options.ServingConns = sc.Conns
	r.Options.ServingWorkloads = string(sc.Workloads)
	r.Options.ServingPipelines = sc.Pipelines
	r.Options.ServingBatchWaitNS = sc.BatchWait.Nanoseconds()
	for _, kind := range sc.Kinds {
		for _, letter := range sc.Workloads {
			for _, conns := range sc.Conns {
				for _, pipeline := range sc.Pipelines {
					for _, batch := range []bool{true, false} {
						p, err := RunServingSession(o, sc, kind, letter, conns, pipeline, batch)
						if err != nil {
							return err
						}
						r.Serving = append(r.Serving, p)
					}
				}
			}
		}
	}
	return nil
}
