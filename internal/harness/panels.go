package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"mirror/internal/engine"
	"mirror/internal/workload"
)

// Options control a panel run.
type Options struct {
	// Duration per measured point (default 200ms; the paper uses 5s —
	// raise it for publication-quality numbers).
	Duration time.Duration
	// Scale divides the paper's 8M/32M structure sizes so the simulated
	// devices fit in host memory (default 32, keeping the structures far
	// larger than any cache).
	Scale int
	// Threads is the thread sweep (default 1,2,4,8,16 as in the paper).
	Threads []int
	// Latency applies the DRAM/NVMM latency models (default on; turning
	// it off measures raw simulator speed, not the platform shape).
	Latency bool
	// Seed for the workload PRNGs.
	Seed int64
	// NoElide disables the flush-elision / fence-coalescing layer on the
	// durable engines — the ablation baseline for EXPERIMENTS.md.
	NoElide bool
	// Detect routes every benchmark operation through a detectable-operation
	// bracket (engine.ExactlyOnce), measuring the descriptor overhead — the
	// ablation switch for the detectability layer. Off by default, so the
	// standard matrix is unchanged.
	Detect bool
	// Combine enables cross-operation fence combining on the Mirror engines
	// (per-thread write buffers draining one fence for a batch of linearized
	// installs). The non-durable and competitor engines ignore it. Off by
	// default; the JSON matrix measures it through dedicated same-session
	// ablation panels so the standard matrix stays comparable across reports.
	Combine bool
	// Shards > 1 spreads every engine-backed structure across that many
	// device shards (engine.Sharded): hash-partitioned keyspace, one
	// allocator and descriptor region per shard, shard-concurrent recovery.
	// The competitor engines (Zuriel, Cmap, queue) ignore it. Zero or one
	// runs the classic single-device engines.
	Shards int
	// NUMARemoteNS charges an extra spin-calibrated latency penalty (in
	// nanoseconds) on every operation routed off its context's home shard —
	// the NUMA preset for sharded runs. Ignored unless Shards > 1.
	NUMARemoteNS int
	// Dist selects the workload key distribution (workload.DistUniform /
	// DistZipfian / DistHotspot; "" means uniform) and Skew its parameter.
	Dist string
	Skew float64
}

func (o *Options) setDefaults() {
	if o.Duration == 0 {
		o.Duration = 200 * time.Millisecond
	}
	if o.Scale == 0 {
		o.Scale = 32
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8, 16}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// DefaultOptions returns the defaults with latency modeling on.
func DefaultOptions() Options {
	o := Options{Latency: true}
	o.setDefaults()
	return o
}

// Sweep axes.
const (
	SweepThreads = "threads"
	SweepSize    = "size"
	SweepUpdates = "updates"
)

// Panel is one figure panel of the paper's evaluation.
type Panel struct {
	ID        string // e.g. "fig6a"
	Title     string // the paper's caption fragment
	Structure string
	Sweep     string

	Mix        workload.Mix // for threads/size sweeps
	Sizes      []int        // key ranges (paper units) for size sweeps
	Scaled     bool         // divide sizes by Options.Scale
	FixedSize  int          // key range (paper units) for non-size sweeps
	UpdatePcts []int        // for update sweeps

	Competitors []Competitor
}

// Table is a panel's measured output.
type Table struct {
	PanelID string
	Title   string
	XLabel  string
	Columns []string
	Rows    []TableRow
}

// TableRow is one sweep point.
type TableRow struct {
	X     int
	Cells []float64 // Mops/s per competitor
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (Mops/s)\n", t.PanelID, t.Title)
	fmt.Fprintf(&b, "%-10s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10d", r.X)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, "%12.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell returns the throughput for a column label at a given X (tests).
func (t *Table) Cell(x int, label string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == label {
			col = i
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.X == x {
			return r.Cells[col], true
		}
	}
	return 0, false
}

func (p Panel) scaledSize(o Options, paperSize int) int {
	s := paperSize
	if p.Scaled {
		s = paperSize / o.Scale
	}
	if s < 64 {
		s = 64
	}
	return s
}

// Run measures the panel and returns its table.
func (p Panel) Run(o Options) *Table {
	o.setDefaults()
	t := &Table{PanelID: p.ID, Title: p.Title}
	for _, c := range p.Competitors {
		t.Columns = append(t.Columns, c.Label)
	}
	// For thread and update sweeps the key range is fixed, so each
	// competitor is built and prefilled once and reused across the sweep
	// points (the balanced insert/delete mixes keep it near half-full,
	// as the paper's steady-state measurements assume). Size sweeps need
	// a fresh structure per point.
	run := func(target workload.Target, keyRange, threads int, mix workload.Mix) float64 {
		return workload.Run(target, workload.Spec{
			KeyRange: uint64(keyRange),
			Mix:      mix,
			Threads:  threads,
			Duration: o.Duration,
			Seed:     o.Seed,
			Dist:     o.Dist,
			Skew:     o.Skew,
		}).MopsPerSec()
	}
	switch p.Sweep {
	case SweepThreads, SweepUpdates:
		size := p.scaledSize(o, p.FixedSize)
		var xs []int
		if p.Sweep == SweepThreads {
			t.XLabel = "threads"
			xs = o.Threads
		} else {
			t.XLabel = "update%"
			xs = p.UpdatePcts
		}
		cells := make([][]float64, len(xs))
		for i := range cells {
			cells[i] = make([]float64, len(p.Competitors))
		}
		for ci, comp := range p.Competitors {
			target := comp.Make(o, size)
			workload.PrefillHalf(target, uint64(size), o.Seed)
			for xi, x := range xs {
				if p.Sweep == SweepThreads {
					cells[xi][ci] = run(target, size, x, p.Mix)
				} else {
					cells[xi][ci] = run(target, size, 8, workload.UpdateMix(x))
				}
			}
		}
		for xi, x := range xs {
			t.Rows = append(t.Rows, TableRow{X: x, Cells: cells[xi]})
		}
	case SweepSize:
		t.XLabel = "size"
		for _, s := range p.Sizes {
			keyRange := p.scaledSize(o, s)
			row := TableRow{X: s}
			for _, comp := range p.Competitors {
				target := comp.Make(o, keyRange)
				workload.PrefillHalf(target, uint64(keyRange), o.Seed)
				row.Cells = append(row.Cells, run(target, keyRange, 8, p.Mix))
			}
			t.Rows = append(t.Rows, row)
		}
	default:
		panic("harness: unknown sweep " + p.Sweep)
	}
	return t
}

// structure display names as the captions write them.
var structTitle = map[string]string{
	StList:     "Linked-List",
	StHash:     "Hash-Table",
	StBST:      "BST",
	StSkipList: "Skip-List",
}

// figurePanels builds the 12 per-structure panels of one figure.
func figurePanels(fig string, mirrorKind engine.Kind) []Panel {
	big := 8 << 20 // the paper's 8M-node structures
	specs := []struct {
		structure string
		letters   [3]string // threads, size, updates
		fixed     int
		sizes     []int
		scaled    bool
	}{
		{StList, [3]string{"a", "b", "c"}, 128,
			[]int{64, 128, 256, 512, 1024, 2048, 4096, 8192}, false},
		{StHash, [3]string{"d", "e", "f"}, big,
			[]int{8 << 10, 64 << 10, 512 << 10, 2 << 20, 8 << 20}, true},
		{StBST, [3]string{"g", "h", "i"}, big,
			[]int{8 << 10, 64 << 10, 512 << 10, 2 << 20, 8 << 20}, true},
		{StSkipList, [3]string{"j", "k", "l"}, big,
			[]int{8 << 10, 64 << 10, 512 << 10, 2 << 20, 8 << 20}, true},
	}
	var panels []Panel
	for _, s := range specs {
		comp := competitorsFor(s.structure, mirrorKind)
		name := structTitle[s.structure]
		sizeNote := fmt.Sprintf("%d nodes", s.fixed)
		if s.scaled {
			sizeNote = "8M nodes (scaled)"
		}
		panels = append(panels,
			Panel{
				ID:        fig + s.letters[0],
				Title:     fmt.Sprintf("%s, varying number of threads, 80%% lookups, %s", name, sizeNote),
				Structure: s.structure, Sweep: SweepThreads,
				Mix: workload.Mix801010, FixedSize: s.fixed, Scaled: s.scaled,
				Competitors: comp,
			},
			Panel{
				ID:        fig + s.letters[1],
				Title:     fmt.Sprintf("%s, varying size, 8 threads, 80%% lookups", name),
				Structure: s.structure, Sweep: SweepSize,
				Mix: workload.Mix801010, Sizes: s.sizes, Scaled: s.scaled,
				Competitors: comp,
			},
			Panel{
				ID:        fig + s.letters[2],
				Title:     fmt.Sprintf("%s, varying update percentage, 8 threads, %s", name, sizeNote),
				Structure: s.structure, Sweep: SweepUpdates,
				FixedSize: s.fixed, Scaled: s.scaled,
				UpdatePcts:  []int{0, 10, 20, 50, 100},
				Competitors: comp,
			},
		)
	}
	return panels
}

// Panels returns every panel of Figures 6 and 7.
func Panels() []Panel {
	panels := figurePanels("fig6", engine.MirrorDRAM)

	// Figure 6(m)(n): Mirror's hash table against the lock-based Cmap.
	cmapComp := []Competitor{
		engineCompetitor(engine.MirrorDRAM, StHash),
		cmapCompetitor(),
	}
	panels = append(panels,
		Panel{
			ID:        "fig6m",
			Title:     "Hash-Table vs Cmap, varying number of threads, 80% reads, 8M nodes (scaled)",
			Structure: StHash, Sweep: SweepThreads,
			Mix: workload.UpdateMix(20), FixedSize: 8 << 20, Scaled: true,
			Competitors: cmapComp,
		},
		Panel{
			ID:        "fig6n",
			Title:     "Hash-Table vs Cmap, varying update percentage, 8 threads, 8M nodes (scaled)",
			Structure: StHash, Sweep: SweepUpdates,
			FixedSize: 8 << 20, Scaled: true,
			UpdatePcts:  []int{0, 10, 20, 50, 100},
			Competitors: cmapComp,
		},
		Panel{
			ID:        "fig6o",
			Title:     "Hash-Table, varying update percentage, 8 threads, 32M nodes (scaled)",
			Structure: StHash, Sweep: SweepUpdates,
			FixedSize: 32 << 20, Scaled: true,
			UpdatePcts:  []int{0, 10, 20, 50, 100},
			Competitors: competitorsFor(StHash, engine.MirrorDRAM),
		},
	)

	panels = append(panels, figurePanels("fig7", engine.MirrorNVMM)...)
	return panels
}

// Find returns the panel with the given ID.
func Find(id string) (Panel, bool) {
	for _, p := range Panels() {
		if p.ID == id {
			return p, true
		}
	}
	return Panel{}, false
}

// EnvironmentNote describes the host parallelism, printed alongside
// results since thread counts above GOMAXPROCS share cores.
func EnvironmentNote() string {
	return fmt.Sprintf("host: GOMAXPROCS=%d (thread counts above this share cores)",
		runtime.GOMAXPROCS(0))
}
