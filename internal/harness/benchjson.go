package harness

// This file produces the machine-readable benchmark trajectory of the
// repository: a BenchReport is the full engine × structure × thread-count
// throughput matrix together with the persistence-instruction counters and
// the Mirror protocol's help/retry statistics for each point. cmd/mirrorbench
// writes one as BENCH_<n>.json; CI re-parses the committed file so the
// format cannot rot.

import (
	"encoding/json"
	"fmt"
	"runtime"

	"mirror/internal/engine"
	"mirror/internal/workload"
)

// BenchSchema identifies the report format; bump it on breaking changes.
const BenchSchema = "mirror-bench/1"

// BenchPoint is one measured cell of the matrix.
type BenchPoint struct {
	Structure string  `json:"structure"`
	Engine    string  `json:"engine"`
	Threads   int     `json:"threads"`
	KeyRange  int     `json:"key_range"`
	Mops      float64 `json:"mops"`
	Ops       uint64  `json:"ops"`

	// Flushes/Fences are the device persistence-instruction counts this
	// point added (pmem.Device.Counters deltas, exact under sharding).
	Flushes uint64 `json:"flushes"`
	Fences  uint64 `json:"fences"`
	// Helps/Retries are the Mirror protocol statistics this point added
	// (patomic.Mem.Stats deltas); zero for engines without a help path.
	Helps   uint64 `json:"helps"`
	Retries uint64 `json:"retries"`

	// Elision statistics this point added (engine.Stats deltas): flushes
	// and fences skipped by the persisted-epoch watermark layer, fences
	// avoided by piggybacking on a concurrent fence's commit ticket, and
	// retire-gated installs deferred to the relaxed-line registry. All
	// zero when the matrix runs with elision disabled (-noelide).
	ElidedFlushes     uint64 `json:"elided_flushes"`
	ElidedFences      uint64 `json:"elided_fences"`
	PiggybackedFences uint64 `json:"piggybacked_fences"`
	RelaxedCAS        uint64 `json:"relaxed_cas"`

	// Detectability statistics this point added: operation-descriptor
	// announces and durably published verdicts. Zero (and omitted) unless
	// the matrix runs with detectable operations (-detect).
	DetectAnnounces uint64 `json:"detect_announces,omitempty"`
	DetectVerdicts  uint64 `json:"detect_verdicts,omitempty"`

	// Fence-combining ablation fields, set only on the panels appended by
	// AppendCombineAblation. Combine marks whether the point ran with
	// per-thread write buffers; UpdatePct is the panel's update percentage
	// (the base matrix runs the fixed 80/10/10 mix and omits both).
	Combine   bool `json:"combine,omitempty"`
	UpdatePct int  `json:"update_pct,omitempty"`
	// CombinedFences counts linearizing installs whose fence was absorbed
	// into a combine-buffer drain; the drain_* fields break the drains
	// down by trigger (pmem.DrainCauses deltas). All zero/omitted when the
	// point ran without combining.
	CombinedFences uint64 `json:"combined_fences,omitempty"`
	DrainCapacity  uint64 `json:"drain_capacity,omitempty"`
	DrainEpoch     uint64 `json:"drain_epoch,omitempty"`
	DrainConflict  uint64 `json:"drain_conflict,omitempty"`
	DrainDetect    uint64 `json:"drain_detect,omitempty"`
	DrainPreFree   uint64 `json:"drain_prefree,omitempty"`
	DrainExpose    uint64 `json:"drain_expose,omitempty"`
	DrainExplicit  uint64 `json:"drain_explicit,omitempty"`

	// Sharded-substrate ablation fields, set only on the panels appended by
	// AppendShardAblation. Shards is the device shard count the point ran
	// on (1 = the classic single-device engine, the baseline row);
	// NUMARemoteNS is the remote-shard latency penalty in force (0 = the
	// symmetric preset). ShardFlushes/ShardFences break the point's
	// persistence-instruction deltas down per shard, in shard order — their
	// spread is the direct measure of hash-partition balance.
	Shards       int      `json:"shards,omitempty"`
	NUMARemoteNS int      `json:"numa_remote_ns,omitempty"`
	ShardFlushes []uint64 `json:"shard_flushes,omitempty"`
	ShardFences  []uint64 `json:"shard_fences,omitempty"`
	// Dist/Skew record a non-uniform key distribution (workload.Spec
	// semantics); omitted for the uniform default.
	Dist string  `json:"dist,omitempty"`
	Skew float64 `json:"skew,omitempty"`
}

// BenchHost records where the report was measured.
type BenchHost struct {
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	CPUs    int    `json:"cpus"`
	Version string `json:"go_version"`
}

// BenchOptions records how the report was measured.
type BenchOptions struct {
	DurationMS int64 `json:"duration_ms"`
	Scale      int   `json:"scale"`
	Latency    bool  `json:"latency"`
	Seed       int64 `json:"seed"`
	// NoElide records that the flush-elision layer was disabled (the
	// ablation baseline run).
	NoElide bool `json:"no_elide,omitempty"`
	// Detect records that every operation ran through a detectable bracket
	// (the descriptor-overhead ablation run).
	Detect bool `json:"detect,omitempty"`
	// Combine records that the fence-combining ablation panels (update-only
	// list and queue, per-point combine on/off in the same session) were
	// appended to the report.
	Combine bool `json:"combine,omitempty"`
	// Shards records the shard-count sweep of the sharded-substrate
	// ablation panels appended by AppendShardAblation.
	Shards []int `json:"shards,omitempty"`
	// NUMARemoteNS records the remote-shard penalty the sharded ablation
	// also measured (each sharded cell is run symmetric and penalized).
	NUMARemoteNS int `json:"numa_remote_ns,omitempty"`
	// Dist/Skew record a non-uniform key distribution applied to the whole
	// matrix (workload.Spec semantics); omitted for the uniform default.
	Dist string  `json:"dist,omitempty"`
	Skew float64 `json:"skew,omitempty"`
	// ServingConns/ServingWorkloads/ServingBatchWaitNS record the
	// serving-tier ablation appended by AppendServingAblation: the
	// connection sweep, the YCSB letters, and the group-commit window the
	// batched sessions ran with.
	ServingConns       []int  `json:"serving_conns,omitempty"`
	ServingWorkloads   string `json:"serving_workloads,omitempty"`
	ServingPipelines   []int  `json:"serving_pipelines,omitempty"`
	ServingBatchWaitNS int64  `json:"serving_batch_wait_ns,omitempty"`
}

// ServingPoint is one serving-tier measurement: a YCSB workload driven
// through mirrord's wire protocol by Conns concurrent synchronous clients
// against an in-process server, with every round trip recorded in an
// HDR-style histogram. Points come in batch on/off pairs (same process,
// same build): Batch=true runs the cross-client fence-batching write path,
// Batch=false the per-mutation-fence ablation baseline, and the
// FencesPerMutation gap between the two is the group-commit win.
type ServingPoint struct {
	Engine   string `json:"engine"`
	Workload string `json:"workload"` // "YCSB-A".."YCSB-F"
	Conns    int    `json:"conns"`
	// Pipeline is the per-client pipeline depth the session ran at (1:
	// synchronous round trips; >1: HELLO-negotiated, descriptor rings).
	Pipeline int  `json:"pipeline,omitempty"`
	Batch    bool `json:"batch"`
	// BatchWaitNS is the group-commit window of a batched point (omitted
	// on the unbatched baseline, which drains after every operation).
	BatchWaitNS int64 `json:"batch_wait_ns,omitempty"`
	KeyRange    int   `json:"key_range"`

	Ops  uint64  `json:"ops"`
	Kops float64 `json:"kops"` // thousand ops/s — wire round trips, not Mops

	// Client-observed round-trip percentiles in nanoseconds, from the
	// merged per-connection histograms (~3.1% relative slot error).
	P50NS  uint64 `json:"p50_ns"`
	P99NS  uint64 `json:"p99_ns"`
	P999NS uint64 `json:"p999_ns"`
	MaxNS  uint64 `json:"max_ns"`

	// Server-side deltas for the session: mutating frames executed, drain
	// batches released, and the engine's persistence-instruction counts.
	Mutations         uint64  `json:"mutations"`
	Scans             uint64  `json:"scans,omitempty"`
	Batches           uint64  `json:"batches"`
	Flushes           uint64  `json:"flushes"`
	Fences            uint64  `json:"fences"`
	FencesPerMutation float64 `json:"fences_per_mutation"`
}

// RecoveryPoint is one recovery-pipeline measurement: how fast one engine
// rebuilds a hash table of Keys elements at the given pipeline parallelism
// (harness.MeasureRecovery row, serialized).
type RecoveryPoint struct {
	Engine      string  `json:"engine"`
	Keys        int     `json:"keys"`
	Parallelism int     `json:"parallelism"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	KeysPerMS   float64 `json:"keys_per_ms"`
}

// BenchReport is the full matrix.
type BenchReport struct {
	Schema  string       `json:"schema"`
	Host    BenchHost    `json:"host"`
	Options BenchOptions `json:"options"`
	Points  []BenchPoint `json:"points"`
	// Recovery holds the recovery-throughput sweep (engine × size ×
	// parallelism); present when mirrorbench ran with -recovery.
	Recovery []RecoveryPoint `json:"recovery,omitempty"`
	// Serving holds the serving-tier panels (wire-protocol YCSB with
	// latency percentiles and the fence-batching ablation); present when
	// mirrorbench ran with -serving.
	Serving []ServingPoint `json:"serving,omitempty"`
}

// BenchStructures is the default structure axis of the matrix.
func BenchStructures() []string {
	return []string{StList, StHash, StBST, StSkipList}
}

// RunBenchMatrix measures every structure × engine × thread-count cell and
// returns the report. Each structure/engine pair is built and prefilled
// once and reused across the thread sweep, with counter deltas taken
// around each point.
func RunBenchMatrix(o Options, structs []string, kinds []engine.Kind, threads []int) *BenchReport {
	o.setDefaults()
	if len(structs) == 0 {
		structs = BenchStructures()
	}
	if len(kinds) == 0 {
		kinds = engine.Kinds()
	}
	if len(threads) == 0 {
		threads = o.Threads
	}
	// buildEngineTarget sizes the descriptor region from the widest point
	// of the sweep it will actually run.
	o.Threads = threads
	r := &BenchReport{
		Schema: BenchSchema,
		Host: BenchHost{
			GOOS:    runtime.GOOS,
			GOARCH:  runtime.GOARCH,
			CPUs:    runtime.NumCPU(),
			Version: runtime.Version(),
		},
		Options: BenchOptions{
			DurationMS: o.Duration.Milliseconds(),
			Scale:      o.Scale,
			Latency:    o.Latency,
			Seed:       o.Seed,
			NoElide:    o.NoElide,
			Detect:     o.Detect,
			Dist:       o.Dist,
			Skew:       o.Skew,
		},
	}
	// One representative key range per structure: the paper's 8M sets
	// divided by the scale (harness default keeps this well above cache
	// sizes while fitting the simulated devices in host memory).
	keyRange := (8 << 20) / o.Scale
	if keyRange < 64 {
		keyRange = 64
	}
	for _, st := range structs {
		for _, kind := range kinds {
			target, e := buildEngineTarget(kind, st, o, keyRange)
			workload.PrefillHalf(target, uint64(keyRange), o.Seed)
			for _, th := range threads {
				fl0, fe0 := e.Counters()
				s0 := e.Stats()
				res := workload.Run(target, workload.Spec{
					KeyRange: uint64(keyRange),
					Mix:      workload.Mix801010,
					Threads:  th,
					Duration: o.Duration,
					Seed:     o.Seed,
					Dist:     o.Dist,
					Skew:     o.Skew,
				})
				fl1, fe1 := e.Counters()
				s1 := e.Stats()
				r.Points = append(r.Points, BenchPoint{
					Structure:         st,
					Engine:            kind.String(),
					Threads:           th,
					KeyRange:          keyRange,
					Mops:              res.MopsPerSec(),
					Ops:               res.Ops,
					Flushes:           fl1 - fl0,
					Fences:            fe1 - fe0,
					Helps:             s1.Helps - s0.Helps,
					Retries:           s1.Retries - s0.Retries,
					ElidedFlushes:     s1.ElidedFlushes - s0.ElidedFlushes,
					ElidedFences:      s1.ElidedFences - s0.ElidedFences,
					PiggybackedFences: s1.PiggybackedFences - s0.PiggybackedFences,
					RelaxedCAS:        s1.RelaxedCAS - s0.RelaxedCAS,
					DetectAnnounces:   s1.DetectAnnounces - s0.DetectAnnounces,
					DetectVerdicts:    s1.DetectVerdicts - s0.DetectVerdicts,
					Dist:              o.Dist,
					Skew:              o.Skew,
				})
			}
		}
	}
	return r
}

// CombineUpdatePct is the update percentage of the fence-combining
// ablation panels: an update-only mix, where every operation pays a
// linearizing fence on the eager path and the combining win is largest
// and cleanest to attribute.
const CombineUpdatePct = 100

// AppendCombineAblation appends the fence-combining ablation panels to a
// report: the sorted list under both Mirror engines and the durable
// Michael–Scott queue, each measured at an update-only mix with combining
// off and then on in the same session. The off points are the floor the
// combined fence counts are judged against — same host, same build, same
// mix — and every combined point carries its combined-fence total and
// per-trigger drain breakdown. The base matrix is left untouched (and
// comparable to earlier reports).
func AppendCombineAblation(r *BenchReport, o Options, threads []int) {
	o.setDefaults()
	if len(threads) == 0 {
		threads = o.Threads
	}
	o.Threads = threads
	r.Options.Combine = true
	keyRange := (8 << 20) / o.Scale
	if keyRange < 64 {
		keyRange = 64
	}
	mix := workload.UpdateMix(CombineUpdatePct)
	run := func(target workload.Target, th int) workload.Result {
		return workload.Run(target, workload.Spec{
			KeyRange: uint64(keyRange),
			Mix:      mix,
			Threads:  th,
			Duration: o.Duration,
			Seed:     o.Seed,
		})
	}
	// Sorted list under both Mirror replica placements.
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM} {
		for _, combine := range []bool{false, true} {
			oo := o
			oo.Combine = combine
			target, e := buildEngineTarget(kind, StList, oo, keyRange)
			workload.PrefillHalf(target, uint64(keyRange), oo.Seed)
			for _, th := range threads {
				fl0, fe0 := e.Counters()
				s0 := e.Stats()
				res := run(target, th)
				fl1, fe1 := e.Counters()
				s1 := e.Stats()
				r.Points = append(r.Points, BenchPoint{
					Structure:         StList,
					Engine:            kind.String(),
					Threads:           th,
					KeyRange:          keyRange,
					Mops:              res.MopsPerSec(),
					Ops:               res.Ops,
					Flushes:           fl1 - fl0,
					Fences:            fe1 - fe0,
					Helps:             s1.Helps - s0.Helps,
					Retries:           s1.Retries - s0.Retries,
					ElidedFlushes:     s1.ElidedFlushes - s0.ElidedFlushes,
					ElidedFences:      s1.ElidedFences - s0.ElidedFences,
					PiggybackedFences: s1.PiggybackedFences - s0.PiggybackedFences,
					RelaxedCAS:        s1.RelaxedCAS - s0.RelaxedCAS,
					Combine:           combine,
					UpdatePct:         CombineUpdatePct,
					CombinedFences:    s1.CombinedFences - s0.CombinedFences,
					DrainCapacity:     s1.DrainCauses.Capacity - s0.DrainCauses.Capacity,
					DrainEpoch:        s1.DrainCauses.Epoch - s0.DrainCauses.Epoch,
					DrainConflict:     s1.DrainCauses.Conflict - s0.DrainCauses.Conflict,
					DrainDetect:       s1.DrainCauses.Detect - s0.DrainCauses.Detect,
					DrainPreFree:      s1.DrainCauses.PreFree - s0.DrainCauses.PreFree,
					DrainExpose:       s1.DrainCauses.Expose - s0.DrainCauses.Expose,
					DrainExplicit:     s1.DrainCauses.Explicit - s0.DrainCauses.Explicit,
				})
			}
		}
	}
	// Durable Michael–Scott queue (its own persistent device; not an
	// engine.Kind, so the elision/help statistics columns stay zero).
	for _, combine := range []bool{false, true} {
		oo := o
		oo.Combine = combine
		target, q := buildQueueTarget(oo, keyRange)
		workload.PrefillHalf(target, uint64(keyRange), oo.Seed)
		for _, th := range threads {
			fl0, fe0 := q.Counters()
			cf0, dc0 := q.CombineCounters()
			res := run(target, th)
			fl1, fe1 := q.Counters()
			cf1, dc1 := q.CombineCounters()
			r.Points = append(r.Points, BenchPoint{
				Structure:      StQueue,
				Engine:         "DurableQueue",
				Threads:        th,
				KeyRange:       keyRange,
				Mops:           res.MopsPerSec(),
				Ops:            res.Ops,
				Flushes:        fl1 - fl0,
				Fences:         fe1 - fe0,
				Combine:        combine,
				UpdatePct:      CombineUpdatePct,
				CombinedFences: cf1 - cf0,
				DrainCapacity:  dc1.Capacity - dc0.Capacity,
				DrainEpoch:     dc1.Epoch - dc0.Epoch,
				DrainConflict:  dc1.Conflict - dc0.Conflict,
				DrainDetect:    dc1.Detect - dc0.Detect,
				DrainPreFree:   dc1.PreFree - dc0.PreFree,
				DrainExpose:    dc1.Expose - dc0.Expose,
				DrainExplicit:  dc1.Explicit - dc0.Explicit,
			})
		}
	}
}

// AppendShardAblation appends the sharded-substrate ablation panels to a
// report: the hash table under both Mirror engines, measured at every
// requested shard count in the same session. The 1-shard cells run the
// classic single-device engine — the baseline every sharded cell is judged
// against — and each sharded cell is measured twice when a NUMA penalty is
// requested: once symmetric and once with every remotely-routed operation
// paying Options.NUMARemoteNS. Sharded points carry per-shard flush/fence
// breakdowns, so partition balance is visible in the committed JSON. The
// base matrix is left untouched.
func AppendShardAblation(r *BenchReport, o Options, shardCounts []int, threads []int) {
	o.setDefaults()
	if len(threads) == 0 {
		threads = o.Threads
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	o.Threads = threads
	r.Options.Shards = shardCounts
	r.Options.NUMARemoteNS = o.NUMARemoteNS
	keyRange := (8 << 20) / o.Scale
	if keyRange < 64 {
		keyRange = 64
	}
	for _, kind := range []engine.Kind{engine.MirrorDRAM, engine.MirrorNVMM} {
		for _, n := range shardCounts {
			penalties := []int{0}
			if n > 1 && o.NUMARemoteNS > 0 {
				penalties = append(penalties, o.NUMARemoteNS)
			}
			for _, numa := range penalties {
				oo := o
				oo.Shards = n
				oo.NUMARemoteNS = numa
				target, e := buildEngineTarget(kind, StHash, oo, keyRange)
				workload.PrefillHalf(target, uint64(keyRange), oo.Seed)
				se, _ := e.(*engine.Sharded)
				for _, th := range threads {
					fl0, fe0 := e.Counters()
					s0 := e.Stats()
					var sf0, sn0 []uint64
					if se != nil {
						sf0, sn0 = se.ShardCounters()
					}
					res := workload.Run(target, workload.Spec{
						KeyRange: uint64(keyRange),
						Mix:      workload.Mix801010,
						Threads:  th,
						Duration: o.Duration,
						Seed:     o.Seed,
						Dist:     o.Dist,
						Skew:     o.Skew,
					})
					fl1, fe1 := e.Counters()
					s1 := e.Stats()
					p := BenchPoint{
						Structure:         StHash,
						Engine:            kind.String(),
						Threads:           th,
						KeyRange:          keyRange,
						Mops:              res.MopsPerSec(),
						Ops:               res.Ops,
						Flushes:           fl1 - fl0,
						Fences:            fe1 - fe0,
						Helps:             s1.Helps - s0.Helps,
						Retries:           s1.Retries - s0.Retries,
						ElidedFlushes:     s1.ElidedFlushes - s0.ElidedFlushes,
						ElidedFences:      s1.ElidedFences - s0.ElidedFences,
						PiggybackedFences: s1.PiggybackedFences - s0.PiggybackedFences,
						RelaxedCAS:        s1.RelaxedCAS - s0.RelaxedCAS,
						Shards:            n,
						NUMARemoteNS:      numa,
						Dist:              o.Dist,
						Skew:              o.Skew,
					}
					if se != nil {
						sf1, sn1 := se.ShardCounters()
						p.ShardFlushes = counterDeltas(sf1, sf0)
						p.ShardFences = counterDeltas(sn1, sn0)
					}
					r.Points = append(r.Points, p)
				}
			}
		}
	}
}

// counterDeltas subtracts two same-length per-shard counter snapshots.
func counterDeltas(after, before []uint64) []uint64 {
	out := make([]uint64, len(after))
	for i := range after {
		out[i] = after[i] - before[i]
	}
	return out
}

// Validate checks the report's internal consistency.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Points) == 0 && len(r.Recovery) == 0 && len(r.Serving) == 0 {
		return fmt.Errorf("report has no points")
	}
	for i, p := range r.Points {
		switch {
		case p.Structure == "":
			return fmt.Errorf("point %d: empty structure", i)
		case p.Engine == "":
			return fmt.Errorf("point %d: empty engine", i)
		case p.Threads <= 0:
			return fmt.Errorf("point %d: threads %d", i, p.Threads)
		case p.KeyRange <= 0:
			return fmt.Errorf("point %d: key range %d", i, p.KeyRange)
		case p.Mops < 0:
			return fmt.Errorf("point %d: negative throughput", i)
		case p.Shards < 0:
			return fmt.Errorf("point %d: shards %d", i, p.Shards)
		}
		if p.Shards > 1 && (len(p.ShardFlushes) != p.Shards || len(p.ShardFences) != p.Shards) {
			return fmt.Errorf("point %d: %d shards but %d/%d per-shard counters",
				i, p.Shards, len(p.ShardFlushes), len(p.ShardFences))
		}
	}
	for i, p := range r.Serving {
		switch {
		case p.Engine == "":
			return fmt.Errorf("serving point %d: empty engine", i)
		case p.Workload == "":
			return fmt.Errorf("serving point %d: empty workload", i)
		case p.Conns <= 0:
			return fmt.Errorf("serving point %d: conns %d", i, p.Conns)
		case p.KeyRange <= 0:
			return fmt.Errorf("serving point %d: key range %d", i, p.KeyRange)
		case p.Kops < 0:
			return fmt.Errorf("serving point %d: negative throughput", i)
		case p.Pipeline < 0:
			return fmt.Errorf("serving point %d: pipeline %d", i, p.Pipeline)
		case p.FencesPerMutation < 0:
			return fmt.Errorf("serving point %d: negative fences/mutation", i)
		}
		if p.Workload == "YCSB-E" && p.Ops > 0 && p.Scans == 0 {
			return fmt.Errorf("serving point %d: YCSB-E measured ops but served no SCAN frames", i)
		}
		if p.Ops > 0 {
			// A measured point must carry a full, ordered percentile set —
			// the acceptance surface of the serving panels.
			if p.P50NS == 0 {
				return fmt.Errorf("serving point %d: measured but p50 missing", i)
			}
			if p.P50NS > p.P99NS || p.P99NS > p.P999NS || p.P999NS > p.MaxNS {
				return fmt.Errorf("serving point %d: percentiles out of order (p50 %d, p99 %d, p999 %d, max %d)",
					i, p.P50NS, p.P99NS, p.P999NS, p.MaxNS)
			}
		}
	}
	for i, p := range r.Recovery {
		switch {
		case p.Engine == "":
			return fmt.Errorf("recovery point %d: empty engine", i)
		case p.Keys <= 0:
			return fmt.Errorf("recovery point %d: keys %d", i, p.Keys)
		case p.Parallelism <= 0:
			return fmt.Errorf("recovery point %d: parallelism %d", i, p.Parallelism)
		case p.ElapsedNS <= 0:
			return fmt.Errorf("recovery point %d: elapsed %d ns", i, p.ElapsedNS)
		case p.KeysPerMS <= 0:
			return fmt.Errorf("recovery point %d: keys/ms %g", i, p.KeysPerMS)
		}
	}
	return nil
}

// RecoveryPoints serializes a RecoveryReport into the report's recovery
// section.
func RecoveryPoints(rep *RecoveryReport) []RecoveryPoint {
	out := make([]RecoveryPoint, 0, len(rep.Rows))
	for _, row := range rep.Rows {
		out = append(out, RecoveryPoint{
			Engine:      row.Engine,
			Keys:        row.Keys,
			Parallelism: row.Parallelism,
			ElapsedNS:   row.Elapsed.Nanoseconds(),
			KeysPerMS:   row.KeysPerMS(),
		})
	}
	return out
}

// MarshalReport renders the report as indented JSON with a trailing
// newline, the exact bytes mirrorbench writes to BENCH_<n>.json.
func MarshalReport(r *BenchReport) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseReport unmarshals and validates a BENCH_<n>.json payload.
func ParseReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse bench report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("invalid bench report: %w", err)
	}
	return &r, nil
}
