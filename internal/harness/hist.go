package harness

import "math/bits"

// Hist is an HDR-style latency histogram: logarithmic buckets of 2^histSubBits
// linear sub-buckets each, so any recorded value lands in a bucket whose
// width is at most 1/2^histSubBits of its magnitude (~3.1% relative error
// with 32 sub-buckets). Recording is O(1) with no allocation, so the
// serving tier can record every operation rather than sampling, and the
// tail percentiles (p99, p999) come from actual counts instead of a
// subsample. The zero value is ready to use. Not safe for concurrent use;
// give each worker its own Hist and Merge them.
type Hist struct {
	counts [histSlots]uint64
	total  uint64
	min    uint64
	max    uint64
}

const (
	histSubBits = 5 // 32 sub-buckets per power of two
	histSubs    = 1 << histSubBits
	histSlots   = (64 - histSubBits + 1) * histSubs
)

// histIndex maps a value to its slot. Values below histSubs are exact
// (bucket 0); above, the top histSubBits+1 bits select the slot.
func histIndex(v uint64) int {
	if v>>histSubBits == 0 {
		return int(v)
	}
	shift := bits.Len64(v) - 1 - histSubBits
	sub := int(v>>uint(shift)) - histSubs // [0, histSubs)
	return (shift+1)*histSubs + sub
}

// histRange returns the inclusive value range [lo, hi] a slot covers.
func histRange(idx int) (lo, hi uint64) {
	bucket, sub := idx>>histSubBits, uint64(idx&(histSubs-1))
	if bucket == 0 {
		return sub, sub
	}
	shift := uint(bucket - 1)
	lo = (sub + histSubs) << shift
	return lo, lo + (1 << shift) - 1
}

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	h.counts[histIndex(v)]++
	h.total++
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.total }

// Min and Max return the exact extreme recorded values (0 when empty).
func (h *Hist) Min() uint64 { return h.min }
func (h *Hist) Max() uint64 { return h.max }

// Merge folds o's samples into h.
func (h *Hist) Merge(o *Hist) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
}

// Percentile returns the nearest-rank p-th percentile (0 < p <= 100) with
// linear interpolation inside the target slot: the rank's position within
// the slot's count selects a proportional point in the slot's value range.
// The answer is within one slot width of the exact sorted-slice
// nearest-rank percentile (~3.1% relative). An empty histogram returns 0.
func (h *Hist) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	// Nearest-rank target, 1-based: ceil(p/100 * total), clamped to [1, total].
	target := uint64(float64(h.total) * p / 100)
	if float64(target) < float64(h.total)*p/100 {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > h.total {
		target = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := histRange(i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			if hi <= lo {
				return lo
			}
			// Interpolate the rank's position within this slot.
			frac := float64(target-cum-1) / float64(c)
			return lo + uint64(frac*float64(hi-lo+1))
		}
		cum += c
	}
	return h.max
}
