package harness

import (
	"fmt"
	"strings"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

// SpaceRow is one engine's memory account for a structure.
type SpaceRow struct {
	Engine      string
	BytesPerKey float64
	Replicas    int
}

// SpaceReport measures the live memory footprint per key for a structure
// under every engine — quantifying §6.2.5's observation that Mirror's two
// replicas double consumption (and the sequence words add more on top).
type SpaceReport struct {
	Structure string
	Keys      int
	Rows      []SpaceRow
}

// Format renders the report as aligned text.
func (r *SpaceReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "space: %s with %d keys (live bytes per key)\n", r.Structure, r.Keys)
	fmt.Fprintf(&b, "%-14s%14s%10s\n", "engine", "bytes/key", "replicas")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s%14.1f%10d\n", row.Engine, row.BytesPerKey, row.Replicas)
	}
	return b.String()
}

// MeasureSpace builds the structure under each engine, inserts keys
// 1..keys, and reports the live footprint.
func MeasureSpace(structure string, keys int) *SpaceReport {
	rep := &SpaceReport{Structure: structure, Keys: keys}
	for _, kind := range engine.Kinds() {
		e := engine.New(engine.Config{
			Kind:  kind,
			Words: deviceWords(structure, kind, keys*2),
		})
		c := e.NewCtx()
		var set structures.Set
		switch structure {
		case StList:
			set = list.New(e, 0)
		case StHash:
			set = hashtable.New(e, c, bucketsFor(keys))
		case StBST:
			set = bst.New(e, c)
		case StSkipList:
			set = skiplist.New(e, c)
		default:
			panic("harness: unknown structure " + structure)
		}
		base, _ := e.Footprint() // sentinels, bucket arrays
		for k := 1; k <= keys; k++ {
			set.Insert(c, uint64(k), uint64(k))
		}
		words, replicas := e.Footprint()
		perKey := float64(words-base) * 8 * float64(replicas) / float64(keys)
		rep.Rows = append(rep.Rows, SpaceRow{
			Engine:      kind.String(),
			BytesPerKey: perKey,
			Replicas:    replicas,
		})
	}
	return rep
}
