package harness

import (
	"testing"
	"time"

	"mirror/internal/engine"
)

// servingOpts keeps serving test sessions short and deterministic.
func servingOpts() Options {
	return Options{Duration: 60 * time.Millisecond, Seed: 7}
}

func servingCfg() ServingConfig {
	return ServingConfig{KeyRange: 512, Workers: 1, BatchWait: 500 * time.Microsecond}
}

// TestServingSession drives YCSB-A through the wire against an in-process
// Mirror server and checks the measured point is internally consistent:
// operations completed, a full ordered percentile set, and server-side
// counters that account for the load.
func TestServingSession(t *testing.T) {
	p, err := RunServingSession(servingOpts(), servingCfg(), engine.MirrorDRAM, 'A', 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if p.Engine != "Mirror" || p.Workload != "YCSB-A" || p.Conns != 2 || !p.Batch {
		t.Fatalf("point metadata wrong: %+v", p)
	}
	if p.P50NS == 0 || p.P50NS > p.P99NS || p.P99NS > p.P999NS || p.P999NS > p.MaxNS {
		t.Fatalf("percentiles broken: p50=%d p99=%d p999=%d max=%d", p.P50NS, p.P99NS, p.P999NS, p.MaxNS)
	}
	if p.Mutations == 0 {
		t.Fatal("YCSB-A ran no mutations")
	}
	if p.Fences == 0 {
		t.Fatal("a durable serving session must fence")
	}
	if p.FencesPerMutation <= 0 {
		t.Fatalf("fences/mutation %g", p.FencesPerMutation)
	}
	if p.BatchWaitNS != servingCfg().BatchWait.Nanoseconds() {
		t.Fatalf("batched point lost its window: %d", p.BatchWaitNS)
	}
}

// TestServingWorkloadLetters rejects unknown workloads and accepts
// lowercase letters.
func TestServingWorkloadLetters(t *testing.T) {
	if _, err := RunServingLoad(ServingSpec{Workload: 'Z', Conns: 1, KeyRange: 64}); err == nil {
		t.Fatal("workload Z accepted")
	}
	p, err := RunServingSession(servingOpts(), servingCfg(), engine.MirrorDRAM, 'c', 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workload != "YCSB-C" {
		t.Fatalf("lowercase letter not normalized: %q", p.Workload)
	}
	// Read-only workload: no mutations, so the ratio field must stay zero
	// rather than dividing by zero.
	if p.Mutations != 0 || p.FencesPerMutation != 0 {
		t.Fatalf("read-only session mutated: %+v", p)
	}
	if p.BatchWaitNS != 0 {
		t.Fatalf("unbatched point carries a window: %d", p.BatchWaitNS)
	}
}

// TestServingReportRoundtrip appends a minimal serving ablation to a
// report, marshals it, and re-parses it through the same validation path
// CI applies to committed BENCH files; then breaks a percentile invariant
// and checks validation rejects it.
func TestServingReportRoundtrip(t *testing.T) {
	r := &BenchReport{Schema: BenchSchema}
	sc := servingCfg()
	sc.Conns = []int{1}
	sc.Workloads = []byte{'A'}
	sc.Kinds = []engine.Kind{engine.MirrorDRAM}
	if err := AppendServingAblation(r, servingOpts(), sc); err != nil {
		t.Fatal(err)
	}
	if len(r.Serving) != 2 {
		t.Fatalf("want batch on/off pair, got %d points", len(r.Serving))
	}
	if !r.Serving[0].Batch || r.Serving[1].Batch {
		t.Fatalf("ablation order wrong: %+v", r.Serving)
	}
	if r.Options.ServingWorkloads != "A" || len(r.Options.ServingConns) != 1 {
		t.Fatalf("options not recorded: %+v", r.Options)
	}
	data, err := MarshalReport(r)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Serving) != 2 || rr.Serving[0].P50NS != r.Serving[0].P50NS {
		t.Fatalf("roundtrip lost serving points: %+v", rr.Serving)
	}

	rr.Serving[0].P99NS = rr.Serving[0].P50NS / 2
	if err := rr.Validate(); err == nil {
		t.Fatal("out-of-order percentiles validated")
	}
	rr.Serving[0].P99NS = 0
	rr.Serving[0].P50NS = 0
	if err := rr.Validate(); err == nil {
		t.Fatal("measured point without percentiles validated")
	}
}

// TestServingPipelinedSession drives YCSB-A at pipeline depth 4 and checks
// the point records the depth, completes more operations than it could
// synchronously lose, and keeps the percentile invariants.
func TestServingPipelinedSession(t *testing.T) {
	p, err := RunServingSession(servingOpts(), servingCfg(), engine.MirrorDRAM, 'A', 1, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pipeline != 4 {
		t.Fatalf("pipeline not recorded: %+v", p)
	}
	if p.Ops == 0 || p.Mutations == 0 {
		t.Fatalf("pipelined session idle: %+v", p)
	}
	if p.P50NS == 0 || p.P50NS > p.P99NS || p.P99NS > p.P999NS || p.P999NS > p.MaxNS {
		t.Fatalf("percentiles broken: %+v", p)
	}
}

// TestServingScanSession drives YCSB-E over native SCAN frames and checks
// the server counted them.
func TestServingScanSession(t *testing.T) {
	p, err := RunServingSession(servingOpts(), servingCfg(), engine.MirrorDRAM, 'E', 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if p.Scans == 0 {
		t.Fatal("YCSB-E served no SCAN frames")
	}
}

// TestServingRMWSession drives YCSB-F and checks RMW frames mutate.
func TestServingRMWSession(t *testing.T) {
	p, err := RunServingSession(servingOpts(), servingCfg(), engine.MirrorDRAM, 'F', 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops == 0 || p.Mutations == 0 {
		t.Fatalf("YCSB-F ran no RMW mutations: %+v", p)
	}
}
