// Package harness regenerates the paper's evaluation: every panel of
// Figure 6 (volatile replica on DRAM) and Figure 7 (both replicas on NVMM)
// is a Panel spec that builds the competitors, prefills them to half the
// key range, drives the workload, and prints the measured series as a
// table in Mops/s.
package harness

import (
	"fmt"

	"mirror/internal/cmapkv"
	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
	"mirror/internal/workload"
	"mirror/internal/zuriel"
)

// Structure names used by panels.
const (
	StList     = "list"
	StHash     = "hashtable"
	StBST      = "bst"
	StSkipList = "skiplist"
)

// Competitor builds one line of a panel.
type Competitor struct {
	Label string
	// Make creates a fresh instance sized for a key range and returns
	// the workload target driving it.
	Make func(o Options, keyRange int) workload.Target
}

// engineWorker adapts a structures.Set to workload.Worker.
type engineWorker struct {
	set structures.Set
	e   engine.Engine
	c   *engine.Ctx
}

func (w *engineWorker) Insert(key, val uint64) bool { return w.set.Insert(w.c, key, val) }
func (w *engineWorker) Delete(key uint64) bool      { return w.set.Delete(w.c, key) }
func (w *engineWorker) Contains(key uint64) bool    { return w.set.Contains(w.c, key) }

// deviceWords sizes the engine devices for a structure holding up to
// keyRange live keys, with slack for class rounding, churn, and epochs.
func deviceWords(structure string, kind engine.Kind, keyRange int) int {
	cellW := 1
	if kind == engine.MirrorDRAM || kind == engine.MirrorNVMM {
		cellW = 2
	}
	var perKey int
	switch structure {
	case StList:
		perKey = 4 * cellW // 3 fields rounded
	case StHash:
		perKey = 4*cellW + 2*cellW // node + bucket-array share
	case StBST:
		perKey = 2 * 4 * cellW // leaf + internal
	case StSkipList:
		perKey = 8 * cellW // avg tower height 2, 5 fields rounded
	default:
		panic("harness: unknown structure " + structure)
	}
	words := keyRange*perKey*3 + 1<<18
	if words < 1<<20 {
		words = 1 << 20
	}
	return words
}

// bucketsFor picks the hash bucket count for a key range (short chains).
func bucketsFor(keyRange int) int {
	b := 1
	for b < keyRange/2 {
		b <<= 1
	}
	return b
}

// buildEngineTarget constructs one structure under one engine and returns
// both the workload target and the engine itself, so callers that need the
// engine's counters and protocol statistics (the JSON benchmark matrix) can
// read them around a run.
func buildEngineTarget(kind engine.Kind, structure string, o Options, keyRange int) (workload.Target, engine.Engine) {
	e := engine.New(engine.Config{
		Kind:    kind,
		Words:   deviceWords(structure, kind, keyRange),
		Latency: o.Latency,
		Track:   false, // benchmarks never crash
		NoElide: o.NoElide,
	})
	setup := e.NewCtx()
	var mk func(c *engine.Ctx) structures.Set
	switch structure {
	case StList:
		l := list.New(e, 0)
		mk = func(*engine.Ctx) structures.Set { return l }
	case StHash:
		h := hashtable.New(e, setup, bucketsFor(keyRange))
		mk = func(*engine.Ctx) structures.Set { return h }
	case StBST:
		b := bst.New(e, setup)
		mk = func(*engine.Ctx) structures.Set { return b }
	case StSkipList:
		s := skiplist.New(e, setup)
		mk = func(*engine.Ctx) structures.Set { return s }
	default:
		panic("harness: unknown structure " + structure)
	}
	return workload.Target{
		Name:          fmt.Sprintf("%s/%s", structure, kind),
		SortedPrefill: structure == StList,
		NewWorker: func() workload.Worker {
			c := e.NewCtx()
			return &engineWorker{set: mk(c), e: e, c: c}
		},
	}, e
}

// engineCompetitor builds one structure under one engine.
func engineCompetitor(kind engine.Kind, structure string) Competitor {
	return Competitor{
		Label: kind.String(),
		Make: func(o Options, keyRange int) workload.Target {
			t, _ := buildEngineTarget(kind, structure, o, keyRange)
			return t
		},
	}
}

// zurielWorker adapts a zuriel.Set.
type zurielWorker struct {
	set zuriel.Set
	c   *zuriel.Ctx
}

func (w *zurielWorker) Insert(key, val uint64) bool { return w.set.Insert(w.c, key, val) }
func (w *zurielWorker) Delete(key uint64) bool      { return w.set.Delete(w.c, key) }
func (w *zurielWorker) Contains(key uint64) bool    { return w.set.Contains(w.c, key) }

// zurielCompetitor builds Link-Free or SOFT (hashed when the structure is
// a hash table).
func zurielCompetitor(soft bool, structure string) Competitor {
	label := "LinkFree"
	if soft {
		label = "SOFT"
	}
	return Competitor{
		Label: label,
		Make: func(o Options, keyRange int) workload.Target {
			buckets := 0
			if structure == StHash {
				buckets = bucketsFor(keyRange)
			}
			words := keyRange*4*4 + buckets + 1<<18
			if words < 1<<20 {
				words = 1 << 20
			}
			cfg := zuriel.Config{Words: words, Buckets: buckets, Latency: o.Latency}
			var s zuriel.Set
			if soft {
				s = zuriel.NewSoft(cfg)
			} else {
				s = zuriel.NewLinkFree(cfg)
			}
			return workload.Target{
				Name:          fmt.Sprintf("%s/%s", structure, label),
				SortedPrefill: structure == StList,
				NewWorker: func() workload.Worker {
					return &zurielWorker{set: s, c: s.NewCtx()}
				},
			}
		},
	}
}

// cmapWorker adapts the lock-based map; its Insert has Put (upsert)
// semantics as in pmemkv.
type cmapWorker struct {
	m *cmapkv.Map
	c *cmapkv.Ctx
}

func (w *cmapWorker) Insert(key, val uint64) bool { return w.m.Put(w.c, key, val) }
func (w *cmapWorker) Delete(key uint64) bool      { return w.m.Delete(w.c, key) }
func (w *cmapWorker) Contains(key uint64) bool    { return w.m.Contains(w.c, key) }

// cmapCompetitor builds the pmemkv-style lock-based hash map.
func cmapCompetitor() Competitor {
	return Competitor{
		Label: "Cmap",
		Make: func(o Options, keyRange int) workload.Target {
			words := keyRange*4*4 + 1<<18
			if words < 1<<20 {
				words = 1 << 20
			}
			m := cmapkv.New(cmapkv.Config{
				Words:   words,
				Buckets: bucketsFor(keyRange),
				Latency: o.Latency,
			})
			return workload.Target{
				Name: "hashtable/Cmap",
				NewWorker: func() workload.Worker {
					return &cmapWorker{m: m, c: m.NewCtx()}
				},
			}
		},
	}
}

// competitorsFor returns the paper's competitor line-up for a structure.
// mirrorKind selects MirrorDRAM (Figure 6) or MirrorNVMM (Figure 7).
func competitorsFor(structure string, mirrorKind engine.Kind) []Competitor {
	cs := []Competitor{
		engineCompetitor(engine.OrigDRAM, structure),
		engineCompetitor(engine.OrigNVMM, structure),
		engineCompetitor(engine.Izraelevitz, structure),
		engineCompetitor(engine.NVTraverse, structure),
		engineCompetitor(mirrorKind, structure),
	}
	if structure == StList || structure == StHash {
		cs = append(cs,
			zurielCompetitor(false, structure),
			zurielCompetitor(true, structure))
	}
	return cs
}
