// Package harness regenerates the paper's evaluation: every panel of
// Figure 6 (volatile replica on DRAM) and Figure 7 (both replicas on NVMM)
// is a Panel spec that builds the competitors, prefills them to half the
// key range, drives the workload, and prints the measured series as a
// table in Mops/s.
package harness

import (
	"fmt"
	"sync/atomic"

	"mirror/internal/cmapkv"
	"mirror/internal/durablequeue"
	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
	"mirror/internal/workload"
	"mirror/internal/zuriel"
)

// Structure names used by panels.
const (
	StList     = "list"
	StHash     = "hashtable"
	StBST      = "bst"
	StSkipList = "skiplist"
	// StQueue names the Michael–Scott durable queue in the fence-combining
	// ablation panels. It is not part of the set-structure panels: its
	// operations are Enqueue/Dequeue, driven through update-only mixes.
	StQueue = "queue"
)

// Competitor builds one line of a panel.
type Competitor struct {
	Label string
	// Make creates a fresh instance sized for a key range and returns
	// the workload target driving it.
	Make func(o Options, keyRange int) workload.Target
}

// engineWorker adapts a structures.Set to workload.Worker.
type engineWorker struct {
	set structures.Set
	e   engine.Engine
	c   *engine.Ctx
}

func (w *engineWorker) Insert(key, val uint64) bool { return w.set.Insert(w.c, key, val) }
func (w *engineWorker) Delete(key uint64) bool      { return w.set.Delete(w.c, key) }
func (w *engineWorker) Contains(key uint64) bool    { return w.set.Contains(w.c, key) }

// detectWorker routes every operation through a detectable bracket via
// engine.ExactlyOnce — the Options.Detect ablation path, measuring the
// operation-descriptor overhead. Each worker owns one descriptor slot for
// the duration of a measured point; the per-client sequence counters are
// shared across the thread sweep so sequence numbers stay monotone when a
// slot is reused by a later point's worker.
type detectWorker struct {
	set    structures.Set
	e      engine.Engine
	c      *engine.Ctx
	client int
	seq    *atomic.Uint64
}

func (w *detectWorker) run(kind, key, val uint64, deferAnnounce bool, f func(c *engine.Ctx) bool) bool {
	out := engine.ExactlyOnce(w.e, w.c, engine.DetectOp{
		Client: w.client, Seq: w.seq.Add(1),
		Kind: kind, Key: key, Val: val,
		DeferAnnounce: deferAnnounce, Run: f,
	}, true)
	return out.Result
}

func (w *detectWorker) Insert(key, val uint64) bool {
	return w.run(engine.DetectInsert, key, val, true,
		func(c *engine.Ctx) bool { return w.set.Insert(c, key, val) })
}

func (w *detectWorker) Delete(key uint64) bool {
	return w.run(engine.DetectDelete, key, 0, false,
		func(c *engine.Ctx) bool { return w.set.Delete(c, key) })
}

func (w *detectWorker) Contains(key uint64) bool {
	return w.run(engine.DetectContains, key, 0, true,
		func(c *engine.Ctx) bool { return w.set.Contains(c, key) })
}

// deviceWords sizes the engine devices for a structure holding up to
// keyRange live keys, with slack for class rounding, churn, and epochs.
func deviceWords(structure string, kind engine.Kind, keyRange int) int {
	cellW := 1
	if kind == engine.MirrorDRAM || kind == engine.MirrorNVMM {
		cellW = 2
	}
	var perKey int
	switch structure {
	case StList:
		perKey = 4 * cellW // 3 fields rounded
	case StHash:
		perKey = 4*cellW + 2*cellW // node + bucket-array share
	case StBST:
		perKey = 2 * 4 * cellW // leaf + internal
	case StSkipList:
		perKey = 8 * cellW // avg tower height 2, 5 fields rounded
	default:
		panic("harness: unknown structure " + structure)
	}
	words := keyRange*perKey*3 + 1<<18
	if words < 1<<20 {
		words = 1 << 20
	}
	return words
}

// bucketsFor picks the hash bucket count for a key range (short chains).
func bucketsFor(keyRange int) int {
	b := 1
	for b < keyRange/2 {
		b <<= 1
	}
	return b
}

// buildEngineTarget constructs one structure under one engine and returns
// both the workload target and the engine itself, so callers that need the
// engine's counters and protocol statistics (the JSON benchmark matrix) can
// read them around a run.
func buildEngineTarget(kind engine.Kind, structure string, o Options, keyRange int) (workload.Target, engine.Engine) {
	clients := 0
	if o.Detect {
		// One descriptor slot per concurrent worker at the widest point of
		// the thread sweep; worker ids are assigned modulo this, so ids are
		// distinct within any single measured point.
		for _, th := range o.Threads {
			if th > clients {
				clients = th
			}
		}
		if clients == 0 {
			clients = 1
		}
	}
	// Per-shard device sizing: the hash partition spreads the key range
	// about evenly, so each shard's device holds keyRange/Shards keys plus
	// 25% slack for partition imbalance. Config.Words is per shard.
	sizeRange := keyRange
	if o.Shards > 1 {
		sizeRange = keyRange/o.Shards + keyRange/(4*o.Shards)
		if sizeRange < 64 {
			sizeRange = 64
		}
	}
	e := engine.New(engine.Config{
		Kind:         kind,
		Words:        deviceWords(structure, kind, sizeRange),
		Latency:      o.Latency,
		Track:        false, // benchmarks never crash
		NoElide:      o.NoElide,
		Combine:      o.Combine,
		Clients:      clients,
		Shards:       o.Shards,
		NUMARemoteNS: o.NUMARemoteNS,
	})
	setup := e.NewCtx()
	var mk func(c *engine.Ctx) structures.Set
	if se, ok := e.(*engine.Sharded); ok {
		sh := structures.NewSharded(se, setup, func(sub engine.Engine, sc *engine.Ctx) structures.Set {
			switch structure {
			case StList:
				return list.New(sub, 0)
			case StHash:
				return hashtable.New(sub, sc, bucketsFor(sizeRange))
			case StBST:
				return bst.New(sub, sc)
			case StSkipList:
				return skiplist.New(sub, sc)
			default:
				panic("harness: unknown structure " + structure)
			}
		})
		mk = func(*engine.Ctx) structures.Set { return sh }
	} else {
		switch structure {
		case StList:
			l := list.New(e, 0)
			mk = func(*engine.Ctx) structures.Set { return l }
		case StHash:
			h := hashtable.New(e, setup, bucketsFor(keyRange))
			mk = func(*engine.Ctx) structures.Set { return h }
		case StBST:
			b := bst.New(e, setup)
			mk = func(*engine.Ctx) structures.Set { return b }
		case StSkipList:
			s := skiplist.New(e, setup)
			mk = func(*engine.Ctx) structures.Set { return s }
		default:
			panic("harness: unknown structure " + structure)
		}
	}
	var workerIDs atomic.Uint64
	seqs := make([]atomic.Uint64, clients)
	return workload.Target{
		Name:          fmt.Sprintf("%s/%s", structure, kind),
		SortedPrefill: structure == StList,
		NewWorker: func() workload.Worker {
			c := e.NewCtx()
			if clients > 0 {
				id := int(workerIDs.Add(1)-1) % clients
				return &detectWorker{set: mk(c), e: e, c: c, client: id, seq: &seqs[id]}
			}
			return &engineWorker{set: mk(c), e: e, c: c}
		},
	}, e
}

// engineCompetitor builds one structure under one engine.
func engineCompetitor(kind engine.Kind, structure string) Competitor {
	return Competitor{
		Label: kind.String(),
		Make: func(o Options, keyRange int) workload.Target {
			t, _ := buildEngineTarget(kind, structure, o, keyRange)
			return t
		},
	}
}

// queueWorker adapts the durable Michael–Scott queue to the workload
// interface: Insert enqueues the key (always succeeds), Delete dequeues
// (false on empty). Contains is a no-op — queue points run update-only
// mixes, where a balanced enqueue/dequeue split keeps the length stable
// around the prefill.
type queueWorker struct {
	q *durablequeue.Queue
	c *durablequeue.Ctx
}

func (w *queueWorker) Insert(key, val uint64) bool { w.q.Enqueue(w.c, key); return true }
func (w *queueWorker) Delete(key uint64) bool      { _, ok := w.q.Dequeue(w.c); return ok }
func (w *queueWorker) Contains(key uint64) bool    { return false }

// buildQueueTarget constructs the durable queue sized for a prefill of
// keyRange/2 elements and returns the workload target plus the queue, so
// the JSON matrix can read its persistence and combining counters around
// a run. The queue is its own persistent device (not an engine.Kind);
// Options.Latency selects the NVMM latency model and Options.NoElide /
// Options.Combine select the write-path ablation, exactly as for the
// engine-backed structures.
func buildQueueTarget(o Options, keyRange int) (workload.Target, *durablequeue.Queue) {
	words := keyRange*4*3 + 1<<18
	if words < 1<<20 {
		words = 1 << 20
	}
	q := durablequeue.New(durablequeue.Config{
		Words:   words,
		Latency: o.Latency,
		Track:   false, // benchmarks never crash
		NoElide: o.NoElide,
		Combine: o.Combine,
	})
	return workload.Target{
		Name: "queue/DurableQueue",
		NewWorker: func() workload.Worker {
			return &queueWorker{q: q, c: q.NewCtx()}
		},
	}, q
}

// zurielWorker adapts a zuriel.Set.
type zurielWorker struct {
	set zuriel.Set
	c   *zuriel.Ctx
}

func (w *zurielWorker) Insert(key, val uint64) bool { return w.set.Insert(w.c, key, val) }
func (w *zurielWorker) Delete(key uint64) bool      { return w.set.Delete(w.c, key) }
func (w *zurielWorker) Contains(key uint64) bool    { return w.set.Contains(w.c, key) }

// zurielCompetitor builds Link-Free or SOFT (hashed when the structure is
// a hash table).
func zurielCompetitor(soft bool, structure string) Competitor {
	label := "LinkFree"
	if soft {
		label = "SOFT"
	}
	return Competitor{
		Label: label,
		Make: func(o Options, keyRange int) workload.Target {
			buckets := 0
			if structure == StHash {
				buckets = bucketsFor(keyRange)
			}
			words := keyRange*4*4 + buckets + 1<<18
			if words < 1<<20 {
				words = 1 << 20
			}
			cfg := zuriel.Config{Words: words, Buckets: buckets, Latency: o.Latency}
			var s zuriel.Set
			if soft {
				s = zuriel.NewSoft(cfg)
			} else {
				s = zuriel.NewLinkFree(cfg)
			}
			return workload.Target{
				Name:          fmt.Sprintf("%s/%s", structure, label),
				SortedPrefill: structure == StList,
				NewWorker: func() workload.Worker {
					return &zurielWorker{set: s, c: s.NewCtx()}
				},
			}
		},
	}
}

// cmapWorker adapts the lock-based map; its Insert has Put (upsert)
// semantics as in pmemkv.
type cmapWorker struct {
	m *cmapkv.Map
	c *cmapkv.Ctx
}

func (w *cmapWorker) Insert(key, val uint64) bool { return w.m.Put(w.c, key, val) }
func (w *cmapWorker) Delete(key uint64) bool      { return w.m.Delete(w.c, key) }
func (w *cmapWorker) Contains(key uint64) bool    { return w.m.Contains(w.c, key) }

// cmapCompetitor builds the pmemkv-style lock-based hash map.
func cmapCompetitor() Competitor {
	return Competitor{
		Label: "Cmap",
		Make: func(o Options, keyRange int) workload.Target {
			words := keyRange*4*4 + 1<<18
			if words < 1<<20 {
				words = 1 << 20
			}
			m := cmapkv.New(cmapkv.Config{
				Words:   words,
				Buckets: bucketsFor(keyRange),
				Latency: o.Latency,
			})
			return workload.Target{
				Name: "hashtable/Cmap",
				NewWorker: func() workload.Worker {
					return &cmapWorker{m: m, c: m.NewCtx()}
				},
			}
		},
	}
}

// competitorsFor returns the paper's competitor line-up for a structure.
// mirrorKind selects MirrorDRAM (Figure 6) or MirrorNVMM (Figure 7).
func competitorsFor(structure string, mirrorKind engine.Kind) []Competitor {
	cs := []Competitor{
		engineCompetitor(engine.OrigDRAM, structure),
		engineCompetitor(engine.OrigNVMM, structure),
		engineCompetitor(engine.Izraelevitz, structure),
		engineCompetitor(engine.NVTraverse, structure),
		engineCompetitor(mirrorKind, structure),
	}
	if structure == StList || structure == StHash {
		cs = append(cs,
			zurielCompetitor(false, structure),
			zurielCompetitor(true, structure))
	}
	return cs
}
