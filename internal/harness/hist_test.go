package harness

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// oraclePercentile is the nearest-rank percentile on a sorted slice — the
// reference the histogram math is pinned against.
func oraclePercentile(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkAgainstOracle records samples into a Hist and asserts every queried
// percentile is within one sub-bucket width (~3.2% relative, +1 absolute
// for integer rounding) of the sorted-slice oracle.
func checkAgainstOracle(t *testing.T, name string, samples []uint64) {
	t.Helper()
	var h Hist
	for _, v := range samples {
		h.Record(v)
	}
	sorted := append([]uint64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		want := oraclePercentile(sorted, p)
		got := h.Percentile(p)
		tol := uint64(float64(want)/histSubs) + 1
		if got+tol < want || got > want+tol {
			t.Errorf("%s: p%v = %d, oracle %d (tolerance %d)", name, p, got, want, tol)
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("%s: count %d, want %d", name, h.Count(), len(samples))
	}
	if len(samples) > 0 {
		if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
			t.Errorf("%s: min/max %d/%d, want %d/%d",
				name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
		}
	}
}

func TestHistAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	uniform := make([]uint64, 10000)
	for i := range uniform {
		uniform[i] = uint64(rng.Intn(5_000_000))
	}
	// Log-normal-ish latency shape: a tight body with a heavy tail, the
	// distribution p999 exists to characterize.
	tail := make([]uint64, 10000)
	for i := range tail {
		v := 800 + rng.Intn(400)
		if rng.Intn(100) == 0 {
			v *= 50 + rng.Intn(200)
		}
		tail[i] = uint64(v)
	}
	small := []uint64{3, 1, 2, 0, 31, 30, 7} // all in the exact bucket
	big := make([]uint64, 1000)
	for i := range big {
		big[i] = uint64(rng.Int63n(1 << 40))
	}
	checkAgainstOracle(t, "uniform", uniform)
	checkAgainstOracle(t, "tail", tail)
	checkAgainstOracle(t, "small-exact", small)
	checkAgainstOracle(t, "big", big)
}

func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if h.Percentile(50) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must answer zero everywhere")
	}
	h.Record(777)
	for _, p := range []float64{0.001, 50, 99.9, 100} {
		got := h.Percentile(p)
		if got < 752 || got > 777 { // one sub-bucket width below 777
			t.Fatalf("one sample, p%v = %d, want ~777", p, got)
		}
	}
	// Values below histSubs are exact, regardless of percentile.
	var h2 Hist
	h2.Record(5)
	if got := h2.Percentile(50); got != 5 {
		t.Fatalf("exact-bucket sample: p50 = %d, want 5", got)
	}
	// Identical samples: every percentile is that value.
	var h3 Hist
	for i := 0; i < 100; i++ {
		h3.Record(1 << 20)
	}
	for _, p := range []float64{1, 50, 99.9} {
		got := h3.Percentile(p)
		if got != 1<<20 {
			t.Fatalf("constant samples: p%v = %d, want %d", p, got, 1<<20)
		}
	}
}

func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all []uint64
	var merged Hist
	for w := 0; w < 4; w++ {
		var h Hist
		for i := 0; i < 2500; i++ {
			v := uint64(rng.Intn(1_000_000))
			h.Record(v)
			all = append(all, v)
		}
		merged.Merge(&h)
	}
	var direct Hist
	for _, v := range all {
		direct.Record(v)
	}
	if merged.Count() != direct.Count() || merged.Min() != direct.Min() || merged.Max() != direct.Max() {
		t.Fatal("merge lost samples or extremes")
	}
	for _, p := range []float64{50, 99, 99.9} {
		if merged.Percentile(p) != direct.Percentile(p) {
			t.Fatalf("p%v: merged %d != direct %d", p, merged.Percentile(p), direct.Percentile(p))
		}
	}
	// Merging an empty histogram must not disturb min.
	before := merged.Min()
	merged.Merge(&Hist{})
	if merged.Min() != before {
		t.Fatal("empty merge clobbered min")
	}
}

func TestHistIndexRanges(t *testing.T) {
	// Every slot's range must be contiguous with its neighbors and map
	// back to itself.
	lastHi := ^uint64(0)
	for idx := 0; idx < histSlots; idx++ {
		lo, hi := histRange(idx)
		if lo != lastHi+1 {
			t.Fatalf("slot %d starts at %d, want %d", idx, lo, lastHi+1)
		}
		if histIndex(lo) != idx || histIndex(hi) != idx {
			t.Fatalf("slot %d range [%d,%d] does not map back to itself", idx, lo, hi)
		}
		lastHi = hi
		if hi == 1<<63-1+1<<63 { // ^uint64(0)
			break
		}
		if idx == histSlots-1 && hi < ^uint64(0) {
			t.Fatalf("last slot ends at %d, not covering uint64 range", hi)
		}
	}
}
