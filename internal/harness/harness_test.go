package harness

import (
	"strings"
	"testing"
	"time"

	"mirror/internal/engine"
	"mirror/internal/workload"
)

// fastOptions keeps unit-test panel runs quick: tiny windows, no latency
// model, heavy scaling.
func fastOptions() Options {
	return Options{
		Duration: 10 * time.Millisecond,
		Scale:    1 << 14,
		Threads:  []int{1, 2},
		Latency:  false,
		Seed:     7,
	}
}

func TestPanelsComplete(t *testing.T) {
	panels := Panels()
	want := []string{
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
		"fig6g", "fig6h", "fig6i", "fig6j", "fig6k", "fig6l",
		"fig6m", "fig6n", "fig6o",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f",
		"fig7g", "fig7h", "fig7i", "fig7j", "fig7k", "fig7l",
	}
	if len(panels) != len(want) {
		t.Fatalf("got %d panels, want %d", len(panels), len(want))
	}
	have := make(map[string]Panel)
	for _, p := range panels {
		have[p.ID] = p
	}
	for _, id := range want {
		if _, ok := have[id]; !ok {
			t.Errorf("missing panel %s", id)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("fig6a"); !ok {
		t.Error("fig6a not found")
	}
	if _, ok := Find("fig9z"); ok {
		t.Error("phantom panel found")
	}
}

func TestPanelCompetitorLineups(t *testing.T) {
	p, _ := Find("fig6a")
	labels := map[string]bool{}
	for _, c := range p.Competitors {
		labels[c.Label] = true
	}
	for _, want := range []string{"OrigDRAM", "OrigNVMM", "Izraelevitz", "NVTraverse", "Mirror", "LinkFree", "SOFT"} {
		if !labels[want] {
			t.Errorf("fig6a missing competitor %s", want)
		}
	}
	p7, _ := Find("fig7a")
	found := false
	for _, c := range p7.Competitors {
		if c.Label == "MirrorNVMM" {
			found = true
		}
		if c.Label == "Mirror" {
			t.Error("fig7a must use MirrorNVMM, not Mirror")
		}
	}
	if !found {
		t.Error("fig7a missing MirrorNVMM")
	}
	bstPanel, _ := Find("fig6g")
	for _, c := range bstPanel.Competitors {
		if c.Label == "LinkFree" || c.Label == "SOFT" {
			t.Error("BST panel must not include the set-only hand-made competitors")
		}
	}
	m, _ := Find("fig6m")
	if len(m.Competitors) != 2 || m.Competitors[1].Label != "Cmap" {
		t.Errorf("fig6m competitors = %v", m.Competitors)
	}
}

func TestRunThreadsPanel(t *testing.T) {
	p, _ := Find("fig6a")
	tab := p.Run(fastOptions())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (thread sweep 1,2)", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != len(tab.Columns) {
			t.Fatalf("row width %d != columns %d", len(r.Cells), len(tab.Columns))
		}
		for i, v := range r.Cells {
			if v <= 0 {
				t.Errorf("threads=%d %s: zero throughput", r.X, tab.Columns[i])
			}
		}
	}
	out := tab.Format()
	if !strings.Contains(out, "fig6a") || !strings.Contains(out, "Mirror") {
		t.Errorf("Format output missing headers:\n%s", out)
	}
}

func TestRunUpdatesPanel(t *testing.T) {
	p, _ := Find("fig6n")
	o := fastOptions()
	tab := p.Run(o)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 update points", len(tab.Rows))
	}
	if _, ok := tab.Cell(0, "Cmap"); !ok {
		t.Error("Cell lookup failed")
	}
}

func TestRunSizePanelScaled(t *testing.T) {
	p, _ := Find("fig6e")
	o := fastOptions()
	o.Threads = []int{2}
	tab := p.Run(o)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 sizes", len(tab.Rows))
	}
	// X column keeps paper-unit sizes even when runs are scaled.
	if tab.Rows[0].X != 8<<10 {
		t.Errorf("first size = %d, want %d", tab.Rows[0].X, 8<<10)
	}
}

func TestDeviceWordsSane(t *testing.T) {
	for _, st := range []string{StList, StHash, StBST, StSkipList} {
		for _, k := range []engine.Kind{engine.OrigDRAM, engine.MirrorDRAM} {
			w := deviceWords(st, k, 100000)
			if w < 100000 {
				t.Errorf("%s/%v: words %d too small", st, k, w)
			}
		}
	}
	if bucketsFor(100)&(bucketsFor(100)-1) != 0 {
		t.Error("bucketsFor must return a power of two")
	}
}

func TestMixesMatchPaper(t *testing.T) {
	p, _ := Find("fig6a")
	if p.Mix != workload.Mix801010 {
		t.Errorf("fig6a mix = %+v", p.Mix)
	}
	m, _ := Find("fig6m")
	if m.Mix != workload.UpdateMix(20) {
		t.Errorf("fig6m mix = %+v, want 80/20", m.Mix)
	}
}

func TestEnvironmentNote(t *testing.T) {
	if !strings.Contains(EnvironmentNote(), "GOMAXPROCS") {
		t.Error("environment note should mention GOMAXPROCS")
	}
}

func TestMeasureSpace(t *testing.T) {
	rep := MeasureSpace(StList, 500)
	if len(rep.Rows) != len(engine.Kinds()) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(engine.Kinds()))
	}
	var mirrorBPK, origBPK float64
	for _, r := range rep.Rows {
		if r.BytesPerKey <= 0 {
			t.Errorf("%s: zero footprint", r.Engine)
		}
		switch r.Engine {
		case "Mirror":
			mirrorBPK = r.BytesPerKey
			if r.Replicas != 2 {
				t.Errorf("Mirror replicas = %d", r.Replicas)
			}
		case "OrigDRAM":
			origBPK = r.BytesPerKey
		}
	}
	// Mirror keeps two replicas of two-word cells: at least 3x the
	// original's footprint (§6.2.5's "double the memory" plus sequence
	// words, modulo size-class rounding).
	if mirrorBPK < 2*origBPK {
		t.Errorf("Mirror %.1f B/key vs Orig %.1f B/key: expected >= 2x", mirrorBPK, origBPK)
	}
	if !strings.Contains(rep.Format(), "bytes/key") {
		t.Error("Format missing header")
	}
}

func TestChart(t *testing.T) {
	p, _ := Find("fig6a")
	tab := p.Run(fastOptions())
	chart := tab.Chart()
	if !strings.Contains(chart, "legend:") || !strings.Contains(chart, "Mops/s") {
		t.Errorf("chart missing parts:\n%s", chart)
	}
	empty := &Table{PanelID: "x", Title: "t", Columns: []string{"a"}}
	if !strings.Contains(empty.Chart(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestMeasureRecovery(t *testing.T) {
	rep := MeasureRecovery([]int{2000}, []int{1, 4})
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d, want 5 engines x 2 parallelisms", len(rep.Rows))
	}
	perPar := map[int]int{}
	for _, r := range rep.Rows {
		if r.Elapsed <= 0 {
			t.Errorf("%s: zero recovery time", r.Engine)
		}
		if r.KeysPerMS() <= 0 {
			t.Errorf("%s par=%d: zero recovery throughput", r.Engine, r.Parallelism)
		}
		perPar[r.Parallelism]++
	}
	if perPar[1] != 5 || perPar[4] != 5 {
		t.Fatalf("parallelism coverage: %v", perPar)
	}
	if !strings.Contains(rep.Format(), "keys/ms") || !strings.Contains(rep.Format(), "par") {
		t.Error("Format missing header")
	}
}
