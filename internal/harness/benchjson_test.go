package harness

import (
	"testing"
	"time"

	"mirror/internal/engine"
)

// TestBenchMatrixJSON runs a tiny matrix and round-trips it through the
// JSON format: marshal, parse, validate, and spot-check the points.
func TestBenchMatrixJSON(t *testing.T) {
	o := Options{
		Duration: 10 * time.Millisecond,
		Scale:    4096,
		Latency:  false,
		Seed:     1,
	}
	kinds := []engine.Kind{engine.OrigDRAM, engine.MirrorDRAM}
	r := RunBenchMatrix(o, []string{StHash}, kinds, []int{1, 2})
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if want := 1 * len(kinds) * 2; len(r.Points) != want {
		t.Fatalf("points = %d, want %d", len(r.Points), want)
	}
	data, err := MarshalReport(r)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	if len(back.Points) != len(r.Points) || back.Schema != BenchSchema {
		t.Fatalf("round trip lost data: %d points schema %q", len(back.Points), back.Schema)
	}
	for _, p := range back.Points {
		if p.Ops == 0 {
			t.Errorf("%s/%s/t%d: zero ops", p.Structure, p.Engine, p.Threads)
		}
		switch p.Engine {
		case "Mirror":
			if p.Flushes == 0 || p.Fences == 0 {
				t.Errorf("Mirror point has no persistence instructions (flushes=%d fences=%d)", p.Flushes, p.Fences)
			}
		case "OrigDRAM":
			if p.Flushes != 0 || p.Fences != 0 {
				t.Errorf("OrigDRAM point should issue no persistence instructions (flushes=%d fences=%d)", p.Flushes, p.Fences)
			}
		}
	}
}

// TestParseReportRejectsGarbage checks the validator actually gates.
func TestParseReportRejectsGarbage(t *testing.T) {
	if _, err := ParseReport([]byte(`{`)); err == nil {
		t.Error("malformed JSON should fail")
	}
	if _, err := ParseReport([]byte(`{"schema":"other/1","points":[]}`)); err == nil {
		t.Error("wrong schema should fail")
	}
	if _, err := ParseReport([]byte(`{"schema":"mirror-bench/1","points":[]}`)); err == nil {
		t.Error("empty points should fail")
	}
	bad := `{"schema":"mirror-bench/1","points":[],"recovery":[{"engine":"Mirror","keys":10,"parallelism":0,"elapsed_ns":5,"keys_per_ms":1}]}`
	if _, err := ParseReport([]byte(bad)); err == nil {
		t.Error("zero recovery parallelism should fail")
	}
}

// TestRecoveryJSONRoundTrip serializes a recovery sweep into the report's
// recovery section and round-trips it through the validator.
func TestRecoveryJSONRoundTrip(t *testing.T) {
	rep := MeasureRecovery([]int{500}, []int{1, 2})
	r := &BenchReport{
		Schema:   BenchSchema,
		Recovery: RecoveryPoints(rep),
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if want := len(rep.Rows); len(r.Recovery) != want {
		t.Fatalf("recovery points = %d, want %d", len(r.Recovery), want)
	}
	data, err := MarshalReport(r)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	for i, p := range back.Recovery {
		if p != r.Recovery[i] {
			t.Fatalf("recovery point %d changed in round trip: %+v != %+v", i, p, r.Recovery[i])
		}
	}
}
