package harness

import (
	"fmt"
	"strings"
)

// Chart renders the table as a rough ASCII chart, one mark per competitor
// per row, on a shared linear throughput axis — enough to eyeball the
// shape the corresponding paper figure plots.
func (t *Table) Chart() string {
	const width = 64
	max := 0.0
	for _, r := range t.Rows {
		for _, v := range r.Cells {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		return "(no data)\n"
	}
	marks := make([]byte, len(t.Columns))
	for i := range marks {
		marks[i] = byte('1' + i%9)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.PanelID, t.Title)
	fmt.Fprintf(&b, "0 %s %.3f Mops/s\n", strings.Repeat("-", width), max)
	for _, r := range t.Rows {
		// Compose one line: place each competitor's mark at its scaled
		// position; collisions keep the later mark.
		line := make([]byte, width+1)
		for i := range line {
			line[i] = ' '
		}
		for i, v := range r.Cells {
			pos := int(v / max * float64(width))
			if pos > width {
				pos = width
			}
			line[pos] = marks[i]
		}
		fmt.Fprintf(&b, "%-8d|%s|\n", r.X, string(line))
	}
	b.WriteString("legend: ")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%c=%s ", marks[i], c)
	}
	b.WriteByte('\n')
	return b.String()
}
