package linearize

import (
	"testing"
)

// decodeOps turns fuzz bytes into a bounded, well-formed operation list:
// 4 bytes per op (kind, key, result+inv, res-delta), a 2-key keyspace to
// force conflicts, and timestamps in a small range so intervals overlap.
func decodeOps(data []byte, max int) ([]Op, []byte) {
	var ops []Op
	for len(data) >= 4 && len(ops) < max {
		inv := uint64(data[2]>>1) % 12
		ops = append(ops, Op{
			Kind:   OpKind(data[0] % 3),
			Key:    uint64(data[1] % 2),
			Result: data[2]&1 == 1,
			Inv:    inv,
			Res:    inv + 1 + uint64(data[3])%12,
		})
		data = data[4:]
	}
	return ops, data
}

// permutations returns all orderings of [0, n).
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var build func()
	build = func() {
		if len(perm) == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				perm = append(perm, i)
				build()
				perm = perm[:len(perm)-1]
				used[i] = false
			}
		}
	}
	build()
	return out
}

// validSeq checks one candidate order the slow, obvious way: pairwise
// real-time (an op whose response precedes another's invocation comes
// first) and sequential set legality. It returns the reached final state.
func validSeq(ops []Op, perm []int, initial map[uint64]bool) (bool, map[uint64]bool) {
	for a := 0; a < len(perm); a++ {
		for b := a + 1; b < len(perm); b++ {
			if ops[perm[b]].Res < ops[perm[a]].Inv {
				return false, nil
			}
		}
	}
	s := make(map[uint64]bool, len(initial))
	for k, v := range initial {
		s[k] = v
	}
	for _, i := range perm {
		if !apply(s, ops[i]) {
			return false, nil
		}
	}
	return true, s
}

// oracleCheck is the brute-force linearizability oracle: try every
// permutation.
func oracleCheck(ops []Op, initial map[uint64]bool) bool {
	for _, perm := range permutations(len(ops)) {
		if ok, _ := validSeq(ops, perm, initial); ok {
			return true
		}
	}
	return false
}

// oracleDurable is the brute-force durable-linearizability oracle: every
// subset of the pending writes taken as successful, every interleaving,
// and the reached state must equal the recovered one.
func oracleDurable(done, pending []Op, initial, final map[uint64]bool) bool {
	target := setState(final)
	var writes []Op
	for _, op := range pending {
		if op.Kind != OpContains {
			eff := op
			eff.Result = true
			writes = append(writes, eff)
		}
	}
	for mask := 0; mask < 1<<len(writes); mask++ {
		combined := append([]Op(nil), done...)
		for i, op := range writes {
			if mask&(1<<i) != 0 {
				combined = append(combined, op)
			}
		}
		for _, perm := range permutations(len(combined)) {
			if ok, s := validSeq(combined, perm, initial); ok && setState(s) == target {
				return true
			}
		}
	}
	return false
}

func FuzzCheck(f *testing.F) {
	f.Add([]byte{0, 0, 3, 0, 1, 0, 2, 1})          // insert ok, delete ok, sequential
	f.Add([]byte{2, 0, 3, 9, 0, 0, 3, 9})          // overlapping contains/insert
	f.Add([]byte{0, 1, 1, 1, 0, 1, 3, 1, 1, 1, 2}) // double insert same key
	f.Add([]byte{2, 0, 3, 0, 2, 0, 2, 0, 1, 0, 5}) // contains true with no insert
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, _ := decodeOps(data, 6)
		h := &History{Ops: ops}
		got := Check(h, nil) == nil
		want := oracleCheck(ops, nil)
		if got != want {
			t.Fatalf("Check = %v, oracle = %v for ops %+v", got, want, ops)
		}
	})
}

func FuzzCheckDurable(f *testing.F) {
	f.Add([]byte{1, 0, 0, 3, 0, 1})                   // 1 done, 1 pending insert, final {0}
	f.Add([]byte{17, 0, 0, 3, 0, 1, 0, 2, 0})         // done insert + pending delete
	f.Add([]byte{2, 0, 0, 3, 0, 1, 1, 5, 2, 0, 6, 0}) // 2 done, empty final
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nDone := 1 + int(data[0])%4
		nPend := int(data[0]>>4) % 3
		finalBits := data[1]
		done, rest := decodeOps(data[2:], nDone)
		var pending []Op
		for len(rest) >= 2 && len(pending) < nPend {
			pending = append(pending, Op{
				Kind: OpKind(rest[0] % 3),
				Key:  uint64(rest[1] % 2),
				Inv:  uint64(rest[1]>>1) % 12,
				Res:  ^uint64(0),
			})
			rest = rest[2:]
		}
		final := map[uint64]bool{0: finalBits&1 != 0, 1: finalBits&2 != 0}
		h := &History{Ops: done, Pending: pending}
		got := CheckDurable(h, nil, final) == nil
		want := oracleDurable(done, pending, nil, final)
		if got != want {
			t.Fatalf("CheckDurable = %v, oracle = %v for done %+v pending %+v final %v",
				got, want, done, pending, final)
		}
	})
}

// TestCheckDurable pins the checker's crash semantics on hand-built
// histories before the fuzzer ever runs.
func TestCheckDurable(t *testing.T) {
	ins := func(key uint64, inv, res uint64) Op {
		return Op{Kind: OpInsert, Key: key, Result: true, Inv: inv, Res: res}
	}
	cases := []struct {
		name    string
		done    []Op
		pending []Op
		final   map[uint64]bool
		ok      bool
	}{
		{"completed insert survives", []Op{ins(1, 1, 2)}, nil, map[uint64]bool{1: true}, true},
		{"completed insert lost", []Op{ins(1, 1, 2)}, nil, map[uint64]bool{}, false},
		{"pending insert took effect", nil, []Op{{Kind: OpInsert, Key: 1, Inv: 1, Res: ^uint64(0)}}, map[uint64]bool{1: true}, true},
		{"pending insert vanished", nil, []Op{{Kind: OpInsert, Key: 1, Inv: 1, Res: ^uint64(0)}}, map[uint64]bool{}, true},
		{"state from nowhere", nil, nil, map[uint64]bool{3: true}, false},
		{"pending delete of completed insert", []Op{ins(2, 1, 2)},
			[]Op{{Kind: OpDelete, Key: 2, Inv: 3, Res: ^uint64(0)}}, map[uint64]bool{}, true},
		{"pending cannot precede its invocation", []Op{ins(2, 5, 6)},
			[]Op{{Kind: OpDelete, Key: 2, Inv: 1, Res: ^uint64(0)}}, map[uint64]bool{}, true},
	}
	for _, tc := range cases {
		h := &History{Ops: tc.done, Pending: tc.pending}
		err := CheckDurable(h, nil, tc.final)
		if (err == nil) != tc.ok {
			t.Errorf("%s: CheckDurable = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestCheckDurableRealTimeOrder: op B responded before op A was invoked,
// so A cannot linearize first — a recovered state explicable only by
// reordering them must be rejected.
func TestCheckDurableRealTimeOrder(t *testing.T) {
	h := &History{Ops: []Op{
		{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 2},
		{Kind: OpDelete, Key: 1, Result: false, Inv: 5, Res: 6}, // failed delete AFTER the insert: contradiction
	}}
	if err := CheckDurable(h, nil, map[uint64]bool{1: true}); err == nil {
		t.Fatal("failed delete after completed insert of the same key should not linearize")
	}
}
