// Package linearize is an offline linearizability checker for concurrent
// set histories (Wing–Gong search with visited-state memoization, in the
// style of Lowe's refinements). The crash harness checks durable
// linearizability against per-key single-writer histories, which is exact
// but restricted; this checker validates *full* linearizability of
// arbitrary concurrent histories — any thread may operate on any key — at
// the cost of bounded history length.
//
// A history is a sequence of operation records with invocation/response
// timestamps drawn from one global atomic counter. The checker searches
// for a total order of operations that (a) respects real-time order — an
// operation that responded before another was invoked must be linearized
// first — and (b) is legal for sequential set semantics, including each
// operation's observed return value.
package linearize

import (
	"fmt"
	"sort"
	"sync/atomic"

	"mirror/internal/engine"
	"mirror/internal/structures"
)

// OpKind enumerates set operations.
type OpKind uint8

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpContains
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "contains"
	}
}

// Op is one recorded operation.
type Op struct {
	Kind     OpKind
	Key      uint64
	Result   bool   // returned value (presence/success)
	Inv, Res uint64 // global timestamps
	Thread   int
	// Ticket is the thread's combine-buffer commit ticket at response time
	// (Recorder.TicketFn); 0 when the engine does not combine. A completed
	// op whose ticket is above its thread's drained watermark at the crash
	// was linearized but possibly never fenced — CheckDurableBuffered lets
	// it vanish.
	Ticket uint64
}

// History is a recorded concurrent execution. Checkable histories hold at
// most 64 operations (the search uses a bitmask).
type History struct {
	clock atomic.Uint64
	mu    chan struct{} // 1-slot semaphore guarding Ops and Pending
	Ops   []Op
	// Pending holds operations cut by a crash: invoked, never responded.
	// Their Res is ^uint64(0) (they constrain no one's real-time order)
	// and their Result is meaningless. Check ignores them; CheckDurable
	// lets each one either take effect or vanish.
	Pending []Op
}

// NewHistory creates an empty history.
func NewHistory() *History {
	h := &History{mu: make(chan struct{}, 1)}
	h.mu <- struct{}{}
	return h
}

// Record wraps a structures.Set so that every operation through the
// wrapper is appended to the history.
func (h *History) Record(set structures.Set, thread int) *Recorder {
	return &Recorder{h: h, set: set, thread: thread}
}

// Recorder is a per-thread recording wrapper.
type Recorder struct {
	h      *History
	set    structures.Set
	thread int
	// TicketFn, when set, is called after each operation returns and
	// stamps Op.Ticket with the thread's combine-buffer commit ticket
	// (engine.CombineTickets). Leave nil for non-combining engines.
	TicketFn func() uint64
}

func (r *Recorder) record(kind OpKind, key uint64, f func() bool) bool {
	inv := r.h.clock.Add(1)
	// recorded flips only once the response is actually in Ops — inside
	// the critical section, after the append. Flipping it any earlier
	// opens a window where a panic (the frozen device unwinding through a
	// patomic help path, or through the detectability epilogue) loses the
	// operation entirely: it would be in neither Ops nor Pending, and
	// CheckDurable would validate a history missing a real operation.
	recorded := false
	defer func() {
		if recorded {
			return
		}
		// The operation panicked — in the crash harness that means the
		// device froze mid-operation. Record it as pending (invoked, no
		// response) while the panic keeps unwinding.
		<-r.h.mu
		r.h.Pending = append(r.h.Pending, Op{
			Kind: kind, Key: key,
			Inv: inv, Res: ^uint64(0), Thread: r.thread,
		})
		r.h.mu <- struct{}{}
	}()
	result := f()
	var ticket uint64
	if r.TicketFn != nil {
		ticket = r.TicketFn()
	}
	res := r.h.clock.Add(1)
	<-r.h.mu
	r.h.Ops = append(r.h.Ops, Op{
		Kind: kind, Key: key, Result: result,
		Inv: inv, Res: res, Thread: r.thread, Ticket: ticket,
	})
	recorded = true
	r.h.mu <- struct{}{}
	return result
}

// Insert records an insert.
func (r *Recorder) Insert(c *engine.Ctx, key, val uint64) bool {
	return r.record(OpInsert, key, func() bool { return r.set.Insert(c, key, val) })
}

// Delete records a delete.
func (r *Recorder) Delete(c *engine.Ctx, key uint64) bool {
	return r.record(OpDelete, key, func() bool { return r.set.Delete(c, key) })
}

// Contains records a membership query.
func (r *Recorder) Contains(c *engine.Ctx, key uint64) bool {
	return r.record(OpContains, key, func() bool { return r.set.Contains(c, key) })
}

// CompletePending resolves one thread's crash-cut pending operation as
// having committed with the given result: the op moves from Pending to Ops,
// keeping its invocation time and taking a fresh (maximal) response time,
// so it constrains no completed operation's real-time order but must now
// take effect in any linearization. This is the history transformation a
// detectability verdict justifies (Detect == Committed with a recorded
// result). It reports whether the thread had a pending operation. Intended
// for quiesced, post-crash use.
func (h *History) CompletePending(thread int, result bool) bool {
	<-h.mu
	defer func() { h.mu <- struct{}{} }()
	op, ok := h.takePendingLocked(thread)
	if !ok {
		return false
	}
	op.Result = result
	op.Res = h.clock.Add(1)
	h.Ops = append(h.Ops, op)
	return true
}

// DropPending removes one thread's crash-cut pending operation from the
// history entirely — the transformation a Detect == NotCommitted verdict
// justifies (the operation provably never took effect, so the history must
// be checkable without it). It reports whether the thread had a pending
// operation. Intended for quiesced, post-crash use.
func (h *History) DropPending(thread int) bool {
	<-h.mu
	defer func() { h.mu <- struct{}{} }()
	_, ok := h.takePendingLocked(thread)
	return ok
}

// AppendCompleted records an operation executed outside a Recorder — e.g. a
// post-recovery exactly-once replay — as a completed op whose invocation
// follows every previously recorded response, so it must linearize after
// all of them.
func (h *History) AppendCompleted(kind OpKind, key uint64, result bool, thread int) {
	inv := h.clock.Add(1)
	res := h.clock.Add(1)
	<-h.mu
	h.Ops = append(h.Ops, Op{
		Kind: kind, Key: key, Result: result,
		Inv: inv, Res: res, Thread: thread,
	})
	h.mu <- struct{}{}
}

// takePendingLocked removes and returns the thread's pending op (threads
// run one operation at a time, so there is at most one). Callers hold mu.
func (h *History) takePendingLocked(thread int) (Op, bool) {
	for i, op := range h.Pending {
		if op.Thread == thread {
			h.Pending = append(h.Pending[:i], h.Pending[i+1:]...)
			return op, true
		}
	}
	return Op{}, false
}

// setState is a canonical encoding of a small set (sorted keys).
func setState(m map[uint64]bool) string {
	keys := make([]uint64, 0, len(m))
	for k, present := range m {
		if present {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return fmt.Sprint(keys)
}

// apply returns whether op is legal in state s, and mutates s on success.
func apply(s map[uint64]bool, op Op) bool {
	present := s[op.Key]
	switch op.Kind {
	case OpInsert:
		if op.Result == present {
			return false // insert succeeds iff absent
		}
		if op.Result {
			s[op.Key] = true
		}
	case OpDelete:
		if op.Result != present {
			return false // delete succeeds iff present
		}
		if op.Result {
			s[op.Key] = false
		}
	case OpContains:
		if op.Result != present {
			return false
		}
	}
	return true
}

func unapply(s map[uint64]bool, op Op, prev bool) {
	s[op.Key] = prev
}

// Check searches for a linearization of the history starting from the
// given initial set contents. It returns nil if one exists, or an error
// describing the failure.
func Check(h *History, initial map[uint64]bool) error {
	ops := h.Ops
	if len(ops) > 64 {
		return fmt.Errorf("linearize: history of %d ops exceeds the 64-op bound", len(ops))
	}
	state := make(map[uint64]bool, len(initial))
	for k, v := range initial {
		state[k] = v
	}
	visited := make(map[string]bool)
	var dfs func(done uint64) bool
	dfs = func(done uint64) bool {
		if done == (uint64(1)<<len(ops))-1 {
			return true
		}
		key := fmt.Sprintf("%x|%s", done, setState(state))
		if visited[key] {
			return false
		}
		visited[key] = true
		// minRes is the earliest response among unlinearized ops; only
		// ops invoked before it may linearize next (real-time order).
		minRes := ^uint64(0)
		for i, op := range ops {
			if done&(1<<i) == 0 && op.Res < minRes {
				minRes = op.Res
			}
		}
		for i, op := range ops {
			if done&(1<<i) != 0 || op.Inv > minRes {
				continue
			}
			prev := state[op.Key]
			if apply(state, op) {
				if dfs(done | 1<<i) {
					return true
				}
				unapply(state, op, prev)
			}
		}
		return false
	}
	if !dfs(0) {
		return fmt.Errorf("linearize: no valid linearization for %d ops", len(ops))
	}
	return nil
}

// CheckDurable checks durable linearizability of a crashed history against
// the state observed after recovery: there must exist a linearization in
// which every *completed* operation takes effect with its observed result
// (respecting real-time order), each crash-cut *pending* operation either
// takes effect as a successful write or vanishes entirely (the two legal
// fates of an operation with no response), and the final abstract state
// equals the recovered set contents. A completed operation whose effect is
// missing from `final` — the signature of a lost flush — has no such
// linearization, and the error says so.
func CheckDurable(h *History, initial, final map[uint64]bool) error {
	return CheckDurableBuffered(h, initial, final, nil)
}

// CheckDurableBuffered is CheckDurable under the buffered durable
// linearizability contract of a combining engine: a *completed* operation
// for which mayVanish reports true was linearized in RAM but its
// linearizing fence may still have been sitting in a per-thread combine
// buffer at the crash, so it is granted the same two fates as a crash-cut
// pending operation — vanish entirely, or take effect. Unlike a pending
// op, a surviving may-vanish op must take effect with its *recorded*
// result and respects full real-time order (its response really
// happened). Ops for which mayVanish reports false (and all of them, when
// mayVanish is nil) must take effect, exactly as in CheckDurable.
//
// Vanishing is per-operation, not per-thread-prefix: a combine drain's
// per-line crash fates can commit some of a buffer's lines and drop
// others, so buffered ops on the same thread fail independently. The
// caller derives mayVanish from per-thread commit tickets and drained
// watermarks (op.Ticket > drained[op.Thread]); an op whose ticket is at
// or below the watermark was fenced and must not vanish.
func CheckDurableBuffered(h *History, initial, final map[uint64]bool, mayVanish func(Op) bool) error {
	ops := make([]Op, 0, len(h.Ops)+len(h.Pending))
	ops = append(ops, h.Ops...)
	ops = append(ops, h.Pending...)
	nDone := len(h.Ops)
	if len(ops) > 64 {
		return fmt.Errorf("linearize: history of %d ops exceeds the 64-op bound", len(ops))
	}
	vanishable := 0
	canVanish := make([]bool, len(ops))
	for i, op := range ops {
		if i < nDone && mayVanish != nil && mayVanish(op) {
			canVanish[i] = true
			vanishable++
		}
	}
	state := make(map[uint64]bool, len(initial))
	for k, v := range initial {
		state[k] = v
	}
	target := setState(final)
	full := (uint64(1) << len(ops)) - 1
	visited := make(map[string]bool)
	var dfs func(done uint64) bool
	dfs = func(done uint64) bool {
		if done == full {
			return setState(state) == target
		}
		key := fmt.Sprintf("%x|%s", done, setState(state))
		if visited[key] {
			return false
		}
		visited[key] = true
		// Real-time order constrains completed operations only: pending
		// ops never responded, so their Res (= max uint64) bounds no one.
		// Undecided may-vanish ops DO bound: if one ultimately takes
		// effect its response was real, and if it vanishes the search
		// reaches the same order by vanishing it earlier.
		minRes := ^uint64(0)
		for i, op := range ops {
			if done&(1<<i) == 0 && op.Res < minRes {
				minRes = op.Res
			}
		}
		for i, op := range ops {
			if done&(1<<i) != 0 {
				continue
			}
			if i >= nDone {
				// Pending: may vanish at any point in the search (it has
				// no effect, so position is irrelevant) ...
				if dfs(done | 1<<i) {
					return true
				}
				// ... or take effect as a successful write, if invoked in
				// time and legal. A cut Contains has no effect either way.
				if op.Inv > minRes || op.Kind == OpContains {
					continue
				}
				eff := op
				eff.Result = true
				prev := state[op.Key]
				if apply(state, eff) {
					if dfs(done | 1<<i) {
						return true
					}
					unapply(state, eff, prev)
				}
				continue
			}
			if canVanish[i] {
				// Completed but unfenced: may vanish at any search point.
				if dfs(done | 1<<i) {
					return true
				}
			}
			if op.Inv > minRes {
				continue
			}
			prev := state[op.Key]
			if apply(state, op) {
				if dfs(done | 1<<i) {
					return true
				}
				unapply(state, op, prev)
			}
		}
		return false
	}
	if !dfs(0) {
		return fmt.Errorf("linearize: no durable linearization of %d completed (%d of them unfenced, may vanish) + %d pending ops reaches the recovered state",
			nDone, vanishable, len(h.Pending))
	}
	return nil
}
