package linearize

import (
	"fmt"
	"sync"
	"testing"

	"mirror/internal/engine"
	"mirror/internal/structures"
	"mirror/internal/structures/bst"
	"mirror/internal/structures/hashtable"
	"mirror/internal/structures/list"
	"mirror/internal/structures/skiplist"
)

func TestSequentialHistoriesCheck(t *testing.T) {
	h := NewHistory()
	h.Ops = []Op{
		{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 2},
		{Kind: OpContains, Key: 1, Result: true, Inv: 3, Res: 4},
		{Kind: OpDelete, Key: 1, Result: true, Inv: 5, Res: 6},
		{Kind: OpContains, Key: 1, Result: false, Inv: 7, Res: 8},
		{Kind: OpDelete, Key: 1, Result: false, Inv: 9, Res: 10},
	}
	if err := Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestRejectsIllegalSequential(t *testing.T) {
	h := NewHistory()
	h.Ops = []Op{
		{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 2},
		{Kind: OpContains, Key: 1, Result: false, Inv: 3, Res: 4}, // must be true
	}
	if err := Check(h, nil); err == nil {
		t.Error("illegal history accepted")
	}
}

func TestRespectsRealTimeOrder(t *testing.T) {
	// contains(1)=false AFTER insert(1)=true completed: illegal even
	// though a reordering would make it legal.
	h := NewHistory()
	h.Ops = []Op{
		{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 2},
		{Kind: OpContains, Key: 1, Result: false, Inv: 5, Res: 6},
	}
	if err := Check(h, nil); err == nil {
		t.Error("real-time violation accepted")
	}
	// The same two ops overlapping: legal (contains may linearize first).
	h2 := NewHistory()
	h2.Ops = []Op{
		{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 6},
		{Kind: OpContains, Key: 1, Result: false, Inv: 2, Res: 5},
	}
	if err := Check(h2, nil); err != nil {
		t.Errorf("overlapping reorder rejected: %v", err)
	}
}

func TestInitialState(t *testing.T) {
	h := NewHistory()
	h.Ops = []Op{
		{Kind: OpContains, Key: 7, Result: true, Inv: 1, Res: 2},
		{Kind: OpInsert, Key: 7, Result: false, Inv: 3, Res: 4},
	}
	if err := Check(h, map[uint64]bool{7: true}); err != nil {
		t.Error(err)
	}
	if err := Check(h, nil); err == nil {
		t.Error("history depends on initial state; empty initial must fail")
	}
}

func TestHistoryBound(t *testing.T) {
	h := NewHistory()
	for i := 0; i < 65; i++ {
		h.Ops = append(h.Ops, Op{Kind: OpContains, Key: 1, Result: false,
			Inv: uint64(2*i + 1), Res: uint64(2*i + 2)})
	}
	if err := Check(h, nil); err == nil {
		t.Error("oversized history accepted")
	}
}

// TestStructuresAreLinearizable records real concurrent histories on every
// structure under the Mirror engine — high contention on few keys — and
// checks full linearizability.
func TestStructuresAreLinearizable(t *testing.T) {
	builders := map[string]func(e engine.Engine, c *engine.Ctx) structures.Set{
		"list":      func(e engine.Engine, c *engine.Ctx) structures.Set { return list.New(e, 0) },
		"hashtable": func(e engine.Engine, c *engine.Ctx) structures.Set { return hashtable.New(e, c, 16) },
		"bst":       func(e engine.Engine, c *engine.Ctx) structures.Set { return bst.New(e, c) },
		"skiplist":  func(e engine.Engine, c *engine.Ctx) structures.Set { return skiplist.New(e, c) },
	}
	kinds := []engine.Kind{engine.MirrorDRAM, engine.NVTraverse, engine.OrigDRAM}
	for name, build := range builders {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				for round := 0; round < 20; round++ {
					e := engine.New(engine.Config{Kind: kind, Words: 1 << 18})
					c0 := e.NewCtx()
					set := build(e, c0)
					h := NewHistory()
					const threads = 4
					const opsPer = 12 // 48 ops total, 3 keys: heavy contention
					var wg sync.WaitGroup
					for w := 0; w < threads; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							c := e.NewCtx()
							r := h.Record(set, w)
							state := uint64(round*1000 + w*7 + 13)
							for i := 0; i < opsPer; i++ {
								state = state*6364136223846793005 + 1442695040888963407
								key := state>>33%3 + 1
								switch state >> 61 % 3 {
								case 0:
									r.Insert(c, key, key)
								case 1:
									r.Delete(c, key)
								default:
									r.Contains(c, key)
								}
							}
						}(w)
					}
					wg.Wait()
					if err := Check(h, nil); err != nil {
						t.Fatalf("round %d: %v\nhistory: %+v", round, err, h.Ops)
					}
				}
			})
		}
	}
}
