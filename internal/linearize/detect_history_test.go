package linearize

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
	"mirror/internal/structures/list"
)

// TestRecorderPanicLandsInPending is the regression test for the lost-op
// window: when the recorded operation panics between the invoke record and
// the response record — the frozen device unwinding through a patomic help
// path is exactly that shape — the operation must land in Pending, never be
// silently dropped. The sweep arms the freeze at every device-op index
// inside a recorded insert, so the panic fires at every reachable point of
// the operation body, help paths included.
func TestRecorderPanicLandsInPending(t *testing.T) {
	for fa := int64(1); ; fa++ {
		h := NewHistory()
		e := engine.New(engine.Config{Kind: engine.MirrorDRAM, Words: 1 << 16, Track: true})
		c := e.NewCtx()
		l := list.New(e, 0)
		if !l.Insert(c, 5, 50) { // unrecorded prefill the insert traverses
			t.Fatal("prefill failed")
		}
		r := h.Record(l, 3)
		e.FreezeAfter(fa)
		completed := func() (done bool) {
			defer func() {
				if p := recover(); p != nil && p != pmem.ErrFrozen {
					panic(p)
				}
			}()
			r.Insert(c, 9, 90)
			return true
		}()
		e.FreezeAfter(0)
		if completed {
			if len(h.Ops) != 1 || len(h.Pending) != 0 {
				t.Fatalf("fa=%d completed: Ops=%d Pending=%d, want 1/0", fa, len(h.Ops), len(h.Pending))
			}
			break
		}
		if len(h.Ops) != 0 || len(h.Pending) != 1 {
			t.Fatalf("fa=%d cut: Ops=%d Pending=%d, want 0/1 (operation lost)",
				fa, len(h.Ops), len(h.Pending))
		}
		p := h.Pending[0]
		if p.Kind != OpInsert || p.Key != 9 || p.Thread != 3 || p.Res != ^uint64(0) {
			t.Fatalf("fa=%d: pending record %+v malformed", fa, p)
		}
		if fa > 100000 {
			t.Fatal("freeze sweep did not terminate")
		}
	}
}

// TestCompletePending pins the Committed-verdict history transformation:
// the cut op moves to Ops with the verdict's result and must then take
// effect in any linearization.
func TestCompletePending(t *testing.T) {
	h := NewHistory()
	h.clock.Store(10)
	h.Ops = []Op{{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 2, Thread: 0}}
	h.Pending = []Op{{Kind: OpDelete, Key: 1, Inv: 3, Res: ^uint64(0), Thread: 1}}

	if !h.CompletePending(1, true) {
		t.Fatal("CompletePending found no pending op for thread 1")
	}
	if len(h.Pending) != 0 || len(h.Ops) != 2 {
		t.Fatalf("Ops=%d Pending=%d after CompletePending, want 2/0", len(h.Ops), len(h.Pending))
	}
	got := h.Ops[1]
	if !got.Result || got.Inv != 3 || got.Res == ^uint64(0) {
		t.Fatalf("completed op %+v: want result true, original Inv, fresh Res", got)
	}
	// The delete is now obligatory: the final state must be empty.
	if err := CheckDurable(h, nil, map[uint64]bool{}); err != nil {
		t.Errorf("completed delete rejected: %v", err)
	}
	if err := CheckDurable(h, nil, map[uint64]bool{1: true}); err == nil {
		t.Error("completed delete allowed to vanish")
	}
	if h.CompletePending(1, true) {
		t.Error("second CompletePending for the same thread succeeded")
	}
}

// TestDropPending pins the NotCommitted-verdict transformation: the cut op
// vanishes and the history must check without it.
func TestDropPending(t *testing.T) {
	h := NewHistory()
	h.clock.Store(10)
	h.Ops = []Op{{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 2, Thread: 0}}
	h.Pending = []Op{{Kind: OpDelete, Key: 1, Inv: 3, Res: ^uint64(0), Thread: 1}}

	if !h.DropPending(1) {
		t.Fatal("DropPending found no pending op for thread 1")
	}
	if len(h.Pending) != 0 || len(h.Ops) != 1 {
		t.Fatalf("Ops=%d Pending=%d after DropPending, want 1/0", len(h.Ops), len(h.Pending))
	}
	// With the delete gone the key must still be present.
	if err := CheckDurable(h, nil, map[uint64]bool{1: true}); err != nil {
		t.Errorf("dropped delete still constrained the history: %v", err)
	}
	if err := CheckDurable(h, nil, map[uint64]bool{}); err == nil {
		t.Error("key disappeared with no operation to explain it")
	}
	if h.DropPending(1) {
		t.Error("second DropPending for the same thread succeeded")
	}
	if h.DropPending(0) {
		t.Error("DropPending for a thread with no pending op succeeded")
	}
}

// TestAppendCompleted pins the replay transformation: the appended op's
// invocation follows every recorded response, so it linearizes after all
// of them.
func TestAppendCompleted(t *testing.T) {
	h := NewHistory()
	h.clock.Store(10)
	h.Ops = []Op{{Kind: OpInsert, Key: 1, Result: true, Inv: 1, Res: 2, Thread: 0}}

	h.AppendCompleted(OpDelete, 1, true, 2)
	if len(h.Ops) != 2 {
		t.Fatalf("Ops=%d after AppendCompleted, want 2", len(h.Ops))
	}
	got := h.Ops[1]
	if got.Inv <= 10 || got.Res <= got.Inv {
		t.Fatalf("appended op %+v: timestamps must be fresh and ordered", got)
	}
	// It must linearize after the insert: the final state is empty, and a
	// history claiming the key survived is rejected.
	if err := CheckDurable(h, nil, map[uint64]bool{}); err != nil {
		t.Errorf("replayed delete rejected: %v", err)
	}
	if err := CheckDurable(h, nil, map[uint64]bool{1: true}); err == nil {
		t.Error("replayed delete allowed to vanish")
	}
}
