package palloc

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func newTestAlloc() *Allocator {
	return New(Config{Base: 64, End: 64 + 64*ChunkWords})
}

func TestClassSize(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 12}, {30, 32}, {100, 128},
		{4096, 4096}, {4097, 2 * ChunkWords}, {3 * ChunkWords, 3 * ChunkWords},
	}
	for _, c := range cases {
		if got := ClassSize(c.in); got != c.want {
			t.Errorf("ClassSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAllocAlignmentAndBounds(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	for i := 0; i < 1000; i++ {
		off := c.Alloc(6)
		if off%AlignWords != 0 {
			t.Fatalf("alloc %d: offset %d not %d-word aligned", i, off, AlignWords)
		}
		if off < a.Base() || off+8 > a.End() {
			t.Fatalf("alloc %d: offset %d outside region", i, off)
		}
	}
}

func TestAllocNoOverlap(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	seen := make(map[uint64]bool)
	sizes := []int{4, 6, 8, 12, 30, 100}
	type obj struct {
		off  uint64
		size int
	}
	var objs []obj
	for i := 0; i < 5000; i++ {
		n := sizes[i%len(sizes)]
		off := c.Alloc(n)
		objs = append(objs, obj{off, ClassSize(n)})
		seen[off] = true
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].off < objs[j].off })
	for i := 1; i < len(objs); i++ {
		if objs[i-1].off+uint64(objs[i-1].size) > objs[i].off {
			t.Fatalf("objects overlap: [%d,+%d) and [%d,...)",
				objs[i-1].off, objs[i-1].size, objs[i].off)
		}
	}
	if len(seen) != 5000 {
		t.Errorf("duplicate offsets: %d unique of 5000", len(seen))
	}
}

func TestFreeReuse(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	off := c.Alloc(8)
	c.Free(off, 8)
	// The freed object should come back before fresh memory.
	got := c.Alloc(8)
	if got != off {
		t.Errorf("Alloc after Free = %d, want recycled %d", got, off)
	}
}

func TestLiveWordsBalance(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	var offs []uint64
	for i := 0; i < 100; i++ {
		offs = append(offs, c.Alloc(8))
	}
	if got := a.LiveWords(); got != 800 {
		t.Errorf("LiveWords = %d, want 800", got)
	}
	for _, off := range offs {
		c.Free(off, 8)
	}
	if got := a.LiveWords(); got != 0 {
		t.Errorf("LiveWords after frees = %d, want 0", got)
	}
}

func TestLargeAllocFree(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	off := c.Alloc(3*ChunkWords - 5)
	if off%ChunkWords != a.Base()%ChunkWords {
		t.Errorf("large alloc not chunk aligned: %d", off)
	}
	c.Free(off, 3*ChunkWords-5)
	if got := a.LiveWords(); got != 0 {
		t.Errorf("LiveWords = %d after large free", got)
	}
	// Freed chunks are reusable by class allocations.
	for i := 0; i < 3*ChunkWords/8; i++ {
		c.Alloc(8)
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	a := New(Config{Base: 64, End: 64 + 2*ChunkWords})
	c := NewCache(a, NewReclaimer())
	defer func() {
		if recover() == nil {
			t.Error("expected out-of-memory panic")
		}
	}()
	for i := 0; i < 3*ChunkWords; i++ {
		c.Alloc(4)
	}
}

func TestEpochAdvanceAndDrain(t *testing.T) {
	a := newTestAlloc()
	r := NewReclaimer()
	c := NewCache(a, r)
	off := c.Alloc(8)
	c.Enter()
	c.Retire(off, 8)
	if c.LimboLen() != 1 {
		t.Fatalf("limbo = %d, want 1", c.LimboLen())
	}
	c.Exit()
	// Retire enough dummies to force epoch advances; the first object
	// must eventually be reclaimed.
	for i := 0; i < 4*advanceEvery; i++ {
		c.Enter()
		o := c.Alloc(8)
		c.Retire(o, 8)
		c.Exit()
	}
	if c.LimboLen() >= 4*advanceEvery {
		t.Errorf("limbo never drained: %d", c.LimboLen())
	}
}

func TestEpochBlockedByActiveReader(t *testing.T) {
	a := newTestAlloc()
	r := NewReclaimer()
	writer := NewCache(a, r)
	reader := NewCache(a, r)
	reader.Enter() // pins the epoch
	e0 := r.Epoch()
	for i := 0; i < 8*advanceEvery; i++ {
		writer.Enter()
		o := writer.Alloc(8)
		writer.Retire(o, 8)
		writer.Exit()
	}
	if r.Epoch() > e0+1 {
		t.Errorf("epoch advanced from %d to %d past a pinned reader", e0, r.Epoch())
	}
	reader.Exit()
	for i := 0; i < 4*advanceEvery; i++ {
		writer.Enter()
		o := writer.Alloc(8)
		writer.Retire(o, 8)
		writer.Exit()
	}
	if r.Epoch() <= e0+1 {
		t.Errorf("epoch stuck at %d after reader exit", r.Epoch())
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := New(Config{Base: 64, End: 64 + 256*ChunkWords})
	r := NewReclaimer()
	const workers = 8
	var wg sync.WaitGroup
	offsCh := make(chan []uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := NewCache(a, r)
			rng := rand.New(rand.NewSource(seed))
			var mine []uint64
			for i := 0; i < 3000; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(2) == 0:
					n := len(mine) - 1
					c.Free(mine[n], 8)
					mine = mine[:n]
				default:
					mine = append(mine, c.Alloc(8))
				}
			}
			offsCh <- mine
		}(int64(w))
	}
	wg.Wait()
	close(offsCh)
	seen := make(map[uint64]bool)
	live := 0
	for offs := range offsCh {
		for _, off := range offs {
			if seen[off] {
				t.Fatalf("offset %d live in two threads", off)
			}
			seen[off] = true
			live++
		}
	}
	if got := a.LiveWords(); got != uint64(live*8) {
		t.Errorf("LiveWords = %d, want %d", got, live*8)
	}
}

func TestRebuildRoundTrip(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	// Allocate a mix, free some, keep the rest as "reachable".
	type obj struct {
		off  uint64
		size int
	}
	var kept []obj
	rng := rand.New(rand.NewSource(7))
	sizes := []int{4, 8, 12, 24, 100}
	for i := 0; i < 2000; i++ {
		n := sizes[rng.Intn(len(sizes))]
		off := c.Alloc(n)
		if rng.Intn(3) == 0 {
			c.Free(off, n)
		} else {
			kept = append(kept, obj{off, n})
		}
	}
	big := c.Alloc(2 * ChunkWords)
	extents := make([]Extent, 0, len(kept)+1)
	for _, o := range kept {
		extents = append(extents, Extent{Off: o.off, Words: o.size})
	}
	extents = append(extents, Extent{Off: big, Words: 2 * ChunkWords})

	// Simulate crash: rebuild from extents with a fresh cache.
	a.Rebuild(extents)
	c2 := NewCache(a, NewReclaimer())

	wantLive := uint64(2 * ChunkWords)
	for _, o := range kept {
		wantLive += uint64(ClassSize(o.size))
	}
	if got := a.LiveWords(); got != wantLive {
		t.Errorf("LiveWords after rebuild = %d, want %d", got, wantLive)
	}

	// New allocations must not land inside any surviving extent.
	occupied := make(map[uint64]int)
	for _, e := range extents {
		occupied[e.Off] = ClassSize(e.Words)
	}
	overlaps := func(off uint64, size int) bool {
		for o, s := range occupied {
			if off < o+uint64(s) && o < off+uint64(size) {
				return true
			}
		}
		return false
	}
	for i := 0; i < 2000; i++ {
		n := sizes[rng.Intn(len(sizes))]
		off := c2.Alloc(n)
		if overlaps(off, ClassSize(n)) {
			t.Fatalf("post-rebuild alloc at %d overlaps a surviving extent", off)
		}
		occupied[off] = ClassSize(n)
	}
}

func TestRebuildEmpty(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	for i := 0; i < 1000; i++ {
		c.Alloc(8)
	}
	a.Rebuild(nil)
	if got := a.LiveWords(); got != 0 {
		t.Errorf("LiveWords after empty rebuild = %d", got)
	}
	c2 := NewCache(a, NewReclaimer())
	// All space must be reusable again.
	for i := 0; i < 1000; i++ {
		c2.Alloc(8)
	}
}

// allocSnapshot captures every piece of rebuilt metadata in a canonical
// (order-independent) form so two rebuilds can be compared exactly.
type allocSnapshot struct {
	chunkClass []int8
	chunkBump  []int32
	free       [][]uint64
	partial    [][]int
	freeChunks []int
	largeRuns  map[uint64]int
	allocated  uint64
	nextChunk  int
}

func snapshotAlloc(a *Allocator) allocSnapshot {
	s := allocSnapshot{
		chunkClass: append([]int8(nil), a.chunkClass...),
		chunkBump:  append([]int32(nil), a.chunkBump...),
		freeChunks: append([]int(nil), a.freeChunks...),
		largeRuns:  make(map[uint64]int),
		allocated:  a.allocated.Load(),
		nextChunk:  a.nextChunk,
	}
	for off, n := range a.largeRuns {
		s.largeRuns[off] = n
	}
	for i := range a.free {
		f := append([]uint64(nil), a.free[i]...)
		sort.Slice(f, func(x, y int) bool { return f[x] < f[y] })
		s.free = append(s.free, f)
		p := append([]int(nil), a.partial[i]...)
		sort.Ints(p)
		s.partial = append(s.partial, p)
	}
	sort.Ints(s.freeChunks)
	return s
}

func TestRebuildShardedMatchesSequential(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	rng := rand.New(rand.NewSource(11))
	sizes := []int{4, 8, 12, 24, 100}
	var extents []Extent
	for i := 0; i < 3000; i++ {
		n := sizes[rng.Intn(len(sizes))]
		off := c.Alloc(n)
		if rng.Intn(3) != 0 {
			extents = append(extents, Extent{Off: off, Words: n})
		}
	}
	extents = append(extents, Extent{Off: c.Alloc(3 * ChunkWords), Words: 3 * ChunkWords})

	a.Rebuild(extents)
	want := snapshotAlloc(a)

	for _, shards := range []int{2, 4, 7} {
		// Deal extents round-robin so shards interleave within chunks —
		// the hardest case for the merge.
		parts := make([][]Extent, shards)
		for i, e := range extents {
			parts[i%shards] = append(parts[i%shards], e)
		}
		a.RebuildSharded(parts, shards)
		got := snapshotAlloc(a)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: sharded rebuild metadata differs from sequential", shards)
		}
	}
}

func TestRebuildShardedClassConflictPanics(t *testing.T) {
	a := newTestAlloc()
	c := NewCache(a, NewReclaimer())
	cb := a.chunkBase(a.chunkOf(c.Alloc(4)))
	// Same chunk, two different classes split across shards: the merge
	// must detect it even though each shard is internally consistent.
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard class conflict did not panic")
		}
	}()
	a.RebuildSharded([][]Extent{
		{{Off: cb, Words: 4}},
		{{Off: cb + 8, Words: 8}},
	}, 2)
}

func TestQuickClassSizeInvariants(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)%8192 + 1
		s := ClassSize(n)
		return s >= n && s%AlignWords == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(Config{Base: 64, End: 64 + 1024*ChunkWords})
	r := NewReclaimer()
	b.RunParallel(func(pb *testing.PB) {
		c := NewCache(a, r)
		for pb.Next() {
			off := c.Alloc(8)
			c.Free(off, 8)
		}
	})
}

// TestOversubscribedChurnBounded regresses the EBR starvation fix: with
// more churning goroutines than cores, limbo must still drain via the
// quiesced-context Exit drains, keeping live memory bounded.
func TestOversubscribedChurnBounded(t *testing.T) {
	a := New(Config{Base: 64, End: 64 + 2048*ChunkWords})
	r := NewReclaimer()
	workers := runtime.GOMAXPROCS(0)*4 + 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCache(a, r)
			for i := 0; i < 30000; i++ {
				c.Enter()
				off := c.Alloc(4)
				c.Retire(off, 4)
				c.Exit()
				if i%8 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	// All retired; only the last epochs' limbo may remain.
	bound := uint64(workers) * 4 * (advanceEvery*4 + cacheCap)
	if got := a.LiveWords(); got > bound {
		t.Errorf("live = %d words after churn, want <= %d (reclamation starved)", got, bound)
	}
}
