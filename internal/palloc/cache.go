package palloc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// cacheCap is the target number of objects a thread cache holds per
	// class before spilling half back to the central list.
	cacheCap = 128
	// refillBatch is how many objects a cache pulls from the allocator
	// at once.
	refillBatch = 32
	// advanceEvery is how many retires happen between epoch-advance
	// attempts.
	advanceEvery = 64
	// exitDrainEvery is how many operation exits happen between
	// quiesced-context drain attempts.
	exitDrainEvery = 32
	// drainEvery is how many retires happen between mid-operation drain
	// attempts. Batching the drains batches the PreFree hook: an engine
	// deferring relaxed-line commits (pmem.CommitRelaxed) pays its fence
	// once per batch of frees, not once per retire. Limbo grows by at
	// most drainEvery extra entries between drains.
	drainEvery = 16
	// idleEpoch marks a thread as not inside any operation.
	idleEpoch = ^uint64(0)
)

type retired struct {
	off   uint64
	words int
	epoch uint64
}

// Reclaimer coordinates epoch-based reclamation across the thread caches of
// one engine instance (the ssmem role). Objects retired at epoch e are
// returned to the allocator once the global epoch reaches e+2, at which
// point no thread can still hold a reference obtained before the retire.
type Reclaimer struct {
	global atomic.Uint64

	mu     sync.Mutex
	caches []*Cache
}

// NewReclaimer creates an empty Reclaimer.
func NewReclaimer() *Reclaimer {
	r := &Reclaimer{}
	r.global.Store(1)
	return r
}

// Epoch returns the current global epoch (for tests and diagnostics).
func (r *Reclaimer) Epoch() uint64 { return r.global.Load() }

func (r *Reclaimer) tryAdvance() {
	g := r.global.Load()
	r.mu.Lock()
	caches := r.caches
	r.mu.Unlock()
	for _, c := range caches {
		a := c.announce.Load()
		if a != idleEpoch && a < g {
			return
		}
	}
	r.global.CompareAndSwap(g, g+1)
}

// Cache is a per-thread allocation cache and reclamation context. A Cache
// must be used by one goroutine at a time.
type Cache struct {
	_        [64]byte // avoid false sharing of the announce word
	announce atomic.Uint64
	_        [64]byte

	alloc *Allocator
	recl  *Reclaimer

	free        [][]uint64
	limbo       []retired
	retireCount int
	exitCount   int

	// PreFree, when non-nil, runs once per drain batch, before the first
	// limbo object of the batch is returned to the free lists. Durable
	// engines hook it to commit deferred (relaxed) persistence work that
	// must reach media before any unlinked object's memory is reused.
	PreFree func()
}

// NewCache creates a thread cache bound to alloc, registered with recl.
func NewCache(alloc *Allocator, recl *Reclaimer) *Cache {
	c := &Cache{
		alloc: alloc,
		recl:  recl,
		free:  make([][]uint64, len(classSizes)),
	}
	c.announce.Store(idleEpoch)
	recl.mu.Lock()
	recl.caches = append(recl.caches, c)
	recl.mu.Unlock()
	return c
}

// Enter announces the start of a data-structure operation; references read
// from shared memory are protected until Exit.
func (c *Cache) Enter() {
	c.announce.Store(c.recl.global.Load())
}

// Exit announces the end of an operation. Periodically it also tries to
// advance the epoch and drain the limbo from this quiesced context — the
// thread holds no protected references here, so unlike a drain inside
// Retire (which runs mid-operation) this one can make progress even when
// this cache's own announcement was the stale one blocking the epoch.
func (c *Cache) Exit() {
	c.announce.Store(idleEpoch)
	c.exitCount++
	if len(c.limbo) > 0 && c.exitCount%exitDrainEvery == 0 {
		c.recl.tryAdvance()
		c.drain()
	}
}

// Alloc returns an offset for an object of the given number of words. The
// returned memory may contain stale contents; callers initialize every
// field before publishing. Panics if the region is exhausted.
func (c *Cache) Alloc(words int) uint64 {
	cls := classOf(words)
	if cls < 0 {
		return c.alloc.allocLarge(words)
	}
	fl := c.free[cls]
	if len(fl) == 0 {
		fl = c.alloc.refill(cls, fl, refillBatch)
		if len(fl) == 0 {
			panic(fmt.Sprintf("palloc: out of memory allocating %d words", words))
		}
	}
	off := fl[len(fl)-1]
	c.free[cls] = fl[:len(fl)-1]
	c.alloc.allocated.Add(uint64(classSizes[cls]))
	return off
}

// Free returns an object immediately. Only safe when no other thread can
// hold a reference (e.g. an object that was never published).
func (c *Cache) Free(off uint64, words int) {
	cls := classOf(words)
	if cls < 0 {
		c.alloc.freeLarge(off)
		return
	}
	c.free[cls] = append(c.free[cls], off)
	c.alloc.allocated.Add(^uint64(classSizes[cls] - 1))
	if len(c.free[cls]) > cacheCap {
		half := len(c.free[cls]) / 2
		c.alloc.release(cls, c.free[cls][half:])
		c.free[cls] = c.free[cls][:half]
	}
}

// Retire schedules an unlinked object for reclamation once no concurrent
// operation can still reach it.
func (c *Cache) Retire(off uint64, words int) {
	c.limbo = append(c.limbo, retired{off, words, c.recl.global.Load()})
	c.retireCount++
	if c.retireCount%advanceEvery == 0 {
		c.recl.tryAdvance()
	}
	if c.retireCount%drainEvery == 0 {
		c.drain()
	}
}

// drain frees limbo objects that are two epochs old, running PreFree once
// first when at least one object is ready.
func (c *Cache) drain() {
	g := c.recl.global.Load()
	if len(c.limbo) == 0 || c.limbo[0].epoch+2 > g {
		return
	}
	if c.PreFree != nil {
		c.PreFree()
	}
	i := 0
	for i < len(c.limbo) && c.limbo[i].epoch+2 <= g {
		c.Free(c.limbo[i].off, c.limbo[i].words)
		i++
	}
	if i > 0 {
		c.limbo = c.limbo[:copy(c.limbo, c.limbo[i:])]
	}
}

// LimboLen returns the number of objects awaiting reclamation (tests).
func (c *Cache) LimboLen() int { return len(c.limbo) }

// CachesForTest exposes the registered cache count for diagnostics.
func (r *Reclaimer) CachesForTest() []*Cache {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Cache(nil), r.caches...)
}

// DebugCounts reports limbo length and cached-free objects (diagnostics).
func (c *Cache) DebugCounts() (limbo int, freeObjs int) {
	for _, fl := range c.free {
		freeObjs += len(fl)
	}
	return len(c.limbo), freeObjs
}
