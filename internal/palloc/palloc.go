// Package palloc is the object allocator used by every persistence engine
// in this repository. It fills the role that the ssmem object allocator
// (David et al.) plays in the paper (§4.3): size-class allocation with
// per-thread caches, epoch-based safe memory reclamation for lock-free
// structures, and — crucially for persistence — *volatile-only metadata*
// that a trace-driven recovery can rebuild from the persistent roots after
// a crash.
//
// The allocator manages word offsets within a device region; it never
// touches device memory itself. Offsets are multiples of 4 words (32
// bytes), so stored references have two low bits free for mark/flag/tag
// bits and every cell is legal for DWCAS (16-byte alignment).
//
// One Allocator serves one device region, so a sharded engine
// (engine.Sharded) carries one allocator per shard as a consequence of its
// composition: each shard is a complete sub-engine with its own region.
// The Cache.PreFree drain gate is therefore shard-local — before a drain
// batch on shard i frees anything, only shard i's relaxed lines and
// combine buffer must commit, never another shard's.
package palloc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mirror/internal/recovery"
)

const (
	// ChunkWords is the size of one allocation chunk. Each chunk serves
	// exactly one size class at a time, which is what lets recovery
	// infer chunk structure from reachable-object extents alone.
	ChunkWords = 4096

	// AlignWords is the minimum object alignment in words.
	AlignWords = 4
)

// classSizes are the object sizes (in words) served from chunks. Larger
// allocations get whole chunks. All sizes divide or pack evenly enough into
// ChunkWords and are multiples of AlignWords.
var classSizes = []int{4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096}

// classOf returns the class index serving a request of n words.
func classOf(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1 // large allocation
}

// ClassSize returns the rounded allocation size for a request of n words,
// i.e. the real footprint of the object. Recovery traces must report this
// size (or the raw requested size; both round identically).
func ClassSize(n int) int {
	if c := classOf(n); c >= 0 {
		return classSizes[c]
	}
	chunks := (n + ChunkWords - 1) / ChunkWords
	return chunks * ChunkWords
}

// Extent describes one reachable object for recovery: its offset and its
// requested size in words.
type Extent struct {
	Off   uint64
	Words int
}

// Config describes the managed region.
type Config struct {
	Base uint64 // first managed word offset; must be chunk-aligned relative to itself
	End  uint64 // one past the last managed word
}

// Allocator manages a region of device offsets. All metadata is volatile by
// design; Rebuild reconstructs it after a crash.
type Allocator struct {
	base      uint64
	end       uint64
	numChunks int

	mu         sync.Mutex
	chunkClass []int8         // -1 unassigned, -2 large-run interior/head, else class
	chunkBump  []int32        // next free word within chunk (class chunks only)
	free       [][]uint64     // central free lists per class
	partial    [][]int        // chunks with bump room per class
	freeChunks []int          // fully free chunk indexes
	nextChunk  int            // bump frontier in chunks
	largeRuns  map[uint64]int // head offset -> run length in chunks

	allocated atomic.Uint64 // live words (class-rounded)
}

// New creates an allocator over [cfg.Base, cfg.End). Base is rounded up to
// the next multiple of AlignWords; the usable space is split into chunks.
func New(cfg Config) *Allocator {
	base := (cfg.Base + AlignWords - 1) &^ (AlignWords - 1)
	if cfg.End <= base {
		panic("palloc: empty region")
	}
	n := int((cfg.End - base) / ChunkWords)
	if n == 0 {
		panic(fmt.Sprintf("palloc: region of %d words smaller than one chunk (%d)", cfg.End-base, ChunkWords))
	}
	a := &Allocator{
		base:       base,
		end:        base + uint64(n)*ChunkWords,
		numChunks:  n,
		chunkClass: make([]int8, n),
		chunkBump:  make([]int32, n),
		free:       make([][]uint64, len(classSizes)),
		partial:    make([][]int, len(classSizes)),
		largeRuns:  make(map[uint64]int),
	}
	for i := range a.chunkClass {
		a.chunkClass[i] = -1
	}
	return a
}

// Base returns the first managed offset.
func (a *Allocator) Base() uint64 { return a.base }

// End returns one past the last managed offset.
func (a *Allocator) End() uint64 { return a.end }

// LiveWords returns the number of allocated words (class-rounded).
func (a *Allocator) LiveWords() uint64 { return a.allocated.Load() }

// Frontier returns one past the highest offset ever handed out. Heap scans
// (the Link-Free/SOFT recovery procedure) bound their sweep with it.
func (a *Allocator) Frontier() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chunkBase(a.nextChunk)
}

func (a *Allocator) chunkOf(off uint64) int {
	return int((off - a.base) / ChunkWords)
}

func (a *Allocator) chunkBase(idx int) uint64 {
	return a.base + uint64(idx)*ChunkWords
}

// grabChunkLocked takes a free chunk for the given class (-2 marks large
// runs). Returns -1 when the region is exhausted.
func (a *Allocator) grabChunkLocked(class int8) int {
	if n := len(a.freeChunks); n > 0 {
		idx := a.freeChunks[n-1]
		a.freeChunks = a.freeChunks[:n-1]
		a.chunkClass[idx] = class
		a.chunkBump[idx] = 0
		return idx
	}
	if a.nextChunk < a.numChunks {
		idx := a.nextChunk
		a.nextChunk++
		a.chunkClass[idx] = class
		a.chunkBump[idx] = 0
		return idx
	}
	return -1
}

// refill moves up to want objects of class cls into dst, creating chunks as
// needed. Returns the filled slice.
func (a *Allocator) refill(cls int, dst []uint64, want int) []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	size := classSizes[cls]
	// 1. Central free list.
	if n := len(a.free[cls]); n > 0 {
		take := want
		if take > n {
			take = n
		}
		dst = append(dst, a.free[cls][n-take:]...)
		a.free[cls] = a.free[cls][:n-take]
		want -= take
	}
	// 2. Partial chunks, then fresh chunks.
	for want > 0 {
		var idx int
		if n := len(a.partial[cls]); n > 0 {
			idx = a.partial[cls][n-1]
			a.partial[cls] = a.partial[cls][:n-1]
		} else {
			idx = a.grabChunkLocked(int8(cls))
			if idx < 0 {
				break
			}
		}
		bump := int(a.chunkBump[idx])
		for want > 0 && bump+size <= ChunkWords {
			dst = append(dst, a.chunkBase(idx)+uint64(bump))
			bump += size
			want--
		}
		a.chunkBump[idx] = int32(bump)
		if bump+size <= ChunkWords {
			a.partial[cls] = append(a.partial[cls], idx)
		}
	}
	return dst
}

func (a *Allocator) allocLarge(words int) uint64 {
	chunks := (words + ChunkWords - 1) / ChunkWords
	a.mu.Lock()
	defer a.mu.Unlock()
	// Large runs come only from the bump frontier; freed runs return to
	// freeChunks individually and are reused by class chunks. This keeps
	// the simulator simple; large allocations (bucket arrays) are
	// long-lived in every workload we model.
	if a.nextChunk+chunks > a.numChunks {
		panic(fmt.Sprintf("palloc: out of memory for large alloc of %d words", words))
	}
	idx := a.nextChunk
	a.nextChunk += chunks
	for i := 0; i < chunks; i++ {
		a.chunkClass[idx+i] = -2
	}
	off := a.chunkBase(idx)
	a.largeRuns[off] = chunks
	a.allocated.Add(uint64(chunks * ChunkWords))
	return off
}

func (a *Allocator) freeLarge(off uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	chunks, ok := a.largeRuns[off]
	if !ok {
		panic(fmt.Sprintf("palloc: freeLarge of unknown run at %d", off))
	}
	delete(a.largeRuns, off)
	idx := a.chunkOf(off)
	for i := 0; i < chunks; i++ {
		a.chunkClass[idx+i] = -1
		a.freeChunks = append(a.freeChunks, idx+i)
	}
	a.allocated.Add(^uint64(chunks*ChunkWords - 1))
}

// release returns objects from a thread cache to the central free list.
func (a *Allocator) release(cls int, objs []uint64) {
	a.mu.Lock()
	a.free[cls] = append(a.free[cls], objs...)
	a.mu.Unlock()
}

// Rebuild resets every piece of allocator metadata and reconstructs it from
// the reachable-object extents produced by a recovery trace (§4.3.3). After
// Rebuild, exactly the traced objects are allocated; all other space is
// free. Extents must not overlap.
func (a *Allocator) Rebuild(extents []Extent) {
	a.RebuildSharded([][]Extent{extents}, 1)
}

// occWords is the per-chunk occupancy bitset length: one bit per
// AlignWords-aligned slot start (every class size is a multiple of
// AlignWords, so slot starts land on these positions).
const occWords = ChunkWords / AlignWords / 64

// chunkOcc accumulates the occupancy of one chunk during a rebuild scan.
type chunkOcc struct {
	cls  int32 // class index serving this chunk
	high int32 // highest used slot end (sets the bump pointer)
	bits [occWords]uint64
}

// rebuildAcc is one scan worker's private accumulation: per-chunk
// occupancy and the large runs it saw. Workers never touch shared
// allocator state, so the scan needs no locking.
type rebuildAcc struct {
	occ   map[int]*chunkOcc
	large []Extent
}

// scanExtents folds one shard's extents into acc. It performs all
// per-extent validation; only cross-shard class conflicts are left to the
// merge.
func (a *Allocator) scanExtents(extents []Extent, acc *rebuildAcc) {
	acc.occ = make(map[int]*chunkOcc)
	for _, e := range extents {
		if e.Off < a.base || e.Off >= a.end {
			panic(fmt.Sprintf("palloc: rebuild extent %d outside region", e.Off))
		}
		cls := classOf(e.Words)
		if cls < 0 {
			acc.large = append(acc.large, e)
			continue
		}
		size := classSizes[cls]
		idx := a.chunkOf(e.Off)
		co := acc.occ[idx]
		if co == nil {
			co = &chunkOcc{cls: int32(cls)}
			acc.occ[idx] = co
		} else if co.cls != int32(cls) {
			panic(fmt.Sprintf("palloc: rebuild: chunk %d has extents of classes %d and %d", idx, co.cls, cls))
		}
		slot := int(e.Off - a.chunkBase(idx))
		if slot%size != 0 {
			panic(fmt.Sprintf("palloc: rebuild: extent at %d misaligned for class size %d", e.Off, size))
		}
		pos := slot / AlignWords
		co.bits[pos/64] |= 1 << (pos % 64)
		if int32(slot+size) > co.high {
			co.high = int32(slot + size)
		}
	}
}

// RebuildSharded is Rebuild over per-shard extent lists, scanning the
// shards with up to workers concurrent goroutines — the allocator's leg of
// the parallel recovery pipeline. Shards are typically the per-worker span
// lists of a sharded trace; their union must satisfy Rebuild's contract
// (non-overlapping extents covering exactly the reachable objects). With
// one shard and one worker it is exactly the sequential Rebuild.
func (a *Allocator) RebuildSharded(shards [][]Extent, workers int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.chunkClass {
		a.chunkClass[i] = -1
		a.chunkBump[i] = 0
	}
	for i := range a.free {
		a.free[i] = a.free[i][:0]
		a.partial[i] = a.partial[i][:0]
	}
	a.freeChunks = a.freeChunks[:0]
	a.largeRuns = make(map[uint64]int)
	a.allocated.Store(0)

	// Scan phase: each worker folds its shards into private occupancy
	// bitsets; panics (bad extents) propagate to the caller.
	accs := make([]rebuildAcc, len(shards))
	recovery.Run(workers, len(shards), func(i int) {
		a.scanExtents(shards[i], &accs[i])
	})

	// Merge phase: fold the per-worker occupancies together. Bitset OR
	// per chunk, so merging costs words, not extents.
	occ := make(map[int]*chunkOcc)
	maxChunk := -1
	for i := range accs {
		acc := &accs[i]
		for idx, co := range acc.occ {
			dst := occ[idx]
			if dst == nil {
				occ[idx] = co
			} else {
				if dst.cls != co.cls {
					panic(fmt.Sprintf("palloc: rebuild: chunk %d has extents of classes %d and %d", idx, dst.cls, co.cls))
				}
				for w := range dst.bits {
					dst.bits[w] |= co.bits[w]
				}
				if co.high > dst.high {
					dst.high = co.high
				}
			}
			if idx > maxChunk {
				maxChunk = idx
			}
		}
		for _, e := range acc.large {
			chunks := (e.Words + ChunkWords - 1) / ChunkWords
			idx := a.chunkOf(e.Off)
			for i := 0; i < chunks; i++ {
				a.chunkClass[idx+i] = -2
			}
			a.largeRuns[e.Off] = chunks
			a.allocated.Add(uint64(chunks * ChunkWords))
			if idx+chunks-1 > maxChunk {
				maxChunk = idx + chunks - 1
			}
		}
	}

	// Assign classes and free lists for chunks with survivors.
	chunkIdxs := make([]int, 0, len(occ))
	for idx := range occ {
		chunkIdxs = append(chunkIdxs, idx)
	}
	sort.Ints(chunkIdxs)
	for _, idx := range chunkIdxs {
		co := occ[idx]
		cls := int(co.cls)
		size := classSizes[cls]
		high := int(co.high)
		a.chunkClass[idx] = int8(cls)
		// Free the holes below the high-water mark; the rest of the
		// chunk stays bump-allocatable.
		used := 0
		for slot := 0; slot+size <= high; slot += size {
			pos := slot / AlignWords
			if co.bits[pos/64]&(1<<(pos%64)) != 0 {
				used++
			} else {
				a.free[cls] = append(a.free[cls], a.chunkBase(idx)+uint64(slot))
			}
		}
		a.allocated.Add(uint64(used * size))
		a.chunkBump[idx] = int32(high)
		if high+size <= ChunkWords {
			a.partial[cls] = append(a.partial[cls], idx)
		}
	}

	// Everything below the old frontier without survivors is free; the
	// frontier restarts just past the last surviving chunk.
	a.nextChunk = maxChunk + 1
	for idx := 0; idx < a.nextChunk; idx++ {
		if a.chunkClass[idx] == -1 {
			a.freeChunks = append(a.freeChunks, idx)
		}
	}
}
