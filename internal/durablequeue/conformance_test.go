package durablequeue_test

import (
	"testing"

	"mirror/internal/durablequeue"
	"mirror/internal/structures/settest"
)

// TestConformance runs the shared settest queue battery — FIFO semantics
// against a model, per-producer order under concurrency, and the quiesced
// crash+recover cycle over every crash policy — against the hand-made
// durable queue.
func TestConformance(t *testing.T) {
	settest.RunQueue(t, func() settest.QueueTarget {
		q := durablequeue.New(durablequeue.Config{Words: 1 << 21, Track: true})
		return settest.QueueTarget{
			NewWorker: func() (func(v uint64), func() (uint64, bool)) {
				c := q.NewCtx()
				return func(v uint64) { q.Enqueue(c, v) },
					func() (uint64, bool) { return q.Dequeue(c) }
			},
			Len:     q.Len,
			Crash:   q.Crash,
			Recover: q.Recover,
		}
	})
}
