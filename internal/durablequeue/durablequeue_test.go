package durablequeue

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mirror/internal/pmem"
)

func newTestQueue() *Queue {
	return New(Config{Words: 1 << 20, Track: true})
}

func TestFIFO(t *testing.T) {
	q := newTestQueue()
	c := q.NewCtx()
	if _, ok := q.Dequeue(c); ok {
		t.Fatal("empty dequeue succeeded")
	}
	for v := uint64(1); v <= 200; v++ {
		q.Enqueue(c, v)
	}
	if q.Len() != 200 {
		t.Fatalf("Len = %d", q.Len())
	}
	for v := uint64(1); v <= 200; v++ {
		got, ok := q.Dequeue(c)
		if !ok || got != v {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
}

func TestEnqueueIsSingleFencePlusLink(t *testing.T) {
	q := newTestQueue()
	c := q.NewCtx()
	f0, n0 := q.Counters()
	for v := uint64(1); v <= 100; v++ {
		q.Enqueue(c, v)
	}
	f1, n1 := q.Counters()
	// Two flush+fence pairs per uncontended enqueue: node content and the
	// linearizing link. (Mirror's queue pays per-field cell updates
	// instead; the comparison bench quantifies the difference.)
	if f1-f0 != 200 || n1-n0 != 200 {
		t.Errorf("100 enqueues: %d flushes %d fences, want 200 each", f1-f0, n1-n0)
	}
}

func TestConcurrentMPMCMultiset(t *testing.T) {
	q := New(Config{Words: 1 << 21, Track: true})
	const producers = 4
	const per = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := q.NewCtx()
			for i := uint64(1); i <= per; i++ {
				q.Enqueue(c, uint64(p)<<32|i)
			}
		}(p)
	}
	var mu sync.Mutex
	got := make(map[uint64]bool)
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for k := 0; k < 4; k++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			c := q.NewCtx()
			for {
				v, ok := q.Dequeue(c)
				if ok {
					mu.Lock()
					if got[v] {
						t.Errorf("value %d dequeued twice", v)
					}
					got[v] = true
					if len(got) == producers*per {
						close(done)
					}
					mu.Unlock()
					continue
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	<-done
	cwg.Wait()
	if len(got) != producers*per {
		t.Fatalf("consumed %d, want %d", len(got), producers*per)
	}
}

func TestQuiescedCrashRecovery(t *testing.T) {
	q := newTestQueue()
	c := q.NewCtx()
	for v := uint64(1); v <= 300; v++ {
		q.Enqueue(c, v)
	}
	for v := uint64(1); v <= 120; v++ {
		q.Dequeue(c)
	}
	rng := rand.New(rand.NewSource(5))
	for _, policy := range []pmem.CrashPolicy{pmem.CrashDropAll, pmem.CrashKeepAll, pmem.CrashRandom} {
		q.Crash(policy, rng)
		q.Recover()
		c = q.NewCtx()
		if got := q.Len(); got != 180 {
			t.Fatalf("policy %v: Len = %d, want 180", policy, got)
		}
	}
	for v := uint64(121); v <= 300; v++ {
		got, ok := q.Dequeue(c)
		if !ok || got != v {
			t.Fatalf("after recovery: (%d,%v), want (%d,true)", got, ok, v)
		}
	}
}

// TestCrashMidStream verifies the contiguous-window property across
// mid-operation power failures: completed enqueues survive in order,
// completed dequeues stay gone, the one in-flight op on each side may go
// either way.
func TestCrashMidStream(t *testing.T) {
	for round := 0; round < 12; round++ {
		q := New(Config{Words: 1 << 21, Track: true})
		rng := rand.New(rand.NewSource(int64(round) * 3))
		var lastEnq, lastDeq uint64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			c := q.NewCtx()
			for v := uint64(1); v <= 200000; v++ {
				q.Enqueue(c, v)
				lastEnq = v
			}
		}()
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			c := q.NewCtx()
			for {
				if v, ok := q.Dequeue(c); ok {
					lastDeq = v
				}
			}
		}()
		time.Sleep(time.Duration(rng.Intn(1500)+100) * time.Microsecond)
		q.Freeze()
		wg.Wait()
		q.Crash(pmem.CrashRandom, rng)
		q.Recover()

		c := q.NewCtx()
		var window []uint64
		for {
			v, ok := q.Dequeue(c)
			if !ok {
				break
			}
			window = append(window, v)
		}
		for i := 1; i < len(window); i++ {
			if window[i] != window[i-1]+1 {
				t.Fatalf("round %d: gap %d -> %d", round, window[i-1], window[i])
			}
		}
		if len(window) > 0 {
			if window[0] > lastDeq+2 {
				t.Fatalf("round %d: completed dequeues lost: window starts %d, lastDeq %d",
					round, window[0], lastDeq)
			}
			if lastEnq > 0 && window[len(window)-1] < lastEnq-1 {
				t.Fatalf("round %d: completed enqueue %d missing", round, lastEnq)
			}
		}
	}
}

func BenchmarkDurableQueue(b *testing.B) {
	q := New(Config{Words: 1 << 22})
	c := q.NewCtx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(c, uint64(i))
		q.Dequeue(c)
	}
}
