// Package durablequeue implements a hand-made durable lock-free FIFO queue
// in the style of Friedman, Herlihy, Marathe and Petrank [PPoPP 2018] —
// the paper's reference [18] and the natural hand-optimized baseline for
// the Mirror-transformed Michael–Scott queue in
// internal/structures/queue.
//
// Like the hand-made durable sets, it persists selectively instead of
// mirroring: a node's content is flushed before it is linked, the link
// itself is flushed before the enqueue returns, and the head reference is
// flushed after every dequeue. The tail reference is auxiliary data —
// never flushed — and is reconstructed by walking to the end of the
// persisted chain at recovery (§4.3's critical/auxiliary data split).
package durablequeue

import (
	"math/rand"
	"sync"

	"mirror/internal/engine"
	"mirror/internal/palloc"
	"mirror/internal/pmem"
)

// Node layout (4 words on NVMM).
const (
	fVal  = 0
	fNext = 1
	fSize = 4
)

// Fixed device offsets for the persistent root slots.
const (
	headSlot = 8
	tailSlot = 9 // auxiliary: recovered, never flushed
)

// Queue is the hand-made durable FIFO queue.
type Queue struct {
	dev     *pmem.Device
	det     *engine.DescRegion // nil when Config.Clients == 0
	clients int

	mu    sync.Mutex
	alloc *palloc.Allocator
	recl  *palloc.Reclaimer
}

// Ctx is a per-thread context.
type Ctx struct {
	cache *palloc.Cache
	fs    pmem.FlushSet
	det   detState // in-flight detectable-operation bracket
}

// detState tracks one context's armed detectable operation.
type detState struct {
	armed, delivered bool
	client           int
	seq              uint64
}

// Config describes a queue instance.
type Config struct {
	Words   int
	Latency bool
	Track   bool
	// Clients reserves per-client operation-descriptor slots below the node
	// heap for detectable operations; 0 leaves the layout unchanged.
	Clients int
}

// New creates an empty durable queue.
func New(cfg Config) *Queue {
	if cfg.Words == 0 {
		cfg.Words = 1 << 20
	}
	model := pmem.NoLatency()
	if cfg.Latency {
		model = pmem.NVMMModel()
	}
	q := &Queue{
		dev: pmem.New(pmem.Config{
			Name: "DurableQueue", Words: cfg.Words,
			Persistent: true, Track: cfg.Track, Model: model,
		}),
	}
	// Descriptor slots sit between the root slots and the node heap; the
	// base (16) is already line-aligned.
	heapBase := uint64(16)
	if cfg.Clients > 0 {
		q.det = engine.NewDescRegion(q.dev, heapBase, cfg.Clients, true)
		q.clients = cfg.Clients
		heapBase += q.det.Words()
	}
	q.alloc = palloc.New(palloc.Config{Base: heapBase, End: uint64(q.dev.Size())})
	q.recl = palloc.NewReclaimer()
	// Durable dummy node.
	boot := q.NewCtx()
	dummy := boot.cache.Alloc(fSize)
	q.dev.Store(dummy+fVal, 0)
	q.dev.Store(dummy+fNext, 0)
	q.persist(boot, dummy)
	q.dev.Store(headSlot, dummy)
	q.dev.Store(tailSlot, dummy)
	q.persist(boot, headSlot)
	return q
}

// NewCtx creates a per-thread context.
func (q *Queue) NewCtx() *Ctx {
	q.mu.Lock()
	defer q.mu.Unlock()
	return &Ctx{cache: palloc.NewCache(q.alloc, q.recl)}
}

func (q *Queue) persist(c *Ctx, off uint64) {
	q.dev.Flush(&c.fs, off)
	q.dev.Fence(&c.fs)
}

// Enqueue appends v; it is durable when the call returns.
func (q *Queue) Enqueue(c *Ctx, v uint64) {
	c.cache.Enter()
	defer c.cache.Exit()
	node := c.cache.Alloc(fSize)
	q.dev.Store(node+fVal, v)
	q.dev.Store(node+fNext, 0)
	q.persist(c, node) // content durable before it is reachable
	for {
		tail := q.dev.Load(tailSlot)
		next := q.dev.Load(tail + fNext)
		if next != 0 {
			// Help: persist the lagging link, then swing the tail.
			q.persist(c, tail+fNext)
			q.dev.CAS(tailSlot, tail, next)
			continue
		}
		if q.dev.CAS(tail+fNext, 0, node) {
			// The linearizing link is durable before we return; the
			// tail swing is auxiliary.
			q.persist(c, tail+fNext)
			// The link fence just made the enqueue durable: the detectable
			// verdict may publish (no-op when unarmed).
			q.detectLinearized(c, true, 0)
			q.dev.CAS(tailSlot, tail, node)
			return
		}
	}
}

// Dequeue removes and returns the oldest element; the removal is durable
// when the call returns.
func (q *Queue) Dequeue(c *Ctx) (uint64, bool) {
	c.cache.Enter()
	defer c.cache.Exit()
	for {
		head := q.dev.Load(headSlot)
		tail := q.dev.Load(tailSlot)
		next := q.dev.Load(head + fNext)
		if head == tail {
			if next == 0 {
				return 0, false
			}
			q.persist(c, tail+fNext)
			q.dev.CAS(tailSlot, tail, next)
			continue
		}
		v := q.dev.Load(next + fVal)
		if q.dev.CAS(headSlot, head, next) {
			q.persist(c, headSlot)
			// The head swing is durable: publish the verdict with the
			// dequeued value so a replay after a crash can return it.
			q.detectLinearized(c, true, v)
			c.cache.Retire(head, fSize)
			return v, true
		}
	}
}

// Len counts elements (quiesced use only).
func (q *Queue) Len() int {
	n := 0
	node := q.dev.ReadRaw(headSlot)
	for {
		node = q.dev.ReadRaw(node + fNext)
		if node == 0 {
			return n
		}
		n++
	}
}

// Freeze unwinds in-flight operations for a crash.
func (q *Queue) Freeze() { q.dev.Freeze() }

// Crash simulates a power failure.
func (q *Queue) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	q.dev.Freeze()
	q.dev.Crash(policy, rng)
}

// Recover rebuilds the auxiliary state: the tail is re-derived by walking
// the persisted chain from the head, lagging links are re-persisted, and
// the allocator is rebuilt from the reachable nodes.
func (q *Queue) Recover() {
	head := q.dev.ReadRaw(headSlot)
	var extents []palloc.Extent
	node := head
	last := head
	for node != 0 {
		extents = append(extents, palloc.Extent{Off: node, Words: fSize})
		last = node
		node = q.dev.ReadRaw(node + fNext)
	}
	q.dev.WriteRaw(tailSlot, last)
	// The chain we walked is the durable truth; persist it wholesale so
	// a crash during recovery re-reads the same state.
	for _, e := range extents {
		q.dev.PersistRange(e.Off, e.Words)
	}
	q.dev.PersistRange(headSlot, 1)
	if q.det != nil {
		q.det.Scrub()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.alloc.Rebuild(extents)
	q.recl = palloc.NewReclaimer()
}

// Counters reports cumulative flushes and fences.
func (q *Queue) Counters() (uint64, uint64) { return q.dev.Counters() }

// Clients reports the number of reserved descriptor slots (0 = off).
func (q *Queue) Clients() int { return q.clients }

// DetectBegin durably announces operation (client, seq) before it runs;
// kind is engine.DetectEnqueue (val = the enqueued value) or
// engine.DetectDequeue (val ignored). Enqueue announces are deferred onto
// the operation's own pre-link content fence — the linearizing link CAS
// cannot execute, let alone persist, before that fence commits the
// announce. Dequeue announces fence eagerly: the head-swing CAS could be
// evicted to media before any fence of ours.
func (q *Queue) DetectBegin(c *Ctx, client int, seq, kind, val uint64) {
	if q.det == nil {
		panic("durablequeue: detectability is disabled (Config.Clients == 0)")
	}
	if c.det.armed {
		panic("durablequeue: DetectBegin inside an armed detectable operation")
	}
	c.det = detState{armed: true, client: client, seq: seq}
	q.det.Begin(&c.fs, client, seq, kind, 0, val, kind == engine.DetectEnqueue)
}

// detectLinearized publishes the verdict once the operation's effect is
// durable; a no-op without an armed bracket.
func (q *Queue) detectLinearized(c *Ctx, result bool, rval uint64) {
	if q.det == nil || !c.det.armed || c.det.delivered {
		return
	}
	q.det.Publish(&c.fs, c.det.client, c.det.seq, result, rval)
	c.det.delivered = true
}

// DetectEnd publishes the verdict if the operation never linearized (an
// empty dequeue) and issues the terminal verdict fence.
func (q *Queue) DetectEnd(c *Ctx, result bool) {
	if q.det == nil || !c.det.armed {
		return
	}
	if !c.det.delivered {
		q.det.Publish(&c.fs, c.det.client, c.det.seq, result, 0)
	}
	q.det.End(&c.fs)
	c.det = detState{}
}

// Detect answers whether (client, seq) committed, from the quiesced,
// crashed, or recovered queue. Authoritative only for the client's most
// recently issued operation; a Committed dequeue's DetectResult.Rval
// carries the dequeued value.
func (q *Queue) Detect(client int, seq uint64) engine.DetectResult {
	if q.det == nil {
		panic("durablequeue: Detect with detectability disabled (Config.Clients == 0)")
	}
	return q.det.Detect(client, seq)
}
