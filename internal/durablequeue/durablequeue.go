// Package durablequeue implements a hand-made durable lock-free FIFO queue
// in the style of Friedman, Herlihy, Marathe and Petrank [PPoPP 2018] —
// the paper's reference [18] and the natural hand-optimized baseline for
// the Mirror-transformed Michael–Scott queue in
// internal/structures/queue.
//
// Like the hand-made durable sets, it persists selectively instead of
// mirroring: a node's content is flushed before it is linked, the link
// itself is flushed before the enqueue returns, and the head reference is
// flushed after every dequeue. The tail reference is auxiliary data —
// never flushed — and is reconstructed by walking to the end of the
// persisted chain at recovery (§4.3's critical/auxiliary data split).
package durablequeue

import (
	"math/rand"
	"sync"

	"mirror/internal/engine"
	"mirror/internal/palloc"
	"mirror/internal/pmem"
)

// Node layout (4 words on NVMM).
const (
	fVal  = 0
	fNext = 1
	fSize = 4
)

// Fixed device offsets for the persistent root slots.
const (
	headSlot = 8
	tailSlot = 9 // auxiliary: recovered, never flushed
)

// Queue is the hand-made durable FIFO queue.
type Queue struct {
	dev     *pmem.Device
	combine bool               // cross-operation fence combining active
	det     *engine.DescRegion // nil when Config.Clients == 0
	clients int

	mu    sync.Mutex
	alloc *palloc.Allocator
	recl  *palloc.Reclaimer
}

// Ctx is a per-thread context.
type Ctx struct {
	cache *palloc.Cache
	fs    pmem.FlushSet
	det   detState // in-flight detectable-operation bracket
}

// detState tracks one context's armed detectable operation.
type detState struct {
	armed, delivered bool
	client           int
	seq              uint64
}

// Config describes a queue instance.
type Config struct {
	Words   int
	Latency bool
	Track   bool
	// Clients reserves per-client operation-descriptor slots below the node
	// heap for detectable operations; 0 leaves the layout unchanged.
	Clients int
	// NoElide disables the persisted-epoch watermark layer (ablation
	// baseline): every persist issues its full flush+fence.
	NoElide bool
	// Combine enables cross-operation fence combining: the linearizing
	// link and head-swing persists are deferred to per-thread combine
	// buffers (pmem/combine.go), so completed operations may vanish at a
	// crash until their buffer drains. Requires elision.
	Combine bool
}

// New creates an empty durable queue.
func New(cfg Config) *Queue {
	if cfg.Words == 0 {
		cfg.Words = 1 << 20
	}
	model := pmem.NoLatency()
	if cfg.Latency {
		model = pmem.NVMMModel()
	}
	q := &Queue{
		dev: pmem.New(pmem.Config{
			Name: "DurableQueue", Words: cfg.Words,
			Persistent: true, Track: cfg.Track, Model: model,
			Elide:   !cfg.NoElide,
			Combine: cfg.Combine && !cfg.NoElide,
		}),
	}
	q.combine = q.dev.Combines()
	// Descriptor slots sit between the root slots and the node heap; the
	// base (16) is already line-aligned.
	heapBase := uint64(16)
	if cfg.Clients > 0 {
		q.det = engine.NewDescRegion(q.dev, heapBase, cfg.Clients, 1, true)
		q.clients = cfg.Clients
		heapBase += q.det.Words()
	}
	q.alloc = palloc.New(palloc.Config{Base: heapBase, End: uint64(q.dev.Size())})
	q.recl = palloc.NewReclaimer()
	// Durable dummy node.
	boot := q.NewCtx()
	dummy := boot.cache.Alloc(fSize)
	q.dev.Store(dummy+fVal, 0)
	q.dev.Store(dummy+fNext, 0)
	q.persist(boot, dummy)
	q.dev.Store(headSlot, dummy)
	q.dev.Store(tailSlot, dummy)
	q.persist(boot, headSlot)
	return q
}

// NewCtx creates a per-thread context.
func (q *Queue) NewCtx() *Ctx {
	q.mu.Lock()
	defer q.mu.Unlock()
	c := &Ctx{cache: palloc.NewCache(q.alloc, q.recl)}
	if q.dev.Elides() {
		// Relaxed (and combined) lines must reach media before any node
		// they unlink from the queue is reused; see pmem.CommitRelaxed.
		c.cache.PreFree = func() {
			q.dev.CommitRelaxed(&c.fs)
			if q.combine {
				q.dev.CombineDrain(&c.fs, pmem.DrainPreFree)
			}
		}
	}
	return c
}

// persist makes the current content of off durable. It routes through the
// elision layer's three-way discipline (mirroring patomic.ensureDurable):
// a line already committed by a fence after we observed it needs nothing;
// a line whose commit is in flight on another thread is waited for
// (piggybacking on that thread's fence); otherwise we flush and fence
// ourselves. The enqueue helper path used to take an unconditional
// flush+fence here, paying a full fence for links that the owning
// enqueuer had already persisted.
func (q *Queue) persist(c *Ctx, off uint64) {
	tag := q.dev.PersistEpoch()
	if q.dev.Persisted(off, tag) {
		q.dev.NoteElided(&c.fs, 1, 1)
		return
	}
	if t := q.dev.CommitTicket(off); t > tag && q.dev.WaitPersisted(off, t) {
		q.dev.NotePiggyback(&c.fs)
		return
	}
	q.dev.Flush(&c.fs, off)
	q.dev.Fence(&c.fs)
}

// publishDurable persists an own linearizing install at off — or, under
// combining, defers it into the thread's combine buffer. Registration in
// the device-global relaxed registry happens inside CombineAdd, before
// this thread can retire any node: the unlinking install of a retired
// node (the head swing) is therefore always registered by the time the
// allocator's PreFree drain runs, so no reachable media word can point
// into reused memory.
func (q *Queue) publishDurable(c *Ctx, off uint64) {
	if q.combine {
		if q.dev.CombineAdd(&c.fs, off) {
			q.dev.CombineDrain(&c.fs, pmem.DrainCapacity)
		}
		return
	}
	q.persist(c, off)
}

// opEnd pulses the combine buffer's epoch clock and releases the
// allocation cache; deferred by every operation.
func (q *Queue) opEnd(c *Ctx) {
	if q.combine {
		q.dev.CombineTick(&c.fs)
	}
	c.cache.Exit()
}

// Enqueue appends v. Without combining it is durable when the call
// returns; with combining it is durable no later than the thread's next
// combine drain, and a crash before that drain makes it vanish wholesale
// (the node is unreachable from the persisted chain).
func (q *Queue) Enqueue(c *Ctx, v uint64) {
	c.cache.Enter()
	defer q.opEnd(c)
	node := c.cache.Alloc(fSize)
	q.dev.Store(node+fVal, v)
	q.dev.Store(node+fNext, 0)
	q.persist(c, node) // content durable before it is reachable
	for {
		// Durable-prefix invariant: tailSlot only ever points to a node
		// whose whole chain from the persisted head is durable. Recovery
		// walks forward from the head, so an enqueuer that fences its own
		// link while an *earlier* link is still in some combine buffer
		// would durably complete an operation a crash can erase. The walk
		// below preserves the invariant at every swing, and it closes
		// that completion hole without fencing: a link pending in our own
		// buffer is built past (our drain commits it before our ops stop
		// vanishing), a link pending in another enqueuer's buffer is
		// *adopted* into ours (CombineAdopt — our next drain commits the
		// foreign prefix together with our own link, so our durably
		// completed enqueue can never outlive the link it builds on), a
		// settled link allows the tail to advance with no persist at all,
		// and only the narrow unregistered window (a link installed but
		// not yet CombineAdd-ed by its owner, or a non-combining run)
		// takes the eager persist.
		tail := q.dev.Load(tailSlot)
		curr := tail
		prefixDurable := true
		for {
			next := q.dev.Load(curr + fNext)
			if next == 0 {
				break
			}
			off := curr + fNext
			switch {
			case q.combine && c.fs.CombineOwns(off):
				prefixDurable = false
			case q.combine && q.dev.CombinePending(off):
				q.dev.CombineAdopt(&c.fs, off)
				prefixDurable = false
			case q.dev.CombineSettled(off):
				if prefixDurable {
					if q.dev.CAS(tailSlot, tail, next) {
						tail = next
					}
				}
			default:
				q.persist(c, off)
				if prefixDurable {
					if q.dev.CAS(tailSlot, tail, next) {
						tail = next
					}
				}
			}
			curr = next
		}
		if q.dev.CAS(curr+fNext, 0, node) {
			// The linearizing link: persisted before return, or deferred
			// into the combine buffer; the tail swing is auxiliary.
			q.publishDurable(c, curr+fNext)
			// The enqueue is durable (or, under combining, the verdict
			// publish below drains the buffer first): the detectable
			// verdict may publish (no-op when unarmed).
			q.detectLinearized(c, true, 0)
			// Swing only when the buffer is quiet — a drain inside
			// publishDurable (capacity) or an eager run. Quiet means every
			// link we own or adopted is durable, so the whole prefix is.
			// Otherwise the tail stays behind; helpers and post-drain
			// walks advance it through the settled branch above.
			if !q.combine || c.fs.CombineQuiet() {
				q.dev.CAS(tailSlot, tail, node)
			}
			return
		}
	}
}

// Dequeue removes and returns the oldest element; the removal is durable
// when the call returns.
func (q *Queue) Dequeue(c *Ctx) (uint64, bool) {
	c.cache.Enter()
	defer q.opEnd(c)
	for {
		head := q.dev.Load(headSlot)
		tail := q.dev.Load(tailSlot)
		next := q.dev.Load(head + fNext)
		if head == tail {
			if next == 0 {
				return 0, false
			}
			// Tail catch-up: the head must not pass the tail, so the
			// lagging link has to become durable and the tail swing over
			// it — adoption is not enough here, because the swing itself
			// publishes the link into every other enqueuer's durable
			// prefix. Our own buffered link drains (the one place the
			// queue pays an exposure fence); a foreign one is committed
			// by the conflict probe; anything else takes the eager
			// persist.
			off := tail + fNext
			switch {
			case q.combine && c.fs.CombineOwns(off):
				q.dev.CombineDrain(&c.fs, pmem.DrainExpose)
			case q.combine && q.dev.CombineProbe(&c.fs, off):
				// committed by the probe
			case q.dev.CombineSettled(off):
				// already durable; swing without persisting
			default:
				q.persist(c, off)
			}
			q.dev.CAS(tailSlot, tail, next)
			continue
		}
		v := q.dev.Load(next + fVal)
		if q.dev.CAS(headSlot, head, next) {
			// The head swing: persisted before return, or deferred into
			// the combine buffer. No conflict probe is needed on the link
			// we dequeue across even if it is still buffered by its
			// enqueuer: recovery walks forward from the persisted head,
			// so a link behind the durable head is unreachable, and all
			// head swings share one word — one line — so dequeues reach
			// media suffix-atomically (see DESIGN.md).
			q.publishDurable(c, headSlot)
			// The head swing is durable (or drained by the publish):
			// publish the verdict with the dequeued value so a replay
			// after a crash can return it.
			q.detectLinearized(c, true, v)
			c.cache.Retire(head, fSize)
			return v, true
		}
	}
}

// Len counts elements (quiesced use only).
func (q *Queue) Len() int {
	n := 0
	node := q.dev.ReadRaw(headSlot)
	for {
		node = q.dev.ReadRaw(node + fNext)
		if node == 0 {
			return n
		}
		n++
	}
}

// Freeze unwinds in-flight operations for a crash.
func (q *Queue) Freeze() { q.dev.Freeze() }

// Crash simulates a power failure.
func (q *Queue) Crash(policy pmem.CrashPolicy, rng *rand.Rand) {
	q.dev.Freeze()
	q.dev.Crash(policy, rng)
}

// Recover rebuilds the auxiliary state: the tail is re-derived by walking
// the persisted chain from the head, lagging links are re-persisted, and
// the allocator is rebuilt from the reachable nodes.
func (q *Queue) Recover() {
	head := q.dev.ReadRaw(headSlot)
	var extents []palloc.Extent
	node := head
	last := head
	for node != 0 {
		extents = append(extents, palloc.Extent{Off: node, Words: fSize})
		last = node
		node = q.dev.ReadRaw(node + fNext)
	}
	q.dev.WriteRaw(tailSlot, last)
	// The chain we walked is the durable truth; persist it wholesale so
	// a crash during recovery re-reads the same state.
	for _, e := range extents {
		q.dev.PersistRange(e.Off, e.Words)
	}
	q.dev.PersistRange(headSlot, 1)
	if q.det != nil {
		q.det.Scrub()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.alloc.Rebuild(extents)
	q.recl = palloc.NewReclaimer()
}

// Counters reports cumulative flushes and fences.
func (q *Queue) Counters() (uint64, uint64) { return q.dev.Counters() }

// CombineCounters reports fences absorbed by combining and the per-cause
// drain tally; zeros when combining is off.
func (q *Queue) CombineCounters() (uint64, pmem.DrainCauses) { return q.dev.CombineCounters() }

// Drain commits this context's relaxed lines and combine buffer; used by
// harnesses to quiesce before counting or hashing media.
func (q *Queue) Drain(c *Ctx) {
	q.dev.CommitRelaxed(&c.fs)
	if q.combine {
		q.dev.CombineDrain(&c.fs, pmem.DrainExplicit)
	}
}

// Clients reports the number of reserved descriptor slots (0 = off).
func (q *Queue) Clients() int { return q.clients }

// DetectBegin durably announces operation (client, seq) before it runs;
// kind is engine.DetectEnqueue (val = the enqueued value) or
// engine.DetectDequeue (val ignored). Enqueue announces are deferred onto
// the operation's own pre-link content fence — the linearizing link CAS
// cannot execute, let alone persist, before that fence commits the
// announce. Dequeue announces fence eagerly: the head-swing CAS could be
// evicted to media before any fence of ours.
func (q *Queue) DetectBegin(c *Ctx, client int, seq, kind, val uint64) {
	if q.det == nil {
		panic("durablequeue: detectability is disabled (Config.Clients == 0)")
	}
	if c.det.armed {
		panic("durablequeue: DetectBegin inside an armed detectable operation")
	}
	c.det = detState{armed: true, client: client, seq: seq}
	q.det.Begin(&c.fs, client, seq, kind, 0, val, kind == engine.DetectEnqueue)
}

// detectLinearized publishes the verdict once the operation's effect is
// durable; a no-op without an armed bracket.
func (q *Queue) detectLinearized(c *Ctx, result bool, rval uint64) {
	if q.det == nil || !c.det.armed || c.det.delivered {
		return
	}
	// A durable verdict asserts the operation's effect is durable; drain
	// the combine buffer so the buffered linearizing install is fenced
	// before the verdict can reach media.
	if q.combine {
		q.dev.CombineDrain(&c.fs, pmem.DrainDetect)
	}
	q.det.Publish(&c.fs, c.det.client, c.det.seq, result, rval)
	c.det.delivered = true
}

// DetectEnd publishes the verdict if the operation never linearized (an
// empty dequeue) and issues the terminal verdict fence.
func (q *Queue) DetectEnd(c *Ctx, result bool) {
	if q.det == nil || !c.det.armed {
		return
	}
	if !c.det.delivered {
		if q.combine {
			q.dev.CombineDrain(&c.fs, pmem.DrainDetect)
		}
		q.det.Publish(&c.fs, c.det.client, c.det.seq, result, 0)
	}
	q.det.End(&c.fs)
	c.det = detState{}
}

// Detect answers whether (client, seq) committed, from the quiesced,
// crashed, or recovered queue. Authoritative only for the client's most
// recently issued operation; a Committed dequeue's DetectResult.Rval
// carries the dequeued value.
func (q *Queue) Detect(client int, seq uint64) engine.DetectResult {
	if q.det == nil {
		panic("durablequeue: Detect with detectability disabled (Config.Clients == 0)")
	}
	return q.det.Detect(client, seq)
}
