package durablequeue

import (
	"testing"

	"mirror/internal/engine"
	"mirror/internal/pmem"
)

func newDetectQueue(clients int) *Queue {
	return New(Config{Words: 1 << 16, Track: true, Clients: clients})
}

// guardFrozen runs f, swallowing the simulated power-cut panic.
func guardFrozen(f func()) {
	defer func() {
		if r := recover(); r != nil && r != pmem.ErrFrozen {
			panic(r)
		}
	}()
	f()
}

// TestDetectEmptyQueueCrash covers the quiesced crash+recover cycle on an
// *empty* queue: the failed dequeue's verdict must survive the crash with
// its recorded (false) result, and the queue must stay empty and usable.
func TestDetectEmptyQueueCrash(t *testing.T) {
	q := newDetectQueue(1)
	c := q.NewCtx()
	q.DetectBegin(c, 0, 1, engine.DetectDequeue, 0)
	if _, ok := q.Dequeue(c); ok {
		t.Fatal("dequeue on empty queue succeeded")
	}
	q.DetectEnd(c, false)
	q.Crash(pmem.CrashDropAll, nil)
	q.Recover()
	if n := q.Len(); n != 0 {
		t.Fatalf("Len after recovery = %d, want 0", n)
	}
	v := q.Detect(0, 1)
	if v.Verdict != engine.Committed || !v.KnownResult || v.Result {
		t.Errorf("empty dequeue verdict = %+v, want Committed with result false", v)
	}
	c2 := q.NewCtx()
	if _, ok := q.Dequeue(c2); ok {
		t.Error("recovered empty queue produced an element")
	}
	q.Enqueue(c2, 7)
	if got, ok := q.Dequeue(c2); !ok || got != 7 {
		t.Errorf("recovered queue roundtrip = (%d, %v), want (7, true)", got, ok)
	}
}

// TestDetectSingleElementQueueCrash covers the quiesced cycle on a
// *single-element* queue: a crash after the detectable enqueue, recovery,
// then a crash after the detectable dequeue — each time the last
// operation's verdict must read Committed with the recorded result, and
// the dequeue verdict must carry the dequeued value in Rval.
func TestDetectSingleElementQueueCrash(t *testing.T) {
	q := newDetectQueue(2)
	if q.Clients() != 2 {
		t.Fatalf("Clients() = %d, want 2", q.Clients())
	}
	c := q.NewCtx()
	q.DetectBegin(c, 1, 1, engine.DetectEnqueue, 42)
	q.Enqueue(c, 42)
	q.DetectEnd(c, true)
	q.Crash(pmem.CrashDropAll, nil)
	q.Recover()
	if n := q.Len(); n != 1 {
		t.Fatalf("Len after enqueue+crash = %d, want 1", n)
	}
	if v := q.Detect(1, 1); v.Verdict != engine.Committed || !v.KnownResult || !v.Result {
		t.Errorf("enqueue verdict = %+v, want Committed with result true", v)
	}
	if v := q.Detect(0, 1); v.Verdict != engine.NotCommitted {
		t.Errorf("client 0 never announced: got %+v, want NotCommitted", v)
	}

	c = q.NewCtx()
	q.DetectBegin(c, 1, 2, engine.DetectDequeue, 0)
	if got, ok := q.Dequeue(c); !ok || got != 42 {
		t.Fatalf("dequeue = (%d, %v), want (42, true)", got, ok)
	}
	q.DetectEnd(c, true)
	q.Crash(pmem.CrashDropAll, nil)
	q.Recover()
	if n := q.Len(); n != 0 {
		t.Fatalf("Len after dequeue+crash = %d, want 0", n)
	}
	v := q.Detect(1, 2)
	if v.Verdict != engine.Committed || !v.KnownResult || !v.Result {
		t.Fatalf("dequeue verdict = %+v, want Committed with result true", v)
	}
	if v.Rval != 42 {
		t.Errorf("dequeue verdict Rval = %d, want 42", v.Rval)
	}
}

// TestDetectQueueCrashSweep cuts a detectable enqueue (into an empty
// queue) and a detectable dequeue (from a single-element queue) at every
// device-op index and cross-checks the verdict against the recovered
// state. This exercises the enqueue's deferred announce — the announce
// must be durable by the time the linearizing link can possibly be — and
// the dequeue's Rval plumbing.
func TestDetectQueueCrashSweep(t *testing.T) {
	for cut := int64(1); cut <= 50; cut++ {
		// Enqueue sweep.
		q := newDetectQueue(1)
		c := q.NewCtx()
		q.dev.FreezeAfter(cut)
		guardFrozen(func() {
			q.DetectBegin(c, 0, 1, engine.DetectEnqueue, 9)
			q.Enqueue(c, 9)
			q.DetectEnd(c, true)
		})
		q.Crash(pmem.CrashDropAll, nil)
		q.Recover()
		v := q.Detect(0, 1)
		n := q.Len()
		switch v.Verdict {
		case engine.Committed:
			if !v.KnownResult || !v.Result || n != 1 {
				t.Errorf("enqueue cut=%d: Committed (%+v) but Len=%d", cut, v, n)
			}
		case engine.NotCommitted:
			if n != 0 {
				t.Errorf("enqueue cut=%d: NotCommitted but Len=%d", cut, n)
			}
		}

		// Dequeue sweep from a one-element queue.
		q = newDetectQueue(1)
		c = q.NewCtx()
		q.Enqueue(c, 33)
		q.dev.FreezeAfter(cut)
		guardFrozen(func() {
			q.DetectBegin(c, 0, 1, engine.DetectDequeue, 0)
			q.Dequeue(c)
			q.DetectEnd(c, true)
		})
		q.Crash(pmem.CrashDropAll, nil)
		q.Recover()
		v = q.Detect(0, 1)
		n = q.Len()
		switch v.Verdict {
		case engine.Committed:
			if !v.KnownResult || !v.Result || n != 0 || v.Rval != 33 {
				t.Errorf("dequeue cut=%d: Committed (%+v) but Len=%d", cut, v, n)
			}
		case engine.NotCommitted:
			if n != 1 {
				t.Errorf("dequeue cut=%d: NotCommitted but Len=%d", cut, n)
			}
		}
	}
}

// TestDetectQueueDisabledPanics pins the loud-failure contract when
// detectability is off.
func TestDetectQueueDisabledPanics(t *testing.T) {
	q := New(Config{Words: 1 << 14})
	c := q.NewCtx()
	for name, f := range map[string]func(){
		"DetectBegin": func() { q.DetectBegin(c, 0, 1, engine.DetectEnqueue, 1) },
		"Detect":      func() { q.Detect(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with Clients=0 did not panic", name)
				}
			}()
			f()
		}()
	}
}
