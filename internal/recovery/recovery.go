// Package recovery is the substrate of the parallel restart pipeline
// (§4.3.3 made multi-core). Recovery everywhere in this repository has the
// same two-phase shape: a *trace* phase enumerates the reachable objects of
// a crashed image as (offset, size) spans, and a *rebuild* phase consumes
// the spans — copying them to a volatile replica, re-registering them with
// an allocator, or re-inserting them into a fresh structure. Both phases
// are embarrassingly parallel once the work is partitioned, so this package
// provides the partitioning and the worker pool, while staying ignorant of
// engines, devices, and structures (it is imported by all of them).
//
// The parallel degenerate case is exact: Run with one worker executes the
// tasks in index order on the calling goroutine, so Parallelism=1 recovery
// is byte-for-byte the sequential algorithm, not a one-worker simulation of
// the parallel one.
//
// Panics propagate: a simulated power failure during recovery surfaces as a
// pmem.ErrFrozen panic inside a worker, and Run re-raises the first panic
// on the calling goroutine after all workers have unwound — which is what
// lets the crash-during-recovery tests treat a parallel rebuild exactly
// like any other crashable operation.
package recovery

import (
	"sync"
	"sync/atomic"
)

// Span describes one reachable object collected by a trace phase: its
// device offset and its size. Fields counts logical structure fields; the
// consumer owns the fields-to-words conversion (engines differ in cell
// width).
type Span struct {
	Ref    uint64
	Fields int
}

// Options tunes a recovery pipeline.
type Options struct {
	// Parallelism is the worker count for the trace and rebuild phases.
	// Values <= 1 select the sequential path.
	Parallelism int
}

// Workers returns the effective worker count (at least 1).
func (o Options) Workers() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// Run executes fn(0..tasks-1) on at most workers goroutines and returns
// when every task has either run or been abandoned because a task panicked.
// With one worker (or one task) it runs inline, in order, on the caller.
// Tasks are claimed from a shared counter, so uneven task costs balance
// automatically. If any task panics, remaining unclaimed tasks are skipped
// and the first panic value is re-raised on the caller.
func Run(workers, tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for i := 0; i < tasks; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		panicMu  sync.Mutex
		panicVal any
		wg       sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for !stopped.Load() {
			i := int(next.Add(1)) - 1
			if i >= tasks {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						stopped.Store(true)
						panicMu.Lock()
						if panicVal == nil {
							panicVal = r
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Chunks splits the index range [0, n) into at most parts contiguous,
// near-equal [lo, hi) ranges, dropping empty ones. Shard partitioning for
// bucket arrays and heap scans uses it so every caller rounds identically.
func Chunks(n, parts int) [][2]int {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for p := 0; p < parts; p++ {
		lo, hi := n*p/parts, n*(p+1)/parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// batchTarget is the span count one rebuild task aims for: large enough to
// amortize task-claim overhead, small enough that a skewed trace shard
// (one hot bucket range, one huge skiplist segment) still splits into many
// tasks and load-balances across the workers.
const batchTarget = 512

// Batches flattens per-shard span lists into contiguous runs of roughly
// batchTarget spans, preserving within-shard order. The rebuild phase
// consumes batches as its task unit, so its parallelism is independent of
// how unbalanced the trace shards were.
func Batches(shards [][]Span) [][]Span {
	var out [][]Span
	for _, spans := range shards {
		for len(spans) > batchTarget+batchTarget/2 {
			out = append(out, spans[:batchTarget])
			spans = spans[batchTarget:]
		}
		if len(spans) > 0 {
			out = append(out, spans)
		}
	}
	return out
}
