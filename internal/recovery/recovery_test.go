package recovery

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryTask(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, tasks := range []int{0, 1, 3, 7, 100} {
			hits := make([]atomic.Int32, tasks)
			Run(workers, tasks, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, i, got)
				}
			}
		}
	}
}

func TestRunSequentialOrder(t *testing.T) {
	var order []int
	Run(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Run out of order: %v", order)
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != sentinel {
					t.Fatalf("workers=%d: recovered %v, want sentinel", workers, r)
				}
			}()
			Run(workers, 50, func(i int) {
				if i == 10 {
					panic(sentinel)
				}
			})
			t.Fatalf("workers=%d: Run returned without panicking", workers)
		}()
	}
}

func TestRunPanicStopsRemainingTasks(t *testing.T) {
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		Run(4, 10000, func(i int) {
			ran.Add(1)
			panic("stop")
		})
	}()
	// Each worker abandons its loop after observing the stop flag; far
	// fewer than all tasks may run, but at least one must have.
	if n := ran.Load(); n < 1 || n > 10000 {
		t.Fatalf("ran %d tasks", n)
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, parts := range []int{1, 2, 3, 7, 64, 2000} {
			chunks := Chunks(n, parts)
			covered := 0
			prev := 0
			for _, c := range chunks {
				if c[0] != prev {
					t.Fatalf("n=%d parts=%d: gap before %v", n, parts, c)
				}
				if c[1] <= c[0] {
					t.Fatalf("n=%d parts=%d: empty chunk %v", n, parts, c)
				}
				covered += c[1] - c[0]
				prev = c[1]
			}
			if covered != n {
				t.Fatalf("n=%d parts=%d: covered %d", n, parts, covered)
			}
			if len(chunks) > parts {
				t.Fatalf("n=%d parts=%d: %d chunks", n, parts, len(chunks))
			}
		}
	}
}

func TestBatchesPreserveSpans(t *testing.T) {
	shards := [][]Span{
		make([]Span, 3000),
		nil,
		make([]Span, 5),
		make([]Span, batchTarget),
		make([]Span, batchTarget+batchTarget/2), // just under the split point
	}
	id := uint64(0)
	for s := range shards {
		for i := range shards[s] {
			shards[s][i] = Span{Ref: id, Fields: int(id % 7)}
			id++
		}
	}
	batches := Batches(shards)
	next := uint64(0)
	for _, b := range batches {
		if len(b) == 0 {
			t.Fatal("empty batch")
		}
		if len(b) > 2*batchTarget {
			t.Fatalf("oversized batch: %d", len(b))
		}
		for _, sp := range b {
			if sp.Ref != next {
				t.Fatalf("span order broken: got ref %d, want %d", sp.Ref, next)
			}
			next++
		}
	}
	if next != id {
		t.Fatalf("batches cover %d spans, want %d", next, id)
	}
}

func TestOptionsWorkers(t *testing.T) {
	if (Options{}).Workers() != 1 || (Options{Parallelism: -3}).Workers() != 1 {
		t.Fatal("degenerate options must report one worker")
	}
	if (Options{Parallelism: 8}).Workers() != 8 {
		t.Fatal("workers should follow parallelism")
	}
}
