package protomodel

import "testing"

// TestExhaustiveTwoThreadCAS explores every interleaving of two concurrent
// CAS operations for every interesting argument shape over a small value
// domain, asserting the invariants and linearization witnesses throughout.
func TestExhaustiveTwoThreadCAS(t *testing.T) {
	const init = 5
	cases := []struct {
		name                   string
		aExp, aNew, bExp, bNew uint64
	}{
		{"race-same-expected", init, 6, init, 7},
		{"race-same-everything", init, 6, init, 6},
		{"one-stale", init, 6, 9, 7},
		{"both-stale", 8, 6, 9, 7},
		{"aba-writeback", init, 6, 6, init}, // B re-installs the initial value
		{"same-value-overwrite", init, init, init, init},
		{"chain", init, 6, 6, 7}, // B expects A's result
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Explore(init, tc.aExp, tc.aNew, tc.bExp, tc.bNew)
			for _, e := range c.Errors {
				t.Error(e)
			}
			if c.States < 5 {
				t.Errorf("only %d states explored; the model is not running", c.States)
			}
			t.Logf("%d states", c.States)
		})
	}
}

// TestExhaustiveThreeThreadCAS explores all interleavings of three
// concurrent operations for a set of argument shapes, including triple
// races on the same expected value and help chains.
func TestExhaustiveThreeThreadCAS(t *testing.T) {
	const init = 5
	cases := []struct {
		name string
		ops  []Op
	}{
		{"triple-race", []Op{{init, 6}, {init, 7}, {init, 8}}},
		{"race-plus-chain", []Op{{init, 6}, {init, 7}, {6, 8}}},
		{"aba-triangle", []Op{{init, 6}, {6, init}, {init, 7}}},
		{"same-values", []Op{{init, init}, {init, init}, {init, init}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := ExploreOps(init, tc.ops)
			for _, e := range c.Errors {
				t.Error(e)
			}
			t.Logf("%d states", c.States)
		})
	}
}

// TestSingleThreadDeterministic sanity-checks the state machine without
// concurrency: a lone CAS must succeed and install exactly once.
func TestSingleThreadDeterministic(t *testing.T) {
	// Thread B is given an expected value that can never match, so it
	// fails immediately and thread A runs effectively alone.
	c := Explore(5, 5, 6, 99, 1)
	for _, e := range c.Errors {
		t.Error(e)
	}
}
