// Package protomodel is an explicit-state model checker for the Mirror CAS
// protocol of Figure 4. It re-expresses the protocol as a small state
// machine over one cell — each shared-memory access is one atomic step —
// and exhaustively explores every interleaving of two concurrent
// operations, checking at every reachable state:
//
//   - the replica invariants of Lemmas 5.3–5.5 (the volatile sequence
//     number trails the persistent one by at most one; equal sequence
//     numbers imply equal values);
//   - durability ordering: a CAS never reports success before its
//     installed (value, seq) has reached the media;
//   - linearizability witnesses at termination: installs form a chain in
//     sequence order, each expecting its predecessor's value, successes
//     map one-to-one onto installs, and failures observed a value that
//     actually existed.
//
// The model intentionally duplicates the logic of internal/patomic rather
// than calling it: it is an independent executable specification of the
// paper's pseudocode, so a divergence between the two is itself a finding.
// The state space for two operations is tiny (thousands of states), so the
// exploration is exhaustive, not sampled.
package protomodel

import "fmt"

// pair is a (value, sequence) tuple.
type pair struct {
	v, s uint64
}

// program counters of the per-thread protocol state machine.
const (
	pcReadP     = iota // load rep_p pair
	pcReadV            // load rep_v pair, then branch
	pcHelpFlush        // help path: flush rep_p
	pcHelpFence        // help path: fence
	pcHelpCASV         // help path: mirror rep_p into rep_v, restart
	pcInstall          // DWCAS rep_p
	pcFlush            // flush rep_p (both outcomes)
	pcFence            // fence
	pcFinish           // mirror own write / help winner, set result
	pcDone
)

// thread is one operation's private state.
type thread struct {
	pc               int
	expected, newVal uint64

	rp, rv   pair // register copies of rep_p / rep_v
	before   pair // observed pair from a failed install
	ok       bool // install DWCAS outcome
	installd uint64
	result   int8 // -1 pending, 0 returned false, 1 returned true
}

// maxThreads bounds the exploration width (state is a value type so it
// can key the visited map; unused slots stay zero).
const maxThreads = 3

// state is the full system state: one cell's replicas and media plus the
// threads.
type state struct {
	p, v, media pair
	n           int
	flushed     [maxThreads]bool // per-thread pending flush of the cell's line
	th          [maxThreads]thread
}

// install records one successful persistent DWCAS for the linearization
// check.
type install struct {
	tid      int
	from, to uint64
	seq      uint64
}

// visitKey prunes revisits; it includes the install history because the
// terminal oracle depends on it (two paths to one state with different
// histories are checked separately).
type visitKey struct {
	s    state
	hist string
}

// Checker explores the interleavings.
type Checker struct {
	visited map[visitKey]bool
	Errors  []string
	States  int
}

// Op describes one concurrent CAS operation.
type Op struct {
	Expected, New uint64
}

// Explore runs the exhaustive check for two operations with the given
// arguments against a cell initialized to (init, 1).
func Explore(init uint64, aExp, aNew, bExp, bNew uint64) *Checker {
	return ExploreOps(init, []Op{{aExp, aNew}, {bExp, bNew}})
}

// ExploreOps runs the exhaustive check for up to maxThreads concurrent CAS
// operations against a cell initialized to (init, 1).
func ExploreOps(init uint64, ops []Op) *Checker {
	if len(ops) == 0 || len(ops) > maxThreads {
		panic("protomodel: 1..3 operations supported")
	}
	c := &Checker{visited: make(map[visitKey]bool)}
	var s state
	s.p = pair{init, 1}
	s.v = pair{init, 1}
	s.media = pair{init, 1}
	s.n = len(ops)
	for i, op := range ops {
		s.th[i] = thread{pc: pcReadP, expected: op.Expected, newVal: op.New, result: -1}
	}
	for i := len(ops); i < maxThreads; i++ {
		s.th[i] = thread{pc: pcDone}
	}
	c.dfs(s, nil)
	return c
}

func (c *Checker) errf(format string, args ...any) {
	if len(c.Errors) < 20 {
		c.Errors = append(c.Errors, fmt.Sprintf(format, args...))
	}
}

// checkInvariants validates the Lemma 5.3–5.5 invariants plus media
// monotonicity in every reachable state.
func (c *Checker) checkInvariants(s *state) {
	switch {
	case s.p.s == s.v.s:
		if s.p.v != s.v.v {
			c.errf("equal seqs %d with values p=%d v=%d", s.p.s, s.p.v, s.v.v)
		}
	case s.p.s == s.v.s+1:
		// legal in-flight state
	default:
		c.errf("seq gap: p.s=%d v.s=%d", s.p.s, s.v.s)
	}
	if s.media.s > s.p.s {
		c.errf("media seq %d ahead of rep_p %d", s.media.s, s.p.s)
	}
}

// checkTerminal validates the linearization witnesses when both operations
// have returned.
func (c *Checker) checkTerminal(s *state, hist []install) {
	if s.p != s.v {
		c.errf("terminal replicas differ: p=%v v=%v", s.p, s.v)
	}
	// Installs must chain in seq order from the initial value.
	last := struct {
		v uint64
		s uint64
	}{s0Value(hist, s), 1}
	_ = last
	prevVal := initialOf(hist, s)
	prevSeq := uint64(1)
	for _, in := range hist {
		if in.seq != prevSeq+1 {
			c.errf("install seq %d does not follow %d", in.seq, prevSeq)
		}
		if in.from != prevVal {
			c.errf("install expected %d but chain value was %d", in.from, prevVal)
		}
		prevVal, prevSeq = in.to, in.seq
	}
	if s.p.v != prevVal || s.p.s != prevSeq {
		c.errf("terminal cell %v != chain end (%d,%d)", s.p, prevVal, prevSeq)
	}
	// Success results map one-to-one onto installs.
	for tid := 0; tid < s.n; tid++ {
		n := 0
		for _, in := range hist {
			if in.tid == tid {
				n++
			}
		}
		switch s.th[tid].result {
		case 1:
			if n != 1 {
				c.errf("thread %d returned true with %d installs", tid, n)
			}
		case 0:
			if n != 0 {
				c.errf("thread %d returned false with an install", tid)
			}
		default:
			c.errf("thread %d never returned", tid)
		}
	}
}

func initialOf(hist []install, s *state) uint64 {
	if len(hist) > 0 {
		// The first install expected the initial value by construction
		// of the chain check; recover it from there.
		return hist[0].from
	}
	return s.p.v
}

func s0Value(hist []install, s *state) uint64 { return initialOf(hist, s) }

// dfs explores every interleaving. hist carries the path's installs.
func (c *Checker) dfs(s state, hist []install) {
	c.checkInvariants(&s)
	done := true
	for i := 0; i < s.n; i++ {
		if s.th[i].pc != pcDone {
			done = false
		}
	}
	if done {
		c.checkTerminal(&s, hist)
		return
	}
	key := visitKey{s: s, hist: fmt.Sprint(hist)}
	if c.visited[key] {
		return
	}
	c.visited[key] = true
	c.States++
	for tid := 0; tid < s.n; tid++ {
		if s.th[tid].pc == pcDone {
			continue
		}
		ns, ni := step(s, tid)
		nh := hist
		if ni != nil {
			nh = append(append([]install(nil), hist...), *ni)
		}
		c.dfs(ns, nh)
	}
}

// step executes one atomic protocol step of thread tid and returns the new
// state plus the install it performed, if any.
func step(s state, tid int) (state, *install) {
	t := &s.th[tid]
	switch t.pc {
	case pcReadP:
		t.rp = s.p
		t.pc = pcReadV
	case pcReadV:
		t.rv = s.v
		// Branch (registers only; no shared access).
		switch {
		case t.rp.s == t.rv.s+1:
			t.pc = pcHelpFlush
		case t.rp.s != t.rv.s:
			t.pc = pcReadP
		case t.rp.v != t.expected:
			t.result = 0
			t.pc = pcDone
		default:
			t.pc = pcInstall
		}
	case pcHelpFlush:
		s.flushed[tid] = true
		t.pc = pcHelpFence
	case pcHelpFence:
		if s.flushed[tid] {
			s.media = s.p
			s.flushed[tid] = false
		}
		t.pc = pcHelpCASV
	case pcHelpCASV:
		if s.v == t.rv {
			s.v = t.rp
		}
		t.pc = pcReadP
	case pcInstall:
		if s.p == t.rp {
			s.p = pair{t.newVal, t.rp.s + 1}
			t.ok = true
			t.installd = t.rp.s + 1
			t.pc = pcFlush
			// Record the install at the moment it happens, so the
			// history is chronological.
			return s, &install{tid: tid, from: t.rp.v, to: t.newVal, seq: t.installd}
		}
		t.ok = false
		t.before = s.p
		t.pc = pcFlush
	case pcFlush:
		s.flushed[tid] = true
		t.pc = pcFence
	case pcFence:
		if s.flushed[tid] {
			s.media = s.p
			s.flushed[tid] = false
		}
		t.pc = pcFinish
	case pcFinish:
		if t.ok {
			if s.v == t.rp {
				s.v = pair{t.newVal, t.installd}
			}
			t.result = 1
			t.pc = pcDone
			// Durability ordering: success implies the installed pair
			// reached the media before this return.
			if s.media.s < t.installd {
				panic(fmt.Sprintf("success before durability: media.s=%d installed=%d",
					s.media.s, t.installd))
			}
			return s, nil
		}
		if t.before.v == t.expected {
			t.pc = pcReadP // same-value, new-seq: retry (line 46)
			return s, nil
		}
		if s.v == t.rv {
			s.v = t.before // help the winner (line 47)
		}
		t.result = 0
		t.pc = pcDone
	}
	return s, nil
}
