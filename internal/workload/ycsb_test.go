package workload

import (
	"math"
	"sync"
	"testing"
	"time"
)

// countingWorker records what the driver asked of it — op classes and key
// frequencies — implementing every optional interface so no fallback
// rewriting blurs the mix.
type countingWorker struct {
	mu       *sync.Mutex
	keyFreq  map[uint64]int
	scanSpan *[]uint64
}

func (w countingWorker) touch(key uint64) {
	w.mu.Lock()
	w.keyFreq[key]++
	w.mu.Unlock()
}

func (w countingWorker) Insert(key, val uint64) bool { w.touch(key); return true }
func (w countingWorker) Delete(key uint64) bool      { w.touch(key); return true }
func (w countingWorker) Contains(key uint64) bool    { w.touch(key); return true }
func (w countingWorker) RMW(key, val uint64) bool    { w.touch(key); return true }
func (w countingWorker) Scan(from, to uint64) int {
	w.touch(from)
	w.mu.Lock()
	*w.scanSpan = append(*w.scanSpan, to-from)
	w.mu.Unlock()
	return 0
}

func countingTarget() (Target, map[uint64]int, *[]uint64, *sync.Mutex) {
	var mu sync.Mutex
	freq := make(map[uint64]int)
	spans := new([]uint64)
	t := Target{
		Name: "counting",
		NewWorker: func() Worker {
			return countingWorker{mu: &mu, keyFreq: freq, scanSpan: spans}
		},
	}
	return t, freq, spans, &mu
}

// TestYCSBConformance runs each of workloads A–F through the real driver
// and asserts the produced op mix matches its documented per-mille split
// within statistical tolerance, and that the request distribution shows
// the zipfian signature the suite prescribes.
func TestYCSBConformance(t *testing.T) {
	const keyRange = 1000
	for _, letter := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		t.Run(string(letter), func(t *testing.T) {
			mix, dist, ok := YCSBMix(letter)
			if !ok {
				t.Fatalf("YCSBMix(%c) unknown", letter)
			}
			target, freq, spans, mu := countingTarget()
			res := Run(target, Spec{
				KeyRange: keyRange,
				Mix:      mix,
				Threads:  2,
				Duration: 40 * time.Millisecond,
				Seed:     int64(letter),
				Dist:     dist,
				Skew:     0.99,
			})
			if res.Ops < 10000 {
				t.Fatalf("only %d ops; too few for a statistical pin", res.Ops)
			}
			total := float64(res.Ops)
			check := func(name string, got uint64, pm int) {
				want := float64(pm) / 1000
				frac := float64(got) / total
				// Binomial std dev at these counts is < 0.5%; 1.5% absolute
				// tolerance gives a wide margin without hiding a swapped
				// branch (the smallest mix component is 2.5%).
				if math.Abs(frac-want) > 0.015 {
					t.Errorf("%s fraction %.3f, want %.3f (mix %v)", name, frac, want, mix)
				}
			}
			check("read", res.Reads, mix.ReadPM)
			check("insert", res.Inserts, mix.InsertPM)
			check("delete", res.Deletes, mix.DeletePM)
			check("scan", res.Scans, mix.ScanPM)
			check("rmw", res.RMWs, mix.RMWPM)
			if got := res.Reads + res.Inserts + res.Deletes + res.Scans + res.RMWs; got != res.Ops {
				t.Errorf("op classes sum to %d, total %d", got, res.Ops)
			}

			// Request-distribution signature: zipfian theta .99 over 1000
			// keys concentrates >5% of draws on the hottest key; uniform
			// would put ~0.1% there.
			mu.Lock()
			max, draws := 0, 0
			for _, c := range freq {
				draws += c
				if c > max {
					max = c
				}
			}
			mu.Unlock()
			if hottest := float64(max) / float64(draws); hottest < 0.05 {
				t.Errorf("hottest key holds %.2f%% of requests; zipfian signature missing", 100*hottest)
			}

			// Scan spans must honor ScanMax's default bound (span in
			// [1, 200], clipped at the keyrange edge).
			if letter == 'E' {
				mu.Lock()
				if len(*spans) == 0 {
					t.Error("workload E produced no scans")
				}
				for _, s := range *spans {
					if s > 200 {
						t.Errorf("scan span %d exceeds 2*ScanMax", s)
						break
					}
				}
				mu.Unlock()
			}
		})
	}
}

// TestYCSBFallbacks pins the documented degradation: a worker without
// Scanner/RMWer still completes scan and RMW mixes via the fallback ops.
func TestYCSBFallbacks(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	base := fallbackWorker{mu: &mu, calls: calls}
	res := Run(Target{Name: "fallback", NewWorker: func() Worker { return base }}, Spec{
		KeyRange: 100,
		Mix:      Mix{ScanPM: 500, RMWPM: 500},
		Threads:  1,
		Duration: 10 * time.Millisecond,
		Seed:     1,
	})
	if res.Scans == 0 || res.RMWs == 0 {
		t.Fatalf("fallback run produced scans=%d rmws=%d", res.Scans, res.RMWs)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls["contains"] == 0 || calls["insert"] == 0 {
		t.Fatalf("fallbacks did not decompose into set ops: %v", calls)
	}
	// Every RMW is Contains+Insert; every scan is one Contains.
	if got, want := calls["insert"], int(res.RMWs); got != want {
		t.Errorf("insert calls %d, want one per RMW (%d)", got, want)
	}
	if got, want := calls["contains"], int(res.Scans+res.RMWs); got != want {
		t.Errorf("contains calls %d, want one per scan+RMW (%d)", got, want)
	}
}

type fallbackWorker struct {
	mu    *sync.Mutex
	calls map[string]int
}

func (w fallbackWorker) note(k string) {
	w.mu.Lock()
	w.calls[k]++
	w.mu.Unlock()
}

func (w fallbackWorker) Insert(key, val uint64) bool { w.note("insert"); return true }
func (w fallbackWorker) Delete(key uint64) bool      { w.note("delete"); return true }
func (w fallbackWorker) Contains(key uint64) bool    { w.note("contains"); return true }
