package workload

import (
	"math"
	"testing"
)

// drawCounts draws n keys from the generator with a seeded splitmix64
// stream and histograms them.
func drawCounts(t *testing.T, spec Spec, draws int) map[uint64]int {
	t.Helper()
	gen := spec.KeyGen()
	state := uint64(12345)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		k := gen(splitmix64(&state))
		if k < 1 || k > spec.KeyRange {
			t.Fatalf("dist %q: key %d out of [1, %d]", spec.Dist, k, spec.KeyRange)
		}
		counts[k]++
	}
	return counts
}

func hottestFrac(counts map[uint64]int, draws int) float64 {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(draws)
}

func TestKeyGenDeterministic(t *testing.T) {
	for _, dist := range Dists() {
		spec := Spec{KeyRange: 1000, Dist: dist, Skew: 0.9}
		gen1, gen2 := spec.KeyGen(), spec.KeyGen()
		state1, state2 := uint64(7), uint64(7)
		for i := 0; i < 5000; i++ {
			a, b := gen1(splitmix64(&state1)), gen2(splitmix64(&state2))
			if a != b {
				t.Fatalf("dist %q: draw %d diverged (%d vs %d)", dist, i, a, b)
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, draws = 1000, 200000
	uni := drawCounts(t, Spec{KeyRange: n, Dist: DistUniform}, draws)
	zipf := drawCounts(t, Spec{KeyRange: n, Dist: DistZipfian, Skew: 0.99}, draws)
	uf, zf := hottestFrac(uni, draws), hottestFrac(zipf, draws)
	// Uniform: hottest key ≈ 1/n ≈ 0.1%. Zipfian theta=0.99 over 1000
	// keys: hottest ≈ 1/zetan ≈ 12–13%. A wide margin keeps the test
	// robust while still catching a generator that degenerated to uniform.
	if uf > 0.01 {
		t.Errorf("uniform hottest key holds %.2f%% of draws, want < 1%%", 100*uf)
	}
	if zf < 0.05 {
		t.Errorf("zipfian hottest key holds %.2f%% of draws, want > 5%%", 100*zf)
	}
	// The scramble must spread the hot ranks across the keyspace, not pin
	// them to the low keys: the hottest key should rarely be key 1.
	if len(zipf) < n/4 {
		t.Errorf("zipfian touched only %d of %d keys", len(zipf), n)
	}
}

func TestHotspotFraction(t *testing.T) {
	const n, draws = 1000, 200000
	frac := 0.8
	counts := drawCounts(t, Spec{KeyRange: n, Dist: DistHotspot, Skew: frac}, draws)
	// Reconstruct the hot set exactly as the generator does: the image of
	// ranks [0, n/10) under the scramble.
	hot := make(map[uint64]bool)
	for r := uint64(0); r < n/10; r++ {
		hot[mixKey(r)%n+1] = true
	}
	hotDraws := 0
	for k, c := range counts {
		if hot[k] {
			hotDraws += c
		}
	}
	got := float64(hotDraws) / float64(draws)
	// The cold path can also land in the hot set by chance (~10%), so the
	// observed hot fraction is frac + (1-frac)*|hot|/n ≈ 0.82.
	want := frac + (1-frac)*float64(len(hot))/float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("hot-set fraction = %.3f, want ≈ %.3f", got, want)
	}
}

func TestKeyGenUnknownDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown distribution should panic")
		}
	}()
	Spec{KeyRange: 10, Dist: "bogus"}.KeyGen()
}
