package workload

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// mapWorker is an in-memory reference target.
type mapTarget struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

type mapWorker struct{ t *mapTarget }

func (w mapWorker) Insert(key, val uint64) bool {
	w.t.mu.Lock()
	defer w.t.mu.Unlock()
	if _, ok := w.t.m[key]; ok {
		return false
	}
	w.t.m[key] = val
	return true
}

func (w mapWorker) Delete(key uint64) bool {
	w.t.mu.Lock()
	defer w.t.mu.Unlock()
	if _, ok := w.t.m[key]; !ok {
		return false
	}
	delete(w.t.m, key)
	return true
}

func (w mapWorker) Contains(key uint64) bool {
	w.t.mu.Lock()
	defer w.t.mu.Unlock()
	_, ok := w.t.m[key]
	return ok
}

func newMapTarget() (*mapTarget, Target) {
	mt := &mapTarget{m: make(map[uint64]uint64)}
	return mt, Target{Name: "map", NewWorker: func() Worker { return mapWorker{mt} }}
}

func TestMixValidate(t *testing.T) {
	for _, m := range []Mix{Mix801010, YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF} {
		m.validate()
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid mix should panic")
		}
	}()
	Mix{ReadPM: 1, InsertPM: 2, DeletePM: 3}.validate()
}

func TestUpdateMix(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw) % 101
		m := UpdateMix(p)
		m.validate()
		return m.InsertPM+m.DeletePM == p*10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if UpdateMix(0) != YCSBC {
		t.Errorf("UpdateMix(0) = %+v, want YCSB-C", UpdateMix(0))
	}
}

func TestMixString(t *testing.T) {
	if got := YCSBB.String(); got != "95%r/2.5%i/2.5%d" {
		t.Errorf("String = %q", got)
	}
}

func TestPrefillHalf(t *testing.T) {
	mt, target := newMapTarget()
	n := PrefillHalf(target, 10000, 42)
	if len(mt.m) != n {
		t.Fatalf("reported %d, map holds %d", n, len(mt.m))
	}
	// Roughly half, within 5 sigma of binomial.
	if n < 4600 || n > 5400 {
		t.Errorf("prefill = %d of 10000, want about half", n)
	}
	// Deterministic for a given seed.
	mt2, target2 := newMapTarget()
	if n2 := PrefillHalf(target2, 10000, 42); n2 != n || len(mt2.m) != n {
		t.Errorf("prefill not deterministic: %d vs %d", n2, n)
	}
}

func TestRunCountsAndMix(t *testing.T) {
	_, target := newMapTarget()
	res := Run(target, Spec{
		KeyRange: 1000,
		Mix:      Mix801010,
		Threads:  4,
		Duration: 50 * time.Millisecond,
		Seed:     1,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Reads+res.Inserts+res.Deletes != res.Ops {
		t.Error("per-type counts do not sum to total")
	}
	readFrac := float64(res.Reads) / float64(res.Ops)
	if readFrac < 0.75 || readFrac > 0.85 {
		t.Errorf("read fraction = %.3f, want about 0.8", readFrac)
	}
	if res.MopsPerSec() <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestRunReadOnlyDoesNotMutate(t *testing.T) {
	mt, target := newMapTarget()
	PrefillHalf(target, 100, 7)
	before := len(mt.m)
	Run(target, Spec{KeyRange: 100, Mix: YCSBC, Threads: 2, Duration: 20 * time.Millisecond, Seed: 2})
	if len(mt.m) != before {
		t.Errorf("read-only run changed the set: %d -> %d", before, len(mt.m))
	}
}

func TestResultZeroElapsed(t *testing.T) {
	if (Result{Ops: 10}).MopsPerSec() != 0 {
		t.Error("zero elapsed should give zero throughput")
	}
}

func TestLatencySampling(t *testing.T) {
	_, target := newMapTarget()
	res := Run(target, Spec{
		KeyRange: 100, Mix: Mix801010, Threads: 2,
		Duration: 30 * time.Millisecond, Seed: 3, SampleLatency: 16,
	})
	if len(res.Latencies) == 0 {
		t.Fatal("no latency samples collected")
	}
	for i := 1; i < len(res.Latencies); i++ {
		if res.Latencies[i] < res.Latencies[i-1] {
			t.Fatal("latencies not sorted")
		}
	}
	p50, p99 := res.Percentile(50), res.Percentile(99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("percentiles p50=%v p99=%v", p50, p99)
	}
	if res.Percentile(0) != res.Latencies[0] {
		t.Error("p0 should be the minimum")
	}
	// Sampling off: no percentiles.
	res2 := Run(target, Spec{KeyRange: 100, Mix: YCSBC, Threads: 1, Duration: 10 * time.Millisecond, Seed: 3})
	if res2.Percentile(50) != 0 || len(res2.Latencies) != 0 {
		t.Error("sampling should be off by default")
	}
}
