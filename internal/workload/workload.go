// Package workload generates and drives the benchmark workloads of §6.1:
// uniform random keys over a range [1, r], structures prefilled with r/2
// keys, and operation mixes covering YCSB-A/B/C plus the 80/10/10
// lookup/insert/delete mix used in most figures.
package workload

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mix is an operation mix in per-mille (so 95.5% reads is representable).
// Scans and read-modify-writes are optional op classes (YCSB-E/F); targets
// without native support fall back per the Scanner/RMWer interface docs.
type Mix struct {
	ReadPM   int
	InsertPM int
	DeletePM int
	ScanPM   int
	RMWPM    int
}

func (m Mix) validate() {
	if m.ReadPM+m.InsertPM+m.DeletePM+m.ScanPM+m.RMWPM != 1000 {
		panic(fmt.Sprintf("workload: mix %+v does not sum to 1000 per-mille", m))
	}
}

// String renders the mix as the paper writes it, with scan/RMW components
// only when present.
func (m Mix) String() string {
	s := fmt.Sprintf("%g%%r/%g%%i/%g%%d",
		float64(m.ReadPM)/10, float64(m.InsertPM)/10, float64(m.DeletePM)/10)
	if m.ScanPM > 0 {
		s += fmt.Sprintf("/%g%%s", float64(m.ScanPM)/10)
	}
	if m.RMWPM > 0 {
		s += fmt.Sprintf("/%g%%m", float64(m.RMWPM)/10)
	}
	return s
}

// The standard mixes of §6.1, extended to the full YCSB core suite. The
// set-structure mapping is documented per workload: YCSB "update" on a
// keyed set splits evenly between inserts and deletes (A, B), so the
// structure size stays in steady state around the prefill.
var (
	// Mix801010 is 80% lookups, 10% inserts, 10% deletes.
	Mix801010 = Mix{ReadPM: 800, InsertPM: 100, DeletePM: 100}
	// YCSBA is 50% reads, updates split between inserts and deletes.
	YCSBA = Mix{ReadPM: 500, InsertPM: 250, DeletePM: 250}
	// YCSBB is 95% reads.
	YCSBB = Mix{ReadPM: 950, InsertPM: 25, DeletePM: 25}
	// YCSBC is read-only.
	YCSBC = Mix{ReadPM: 1000}
	// YCSBD is 95% reads, 5% inserts. YCSB's "latest" request
	// distribution (reads skewed to recent inserts) is approximated by
	// running it under the scrambled zipfian — honest caveat in
	// EXPERIMENTS.md: the skew is toward a fixed hot set, not the
	// insertion frontier.
	YCSBD = Mix{ReadPM: 950, InsertPM: 50}
	// YCSBE is 95% short range scans, 5% inserts.
	YCSBE = Mix{ScanPM: 950, InsertPM: 50}
	// YCSBF is 50% reads, 50% read-modify-writes.
	YCSBF = Mix{ReadPM: 500, RMWPM: 500}
)

// YCSBMix returns workload letter ('A'..'F', case-insensitive) as its mix
// plus the suite's default request distribution for it.
func YCSBMix(letter byte) (Mix, string, bool) {
	switch letter | 0x20 {
	case 'a':
		return YCSBA, DistZipfian, true
	case 'b':
		return YCSBB, DistZipfian, true
	case 'c':
		return YCSBC, DistZipfian, true
	case 'd':
		return YCSBD, DistZipfian, true // "latest" approximated by zipfian
	case 'e':
		return YCSBE, DistZipfian, true
	case 'f':
		return YCSBF, DistZipfian, true
	}
	return Mix{}, "", false
}

// UpdateMix returns the mix with the given percentage of updates (split
// evenly between inserts and deletes), as used in the update sweeps.
func UpdateMix(updatePct int) Mix {
	u := updatePct * 10
	return Mix{ReadPM: 1000 - u, InsertPM: u / 2, DeletePM: u - u/2}
}

// Worker is one thread's handle onto the structure under test. Adapters
// wrap each structure+engine combination.
type Worker interface {
	Insert(key, val uint64) bool
	Delete(key uint64) bool
	Contains(key uint64) bool
}

// Scanner is an optional Worker extension for range scans (YCSB-E): count
// the keys present in [from, to]. Workers without it serve a Mix.ScanPM
// operation as a Contains of the scan's start key (still counted as a
// scan in the Result), so scan mixes run — without scan semantics — on
// structures that cannot iterate in key order.
type Scanner interface {
	Scan(from, to uint64) int
}

// RMWer is an optional Worker extension for read-modify-write (YCSB-F).
// Workers without it serve a Mix.RMWPM operation as Contains followed by
// Insert of the same key — the closest composite a set API offers.
type RMWer interface {
	RMW(key, val uint64) bool
}

// Target is a freshly built structure under test.
type Target struct {
	Name string
	// NewWorker creates a per-thread handle; called once per thread.
	NewWorker func() Worker
	// SortedPrefill requests descending-key prefill order, which keeps
	// sorted-list insertion O(1) per key. Leave it false for trees: a
	// sorted prefill degenerates an unbalanced BST into a path.
	SortedPrefill bool
}

// Spec describes one benchmark run.
type Spec struct {
	KeyRange uint64        // keys drawn uniformly from [1, KeyRange]
	Mix      Mix           // operation mix
	Threads  int           // concurrent workers
	Duration time.Duration // measurement window
	Seed     int64         // base PRNG seed
	// SampleLatency, when nonzero, times every n-th operation so the
	// Result carries latency percentiles (sampling keeps the timer
	// overhead out of the measured throughput).
	SampleLatency int
	// Dist selects the key distribution: "" or DistUniform draws keys
	// uniformly from [1, KeyRange]; DistZipfian draws ranks from the Gray
	// et al. scrambled zipfian with parameter Skew; DistHotspot sends a
	// Skew fraction of accesses to a scrambled 10% hot set. Both skewed
	// distributions scramble ranks across the keyspace, so the hot keys
	// stress shard routing and structure hot paths rather than one dense
	// key region.
	Dist string
	// Skew parameterizes Dist: the zipfian theta in (0, 1) (default 0.99)
	// or the hotspot access fraction in (0, 1] (default 0.9). Ignored for
	// the uniform distribution.
	Skew float64
	// ScanMax bounds the span of a Mix.ScanPM range scan: each scan
	// covers [key, key+span] with span drawn uniformly from [1, 2*ScanMax]
	// (the prefill holds roughly every other key, so the expected result
	// size is ~ScanMax/2 keys, matching YCSB-E's uniform scan lengths).
	// Zero defaults to 100.
	ScanMax int
}

// Key distribution names.
const (
	DistUniform = "uniform"
	DistZipfian = "zipfian"
	DistHotspot = "hotspot"
)

// Dists lists the supported key distributions.
func Dists() []string { return []string{DistUniform, DistZipfian, DistHotspot} }

// KeyFn maps one 64-bit PRNG draw to a key in [1, KeyRange].
type KeyFn func(r uint64) uint64

// mixKey is a splitmix64 finalizer used to scramble ranks across the
// keyspace (the "scrambled" in scrambled zipfian).
func mixKey(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// zetaCache memoizes the zipfian normalization sums, which cost O(n) to
// compute and are shared by every thread and every run at the same
// (n, theta).
var zetaCache sync.Map // "n/theta" -> float64

func zetaN(n uint64, theta float64) float64 {
	k := fmt.Sprintf("%d/%g", n, theta)
	if v, ok := zetaCache.Load(k); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(k, sum)
	return sum
}

// KeyGen builds the spec's key generator. The returned function is pure
// (all state is in the caller's PRNG draw), so one generator is safely
// shared by every worker thread.
func (s Spec) KeyGen() KeyFn {
	n := s.KeyRange
	switch s.Dist {
	case "", DistUniform:
		return func(r uint64) uint64 { return r%n + 1 }
	case DistZipfian:
		// Gray et al.'s bounded zipfian generator (the YCSB one): ranks
		// follow P(rank=i) ∝ 1/i^theta, then a full-avalanche scramble
		// maps rank popularity onto pseudo-random keys.
		theta := s.Skew
		if theta <= 0 {
			theta = 0.99
		}
		if theta >= 1 {
			theta = 0.999 // the closed form needs theta != 1
		}
		zetan := zetaN(n, theta)
		alpha := 1 / (1 - theta)
		eta := (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zetaN(2, theta)/zetan)
		halfPow := 1 + math.Pow(0.5, theta)
		return func(r uint64) uint64 {
			u := float64(r>>11) / (1 << 53)
			uz := u * zetan
			var rank uint64
			switch {
			case uz < 1:
				rank = 1
			case uz < halfPow:
				rank = 2
			default:
				rank = 1 + uint64(float64(n)*math.Pow(eta*u-eta+1, alpha))
			}
			if rank > n {
				rank = n
			}
			return mixKey(rank)%n + 1
		}
	case DistHotspot:
		frac := s.Skew
		if frac <= 0 || frac > 1 {
			frac = 0.9
		}
		hot := n / 10
		if hot < 1 {
			hot = 1
		}
		cut := uint64(frac * float64(1<<32))
		return func(r uint64) uint64 {
			// Low 32 bits decide hot/cold; high bits pick the key, so the
			// two choices stay independent. The hot set is the fixed
			// scrambled image of [0, hot), spread across the keyspace.
			if uint64(uint32(r)) < cut {
				return mixKey((r>>32)%hot)%n + 1
			}
			return (r>>32)%n + 1
		}
	default:
		panic(fmt.Sprintf("workload: unknown key distribution %q (want %v)", s.Dist, Dists()))
	}
}

// Result is the outcome of a run.
type Result struct {
	Ops     uint64 // total completed operations
	Reads   uint64
	Inserts uint64
	Deletes uint64
	Scans   uint64
	RMWs    uint64
	Elapsed time.Duration

	// Latencies holds the sampled per-operation latencies, sorted,
	// when Spec.SampleLatency was set.
	Latencies []time.Duration
}

// Percentile returns the p-th latency percentile (p in [0,100]) from the
// sampled latencies, or 0 if sampling was off.
func (r Result) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(r.Latencies)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.Latencies) {
		idx = len(r.Latencies) - 1
	}
	return r.Latencies[idx]
}

// MopsPerSec returns throughput in million operations per second, the unit
// of every figure in the paper.
func (r Result) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// splitmix64 advances and hashes a PRNG state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PrefillHalf inserts half of the key range (a deterministic pseudo-random
// half, matching "initialized with r/2 keys"). It uses a single worker;
// prefill correctness does not depend on concurrency.
//
// Key order: targets with SortedPrefill get descending keys (O(1) per
// sorted-list insertion); everything else gets bit-reversed key order,
// which spreads insertions uniformly across the key space so external BSTs
// come out balanced and allocation patterns are realistic.
func PrefillHalf(t Target, keyRange uint64, seed int64) int {
	w := t.NewWorker()
	n := 0
	state := uint64(seed) ^ 0xabcdef12345
	insert := func(key uint64) {
		s := state ^ key*0x9e3779b97f4a7c15
		if splitmix64(&s)&1 == 0 {
			if w.Insert(key, key) {
				n++
			}
		}
	}
	if t.SortedPrefill {
		for key := keyRange; key >= 1; key-- {
			insert(key)
		}
		return n
	}
	width := bits.Len64(keyRange)
	for i := uint64(0); i < 1<<width; i++ {
		key := bits.Reverse64(i) >> (64 - width)
		if key >= 1 && key <= keyRange {
			insert(key)
		}
	}
	return n
}

// Run drives the workload and reports throughput. Every thread uses an
// independent PRNG; operations are chosen per the mix and keys uniformly
// from the range.
func Run(t Target, spec Spec) Result {
	spec.Mix.validate()
	if spec.Threads <= 0 {
		panic("workload: need at least one thread")
	}
	if spec.KeyRange == 0 {
		panic("workload: empty key range")
	}
	var stop atomic.Bool
	gen := spec.KeyGen()
	yield := spec.Threads > runtime.GOMAXPROCS(0)
	scanMax := uint64(spec.ScanMax)
	if scanMax == 0 {
		scanMax = 100
	}
	counts := make([][6]uint64, spec.Threads) // ops, reads, inserts, deletes, scans, rmws
	samples := make([][]time.Duration, spec.Threads)
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < spec.Threads; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(id int) {
			defer wg.Done()
			w := t.NewWorker()
			scanner, _ := w.(Scanner)
			rmwer, _ := w.(RMWer)
			state := uint64(spec.Seed)*0x9e3779b97f4a7c15 + uint64(id+1)*0x123456789
			ready.Done()
			<-start
			var ops, reads, inserts, deletes, scans, rmws uint64
			var lats []time.Duration
			rPM := spec.Mix.ReadPM
			iPM := rPM + spec.Mix.InsertPM
			dPM := iPM + spec.Mix.DeletePM
			sPM := dPM + spec.Mix.ScanPM
			for !stop.Load() {
				r := splitmix64(&state)
				key := gen(r)
				op := int((splitmix64(&state)) % 1000)
				var t0 time.Time
				timed := spec.SampleLatency > 0 && ops%uint64(spec.SampleLatency) == 0
				if timed {
					t0 = time.Now()
				}
				switch {
				case op < rPM:
					w.Contains(key)
					reads++
				case op < iPM:
					w.Insert(key, key)
					inserts++
				case op < dPM:
					w.Delete(key)
					deletes++
				case op < sPM:
					if scanner != nil {
						span := splitmix64(&state)%(2*scanMax) + 1
						to := key + span
						if to > spec.KeyRange {
							to = spec.KeyRange
						}
						scanner.Scan(key, to)
					} else {
						w.Contains(key)
					}
					scans++
				default:
					if rmwer != nil {
						rmwer.RMW(key, key)
					} else {
						w.Contains(key)
						w.Insert(key, key)
					}
					rmws++
				}
				if timed {
					lats = append(lats, time.Since(t0))
				}
				ops++
				if yield {
					// With more workers than cores, a descheduled
					// worker parks mid-operation for a whole scheduler
					// quantum, pinning the reclamation epoch (classic
					// EBR oversubscription starvation). Yielding at
					// operation boundaries restores op-granular
					// interleaving, as hardware threads would have.
					runtime.Gosched()
				}
			}
			counts[id] = [6]uint64{ops, reads, inserts, deletes, scans, rmws}
			samples[id] = lats
		}(i)
	}
	ready.Wait()
	begin := time.Now()
	close(start)
	time.Sleep(spec.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)
	var res Result
	for _, c := range counts {
		res.Ops += c[0]
		res.Reads += c[1]
		res.Inserts += c[2]
		res.Deletes += c[3]
		res.Scans += c[4]
		res.RMWs += c[5]
	}
	res.Elapsed = elapsed
	if spec.SampleLatency > 0 {
		for _, s := range samples {
			res.Latencies = append(res.Latencies, s...)
		}
		sort.Slice(res.Latencies, func(i, j int) bool {
			return res.Latencies[i] < res.Latencies[j]
		})
	}
	return res
}
