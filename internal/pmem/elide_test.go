package pmem

import "testing"

// newElideDevice builds a persistent, tracking device with the flush-elision
// watermark machinery on.
func newElideDevice(words int) *Device {
	return New(Config{Name: "nvmm", Words: words, Persistent: true, Track: true, Elide: true})
}

func TestPersistedRequiresFencedCommit(t *testing.T) {
	d := newElideDevice(64)
	var fs FlushSet

	tag := d.PersistEpoch()
	d.Store(8, 7)
	if d.Persisted(8, tag) {
		t.Fatal("Persisted before any flush+fence")
	}
	d.Flush(&fs, 8)
	if d.Persisted(8, tag) {
		t.Fatal("Persisted after flush but before fence")
	}
	d.Fence(&fs)
	if !d.Persisted(8, tag) {
		t.Fatal("not Persisted after a fenced commit that started after the tag read")
	}
	if got := d.PersistedWord(8); got != 7 {
		t.Fatalf("media word = %d, want 7", got)
	}
}

// TestPersistedIsStrict pins the strict inequality: a tag read at or after
// the committing fence's epoch advance proves nothing about ordering, so
// Persisted must answer false even though the line is in fact on media.
// Conservative, but exactly what keeps single-threaded runs deterministic.
func TestPersistedIsStrict(t *testing.T) {
	d := newElideDevice(64)
	var fs FlushSet
	d.Store(8, 7)
	d.Flush(&fs, 8)
	d.Fence(&fs)
	tag := d.PersistEpoch()
	if d.Persisted(8, tag) {
		t.Fatal("Persisted with a tag read after the fence: strict > violated")
	}
	// A tag from before the fence still proves the commit.
	if !d.Persisted(8, tag-1) {
		t.Fatal("Persisted lost an earlier commit")
	}
}

func TestCommitTicketAndWaitPersisted(t *testing.T) {
	d := newElideDevice(64)
	var fs FlushSet
	tag := d.PersistEpoch()
	d.Store(8, 7)
	if got := d.CommitTicket(8); got != 0 {
		t.Fatalf("ticket before any fence = %d, want 0", got)
	}
	d.Flush(&fs, 8)
	d.Fence(&fs)
	ticket := d.CommitTicket(8)
	if ticket <= tag {
		t.Fatalf("ticket after fence = %d, want > %d", ticket, tag)
	}
	if !d.WaitPersisted(8, ticket) {
		t.Fatal("WaitPersisted on a completed fence's ticket")
	}
}

// TestEvictionDoesNotAdvanceWatermark is the soundness condition of the
// whole layer: the fault model's early eviction copies a line to media, but
// an eviction is not a guarantee, so Persisted must keep answering false.
func TestEvictionDoesNotAdvanceWatermark(t *testing.T) {
	d := newElideDevice(64)
	d.InjectFaults(NewFaultModel(1, FaultSpec{Evict: true}))
	tag := d.PersistEpoch()
	d.Store(8, 7)
	evicted := false
	for i := 0; i < 20*evictPeriod && !evicted; i++ {
		d.Load(8) // each op may evict the accessed line
		evicted = d.PersistedWord(8) == 7
	}
	if !evicted {
		t.Skip("seeded eviction never fired; adjust the seed")
	}
	if d.Persisted(8, tag) {
		t.Fatal("early eviction advanced the persisted-epoch watermark")
	}

	// The test-only broken variant is the opposite pin: eviction falsely
	// advances the watermark past any current tag.
	b := newElideDevice(64)
	b.BreakWatermarkForTest()
	b.InjectFaults(NewFaultModel(1, FaultSpec{Evict: true}))
	tag = b.PersistEpoch()
	b.Store(8, 7)
	for i := 0; i < 20*evictPeriod && !b.Persisted(8, tag); i++ {
		b.Load(8)
	}
	if !b.Persisted(8, tag) {
		t.Fatal("broken variant did not advance the watermark on eviction")
	}
}

func TestRelaxedRegistryCommit(t *testing.T) {
	d := newElideDevice(64)
	var fs FlushSet
	d.Store(8, 7)
	d.Store(16, 9)
	d.NoteRelaxed(&fs, 8)
	d.NoteRelaxed(&fs, 9)  // same line: deduplicated
	d.NoteRelaxed(&fs, 16) // second line
	if got := d.RelaxedPending(); got != 2 {
		t.Fatalf("RelaxedPending = %d, want 2 (dedup by line)", got)
	}
	fl0, fe0 := d.Counters()
	d.CommitRelaxed(&fs)
	fl1, fe1 := d.Counters()
	if fl1-fl0 != 2 || fe1-fe0 != 1 {
		t.Fatalf("CommitRelaxed cost (%d flushes, %d fences), want (2, 1)", fl1-fl0, fe1-fe0)
	}
	if d.RelaxedPending() != 0 {
		t.Fatal("registry not drained")
	}
	if d.PersistedWord(8) != 7 || d.PersistedWord(16) != 9 {
		t.Fatal("relaxed lines not on media after CommitRelaxed")
	}
	// An empty registry commits nothing — not even the fence.
	d.CommitRelaxed(&fs)
	fl2, fe2 := d.Counters()
	if fl2 != fl1 || fe2 != fe1 {
		t.Fatalf("empty CommitRelaxed issued (%d flushes, %d fences)", fl2-fl1, fe2-fe1)
	}
	_, _, _, relaxed := d.ElisionCounters()
	if relaxed != 3 {
		t.Fatalf("relaxed counter = %d, want 3", relaxed)
	}
}

// TestCrashClearsRegistryKeepsWatermark pins the crash semantics: the
// registry's obligations die with the volatile world (the lines' media
// fate was decided by the crash), while the watermark table survives —
// marks never exceed the epoch counter, so stale marks can never satisfy
// the strict inequality against a post-crash tag.
func TestCrashClearsRegistryKeepsWatermark(t *testing.T) {
	d := newElideDevice(64)
	var fs FlushSet
	d.Store(8, 7)
	d.Flush(&fs, 8)
	d.Fence(&fs)
	d.Store(16, 9)
	d.NoteRelaxed(&fs, 16)
	d.Freeze()
	d.Crash(CrashDropAll, nil)
	if d.RelaxedPending() != 0 {
		t.Fatal("relaxed registry survived the crash")
	}
	if tag := d.PersistEpoch(); d.Persisted(8, tag) {
		t.Fatal("stale watermark beats a post-crash tag")
	}
	if d.Persisted(8, 0) != (d.PersistEpoch() > 0) {
		t.Fatal("watermark table lost across crash")
	}
}
