package pmem

import (
	"testing"
)

func faultDevice(words int) *Device {
	return New(Config{Name: "fault", Words: words, Persistent: true, Track: true})
}

func TestFaultSpecParseRoundTrip(t *testing.T) {
	for _, s := range []string{"none", "torn", "evict", "drop", "torn,evict", "torn,evict,drop"} {
		spec, err := ParseFaultSpec(s)
		if err != nil {
			t.Fatalf("ParseFaultSpec(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := ParseFaultSpec("torn,bogus"); err == nil {
		t.Error("bogus behavior accepted")
	}
	if spec, err := ParseFaultSpec(""); err != nil || spec != (FaultSpec{}) {
		t.Errorf("empty spec = %v, %v", spec, err)
	}
}

// runFaultSchedule runs a fixed single-threaded schedule with some flushed
// and some unflushed lines, then crashes, returning the media hash.
func runFaultSchedule(t *testing.T, seed int64, spec FaultSpec) uint64 {
	t.Helper()
	d := faultDevice(1024)
	fm := NewFaultModel(seed, spec)
	d.InjectFaults(fm)
	var fs FlushSet
	for i := uint64(1); i <= 256; i++ {
		d.Store(i, i*i+1)
		if i%3 == 0 {
			d.Flush(&fs, i)
		}
		if i%9 == 0 {
			d.Fence(&fs)
		}
	}
	d.Crash(CrashDropAll, nil)
	return d.MediaHash()
}

func TestFaultCrashDeterministic(t *testing.T) {
	spec := FaultSpec{Torn: true, Evict: true, Drop: true}
	a := runFaultSchedule(t, 42, spec)
	b := runFaultSchedule(t, 42, spec)
	if a != b {
		t.Fatalf("same (seed, schedule) produced different media images: %#x vs %#x", a, b)
	}
	c := runFaultSchedule(t, 43, spec)
	if a == c {
		t.Fatalf("different seeds produced identical media images %#x (adversary inert?)", a)
	}
}

// TestTornLinePersists checks the torn fate: with only Torn enabled, every
// dirty line either persists whole or persists a strict contiguous
// sub-range of its dirty words — never an arbitrary subset, never nothing.
func TestTornLinePersists(t *testing.T) {
	sawTear := false
	for seed := int64(1); seed <= 20; seed++ {
		d := faultDevice(1024)
		d.InjectFaults(NewFaultModel(seed, FaultSpec{Torn: true}))
		// Dirty four whole lines, never flushed.
		for off := uint64(8); off < 40; off++ {
			d.Store(off, 1000+off)
		}
		d.Crash(CrashDropAll, nil)
		for line := uint64(1); line < 5; line++ {
			base := line * WordsPerLine
			persisted := 0
			runs := 0
			inRun := false
			for off := base; off < base+WordsPerLine; off++ {
				if d.PersistedWord(off) == 1000+off {
					persisted++
					if !inRun {
						runs++
						inRun = true
					}
				} else if d.PersistedWord(off) != 0 {
					t.Fatalf("seed %d line %d off %d: media holds %d, neither old nor new",
						seed, line, off, d.PersistedWord(off))
				} else {
					inRun = false
				}
			}
			if persisted == 0 {
				t.Fatalf("seed %d line %d: fully dropped, but Drop is disabled", seed, line)
			}
			if runs > 1 {
				t.Fatalf("seed %d line %d: %d persisted runs; tear must be one contiguous sub-range", seed, line, runs)
			}
			if persisted < WordsPerLine {
				sawTear = true
			}
		}
	}
	if !sawTear {
		t.Fatal("no line ever tore across 20 seeds")
	}
}

// TestEvictPersistsEarly checks asynchronous eviction: an unflushed,
// unfenced store reaches the media through repeated accesses to its line —
// the history-dependent hazard no crash-time-only policy can produce.
func TestEvictPersistsEarly(t *testing.T) {
	d := faultDevice(512)
	d.InjectFaults(NewFaultModel(7, FaultSpec{Evict: true}))
	d.Store(9, 111)
	evicted := false
	for i := 0; i < 20*evictPeriod; i++ {
		d.Load(9)
		if d.PersistedWord(9) == 111 {
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("unflushed store never evicted to media")
	}
	// Overwrite without flushing; with Drop the crash can now expose the
	// evicted intermediate value.
	d.Store(9, 222)
	d.InjectFaults(NewFaultModel(7, FaultSpec{Drop: true}))
	d.Crash(CrashDropAll, nil)
	if got := d.ReadRaw(9); got != 111 && got != 222 {
		t.Fatalf("post-crash word = %d, want the evicted 111 or the persisted 222", got)
	}
}

func TestCrashAfterSubOpTrigger(t *testing.T) {
	d := faultDevice(512)
	fm := NewFaultModel(1, FaultSpec{})
	d.InjectFaults(fm)
	fm.CrashAfter(5)
	var fs FlushSet
	ops := []func(){
		func() { d.Store(8, 1) },
		func() { d.Load(8) },
		func() { d.Flush(&fs, 8) },
		func() { d.Fence(&fs) }, // fences are consultations too
		func() { d.Store(9, 2) },
	}
	for i, op := range ops {
		panicked := func() (p bool) {
			defer func() {
				if r := recover(); r != nil {
					if r != ErrFrozen {
						panic(r)
					}
					p = true
				}
			}()
			op()
			return false
		}()
		if want := i == 4; panicked != want {
			t.Fatalf("op %d: panicked = %v, want %v", i, panicked, want)
		}
	}
	if fm.CrashedAt() != 5 {
		t.Fatalf("CrashedAt = %d, want 5", fm.CrashedAt())
	}
	if !d.Frozen() {
		t.Fatal("device not frozen after trigger")
	}
}

// TestCopyRangeSingleCountableOp pins the FreezeAfter interaction: without
// a fault model, a multi-line CopyRange is one countable operation — the
// countdown either crashes it before any word moves or lets the whole span
// through, never a partial copy.
func TestCopyRangeSingleCountableOp(t *testing.T) {
	src := faultDevice(1024)
	dst := faultDevice(1024)
	for off := uint64(8); off < 72; off++ {
		src.WriteRaw(off, off+5000)
	}
	src.FreezeAfter(1)
	panicked := func() (p bool) {
		defer func() {
			if r := recover(); r != nil {
				if r != ErrFrozen {
					panic(r)
				}
				p = true
			}
		}()
		src.CopyRange(dst, 8, 64)
		return false
	}()
	if !panicked {
		t.Fatal("FreezeAfter(1) did not crash the CopyRange")
	}
	for off := uint64(8); off < 72; off++ {
		if dst.ReadRaw(off) != 0 {
			t.Fatalf("off %d copied by a crashed whole-op CopyRange", off)
		}
	}
}

// TestFaultCrashInsideCopyRange is the regression test for sub-operation
// triggers: with a fault model installed, each line of a bulk copy is a
// separate consultation, so the crash lands *inside* the span and exactly
// the lines before the trigger are copied.
func TestFaultCrashInsideCopyRange(t *testing.T) {
	src := faultDevice(1024)
	dst := faultDevice(1024)
	for off := uint64(8); off < 72; off++ { // lines 1..8
		src.WriteRaw(off, off+7000)
	}
	fm := NewFaultModel(3, FaultSpec{})
	src.InjectFaults(fm)
	fm.CrashAfter(3) // consultations: line 1 ok, line 2 ok, line 3 crashes
	panicked := func() (p bool) {
		defer func() {
			if r := recover(); r != nil {
				if r != ErrFrozen {
					panic(r)
				}
				p = true
			}
		}()
		src.CopyRange(dst, 8, 64)
		return false
	}()
	if !panicked {
		t.Fatal("crash trigger did not fire inside the CopyRange")
	}
	for off := uint64(8); off < 24; off++ { // the two completed lines
		if dst.ReadRaw(off) != off+7000 {
			t.Fatalf("off %d not copied before the mid-copy crash", off)
		}
	}
	for off := uint64(24); off < 72; off++ { // everything after the trigger
		if dst.ReadRaw(off) != 0 {
			t.Fatalf("off %d copied after the mid-copy crash", off)
		}
	}
}

// TestFaultModelSurvivesCrash checks that Crash leaves the installed model
// active (so a replay can re-crash) and the device operational.
func TestFaultModelSurvivesCrash(t *testing.T) {
	d := faultDevice(512)
	fm := NewFaultModel(5, FaultSpec{Drop: true})
	d.InjectFaults(fm)
	for line := uint64(1); line <= 20; line++ { // each line drops with p=1/2
		d.Store(line*WordsPerLine, line)
	}
	d.Crash(CrashDropAll, nil)
	if d.FaultModel() != fm {
		t.Fatal("fault model lost across Crash")
	}
	dropped := 0
	for line := uint64(1); line <= 20; line++ {
		if d.ReadRaw(line*WordsPerLine) == 0 {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no unflushed store was ever dropped across 20 lines")
	}
	d.Store(8, 2) // still operational, still consulting the model
	before := fm.Ops()
	d.Load(8)
	if fm.Ops() != before+1 {
		t.Fatal("operations no longer consult the model after Crash")
	}
	d.InjectFaults(nil)
	before = fm.Ops()
	d.Load(8)
	if fm.Ops() != before {
		t.Fatal("removed model still consulted")
	}
}
