package pmem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestDevice(words int) *Device {
	return New(Config{Name: "nvmm", Words: words, Persistent: true, Track: true})
}

func TestNewRoundsToLines(t *testing.T) {
	d := New(Config{Words: 3})
	if d.Size() != WordsPerLine {
		t.Errorf("Size = %d, want %d", d.Size(), WordsPerLine)
	}
	d = New(Config{Words: 17})
	if d.Size() != 24 {
		t.Errorf("Size = %d, want 24", d.Size())
	}
}

func TestLoadStore(t *testing.T) {
	d := newTestDevice(64)
	d.Store(5, 42)
	if got := d.Load(5); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
}

func TestCASAndAdd(t *testing.T) {
	d := newTestDevice(64)
	d.Store(3, 7)
	if !d.CAS(3, 7, 8) {
		t.Error("CAS should succeed")
	}
	if d.CAS(3, 7, 9) {
		t.Error("CAS should fail")
	}
	if got := d.Add(3, 2); got != 10 {
		t.Errorf("Add = %d, want 10", got)
	}
}

func TestPairOps(t *testing.T) {
	d := newTestDevice(64)
	ok, c0, c1 := d.DWCAS(4, 0, 0, 11, 22)
	if !ok || c0 != 0 || c1 != 0 {
		t.Fatalf("DWCAS = (%v,%d,%d)", ok, c0, c1)
	}
	v0, v1 := d.LoadPair(4)
	if v0 != 11 || v1 != 22 {
		t.Errorf("LoadPair = (%d,%d), want (11,22)", v0, v1)
	}
	ok, c0, c1 = d.DWCAS(4, 11, 0, 1, 2)
	if ok || c0 != 11 || c1 != 22 {
		t.Errorf("failed DWCAS = (%v,%d,%d), want (false,11,22)", ok, c0, c1)
	}
}

func TestDWCASAlignmentPanics(t *testing.T) {
	d := newTestDevice(64)
	defer func() {
		if recover() == nil {
			t.Error("odd-offset DWCAS should panic")
		}
	}()
	d.DWCAS(5, 0, 0, 1, 2)
}

func TestOffsetZeroReserved(t *testing.T) {
	d := newTestDevice(64)
	defer func() {
		if recover() == nil {
			t.Error("offset 0 access should panic")
		}
	}()
	d.Load(0)
}

func TestFlushFenceDurability(t *testing.T) {
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(9, 77)
	if got := d.PersistedWord(9); got != 0 {
		t.Fatalf("unfenced store already persisted: %d", got)
	}
	d.Flush(&fs, 9)
	if got := d.PersistedWord(9); got != 0 {
		t.Fatalf("flushed-but-unfenced store already persisted: %d", got)
	}
	d.Fence(&fs)
	if got := d.PersistedWord(9); got != 77 {
		t.Fatalf("fenced store not persisted: %d", got)
	}
}

func TestFenceOnlyCommitsFlushedLines(t *testing.T) {
	d := newTestDevice(128)
	var fs FlushSet
	d.Store(9, 1)  // line 1
	d.Store(17, 2) // line 2
	d.Flush(&fs, 9)
	d.Fence(&fs)
	if d.PersistedWord(9) != 1 {
		t.Error("line 1 should be persisted")
	}
	if d.PersistedWord(17) != 0 {
		t.Error("line 2 must not be persisted")
	}
}

func TestFenceClearsSet(t *testing.T) {
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(9, 1)
	d.Flush(&fs, 9)
	d.Fence(&fs)
	d.Store(9, 2)
	d.Fence(&fs) // no pending flushes: must not commit the new value
	if got := d.PersistedWord(9); got != 1 {
		t.Errorf("PersistedWord = %d, want 1 (fence without flush committed)", got)
	}
}

func TestFlushWholeLine(t *testing.T) {
	// Flushing any word of a line writes back the whole line, as clwb does.
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(8, 10)
	d.Store(15, 20) // same line (words 8..15)
	d.Flush(&fs, 8)
	d.Fence(&fs)
	if d.PersistedWord(15) != 20 {
		t.Error("whole line should persist on flush of any word in it")
	}
}

func TestCrashDropAll(t *testing.T) {
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(9, 1)
	d.Flush(&fs, 9)
	d.Fence(&fs)
	d.Store(9, 2) // unfenced overwrite
	d.Store(10, 3)
	d.Freeze()
	d.Crash(CrashDropAll, nil)
	if got := d.Load(9); got != 1 {
		t.Errorf("word 9 = %d after crash, want fenced value 1", got)
	}
	if got := d.Load(10); got != 0 {
		t.Errorf("word 10 = %d after crash, want 0", got)
	}
}

func TestCrashKeepAll(t *testing.T) {
	d := newTestDevice(64)
	d.Store(9, 5)
	d.Freeze()
	d.Crash(CrashKeepAll, nil)
	if got := d.Load(9); got != 5 {
		t.Errorf("word 9 = %d, want 5 (KeepAll evicts everything)", got)
	}
}

func TestCrashRandomSubsetsBetweenExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := newTestDevice(1024)
	for off := uint64(1); off < 1000; off++ {
		d.Store(off, off)
	}
	d.Freeze()
	d.Crash(CrashRandom, rng)
	kept := 0
	for off := uint64(1); off < 1000; off++ {
		switch d.Load(off) {
		case off:
			kept++
		case 0:
		default:
			t.Fatalf("word %d has impossible value %d", off, d.Load(off))
		}
	}
	if kept == 0 || kept == 999 {
		t.Errorf("CrashRandom kept %d/999 words; expected a strict subset", kept)
	}
}

func TestVolatileCrashWipes(t *testing.T) {
	d := New(Config{Name: "dram", Words: 64})
	d.Store(9, 1)
	d.Freeze()
	d.Crash(CrashDropAll, nil)
	if got := d.Load(9); got != 0 {
		t.Errorf("volatile device kept %d across crash", got)
	}
}

func TestFreezePanics(t *testing.T) {
	d := newTestDevice(64)
	d.Freeze()
	defer func() {
		if r := recover(); r != ErrFrozen {
			t.Errorf("recover = %v, want ErrFrozen", r)
		}
	}()
	d.Load(9)
}

func TestFreezeAfter(t *testing.T) {
	d := newTestDevice(64)
	d.FreezeAfter(3)
	d.Load(9)
	d.Load(9)
	func() {
		defer func() {
			if r := recover(); r != ErrFrozen {
				t.Errorf("third op: recover = %v, want ErrFrozen", r)
			}
		}()
		d.Load(9)
	}()
	if !d.Frozen() {
		t.Error("device should be frozen after countdown")
	}
}

func TestCrashUnfreezes(t *testing.T) {
	d := newTestDevice(64)
	d.Freeze()
	d.Crash(CrashDropAll, nil)
	if d.Frozen() {
		t.Error("Crash should leave the device usable for recovery")
	}
	d.Load(9) // must not panic
}

func TestRawAccessBypassesFreeze(t *testing.T) {
	d := newTestDevice(64)
	d.Store(9, 4)
	d.Freeze()
	if got := d.ReadRaw(9); got != 4 {
		t.Errorf("ReadRaw = %d, want 4", got)
	}
	d.WriteRaw(9, 6)
	if got := d.ReadRaw(9); got != 6 {
		t.Errorf("ReadRaw after WriteRaw = %d, want 6", got)
	}
}

func TestCopyRange(t *testing.T) {
	src := newTestDevice(64)
	dst := New(Config{Name: "dram", Words: 64})
	for off := uint64(8); off < 16; off++ {
		src.Store(off, off*10)
	}
	src.CopyRange(dst, 8, 8)
	for off := uint64(8); off < 16; off++ {
		if got := dst.Load(off); got != off*10 {
			t.Errorf("dst[%d] = %d, want %d", off, got, off*10)
		}
	}
	src.CopyRange(dst, 8, 0) // empty range is a no-op, not a panic
}

func TestCopyRangeFrozen(t *testing.T) {
	src := newTestDevice(64)
	dst := New(Config{Name: "dram", Words: 64})
	src.Freeze()
	defer func() {
		if r := recover(); r != ErrFrozen {
			t.Fatalf("recovered %v, want ErrFrozen", r)
		}
	}()
	src.CopyRange(dst, 8, 8)
	t.Fatal("CopyRange on a frozen device did not panic")
}

// TestCopyRangeCountdown verifies CopyRange is a countable device
// operation: the n-th recovery copy freezes the device, so deterministic
// crashes can land inside a rebuild.
func TestCopyRangeCountdown(t *testing.T) {
	src := newTestDevice(256)
	dst := New(Config{Name: "dram", Words: 256})
	src.FreezeAfter(3)
	src.CopyRange(dst, 8, 8)
	src.CopyRange(dst, 16, 8)
	froze := false
	func() {
		defer func() {
			if r := recover(); r == ErrFrozen {
				froze = true
			} else if r != nil {
				panic(r)
			}
		}()
		src.CopyRange(dst, 24, 8)
	}()
	if !froze {
		t.Fatal("third CopyRange did not trip the countdown")
	}
	if !src.Frozen() {
		t.Fatal("device not frozen after countdown")
	}
}

func TestQuickFlushFenceAlwaysDurable(t *testing.T) {
	d := newTestDevice(4096)
	var fs FlushSet
	f := func(offRaw uint32, v uint64) bool {
		off := uint64(offRaw)%4094 + 1
		d.Store(off, v)
		d.Flush(&fs, off)
		d.Fence(&fs)
		return d.PersistedWord(off) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentFenceNoStaleRegress(t *testing.T) {
	// Two threads alternately bump a word and fence it; the media must
	// never regress below a value some fence already committed.
	d := newTestDevice(64)
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fs FlushSet
			for i := 0; i < iters; i++ {
				d.Add(9, 1)
				d.Flush(&fs, 9)
				d.Fence(&fs)
				// The media must hold some value >= the value this
				// thread just committed minus concurrent updates; at
				// minimum it must be nonzero from here on.
				if d.PersistedWord(9) == 0 {
					t.Error("media regressed to zero after a fence")
					return
				}
			}
		}()
	}
	wg.Wait()
	if cur, med := d.Load(9), d.PersistedWord(9); med > cur {
		t.Errorf("media %d ahead of current %d", med, cur)
	}
}

func TestLatencyModelZero(t *testing.T) {
	if !NoLatency().Zero() {
		t.Error("NoLatency should be Zero")
	}
	if DRAMModel().Zero() || NVMMModel().Zero() {
		t.Error("presets should not be Zero")
	}
	if NVMMModel().LoadNS < 2*DRAMModel().LoadNS {
		t.Error("NVMM reads should be markedly slower than DRAM reads")
	}
}

func TestSpinRoughlyMonotonic(t *testing.T) {
	// spin(0) must be free; larger delays must not panic. We don't
	// assert wall-clock precision (CI machines vary), only that the
	// calibration path works.
	spin(0)
	spin(50)
	spin(500)
}

func BenchmarkDeviceLoadNoLatency(b *testing.B) {
	d := newTestDevice(1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.Load(9)
		}
	})
}

func BenchmarkDeviceFlushFence(b *testing.B) {
	d := newTestDevice(1024)
	var fs FlushSet
	for i := 0; i < b.N; i++ {
		d.Store(9, uint64(i))
		d.Flush(&fs, 9)
		d.Fence(&fs)
	}
}

func TestPersistRange(t *testing.T) {
	d := newTestDevice(64)
	for off := uint64(8); off < 16; off++ {
		d.Store(off, off*3)
	}
	d.PersistRange(8, 8)
	for off := uint64(8); off < 16; off++ {
		if got := d.PersistedWord(off); got != off*3 {
			t.Errorf("media[%d] = %d, want %d", off, got, off*3)
		}
	}
	// Non-tracking device: PersistRange is a no-op, not a panic.
	d2 := New(Config{Name: "bench", Words: 64, Persistent: true, Track: false})
	d2.Store(8, 1)
	d2.PersistRange(8, 1)
}

func TestCountersCount(t *testing.T) {
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(8, 1)
	d.Flush(&fs, 8)
	d.Flush(&fs, 8)
	d.Fence(&fs)
	fl, fe := d.Counters()
	if fl != 2 || fe != 1 {
		t.Errorf("Counters = (%d,%d), want (2,1)", fl, fe)
	}
}

func TestFenceWhileFrozenPanics(t *testing.T) {
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(8, 1)
	d.Flush(&fs, 8)
	d.Freeze()
	defer func() {
		if r := recover(); r != ErrFrozen {
			t.Errorf("recover = %v, want ErrFrozen", r)
		}
		// The unfenced flush must not have reached the media.
		d.Crash(CrashDropAll, nil)
		if got := d.Load(8); got != 0 {
			t.Errorf("unfenced flush persisted: %d", got)
		}
	}()
	d.Fence(&fs)
}

func TestFlushSetReset(t *testing.T) {
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(8, 9)
	d.Flush(&fs, 8)
	fs.Reset()
	d.Fence(&fs) // nothing pending: nothing persists
	if got := d.PersistedWord(8); got != 0 {
		t.Errorf("Reset did not clear pending flushes: media=%d", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newTestDevice(64)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access should panic")
		}
	}()
	d.Load(uint64(d.Size()))
}

func TestDeviceNamePersistentFlags(t *testing.T) {
	d := New(Config{Name: "x", Words: 64, Persistent: true, Track: true})
	if d.Name() != "x" || !d.Persistent() {
		t.Error("accessor mismatch")
	}
	v := New(Config{Name: "v", Words: 64})
	if v.Persistent() {
		t.Error("volatile device claims persistence")
	}
}
