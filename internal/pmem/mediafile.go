//go:build linux || darwin

package pmem

// File-backed media: the persistent device's media image can live in a
// MAP_SHARED mmap of a regular file instead of an anonymous Go slice. The
// semantics line up with the crash model exactly:
//
//   - Words reach the media only through commitFence (explicit flush+fence)
//     or PersistRange, so the file always holds precisely the fenced image.
//   - A SIGKILL — or any abrupt process death — loses the current (cache)
//     view, which is process-private, but every store already made into the
//     shared mapping stays visible to the next process that opens the file
//     (the OS page cache does not die with the process). The file after a
//     kill therefore equals the media after a simulated Crash with the
//     drop-all policy, with per-word persist granularity for a fence that
//     was mid-commit — the same atomicity the crash model grants.
//   - Unfenced writes never touch the file, so they can never survive: the
//     eviction adversary degenerates to "drop", the sound baseline.
//
// A fresh file is created zeroed at the device size; an existing file of
// the right size is adopted as-is, which is how a restarted process attaches
// to the previous incarnation's fenced state (engine.Config.Attach).

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mapMediaFile opens (creating if needed) path, sizes it to hold words
// 8-byte words, and maps it shared so stores into the returned slice land
// in the OS page cache immediately. The mapping is page-aligned, so the
// 16-byte DWCAS alignment requirement holds.
func mapMediaFile(path string, words int) ([]uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pmem: media file: %w", err)
	}
	defer f.Close()
	size := int64(words) * 8
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("pmem: media file: %w", err)
	}
	if st.Size() != size {
		if st.Size() != 0 {
			return nil, fmt.Errorf("pmem: media file %s holds %d bytes, want %d (different device config?)",
				path, st.Size(), size)
		}
		if err := f.Truncate(size); err != nil {
			return nil, fmt.Errorf("pmem: media file: %w", err)
		}
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("pmem: mmap %s: %w", path, err)
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&buf[0])), words), nil
}

// ResetFromMedia replaces the device's current (cache) view with its media
// image — the state a power failure would leave after the adversary ran.
// It is the attach path for a device whose media was adopted from a file:
// the previous process's unfenced writes are already absent from the file,
// so no crash policy applies. The device must be quiesced.
func (d *Device) ResetFromMedia() {
	if !d.track {
		panic("pmem: ResetFromMedia on a device that is not tracking its media")
	}
	copy(d.words, d.media)
	d.gen.Add(1)
	d.state.Store(d.baseState)
	d.syncGate()
}
