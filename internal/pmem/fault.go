package pmem

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// FaultSpec selects which adversarial persistence behaviors a FaultModel
// may apply beyond the baseline (every dirty line persists whole at crash,
// i.e. CrashKeepAll). Each enabled behavior widens the space of post-crash
// media images while staying inside the NVMM contract of §2.2: words
// persist atomically at 8-byte granularity, and anything not covered by a
// completed flush+fence is at the hardware's mercy.
type FaultSpec struct {
	// Torn lets a dirty line persist a strict contiguous sub-range of its
	// dirty words at crash — the partially-written-back cache line that
	// per-word flush instrumentation exists to defend against.
	Torn bool
	// Evict lets any line persist early: each device operation may write
	// the accessed line back to the media before any flush or fence, as
	// real caches may at any time. This is the one behavior that can put
	// *intermediate* (later overwritten, never fenced) values on the
	// media — no crash-time-only policy can.
	Evict bool
	// Drop lets a dirty line lose all its unfenced words at crash (the
	// per-line analogue of CrashDropAll).
	Drop bool
}

// String renders the spec in the comma-separated form ParseFaultSpec
// accepts ("torn,evict,drop"; "none" when empty).
func (s FaultSpec) String() string {
	var parts []string
	if s.Torn {
		parts = append(parts, "torn")
	}
	if s.Evict {
		parts = append(parts, "evict")
	}
	if s.Drop {
		parts = append(parts, "drop")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseFaultSpec parses a comma-separated behavior list: any of "torn",
// "evict", "drop", or the single word "none"/"" for the empty spec.
func ParseFaultSpec(s string) (FaultSpec, error) {
	var spec FaultSpec
	if s == "" || s == "none" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "torn":
			spec.Torn = true
		case "evict":
			spec.Evict = true
		case "drop":
			spec.Drop = true
		case "":
		default:
			return spec, fmt.Errorf("pmem: unknown fault behavior %q (want torn|evict|drop|none)", part)
		}
	}
	return spec, nil
}

// evictPeriod is the expected number of device operations between early
// evictions when FaultSpec.Evict is enabled.
const evictPeriod = 24

// FaultModel is the seeded adversarial persistence fault injector a Device
// accepts via InjectFaults. It owns three responsibilities:
//
//   - a crash trigger that can fire at *any* device operation — every
//     store, load, flush, fence, CAS, and each line of a bulk CopyRange —
//     armed with CrashAfter, unlike FreezeAfter which counts whole calls;
//   - random early eviction of the lines operations touch (Spec.Evict);
//   - the line-granular crash adversary: at Crash time each dirty line
//     independently persists whole, drops, or tears (Spec.Torn/Drop).
//
// Every decision is drawn from one seeded RNG in consultation order, so a
// single-threaded run is exactly reproducible from (seed, schedule): same
// seed, same operation sequence, same post-crash media image. A FaultModel
// is safe for concurrent use (decisions serialize on an internal lock),
// but concurrent runs are only statistically — not bitwise — reproducible,
// because the consultation order then depends on goroutine interleaving.
type FaultModel struct {
	mu         sync.Mutex
	rng        *rand.Rand
	seed       int64
	spec       FaultSpec
	ops        int64 // device operations consulted so far
	crashAfter int64 // >0: the n-th consulted op from now freezes the device
	crashedAt  int64 // op index where the trigger fired (0 = not yet)
}

// NewFaultModel creates a fault model with the given seed and behaviors.
// The crash trigger starts disarmed; arm it with CrashAfter.
func NewFaultModel(seed int64, spec FaultSpec) *FaultModel {
	return &FaultModel{rng: rand.New(rand.NewSource(seed)), seed: seed, spec: spec}
}

// Seed returns the model's RNG seed.
func (f *FaultModel) Seed() int64 { return f.seed }

// Spec returns the enabled behaviors.
func (f *FaultModel) Spec() FaultSpec { return f.spec }

// CrashAfter arms the sub-operation crash trigger: the n-th subsequently
// consulted device operation freezes the device (and panics ErrFrozen)
// before executing. n <= 0 disarms. The trigger is one-shot.
func (f *FaultModel) CrashAfter(n int64) {
	f.mu.Lock()
	f.crashAfter = n
	f.mu.Unlock()
}

// Ops returns how many device operations have consulted the model — the
// op-count clock CrashAfter is measured on. Fuzzers calibrate crash
// placement by running a schedule once and sampling within [1, Ops()].
func (f *FaultModel) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// CrashedAt returns the op index at which the armed trigger fired, or 0 if
// it has not fired.
func (f *FaultModel) CrashedAt() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashedAt
}

// step is the per-operation consultation: it advances the op clock and
// returns whether the accessed line should evict early and whether the
// crash trigger fires on this operation.
func (f *FaultModel) step() (evict, crash bool) {
	f.mu.Lock()
	f.ops++
	if f.spec.Evict && f.rng.Int63n(evictPeriod) == 0 {
		evict = true
	}
	if f.crashAfter > 0 {
		f.crashAfter--
		if f.crashAfter == 0 {
			crash = true
			f.crashedAt = f.ops
		}
	}
	f.mu.Unlock()
	return evict, crash
}

// lineFate decides one dirty line's fate at crash time given how many of
// its words are dirty: 0 = persist whole, 1 = drop, 2 = tear. Persisting
// is always a candidate; drop and tear require the corresponding spec
// behavior, and tearing needs at least two dirty words (a strict sub-range
// of one word would be a drop).
func (f *FaultModel) lineFate(dirty int) int {
	candidates := []int{0}
	if f.spec.Drop {
		candidates = append(candidates, 1)
	}
	if f.spec.Torn && dirty > 1 {
		candidates = append(candidates, 2)
	}
	if len(candidates) == 1 {
		return 0
	}
	return candidates[f.rng.Intn(len(candidates))]
}

// tearRange picks the strict contiguous sub-range [start, start+n) of a
// line's dirty-word list that persists when the line tears.
func (f *FaultModel) tearRange(dirty int) (start, n int) {
	n = 1 + f.rng.Intn(dirty-1) // 1 <= n < dirty: strictly partial
	start = f.rng.Intn(dirty - n + 1)
	return start, n
}

// applyCrash runs the line-granular eviction adversary over the device's
// dirty lines in ascending order, mutating the media image in place. The
// caller (Device.Crash) holds the device quiesced.
func (f *FaultModel) applyCrash(d *Device) {
	f.mu.Lock()
	defer f.mu.Unlock()
	limit := uint64(len(d.words))
	var dirty [WordsPerLine]uint64 // offsets of this line's dirty words
	for base := uint64(0); base < limit; base += WordsPerLine {
		end := base + WordsPerLine
		if end > limit {
			end = limit
		}
		n := 0
		for off := base; off < end; off++ {
			if d.words[off] != d.media[off] {
				dirty[n] = off
				n++
			}
		}
		if n == 0 {
			continue
		}
		switch f.lineFate(n) {
		case 0: // persist the whole line
			for _, off := range dirty[:n] {
				d.media[off] = d.words[off]
			}
		case 1: // drop: unfenced words are lost
		case 2: // tear: a strict contiguous sub-range of the dirty words persists
			start, k := f.tearRange(n)
			for _, off := range dirty[start : start+k] {
				d.media[off] = d.words[off]
			}
		}
	}
}

// InjectFaults installs a fault model on the device (nil removes it).
// While installed, every operation routes through the slow path to consult
// the model, and Crash applies the model's line-granular adversary instead
// of the CrashPolicy argument. Install or remove only while no goroutine
// is operating on the device (e.g. before the workload under test starts):
// the model pointer itself is unsynchronized and relies on the
// happens-before edge of starting the worker goroutines.
func (d *Device) InjectFaults(fm *FaultModel) {
	d.fault = fm
	if fm != nil {
		d.setState(stateFault)
	} else {
		d.clearState(stateFault)
	}
}

// FaultModel returns the installed fault model, or nil.
func (d *Device) FaultModel() *FaultModel { return d.fault }

// faultTick consults the installed fault model for one device operation on
// the line containing off (off == 0 for offset-less operations such as
// fences). An early eviction writes the accessed line back to the media
// before the operation executes; a firing crash trigger freezes the device
// and unwinds, exactly like an exhausted FreezeAfter countdown.
func (d *Device) faultTick(off uint64) {
	fm := d.fault
	if fm == nil {
		return
	}
	evict, crash := fm.step()
	if evict && off != 0 && d.track {
		// An eviction copies the line to media but is NOT a commit
		// guarantee: it must never advance the persisted-epoch watermark.
		// The test-only broken variant advances it anyway — the exact bug
		// the fuzzer's acceptance self-test must catch.
		d.commitLines([]uint64{off >> lineShift})
		if d.breakWM && d.elide {
			atomicMax(&d.marks[off>>lineShift], d.pepoch.Load()+1)
		}
	}
	if crash {
		d.setState(stateFrozen)
		panic(ErrFrozen)
	}
}

// fnv64Offset and fnv64Prime are the FNV-1a constants used by MediaHash.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// MediaHash returns an FNV-1a hash of the media image, the fingerprint the
// fault fuzzer uses to assert that replaying a (seed, schedule) pair
// reproduces the exact same post-crash image. It requires a tracking
// device and a quiesced system.
func (d *Device) MediaHash() uint64 {
	if !d.track {
		panic("pmem: MediaHash on non-tracking device")
	}
	h := uint64(fnv64Offset)
	for _, w := range d.media {
		for i := 0; i < 64; i += 8 {
			h ^= (w >> i) & 0xff
			h *= fnv64Prime
		}
	}
	return h
}
