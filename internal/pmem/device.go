// Package pmem simulates the memory devices of the paper's platform: a
// byte-addressable non-volatile main memory (NVMM) with explicit write-back
// instructions, and a conventional volatile DRAM. Go offers no cache-line
// flush control and its GC-managed heap cannot survive a process "crash",
// so this substrate reifies the hardware model of §2.1–2.2 in software:
//
//   - A Device is a word-addressable array. The array contents play the
//     role of the cache hierarchy's current view of memory.
//   - A persistent Device additionally keeps a media image: the content
//     that would survive a power failure. Words reach the media only via
//     Flush+Fence (clwb+sfence, §2.2) — or nondeterministically at crash
//     time, modeling implicit cache evictions.
//   - Crash applies the eviction adversary to the media, then resets the
//     device's current view from the media (persistent device) or wipes it
//     (volatile device).
//
// Addresses are word offsets (8 bytes per word). Offset 0 is reserved so it
// can serve as a null pointer. A LatencyModel injects calibrated spin
// delays so benchmark results keep the DRAM/NVMM cost ratios of the real
// platform.
package pmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"unsafe"

	"mirror/internal/dwcas"
)

// WordsPerLine is the cache-line size in words (64 bytes).
const WordsPerLine = 8

const lineShift = 3 // log2(WordsPerLine)

// ErrFrozen is the panic value raised by every device operation after
// Freeze; the crash harness recovers it to unwind in-flight operations at an
// arbitrary instruction boundary, simulating a full-system power failure.
var ErrFrozen = errors.New("pmem: device frozen (simulated power failure)")

// CrashPolicy selects how the eviction adversary treats words that were
// written but never explicitly flushed and fenced before the crash.
type CrashPolicy int

const (
	// CrashDropAll loses every unfenced write: the most adversarial
	// outcome for algorithms that forget a flush.
	CrashDropAll CrashPolicy = iota
	// CrashKeepAll persists every write, as if the cache had eagerly
	// evicted everything: the most adversarial outcome for algorithms
	// that rely on writes *not* persisting.
	CrashKeepAll
	// CrashRandom flips an independent coin per word (8-byte persist
	// granularity, matching x86 persistence atomicity).
	CrashRandom
)

// Config describes a Device.
type Config struct {
	Name       string       // for diagnostics
	Words      int          // capacity in 8-byte words (offset 0 reserved)
	Persistent bool         // survives Crash via its media image
	Track      bool         // maintain the media image (required for Crash)
	Model      LatencyModel // injected access costs
}

// Device is one simulated memory device. All word accesses are atomic; the
// two-word operations are atomic via internal/dwcas. A Device is safe for
// concurrent use.
type Device struct {
	name       string
	persistent bool
	track      bool
	model      LatencyModel
	fast       bool // model.Zero(): skip latency calls

	words []uint64 // current (cache) view; 16-byte aligned base
	media []uint64 // persisted image, nil unless track && persistent

	frozen    atomic.Bool
	countOn   atomic.Bool
	countdown atomic.Int64

	flushes atomic.Uint64
	fences  atomic.Uint64

	fenceLocks []sync.Mutex // striped per line group, serializes media copies
}

const fenceStripes = 256

// New creates a Device. Words is rounded up to a whole number of cache
// lines and must be at least one line.
func New(cfg Config) *Device {
	if cfg.Words < WordsPerLine {
		cfg.Words = WordsPerLine
	}
	words := (cfg.Words + WordsPerLine - 1) &^ (WordsPerLine - 1)
	d := &Device{
		name:       cfg.Name,
		persistent: cfg.Persistent,
		track:      cfg.Track && cfg.Persistent,
		model:      cfg.Model,
		fast:       cfg.Model.Zero(),
		words:      alignedWords(words),
		fenceLocks: make([]sync.Mutex, fenceStripes),
	}
	if d.track {
		d.media = alignedWords(words)
	}
	return d
}

// alignedWords allocates a word slice whose element 0 is 16-byte aligned,
// so any even offset is a legal DWCAS address.
func alignedWords(n int) []uint64 {
	buf := make([]uint64, n+1)
	if uintptr(unsafe.Pointer(&buf[0]))&15 != 0 {
		return buf[1 : n+1]
	}
	return buf[:n]
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// Size returns the device capacity in words.
func (d *Device) Size() int { return len(d.words) }

// Persistent reports whether the device keeps its media across Crash.
func (d *Device) Persistent() bool { return d.persistent }

func (d *Device) check(off uint64) {
	if d.frozen.Load() {
		panic(ErrFrozen)
	}
	if d.countOn.Load() && d.countdown.Add(-1) == 0 {
		d.frozen.Store(true)
		panic(ErrFrozen)
	}
	if off == 0 || off >= uint64(len(d.words)) {
		panic(fmt.Sprintf("pmem: %s: offset %d out of range [1,%d)", d.name, off, len(d.words)))
	}
}

// Load atomically reads the word at off.
func (d *Device) Load(off uint64) uint64 {
	d.check(off)
	if !d.fast {
		spin(d.model.LoadNS)
	}
	return atomic.LoadUint64(&d.words[off])
}

// Store atomically writes the word at off.
func (d *Device) Store(off uint64, v uint64) {
	d.check(off)
	if !d.fast {
		spin(d.model.StoreNS)
	}
	atomic.StoreUint64(&d.words[off], v)
}

// CAS atomically compares-and-swaps the word at off.
func (d *Device) CAS(off uint64, old, new uint64) bool {
	d.check(off)
	if !d.fast {
		spin(d.model.StoreNS)
	}
	return atomic.CompareAndSwapUint64(&d.words[off], old, new)
}

// Add atomically adds delta to the word at off and returns the new value.
func (d *Device) Add(off uint64, delta uint64) uint64 {
	d.check(off)
	if !d.fast {
		spin(d.model.StoreNS)
	}
	return atomic.AddUint64(&d.words[off], delta)
}

func (d *Device) pairAt(off uint64) *[2]uint64 {
	if off&1 != 0 {
		panic(fmt.Sprintf("pmem: %s: DWCAS offset %d not 16-byte aligned", d.name, off))
	}
	return (*[2]uint64)(unsafe.Pointer(&d.words[off]))
}

// LoadPair atomically reads the two words at even offset off.
func (d *Device) LoadPair(off uint64) (v0, v1 uint64) {
	d.check(off)
	if !d.fast {
		spin(d.model.LoadNS)
	}
	return dwcas.Load(d.pairAt(off))
}

// DWCAS atomically compares the two words at even offset off with
// (old0, old1) and swaps in (new0, new1) on match. It returns whether the
// swap happened and the observed pair (the "before" value of Figure 4).
func (d *Device) DWCAS(off uint64, old0, old1, new0, new1 uint64) (swapped bool, cur0, cur1 uint64) {
	d.check(off)
	if !d.fast {
		spin(d.model.StoreNS)
	}
	return dwcas.CompareAndSwap(d.pairAt(off), old0, old1, new0, new1)
}

// FlushSet accumulates the cache lines a thread has flushed but not yet
// fenced. Each simulated thread owns one FlushSet per persistent device; it
// corresponds to the set of in-flight clwb instructions between two sfences.
type FlushSet struct {
	lines []uint64
}

// Reset discards any pending flushes (used when a context is recycled).
func (s *FlushSet) Reset() { s.lines = s.lines[:0] }

func (s *FlushSet) add(line uint64) {
	for _, l := range s.lines {
		if l == line {
			return
		}
	}
	s.lines = append(s.lines, line)
}

// Flush records a write-back request (clwb) for the line containing off.
// The line's durability is only guaranteed after a subsequent Fence on the
// same FlushSet; until then the eviction adversary decides its fate.
func (d *Device) Flush(fs *FlushSet, off uint64) {
	d.check(off)
	if !d.fast {
		spin(d.model.FlushNS)
	}
	d.flushes.Add(1)
	if d.track {
		fs.add(off >> lineShift)
	}
}

// Counters returns the cumulative number of Flush and Fence calls; the
// ablation benchmarks report persistence-instruction counts with these.
func (d *Device) Counters() (flushes, fences uint64) {
	return d.flushes.Load(), d.fences.Load()
}

// Fence (sfence) commits every line flushed on fs since the previous Fence
// to the media image. The content committed is the line's content at
// commit time, matching the write-back window of real hardware.
func (d *Device) Fence(fs *FlushSet) {
	if d.frozen.Load() {
		panic(ErrFrozen)
	}
	if !d.fast {
		spin(d.model.FenceNS)
	}
	d.fences.Add(1)
	if !d.track {
		return
	}
	for _, line := range fs.lines {
		d.commitLine(line)
	}
	fs.lines = fs.lines[:0]
}

// commitLine copies one line's current content to the media under a striped
// lock, so two concurrent fences cannot interleave stale and fresh words.
func (d *Device) commitLine(line uint64) {
	mu := &d.fenceLocks[line%fenceStripes]
	mu.Lock()
	base := line << lineShift
	for i := uint64(0); i < WordsPerLine; i++ {
		off := base + i
		if off >= uint64(len(d.words)) {
			break
		}
		atomic.StoreUint64(&d.media[off], atomic.LoadUint64(&d.words[off]))
	}
	mu.Unlock()
}

// Freeze makes every subsequent device operation panic with ErrFrozen,
// unwinding in-flight operations so a crash can be taken at an arbitrary
// point. Freeze does not itself alter memory.
func (d *Device) Freeze() { d.frozen.Store(true) }

// Frozen reports whether the device is frozen.
func (d *Device) Frozen() bool { return d.frozen.Load() }

// FreezeAfter arms a countdown: the n-th subsequent device operation
// freezes the device (and panics). Used to place crashes deterministically.
func (d *Device) FreezeAfter(n int64) {
	d.countdown.Store(n)
	d.countOn.Store(n > 0)
}

// Crash simulates a power failure. All goroutines using the device must
// already have unwound (see Freeze). For a persistent device the eviction
// adversary first decides the fate of every unfenced word, then the current
// view is reset from the media. For a volatile device everything is zeroed.
// The device is left unfrozen and ready for recovery.
func (d *Device) Crash(policy CrashPolicy, rng *rand.Rand) {
	if d.persistent {
		if !d.track {
			panic("pmem: Crash on a persistent device that is not tracking its media (Config.Track=false)")
		}
		for i := range d.words {
			cur, med := d.words[i], d.media[i]
			if cur == med {
				continue
			}
			switch policy {
			case CrashKeepAll:
				d.media[i] = cur
			case CrashRandom:
				if rng == nil {
					panic("pmem: CrashRandom requires a rand source")
				}
				if rng.Int63()&1 == 0 {
					d.media[i] = cur
				}
			}
		}
		copy(d.words, d.media)
	} else {
		for i := range d.words {
			d.words[i] = 0
		}
	}
	d.countOn.Store(false)
	d.frozen.Store(false)
}

// ReadRaw reads a word without latency, freeze checks, or bounds reservation
// of offset 0. Recovery and test inspection use it.
func (d *Device) ReadRaw(off uint64) uint64 { return atomic.LoadUint64(&d.words[off]) }

// WriteRaw writes a word without latency or freeze checks. Recovery uses it
// to rebuild the volatile replica.
func (d *Device) WriteRaw(off uint64, v uint64) { atomic.StoreUint64(&d.words[off], v) }

// PersistedWord returns the media image of a word; it panics unless the
// device tracks persistence. Tests use it to assert durability.
func (d *Device) PersistedWord(off uint64) uint64 {
	if !d.track {
		panic("pmem: PersistedWord on non-tracking device")
	}
	return atomic.LoadUint64(&d.media[off])
}

// PersistRange copies the current view of [off, off+n) straight into the
// media image, bypassing flush/fence bookkeeping. It exists for recovery
// procedures (which run single-threaded before normal operation resumes)
// such as the heap sanitization of the Link-Free/SOFT scan.
func (d *Device) PersistRange(off uint64, n int) {
	if !d.track {
		return
	}
	for i := uint64(0); i < uint64(n); i++ {
		atomic.StoreUint64(&d.media[off+i], atomic.LoadUint64(&d.words[off+i]))
	}
}

// CopyTo copies n words starting at off from this device's current view
// into dst at the same offsets, bypassing latency and freeze checks.
func (d *Device) CopyTo(dst *Device, off uint64, n int) {
	for i := uint64(0); i < uint64(n); i++ {
		dst.WriteRaw(off+i, d.ReadRaw(off+i))
	}
}
