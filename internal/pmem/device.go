// Package pmem simulates the memory devices of the paper's platform: a
// byte-addressable non-volatile main memory (NVMM) with explicit write-back
// instructions, and a conventional volatile DRAM. Go offers no cache-line
// flush control and its GC-managed heap cannot survive a process "crash",
// so this substrate reifies the hardware model of §2.1–2.2 in software:
//
//   - A Device is a word-addressable array. The array contents play the
//     role of the cache hierarchy's current view of memory.
//   - A persistent Device additionally keeps a media image: the content
//     that would survive a power failure. Words reach the media only via
//     Flush+Fence (clwb+sfence, §2.2) — or nondeterministically at crash
//     time, modeling implicit cache evictions.
//   - Crash applies the eviction adversary to the media, then resets the
//     device's current view from the media (persistent device) or wipes it
//     (volatile device).
//
// Addresses are word offsets (8 bytes per word). Offset 0 is reserved so it
// can serve as a null pointer. A LatencyModel injects calibrated spin
// delays so benchmark results keep the DRAM/NVMM cost ratios of the real
// platform.
//
// The device fast path is built to disappear from profiles (DESIGN.md
// "Substrate hot path"): one packed atomic state word gates the
// freeze/countdown machinery, flush/fence counters live in per-FlushSet
// shards summed on demand, and the latency model costs nothing when
// disabled.
package pmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"unsafe"

	"mirror/internal/dwcas"
)

// WordsPerLine is the cache-line size in words (64 bytes).
const WordsPerLine = 8

const lineShift = 3 // log2(WordsPerLine)

// ErrFrozen is the panic value raised by every device operation after
// Freeze; the crash harness recovers it to unwind in-flight operations at an
// arbitrary instruction boundary, simulating a full-system power failure.
var ErrFrozen = errors.New("pmem: device frozen (simulated power failure)")

// CrashPolicy selects how the eviction adversary treats words that were
// written but never explicitly flushed and fenced before the crash.
type CrashPolicy int

const (
	// CrashDropAll loses every unfenced write: the most adversarial
	// outcome for algorithms that forget a flush.
	CrashDropAll CrashPolicy = iota
	// CrashKeepAll persists every write, as if the cache had eagerly
	// evicted everything: the most adversarial outcome for algorithms
	// that rely on writes *not* persisting.
	CrashKeepAll
	// CrashRandom flips an independent coin per word (8-byte persist
	// granularity, matching x86 persistence atomicity).
	CrashRandom
)

// Config describes a Device.
type Config struct {
	Name       string       // for diagnostics
	Words      int          // capacity in 8-byte words (offset 0 reserved)
	Persistent bool         // survives Crash via its media image
	Track      bool         // maintain the media image (required for Crash)
	Elide      bool         // maintain the persisted-epoch watermark (elide.go)
	Combine    bool         // per-thread fence combining (combine.go; implies Elide)
	Model      LatencyModel // injected access costs

	// MediaPath backs the media image with a MAP_SHARED mmap of this file
	// instead of an anonymous slice (mediafile.go), so the fenced image
	// survives abrupt process death. Requires Persistent && Track. An
	// existing file of the right size is adopted as-is; a new one starts
	// zeroed.
	MediaPath string
}

// Packed state-word bits. state == 0 is the latency-free running steady
// state, so the per-operation gate is a single atomic load and one
// predictable branch; any set bit diverts to the out-of-line slow path.
const (
	stateFrozen uint64 = 1 << 0 // device frozen: every op panics ErrFrozen
	stateArmed  uint64 = 1 << 1 // FreezeAfter countdown armed
	stateSlow   uint64 = 1 << 2 // latency model active: ops must inject spins
	stateFault  uint64 = 1 << 3 // fault model installed: ops consult the adversary
)

// Device is one simulated memory device. All word accesses are atomic; the
// two-word operations are atomic via internal/dwcas. A Device is safe for
// concurrent use.
type Device struct {
	name       string
	persistent bool
	track      bool
	fast       bool // Model.Zero(): skip latency injection entirely

	// Spin-loop iteration counts per operation kind, precomputed at
	// construction from the calibrated rate so the hot path performs no
	// per-access rate lookup or fixed-point arithmetic.
	loadSpins  int64
	storeSpins int64
	flushSpins int64
	fenceSpins int64

	words []uint64 // current (cache) view; 16-byte aligned base
	media []uint64 // persisted image, nil unless track && persistent

	// base and limit cache &words[0] and len(words)-1 so the fast-path
	// methods fit the compiler's inline budget: the backing array is
	// allocated once in New and never moves, so indexing through base is
	// equivalent to &d.words[off] minus the per-access slice-header loads.
	base  unsafe.Pointer
	limit uint64

	// gate fuses the state test and the bounds test into one word: it
	// holds limit while state == 0 and 0 while any state bit is set, so
	// the steady-state per-access check is a single atomic load and one
	// fused compare (off-1 underflows for the reserved offset 0). Every
	// state transition republishes the gate; an access racing with a
	// transition may pass the old gate, which linearizes it before the
	// transition — the same window the state word itself would allow.
	// Accessed only via atomic.LoadUint64/StoreUint64; a plain uint64
	// (rather than atomic.Uint64) keeps Load/Store at the compiler's
	// inline budget of 80, which they meet exactly.
	gate uint64

	// state packs the frozen flag, the countdown-armed flag, and the
	// latency-model flag into one word; the countdown itself is touched
	// only on the armed slow path. baseState is the value state returns to
	// after a crash (stateSlow for latency devices, 0 otherwise).
	state     atomic.Uint64
	baseState uint64
	countdown atomic.Int64
	gen       atomic.Uint64 // crash generation, for FlushSet recycle checks

	// fault is the installed adversarial persistence fault model (nil when
	// absent); see InjectFaults. While installed, stateFault keeps the gate
	// closed so every operation consults it on the slow path.
	fault *FaultModel

	// Flush/fence counters are sharded across the FlushSets that have used
	// this device; Counters sums the shards. The registry only grows (one
	// entry per thread context), so summation stays cheap and exact.
	shardMu sync.Mutex
	shards  []*FlushSet

	// Flush-elision state (Config.Elide; see elide.go): the global persist
	// epoch, the per-line watermark and in-flight ticket tables, and the
	// relaxed-line registry. lineTrack extends pending-line recording to
	// eliding devices that do not track a media image (benchmarks).
	elide      bool
	lineTrack  bool
	breakWM    bool // test-only: eviction falsely advances the watermark
	pepoch     atomic.Uint64
	marks      []atomic.Uint64
	committing []atomic.Uint64

	relaxedMu    sync.Mutex
	relaxedLines []uint64 // registered lines in first-registration order
	relaxedSet   map[uint64]struct{}

	// Cross-operation fence combining (Config.Combine; see combine.go):
	// cpend[line] holds tag+1 for the most recent combining install that
	// buffered a write to the line, the read-side conflict probe's
	// counterpart to marks. breakCombine is the test-only seeded bug.
	combine      bool
	breakCombine bool
	cpend        []atomic.Uint64
}

// New creates a Device. Words is rounded up to a whole number of cache
// lines and must be at least one line.
func New(cfg Config) *Device {
	if cfg.Words < WordsPerLine {
		cfg.Words = WordsPerLine
	}
	words := (cfg.Words + WordsPerLine - 1) &^ (WordsPerLine - 1)
	d := &Device{
		name:       cfg.Name,
		persistent: cfg.Persistent,
		track:      cfg.Track && cfg.Persistent,
		fast:       cfg.Model.Zero(),
		words:      alignedWords(words),
	}
	d.base = unsafe.Pointer(&d.words[0])
	d.limit = uint64(len(d.words)) - 1
	if !d.fast {
		d.loadSpins = spinIters(cfg.Model.LoadNS)
		d.storeSpins = spinIters(cfg.Model.StoreNS)
		d.flushSpins = spinIters(cfg.Model.FlushNS)
		d.fenceSpins = spinIters(cfg.Model.FenceNS)
		d.baseState = stateSlow
		d.state.Store(stateSlow)
	}
	d.syncGate()
	if d.track {
		if cfg.MediaPath != "" {
			m, err := mapMediaFile(cfg.MediaPath, words)
			if err != nil {
				panic(err)
			}
			d.media = m
		} else {
			d.media = alignedWords(words)
		}
	} else if cfg.MediaPath != "" {
		panic("pmem: Config.MediaPath requires Persistent && Track")
	}
	d.elide = cfg.Elide && cfg.Persistent
	d.lineTrack = d.track || d.elide
	if d.elide {
		nLines := len(d.words)/WordsPerLine + 1
		d.marks = make([]atomic.Uint64, nLines)
		d.committing = make([]atomic.Uint64, nLines)
		d.relaxedSet = make(map[uint64]struct{})
	}
	// Combining rides on the watermark machinery: the read-side probe
	// compares cpend against marks, so it requires the eliding layer.
	d.combine = cfg.Combine && d.elide
	if d.combine {
		d.cpend = make([]atomic.Uint64, len(d.words)/WordsPerLine+1)
	}
	return d
}

// alignedWords allocates a word slice whose element 0 is 16-byte aligned,
// so any even offset is a legal DWCAS address.
func alignedWords(n int) []uint64 {
	buf := make([]uint64, n+1)
	if uintptr(unsafe.Pointer(&buf[0]))&15 != 0 {
		return buf[1 : n+1]
	}
	return buf[:n]
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// Size returns the device capacity in words.
func (d *Device) Size() int { return len(d.words) }

// Persistent reports whether the device keeps its media across Crash.
func (d *Device) Persistent() bool { return d.persistent }

// fastOK is the per-operation gate: one atomic load of the fused gate word
// and one compare. Any set state bit (gate = 0) or bad offset fails over to
// checkSlow. Load and Store repeat this expression inline rather than
// calling fastOK — the call-shaped form costs a few extra inline-budget
// points that push them past the limit.
func (d *Device) fastOK(off uint64) bool {
	return off-1 < atomic.LoadUint64(&d.gate)
}

// syncGate republishes the fused gate word after a state transition; the
// caller must have already updated d.state.
func (d *Device) syncGate() {
	if d.state.Load() == 0 {
		atomic.StoreUint64(&d.gate, d.limit)
	} else {
		atomic.StoreUint64(&d.gate, 0)
	}
}

// wordAt returns the address of the word at off without the slice-header
// loads of &d.words[off]; callers must have bounds-checked off (fastOK or
// checkSlow). The backing array never moves, so d.base stays valid.
func (d *Device) wordAt(off uint64) *uint64 {
	return (*uint64)(unsafe.Add(d.base, off*8))
}

// checkSlow handles everything fastOK rejects: a frozen device panics, an
// armed countdown is decremented — the operation that reaches zero freezes
// the device before executing, placing the crash exactly on that operation
// — and out-of-range offsets panic. A device running with a latency model
// (stateSlow) passes through here on every access by design; the injected
// spin dwarfs the extra checks.
func (d *Device) checkSlow(off uint64) {
	s := d.state.Load()
	if s&stateFrozen != 0 {
		panic(ErrFrozen)
	}
	if s&stateArmed != 0 && d.countdown.Add(-1) == 0 {
		d.setState(stateFrozen)
		panic(ErrFrozen)
	}
	if off == 0 || off >= uint64(len(d.words)) {
		d.badOffset(off)
	}
	if s&stateFault != 0 {
		d.faultTick(off)
	}
}

//go:noinline
func (d *Device) badOffset(off uint64) {
	panic(fmt.Sprintf("pmem: %s: offset %d out of range [1,%d)", d.name, off, len(d.words)))
}

// setState atomically sets bits in the state word and republishes the gate.
func (d *Device) setState(bits uint64) {
	for {
		s := d.state.Load()
		if d.state.CompareAndSwap(s, s|bits) {
			d.syncGate()
			return
		}
	}
}

// clearState atomically clears bits in the state word and republishes the
// gate.
func (d *Device) clearState(bits uint64) {
	for {
		s := d.state.Load()
		if d.state.CompareAndSwap(s, s&^bits) {
			d.syncGate()
			return
		}
	}
}

// Load atomically reads the word at off. The body is written to sit
// exactly at the compiler's inline budget (verify with -gcflags='-m'): the
// steady state inlines to one atomic gate load, one fused compare, and the
// word read itself — the substrate's zero-read-overhead claim in code.
func (d *Device) Load(off uint64) uint64 {
	if off-1 < atomic.LoadUint64(&d.gate) {
		return atomic.LoadUint64((*uint64)(unsafe.Add(d.base, off*8)))
	}
	return d.loadSlow(off)
}

func (d *Device) loadSlow(off uint64) uint64 {
	d.checkSlow(off)
	spinN(d.loadSpins)
	return atomic.LoadUint64(&d.words[off])
}

// Store atomically writes the word at off. Like Load, the body sits
// exactly at the inline budget; the if/else shape (rather than an early
// return) is what keeps it there.
func (d *Device) Store(off uint64, v uint64) {
	if off-1 < atomic.LoadUint64(&d.gate) {
		atomic.StoreUint64((*uint64)(unsafe.Add(d.base, off*8)), v)
	} else {
		d.storeSlow(off, v)
	}
}

func (d *Device) storeSlow(off uint64, v uint64) {
	d.checkSlow(off)
	spinN(d.storeSpins)
	atomic.StoreUint64(&d.words[off], v)
}

// CAS atomically compares-and-swaps the word at off.
func (d *Device) CAS(off uint64, old, new uint64) bool {
	if !d.fastOK(off) {
		d.checkSlow(off)
		spinN(d.storeSpins)
	}
	return atomic.CompareAndSwapUint64(&d.words[off], old, new)
}

// Add atomically adds delta to the word at off and returns the new value.
func (d *Device) Add(off uint64, delta uint64) uint64 {
	if !d.fastOK(off) {
		d.checkSlow(off)
		spinN(d.storeSpins)
	}
	return atomic.AddUint64(&d.words[off], delta)
}

func (d *Device) pairAt(off uint64) *[2]uint64 {
	if off&1 != 0 {
		d.badPair(off)
	}
	return (*[2]uint64)(unsafe.Pointer(&d.words[off]))
}

//go:noinline
func (d *Device) badPair(off uint64) {
	panic(fmt.Sprintf("pmem: %s: DWCAS offset %d not 16-byte aligned", d.name, off))
}

// LoadPair atomically reads the two words at even offset off.
func (d *Device) LoadPair(off uint64) (v0, v1 uint64) {
	if !d.fastOK(off) {
		d.checkSlow(off)
		spinN(d.loadSpins)
	}
	return dwcas.Load(d.pairAt(off))
}

// DWCAS atomically compares the two words at even offset off with
// (old0, old1) and swaps in (new0, new1) on match. It returns whether the
// swap happened and the observed pair (the "before" value of Figure 4).
func (d *Device) DWCAS(off uint64, old0, old1, new0, new1 uint64) (swapped bool, cur0, cur1 uint64) {
	if !d.fastOK(off) {
		d.checkSlow(off)
		spinN(d.storeSpins)
	}
	return dwcas.CompareAndSwap(d.pairAt(off), old0, old1, new0, new1)
}

// spillLines is the FlushSet size at which line dedup switches from the
// linear scan over the inline slice to the epoch-tagged table. Mirror-style
// engines fence after one or two flushes and never spill; flush-heavy
// transformations (Izraelevitz) cross it and get O(1) dedup.
const spillLines = 16

// FlushSet accumulates the cache lines a thread has flushed but not yet
// fenced. Each simulated thread owns one FlushSet per persistent device; it
// corresponds to the set of in-flight clwb instructions between two sfences.
//
// A FlushSet is single-owner state: it must not be used concurrently from
// two goroutines, must only ever be used with one Device, and must be Reset
// before being recycled across a crash. EnableDebugChecks turns these
// contracts into panics.
//
// The set doubles as this thread's shard of the device's flush/fence
// counters: increments land on thread-private cache lines and Counters sums
// the shards, so the counts stay exact without a globally contended word.
type FlushSet struct {
	dev  *Device      // device this set is registered with (first use wins)
	gen  uint64       // device crash generation at last use (debug checks)
	busy atomic.Int32 // debug: concurrent-use detector

	flushes atomic.Uint64 // this thread's flush count on dev
	fences  atomic.Uint64 // this thread's fence count on dev

	// Elision shards (see elide.go): persistence instructions this thread
	// *did not* issue because the watermark, a batch dedup, or the
	// relaxed-line registry proved them redundant.
	elidedFlushes atomic.Uint64
	elidedFences  atomic.Uint64
	piggybacked   atomic.Uint64
	relaxed       atomic.Uint64

	lines []uint64          // pending lines, unique, in first-flush order
	table map[uint64]uint64 // line -> epoch; dedup once the set spills
	epoch uint64            // current epoch; table entries from older epochs are stale

	// Combining state (see combine.go): the buffered lines awaiting a
	// combined drain, the monotone linearization-ticket counter and its
	// drained watermark, the operation-end pulse counter for the epoch
	// trigger, and the combining statistics shards.
	cbLines   []uint64
	cbTicket  uint64
	cbDrained uint64
	cbOpTicks int
	// cbAdopted marks that cbLines holds at least one adopted (ticketless)
	// line some read depended on since the last drain; see CombineWitness.
	cbAdopted  bool
	combined   atomic.Uint64
	drainCause [drainCauses]atomic.Uint64
}

// Reset discards any pending flushes (used when a context is recycled).
// Counter shards are preserved: Reset forgets in-flight clwbs, not
// history. The combine buffer empties without advancing the drained
// watermark: anything it held stays in the may-vanish class.
func (s *FlushSet) Reset() {
	s.clearLines()
	s.cbLines = s.cbLines[:0]
	s.cbOpTicks = 0
	s.cbAdopted = false
}

// Pending returns the number of distinct lines flushed but not yet fenced
// on this set. Engines consult it to elide a fence that would commit
// nothing (an sfence with no clwb in flight orders nothing durable).
// Pending lines are only recorded on tracking or eliding devices, so the
// query is conservatively zero — and fence elision must therefore be gated
// on Device.Elides — everywhere else.
func (s *FlushSet) Pending() int { return len(s.lines) }

// clearLines empties the pending-line set in O(1): the slice is truncated
// and the epoch advances, invalidating every table entry at once.
func (s *FlushSet) clearLines() {
	s.lines = s.lines[:0]
	s.epoch++
}

// add records a line once. Small sets use a linear scan over the slice
// (cache-friendly, and the common case is one or two lines); a set that
// grows past spillLines builds the epoch-tagged table and dedups in O(1).
func (s *FlushSet) add(line uint64) {
	if s.table != nil {
		if s.table[line] == s.epoch {
			return
		}
		s.table[line] = s.epoch
		s.lines = append(s.lines, line)
		return
	}
	for _, l := range s.lines {
		if l == line {
			return
		}
	}
	s.lines = append(s.lines, line)
	if len(s.lines) >= spillLines {
		if s.epoch == 0 {
			s.epoch = 1 // 0 must stay invalid: missing table entries read as 0
		}
		s.table = make(map[uint64]uint64, 2*spillLines)
		for _, l := range s.lines {
			s.table[l] = s.epoch
		}
	}
}

// adopt registers fs as a counter shard of d on first use. A FlushSet is
// bound to the first device that uses it for its lifetime.
func (d *Device) adopt(fs *FlushSet) {
	if fs.dev != nil {
		panic(fmt.Sprintf("pmem: FlushSet bound to device %q used with device %q",
			fs.dev.name, d.name))
	}
	d.shardMu.Lock()
	fs.dev = d
	fs.gen = d.gen.Load()
	d.shards = append(d.shards, fs)
	d.shardMu.Unlock()
}

// Flush records a write-back request (clwb) for the line containing off.
// The line's durability is only guaranteed after a subsequent Fence on the
// same FlushSet; until then the eviction adversary decides its fate.
func (d *Device) Flush(fs *FlushSet, off uint64) {
	if !d.fastOK(off) {
		d.checkSlow(off)
		spinN(d.flushSpins)
	}
	if fs.dev != d {
		d.adopt(fs)
	}
	if debugChecks {
		fs.enter(d)
	}
	fs.flushes.Add(1)
	if d.lineTrack {
		fs.add(off >> lineShift)
	}
	if debugChecks {
		fs.exit()
	}
}

// Counters returns the cumulative number of Flush and Fence calls, summed
// exactly across the per-thread shards; the ablation benchmarks report
// persistence-instruction counts with these.
func (d *Device) Counters() (flushes, fences uint64) {
	d.shardMu.Lock()
	for _, s := range d.shards {
		flushes += s.flushes.Load()
		fences += s.fences.Load()
	}
	d.shardMu.Unlock()
	return flushes, fences
}

// Fence (sfence) commits every line flushed on fs since the previous Fence
// to the media image. The content committed is the line's content at
// commit time, matching the write-back window of real hardware. A fence is
// a device operation like any other: it checks the freeze state and the
// FreezeAfter countdown, so deterministic crashes can land exactly on a
// fence boundary — before any of its lines commit.
func (d *Device) Fence(fs *FlushSet) {
	if d.state.Load() != 0 {
		d.fenceSlow()
	}
	if fs.dev != d {
		d.adopt(fs)
	}
	if debugChecks {
		fs.enter(d)
	}
	fs.fences.Add(1)
	if d.lineTrack && len(fs.lines) > 0 {
		d.commitFence(fs.lines)
		fs.clearLines()
	}
	if debugChecks {
		fs.exit()
	}
}

// fenceSlow is the offset-less slow gate for Fence: it applies the freeze
// state and the FreezeAfter countdown — a fence is a countable device
// operation, so a deterministic crash can land exactly on a fence boundary,
// before any line commits — and injects the fence latency.
func (d *Device) fenceSlow() {
	s := d.state.Load()
	if s&stateFrozen != 0 {
		panic(ErrFrozen)
	}
	if s&stateArmed != 0 && d.countdown.Add(-1) == 0 {
		d.setState(stateFrozen)
		panic(ErrFrozen)
	}
	if s&stateFault != 0 {
		d.faultTick(0)
	}
	spinN(d.fenceSpins)
}

// commitLines copies each dirty line's current content to the media, one
// pass per line, with no per-line locking. Words are copied with individual
// atomic load/store pairs, so concurrent fences of the same line interleave
// at 8-byte granularity — exactly the persistence atomicity the crash model
// grants (per-word), and the same tearing window a concurrent DWCAS already
// has against any line copy.
func (d *Device) commitLines(lines []uint64) {
	limit := uint64(len(d.words))
	for _, line := range lines {
		base := line << lineShift
		end := base + WordsPerLine
		if end > limit {
			end = limit
		}
		for off := base; off < end; off++ {
			atomic.StoreUint64(&d.media[off], atomic.LoadUint64(&d.words[off]))
		}
	}
}

// Freeze makes every subsequent device operation panic with ErrFrozen,
// unwinding in-flight operations so a crash can be taken at an arbitrary
// point. Freeze does not itself alter memory.
func (d *Device) Freeze() { d.setState(stateFrozen) }

// Frozen reports whether the device is frozen.
func (d *Device) Frozen() bool { return d.state.Load()&stateFrozen != 0 }

// FreezeAfter arms a countdown: the n-th subsequent device operation
// (fences included) freezes the device (and panics). Used to place crashes
// deterministically.
func (d *Device) FreezeAfter(n int64) {
	d.countdown.Store(n)
	if n > 0 {
		d.setState(stateArmed)
	} else {
		d.clearState(stateArmed)
	}
}

// Crash simulates a power failure. All goroutines using the device must
// already have unwound (see Freeze). For a persistent device the eviction
// adversary first decides the fate of every unfenced word, then the current
// view is reset from the media. For a volatile device everything is zeroed.
// The device is left unfrozen and ready for recovery.
//
// When a FaultModel is installed (InjectFaults), it supersedes the policy
// argument: the model's seeded line-granular adversary — persist, drop, or
// tear each dirty line — decides the media image instead.
func (d *Device) Crash(policy CrashPolicy, rng *rand.Rand) {
	if d.persistent {
		if !d.track {
			panic("pmem: Crash on a persistent device that is not tracking its media (Config.Track=false)")
		}
		if d.fault != nil {
			d.fault.applyCrash(d)
		} else {
			for i := range d.words {
				cur, med := d.words[i], d.media[i]
				if cur == med {
					continue
				}
				switch policy {
				case CrashKeepAll:
					d.media[i] = cur
				case CrashRandom:
					if rng == nil {
						panic("pmem: CrashRandom requires a rand source")
					}
					if rng.Int63()&1 == 0 {
						d.media[i] = cur
					}
				}
			}
		}
		copy(d.words, d.media)
	} else {
		for i := range d.words {
			d.words[i] = 0
		}
	}
	// Relaxed lines die with the cache: nothing defers past a crash. The
	// watermark and epoch survive — marks never exceed pepoch, and fresh
	// tags are read from pepoch, so stale marks can never satisfy the
	// strict Persisted comparison.
	if d.elide {
		d.relaxedMu.Lock()
		d.relaxedLines = d.relaxedLines[:0]
		for line := range d.relaxedSet {
			delete(d.relaxedSet, line)
		}
		d.relaxedMu.Unlock()
	}
	// Combine buffers die with the cache too; tickets and drained
	// watermarks survive as the record of what was allowed to vanish.
	d.crashCombine()
	d.countdown.Store(0)
	d.gen.Add(1)
	base := d.baseState
	if d.fault != nil {
		base |= stateFault // the installed fault model survives the crash
	}
	d.state.Store(base)
	d.syncGate()
}

// ReadRaw reads a word without latency, freeze checks, or bounds reservation
// of offset 0. Recovery and test inspection use it.
func (d *Device) ReadRaw(off uint64) uint64 { return atomic.LoadUint64(&d.words[off]) }

// WriteRaw writes a word without latency or freeze checks. Recovery uses it
// to rebuild the volatile replica.
func (d *Device) WriteRaw(off uint64, v uint64) { atomic.StoreUint64(&d.words[off], v) }

// PersistedWord returns the media image of a word; it panics unless the
// device tracks persistence. Tests use it to assert durability.
func (d *Device) PersistedWord(off uint64) uint64 {
	if !d.track {
		panic("pmem: PersistedWord on non-tracking device")
	}
	return atomic.LoadUint64(&d.media[off])
}

// PersistRange copies the current view of [off, off+n) straight into the
// media image, bypassing flush/fence bookkeeping. It exists for recovery
// procedures (which run single-threaded before normal operation resumes)
// such as the heap sanitization of the Link-Free/SOFT scan.
func (d *Device) PersistRange(off uint64, n int) {
	if !d.track {
		return
	}
	for i := uint64(0); i < uint64(n); i++ {
		atomic.StoreUint64(&d.media[off+i], atomic.LoadUint64(&d.words[off+i]))
	}
}

// CopyRange bulk-copies [off, off+n) from this device's current view into
// dst at the same offsets with a single memmove — the rebuild primitive of
// the recovery pipeline: spans move as cache lines, not words. It is a
// countable device operation on the *source*: the freeze gate and the
// FreezeAfter countdown apply once per call, so a deterministic crash can
// land exactly on a rebuild copy (the crash-during-recovery tests rely on
// this). Latency models are bypassed; recovery runs before normal
// operation resumes. Concurrent calls must target disjoint ranges, and the
// destination must be quiesced — both hold for recovery workers, which
// partition the reachable spans.
func (d *Device) CopyRange(dst *Device, off uint64, n int) {
	if n <= 0 {
		return
	}
	faulty := false
	if s := d.state.Load(); s != 0 {
		if s&stateFrozen != 0 {
			panic(ErrFrozen)
		}
		if s&stateArmed != 0 && d.countdown.Add(-1) == 0 {
			d.setState(stateFrozen)
			panic(ErrFrozen)
		}
		faulty = s&stateFault != 0
	}
	if off == 0 || off+uint64(n) > uint64(len(d.words)) || off+uint64(n) > uint64(len(dst.words)) {
		panic(fmt.Sprintf("pmem: %s: CopyRange [%d,%d) out of range", d.name, off, off+uint64(n)))
	}
	if faulty {
		// With a fault model installed the bulk copy is no longer one
		// indivisible operation: each cache line of the span is a separate
		// consultation, so a randomized crash can land *inside* the copy,
		// leaving only a prefix of lines in the destination — the partial
		// rebuild the crash-during-recovery tests must tolerate.
		for cur, end := off, off+uint64(n); cur < end; {
			chunk := WordsPerLine - cur%WordsPerLine
			if cur+chunk > end {
				chunk = end - cur
			}
			d.faultTick(cur)
			copy(dst.words[cur:cur+chunk], d.words[cur:cur+chunk])
			cur += chunk
		}
		return
	}
	copy(dst.words[off:off+uint64(n)], d.words[off:off+uint64(n)])
}
