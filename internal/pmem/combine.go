package pmem

// Cross-operation fence combining (FliT §4's per-thread write buffers,
// adapted to the Mirror transform). The flush-elision layer (elide.go)
// removed every fence the transform allows *within* one operation; what
// remains is one fence per linearization point. Combining defers those
// too: a linearizing install is appended to the owning thread's combine
// buffer instead of being fenced on the spot, and the buffer drains with
// one flush per distinct line plus a single trailing fence when
//
//   - it reaches capacity (combineCapacityLines distinct lines or
//     combineCapacityOps buffered linearizations),
//   - a combining epoch elapses (combineEpochOps operation ends with the
//     buffer non-empty — see CombineTick),
//   - another thread's read observes a buffered install and forces the
//     line durable itself (CombineProbe, the buffer-aware Persisted
//     probe),
//   - a detectable-operation verdict is about to publish (the verdict
//     must never be durable before the install it testifies to), or
//   - the allocator is about to free memory (the pre-free drain), or an
//     explicit quiesce asks for it.
//
// The crash contract changes shape: an operation whose linearizing
// install is still buffered has completed *visibly* but not *durably*.
// Each thread therefore assigns every buffered linearization a monotone
// ticket and keeps a drained watermark; at a crash, an operation whose
// ticket is above its thread's watermark may independently vanish or
// take effect (the per-line crash fates decide), and everything at or
// below the watermark reached a drain fence and must survive. The
// linearize checker's buffered mode consumes exactly this pair.
//
// Soundness leans on two properties of the substrate. First, media
// commits are line-granular copies of *current* content, so any fence
// that covers a line — the owner's drain, another thread's unrelated
// fence, a conflict probe, the registry's pre-free drain — commits every
// buffered install the line holds, whoever buffered it. Second, every
// buffered line is also registered in the relaxed-line registry before
// the install becomes visible in rep_v, so the allocator's pre-free
// drain (which any thread may run) commits it before memory the install
// could reference is reused — the same contract CASRelaxed relies on,
// extended from auxiliary updates to linearization points.

// DrainCause says why a combine buffer drained; each drain increments
// exactly one cause counter on the draining thread's FlushSet.
type DrainCause int

const (
	// DrainCapacity: the buffer hit its line or ticket capacity.
	DrainCapacity DrainCause = iota
	// DrainEpoch: a combining epoch (combineEpochOps operation ends)
	// elapsed with the buffer non-empty.
	DrainEpoch
	// DrainConflict: a read by another thread observed a buffered install
	// and committed the line itself (charged to the probing thread).
	DrainConflict
	// DrainDetect: a detectable-operation verdict needed its pre-verdict
	// fence.
	DrainDetect
	// DrainPreFree: the allocator was about to free memory.
	DrainPreFree
	// DrainExpose: a relaxed (unregistered-shortcut) write was about to
	// become visible while the writer's own buffer held a linearizing
	// install the shortcut could expose; the buffer drained first. See
	// CompareAndSwapRelaxed's exposure rule.
	DrainExpose
	// DrainExplicit: an explicit engine drain (quiesce, tests).
	DrainExplicit

	drainCauses
)

func (c DrainCause) String() string {
	switch c {
	case DrainCapacity:
		return "capacity"
	case DrainEpoch:
		return "epoch"
	case DrainConflict:
		return "conflict"
	case DrainDetect:
		return "detect"
	case DrainPreFree:
		return "prefree"
	case DrainExpose:
		return "expose"
	case DrainExplicit:
		return "explicit"
	}
	return "unknown"
}

// DrainCauses aggregates the per-cause drain counts (CombineCounters).
type DrainCauses struct {
	Capacity, Epoch, Conflict, Detect, PreFree, Expose, Explicit uint64
}

const (
	// combineCapacityLines bounds the distinct dirty lines a thread may
	// hold back; one line is one deferred flush at the next drain.
	combineCapacityLines = 8
	// combineCapacityOps bounds the linearizations a thread may hold
	// back even when they all land on few lines (repeated CAS of the
	// same word), bounding the vanish window in operations.
	combineCapacityOps = 16
	// combineEpochOps is the combining epoch in operation ends: a
	// non-empty buffer never outlives this many of its owner's ops.
	combineEpochOps = 8
)

// Combines reports whether the combining layer is active on this device.
func (d *Device) Combines() bool { return d.combine }

// CombineAdd defers the durability of a linearizing install at off to
// fs's combine buffer and returns whether the buffer hit capacity (the
// caller must then drain). Must be called after the install lands in
// rep_p and before it becomes visible in rep_v, exactly like
// NoteRelaxed: the global registration below is what orders the install
// before any free of memory it references, and the cpend tag is what
// lets other threads' reads detect it.
func (d *Device) CombineAdd(fs *FlushSet, off uint64) bool {
	if fs.dev != d {
		d.adopt(fs)
	}
	line := off >> lineShift
	// Register in the relaxed-line registry: the pre-free drain (run by
	// whichever thread frees first) commits this line along with the
	// relaxed CASes.
	d.relaxedMu.Lock()
	if _, dup := d.relaxedSet[line]; !dup {
		d.relaxedSet[line] = struct{}{}
		d.relaxedLines = append(d.relaxedLines, line)
	}
	d.relaxedMu.Unlock()
	// Conflict-probe tag: a fence whose epoch advance follows this load
	// has epoch >= pepoch+1, so marks[line] >= cpend[line] proves the
	// install (or a successor in the same word) reached the media; see
	// CombinePending. The install itself happened before this load, so
	// any such fence's line copy includes it.
	atomicMax(&d.cpend[line], d.pepoch.Load()+1)
	fs.cbTicket++
	found := false
	for _, l := range fs.cbLines {
		if l == line {
			found = true
			break
		}
	}
	if !found {
		fs.cbLines = append(fs.cbLines, line)
	}
	fs.combined.Add(1)
	return len(fs.cbLines) >= combineCapacityLines ||
		fs.cbTicket-fs.cbDrained >= combineCapacityOps
}

// CombinePending reports whether off's line holds a buffered linearizing
// install that no fence has committed yet. False on non-combining
// devices and for every line no combining install ever touched, so the
// steady-state cost of a read-side probe is one atomic load.
func (d *Device) CombinePending(off uint64) bool {
	if !d.combine {
		return false
	}
	line := off >> lineShift
	cp := d.cpend[line].Load()
	return cp != 0 && d.marks[line].Load() < cp
}

// CombineAdopt enrolls a line that is combine-pending in *another*
// thread's buffer into fs's own buffer, without a ticket (no operation
// of fs's is being linearized). The adopter's next drain then flushes
// the line alongside its own, so an operation built durably on top of a
// foreign buffered install never outlives it: by the time the adopter's
// watermark advances past the building operation's ticket, the adopted
// prefix line has reached the same drain fence. This is the zero-fence
// alternative to CombineProbe for writers that *extend* a pending chain
// rather than complete a read against it (the durable queue's enqueue
// walk). Callers must only adopt lines whose CombinePending is true —
// that orders the owner's registry registration before the adoption.
func (d *Device) CombineAdopt(fs *FlushSet, off uint64) {
	if !d.combine {
		return
	}
	if fs.dev != d {
		d.adopt(fs)
	}
	line := off >> lineShift
	for _, l := range fs.cbLines {
		if l == line {
			return
		}
	}
	fs.cbLines = append(fs.cbLines, line)
}

// CombineAdoptRead is the adopting variant of the read-side conflict
// probe, for loads inside *update* operations' traversals. Where
// CombineProbe commits a foreign pending line on the spot (one flush +
// one fence per conflict), this enrolls it into fs's own buffer, so
// fs's next drain commits the whole witnessed path under a single
// fence. Soundness differs from the probe's and leans on linked-chain
// reachability: an update that builds on the walked path either
//
//   - linearizes — its install's ticket then rides the same drain as
//     the adopted lines, and until that drain, a crash that drops an
//     adopted link makes the dependent effect unreachable from the
//     roots, so the operation vanishes with its dependency (the
//     may-vanish branch the buffered checker grants it), or
//   - reports no effect — a verdict with no install of its own; the
//     caller must then commit the witness before returning
//     (CombineWitness below).
//
// It is NOT sound for plain read operations, which complete with no
// ticket and no witness barrier: those keep CombineProbe. A line
// already buffered (own install or earlier adoption) is only flagged.
// Adopting can fill the buffer; it drains at capacity like CombineAdd.
func (d *Device) CombineAdoptRead(fs *FlushSet, off uint64) {
	if !d.combine {
		return
	}
	line := off >> lineShift
	cp := d.cpend[line].Load()
	if cp == 0 || d.marks[line].Load() >= cp {
		return
	}
	if fs.dev != d {
		d.adopt(fs)
	}
	fs.cbAdopted = true
	for _, l := range fs.cbLines {
		if l == line {
			return
		}
	}
	fs.cbLines = append(fs.cbLines, line)
	if len(fs.cbLines) >= combineCapacityLines {
		d.CombineDrain(fs, DrainCapacity)
	}
}

// CombineWitness commits the caller's read witness before a no-effect
// verdict (failed insert, absent-key delete) returns from an update
// operation that traversed with CombineAdoptRead. If the buffer holds
// an adopted line some read depended on and the thread has an undrained
// ticket of its own, nothing happens: the verdict is stamped with that
// ticket and vanishes with it at a crash. With no undrained ticket the
// verdict is in the must-survive class, so the adopted dependencies
// must reach a fence first — the buffer drains (an exposure drain: the
// verdict would otherwise expose undurable state to the caller).
func (d *Device) CombineWitness(fs *FlushSet) {
	if !d.combine || !fs.cbAdopted {
		return
	}
	if fs.cbTicket != fs.cbDrained {
		return
	}
	d.CombineDrain(fs, DrainExpose)
}

// CombineSettled reports whether off's line carried at least one
// combining install and every such install has provably reached the
// media (a fence with a covering epoch committed the line). Unlike the
// elision watermark probe this is not staleness-prone: cpend and marks
// only grow, so once a line settles it stays settled until a new
// combining install raises cpend again. Constant false on non-combining
// devices and for lines no combining install ever touched.
func (d *Device) CombineSettled(off uint64) bool {
	if !d.combine {
		return false
	}
	line := off >> lineShift
	cp := d.cpend[line].Load()
	return cp != 0 && d.marks[line].Load() >= cp
}

// CombineProbe is the read-side conflict probe: a value loaded from the
// volatile replica may be another thread's buffered — visible but not
// yet durable — install. An operation about to complete on the strength
// of such a value must not outlive it across a crash, so the probing
// thread commits the line itself (one flush + one fence on its own fs,
// charged as a conflict drain). A line pending only in fs's *own*
// buffer is left alone: the probing thread's operation then carries its
// own undrained ticket, and its own drain is what commits the line.
// Returns whether a commit was forced.
func (d *Device) CombineProbe(fs *FlushSet, off uint64) bool {
	if !d.combine {
		return false
	}
	line := off >> lineShift
	cp := d.cpend[line].Load()
	if cp == 0 || d.marks[line].Load() >= cp {
		return false
	}
	for _, l := range fs.cbLines {
		if l == line {
			return false
		}
	}
	if fs.dev != d {
		d.adopt(fs)
	}
	d.Flush(fs, off)
	d.Fence(fs)
	fs.drainCause[DrainConflict].Add(1)
	return true
}

// CombineDrain commits fs's combine buffer: one flush per buffered line
// that the watermark does not already prove durable, one trailing fence
// (elided when nothing is pending), then the drained-ticket watermark
// advances. A crash during the drain leaves the watermark where it was,
// so every buffered operation stays in the may-vanish class and the
// per-line fates decide each one independently — the drain never claims
// durability it has not fenced.
func (d *Device) CombineDrain(fs *FlushSet, cause DrainCause) {
	if !d.combine {
		return
	}
	fs.cbOpTicks = 0
	if len(fs.cbLines) == 0 && fs.cbTicket == fs.cbDrained {
		return
	}
	if fs.dev != d {
		d.adopt(fs)
	}
	target := fs.cbTicket
	for i, line := range fs.cbLines {
		if d.breakCombine && i == 0 {
			// BUG hook (BreakCombineForTest): drop the first buffered
			// line while still advancing the watermark below — the
			// seeded bug NewBrokenCombineMirror exists to plant.
			continue
		}
		if d.marks[line].Load() >= d.cpend[line].Load() {
			// A conflict probe, a pre-free drain, or an unrelated fence
			// already committed every buffered install on this line.
			fs.elidedFlushes.Add(1)
			continue
		}
		off := line << lineShift
		if off == 0 {
			off = 1 // offset 0 is reserved; any word of the line works
		}
		d.Flush(fs, off)
	}
	if fs.Pending() > 0 {
		d.Fence(fs)
	} else {
		d.NoteElided(fs, 0, 1)
	}
	fs.cbLines = fs.cbLines[:0]
	fs.cbDrained = target
	fs.cbAdopted = false
	fs.drainCause[cause].Add(1)
}

// CombineQuiet reports whether this thread's combine buffer is empty —
// every linearization it issued has reached a drain fence. Constant true
// on non-combining devices (the buffer never fills). Data structures use
// it to gate *exposing* shortcut writes: a relaxed snip, unlink, or
// cleanup CAS issued by a thread whose own buffer is non-empty can make
// a buffered linearization reachable (or its effect deducible) along a
// path that never loads the buffered line, so the read-side conflict
// probe never fires and a fenced observer can outlive the install across
// a crash. Such writes must either wait for a quiet moment or drain
// first (DrainExpose).
func (s *FlushSet) CombineQuiet() bool {
	return len(s.cbLines) == 0 && s.cbTicket == s.cbDrained
}

// CombineOwns reports whether off's line sits in this thread's own
// combine buffer — a linearizing install it published but has not yet
// drained. Helpers use it to distinguish "lagging because the owner is
// slow" (help: persist and complete) from "lagging because *my own*
// buffer holds it" (build past it; my next drain commits it).
func (s *FlushSet) CombineOwns(off uint64) bool {
	line := off >> lineShift
	for _, l := range s.cbLines {
		if l == line {
			return true
		}
	}
	return false
}

// CombineTick is the per-operation epoch pulse: engines call it at the
// end of every operation, and a non-empty buffer drains after
// combineEpochOps such pulses. This bounds, in the owner's operations,
// how long a completed operation can remain in the may-vanish class.
func (d *Device) CombineTick(fs *FlushSet) {
	if !d.combine {
		return
	}
	if len(fs.cbLines) == 0 && fs.cbTicket == fs.cbDrained {
		fs.cbOpTicks = 0
		return
	}
	fs.cbOpTicks++
	if fs.cbOpTicks >= combineEpochOps {
		d.CombineDrain(fs, DrainEpoch)
	}
}

// CombineTickets returns this thread's (last, drained) linearization
// ticket pair: the ticket of the most recent combining install and the
// watermark of the last completed drain. An operation whose ticket is
// above the watermark at a crash may vanish or take effect; at or below
// it, the operation reached a drain fence and must survive. Both are
// plain Go state, so they remain readable after a device crash.
func (s *FlushSet) CombineTickets() (last, drained uint64) {
	return s.cbTicket, s.cbDrained
}

// CombinePendingOps returns the number of buffered linearizations not
// yet covered by a drain; tests use it.
func (s *FlushSet) CombinePendingOps() int { return int(s.cbTicket - s.cbDrained) }

// CombineCounters sums the combining statistics across every FlushSet
// that has used this device: fences deferred into a combined drain, and
// the per-cause drain counts.
func (d *Device) CombineCounters() (combined uint64, causes DrainCauses) {
	d.shardMu.Lock()
	defer d.shardMu.Unlock()
	for _, s := range d.shards {
		combined += s.combined.Load()
		causes.Capacity += s.drainCause[DrainCapacity].Load()
		causes.Epoch += s.drainCause[DrainEpoch].Load()
		causes.Conflict += s.drainCause[DrainConflict].Load()
		causes.Detect += s.drainCause[DrainDetect].Load()
		causes.PreFree += s.drainCause[DrainPreFree].Load()
		causes.Expose += s.drainCause[DrainExpose].Load()
		causes.Explicit += s.drainCause[DrainExplicit].Load()
	}
	return combined, causes
}

// crashCombine resets the combining state at a crash: buffered installs
// died with the cache view, so no line is combine-pending any more and
// every buffer empties. Ticket counters and drained watermarks survive —
// they are the harness's record of which completed operations were
// allowed to vanish. Callers hold no locks; the device is quiesced
// (frozen) when Crash runs.
func (d *Device) crashCombine() {
	if !d.combine {
		return
	}
	for i := range d.cpend {
		d.cpend[i].Store(0)
	}
	d.shardMu.Lock()
	for _, s := range d.shards {
		s.cbLines = s.cbLines[:0]
		s.cbOpTicks = 0
		s.cbAdopted = false
	}
	d.shardMu.Unlock()
}

// BreakCombineForTest makes every subsequent CombineDrain silently drop
// its first buffered line while still advancing the drained watermark —
// the drain claims durability for an install it never flushed. The fault
// fuzzer's acceptance test proves this is caught. Never use outside
// tests.
func (d *Device) BreakCombineForTest() { d.breakCombine = true }
