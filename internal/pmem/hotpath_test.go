package pmem

// Tests for the hot-path rebuild: the packed state word and its fused
// gate, fence crash-point coverage, sharded counter exactness, the
// epoch-tagged dedup spill, and the FlushSet misuse assertions.

import (
	"sync"
	"testing"
)

// TestFreezeAfterLandsOnFence arms the countdown so that it expires exactly
// on a Fence: the fence must panic ErrFrozen before committing any line, so
// the flushed-but-unfenced write is at the adversary's mercy.
func TestFreezeAfterLandsOnFence(t *testing.T) {
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(9, 41) // establish a persisted baseline
	d.Flush(&fs, 9)
	d.Fence(&fs)

	d.Store(9, 42) // the update whose fence the crash lands on
	d.FreezeAfter(2)
	d.Flush(&fs, 9) // op 1: the clwb
	func() {
		defer func() {
			if r := recover(); r != ErrFrozen {
				t.Fatalf("fence recover = %v, want ErrFrozen", r)
			}
		}()
		d.Fence(&fs) // op 2: the sfence — must freeze before committing
	}()
	if !d.Frozen() {
		t.Fatal("device should be frozen on the fence boundary")
	}
	fs.Reset()
	d.Crash(CrashDropAll, nil)
	if got := d.Load(9); got != 41 {
		t.Errorf("after crash on fence: word = %d, want 41 (the fence must not have committed)", got)
	}
}

// TestCountersExactUnderConcurrency asserts Counters sums the per-FlushSet
// shards to the exact totals, not an approximation.
func TestCountersExactUnderConcurrency(t *testing.T) {
	d := newTestDevice(1 << 12)
	const (
		goroutines = 8
		rounds     = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var fs FlushSet
			for i := 0; i < rounds; i++ {
				off := uint64(g*8+1) + uint64(i%4)
				d.Store(off, uint64(i))
				d.Flush(&fs, off)
				if i%2 == 0 {
					d.Fence(&fs)
				}
			}
		}(g)
	}
	wg.Wait()
	fl, fe := d.Counters()
	if want := uint64(goroutines * rounds); fl != want {
		t.Errorf("flushes = %d, want exactly %d", fl, want)
	}
	if want := uint64(goroutines * rounds / 2); fe != want {
		t.Errorf("fences = %d, want exactly %d", fe, want)
	}
}

// TestFlushSetDedupSpill pushes a FlushSet past the spill threshold and
// checks both dedup (flush the same lines twice) and that every line still
// commits on the fence.
func TestFlushSetDedupSpill(t *testing.T) {
	const lines = 4 * spillLines
	d := newTestDevice(lines * WordsPerLine * 2)
	var fs FlushSet
	for pass := 0; pass < 2; pass++ {
		for l := 0; l < lines; l++ {
			off := uint64(l*WordsPerLine + 1)
			d.Store(off, uint64(l+100))
			d.Flush(&fs, off)
		}
	}
	if got := len(fs.lines); got != lines {
		t.Fatalf("pending lines = %d, want %d (dedup across the spill)", got, lines)
	}
	if fs.table == nil {
		t.Fatal("set should have spilled to the epoch table")
	}
	d.Fence(&fs)
	for l := 0; l < lines; l++ {
		off := uint64(l*WordsPerLine + 1)
		if got := d.PersistedWord(off); got != uint64(l+100) {
			t.Fatalf("line %d not committed: media = %d", l, got)
		}
	}
	// The epoch advance must invalidate stale table entries, not leak them
	// into the next fence window.
	d.Store(1, 7)
	d.Flush(&fs, 1)
	if got := len(fs.lines); got != 1 {
		t.Errorf("pending lines after fence = %d, want 1 (epoch should reset dedup)", got)
	}
}

// TestFlushSetTwoDevicesPanics checks the first-use device binding.
func TestFlushSetTwoDevicesPanics(t *testing.T) {
	d1 := newTestDevice(64)
	d2 := newTestDevice(64)
	var fs FlushSet
	d1.Flush(&fs, 9)
	defer func() {
		if recover() == nil {
			t.Error("Flush on a second device should panic")
		}
	}()
	d2.Flush(&fs, 9)
}

// TestFlushSetConcurrentUseDetected checks the debug assertion that a
// FlushSet is single-owner: with the set marked busy (as a concurrent
// Flush would), another Flush must panic.
func TestFlushSetConcurrentUseDetected(t *testing.T) {
	EnableDebugChecks()
	defer DisableDebugChecks()
	d := newTestDevice(64)
	var fs FlushSet
	d.Flush(&fs, 9) // bind and exercise the normal path
	fs.busy.Store(1)
	defer func() {
		fs.busy.Store(0)
		if recover() == nil {
			t.Error("concurrent FlushSet use should panic under debug checks")
		}
	}()
	d.Flush(&fs, 9)
}

// TestFlushSetRecycleWithoutResetDetected checks the debug assertion that a
// context carrying pre-crash pending flushes is not recycled across a crash
// without Reset.
func TestFlushSetRecycleWithoutResetDetected(t *testing.T) {
	EnableDebugChecks()
	defer DisableDebugChecks()
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(9, 1)
	d.Flush(&fs, 9) // pending line from before the crash
	d.Crash(CrashDropAll, nil)
	defer func() {
		if recover() == nil {
			t.Error("recycling a FlushSet across a crash without Reset should panic")
		}
	}()
	d.Flush(&fs, 9)
}

// TestFlushSetResetAllowsRecycle is the positive counterpart: Reset makes
// recycling across a crash legal.
func TestFlushSetResetAllowsRecycle(t *testing.T) {
	EnableDebugChecks()
	defer DisableDebugChecks()
	d := newTestDevice(64)
	var fs FlushSet
	d.Store(9, 1)
	d.Flush(&fs, 9)
	d.Crash(CrashDropAll, nil)
	fs.Reset()
	d.Store(9, 2)
	d.Flush(&fs, 9) // must not panic
	d.Fence(&fs)
	if got := d.PersistedWord(9); got != 2 {
		t.Errorf("media = %d, want 2", got)
	}
}

// TestGateTracksState checks the fused gate word against every state
// transition: set bits close it, returning to state 0 reopens it.
func TestGateTracksState(t *testing.T) {
	d := newTestDevice(64)
	if !d.fastOK(1) {
		t.Fatal("fresh device should be on the fast path")
	}
	if d.fastOK(0) {
		t.Fatal("offset 0 must never pass the gate")
	}
	if d.fastOK(uint64(d.Size())) {
		t.Fatal("out-of-range offset must never pass the gate")
	}
	d.FreezeAfter(5)
	if d.fastOK(1) {
		t.Fatal("armed countdown must close the gate")
	}
	d.FreezeAfter(0)
	if !d.fastOK(1) {
		t.Fatal("disarming must reopen the gate")
	}
	d.Freeze()
	if d.fastOK(1) {
		t.Fatal("frozen device must close the gate")
	}
	d.Crash(CrashDropAll, nil)
	if !d.fastOK(1) {
		t.Fatal("crash must reopen the gate")
	}
	// A latency-model device never opens the gate: every access must pass
	// through the slow path to inject its spin.
	slow := New(Config{Words: 64, Model: LatencyModel{LoadNS: 1}})
	if slow.fastOK(1) {
		t.Fatal("latency-model device must keep the gate closed")
	}
}
