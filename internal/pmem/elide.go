// Flush elision and fence coalescing (DESIGN.md "Flush elision & fence
// coalescing"). A device built with Config.Elide maintains a FliT-style
// per-cache-line *persisted-epoch watermark* table: a global persist epoch
// counter advances at the start of every committing fence, and a line's
// watermark is raised to that epoch only after the fence has actually
// copied the line to the media. A writer that (a) observes a value and
// then (b) reads the epoch can elide its own flush+fence whenever the
// line's watermark later exceeds that epoch — the strict inequality proves,
// by monotonicity alone, that some fence copied the line *after* the
// observation, so the observed value (or a successor with a higher
// sequence number) is on media.
//
// Crucially the watermark is raised only on the fenced-commit path: the
// fault model's early eviction also copies a line to media, but an eviction
// is not a guarantee — it must never advance the watermark (the
// deliberately-broken variant behind BreakWatermarkForTest does exactly
// that, and the fault fuzzer's acceptance self-test proves the fuzzer
// catches it).
//
// Two further mechanisms ride on the same epoch order:
//
//   - Fence coalescing: a committing fence first publishes its epoch as a
//     per-line *ticket* (committing[line]), then commits, then raises the
//     watermark. A concurrent writer holding tag g that sees a ticket t > g
//     knows a fence that began after its install is mid-commit; it elides
//     its flush and waits for the watermark to reach t instead of fencing
//     itself ("piggybacking"). Between publishing the ticket and raising
//     the watermark the fencer executes only plain atomic operations — no
//     freeze gate, no fault consultation — so an observed ticket is a
//     completion guarantee, not a promise.
//
//   - The relaxed-line registry: a CAS that is only retire-gated (list and
//     skiplist snips, bst excisions — see patomic.CompareAndSwapRelaxed)
//     may become visible before it is durable, provided its line is made
//     durable before any object it unlinked is freed. Such installs
//     register their line here, *before* the volatile publish, and every
//     allocator drain commits the registry (flush per line + one fence)
//     before freeing anything. The mutex orders registration before the
//     stealing drain whenever the freeing thread observed the install, so
//     the media can never hold a pointer into freed memory.
package pmem

import (
	"runtime"
	"sync/atomic"
)

// piggybackSpins bounds the wait for an in-flight fence's commit before the
// piggybacking writer gives up and issues its own flush+fence. The fencer
// cannot stall between ticket and watermark (no gates there), so the bound
// exists only as a scheduling safety valve.
const piggybackSpins = 1 << 14

// atomicMax advances a monotone counter to at least v.
func atomicMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Elides reports whether the flush-elision watermark machinery is enabled
// (Config.Elide on a persistent device).
func (d *Device) Elides() bool { return d.elide }

// PersistEpoch returns the current global persist epoch. A writer reads it
// *after* observing (or installing) a value; the returned tag is what
// Persisted and CommitTicket compare against. Zero when elision is off.
func (d *Device) PersistEpoch() uint64 {
	if !d.elide {
		return 0
	}
	return d.pepoch.Load()
}

// Persisted reports whether the line containing off has provably committed
// to media since the caller's observation tagged tag: the watermark must
// strictly exceed the tag, which proves the committing fence's epoch
// advance — and therefore its line copy — happened after the tag was read.
// Always false when elision is off, so callers degrade to the full
// flush+fence.
func (d *Device) Persisted(off, tag uint64) bool {
	if !d.elide {
		return false
	}
	return d.marks[off>>lineShift].Load() > tag
}

// CommitTicket returns the highest fence epoch that has been published for
// the line containing off but whose commit may still be in flight. A ticket
// strictly greater than the caller's tag means a fence that started after
// the caller's observation will commit the line; WaitPersisted rides it.
func (d *Device) CommitTicket(off uint64) uint64 {
	if !d.elide {
		return 0
	}
	return d.committing[off>>lineShift].Load()
}

// WaitPersisted spins until the watermark of the line containing off
// reaches ticket, i.e. until the fence that published the ticket has
// committed the line. It reports false if the bound expires — callers then
// fall back to their own flush+fence.
func (d *Device) WaitPersisted(off, ticket uint64) bool {
	line := off >> lineShift
	for i := 0; i < piggybackSpins; i++ {
		if d.marks[line].Load() >= ticket {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// commitFence is Fence's commit step. With elision on it brackets the media
// copy with the epoch protocol: advance the global epoch, publish it as a
// ticket on every dirty line, copy the lines, then raise the watermarks.
// The watermark is raised strictly after the copy — an early eviction
// (fault.go) copies lines without passing through here and therefore never
// advances a watermark.
func (d *Device) commitFence(lines []uint64) {
	if !d.elide {
		if d.track {
			d.commitLines(lines)
		}
		return
	}
	e := d.pepoch.Add(1)
	for _, line := range lines {
		atomicMax(&d.committing[line], e)
	}
	if d.track {
		d.commitLines(lines)
	}
	for _, line := range lines {
		atomicMax(&d.marks[line], e)
	}
}

// NoteRelaxed registers the line containing off in the relaxed-line
// registry: the caller is about to make a value visible before it is
// durable, deferring the line's commit to the next CommitRelaxed. It must
// be called after the persistent install and before the volatile publish —
// that ordering is what lets the stealing drain prove it covers every
// unlink the freeing thread observed. The call itself issues no
// persistence instructions; it counts one elided flush and one elided
// fence on fs.
func (d *Device) NoteRelaxed(fs *FlushSet, off uint64) {
	if fs.dev != d {
		d.adopt(fs)
	}
	fs.relaxed.Add(1)
	fs.elidedFlushes.Add(1)
	fs.elidedFences.Add(1)
	line := off >> lineShift
	d.relaxedMu.Lock()
	if _, dup := d.relaxedSet[line]; !dup {
		d.relaxedSet[line] = struct{}{}
		d.relaxedLines = append(d.relaxedLines, line)
	}
	d.relaxedMu.Unlock()
}

// CommitRelaxed makes every registered relaxed line durable: it steals the
// registry and issues one Flush per line plus a single trailing Fence on
// fs — ordinary countable device operations, so the freeze gate, the fault
// model, and the watermark all apply. When the registry is empty it issues
// nothing, not even the fence. Allocator drains call this before freeing
// the first object of a batch.
func (d *Device) CommitRelaxed(fs *FlushSet) {
	if !d.elide {
		return
	}
	d.relaxedMu.Lock()
	if len(d.relaxedLines) == 0 {
		d.relaxedMu.Unlock()
		return
	}
	lines := append([]uint64(nil), d.relaxedLines...)
	d.relaxedLines = d.relaxedLines[:0]
	for line := range d.relaxedSet {
		delete(d.relaxedSet, line)
	}
	d.relaxedMu.Unlock()
	for _, line := range lines {
		off := line << lineShift
		if off == 0 {
			off = 1 // offset 0 is reserved; any word of the line works
		}
		d.Flush(fs, off)
	}
	d.Fence(fs)
}

// RelaxedPending returns the number of lines currently registered for
// deferred commit; tests use it.
func (d *Device) RelaxedPending() int {
	d.relaxedMu.Lock()
	n := len(d.relaxedLines)
	d.relaxedMu.Unlock()
	return n
}

// NoteElided records persistence instructions a caller skipped because the
// watermark (or batch dedup, or an already-fenced empty pending set) proved
// them redundant. Pure accounting; the ablation benchmarks report these.
func (d *Device) NoteElided(fs *FlushSet, flushes, fences uint64) {
	if fs.dev != d {
		d.adopt(fs)
	}
	if flushes != 0 {
		fs.elidedFlushes.Add(flushes)
	}
	if fences != 0 {
		fs.elidedFences.Add(fences)
	}
}

// NotePiggyback records a fence avoided by riding a concurrent fence's
// ticket (the flush was elided too).
func (d *Device) NotePiggyback(fs *FlushSet) {
	if fs.dev != d {
		d.adopt(fs)
	}
	fs.elidedFlushes.Add(1)
	fs.piggybacked.Add(1)
}

// ElisionCounters sums the per-thread elision shards: flushes elided,
// fences elided, fences piggybacked on a concurrent fence's ticket, and
// relaxed installs registered for deferred commit.
func (d *Device) ElisionCounters() (elidedFlushes, elidedFences, piggybacked, relaxed uint64) {
	d.shardMu.Lock()
	for _, s := range d.shards {
		elidedFlushes += s.elidedFlushes.Load()
		elidedFences += s.elidedFences.Load()
		piggybacked += s.piggybacked.Load()
		relaxed += s.relaxed.Load()
	}
	d.shardMu.Unlock()
	return
}

// BreakWatermarkForTest makes the fault model's early eviction falsely
// advance the evicted line's watermark past the current epoch — exactly
// the bug the watermark protocol exists to rule out (an eviction is not a
// commit guarantee). Installed only by engine.NewBrokenWatermarkMirror;
// the fault fuzzer's acceptance self-test must catch the resulting
// durable-linearizability violations.
func (d *Device) BreakWatermarkForTest() { d.breakWM = true }
