package pmem

import (
	"sync"
	"sync/atomic"
	"time"
)

// LatencyModel describes the extra access cost, in nanoseconds, that a
// Device injects on top of the host's native memory speed. The values model
// the gap between the simulated technology and ordinary Go heap access; the
// absolute numbers matter less than the ratios, which set the shape of the
// benchmark results (§6.1 of the paper: NVMM reads ≈ 3× DRAM reads, flushes
// and fences each cost on the order of a cache miss).
type LatencyModel struct {
	LoadNS  int // per 8-byte load
	StoreNS int // per 8-byte store (and per CAS/DWCAS attempt)
	FlushNS int // per CLWB-equivalent flush
	FenceNS int // per SFENCE-equivalent fence
}

// Zero reports whether the model injects no delays at all.
func (m LatencyModel) Zero() bool {
	return m.LoadNS == 0 && m.StoreNS == 0 && m.FlushNS == 0 && m.FenceNS == 0
}

// DRAMModel approximates conventional DRAM: a uniform modest access cost and
// no meaningful flush semantics (flushing DRAM buys no durability).
func DRAMModel() LatencyModel {
	return LatencyModel{LoadNS: 20, StoreNS: 20, FlushNS: 20, FenceNS: 20}
}

// NVMMModel approximates Intel Optane DC in App-Direct mode relative to
// DRAMModel: reads about 3× slower, writes somewhat slower still, and
// explicit write-backs costing roughly an LLC miss each.
func NVMMModel() LatencyModel {
	return LatencyModel{LoadNS: 60, StoreNS: 75, FlushNS: 60, FenceNS: 100}
}

// NoLatency injects no delays; unit tests and the crash harness use it so
// correctness runs are fast.
func NoLatency() LatencyModel { return LatencyModel{} }

// NUMA models a multi-socket NVRAM topology over a sharded engine: each
// shard plays one socket's DIMMs, a thread's home shard is cheap (the
// plain NVMM model), and every operation routed to a remote shard pays a
// fixed remote-socket penalty on top — the shape of the paper's
// remote-persist measurements (§6.2.1). The penalty is charged once per
// routed operation at the routing layer, not per device access, so the
// device fast path is untouched and the local/remote latency ratio is
// set directly by the preset.
type NUMA struct {
	// RemoteNS is the extra cost, in nanoseconds, of routing one
	// operation to a shard other than the calling thread's home shard.
	RemoteNS int
	iters    int64 // precomputed spin iterations for RemoteNS
}

// NUMAModel returns the NUMA-shaped latency preset with the given
// remote-socket penalty per remotely routed operation. The spin count is
// precomputed here, so charging the penalty is a single calibrated busy
// loop with no rate lookup.
func NUMAModel(remotePenaltyNS int) *NUMA {
	return &NUMA{RemoteNS: remotePenaltyNS, iters: spinIters(remotePenaltyNS)}
}

// Local returns the home-shard device model: plain NVMM speed.
func (n *NUMA) Local() LatencyModel { return NVMMModel() }

// Penalize charges one remote-socket penalty; the sharded engine calls
// it when an operation's key routes off the calling thread's home shard.
func (n *NUMA) Penalize() {
	if n != nil {
		spinN(n.iters)
	}
}

// The spin rate (loop iterations per nanosecond, fixed-point scaled by
// 1024) is calibrated exactly once per process and cached; devices convert
// their model's nanosecond costs to iteration counts at construction, so
// the per-access path does no rate lookup and no fixed-point arithmetic.
var (
	calOnce sync.Once
	calRate int64
)

// spinSink defeats dead-code elimination of the calibration and delay loops.
var spinSink atomic.Uint64

func calibrate() int64 {
	const probe = 200000
	var acc uint64
	start := time.Now()
	for i := 0; i < probe; i++ {
		acc += uint64(i) ^ (acc >> 3)
	}
	spinSink.Store(acc)
	elapsed := time.Since(start).Nanoseconds()
	if elapsed < 1 {
		elapsed = 1
	}
	rate := int64(probe) * 1024 / elapsed
	if rate < 1 {
		rate = 1
	}
	return rate
}

// spinRate returns the cached calibration, calibrating on first use.
func spinRate() int64 {
	calOnce.Do(func() { calRate = calibrate() })
	return calRate
}

// spinIters converts a model cost in nanoseconds to spin-loop iterations.
func spinIters(ns int) int64 {
	if ns <= 0 {
		return 0
	}
	n := int64(ns) * spinRate() / 1024
	if n < 1 {
		n = 1
	}
	return n
}

// spinN busy-waits for n precomputed loop iterations. It never sleeps: the
// delays being modeled are far below scheduler granularity.
func spinN(n int64) {
	if n <= 0 {
		return
	}
	var acc uint64
	for i := int64(0); i < n; i++ {
		acc += uint64(i) ^ (acc >> 3)
	}
	spinSink.Store(acc)
}

// spin busy-waits for approximately ns nanoseconds (tests and one-off
// callers; devices precompute iteration counts instead).
func spin(ns int) { spinN(spinIters(ns)) }
