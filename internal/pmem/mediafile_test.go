//go:build linux || darwin

package pmem

import (
	"path/filepath"
	"testing"
)

// TestMediaFilePersistsFencedImage opens two devices over one file in
// sequence, simulating a process that dies (first device dropped without any
// crash call) and a successor that attaches. Only fenced writes may appear
// in the successor's media.
func TestMediaFilePersistsFencedImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "media.img")
	cfg := Config{Name: "nvmm", Words: 4 * WordsPerLine, Persistent: true, Track: true, MediaPath: path}

	d1 := New(cfg)
	var fs FlushSet
	d1.Store(8, 111) // line 1: flushed and fenced -> must survive
	d1.Flush(&fs, 8)
	d1.Fence(&fs)
	d1.Store(16, 222) // line 2: flushed, never fenced -> must not survive
	d1.Flush(&fs, 16)
	d1.Store(24, 333) // line 3: never even flushed -> must not survive
	// d1 is simply abandoned: no Crash, no Fence — the process "died".

	d2 := New(cfg)
	if got := d2.PersistedWord(8); got != 111 {
		t.Fatalf("fenced word: media = %d, want 111", got)
	}
	if got := d2.PersistedWord(16); got != 0 {
		t.Fatalf("flushed-unfenced word leaked into media: %d", got)
	}
	if got := d2.PersistedWord(24); got != 0 {
		t.Fatalf("unflushed word leaked into media: %d", got)
	}

	// The fresh device's cache view starts zeroed; ResetFromMedia installs
	// the persisted image as the current view, like the tail of Crash.
	if got := d2.Load(8); got != 0 {
		t.Fatalf("pre-reset cache view = %d, want 0", got)
	}
	d2.ResetFromMedia()
	if got := d2.Load(8); got != 111 {
		t.Fatalf("post-reset cache view = %d, want 111", got)
	}
	if got := d2.Load(16); got != 0 {
		t.Fatalf("post-reset cache view of unfenced word = %d, want 0", got)
	}
}

// TestMediaFileSizeMismatch pins the config-mismatch guard: adopting an
// existing file under a different device size must fail loudly, not
// silently reinterpret offsets.
func TestMediaFileSizeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "media.img")
	New(Config{Name: "a", Words: 4 * WordsPerLine, Persistent: true, Track: true, MediaPath: path})
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched media file adopted without panic")
		}
	}()
	New(Config{Name: "b", Words: 8 * WordsPerLine, Persistent: true, Track: true, MediaPath: path})
}

// TestMediaFileCrashStillWorks ensures the simulated Crash path (eviction
// adversary + view reset) operates identically over a file-backed media.
func TestMediaFileCrashStillWorks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "media.img")
	d := New(Config{Name: "nvmm", Words: 4 * WordsPerLine, Persistent: true, Track: true, MediaPath: path})
	var fs FlushSet
	d.Store(8, 7)
	d.Flush(&fs, 8)
	d.Fence(&fs)
	d.Store(9, 9) // unfenced: dropped by CrashDropAll
	d.Freeze()
	d.Crash(CrashDropAll, nil)
	if got := d.Load(8); got != 7 {
		t.Fatalf("fenced word after crash = %d, want 7", got)
	}
	if got := d.Load(9); got != 0 {
		t.Fatalf("unfenced word survived crash: %d", got)
	}
}
