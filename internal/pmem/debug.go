package pmem

// debugChecks gates the FlushSet contract assertions. It is a plain bool
// read on the flush/fence path, so the disabled cost is one predictable
// branch; tests enable it from an init function (or with all goroutines
// quiesced) so the write is ordered before every read.
var debugChecks bool

// EnableDebugChecks turns on the FlushSet misuse assertions: concurrent use
// of one FlushSet from two goroutines, and recycling a FlushSet across a
// crash while it still holds pre-crash pending flushes (a context must be
// Reset — or discarded — when the device it used crashes). Call it from an
// init function in tests; it is not meant for production paths.
func EnableDebugChecks() { debugChecks = true }

// DisableDebugChecks turns the assertions back off.
func DisableDebugChecks() { debugChecks = false }

// DebugChecksEnabled reports whether the assertions are active.
func DebugChecksEnabled() bool { return debugChecks }

// enter asserts single-owner use at the top of a Flush/Fence and that the
// set is not carrying pending lines across a crash generation.
func (s *FlushSet) enter(d *Device) {
	if !s.busy.CompareAndSwap(0, 1) {
		panic("pmem: FlushSet used concurrently from two goroutines")
	}
	g := d.gen.Load()
	if len(s.lines) > 0 && s.gen != g {
		panic("pmem: FlushSet recycled across a crash without Reset (stale pending flushes)")
	}
	s.gen = g
}

// exit releases the single-owner claim taken by enter.
func (s *FlushSet) exit() { s.busy.Store(0) }
