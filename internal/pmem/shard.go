package pmem

// Keyspace sharding over multiple devices. A sharded engine spans N
// independent Devices, one per shard; keys are partitioned by a stable
// hash so that a key's home shard never depends on history, thread, or
// shard-internal state — the property that makes per-shard recovery
// tracing and per-shard fault injection sound. The helpers here are the
// substrate half of that design: the hash partition (ShardOf, ShardMap),
// the grouping of a shard set into one logical device for crash tooling
// (ShardedDevice), and the independent per-shard fault-model derivation
// (ShardFaultModels).

// shardMix is a splitmix64 finalizer: a full-avalanche 64-bit mixer, so
// consecutive keys land on unrelated shards and a skewed keyspace still
// spreads across the shard set.
func shardMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// ShardOf returns the home shard of a key under the stable hash
// partition. It is a pure function of (key, shards): every layer —
// routing, recovery, fault injection, tests — computes the same answer
// with no shared state.
func ShardOf(key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(shardMix(key) % uint64(shards))
}

// ShardMap is the keyspace partition of one sharded engine: a fixed
// shard count plus the stable hash. It exists so code that routes many
// keys can hold the partition as a value instead of re-passing the
// count.
type ShardMap struct {
	Shards int
}

// Of returns the home shard of key.
func (m ShardMap) Of(key uint64) int { return ShardOf(key, m.Shards) }

// ShardedDevice groups the per-shard devices of one sharded engine into
// a single logical persistent device for the crash tooling: one composed
// media fingerprint, one freeze/crash surface, and per-shard independent
// fault injection. The slice order is the shard order and must not
// change between hash and replay — the composed fingerprint folds the
// shards in order.
type ShardedDevice struct {
	Devs []*Device
}

// fnvPrime folds per-shard hashes; the offset basis keeps the composed
// hash of an all-zero shard set nonzero and shard-count dependent.
const (
	shardFNVPrime  = 1099511628211
	shardFNVOffset = 14695981039346656037
)

// MediaHash composes the shards' media fingerprints in shard order. Two
// shard sets hash equal iff every shard's media image hashes equal, so a
// single-threaded replay of a sharded run reproduces the composed hash
// bit for bit.
func (s *ShardedDevice) MediaHash() uint64 {
	h := uint64(shardFNVOffset)
	for _, d := range s.Devs {
		h = h*shardFNVPrime ^ d.MediaHash()
	}
	return h
}

// InjectFaults installs one fault model per shard (models[i] on shard
// i). The models must be independent — see ShardFaultModels — so the
// adversary's choices on one shard never leak into another's.
func (s *ShardedDevice) InjectFaults(models []*FaultModel) {
	if len(models) != len(s.Devs) {
		panic("pmem: sharded fault injection needs exactly one model per shard")
	}
	for i, d := range s.Devs {
		d.InjectFaults(models[i])
	}
}

// Freeze freezes every shard.
func (s *ShardedDevice) Freeze() {
	for _, d := range s.Devs {
		d.Freeze()
	}
}

// FreezeAfter arms the freeze countdown on every shard: whichever shard
// reaches its n-th subsequent operation first takes the freeze, so a
// crash can land mid-operation on any shard.
func (s *ShardedDevice) FreezeAfter(n int64) {
	for _, d := range s.Devs {
		d.FreezeAfter(n)
	}
}

// ShardFaultModels derives one independent fault model per shard from a
// base seed: shard i's stream is seeded with a full-avalanche mix of
// (seed, i), so the per-shard adversaries share no structure while the
// whole set stays reproducible from the base seed alone.
func ShardFaultModels(seed int64, spec FaultSpec, shards int) []*FaultModel {
	models := make([]*FaultModel, shards)
	for i := range models {
		models[i] = NewFaultModel(int64(shardMix(uint64(seed)^uint64(i)*0x9e3779b97f4a7c15)), spec)
	}
	return models
}
