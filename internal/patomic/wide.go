package patomic

// This file implements the §4.1.2 extension for data structures that use
// double-word fields with a wide CAS: "in all algorithms with double-word
// fields that we are aware of, these fields contain a unique value for
// each modification — most use one of the words for versioning. In such
// cases, the Mirror construction works well without adding an additional
// version word and can be applied as is."
//
// A WideCell is a two-word field (value, version) whose *user-supplied*
// version plays the role of the sequence number: it must strictly increase
// with every successful modification. The replica invariants and the help
// protocol are the same as the ordinary cell's; the memory cost is zero
// extra words.
//
// Persistence-tearing note: x86 guarantees 8-byte persistence atomicity,
// so an *unfenced* in-flight wide update may reach the media with only one
// of its two words (e.g. the old value with the new version). Completed
// operations are unaffected — their fence covers both words — and the
// recovered pair is re-adopted as the cell's state, which is sound for the
// versioned-pointer algorithms this extension targets because the version
// word is ABA bookkeeping, not payload. The ordinary patomic cell has the
// same property with its internal sequence number, where it is invisible
// by construction.

// WideLoad returns the cell's (value, version) pair from the volatile
// replica, wait-free.
func (m *Mem) WideLoad(off uint64) (val, ver uint64) {
	return m.V.LoadPair(off)
}

// WideCAS atomically replaces (expVal, expVer) with (newVal, newVer),
// persisting before publishing exactly like CompareAndSwap. newVer must be
// strictly greater than expVer — the caller's versioning discipline is
// what makes the two-replica protocol sound, so this is checked.
// It returns whether the swap happened plus the observed pair.
func (m *Mem) WideCAS(ctx *Ctx, off uint64, expVal, expVer, newVal, newVer uint64) (bool, uint64, uint64) {
	if newVer <= expVer {
		panic("patomic: WideCAS requires a strictly increasing version")
	}
	for {
		pv, ps := m.P.LoadPair(off)
		vv, vs := m.V.LoadPair(off)

		if ps > vs {
			// rep_p is ahead: help mirror it into rep_v.
			m.P.Flush(&ctx.FS, off)
			m.P.Fence(&ctx.FS)
			m.V.DWCAS(off, vv, vs, pv, ps)
			m.noteHelp(ctx)
			continue
		}
		if ps != vs {
			m.noteRetry(ctx)
			continue
		}
		if pv != expVal || ps != expVer {
			return false, pv, ps
		}
		ok, curV, curS := m.P.DWCAS(off, expVal, expVer, newVal, newVer)
		m.P.Flush(&ctx.FS, off)
		m.P.Fence(&ctx.FS)
		if ok {
			m.V.DWCAS(off, expVal, expVer, newVal, newVer)
			return true, expVal, expVer
		}
		// Help the winner into rep_v, then fail with the observed pair.
		m.V.DWCAS(off, vv, vs, curV, curS)
		return false, curV, curS
	}
}

// InitWideCell initializes an unpublished wide cell with (val, ver) on
// both replicas and flushes the persistent copy (fence via PublishFence).
func (m *Mem) InitWideCell(ctx *Ctx, off uint64, val, ver uint64) {
	m.P.Store(off, val)
	m.P.Store(off+1, ver)
	m.P.Flush(&ctx.FS, off)
	m.V.Store(off, val)
	m.V.Store(off+1, ver)
}
