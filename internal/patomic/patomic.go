// Package patomic implements the Mirror primitive of the paper: a
// persistent atomic cell (the C++ patomic<T> of Figure 2) consisting of a
// value word and a sequence-number word kept in lock step on two replicas —
// a persistent replica rep_p and a volatile replica rep_v, at the same
// offset of two devices (§4.3.1's identity address translation).
//
// The operation semantics follow §4.1 exactly:
//
//   - Load (Figure 5) reads only the value word of the volatile replica
//     and is wait-free. Every value it can observe was persisted before it
//     became visible in rep_v, which is why Mirror never needs to persist
//     reads.
//   - CompareAndSwap (Figure 4) first validates that the two replicas
//     agree (helping an in-flight writer if rep_p is one sequence number
//     ahead), then installs (newVal, seq+1) into rep_p with a DWCAS,
//     flushes and fences it, and finally mirrors the update into rep_v.
//   - Store and FetchAdd never fail, so they loop over CompareAndSwap as
//     §4.1.2 prescribes.
//
// The invariants proved in §5 (Lemmas 5.3–5.5) hold per cell: the volatile
// sequence number is equal to or exactly one behind the persistent one, and
// equal sequence numbers imply equal values. Tests assert them directly.
package patomic

import (
	"sync"
	"sync/atomic"

	"mirror/internal/pmem"
)

// InitSeq is the sequence number given to freshly initialized cells. It is
// nonzero so an initialized cell is distinguishable from zeroed memory.
const InitSeq = 1

// CellWords is the footprint of one cell in words (value + sequence).
const CellWords = 2

// Ctx carries the per-thread flush set for the persistent device, and this
// thread's shard of the contention statistics. One Ctx must not be shared
// between goroutines, and — like its embedded FlushSet — it is bound to the
// first Mem that uses it.
type Ctx struct {
	FS pmem.FlushSet

	mem     *Mem          // Mem this context is registered with (first use wins)
	helps   atomic.Uint64 // completions of another thread's write (lines 19–26)
	retries atomic.Uint64 // protocol restarts of any kind

	// Deferred InitCell flushes (eliding devices only): distinct dirty
	// lines in first-touch order, and the number of cells they cover.
	// PublishFence drains them as one flush per line.
	initLines []uint64
	initCells int
}

// deferLine records a line touched by InitCell for the next PublishFence.
// Consecutive cells of one object share lines, so the last-entry check is
// the common-case dedup; the scan covers interleaved multi-object inits.
func (ctx *Ctx) deferLine(line uint64) {
	ctx.initCells++
	if n := len(ctx.initLines); n > 0 && ctx.initLines[n-1] == line {
		return
	}
	for _, l := range ctx.initLines {
		if l == line {
			return
		}
	}
	ctx.initLines = append(ctx.initLines, line)
}

// Mem is a pair of replicas: cell offsets are valid on both devices.
type Mem struct {
	P *pmem.Device // persistent replica rep_p
	V *pmem.Device // volatile replica rep_v (possibly NVMM-backed, see §6.3)

	// Contention statistics live in per-Ctx shards so the help/retry
	// bookkeeping never contends on a shared cache line; Stats sums the
	// shards. The registry only grows (one entry per thread context).
	statsMu sync.Mutex
	ctxs    []*Ctx
}

// adopt registers ctx as a statistics shard of m on first use. A Ctx is
// bound to the first Mem that uses it for its lifetime, matching the
// embedded FlushSet's binding to rep_p.
func (m *Mem) adopt(ctx *Ctx) {
	if ctx.mem != nil {
		panic("patomic: Ctx bound to one Mem used with another")
	}
	m.statsMu.Lock()
	ctx.mem = m
	m.ctxs = append(m.ctxs, ctx)
	m.statsMu.Unlock()
}

// noteHelp counts a completion of another thread's write on ctx's shard.
func (m *Mem) noteHelp(ctx *Ctx) {
	if ctx.mem != m {
		m.adopt(ctx)
	}
	ctx.helps.Add(1)
}

// noteRetry counts a protocol restart on ctx's shard.
func (m *Mem) noteRetry(ctx *Ctx) {
	if ctx.mem != m {
		m.adopt(ctx)
	}
	ctx.retries.Add(1)
}

// Stats returns the cumulative help completions and protocol retries —
// how often the Figure 4 help path and restart paths actually run — summed
// exactly across the per-thread shards.
func (m *Mem) Stats() (helps, retries uint64) {
	m.statsMu.Lock()
	for _, c := range m.ctxs {
		helps += c.helps.Load()
		retries += c.retries.Load()
	}
	m.statsMu.Unlock()
	return helps, retries
}

// Load returns the cell's current value. It is wait-free and touches only
// the volatile replica (Figure 5).
func (m *Mem) Load(off uint64) uint64 {
	return m.V.Load(off)
}

// LoadWithSeq returns the volatile replica's (value, seq) pair atomically;
// recovery and tests use it.
func (m *Mem) LoadWithSeq(off uint64) (v, seq uint64) {
	return m.V.LoadPair(off)
}

// CompareAndSwap implements Figure 4. It atomically replaces the cell's
// value with newVal if the current value equals expected, making the new
// value durable before it becomes visible to loads. It returns whether the
// swap happened and the value observed when it did not (the updated
// "expected" of compare_exchange_strong).
func (m *Mem) CompareAndSwap(ctx *Ctx, off uint64, expected, newVal uint64) (bool, uint64) {
	for {
		pv, ps := m.P.LoadPair(off) // read rep_p (atomic pair ≙ seq/val/seq validation)
		vv, vs := m.V.LoadPair(off) // read rep_v

		if ps == vs+1 {
			// Another write installed (pv, ps) in rep_p but has not
			// reached rep_v yet: help complete it (lines 19–26). The
			// value must be durable before it becomes loadable, but the
			// flush+fence is elided when the watermark proves the owner
			// (or an earlier helper, or an unrelated fence of the same
			// line) already committed it — the epoch tag is read after
			// the pair read that observed the install.
			m.ensureDurable(ctx, off, m.P.PersistEpoch())
			m.V.DWCAS(off, vv, vs, pv, ps)
			m.noteHelp(ctx)
			continue
		}
		if ps != vs {
			// Torn view across the two pair reads; retry (line 29).
			m.noteRetry(ctx)
			continue
		}
		if pv != expected {
			// Fail without writing (lines 32–35).
			return false, pv
		}

		// Install into rep_p first (lines 38–42). The durability step
		// runs whether or not the DWCAS succeeded: on failure it helps
		// persist the competing write before we touch rep_v. The epoch
		// tag is read after the DWCAS observed the cell.
		ok, curV, curS := m.P.DWCAS(off, pv, ps, newVal, ps+1)
		m.ensureDurable(ctx, off, m.P.PersistEpoch())
		if ok {
			// Mirror into rep_v (line 44). Failure here means a helper
			// already completed our write (or a later one); either way
			// the operation is linearized.
			m.V.DWCAS(off, pv, ps, newVal, ps+1)
			return true, pv
		}
		if curV == expected {
			// The value still matches but the sequence number moved
			// (same-value overwrite by a concurrent thread). A regular
			// CAS must succeed in this situation, so retry (line 46).
			m.noteRetry(ctx)
			continue
		}
		// Help the winner's value into rep_v from the state we saw
		// before failing (line 47), then fail.
		m.V.DWCAS(off, vv, vs, curV, curS)
		return false, curV
	}
}

// ensureDurable makes the cell content observed under tag durable before a
// mirror into rep_v. The caller read tag from P.PersistEpoch *after*
// observing (or installing) the cell pair, so by the watermark's strict
// monotone-epoch argument (pmem/elide.go):
//
//  1. Persisted(off, tag) — a fence committed the line after the
//     observation; the observed value, or a successor with a higher
//     sequence number, is on media. Skip both flush and fence.
//  2. A commit ticket above tag — a fence that started after the
//     observation is mid-commit and cannot stall (no gates between ticket
//     and watermark); ride it instead of fencing ("piggyback").
//  3. Otherwise — issue the full flush+fence of Figure 4.
//
// On a non-eliding device both probes are constant-false and the full path
// runs unconditionally.
func (m *Mem) ensureDurable(ctx *Ctx, off, tag uint64) {
	if m.P.Persisted(off, tag) {
		m.P.NoteElided(&ctx.FS, 1, 1)
		return
	}
	if t := m.P.CommitTicket(off); t > tag && m.P.WaitPersisted(off, t) {
		m.P.NotePiggyback(&ctx.FS)
		return
	}
	m.P.Flush(&ctx.FS, off)
	m.P.Fence(&ctx.FS)
}

// CompareAndSwapRelaxed is CompareAndSwap with the own-install flush+fence
// deferred to the device's relaxed-line registry: the install becomes
// visible in rep_v before it is durable, and the registry guarantees the
// line commits before any object it unlinked is freed (the registration
// happens before the volatile publish, so every thread that observed the
// install — including the one that retires the unlinked object — is
// ordered after it; the allocator's pre-free drain then commits it).
//
// It is sound ONLY for retire-gated auxiliary updates whose loss at a
// crash leaves a state some earlier crash could also have left: snips of
// already-marked nodes, upper-level skiplist links, bst excisions. A
// linearization point (mark, level-0 link, bst flag) must use the full
// CompareAndSwap. Help and failure paths keep the full discipline. On a
// non-eliding device it degrades to CompareAndSwap exactly.
//
// Exposure rule (combining): a relaxed write is a shortcut other threads
// follow without loading the line it bypasses — a snip hides a marked
// node's line, an upper-level link reaches a node without its level-0
// install line, a bst promotion reroutes around a flagged edge. If the
// writer's own combine buffer holds the linearization the shortcut
// bypasses, a reader can complete — and fence — an operation whose
// result depends on an install that may still vanish, and the conflict
// probe never fires because the bypassed line is never loaded. So a
// relaxed CAS drains the writer's own buffer before its install becomes
// visible (DrainExpose). Callers that know the shortcut exposes nothing
// of their own avoid the fence by checking CombineQuiet first, or — when
// they can name the single bypassed line — by using
// CompareAndSwapRelaxedExposeSafe with a CombineOwns check.
func (m *Mem) CompareAndSwapRelaxed(ctx *Ctx, off uint64, expected, newVal uint64) (bool, uint64) {
	if !m.P.Elides() {
		return m.CompareAndSwap(ctx, off, expected, newVal)
	}
	if !ctx.FS.CombineQuiet() {
		m.P.CombineDrain(&ctx.FS, pmem.DrainExpose)
	}
	return m.casRelaxed(ctx, off, expected, newVal)
}

// CompareAndSwapRelaxedExposeSafe is CompareAndSwapRelaxed minus the
// exposure drain. The caller asserts the shortcut discharges the
// exposure rule by construction: every linearization it makes reachable
// without its line was loaded by this thread through the combined read
// path — whose conflict probe committed it durable — and none sits on a
// line this thread's own buffer still holds (the probe skips own lines,
// so own lines must be checked with FlushSet.CombineOwns). The list's
// snip of a foreign-marked node is the canonical caller: the snip
// bypasses exactly one line, the snipped node's, and the mark on it was
// probed durable by the snipping thread's own traversal load.
func (m *Mem) CompareAndSwapRelaxedExposeSafe(ctx *Ctx, off uint64, expected, newVal uint64) (bool, uint64) {
	if !m.P.Elides() {
		return m.CompareAndSwap(ctx, off, expected, newVal)
	}
	return m.casRelaxed(ctx, off, expected, newVal)
}

func (m *Mem) casRelaxed(ctx *Ctx, off uint64, expected, newVal uint64) (bool, uint64) {
	for {
		pv, ps := m.P.LoadPair(off)
		vv, vs := m.V.LoadPair(off)

		if ps == vs+1 {
			m.ensureDurable(ctx, off, m.P.PersistEpoch())
			m.V.DWCAS(off, vv, vs, pv, ps)
			m.noteHelp(ctx)
			continue
		}
		if ps != vs {
			m.noteRetry(ctx)
			continue
		}
		if pv != expected {
			return false, pv
		}

		ok, curV, curS := m.P.DWCAS(off, pv, ps, newVal, ps+1)
		if ok {
			// Register before the mirror: the line's durability is now
			// the pre-free drain's obligation, not ours.
			m.P.NoteRelaxed(&ctx.FS, off)
			m.V.DWCAS(off, pv, ps, newVal, ps+1)
			return true, pv
		}
		// Failed install: persist the competing write before touching
		// rep_v, as in the full protocol.
		m.ensureDurable(ctx, off, m.P.PersistEpoch())
		if curV == expected {
			m.noteRetry(ctx)
			continue
		}
		m.V.DWCAS(off, vv, vs, curV, curS)
		return false, curV
	}
}

// Store atomically replaces the cell's value unconditionally, looping over
// CompareAndSwap as simple writes never fail (§4.1.2).
func (m *Mem) Store(ctx *Ctx, off uint64, v uint64) {
	cur := m.Load(off)
	for {
		ok, actual := m.CompareAndSwap(ctx, off, cur, v)
		if ok {
			return
		}
		cur = actual
	}
}

// Exchange atomically replaces the cell's value and returns the previous
// one (std::atomic's exchange, via the CAS loop like every other write).
func (m *Mem) Exchange(ctx *Ctx, off uint64, v uint64) uint64 {
	cur := m.Load(off)
	for {
		ok, actual := m.CompareAndSwap(ctx, off, cur, v)
		if ok {
			return cur
		}
		cur = actual
	}
}

// FetchAdd atomically adds delta to the cell and returns the previous
// value.
func (m *Mem) FetchAdd(ctx *Ctx, off uint64, delta uint64) uint64 {
	cur := m.Load(off)
	for {
		ok, actual := m.CompareAndSwap(ctx, off, cur, cur+delta)
		if ok {
			return cur
		}
		cur = actual
	}
}

// InitCell initializes an unpublished cell on both replicas with value v
// and sequence number InitSeq, and flushes the persistent copy. The flush
// is not fenced: callers batch the fence via PublishFence before the cell
// becomes reachable, mirroring the allocator wrapper of §4.3.2. On an
// eliding device even the flush is deferred: PublishFence issues one flush
// per distinct dirty line, so a multi-cell object costs one clwb per cache
// line instead of one per cell (both cell words share a line — cells are
// 16-byte aligned).
func (m *Mem) InitCell(ctx *Ctx, off uint64, v uint64) {
	m.P.Store(off, v)
	m.P.Store(off+1, InitSeq)
	if m.P.Elides() {
		ctx.deferLine(off / pmem.WordsPerLine)
	} else {
		m.P.Flush(&ctx.FS, off)
	}
	m.V.Store(off, v)
	m.V.Store(off+1, InitSeq)
}

// PublishFence fences all pending persistent-replica flushes of this
// context. It must run after a new object's InitCells and before the CAS
// that publishes the object, so the object's contents are durable no later
// than the reference to it. On an eliding device it first drains the
// deferred init flushes (one per distinct line, counting the per-cell
// flushes a non-eliding device would have issued as elided), and skips the
// fence entirely when nothing at all is pending — an sfence with no clwb
// in flight orders nothing.
func (m *Mem) PublishFence(ctx *Ctx) {
	if m.P.Elides() {
		for _, line := range ctx.initLines {
			m.P.Flush(&ctx.FS, line*pmem.WordsPerLine)
		}
		if elided := ctx.initCells - len(ctx.initLines); elided > 0 {
			m.P.NoteElided(&ctx.FS, uint64(elided), 0)
		}
		ctx.initLines = ctx.initLines[:0]
		ctx.initCells = 0
		if ctx.FS.Pending() == 0 {
			m.P.NoteElided(&ctx.FS, 0, 1)
			return
		}
	}
	m.P.Fence(&ctx.FS)
}

// RecoverRange rebuilds the volatile replica of every cell in
// [off, off+words) from the persistent replica's current (post-crash)
// content. It is a thin wrapper over the device's bulk range copy, so a
// rebuild moves whole spans, not words; odd trailing words are trimmed
// (only whole cells are copied). Like every pmem operation it honors the
// persistent device's freeze gate, so a crash can land mid-rebuild.
func (m *Mem) RecoverRange(off uint64, words int) {
	m.P.CopyRange(m.V, off, words&^1)
}

// CheckInvariants verifies Lemmas 5.3–5.5 for one cell. It requires a
// quiesced system (no concurrent writers) and returns a description of the
// first violated invariant, or the empty string.
func (m *Mem) CheckInvariants(off uint64) string {
	pv, ps := m.P.LoadPair(off)
	vv, vs := m.V.LoadPair(off)
	switch {
	case ps == vs:
		if pv != vv {
			return "equal sequence numbers with different values (Lemma 5.5)"
		}
	case ps == vs+1:
		// Legal in-flight state.
	default:
		return "volatile sequence neither equal to nor one behind persistent (Lemma 5.4)"
	}
	return ""
}
