package patomic

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"mirror/internal/pmem"
)

// newMem builds a persistent+volatile replica pair with tracking enabled.
func newMem(words int) *Mem {
	return &Mem{
		P: pmem.New(pmem.Config{Name: "nvmm", Words: words, Persistent: true, Track: true}),
		V: pmem.New(pmem.Config{Name: "dram", Words: words}),
	}
}

const cell = uint64(8) // a 16-byte aligned test cell

func initCell(m *Mem, v uint64) *Ctx {
	ctx := &Ctx{}
	m.InitCell(ctx, cell, v)
	m.PublishFence(ctx)
	return ctx
}

func TestLoadAfterInit(t *testing.T) {
	m := newMem(64)
	initCell(m, 42)
	if got := m.Load(cell); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	v, s := m.LoadWithSeq(cell)
	if v != 42 || s != InitSeq {
		t.Errorf("LoadWithSeq = (%d,%d), want (42,%d)", v, s, InitSeq)
	}
}

func TestCASSuccessUpdatesBothReplicas(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 5)
	ok, old := m.CompareAndSwap(ctx, cell, 5, 10)
	if !ok || old != 5 {
		t.Fatalf("CAS = (%v,%d), want (true,5)", ok, old)
	}
	pv, ps := m.P.LoadPair(cell)
	vv, vs := m.V.LoadPair(cell)
	if pv != 10 || vv != 10 {
		t.Errorf("values (%d,%d), want (10,10)", pv, vv)
	}
	if ps != InitSeq+1 || vs != InitSeq+1 {
		t.Errorf("seqs (%d,%d), want (%d,%d)", ps, vs, InitSeq+1, InitSeq+1)
	}
}

func TestCASFailureLeavesBothReplicas(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 5)
	ok, actual := m.CompareAndSwap(ctx, cell, 6, 10)
	if ok {
		t.Fatal("CAS should fail")
	}
	if actual != 5 {
		t.Errorf("actual = %d, want 5", actual)
	}
	if m.Load(cell) != 5 || m.P.Load(cell) != 5 {
		t.Error("failed CAS modified a replica")
	}
}

func TestCASIsDurableBeforeVisible(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 5)
	m.CompareAndSwap(ctx, cell, 5, 10)
	// A successful CAS must have fenced the persistent replica.
	if got := m.P.PersistedWord(cell); got != 10 {
		t.Errorf("persisted value = %d, want 10", got)
	}
	if got := m.P.PersistedWord(cell + 1); got != InitSeq+1 {
		t.Errorf("persisted seq = %d, want %d", got, InitSeq+1)
	}
}

func TestStore(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 0)
	m.Store(ctx, cell, 99)
	if m.Load(cell) != 99 {
		t.Errorf("Load = %d, want 99", m.Load(cell))
	}
	m.Store(ctx, cell, 99) // same-value store must still succeed
	if _, s := m.LoadWithSeq(cell); s != InitSeq+2 {
		t.Errorf("seq = %d, want %d (each store bumps)", s, InitSeq+2)
	}
}

func TestExchange(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 3)
	if old := m.Exchange(ctx, cell, 9); old != 3 {
		t.Errorf("Exchange returned %d, want 3", old)
	}
	if m.Load(cell) != 9 {
		t.Errorf("Load = %d, want 9", m.Load(cell))
	}
	if msg := m.CheckInvariants(cell); msg != "" {
		t.Error(msg)
	}
}

func TestFetchAdd(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 10)
	if old := m.FetchAdd(ctx, cell, 5); old != 10 {
		t.Errorf("FetchAdd returned %d, want 10", old)
	}
	if m.Load(cell) != 15 {
		t.Errorf("Load = %d, want 15", m.Load(cell))
	}
}

// TestHelpCompletesStalledWrite reproduces the Figure 3 scenario: a writer
// installs into rep_p and stalls before mirroring into rep_v; a second
// writer must first help, then perform its own update, and the stalled
// writer's late DWCAS on rep_v must be defeated by the sequence number.
func TestHelpCompletesStalledWrite(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 5)
	// p1 stalls after the persistent DWCAS of 5 -> 10 (paper state {10,3}).
	ok, _, _ := m.P.DWCAS(cell, 5, InitSeq, 10, InitSeq+1)
	if !ok {
		t.Fatal("setup DWCAS failed")
	}
	var fs pmem.FlushSet
	m.P.Flush(&fs, cell)
	m.P.Fence(&fs)
	// p2 now writes 5 again (paper state {5,4}). It must help first.
	ok2, old := m.CompareAndSwap(ctx, cell, 10, 5)
	if !ok2 || old != 10 {
		t.Fatalf("p2 CAS = (%v,%d), want (true,10): help failed", ok2, old)
	}
	// p1 wakes up and retries its stale volatile mirror {5,2} -> {10,3}.
	if swapped, _, _ := m.V.DWCAS(cell, 5, InitSeq, 10, InitSeq+1); swapped {
		t.Fatal("stale mirror DWCAS succeeded; ABA the sequence number must prevent")
	}
	if got := m.Load(cell); got != 5 {
		t.Errorf("final value = %d, want 5", got)
	}
	if msg := m.CheckInvariants(cell); msg != "" {
		t.Error(msg)
	}
}

// TestLoadNeverSeesUnpersistedValue drives a writer that stalls between the
// persistent install and the volatile mirror; a load during the stall must
// return the old value (new value not yet linearized).
func TestLoadNeverSeesUnpersistedValue(t *testing.T) {
	m := newMem(64)
	initCell(m, 1)
	ok, _, _ := m.P.DWCAS(cell, 1, InitSeq, 2, InitSeq+1)
	if !ok {
		t.Fatal("setup failed")
	}
	// No flush yet: 2 is neither persisted nor visible.
	if got := m.Load(cell); got != 1 {
		t.Errorf("Load = %d, want 1 (in-flight write must be invisible)", got)
	}
}

func TestCheckInvariantsDetectsViolation(t *testing.T) {
	m := newMem(64)
	initCell(m, 1)
	m.V.Store(cell, 7) // corrupt: same seq, different value
	if msg := m.CheckInvariants(cell); msg == "" {
		t.Error("corrupted cell passed invariant check")
	}
	m2 := newMem(64)
	initCell(m2, 1)
	m2.V.Store(cell+1, InitSeq+5) // volatile seq ahead
	if msg := m2.CheckInvariants(cell); msg == "" {
		t.Error("seq-ahead cell passed invariant check")
	}
}

func TestConcurrentFetchAddExact(t *testing.T) {
	m := newMem(64)
	initCell(m, 0)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &Ctx{}
			for i := 0; i < perWorker; i++ {
				m.FetchAdd(ctx, cell, 1)
			}
		}()
	}
	wg.Wait()
	want := uint64(workers * perWorker)
	if got := m.Load(cell); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	v, s := m.LoadWithSeq(cell)
	if v != want || s != InitSeq+want {
		t.Errorf("(v,s) = (%d,%d), want (%d,%d)", v, s, want, InitSeq+want)
	}
	if msg := m.CheckInvariants(cell); msg != "" {
		t.Error(msg)
	}
	if got := m.P.PersistedWord(cell); got != want {
		t.Errorf("persisted = %d, want %d", got, want)
	}
}

// TestConcurrentCASUniqueWinners verifies classic CAS semantics through the
// Mirror cell: for each round exactly one of the racers observes success.
func TestConcurrentCASUniqueWinners(t *testing.T) {
	m := newMem(64)
	initCell(m, 0)
	const workers = 6
	const rounds = 300
	var wg sync.WaitGroup
	wins := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := &Ctx{}
			for r := 0; r < rounds; r++ {
				if ok, _ := m.CompareAndSwap(ctx, cell, uint64(r), uint64(r+1)); ok {
					wins[id]++
				}
				// Wait until the round is over before the next.
				for m.Load(cell) < uint64(r+1) {
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range wins {
		total += n
	}
	if total != rounds {
		t.Errorf("total wins = %d, want %d", total, rounds)
	}
	if got := m.Load(cell); got != rounds {
		t.Errorf("final = %d, want %d", got, rounds)
	}
}

// TestInvariantUnderStress samples Lemmas 5.3–5.5 while writers run. The
// check itself races (it reads two pairs non-atomically), so it only
// asserts the volatile value is never *ahead* of any value that was ever
// installed — concretely for a monotone counter: V value <= P value at all
// times when sampled in that order.
func TestInvariantUnderStress(t *testing.T) {
	m := newMem(64)
	initCell(m, 0)
	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &Ctx{}
			for {
				select {
				case <-stop:
					return
				default:
					m.FetchAdd(ctx, cell, 1)
				}
			}
		}()
	}
	for i := 0; i < 50000; i++ {
		vv, _ := m.V.LoadPair(cell)
		pv, _ := m.P.LoadPair(cell)
		// P sampled after V on a monotone counter: pv >= vv must hold.
		if pv < vv {
			t.Errorf("volatile value %d ahead of persistent %d", vv, pv)
			break
		}
	}
	close(stop)
	wg.Wait()
	if msg := m.CheckInvariants(cell); msg != "" {
		t.Error(msg)
	}
}

func TestQuickStoreLoadRoundTrip(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 0)
	f := func(v uint64) bool {
		m.Store(ctx, cell, v)
		if m.Load(cell) != v {
			return false
		}
		return m.CheckInvariants(cell) == ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCrashRecoverCell crashes mid-workload at random device-operation
// counts and verifies that after recovery (a) the cell's replicas satisfy
// the invariants, (b) the recovered value is one that was actually written,
// and (c) the value persisted by the last *completed* operation survives.
func TestCrashRecoverCell(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		m := newMem(64)
		ctx := initCell(m, 0)
		var completed uint64
		m.P.FreezeAfter(int64(rng.Intn(200) + 1))
		func() {
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			for i := uint64(1); i <= 1000; i++ {
				m.Store(ctx, cell, i)
				completed = i
			}
		}()
		m.P.Freeze()
		m.V.Freeze()
		policy := pmem.CrashPolicy(rng.Intn(3))
		m.P.Crash(policy, rng)
		m.V.Crash(policy, rng)
		m.RecoverRange(cell, CellWords)

		v, s := m.LoadWithSeq(cell)
		pv, ps := m.P.LoadPair(cell)
		if v != pv || s != ps {
			t.Fatalf("round %d: recovery left replicas different: (%d,%d) vs (%d,%d)",
				round, v, s, pv, ps)
		}
		if v > completed+1 {
			t.Fatalf("round %d: recovered value %d beyond any write (completed %d)",
				round, v, completed)
		}
		// The last completed store fenced its value; a later in-flight
		// store may have overwritten it, so the recovered value must be
		// either the completed value or the single in-flight one.
		if v != completed && v != completed+1 && completed > 0 {
			// Torn unfenced persistence can leave an older value only
			// if the newer one never fenced — but `completed` did.
			t.Fatalf("round %d: recovered %d, want %d or %d", round, v, completed, completed+1)
		}
		if msg := m.CheckInvariants(cell); msg != "" {
			t.Errorf("round %d: %s", round, msg)
		}
	}
}

// TestCrashDuringConcurrentWriters freezes the devices while several
// goroutines race on one cell, then recovers and checks the replica
// invariants and that the recovered value was plausibly installed.
func TestCrashDuringConcurrentWriters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		m := newMem(64)
		initCell(m, 0)
		const workers = 4
		var wg sync.WaitGroup
		m.P.FreezeAfter(int64(rng.Intn(400) + 50))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil && r != pmem.ErrFrozen {
						panic(r)
					}
				}()
				ctx := &Ctx{}
				for i := 0; i < 5000; i++ {
					m.FetchAdd(ctx, cell, 1)
				}
			}()
		}
		wg.Wait()
		m.P.Freeze()
		m.V.Freeze()
		m.P.Crash(pmem.CrashRandom, rng)
		m.V.Crash(pmem.CrashRandom, rng)
		m.RecoverRange(cell, CellWords)
		if msg := m.CheckInvariants(cell); msg != "" {
			t.Errorf("round %d: %s", round, msg)
		}
		v, _ := m.LoadWithSeq(cell)
		if v > workers*5000 {
			t.Errorf("round %d: impossible recovered value %d", round, v)
		}
	}
}

func BenchmarkMirrorLoad(b *testing.B) {
	m := newMem(64)
	initCell(m, 7)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Load(cell)
		}
	})
}

func BenchmarkMirrorCAS(b *testing.B) {
	m := newMem(1024)
	ctx := initCell(m, 0)
	for i := 0; i < b.N; i++ {
		m.Store(ctx, cell, uint64(i))
	}
}

func TestStatsHelpPath(t *testing.T) {
	m := newMem(64)
	ctx := initCell(m, 5)
	h0, _ := m.Stats()
	// Stage the Figure 3 stall: persistent replica one sequence ahead.
	if ok, _, _ := m.P.DWCAS(cell, 5, InitSeq, 10, InitSeq+1); !ok {
		t.Fatal("setup failed")
	}
	m.CompareAndSwap(ctx, cell, 10, 11) // must help first
	h1, _ := m.Stats()
	if h1 != h0+1 {
		t.Errorf("helps = %d, want %d (help path not counted)", h1, h0+1)
	}
}

func TestStatsRetriesUnderContention(t *testing.T) {
	m := newMem(64)
	initCell(m, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &Ctx{}
			for i := 0; i < 3000; i++ {
				m.FetchAdd(ctx, cell, 1)
			}
		}()
	}
	wg.Wait()
	if v := m.Load(cell); v != 12000 {
		t.Fatalf("counter = %d", v)
	}
	// Retries may or may not occur depending on scheduling; the counter
	// must simply be readable and consistent.
	h, r := m.Stats()
	t.Logf("helps=%d retries=%d", h, r)
}
