package patomic

import (
	"math/rand"
	"sync"
	"testing"

	"mirror/internal/pmem"
)

func initWide(m *Mem, val, ver uint64) *Ctx {
	ctx := &Ctx{}
	m.InitWideCell(ctx, cell, val, ver)
	m.PublishFence(ctx)
	return ctx
}

func TestWideLoadAfterInit(t *testing.T) {
	m := newMem(64)
	initWide(m, 7, 100)
	v, ver := m.WideLoad(cell)
	if v != 7 || ver != 100 {
		t.Errorf("WideLoad = (%d,%d), want (7,100)", v, ver)
	}
}

func TestWideCASSuccess(t *testing.T) {
	m := newMem(64)
	ctx := initWide(m, 7, 100)
	ok, ov, over := m.WideCAS(ctx, cell, 7, 100, 8, 150)
	if !ok || ov != 7 || over != 100 {
		t.Fatalf("WideCAS = (%v,%d,%d)", ok, ov, over)
	}
	if v, ver := m.WideLoad(cell); v != 8 || ver != 150 {
		t.Errorf("after CAS: (%d,%d), want (8,150)", v, ver)
	}
	// Durable before visible.
	if m.P.PersistedWord(cell) != 8 || m.P.PersistedWord(cell+1) != 150 {
		t.Error("wide CAS not persisted")
	}
}

func TestWideCASFailure(t *testing.T) {
	m := newMem(64)
	ctx := initWide(m, 7, 100)
	ok, ov, over := m.WideCAS(ctx, cell, 7, 99, 8, 150)
	if ok {
		t.Fatal("stale-version CAS should fail")
	}
	if ov != 7 || over != 100 {
		t.Errorf("observed (%d,%d), want (7,100)", ov, over)
	}
}

func TestWideCASRequiresIncreasingVersion(t *testing.T) {
	m := newMem(64)
	ctx := initWide(m, 7, 100)
	defer func() {
		if recover() == nil {
			t.Error("non-increasing version should panic")
		}
	}()
	m.WideCAS(ctx, cell, 7, 100, 8, 100)
}

func TestWideHelpPath(t *testing.T) {
	m := newMem(64)
	ctx := initWide(m, 7, 100)
	// Stall a writer after the persistent install (version jumps by 37).
	if ok, _, _ := m.P.DWCAS(cell, 7, 100, 9, 137); !ok {
		t.Fatal("setup failed")
	}
	// A second writer must help before proceeding.
	ok, ov, over := m.WideCAS(ctx, cell, 9, 137, 10, 200)
	if !ok || ov != 9 || over != 137 {
		t.Fatalf("WideCAS after help = (%v,%d,%d)", ok, ov, over)
	}
	if v, ver := m.WideLoad(cell); v != 10 || ver != 200 {
		t.Errorf("final (%d,%d), want (10,200)", v, ver)
	}
}

func TestWideConcurrentMonotone(t *testing.T) {
	m := newMem(64)
	initWide(m, 0, 1)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &Ctx{}
			for i := 0; i < 2000; i++ {
				for {
					v, ver := m.WideLoad(cell)
					if ok, _, _ := m.WideCAS(ctx, cell, v, ver, v+1, ver+2); ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	v, ver := m.WideLoad(cell)
	if v != workers*2000 {
		t.Errorf("value = %d, want %d", v, workers*2000)
	}
	if ver != 1+2*uint64(workers*2000) {
		t.Errorf("version = %d, want %d", ver, 1+2*workers*2000)
	}
	pv, ps := m.P.LoadPair(cell)
	if pv != v || ps != ver {
		t.Errorf("replicas differ: P=(%d,%d) V=(%d,%d)", pv, ps, v, ver)
	}
}

func TestWideCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 30; round++ {
		m := newMem(64)
		ctx := initWide(m, 0, 1)
		var completedVal, completedVer uint64 = 0, 1
		m.P.FreezeAfter(int64(rng.Intn(150) + 1))
		func() {
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			for i := uint64(1); i <= 500; i++ {
				v, ver := m.WideLoad(cell)
				if ok, _, _ := m.WideCAS(ctx, cell, v, ver, v+1, ver+3); ok {
					completedVal, completedVer = v+1, ver+3
				}
			}
		}()
		m.P.Freeze()
		m.V.Freeze()
		m.P.Crash(pmem.CrashPolicy(round%3), rng)
		m.V.Crash(pmem.CrashPolicy(round%3), rng)
		m.RecoverRange(cell, CellWords)
		v, ver := m.WideLoad(cell)
		// The completed CAS was fenced, so neither word may regress below
		// it; the single unfenced in-flight update may have persisted
		// fully, partially (per-word tearing at 8-byte persistence
		// granularity), or not at all.
		if v != completedVal && v != completedVal+1 {
			t.Fatalf("round %d: recovered value %d, completed %d",
				round, v, completedVal)
		}
		if ver != completedVer && ver != completedVer+3 {
			t.Fatalf("round %d: recovered version %d, completed %d",
				round, ver, completedVer)
		}
		// Replicas must agree after recovery.
		if pv, ps := m.P.LoadPair(cell); pv != v || ps != ver {
			t.Fatalf("round %d: replicas differ after recovery", round)
		}
	}
}
