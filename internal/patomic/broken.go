package patomic

// BrokenMem is a deliberately bugged copy of Mem's write path, kept ONLY as
// a target for the fault fuzzer's self-test: it omits the flush+fence
// between installing a write into rep_p and mirroring it into rep_v, so a
// value becomes loadable — and an operation completes — before it is
// durable. Under a Drop or Torn fault model a crash can then lose or tear a
// completed operation's install, which the fuzzer must detect as a durable
// linearizability violation. The help path keeps its flush+fence so the
// bug is precisely "one missing flush in the writer's own install", the
// seeded-bug shape the acceptance criteria call for. Never use outside
// tests.
type BrokenMem struct {
	*Mem
}

// CompareAndSwap is Figure 4 minus the own-install flush+fence (see the
// BUG comment). Everything else — help path, torn-view retry, failure
// paths — matches Mem.CompareAndSwap.
func (m BrokenMem) CompareAndSwap(ctx *Ctx, off uint64, expected, newVal uint64) (bool, uint64) {
	for {
		pv, ps := m.P.LoadPair(off)
		vv, vs := m.V.LoadPair(off)

		if ps == vs+1 {
			// Help path: unchanged, flush+fence intact.
			m.P.Flush(&ctx.FS, off)
			m.P.Fence(&ctx.FS)
			m.V.DWCAS(off, vv, vs, pv, ps)
			m.noteHelp(ctx)
			continue
		}
		if ps != vs {
			m.noteRetry(ctx)
			continue
		}
		if pv != expected {
			return false, pv
		}

		ok, curV, curS := m.P.DWCAS(off, pv, ps, newVal, ps+1)
		// BUG (deliberate): the correct path flushes and fences off here,
		// making the install durable before it becomes visible in rep_v.
		if ok {
			m.V.DWCAS(off, pv, ps, newVal, ps+1)
			return true, pv
		}
		if curV == expected {
			m.noteRetry(ctx)
			continue
		}
		m.V.DWCAS(off, vv, vs, curV, curS)
		return false, curV
	}
}

// Store loops over the broken CompareAndSwap (shadowing Mem.Store, which
// would dispatch to the correct one through the embedded receiver).
func (m BrokenMem) Store(ctx *Ctx, off uint64, v uint64) {
	cur := m.Load(off)
	for {
		ok, actual := m.CompareAndSwap(ctx, off, cur, v)
		if ok {
			return
		}
		cur = actual
	}
}

// FetchAdd loops over the broken CompareAndSwap.
func (m BrokenMem) FetchAdd(ctx *Ctx, off uint64, delta uint64) uint64 {
	cur := m.Load(off)
	for {
		ok, actual := m.CompareAndSwap(ctx, off, cur, cur+delta)
		if ok {
			return cur
		}
		cur = actual
	}
}
