package patomic

import (
	"math/rand"
	"testing"

	"mirror/internal/pmem"
)

// newMemElide is newMem with the flush-elision watermark layer enabled on
// the persistent replica.
func newMemElide(words int) *Mem {
	return &Mem{
		P: pmem.New(pmem.Config{Name: "nvmm", Words: words, Persistent: true, Track: true, Elide: true}),
		V: pmem.New(pmem.Config{Name: "dram", Words: words}),
	}
}

// costOf returns the (flushes, fences) the persistent replica charged for fn.
func costOf(m *Mem, fn func()) (flushes, fences uint64) {
	fl0, fe0 := m.P.Counters()
	fn()
	fl1, fe1 := m.P.Counters()
	return fl1 - fl0, fe1 - fe0
}

// TestCASFlushAccounting pins the exact flush+fence cost of the Figure 4
// paths, with the elision layer on and off. The quiesced costs must be
// IDENTICAL in both configurations: Persisted uses a strict comparison
// against a watermark that never exceeds the epoch counter, so with no
// concurrent fence in flight the probe cannot fire. That invariance is the
// regression being pinned — it is what keeps single-threaded replays
// (crashtest, faultfuzz Workers=1) deterministic under elision.
func TestCASFlushAccounting(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) *Mem
	}{
		{"elide=off", newMem},
		{"elide=on", newMemElide},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mk(64)
			ctx := initCell(m, 5)

			// Owner install: exactly one flush and one fence.
			if fl, fe := costOf(m, func() { m.CompareAndSwap(ctx, cell, 5, 10) }); fl != 1 || fe != 1 {
				t.Errorf("owner CAS cost (%d flushes, %d fences), want (1, 1)", fl, fe)
			}
			// Value-mismatch failure: no install, no durability work.
			if fl, fe := costOf(m, func() { m.CompareAndSwap(ctx, cell, 999, 1) }); fl != 0 || fe != 0 {
				t.Errorf("failed CAS cost (%d flushes, %d fences), want (0, 0)", fl, fe)
			}

			// Helper path: stage rep_p one sequence ahead (an owner that
			// installed but has not yet flushed), then run a CAS whose
			// expected value does not match. It must complete the stranger's
			// install — one flush, one fence, one help — and then fail
			// without further cost.
			m.P.DWCAS(cell, 10, InitSeq+1, 77, InitSeq+2)
			h0, _ := m.Stats()
			fl, fe := costOf(m, func() {
				if ok, cur := m.CompareAndSwap(ctx, cell, 999, 1); ok || cur != 77 {
					t.Fatalf("helping CAS = (%v, %d), want (false, 77)", ok, cur)
				}
			})
			if fl != 1 || fe != 1 {
				t.Errorf("helper CAS cost (%d flushes, %d fences), want (1, 1)", fl, fe)
			}
			if h1, _ := m.Stats(); h1 != h0+1 {
				t.Errorf("helps = %d, want %d", h1, h0+1)
			}
			if got := m.P.PersistedWord(cell); got != 77 {
				t.Errorf("helped install not on media: %d, want 77", got)
			}
			if v, s := m.LoadWithSeq(cell); v != 77 || s != InitSeq+2 {
				t.Errorf("helped install not mirrored: (%d, %d)", v, s)
			}
		})
	}
}

// TestElisionCountersZeroQuiesced pins that no elision path fires in a
// quiesced single-threaded run: every counter the harness exports must
// stay zero across a mix of writes.
func TestElisionCountersZeroQuiesced(t *testing.T) {
	m := newMemElide(64)
	ctx := initCell(m, 0)
	m.CompareAndSwap(ctx, cell, 0, 1)
	m.Store(ctx, cell, 2)
	m.Exchange(ctx, cell, 3)
	m.FetchAdd(ctx, cell, 4)
	elFl, elFe, piggy, _ := m.P.ElisionCounters()
	if elFl != 0 || elFe != 0 || piggy != 0 {
		t.Fatalf("quiesced elision counters = (elidedFlushes=%d, elidedFences=%d, piggybacked=%d), want all 0",
			elFl, elFe, piggy)
	}
}

// TestRelaxedCASAccounting pins the registry-deferred install: zero
// immediate cost, visible before durable, committed by CommitRelaxed.
func TestRelaxedCASAccounting(t *testing.T) {
	m := newMemElide(64)
	ctx := initCell(m, 5)

	if fl, fe := costOf(m, func() {
		if ok, _ := m.CompareAndSwapRelaxed(ctx, cell, 5, 10); !ok {
			t.Fatal("relaxed CAS failed")
		}
	}); fl != 0 || fe != 0 {
		t.Errorf("relaxed CAS cost (%d flushes, %d fences), want (0, 0)", fl, fe)
	}
	if got := m.P.RelaxedPending(); got != 1 {
		t.Fatalf("RelaxedPending = %d, want 1", got)
	}
	if got := m.Load(cell); got != 10 {
		t.Fatalf("relaxed install not visible: %d", got)
	}

	// The registry drain commits the line: one flush, one fence.
	if fl, fe := costOf(m, func() { m.P.CommitRelaxed(&ctx.FS) }); fl != 1 || fe != 1 {
		t.Errorf("CommitRelaxed cost (%d flushes, %d fences), want (1, 1)", fl, fe)
	}
	if got := m.P.RelaxedPending(); got != 0 {
		t.Fatalf("RelaxedPending after commit = %d, want 0", got)
	}
	if v, s := m.P.PersistedWord(cell), m.P.PersistedWord(cell+1); v != 10 || s != InitSeq+1 {
		t.Fatalf("relaxed install not on media after commit: (%d, %d)", v, s)
	}
	if msg := m.CheckInvariants(cell); msg != "" {
		t.Error(msg)
	}

	// Value-mismatch failure costs nothing and registers nothing.
	if fl, fe := costOf(m, func() { m.CompareAndSwapRelaxed(ctx, cell, 999, 1) }); fl != 0 || fe != 0 {
		t.Errorf("failed relaxed CAS cost (%d flushes, %d fences), want (0, 0)", fl, fe)
	}
	if got := m.P.RelaxedPending(); got != 0 {
		t.Errorf("failed relaxed CAS registered a line: pending=%d", got)
	}

	// On a non-eliding device CompareAndSwapRelaxed degrades to the full
	// protocol exactly.
	m2 := newMem(64)
	ctx2 := initCell(m2, 5)
	if fl, fe := costOf(m2, func() { m2.CompareAndSwapRelaxed(ctx2, cell, 5, 10) }); fl != 1 || fe != 1 {
		t.Errorf("relaxed CAS on non-eliding device cost (%d, %d), want (1, 1)", fl, fe)
	}
	if m2.P.RelaxedPending() != 0 {
		t.Error("non-eliding device has a relaxed registry entry")
	}
}

// TestInitCellBatching pins the deferred-init path: two cells sharing one
// cache line cost one flush and one fence at PublishFence, with the saved
// flush counted as elided; an empty PublishFence costs nothing.
func TestInitCellBatching(t *testing.T) {
	m := newMemElide(64)
	ctx := &Ctx{}
	fl, fe := costOf(m, func() {
		m.InitCell(ctx, 8, 1)  // line 1
		m.InitCell(ctx, 10, 2) // same line
		m.PublishFence(ctx)
	})
	if fl != 1 || fe != 1 {
		t.Errorf("two-cell one-line init cost (%d flushes, %d fences), want (1, 1)", fl, fe)
	}
	elFl, elFe, _, _ := m.P.ElisionCounters()
	if elFl != 1 || elFe != 0 {
		t.Errorf("elided (flushes=%d, fences=%d), want (1, 0)", elFl, elFe)
	}
	if m.P.PersistedWord(8) != 1 || m.P.PersistedWord(10) != 2 {
		t.Error("batched init not on media after PublishFence")
	}

	// A fence with nothing in flight orders nothing: skipped and counted.
	if fl, fe := costOf(m, func() { m.PublishFence(ctx) }); fl != 0 || fe != 0 {
		t.Errorf("empty PublishFence cost (%d, %d), want (0, 0)", fl, fe)
	}

	// The non-eliding device pays one flush per cell plus the fence.
	m2 := newMem(64)
	ctx2 := &Ctx{}
	fl, fe = costOf(m2, func() {
		m2.InitCell(ctx2, 8, 1)
		m2.InitCell(ctx2, 10, 2)
		m2.PublishFence(ctx2)
	})
	if fl != 2 || fe != 1 {
		t.Errorf("non-eliding two-cell init cost (%d flushes, %d fences), want (2, 1)", fl, fe)
	}
}

// TestExchangeElidedCrashSweep crashes an Exchange workload on an eliding
// cell at seeded points under the eviction+drop adversary (the engine
// interface has no Exchange, so this path is only reachable here). The
// recovered cell must satisfy the Lemma 5.3–5.5 invariants and hold
// either the last completed exchange's value or the single in-flight one:
// an eviction may put a line on media early, but it must never stand in
// for the fence a completed operation relies on.
func TestExchangeElidedCrashSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 40; round++ {
		m := newMemElide(64)
		m.P.InjectFaults(pmem.NewFaultModel(int64(round+1), pmem.FaultSpec{Evict: true, Drop: true}))
		ctx := initCell(m, 0)
		var completed uint64
		m.P.FreezeAfter(int64(rng.Intn(200) + 1))
		func() {
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrFrozen {
					panic(r)
				}
			}()
			for i := uint64(1); i <= 1000; i++ {
				if old := m.Exchange(ctx, cell, i); old != i-1 {
					t.Errorf("round %d: Exchange returned %d, want %d", round, old, i-1)
				}
				completed = i
			}
		}()
		m.P.Freeze()
		m.V.Freeze()
		m.P.Crash(pmem.CrashDropAll, rng)
		m.V.Crash(pmem.CrashDropAll, rng)
		m.RecoverRange(cell, CellWords)

		v, s := m.LoadWithSeq(cell)
		pv, ps := m.P.LoadPair(cell)
		if v != pv || s != ps {
			t.Fatalf("round %d: recovery left replicas different: (%d,%d) vs (%d,%d)",
				round, v, s, pv, ps)
		}
		if v != completed && v != completed+1 {
			t.Fatalf("round %d: recovered %d, want %d or %d", round, v, completed, completed+1)
		}
		if msg := m.CheckInvariants(cell); msg != "" {
			t.Errorf("round %d: %s", round, msg)
		}
	}
}
